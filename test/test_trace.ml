(* The tracing subsystem: buffer semantics, exporter determinism across
   [--jobs], zero interference with campaign outputs, Chrome JSON
   shape, span nesting, and the trace-vs-ledger Table 3 cross-check. *)

let spec_of ?(duration_s = 4.) ?(max_samples = 4) ~seed (k, s) =
  Core.Experiment.spec ~seed ~duration_s ~max_samples
    (Pqc.Registry.find_kem k) (Pqc.Registry.find_sig s)

let small_grid ~seed =
  List.map (spec_of ~seed)
    [ ("kyber512", "dilithium2"); ("x25519", "rsa:2048");
      ("kyber768", "dilithium3"); ("bikel1", "dilithium2") ]

(* ---- buffer semantics ---------------------------------------------------- *)

let test_buf_basics () =
  let b = Trace.Buf.create ~label:"cell" () in
  Alcotest.(check string) "label" "cell" (Trace.Buf.label b);
  Trace.Buf.span b ~track:"t" ~cat:"cpu" ~name:"op" 1. 2.;
  Trace.Buf.instant b ~track:"t" ~cat:"tcp" ~name:"tx" 1.5;
  Trace.Buf.counter b ~track:"t" ~name:"cwnd" 1.6 10.;
  Alcotest.(check int) "three events" 3 (Trace.Buf.length b);
  Trace.Buf.clear b;
  Alcotest.(check int) "clear empties" 0 (Trace.Buf.length b)

let test_buf_open_spans () =
  let b = Trace.Buf.create () in
  Trace.Buf.begin_span b ~track:"a" ~cat:"message" ~name:"outer" 1.;
  Trace.Buf.begin_span b ~track:"a" ~cat:"message" ~name:"inner" 2.;
  Trace.Buf.begin_span b ~track:"z" ~cat:"message" ~name:"other" 2.5;
  Trace.Buf.end_span b ~track:"a" 3.;
  Trace.Buf.end_span b ~track:"a" 4.;
  Trace.Buf.end_span b ~track:"z" 5.;
  Trace.Buf.end_span b ~track:"a" 9.;
  (* unmatched: ignored *)
  let spans =
    List.filter_map
      (function Trace.Event.Span s -> Some s | _ -> None)
      (Trace.Buf.events b)
  in
  let find name = List.find (fun s -> s.Trace.Event.s_name = name) spans in
  Alcotest.(check int) "three spans" 3 (List.length spans);
  Alcotest.(check (pair (float 0.) (float 0.)))
    "inner closed first (LIFO)" (2., 3.)
    ((find "inner").Trace.Event.s_begin, (find "inner").Trace.Event.s_end);
  Alcotest.(check (pair (float 0.) (float 0.)))
    "outer closed second" (1., 4.)
    ((find "outer").Trace.Event.s_begin, (find "outer").Trace.Event.s_end);
  Alcotest.(check (pair (float 0.) (float 0.)))
    "tracks keep separate stacks" (2.5, 5.)
    ((find "other").Trace.Event.s_begin, (find "other").Trace.Event.s_end)

(* ---- tracing never changes results --------------------------------------- *)

let test_outcome_unchanged_by_tracing () =
  let sp = spec_of ~seed:"trace-inert" ("kyber512", "dilithium2") in
  let plain = Core.Experiment.run_spec sp in
  let buf = Trace.Buf.create () in
  let traced = Core.Experiment.run_spec ~trace:buf sp in
  Alcotest.(check bool) "outcome identical with tracing on" true
    (plain = traced);
  Alcotest.(check bool) "trace actually recorded" true
    (Trace.Buf.length buf > 0)

let test_report_unchanged_by_tracing () =
  (* a whole catalog campaign renders byte-identically with a trace
     store attached *)
  let plain = Core.Catalog.run ~seed:"tt" ~exec:Core.Exec.sequential "level5-perf" in
  let store = Trace.Store.create () in
  let exec = Core.Exec.create ~jobs:1 ~trace:store () in
  let traced = Core.Catalog.run ~seed:"tt" ~exec "level5-perf" in
  Alcotest.(check string) "report bytes identical under tracing" plain traced;
  Alcotest.(check int) "one cell traced" 1 (Trace.Store.length store);
  Alcotest.(check bool) "events recorded" true (Trace.Store.total_events store > 0)

(* ---- determinism across jobs --------------------------------------------- *)

let trace_grid ~jobs ~seed =
  let store = Trace.Store.create () in
  let exec = Core.Exec.create ~jobs ~trace:store () in
  let results = Core.Exec.cells exec (small_grid ~seed) in
  (store, results)

let test_jobs_determinism () =
  let store1, r1 = trace_grid ~jobs:1 ~seed:"trace-jobs" in
  let store4, r4 = trace_grid ~jobs:4 ~seed:"trace-jobs" in
  Alcotest.(check bool) "outcomes identical across jobs" true (r1 = r4);
  let c1 = Trace.Store.cells store1 and c4 = Trace.Store.cells store4 in
  Alcotest.(check string) "chrome export byte-identical"
    (Trace.Export.chrome c1) (Trace.Export.chrome c4);
  Alcotest.(check string) "folded export byte-identical"
    (Trace.Export.folded c1) (Trace.Export.folded c4);
  Alcotest.(check string) "timeline export byte-identical"
    (Trace.Export.timeline c1) (Trace.Export.timeline c4)

(* ---- Chrome JSON shape ---------------------------------------------------- *)

let traced_cell ~seed =
  let sp = spec_of ~seed ("kyber512", "dilithium2") in
  let buf = Trace.Buf.create ~label:(Core.Experiment.spec_label sp) () in
  let outcome = Core.Experiment.run_spec ~trace:buf sp in
  (outcome, buf)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_chrome_shape () =
  let _, buf = traced_cell ~seed:"trace-json" in
  let json = Trace.Export.chrome [ buf ] in
  Alcotest.(check bool) "object prefix" true
    (String.length json > 16 && String.sub json 0 16 = "{\"traceEvents\":[");
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains ~needle json))
    [ "\"ph\":\"M\""; "\"ph\":\"X\""; "\"ph\":\"i\""; "\"ph\":\"C\"";
      "process_name"; "thread_name"; "\"displayTimeUnit\":\"ms\"";
      "kyber512 x dilithium2" ];
  Alcotest.(check bool) "no NaN leaks into JSON" false (contains ~needle:"nan" json);
  let count ch = String.fold_left (fun n c -> if c = ch then n + 1 else n) 0 json in
  Alcotest.(check int) "balanced braces" (count '{') (count '}');
  Alcotest.(check int) "balanced brackets" (count '[') (count ']')

(* ---- span nesting --------------------------------------------------------- *)

let test_span_nesting () =
  let _, buf = traced_cell ~seed:"trace-nest" in
  let spans =
    List.filter_map
      (function Trace.Event.Span s -> Some s | _ -> None)
      (Trace.Buf.events buf)
  in
  let by cat track =
    List.filter
      (fun s -> s.Trace.Event.s_cat = cat && s.Trace.Event.s_track = track)
      spans
  in
  let contained inner outer =
    outer.Trace.Event.s_begin <= inner.Trace.Event.s_begin
    && inner.Trace.Event.s_end <= outer.Trace.Event.s_end
  in
  List.iter
    (fun track ->
      let handshakes = by "handshake" track in
      let messages = by "message" track in
      Alcotest.(check bool) (track ^ " has handshake spans") true
        (handshakes <> []);
      Alcotest.(check bool) (track ^ " has message spans") true (messages <> []);
      (* every message span sits inside one of its side's handshake
         spans; crypto cpu spans that belong to a message nest inside it *)
      List.iter
        (fun m ->
          Alcotest.(check bool)
            (Printf.sprintf "%s message %s inside a handshake" track
               m.Trace.Event.s_name)
            true
            (List.exists (contained m) handshakes))
        messages;
      let cpus = by "cpu" track in
      (* the single-core host serializes charges: cpu spans on one track
         never overlap *)
      let sorted =
        List.sort
          (fun a b -> compare a.Trace.Event.s_begin b.Trace.Event.s_begin)
          cpus
      in
      let rec disjoint = function
        | a :: (b :: _ as rest) ->
          a.Trace.Event.s_end <= b.Trace.Event.s_begin +. 1e-12 && disjoint rest
        | _ -> true
      in
      Alcotest.(check bool) (track ^ " cpu spans serialized") true
        (disjoint sorted))
    [ "client"; "server" ]

(* ---- Table 3 cross-check -------------------------------------------------- *)

let test_table3_crosscheck () =
  (* full-length cell: the trace-derived per-library CPU shares must
     reproduce the white-box ledger (both record the same charges) *)
  let sp =
    Core.Experiment.spec ~seed:"whitebox-trace"
      (Pqc.Registry.find_kem "kyber512")
      (Pqc.Registry.find_sig "dilithium2")
  in
  let buf = Trace.Buf.create ~label:(Core.Experiment.spec_label sp) () in
  let outcome = Core.Experiment.run_spec ~trace:buf sp in
  let checks = Core.Whitebox.trace_checks outcome buf in
  Alcotest.(check bool) "both sides compared" true
    (List.exists (fun c -> c.Core.Whitebox.tc_side = "client") checks
    && List.exists (fun c -> c.Core.Whitebox.tc_side = "server") checks);
  let delta = Core.Whitebox.max_trace_delta checks in
  if delta >= 0.01 then
    Alcotest.failf "trace disagrees with whitebox ledger by %.4f:\n%s" delta
      (Core.Whitebox.render_trace_checks "cross-check" checks)

let suites =
  [ ( "trace",
      [ Alcotest.test_case "buf basics" `Quick test_buf_basics;
        Alcotest.test_case "buf open-span stacks" `Quick test_buf_open_spans;
        Alcotest.test_case "outcome unchanged by tracing" `Quick
          test_outcome_unchanged_by_tracing;
        Alcotest.test_case "report unchanged by tracing" `Quick
          test_report_unchanged_by_tracing;
        Alcotest.test_case "exports identical across jobs" `Quick
          test_jobs_determinism;
        Alcotest.test_case "chrome JSON shape" `Quick test_chrome_shape;
        Alcotest.test_case "span nesting" `Quick test_span_nesting;
        Alcotest.test_case "table 3 trace cross-check" `Quick
          test_table3_crosscheck ] ) ]
