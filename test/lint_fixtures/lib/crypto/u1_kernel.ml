[@@@lint.kernel "fixture: the single read below is at constant index 0"]

(* U1 fixture: a reviewed kernel — unsafe access is allowed. Expected
   finding count: 0. *)

let first b = Bytes.unsafe_get b 0
