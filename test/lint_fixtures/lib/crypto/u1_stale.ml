[@@@lint.kernel "fixture: annotation without any unsafe operation"]

(* U1 fixture: a stale kernel marker. Expected finding count: 1. *)

let id x = x
