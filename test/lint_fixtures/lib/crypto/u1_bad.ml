(* U1 fixture: unchecked access without a kernel annotation. Expected
   finding count: 1. *)

let get b i = Bytes.unsafe_get b i
