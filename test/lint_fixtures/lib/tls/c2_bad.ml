(* C2 fixture: each definition below leaks secret-derived data into
   exactly one sink, so the expected finding count is 5. *)

let helper s = s
let compare_direct ~psk other = String.equal psk other
let printf_leak ~binder_key = Printf.printf "bk=%s\n" binder_key

let branch_through_call ~master_secret =
  match helper master_secret with "" -> 0 | _ -> 1

let table_leak ~ticket_key tbl = Hashtbl.find_opt tbl ticket_key
let raise_leak ~secret = failwith secret
