(* C2 fixture: the two approved taint-clearing mechanisms — the
   constant-time comparator and an audited declassification. Expected
   finding count: 0. *)

let helper s = s
let check_mac ~psk other = Crypto.Bytesx.equal_ct psk other

let audited ~ticket_key =
  match
    (helper ticket_key
    [@lint.declassify "fixture: audited declassification site"])
  with
  | "" -> 0
  | _ -> 1
