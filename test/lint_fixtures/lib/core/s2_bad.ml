(* S2 fixture: a pool task writes module-level mutable state without a
   mutex. Expected finding count: 1. *)

let cache = Hashtbl.create 16
let record x = Hashtbl.replace cache x x
let run xs = Pool.map record xs
