(* S2 fixture: the same pool-reachable write, guarded by Mutex.protect.
   Expected finding count: 0. *)

let cache = Hashtbl.create 16
let lock = Mutex.create ()
let record x = Mutex.protect lock (fun () -> Hashtbl.replace cache x x)
let run xs = Pool.map record xs
