(* The real-time profiling subsystem: the artifact's deterministic
   shape (op registry, iteration plans, key order, attribution counts)
   must be byte-identical across job counts and runs, its measured
   values must be sane (positive timings, strictly positive keygen
   allocation rates), the JSON must round-trip through the comparison
   parser, and the regression differ must catch shape changes and
   drift while accepting agreement. The wall-clock quarantine itself is
   proven by the lint suite (test_lint.ml), which runs repo-wide. *)

open Core

(* measuring every op takes minutes (SPHINCS+ signs run seconds each in
   pure OCaml); tests measure a cheap subset and assert the expensive
   invariants — full-registry coverage — statically on the plan alone *)
let cheap = "kyber512"

let test_registry_coverage () =
  let ops = Profile.registry () in
  let names = List.map (fun o -> o.Profile.op_name) ops in
  Alcotest.(check int) "no duplicate op names"
    (List.length names)
    (List.length (List.sort_uniq String.compare names));
  List.iter
    (fun (k : Pqc.Kem.t) ->
      List.iter
        (fun kind ->
          let n = kind ^ " " ^ k.name in
          Alcotest.(check bool) (n ^ " present") true (List.mem n names))
        [ "keygen"; "encaps"; "decaps" ])
    Pqc.Registry.kems;
  List.iter
    (fun (s : Pqc.Sigalg.t) ->
      List.iter
        (fun kind ->
          let n = kind ^ " " ^ s.name in
          Alcotest.(check bool) (n ^ " present") true (List.mem n names))
        [ "keygen"; "sign"; "verify" ])
    Pqc.Registry.sigs;
  let kernels =
    List.filter (fun o -> o.Profile.op_group = Profile.Kernel) ops
  in
  Alcotest.(check bool) "at least 3 substrate kernels" true
    (List.length kernels >= 3);
  List.iter
    (fun o ->
      Alcotest.(check bool)
        (o.Profile.op_name ^ " has a sane plan")
        true
        (o.Profile.op_samples > 0 && o.Profile.op_batch > 0
        && o.Profile.op_batch <= 256 && o.Profile.op_warmup >= 0))
    ops

let test_shape_determinism () =
  let run jobs = Profile.run ~jobs ~ops_filter:cheap ~seed:"profile-test" () in
  let a1 = run 1 and a4 = run 4 in
  Alcotest.(check string) "shape is byte-identical for jobs 1 vs 4"
    (Profile.shape_json_string a1)
    (Profile.shape_json_string a4);
  Alcotest.(check bool) "measured values differ from the zeroed shape" true
    (Profile.to_json_string a1 <> Profile.shape_json_string a1)

let test_measured_sanity () =
  let a = Profile.run ~ops_filter:cheap ~seed:"profile-test" () in
  Alcotest.(check bool) "filter matched something" true (a.Profile.pa_ops <> []);
  List.iter
    (fun (m : Profile.measured) ->
      let d = m.Profile.p_time in
      Alcotest.(check bool)
        (m.Profile.p_op.Profile.op_name ^ " timed positive")
        true
        (d.Metrics.d_p50 > 0. && d.Metrics.d_p5 <= d.Metrics.d_p95);
      if m.Profile.p_op.Profile.op_kind = "keygen" then
        Alcotest.(check bool)
          (m.Profile.p_op.Profile.op_name ^ " allocates")
          true
          (m.Profile.p_gc.Profile.g_minor_words > 0.))
    a.Profile.pa_ops;
  Alcotest.(check bool) "attribution table is populated" true
    (List.length a.Profile.pa_attribution > 5);
  List.iter
    (fun (r : Profile.attr_row) ->
      Alcotest.(check bool)
        (r.Profile.at_op ^ " attribution row is sane")
        true
        (r.Profile.at_count > 0 && r.Profile.at_virtual_ms >= 0.))
    a.Profile.pa_attribution

let test_json_roundtrip () =
  let a = Profile.run ~ops_filter:cheap ~seed:"profile-test" () in
  match Profile.of_json_string (Profile.to_json_string a) with
  | Error e -> Alcotest.fail ("roundtrip parse failed: " ^ e)
  | Ok p ->
    Alcotest.(check string) "seed survives" "profile-test" p.Profile.q_seed;
    Alcotest.(check int) "every op survives"
      (List.length a.Profile.pa_ops)
      (List.length p.Profile.q_ops);
    let m = List.hd a.Profile.pa_ops and q = List.hd p.Profile.q_ops in
    Alcotest.(check string) "op order survives" m.Profile.p_op.Profile.op_name
      q.Profile.q_name;
    Alcotest.(check (option (float 1e-9))) "p50 survives exactly"
      (Some m.Profile.p_time.Metrics.d_p50)
      (List.assoc_opt "time_ms.p50" q.Profile.q_metrics);
    Alcotest.(check (option (float 1e-9))) "gc leaves survive"
      (Some m.Profile.p_gc.Profile.g_minor_words)
      (List.assoc_opt "gc.minor_words" q.Profile.q_metrics);
    (* self-comparison is clean at zero tolerance *)
    Alcotest.(check (list string)) "diff against itself is clean" []
      (Profile.diff ~rel_tol:0. p p)

let test_diff_catches_changes () =
  let a = Profile.run ~ops_filter:cheap ~seed:"profile-test" () in
  let p =
    match Profile.of_json_string (Profile.to_json_string a) with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let bump_p50 (q : Profile.p_op) =
    { q with
      Profile.q_metrics =
        List.map
          (fun (k, v) -> if k = "time_ms.p50" then (k, v *. 2.) else (k, v))
          q.Profile.q_metrics }
  in
  let drifted =
    { p with Profile.q_ops = List.map bump_p50 p.Profile.q_ops }
  in
  Alcotest.(check bool) "2x median drift beyond 25% tolerance is flagged" true
    (Profile.diff p drifted <> []);
  Alcotest.(check (list string)) "2x drift within 200% tolerance passes" []
    (Profile.diff ~rel_tol:2. p drifted);
  let replanned =
    { p with
      Profile.q_ops =
        List.map
          (fun (q : Profile.p_op) ->
            { q with Profile.q_batch = q.Profile.q_batch + 1 })
          p.Profile.q_ops }
  in
  Alcotest.(check bool) "iteration-plan changes are issues at any tolerance"
    true
    (Profile.diff ~rel_tol:10. p replanned <> []);
  let missing = { p with Profile.q_ops = List.tl p.Profile.q_ops } in
  Alcotest.(check bool) "a vanished op is an issue" true
    (Profile.diff ~rel_tol:10. p missing <> []);
  match Profile.of_json_string "{\"schema\": \"bogus/9\"}" with
  | Ok _ -> Alcotest.fail "bogus schema accepted"
  | Error _ -> ()

let test_renderings () =
  let a = Profile.run ~ops_filter:cheap ~seed:"profile-test" () in
  let table = Profile.render_table a in
  Alcotest.(check bool) "table names the ops" true
    (let contains ~needle hay =
       let nl = String.length needle in
       let found = ref false in
       for i = 0 to String.length hay - nl do
         if String.sub hay i nl = needle then found := true
       done;
       !found
     in
     contains ~needle:"keygen kyber512" table
     && contains ~needle:"Virtual vs real attribution" table);
  let folded = Profile.folded a in
  List.iter
    (fun line ->
      if line <> "" then
        Alcotest.(check bool)
          (line ^ " is a folded stack")
          true
          (String.contains line ' '))
    (String.split_on_char '\n' folded);
  match Profile.run ~ops_filter:"no-such-op" ~seed:"profile-test" () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty filter should be rejected"

let suites =
  [ ( "profile",
      [ Alcotest.test_case "registry covers every KA, SA and kernel" `Quick
          test_registry_coverage;
        Alcotest.test_case "artifact shape deterministic across jobs" `Quick
          test_shape_determinism;
        Alcotest.test_case "measured values are sane" `Quick
          test_measured_sanity;
        Alcotest.test_case "JSON roundtrip" `Quick test_json_roundtrip;
        Alcotest.test_case "diff catches drift and shape changes" `Quick
          test_diff_catches_changes;
        Alcotest.test_case "renderings" `Quick test_renderings ] )
  ]
