(* The server-farm layer: arrival-stream generators, the balancer, farm
   admission control, and the farm campaign's determinism contract
   (byte-identical metrics artifacts for any [jobs], cache states and
   retry budgets included). *)

open Core

let kem = Pqc.Registry.find_kem
let sa = Pqc.Registry.find_sig

(* ---- Workload generators --------------------------------------------------- *)

let arrivals ?(profile = "poisson") ~seed ~rate ~duration_s () =
  Netsim.Workload.arrivals
    (Netsim.Workload.find profile)
    ~rng:(Crypto.Drbg.create ~seed)
    ~rate ~duration_s

let test_workload_reproducible () =
  List.iter
    (fun (w : Netsim.Workload.t) ->
      let a =
        arrivals ~profile:w.name ~seed:"farm" ~rate:500. ~duration_s:1. ()
      in
      let b =
        arrivals ~profile:w.name ~seed:"farm" ~rate:500. ~duration_s:1. ()
      in
      Alcotest.(check (list (float 0.)))
        (w.name ^ " same seed, same stream")
        a b;
      let c =
        arrivals ~profile:w.name ~seed:"other" ~rate:500. ~duration_s:1. ()
      in
      Alcotest.(check bool) (w.name ^ " different seed differs") true (a <> c))
    Netsim.Workload.all

let test_workload_shape () =
  List.iter
    (fun (w : Netsim.Workload.t) ->
      let rate = 2000. and duration_s = 1. in
      let xs = arrivals ~profile:w.name ~seed:"shape" ~rate ~duration_s () in
      Alcotest.(check bool) (w.name ^ " sorted") true
        (List.sort compare xs = xs);
      List.iter
        (fun t ->
          if t < 0. || t > duration_s then
            Alcotest.failf "%s arrival %f outside [0, %f]" w.name t duration_s)
        xs;
      (* the shape is normalized to mean 1, so the count concentrates
         around rate * duration (Poisson noise: sd = sqrt n ~ 45) *)
      let n = float_of_int (List.length xs) in
      let expect = rate *. duration_s in
      Alcotest.(check bool)
        (Printf.sprintf "%s mean rate (%.0f arrivals)" w.name n)
        true
        (Float.abs (n -. expect) < 6. *. sqrt expect))
    Netsim.Workload.all

let test_workload_degenerate () =
  Alcotest.(check (list (float 0.))) "zero rate" []
    (arrivals ~seed:"z" ~rate:0. ~duration_s:1. ());
  Alcotest.(check (list (float 0.))) "zero duration" []
    (arrivals ~seed:"z" ~rate:100. ~duration_s:0. ());
  Alcotest.check_raises "unknown profile"
    (Invalid_argument "Workload.find: unknown arrival profile diurnal")
    (fun () ->
      ignore (Netsim.Workload.find "diurnal"))

(* ---- Balancer --------------------------------------------------------------- *)

let test_balancer_round_robin () =
  let b = Netsim.Balancer.create Netsim.Balancer.Round_robin ~servers:3 in
  let picks = List.init 7 (fun _ -> Netsim.Balancer.pick b ~load:(fun _ -> 0)) in
  Alcotest.(check (list int)) "cycles" [ 0; 1; 2; 0; 1; 2; 0 ] picks

let test_balancer_least_connections () =
  let b = Netsim.Balancer.create Netsim.Balancer.Least_connections ~servers:3 in
  let load = [| 2; 0; 1 |] in
  Alcotest.(check int) "least loaded" 1
    (Netsim.Balancer.pick b ~load:(fun s -> load.(s)));
  let tied = [| 1; 1; 1 |] in
  Alcotest.(check int) "tie toward lowest index" 0
    (Netsim.Balancer.pick b ~load:(fun s -> tied.(s)));
  Alcotest.check_raises "bad policy name"
    (Invalid_argument "Balancer.policy_of_name: unknown policy random")
    (fun () -> ignore (Netsim.Balancer.policy_of_name "random"))

(* ---- Farm admission control ------------------------------------------------- *)

(* synthetic launch: every handshake occupies its slot for [service]
   virtual seconds — admission, queueing and drops in isolation *)
let run_farm ~servers ~max_concurrent ~accept_queue ~arrivals ~service =
  let engine = Netsim.Engine.create () in
  let peak = ref 0 in
  let in_service = Array.make servers 0 in
  let farm =
    Netsim.Farm.create ~engine
      ~config:
        { Netsim.Farm.servers; max_concurrent; accept_queue;
          policy = Netsim.Balancer.Least_connections }
      ~arrivals
      ~launch:(fun ~server ~conn:_ ~finished ->
        in_service.(server) <- in_service.(server) + 1;
        peak := max !peak in_service.(server);
        Netsim.Engine.schedule engine ~delay:service (fun () ->
            in_service.(server) <- in_service.(server) - 1;
            finished ()))
  in
  Netsim.Engine.run engine;
  (farm, !peak)

let test_farm_accounting () =
  (* 30 simultaneous arrivals onto 2 servers x (2 in service + 3
     queued): 20 admitted-or-queued, 10 dropped at the accept queue *)
  let arrivals = List.init 30 (fun _ -> 0.) in
  let farm, peak =
    run_farm ~servers:2 ~max_concurrent:2 ~accept_queue:3 ~arrivals
      ~service:0.01
  in
  Alcotest.(check int) "offered" 30 (Netsim.Farm.offered farm);
  Alcotest.(check int) "completed" 10 (Netsim.Farm.completed farm);
  Alcotest.(check int) "dropped" 20 (Netsim.Farm.dropped farm);
  Alcotest.(check int) "unfinished" 0 (Netsim.Farm.unfinished farm);
  Alcotest.(check int) "concurrency limit held" 2 peak;
  Alcotest.(check (list int)) "balanced across servers" [ 5; 5 ]
    (Array.to_list (Netsim.Farm.per_server_completed farm));
  (* queued connections wait one service time per predecessor *)
  let waits = Netsim.Farm.wait_ms farm in
  Alcotest.(check int) "latency per completed conn" 10
    (List.length (Netsim.Farm.latencies_ms farm));
  Alcotest.(check (float 1e-6)) "head of queue admitted immediately" 0.
    (List.hd waits);
  Alcotest.(check bool) "tail of queue waited" true
    (List.exists (fun w -> w > 19.) waits)

let test_farm_unfinished () =
  let engine = Netsim.Engine.create () in
  let farm =
    Netsim.Farm.create ~engine
      ~config:
        { Netsim.Farm.servers = 1; max_concurrent = 4; accept_queue = 4;
          policy = Netsim.Balancer.Round_robin }
      ~arrivals:[ 0.; 0.5 ]
      ~launch:(fun ~server:_ ~conn:_ ~finished ->
        Netsim.Engine.schedule engine ~delay:1. (fun () -> finished ()))
  in
  (* stop before the second handshake's service completes *)
  Netsim.Engine.run engine ~until:1.2;
  Alcotest.(check int) "one completed" 1 (Netsim.Farm.completed farm);
  Alcotest.(check int) "one in flight at the horizon" 1
    (Netsim.Farm.unfinished farm)

(* ---- the farm campaign ------------------------------------------------------ *)

let farm_grid seed =
  List.concat_map
    (fun (k, s) ->
      List.map
        (fun profile ->
          Experiment.farm_spec ~seed ~profile ~servers:2 ~duration_s:0.2
            ~max_connections:120 (kem k) (sa s))
        [ "poisson"; "flash-crowd" ])
    [ ("x25519", "rsa:2048"); ("kyber768", "dilithium3") ]

let farm_artifact_string ~jobs ~seed =
  let exec = Exec.create ~jobs () in
  let results = Exec.farm_cells exec (farm_grid seed) in
  Alcotest.(check int) "all farm cells ok"
    (List.length (farm_grid seed))
    (List.length (List.filter Result.is_ok results));
  Metrics.to_json_string (Metrics.artifact exec.Exec.metrics ~seed)

let parse_artifact s =
  match Metrics.of_json_string s with
  | Ok a -> a
  | Error e -> Alcotest.fail e

let test_farm_jobs_identity () =
  let a1 = farm_artifact_string ~jobs:1 ~seed:"farm-jobs" in
  let a4 = farm_artifact_string ~jobs:4 ~seed:"farm-jobs" in
  Alcotest.(check string) "jobs=1 and jobs=4 byte-identical" a1 a4;
  let p = parse_artifact a1 in
  Alcotest.(check int) "four farm cells" 4
    (List.length p.Metrics.p_farm_cells);
  Alcotest.(check (list string)) "self-diff is clean" []
    (Metrics.diff p (parse_artifact a4));
  let first = List.hd p.Metrics.p_farm_cells in
  Alcotest.(check string) "spec order preserved"
    "farm x25519 x rsa:2048 @ none/poisson u=0.90" first.Metrics.pf_key;
  Alcotest.(check bool) "farm leaves present" true
    (List.mem_assoc "data.latency_ms.handshake.p99" first.Metrics.pf_metrics
    && List.mem_assoc "data.latency_ms.p999" first.Metrics.pf_metrics
    && List.mem_assoc "data.load.capacity_hs_s" first.Metrics.pf_metrics
    && List.mem_assoc "data.servers.busy" first.Metrics.pf_metrics)

let test_farm_outcome_sanity () =
  let o =
    Experiment.run_farm_spec
      (Experiment.farm_spec ~seed:"farm-sane" ~servers:2 ~duration_s:0.2
         ~max_connections:120 ~adv_fraction:0.3 (kem "kyber512")
         (sa "sphincs128"))
  in
  Alcotest.(check int) "conservation: offered = completed+dropped+unfinished"
    o.Experiment.fo_offered
    (o.Experiment.fo_completed + o.Experiment.fo_dropped
   + o.Experiment.fo_unfinished);
  Alcotest.(check int) "per-server counts sum to completed"
    o.Experiment.fo_completed
    (List.fold_left ( + ) 0 o.Experiment.fo_per_server_completed);
  Alcotest.(check bool) "capacity positive" true
    (o.Experiment.fo_capacity_hs_s > 0.);
  Alcotest.(check bool) "utilization below 1" true
    (o.Experiment.fo_server_busy > 0. && o.Experiment.fo_server_busy <= 1.);
  Alcotest.(check bool) "adversarial clients drawn" true
    (o.Experiment.fo_adv_launched > 0
    && o.Experiment.fo_adv_launched < o.Experiment.fo_offered);
  (* the x25519 adversary buys the full SPHINCS+ server flight with a
     tiny client flight: the paper's amplification asymmetry, at scale *)
  Alcotest.(check bool) "amplification over QUIC's 3x" true
    (o.Experiment.fo_adv_server_bytes > 3 * o.Experiment.fo_adv_client_bytes)

let test_farm_retry_and_failure () =
  (* injected failure on a farm label: retries reseed deterministically,
     budget exhaustion yields Error and the campaign keeps going *)
  let exec = Exec.create ~jobs:2 ~retries:1 ~fail_cell:"flash-crowd" () in
  let results = Exec.farm_cells exec (farm_grid "farm-fail") in
  let oks, errs = List.partition Result.is_ok results in
  Alcotest.(check (pair int int)) "poisson cells ok, flash-crowd cells fail"
    (2, 2)
    (List.length oks, List.length errs);
  Alcotest.(check int) "failures counted" 2 (Exec.failed_count exec);
  List.iter
    (function
      | Error (e : Exec.cell_error) ->
        Alcotest.(check int) "attempt budget spent" 2 e.Exec.ce_attempts
      | Ok _ -> ())
    results

let suites =
  [ ( "farm",
      [ Alcotest.test_case "workload reproducible from seed" `Quick
          test_workload_reproducible;
        Alcotest.test_case "workload shapes + mean rate" `Quick
          test_workload_shape;
        Alcotest.test_case "workload degenerate inputs" `Quick
          test_workload_degenerate;
        Alcotest.test_case "balancer round-robin" `Quick
          test_balancer_round_robin;
        Alcotest.test_case "balancer least-connections" `Quick
          test_balancer_least_connections;
        Alcotest.test_case "farm admission accounting" `Quick
          test_farm_accounting;
        Alcotest.test_case "farm unfinished at horizon" `Quick
          test_farm_unfinished;
        Alcotest.test_case "farm campaign jobs identity" `Slow
          test_farm_jobs_identity;
        Alcotest.test_case "farm outcome sanity" `Slow
          test_farm_outcome_sanity;
        Alcotest.test_case "farm retry and failure" `Slow
          test_farm_retry_and_failure ] ) ]
