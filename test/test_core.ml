(* The measurement framework, and — most importantly — the reproduction
   assertions: the paper's headline findings must emerge from the
   simulator, and the calibrated medians must track Table 2. *)

open Core

let kem = Pqc.Registry.find_kem
let sa = Pqc.Registry.find_sig

let run ?buffering ?scenario ?max_samples k s =
  Experiment.run ?buffering ?scenario ?max_samples ~seed:"test" (kem k) (sa s)

let part_a o = Experiment.median_of (fun s -> s.Experiment.part_a_ms) o
let part_b o = Experiment.median_of (fun s -> s.Experiment.part_b_ms) o
let total o = Experiment.median_of (fun s -> s.Experiment.total_ms) o
let cbytes o = Experiment.median_bytes (fun s -> s.Experiment.client_bytes) o
let sbytes o = Experiment.median_bytes (fun s -> s.Experiment.server_bytes) o

(* ---- stats ------------------------------------------------------------------ *)

let test_stats () =
  Alcotest.(check (float 1e-9)) "median odd" 2. (Stats.median [ 3.; 1.; 2. ]);
  Alcotest.(check (float 1e-9)) "median even" 1.5 (Stats.median [ 1.; 2. ]);
  Alcotest.(check (float 1e-9)) "p0" 1. (Stats.percentile 0. [ 3.; 1.; 2. ]);
  Alcotest.(check (float 1e-9)) "p100" 3. (Stats.percentile 1. [ 3.; 1.; 2. ]);
  Alcotest.(check (float 1e-9)) "mean" 2. (Stats.mean [ 1.; 2.; 3. ]);
  Alcotest.(check (pair (float 1e-9) (float 1e-9))) "min_max" (1., 3.)
    (Stats.min_max [ 2.; 1.; 3. ]);
  Alcotest.check_raises "empty median" (Invalid_argument "Stats.percentile: empty")
    (fun () -> ignore (Stats.median []))

(* ---- experiment mechanics ------------------------------------------------------ *)

let test_determinism () =
  let a = run "kyber512" "dilithium2" and b = run "kyber512" "dilithium2" in
  Alcotest.(check bool) "identical sample lists" true
    (a.Experiment.samples = b.Experiment.samples);
  Alcotest.(check int) "identical counts" a.Experiment.handshakes_per_minute
    b.Experiment.handshakes_per_minute

let test_loss_free_runs_are_stable () =
  let o = run "x25519" "rsa:2048" in
  let totals = List.map (fun s -> s.Experiment.total_ms) o.Experiment.samples in
  let lo, hi = Stats.min_max totals in
  Alcotest.(check bool) "no-loss samples are near-identical" true (hi -. lo < 0.05)

let test_ledgers () =
  let o = run "x25519" "rsa:2048" in
  let sum l = List.fold_left (fun acc (_, f) -> acc +. f) 0. l in
  Alcotest.(check (float 1e-6)) "client ledger normalized" 1.0
    (sum o.Experiment.client_ledger);
  Alcotest.(check (float 1e-6)) "server ledger normalized" 1.0
    (sum o.Experiment.server_ledger);
  Alcotest.(check bool) "server cpu > client cpu for RSA" true
    (o.Experiment.server_cpu_ms > o.Experiment.client_cpu_ms)

(* ---- calibration against Table 2 ------------------------------------------------ *)

let within ~tol ~name paper sim =
  let rel = Float.abs (sim -. paper) /. Float.max paper 0.05 in
  Alcotest.(check bool)
    (Printf.sprintf "%s: sim %.2f vs paper %.2f (tol %.0f%%)" name sim paper
       (100. *. tol))
    true (rel <= tol)

let test_table2a_calibration () =
  List.iter
    (fun (row : Paper_data.t2_row) ->
      let o = run row.Paper_data.alg "rsa:2048" in
      within ~tol:0.30 ~name:(row.Paper_data.alg ^ " partA") row.Paper_data.part_a
        (part_a o);
      within ~tol:0.30 ~name:(row.Paper_data.alg ^ " partB") row.Paper_data.part_b
        (part_b o);
      within ~tol:0.10
        ~name:(row.Paper_data.alg ^ " client bytes")
        (float_of_int row.Paper_data.client_b)
        (float_of_int (cbytes o));
      within ~tol:0.10
        ~name:(row.Paper_data.alg ^ " server bytes")
        (float_of_int row.Paper_data.server_b)
        (float_of_int (sbytes o));
      within ~tol:0.30
        ~name:(row.Paper_data.alg ^ " handshake count")
        (row.Paper_data.total_k *. 1000.)
        (float_of_int o.Experiment.handshakes_per_minute))
    (* a representative subset keeps the test fast; the bench regenerates
       the full table *)
    (List.filter
       (fun (r : Paper_data.t2_row) ->
         List.mem r.Paper_data.alg
           [ "x25519"; "bikel1"; "hqc128"; "kyber512"; "p256"; "bikel3";
             "p384"; "hqc256"; "p521"; "p521_kyber1024" ])
       Paper_data.table2a)

let test_table2b_calibration () =
  List.iter
    (fun (row : Paper_data.t2_row) ->
      let o = run "x25519" row.Paper_data.alg in
      within ~tol:0.30 ~name:(row.Paper_data.alg ^ " partB") row.Paper_data.part_b
        (part_b o);
      within ~tol:0.25
        ~name:(row.Paper_data.alg ^ " server bytes")
        (float_of_int row.Paper_data.server_b)
        (float_of_int (sbytes o)))
    (List.filter
       (fun (r : Paper_data.t2_row) ->
         List.mem r.Paper_data.alg
           [ "rsa:1024"; "rsa:2048"; "rsa:4096"; "falcon512"; "dilithium2";
             "dilithium3"; "dilithium5"; "sphincs128"; "sphincs256";
             "falcon1024"; "p521_dilithium5" ])
       Paper_data.table2b)

(* ---- the paper's findings -------------------------------------------------------- *)

let test_finding_dilithium_faster_than_rsa2048 () =
  (* "Handshakes with Dilithium, regardless of the security level, were
     faster than our current state-of-the-art rsa:2048" *)
  let baseline = total (run "x25519" "rsa:2048") in
  List.iter
    (fun d ->
      Alcotest.(check bool) (d ^ " beats rsa:2048") true
        (total (run "x25519" d) < baseline))
    [ "dilithium2"; "dilithium3"; "dilithium5"; "dilithium2_aes";
      "dilithium3_aes"; "dilithium5_aes"; "falcon512" ]

let test_finding_kyber_on_par () =
  (* "HQC and Kyber are on par with our current state-of-the-art" *)
  let baseline = total (run "x25519" "rsa:2048") in
  List.iter
    (fun k ->
      let t = total (run k "rsa:2048") in
      Alcotest.(check bool) (k ^ " within 0.5 ms of x25519") true
        (Float.abs (t -. baseline) < 0.5))
    [ "kyber512"; "hqc128"; "kyber90s512" ]

let test_finding_pqc_wins_on_high_levels () =
  (* "on NIST security levels three to five, PQC outperforms all
     algorithms in use today" *)
  Alcotest.(check bool) "kyber768 beats p384" true
    (total (run "kyber768" "rsa:2048") < total (run "p384" "rsa:2048"));
  Alcotest.(check bool) "kyber1024 beats p521" true
    (total (run "kyber1024" "rsa:2048") < total (run "p521" "rsa:2048"));
  Alcotest.(check bool) "dilithium5 beats rsa:4096" true
    (total (run "x25519" "dilithium5") < total (run "x25519" "rsa:4096"))

let test_finding_hybrids_cheap_on_level1 () =
  (* "almost no overhead in using hybrid algorithms ... on level one" *)
  let pure = total (run "kyber512" "rsa:2048") in
  let hybrid = total (run "p256_kyber512" "rsa:2048") in
  Alcotest.(check bool) "hybrid within 0.6 ms" true (hybrid -. pure < 0.6);
  (* but the classical component bottlenecks hybrids on higher levels *)
  let pure5 = total (run "kyber1024" "rsa:2048") in
  let hybrid5 = total (run "p521_kyber1024" "rsa:2048") in
  Alcotest.(check bool) "p521 bottlenecks the level-5 hybrid" true
    (hybrid5 > pure5 +. 5.

)

let test_finding_sphincs_expensive () =
  (* "handshake latency and data usage were up to 20 times higher" *)
  let baseline = run "x25519" "rsa:2048" in
  let sp = run "x25519" "sphincs256" in
  Alcotest.(check bool) "sphincs 20x latency" true
    (total sp > 20. *. total baseline);
  Alcotest.(check bool) "sphincs data 20x" true
    (sbytes sp > 20 * sbytes baseline)

let test_finding_cwnd_extra_rtts () =
  (* section 5.4: large flights exceed the initial CWND and pay RTTs *)
  let delay = Scenario.high_delay in
  let t name = total (run ~scenario:delay "x25519" name) in
  Alcotest.(check bool) "rsa:2048 1 RTT" true (Float.abs (t "rsa:2048" -. 1000.) < 30.);
  Alcotest.(check bool) "dilithium5 2 RTT" true (Float.abs (t "dilithium5" -. 2000.) < 60.);
  Alcotest.(check bool) "sphincs128 2 RTT" true (Float.abs (t "sphincs128" -. 2000.) < 60.);
  Alcotest.(check bool) "sphincs192 3 RTT" true (Float.abs (t "sphincs192" -. 3000.) < 60.);
  Alcotest.(check bool) "sphincs256 4 RTT" true (Float.abs (t "sphincs256" -. 4000.) < 60.);
  (* and a larger initial window removes the extra round trips *)
  let big_window =
    { Netsim.Tcp.default_config with Netsim.Tcp.init_cwnd_segments = 80 }
  in
  let o =
    Experiment.run ~seed:"test" ~scenario:delay ~tcp_config:big_window
      (kem "x25519") (sa "sphincs256")
  in
  Alcotest.(check bool) "initcwnd 80 restores 1 RTT" true
    (Float.abs (total o -. 1000.) < 60.)

let test_finding_low_bandwidth_hurts_big_data () =
  let bw = Scenario.low_bandwidth in
  let x = total (run ~scenario:bw "x25519" "rsa:2048") in
  let h = total (run ~scenario:bw "hqc128" "rsa:2048") in
  let s = total (run ~scenario:bw "x25519" "sphincs128") in
  Alcotest.(check bool) "hqc >= 3x x25519 at 1 Mbit/s" true (h > 3. *. x);
  Alcotest.(check bool) "sphincs >= 15x x25519 at 1 Mbit/s" true (s > 15. *. x);
  (* "Kyber and Falcon surpass the other PQ algorithms in low-bandwidth
     settings due to shorter keys" *)
  let ky = total (run ~scenario:bw "kyber512" "rsa:2048") in
  Alcotest.(check bool) "kyber beats hqc at 1 Mbit/s" true (ky < h);
  let falcon = total (run ~scenario:bw "x25519" "falcon512") in
  let dil = total (run ~scenario:bw "x25519" "dilithium2") in
  Alcotest.(check bool) "falcon beats dilithium at 1 Mbit/s" true (falcon < dil)

let test_finding_delay_dominates_realistic () =
  (* "the two realistic scenarios mostly depended on the RTT" *)
  let o = run ~scenario:Scenario.five_g "x25519" "rsa:2048" in
  Alcotest.(check bool) "5G ~ RTT" true
    (total o > 44. && total o < 60.);
  let lte = run ~scenario:Scenario.lte_m "kyber512" "rsa:2048" in
  Alcotest.(check bool) "LTE-M ~ RTT + serialization" true
    (total lte > 200. && total lte < 320.)

let test_attack_asymmetries () =
  let row = Amplification.measure ~seed:"test" (kem "x25519") (sa "sphincs256") in
  Alcotest.(check bool) "sphincs amplification huge" true
    (row.Amplification.amplification > 50.);
  Alcotest.(check bool) "exceeds QUIC limit" true
    (row.Amplification.amplification > Amplification.quic_limit);
  let base = Amplification.measure ~seed:"test" (kem "x25519") (sa "rsa:2048") in
  Alcotest.(check bool) "baseline modest" true (base.Amplification.amplification < 3.);
  let sp = Experiment.run ~seed:"test" (kem "kyber512") (sa "sphincs128") in
  Alcotest.(check bool) "server-heavy CPU skew" true
    (sp.Experiment.server_cpu_ms /. sp.Experiment.client_cpu_ms > 3.)

let test_whitebox_shapes () =
  (* Table 3's qualitative observations *)
  let row = Whitebox.measure ~seed:"test" (1, "bikel1", "dilithium2") in
  let client_libssl = List.assoc_opt "libssl" row.Whitebox.client_libs in
  let client_libcrypto = List.assoc_opt "libcrypto" row.Whitebox.client_libs in
  Alcotest.(check bool) "bike client dominated by libssl" true
    (Option.value ~default:0. client_libssl
    > Option.value ~default:0. client_libcrypto);
  let sp = Whitebox.measure ~seed:"test" (1, "kyber512", "sphincs128") in
  Alcotest.(check bool) "sphincs server >90% libcrypto" true
    (Option.value ~default:0. (List.assoc_opt "libcrypto" sp.Whitebox.server_libs)
    > 0.9);
  Alcotest.(check int) "eight paper pairs" 8 (List.length Whitebox.paper_pairs)

let test_deviation_analysis () =
  let g = Deviation.analyze ~seed:"test" 5 in
  Alcotest.(check int) "level-5 grid = 4 KAs x 4 SAs" 16
    (List.length g.Deviation.cells);
  (* the baseline combination predicts itself: deviations are bounded *)
  List.iter
    (fun (c : Deviation.cell) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s x %s deviation bounded" c.Deviation.kem c.Deviation.sa)
        true
        (Float.abs c.Deviation.deviation_ms < 12.))
    g.Deviation.cells;
  (* optimized push must not be slower overall than default buffering *)
  let d = Deviation.analyze ~seed:"test" ~buffering:Tls.Config.Default_buffered 5 in
  let gains = Deviation.improvement ~optimized:g ~default:d in
  Alcotest.(check int) "improvement covers the grid" 16 (List.length gains);
  let mean_gain = Stats.mean (List.map (fun (_, _, g) -> g) gains) in
  Alcotest.(check bool) "optimized faster on average" true (mean_gain > 0.)

let test_hrr_fallback () =
  (* a wrong key-share guess costs one extra round trip (section 2's
     2-RTT fallback) plus the deferred key generation *)
  let delay = Scenario.high_delay in
  let right =
    total (Experiment.run ~seed:"test" ~scenario:delay (kem "kyber768") (sa "dilithium3"))
  in
  let wrong =
    total
      (Experiment.run ~seed:"test" ~scenario:delay ~wrong_key_share:true
         (kem "kyber768") (sa "dilithium3"))
  in
  Alcotest.(check bool) "HRR adds ~1 RTT" true
    (wrong -. right > 900. && wrong -. right < 1100.);
  (* on the fast link it still completes, with both hellos on the wire *)
  let o =
    Experiment.run ~seed:"test" ~wrong_key_share:true (kem "x25519") (sa "rsa:2048")
  in
  Alcotest.(check bool) "handshakes complete through HRR" true
    (List.length o.Experiment.samples > 0)

let test_ranking () =
  let entries =
    Ranking.rank [ ("a", 1.0); ("b", 10.0); ("c", 100.0); ("d", 1.01) ]
  in
  let find n = List.find (fun (e : Ranking.entry) -> e.Ranking.name = n) entries in
  Alcotest.(check int) "fastest rank 0" 0 (find "a").Ranking.rank;
  Alcotest.(check int) "slowest rank 10" 10 (find "c").Ranking.rank;
  Alcotest.(check int) "log scale midpoint" 5 (find "b").Ranking.rank;
  Alcotest.(check int) "near-fastest rounds to 0" 0 (find "d").Ranking.rank;
  Alcotest.(check bool) "sorted fastest first" true
    ((List.hd entries).Ranking.name = "a")

let test_scenarios_and_catalog () =
  Alcotest.(check int) "six scenarios" 6 (List.length Scenario.all);
  Alcotest.(check bool) "lookup" true (Scenario.find "lte-m" == Scenario.lte_m);
  Alcotest.check_raises "unknown scenario"
    (Invalid_argument "Scenario.find: unknown scenario mars") (fun () ->
      ignore (Scenario.find "mars"));
  Alcotest.(check int) "twenty-four experiments" 24 (List.length Catalog.names);
  List.iter (fun n -> ignore (Catalog.describe n)) Catalog.names;
  (* one cheap catalog entry end-to-end *)
  let report = Catalog.run ~seed:"test" "level5-perf" in
  let contains hay needle =
    let n = String.length needle in
    let rec go i = i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "perf report mentions kyber1024" true
    (contains report "kyber1024")

let suites =
  [ ( "core",
      [ Alcotest.test_case "stats" `Quick test_stats;
        Alcotest.test_case "experiment determinism" `Quick test_determinism;
        Alcotest.test_case "loss-free stability" `Quick test_loss_free_runs_are_stable;
        Alcotest.test_case "cpu ledgers" `Quick test_ledgers;
        Alcotest.test_case "Table 2a calibration" `Slow test_table2a_calibration;
        Alcotest.test_case "Table 2b calibration" `Slow test_table2b_calibration;
        Alcotest.test_case "finding: dilithium/falcon beat rsa2048" `Slow
          test_finding_dilithium_faster_than_rsa2048;
        Alcotest.test_case "finding: kyber/hqc on par" `Slow test_finding_kyber_on_par;
        Alcotest.test_case "finding: pqc wins on levels 3-5" `Slow
          test_finding_pqc_wins_on_high_levels;
        Alcotest.test_case "finding: hybrids cheap on level 1" `Slow
          test_finding_hybrids_cheap_on_level1;
        Alcotest.test_case "finding: sphincs expensive" `Slow
          test_finding_sphincs_expensive;
        Alcotest.test_case "finding: CWND extra RTTs" `Slow test_finding_cwnd_extra_rtts;
        Alcotest.test_case "finding: low bandwidth vs data volume" `Slow
          test_finding_low_bandwidth_hurts_big_data;
        Alcotest.test_case "finding: realistic scenarios track RTT" `Slow
          test_finding_delay_dominates_realistic;
        Alcotest.test_case "section 5.5 asymmetries" `Slow test_attack_asymmetries;
        Alcotest.test_case "Table 3 shapes" `Slow test_whitebox_shapes;
        Alcotest.test_case "Figure 3 deviation analysis" `Slow test_deviation_analysis;
        Alcotest.test_case "HRR fallback" `Slow test_hrr_fallback;
        Alcotest.test_case "Figure 4 ranking" `Quick test_ranking;
        Alcotest.test_case "scenarios + catalog" `Quick test_scenarios_and_catalog ] ) ]
