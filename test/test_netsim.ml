(* Discrete-event engine, impaired links and the TCP model. *)

let test_engine_ordering () =
  let e = Netsim.Engine.create () in
  let log = ref [] in
  let note x () = log := x :: !log in
  Netsim.Engine.schedule e ~delay:0.3 (note "c");
  Netsim.Engine.schedule e ~delay:0.1 (note "a");
  Netsim.Engine.schedule e ~delay:0.2 (note "b");
  (* same-time events fire in scheduling order *)
  Netsim.Engine.schedule e ~delay:0.4 (note "d1");
  Netsim.Engine.schedule e ~delay:0.4 (note "d2");
  Netsim.Engine.run e;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c"; "d1"; "d2" ]
    (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock" 0.4 (Netsim.Engine.now e)

let test_engine_cancel_and_until () =
  let e = Netsim.Engine.create () in
  let fired = ref 0 in
  let h = Netsim.Engine.schedule_cancellable e ~delay:0.1 (fun () -> incr fired) in
  h.Netsim.Engine.cancelled <- true;
  Netsim.Engine.schedule e ~delay:0.2 (fun () -> incr fired);
  Netsim.Engine.schedule e ~delay:5.0 (fun () -> incr fired);
  Netsim.Engine.run e ~until:1.0;
  Alcotest.(check int) "cancelled skipped, late one pending" 1 !fired;
  Alcotest.(check int) "event still queued" 1 (Netsim.Engine.pending e);
  Netsim.Engine.run e;
  Alcotest.(check int) "resumable" 2 !fired

(* regression: [pending] used to report raw heap size, counting
   cancelled events that would never fire *)
let test_engine_pending_excludes_cancelled () =
  let e = Netsim.Engine.create () in
  let fired = ref 0 in
  let h1 = Netsim.Engine.schedule_cancellable e ~delay:0.1 (fun () -> incr fired) in
  let h2 = Netsim.Engine.schedule_cancellable e ~delay:0.2 (fun () -> incr fired) in
  Netsim.Engine.schedule e ~delay:0.3 (fun () -> incr fired);
  Alcotest.(check int) "all live" 3 (Netsim.Engine.pending e);
  h1.Netsim.Engine.cancelled <- true;
  h2.Netsim.Engine.cancelled <- true;
  (* the cancelled pair still sits in the heap, but is not pending *)
  Alcotest.(check int) "cancelled not pending" 1 (Netsim.Engine.pending e);
  Netsim.Engine.run e ~until:0.05;
  Alcotest.(check int) "still not pending after partial run" 1
    (Netsim.Engine.pending e);
  Netsim.Engine.run e;
  Alcotest.(check int) "only the live one fired" 1 !fired;
  Alcotest.(check int) "drained" 0 (Netsim.Engine.pending e)

let test_engine_equal_time_seq_with_cancel () =
  let e = Netsim.Engine.create () in
  let log = ref [] in
  let note x () = log := x :: !log in
  let _ = Netsim.Engine.schedule_cancellable e ~delay:0.1 (note "a") in
  let b = Netsim.Engine.schedule_cancellable e ~delay:0.1 (note "b") in
  let _ = Netsim.Engine.schedule_cancellable e ~delay:0.1 (note "c") in
  b.Netsim.Engine.cancelled <- true;
  Netsim.Engine.run e;
  (* equal-time events keep scheduling (seq) order; a cancelled one in
     the middle is skipped without disturbing its neighbours *)
  Alcotest.(check (list string)) "seq order minus cancelled" [ "a"; "c" ]
    (List.rev !log)

let test_engine_resume_after_until () =
  let e = Netsim.Engine.create () in
  let log = ref [] in
  let note x () = log := x :: !log in
  Netsim.Engine.schedule e ~delay:1.0 (note "early");
  Netsim.Engine.schedule e ~delay:2.0 (note "exact");
  Netsim.Engine.schedule e ~delay:3.0 (note "late");
  Netsim.Engine.run e ~until:2.0;
  (* [until] is inclusive; the event beyond it is pushed back intact *)
  Alcotest.(check (list string)) "boundary inclusive" [ "early"; "exact" ]
    (List.rev !log);
  Alcotest.(check int) "late one pending" 1 (Netsim.Engine.pending e);
  Alcotest.(check (float 1e-9)) "clock at horizon" 2.0 (Netsim.Engine.now e);
  Netsim.Engine.run e;
  Alcotest.(check (list string)) "resumed" [ "early"; "exact"; "late" ]
    (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock at last event" 3.0 (Netsim.Engine.now e)

let qc_heap =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"heap delivers in time order" ~count:100
       QCheck.(list (float_bound_exclusive 1000.))
       (fun delays ->
         let e = Netsim.Engine.create () in
         let out = ref [] in
         List.iter
           (fun d -> Netsim.Engine.schedule e ~delay:d (fun () -> out := d :: !out))
           delays;
         Netsim.Engine.run e;
         List.rev !out = List.sort compare delays))

let mk_packet ~src ~dst ?(len = 100) () =
  { Netsim.Packet.id = 0; src; dst; flags = Netsim.Packet.plain_flags; seq = 0;
    ack_seq = 0; payload = String.make len 'x'; marks = [] }

let test_link_delay_and_rate () =
  let e = Netsim.Engine.create () in
  let rng = Crypto.Drbg.create ~seed:"link" in
  let netem =
    { Netsim.Link.loss = 0.; loss_towards = None; delay_s = 0.05; jitter_s = 0.;
      rate_bps = 8000. (* 1000 bytes per second *) }
  in
  let taps = ref [] in
  let link = Netsim.Link.create e rng netem ~tap:(fun t _ -> taps := t :: !taps) in
  let arrivals = ref [] in
  let p = mk_packet ~src:"a" ~dst:"b" ~len:(100 - 66) () in
  (* wire size = 66 header + 34 payload = 100 bytes -> 0.1 s serialization *)
  Netsim.Link.send link p ~deliver:(fun _ ->
      arrivals := Netsim.Engine.now e :: !arrivals);
  Netsim.Link.send link p ~deliver:(fun _ ->
      arrivals := Netsim.Engine.now e :: !arrivals);
  Netsim.Engine.run e;
  (match List.rev !arrivals with
  | [ t1; t2 ] ->
    Alcotest.(check (float 1e-6)) "first arrival" 0.15 t1;
    (* FIFO queue: second starts after the first finishes *)
    Alcotest.(check (float 1e-6)) "queued arrival" 0.25 t2
  | _ -> Alcotest.fail "expected two arrivals");
  Alcotest.(check int) "tap saw both" 2 (List.length !taps)

let test_link_loss () =
  let e = Netsim.Engine.create () in
  let rng = Crypto.Drbg.create ~seed:"loss" in
  let netem =
    { Netsim.Link.loss = 0.5; loss_towards = Some "b"; delay_s = 0.; jitter_s = 0.;
      rate_bps = 1e9 }
  in
  let link = Netsim.Link.create e rng netem ~tap:(fun _ _ -> ()) in
  let got = ref 0 in
  for _ = 1 to 1000 do
    Netsim.Link.send link (mk_packet ~src:"a" ~dst:"b" ()) ~deliver:(fun _ -> incr got)
  done;
  (* reverse direction unaffected *)
  let got_rev = ref 0 in
  for _ = 1 to 100 do
    Netsim.Link.send link (mk_packet ~src:"b" ~dst:"a" ()) ~deliver:(fun _ -> incr got_rev)
  done;
  Netsim.Engine.run e;
  Alcotest.(check bool) "about half dropped" true (!got > 400 && !got < 600);
  Alcotest.(check int) "directional loss" 100 !got_rev;
  Alcotest.(check int) "loss accounting" (1100 - !got - !got_rev)
    (Netsim.Link.stats_lost link)

let test_link_lost_packet_frees_wire () =
  (* netem drops before the interface queue: a dropped packet must not
     consume serialization time and delay the packet behind it. With
     loss = 0.5 some seeds drop the first of two back-to-back packets;
     in every such case the survivor must arrive at its own
     serialization + delay (0.15 s), not queued behind the ghost
     (0.25 s). *)
  let netem =
    { Netsim.Link.loss = 0.5; loss_towards = Some "b"; delay_s = 0.05;
      jitter_s = 0.; rate_bps = 8000. }
  in
  let observed = ref 0 in
  for i = 0 to 31 do
    let e = Netsim.Engine.create () in
    let rng = Crypto.Drbg.create ~seed:(Printf.sprintf "wire%d" i) in
    let link = Netsim.Link.create e rng netem ~tap:(fun _ _ -> ()) in
    let arrivals = ref [] in
    let p = mk_packet ~src:"a" ~dst:"b" ~len:(100 - 66) () in
    Netsim.Link.send link { p with Netsim.Packet.id = 1 } ~deliver:(fun q ->
        arrivals := (q.Netsim.Packet.id, Netsim.Engine.now e) :: !arrivals);
    Netsim.Link.send link { p with Netsim.Packet.id = 2 } ~deliver:(fun q ->
        arrivals := (q.Netsim.Packet.id, Netsim.Engine.now e) :: !arrivals);
    Netsim.Engine.run e;
    match List.rev !arrivals with
    | [ (2, t) ] ->
      (* first dropped, second delivered: the interesting case *)
      incr observed;
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "seed %d: survivor not queued behind the ghost" i)
        0.15 t
    | _ -> ()
  done;
  Alcotest.(check bool) "the drop-then-deliver case occurred" true
    (!observed > 0)

let test_host_cpu () =
  let e = Netsim.Engine.create () in
  let h = Netsim.Host.create e ~name:"h" in
  let finished = ref [] in
  Netsim.Host.charge h ~ms:10. ~lib:"libcrypto" ~k:(fun () ->
      finished := ("a", Netsim.Engine.now e) :: !finished);
  (* second job must queue behind the first on the single core *)
  Netsim.Host.charge h ~ms:5. ~lib:"libssl" ~k:(fun () ->
      finished := ("b", Netsim.Engine.now e) :: !finished);
  Netsim.Engine.run e;
  (match List.rev !finished with
  | [ ("a", ta); ("b", tb) ] ->
    Alcotest.(check (float 1e-9)) "first at 10ms" 0.010 ta;
    Alcotest.(check (float 1e-9)) "second queued to 15ms" 0.015 tb
  | _ -> Alcotest.fail "both continuations must run");
  Alcotest.(check (float 1e-9)) "ledger total" 15. (Netsim.Host.total_cpu_ms h);
  Alcotest.(check (float 1e-9)) "ledger split" 10.
    (List.assoc "libcrypto" (Netsim.Host.ledger h))

(* ---- TCP ----------------------------------------------------------------- *)

let tcp_setup ?(netem = Netsim.Link.ideal) ?(config = Netsim.Tcp.default_config) seed =
  let e = Netsim.Engine.create () in
  let rng = Crypto.Drbg.create ~seed in
  let trace = Netsim.Tap.create () in
  let link =
    Netsim.Link.create e rng netem ~tap:(fun t p -> Netsim.Tap.tap trace t p)
  in
  let client = Netsim.Host.create e ~name:"client" in
  let server = Netsim.Host.create e ~name:"server" in
  let c, s = Netsim.Tcp.create_pair e link config ~client ~server in
  (e, c, s, trace)

let transfer ?netem ?config ~data seed =
  let e, c, s, trace = tcp_setup ?netem ?config seed in
  let received = Buffer.create 1024 in
  Netsim.Tcp.on_receive s (fun chunk -> Buffer.add_string received chunk);
  Netsim.Tcp.connect c ~on_established:(fun () -> Netsim.Tcp.write c data);
  Netsim.Engine.run e;
  (Buffer.contents received, c, s, trace, e)

let test_tcp_basic_transfer () =
  let data = String.init 10_000 (fun i -> Char.chr (i mod 256)) in
  let got, c, _, _, _ = transfer ~data "tcp-basic" in
  Alcotest.(check int) "all bytes" (String.length data) (String.length got);
  Alcotest.(check string) "in order, uncorrupted" data got;
  Alcotest.(check int) "no retransmissions" 0 (Netsim.Tcp.retransmissions c)

let test_tcp_mss_segmentation () =
  let data = String.make 5000 'z' in
  let _, c, _, trace, _ = transfer ~data "tcp-mss" in
  let data_pkts =
    List.filter
      (fun e ->
        e.Netsim.Tap.packet.Netsim.Packet.src = "client"
        && Netsim.Packet.payload_len e.Netsim.Tap.packet > 0)
      (Netsim.Tap.entries trace)
  in
  Alcotest.(check int) "4 segments for 5000 B at MSS 1448" 4 (List.length data_pkts);
  List.iteri
    (fun i e ->
      let len = Netsim.Packet.payload_len e.Netsim.Tap.packet in
      if i < 3 then Alcotest.(check int) "full MSS" 1448 len
      else Alcotest.(check int) "tail" (5000 - (3 * 1448)) len)
    data_pkts;
  ignore c

let test_tcp_loss_recovery () =
  (* a lossy link must still deliver everything, with retransmissions *)
  let netem =
    { Netsim.Link.loss = 0.15; loss_towards = Some "server"; delay_s = 0.005;
      jitter_s = 0.; rate_bps = 1e8 }
  in
  let data = String.init 200_000 (fun i -> Char.chr (i * 7 mod 256)) in
  let got, c, _, _, _ = transfer ~netem ~data "tcp-loss" in
  Alcotest.(check string) "lossless delivery over lossy link" data got;
  Alcotest.(check bool) "retransmissions happened" true
    (Netsim.Tcp.retransmissions c > 0)

let test_tcp_trace_counters () =
  (* under 10 % loss the trace must carry one retransmit instant per
     recorded retransmission and a cwnd counter that climbs past the
     initial window, then collapses below it on loss *)
  let netem =
    { Netsim.Link.loss = 0.10; loss_towards = Some "server"; delay_s = 0.005;
      jitter_s = 0.; rate_bps = 1e8 }
  in
  let data = String.init 150_000 (fun i -> Char.chr (i * 11 mod 256)) in
  let buf = Trace.Buf.create ~label:"lossy" () in
  let got, c, s, _, _ =
    Trace.Sink.run_with buf (fun () -> transfer ~netem ~data "tcp-trace-loss")
  in
  Alcotest.(check string) "delivery intact under tracing" data got;
  let events = Trace.Buf.events buf in
  let retransmit_instants =
    List.length
      (List.filter
         (function
           | Trace.Event.Instant i -> i.Trace.Event.i_name = "retransmit"
           | _ -> false)
         events)
  in
  let total_rtx = Netsim.Tcp.retransmissions c + Netsim.Tcp.retransmissions s in
  Alcotest.(check bool) "retransmissions happened" true (total_rtx > 0);
  Alcotest.(check int) "one retransmit instant per retransmission" total_rtx
    retransmit_instants;
  let client_cwnd =
    List.filter_map
      (function
        | Trace.Event.Counter cn
          when cn.Trace.Event.c_track = "client"
               && cn.Trace.Event.c_name = "cwnd" ->
          Some cn.Trace.Event.c_value
        | _ -> None)
      events
  in
  (match client_cwnd with
  | first :: _ ->
    Alcotest.(check (float 0.)) "cwnd starts at the initial window" 10. first
  | [] -> Alcotest.fail "no cwnd counter samples");
  Alcotest.(check bool) "cwnd grows past the initial window" true
    (List.exists (fun v -> v > 10.) client_cwnd);
  Alcotest.(check bool) "loss shrinks cwnd below the initial window" true
    (List.exists (fun v -> v < 10.) client_cwnd);
  Alcotest.(check bool) "flight counter sampled" true
    (List.exists
       (function
         | Trace.Event.Counter cn -> cn.Trace.Event.c_name = "flight"
         | _ -> false)
       events)

let test_tcp_initial_cwnd () =
  (* with a long RTT, exactly init_cwnd segments go out in the first burst *)
  let netem =
    { Netsim.Link.loss = 0.; loss_towards = None; delay_s = 0.25; jitter_s = 0.; rate_bps = 1e9 }
  in
  let data = String.make 100_000 'q' in
  let _, _, _, trace, _ = transfer ~netem ~data "tcp-cwnd" in
  let first_burst =
    List.filter
      (fun en ->
        let p = en.Netsim.Tap.packet in
        p.Netsim.Packet.src = "client"
        && Netsim.Packet.payload_len p > 0
        && en.Netsim.Tap.time < 0.7 (* before the first data ACK returns *))
      (Netsim.Tap.entries trace)
  in
  Alcotest.(check int) "initial window = 10 segments" 10 (List.length first_burst)

let test_tcp_cwnd_segment_counting () =
  (* eleven small writes = eleven partially-filled segments: the last one
     must wait for an ACK even though total bytes are far below 10 x MSS
     (the paper's section 5.4 packetization effect) *)
  let netem =
    { Netsim.Link.loss = 0.; loss_towards = None; delay_s = 0.25; jitter_s = 0.; rate_bps = 1e9 }
  in
  let e, c, s, trace = tcp_setup ~netem "tcp-segcount" in
  let received = ref 0 in
  Netsim.Tcp.on_receive s (fun chunk -> received := !received + String.length chunk);
  Netsim.Tcp.connect c ~on_established:(fun () ->
      for _ = 1 to 11 do
        Netsim.Tcp.write c (String.make 100 'w')
      done);
  Netsim.Engine.run e;
  Alcotest.(check int) "all 1100 bytes arrive" 1100 !received;
  let early =
    List.filter
      (fun en ->
        let p = en.Netsim.Tap.packet in
        p.Netsim.Packet.src = "client"
        && Netsim.Packet.payload_len p > 0
        && en.Netsim.Tap.time < 0.7)
      (Netsim.Tap.entries trace)
  in
  Alcotest.(check int) "only 10 segments before the ACK" 10 (List.length early)

let test_tcp_marks () =
  let e, c, s, trace = tcp_setup "tcp-marks" in
  Netsim.Tcp.on_receive s (fun _ -> ());
  Netsim.Tcp.connect c ~on_established:(fun () ->
      Netsim.Tcp.write c ~marks:[ (0, "A"); (3000, "B") ] (String.make 4000 'm'));
  Netsim.Engine.run e;
  (match Netsim.Tap.find_mark trace "A" with
  | Some en -> Alcotest.(check int) "A in first segment" 0
                 en.Netsim.Tap.packet.Netsim.Packet.seq
  | None -> Alcotest.fail "mark A not seen");
  (match Netsim.Tap.find_mark trace "B" with
  | Some en ->
    Alcotest.(check int) "B in third segment" 2896
      en.Netsim.Tap.packet.Netsim.Packet.seq
  | None -> Alcotest.fail "mark B not seen")

let test_tcp_fin () =
  let e, c, s, trace = tcp_setup "tcp-fin" in
  Netsim.Tcp.on_receive s (fun _ -> ());
  Netsim.Tcp.connect c ~on_established:(fun () ->
      Netsim.Tcp.write c "bye";
      Netsim.Tcp.close c);
  Netsim.Engine.run e;
  ignore s;
  Alcotest.(check bool) "fin accounted" true (Netsim.Tcp.packets_sent c >= 3);
  (* the FIN occupies one sequence slot: after 3 payload bytes the
     server's final ACK must acknowledge seq 4, making a retransmitted
     FIN distinguishable from new data *)
  let server_acks =
    List.filter
      (fun en ->
        en.Netsim.Tap.packet.Netsim.Packet.src = "server"
        && Netsim.Packet.payload_len en.Netsim.Tap.packet = 0)
      (Netsim.Tap.entries trace)
  in
  (match List.rev server_acks with
  | last :: _ ->
    Alcotest.(check int) "final ACK covers payload + FIN slot" 4
      last.Netsim.Tap.packet.Netsim.Packet.ack_seq
  | [] -> Alcotest.fail "server never ACKed")

let test_tcp_bidirectional_loss () =
  (* loss in both directions while both sides transmit: ACKs ride on
     data segments, and those piggybacked duplicates must count toward
     fast retransmit so recovery does not degenerate to RTO stalls;
     every seed must deliver both streams intact within the budget *)
  let netem =
    { Netsim.Link.loss = 0.08; loss_towards = None; delay_s = 0.02;
      jitter_s = 0.; rate_bps = 1e7 }
  in
  let c_data = String.init 50_000 (fun i -> Char.chr (i * 13 mod 256)) in
  let s_data = String.init 50_000 (fun i -> Char.chr (i * 17 mod 256)) in
  for i = 0 to 9 do
    let e = Netsim.Engine.create () in
    let rng = Crypto.Drbg.create ~seed:(Printf.sprintf "bidir%d" i) in
    let link = Netsim.Link.create e rng netem ~tap:(fun _ _ -> ()) in
    let client = Netsim.Host.create e ~name:"client" in
    let server = Netsim.Host.create e ~name:"server" in
    let c, s =
      Netsim.Tcp.create_pair e link Netsim.Tcp.default_config ~client ~server
    in
    let got_c = Buffer.create 1024 and got_s = Buffer.create 1024 in
    Netsim.Tcp.on_receive c (fun chunk -> Buffer.add_string got_c chunk);
    Netsim.Tcp.on_receive s (fun chunk ->
        if Buffer.length got_s = 0 then Netsim.Tcp.write s s_data;
        Buffer.add_string got_s chunk);
    Netsim.Tcp.connect c ~on_established:(fun () -> Netsim.Tcp.write c c_data);
    Netsim.Engine.run e ~until:290.;
    Alcotest.(check string)
      (Printf.sprintf "seed %d: client->server stream intact" i)
      c_data (Buffer.contents got_s);
    Alcotest.(check string)
      (Printf.sprintf "seed %d: server->client stream intact" i)
      s_data (Buffer.contents got_c)
  done

let qc_tcp_random_writes =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"tcp delivers arbitrary write patterns intact"
       ~count:30
       QCheck.(list_of_size (QCheck.Gen.int_range 1 12) (int_range 1 5000))
       (fun sizes ->
         let e, c, s, _ = tcp_setup "tcp-qc" in
         let received = Buffer.create 1024 in
         Netsim.Tcp.on_receive s (fun chunk -> Buffer.add_string received chunk);
         let payload =
           List.mapi (fun i n -> String.make n (Char.chr (65 + (i mod 26)))) sizes
         in
         Netsim.Tcp.connect c ~on_established:(fun () ->
             List.iter (fun chunk -> Netsim.Tcp.write c chunk) payload);
         Netsim.Engine.run e;
         Buffer.contents received = String.concat "" payload))

let test_no_recovery_deadlock () =
  (* regression: stale in-flight accounting after an RTO used to pin the
     window shut (cwnd < phantom in-flight, timer cancelled) and strand
     large lossy transfers; every seed must finish within the virtual
     budget *)
  let netem =
    { Netsim.Link.loss = 0.10; loss_towards = Some "client"; delay_s = 0.1;
      jitter_s = 0.; rate_bps = 1e6 }
  in
  for i = 0 to 29 do
    let e = Netsim.Engine.create () in
    let rng = Crypto.Drbg.create ~seed:(Printf.sprintf "deadlock%d" i) in
    let link = Netsim.Link.create e rng netem ~tap:(fun _ _ -> ()) in
    let client = Netsim.Host.create e ~name:"client" in
    let server = Netsim.Host.create e ~name:"server" in
    let c, s = Netsim.Tcp.create_pair e link Netsim.Tcp.default_config ~client ~server in
    let received = ref 0 in
    Netsim.Tcp.on_receive c (fun chunk -> received := !received + String.length chunk);
    let data = String.make 76000 'd' in
    Netsim.Tcp.on_receive s (fun _ ->
        Netsim.Tcp.write s (String.sub data 0 200);
        Netsim.Tcp.write s (String.sub data 200 40000);
        Netsim.Tcp.write s (String.sub data 40200 35800));
    Netsim.Tcp.connect c ~on_established:(fun () -> Netsim.Tcp.write c "hello");
    Netsim.Engine.run e ~until:290.;
    Alcotest.(check int) (Printf.sprintf "seed %d delivers all bytes" i) 76000
      !received
  done

let test_jitter_reordering () =
  (* heavy jitter reorders packets in flight; TCP must still deliver the
     stream intact, using its out-of-order queue *)
  let netem =
    { Netsim.Link.loss = 0.; loss_towards = None; delay_s = 0.05;
      jitter_s = 0.045; rate_bps = 1e9 }
  in
  let data = String.init 150_000 (fun i -> Char.chr (i * 11 mod 256)) in
  let got, _, _, trace, _ = transfer ~netem ~data "tcp-jitter" in
  Alcotest.(check string) "stream intact under reordering" data got;
  (* confirm the link actually reordered: some later-sent data segment
     arrived before an earlier one (dupACKs are the receiver's response) *)
  let server_acks =
    List.filter
      (fun en ->
        en.Netsim.Tap.packet.Netsim.Packet.src = "server"
        && Netsim.Packet.payload_len en.Netsim.Tap.packet = 0)
      (Netsim.Tap.entries trace)
  in
  let rec has_dup = function
    | a :: (b : Netsim.Tap.entry) :: rest ->
      a.Netsim.Tap.packet.Netsim.Packet.ack_seq
      = b.Netsim.Tap.packet.Netsim.Packet.ack_seq
      || has_dup (b :: rest)
    | _ -> false
  in
  Alcotest.(check bool) "reordering observed (duplicate ACKs)" true
    (has_dup server_acks)

let test_pcap_export () =
  let e, c, s, trace = tcp_setup "pcap" in
  Netsim.Tcp.on_receive s (fun _ -> ());
  Netsim.Tcp.connect c ~on_established:(fun () ->
      Netsim.Tcp.write c (String.make 2000 'p'));
  Netsim.Engine.run e;
  let dump = Netsim.Pcap.of_entries (Netsim.Tap.entries trace) in
  (* global header magic, little-endian *)
  Alcotest.(check string) "pcap magic" "d4c3b2a1"
    (Crypto.Bytesx.to_hex (String.sub dump 0 4));
  Alcotest.(check int) "linktype ethernet" 1 (Char.code dump.[20]);
  (* walk the records: each must parse and the count must match the tap *)
  let rec count pos acc =
    if pos >= String.length dump then acc
    else begin
      let incl = Crypto.Bytesx.get_u32_le dump (pos + 8) in
      Alcotest.(check int) "incl = orig" incl (Crypto.Bytesx.get_u32_le dump (pos + 12));
      (* ethernet + ipv4 + minimal tcp present *)
      Alcotest.(check bool) "frame big enough" true (incl >= 14 + 20 + 20);
      count (pos + 16 + incl) (acc + 1)
    end
  in
  Alcotest.(check int) "record per tapped packet" (Netsim.Tap.length trace)
    (count 24 0);
  (* ethertype of the first frame *)
  Alcotest.(check string) "ethertype ipv4" "0800"
    (Crypto.Bytesx.to_hex (String.sub dump (24 + 16 + 12) 2))

let suites =
  [ ( "netsim",
      [ Alcotest.test_case "engine ordering" `Quick test_engine_ordering;
        Alcotest.test_case "engine cancel/until" `Quick test_engine_cancel_and_until;
        Alcotest.test_case "engine pending excludes cancelled" `Quick
          test_engine_pending_excludes_cancelled;
        Alcotest.test_case "engine equal-time seq with cancel" `Quick
          test_engine_equal_time_seq_with_cancel;
        Alcotest.test_case "engine resume after until" `Quick
          test_engine_resume_after_until;
        qc_heap;
        Alcotest.test_case "link delay + rate" `Quick test_link_delay_and_rate;
        Alcotest.test_case "link loss" `Quick test_link_loss;
        Alcotest.test_case "lost packet frees the wire" `Quick
          test_link_lost_packet_frees_wire;
        Alcotest.test_case "host cpu serialization" `Quick test_host_cpu;
        Alcotest.test_case "tcp transfer" `Quick test_tcp_basic_transfer;
        Alcotest.test_case "tcp segmentation" `Quick test_tcp_mss_segmentation;
        Alcotest.test_case "tcp loss recovery" `Quick test_tcp_loss_recovery;
        Alcotest.test_case "tcp trace counters under loss" `Quick
          test_tcp_trace_counters;
        Alcotest.test_case "tcp initial cwnd" `Quick test_tcp_initial_cwnd;
        Alcotest.test_case "tcp segment-counted cwnd" `Quick test_tcp_cwnd_segment_counting;
        Alcotest.test_case "tcp marks" `Quick test_tcp_marks;
        Alcotest.test_case "tcp fin" `Quick test_tcp_fin;
        Alcotest.test_case "tcp bidirectional loss" `Slow
          test_tcp_bidirectional_loss;
        Alcotest.test_case "no recovery deadlock" `Slow test_no_recovery_deadlock;
        Alcotest.test_case "jitter reordering" `Quick test_jitter_reordering;
        Alcotest.test_case "pcap export" `Quick test_pcap_export;
        qc_tcp_random_writes ] ) ]
