let () = Alcotest.run "pqtls-lint" Test_lint.suites
