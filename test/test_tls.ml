(* TLS 1.3: wire codecs, record protection, key schedule invariants, and
   full simulated handshakes with both real and mocked crypto. *)

let kem name = Pqc.Registry.find_kem name
let sa name = Pqc.Registry.find_sig name

(* ---- wire ------------------------------------------------------------------ *)

let test_wire_vectors () =
  Alcotest.(check string) "vec8" "\x03abc" (Tls.Wire.vec8 "abc");
  Alcotest.(check string) "vec16" "\x00\x03abc" (Tls.Wire.vec16 "abc");
  Alcotest.(check string) "vec24" "\x00\x00\x03abc" (Tls.Wire.vec24 "abc");
  let r = Tls.Wire.record Tls.Wire.Content_type.Handshake "hi" in
  Alcotest.(check string) "record header" "\x16\x03\x03\x00\x02hi" r;
  let m = Tls.Wire.handshake Tls.Wire.Handshake_type.Finished "mac!" in
  Alcotest.(check string) "handshake header" "\x14\x00\x00\x04mac!" m

let test_reader () =
  let r = Tls.Wire.Reader.of_string "\x01\x00\x02\x03abc" in
  Alcotest.(check int) "u8" 1 (Tls.Wire.Reader.u8 r);
  Alcotest.(check int) "u16" 2 (Tls.Wire.Reader.u16 r);
  Alcotest.(check string) "vec8" "abc" (Tls.Wire.Reader.vec8 r);
  Tls.Wire.Reader.expect_end r;
  Alcotest.check_raises "short read" (Tls.Wire.Decode_error "short read: want 4 have 0")
    (fun () -> ignore (Tls.Wire.Reader.bytes r 4))

(* ---- messages ---------------------------------------------------------------- *)

let test_client_hello_roundtrip () =
  let rng = Crypto.Drbg.create ~seed:"tls-ch" in
  List.iter
    (fun kem_name ->
      let k = kem kem_name in
      let kp = k.Pqc.Kem.keygen rng in
      let ch =
        { Tls.Messages.random = Crypto.Drbg.generate rng 32;
          session_id = Crypto.Drbg.generate rng 32;
          group = kem_name;
          key_share = kp.Pqc.Kem.public;
          sig_algs = [ "rsa:2048"; "dilithium3" ];
          psk_offer = None;
          early_data = false }
      in
      let enc = Tls.Messages.encode_client_hello ch in
      let dec = Tls.Messages.decode_client_hello enc in
      Alcotest.(check string) "group" kem_name dec.Tls.Messages.group;
      Alcotest.(check bool) "key share" true
        (dec.Tls.Messages.key_share = ch.Tls.Messages.key_share);
      Alcotest.(check (list string)) "sig algs" ch.Tls.Messages.sig_algs
        dec.Tls.Messages.sig_algs)
    [ "x25519"; "hqc256"; "p521_kyber1024" ]

let test_server_hello_roundtrip () =
  let rng = Crypto.Drbg.create ~seed:"tls-sh" in
  let sh =
    { Tls.Messages.sh_random = Crypto.Drbg.generate rng 32;
      sh_session_id = Crypto.Drbg.generate rng 32;
      sh_group = "kyber768";
      sh_key_share = Crypto.Drbg.generate rng 1088;
      sh_psk_selected = false }
  in
  let dec = Tls.Messages.decode_server_hello (Tls.Messages.encode_server_hello sh) in
  Alcotest.(check bool) "roundtrip" true (dec = sh)

let test_certificate_roundtrip () =
  let alg = sa "dilithium2" in
  let chain, _ = Tls.Certificate.make_chain alg (Crypto.Drbg.create ~seed:"cert") in
  Alcotest.(check bool) "chain verifies" true (Tls.Certificate.verify chain alg);
  let enc = Tls.Messages.encode_certificate chain.Tls.Certificate.leaf in
  let dec = Tls.Messages.decode_certificate enc in
  Alcotest.(check bool) "certificate roundtrip" true
    (dec = chain.Tls.Certificate.leaf);
  (* a tampered TBS must fail chain verification *)
  let bad = { chain with
              Tls.Certificate.leaf =
                { chain.Tls.Certificate.leaf with Tls.Certificate.subject = "evil" } }
  in
  Alcotest.(check bool) "tampered subject" false (Tls.Certificate.verify bad alg)

(* ---- certificate hierarchies --------------------------------------------------- *)

let test_chain_codec () =
  let profile = Tls.Chain_profile.find "mixed-acme" in
  let rng = Crypto.Drbg.create ~seed:"chain-codec" in
  let chain, _ = Tls.Chain.make profile ~leaf:(sa "dilithium2") rng in
  let certs = Tls.Chain.wire_certs chain in
  Alcotest.(check int) "leaf + two intermediates on the wire" 3
    (List.length certs);
  let enc = Tls.Messages.encode_certificate_chain certs in
  Alcotest.(check bool) "chain codec roundtrip" true
    (Tls.Messages.decode_certificate_chain enc = certs);
  (* the single-leaf encoder is the 1-entry chain encoder, byte for byte:
     the default profile's Certificate message cannot move *)
  let leaf = Tls.Chain.leaf chain in
  Alcotest.(check string) "leaf encoder == 1-entry chain"
    (Tls.Messages.encode_certificate_chain [ leaf ])
    (Tls.Messages.encode_certificate leaf);
  (* the level accounting matches what actually gets encoded *)
  Alcotest.(check int) "wire_bytes matches encoded entries"
    (List.fold_left
       (fun a c ->
         a + String.length (Tls.Certificate.encode c) + Tls.Chain.entry_overhead)
       0 certs)
    (Tls.Chain.wire_bytes chain);
  Alcotest.check_raises "empty certificate_list rejected"
    (Tls.Wire.Decode_error "Certificate: empty certificate_list") (fun () ->
      ignore
        (Tls.Messages.decode_certificate_chain
           (Tls.Messages.encode_certificate_chain [])))

let test_chain_verify () =
  let profile = Tls.Chain_profile.find "mixed-acme" in
  let make seed =
    fst (Tls.Chain.make profile ~leaf:(sa "dilithium2") (Crypto.Drbg.create ~seed))
  in
  let chain = make "chain-verify" in
  Alcotest.(check bool) "full chain verifies" true (Tls.Chain.verify chain);
  let certs = Tls.Chain.wire_certs chain in
  let nth_map i f = List.mapi (fun j c -> if j = i then f c else c) certs in
  let flip s =
    String.mapi (fun i c -> if i = 0 then Char.chr (Char.code c lxor 1) else c) s
  in
  let ok cs = Tls.Chain.verify_against ~local:chain cs in
  Alcotest.(check bool) "tampered intermediate signature" false
    (ok
       (nth_map 1 (fun c ->
            { c with Tls.Certificate.signature = flip c.Tls.Certificate.signature })));
  Alcotest.(check bool) "wrong-level SA" false
    (ok (nth_map 1 (fun c -> { c with Tls.Certificate.algorithm = "rsa:2048" })));
  Alcotest.(check bool) "truncated chain" false
    (ok (match certs with l :: i1 :: _ -> [ l; i1 ] | _ -> assert false));
  (* a structurally identical chain under a different root: every inner
     signature is self-consistent, only the trust anchor disagrees *)
  let other = make "chain-verify-other" in
  Alcotest.(check bool) "other chain self-verifies" true (Tls.Chain.verify other);
  Alcotest.(check bool) "unknown root rejected" false
    (ok (Tls.Chain.wire_certs other))

let test_chain_default_identity () =
  (* the default profile must reproduce Certificate.make_chain exactly:
     same DRBG draws, same lone leaf, same anchor, same server keypair *)
  let alg = sa "dilithium2" in
  let legacy, legacy_kp =
    Tls.Certificate.make_chain alg (Crypto.Drbg.create ~seed:"cert")
  in
  let chain, kp =
    Tls.Chain.make Tls.Chain_profile.default ~leaf:alg
      (Crypto.Drbg.create ~seed:"cert")
  in
  Alcotest.(check bool) "same leaf" true
    (Tls.Chain.leaf chain = legacy.Tls.Certificate.leaf);
  Alcotest.(check bool) "same anchor" true
    (chain.Tls.Chain.anchor_key = legacy.Tls.Certificate.ca_public_key);
  Alcotest.(check bool) "same server keypair" true (kp = legacy_kp);
  Alcotest.(check bool) "single wire entry" true
    (List.length (Tls.Chain.wire_certs chain) = 1);
  Alcotest.(check bool) "verifies" true (Tls.Chain.verify chain)

(* ---- record protection ------------------------------------------------------- *)

let test_record_protection () =
  let secret = Crypto.Sha256.digest "traffic" in
  let keys = Tls.Key_schedule.traffic_keys secret in
  let w = Tls.Record.create keys and r = Tls.Record.create keys in
  let records =
    List.map (Tls.Record.seal w Tls.Wire.Content_type.Handshake)
      [ "first"; "second"; "third" ]
  in
  List.iteri
    (fun i rec_bytes ->
      let body = String.sub rec_bytes 5 (String.length rec_bytes - 5) in
      match Tls.Record.open_ r body with
      | Some (Tls.Wire.Content_type.Handshake, frag) ->
        Alcotest.(check string) "fragment" (List.nth [ "first"; "second"; "third" ] i) frag
      | _ -> Alcotest.fail "open failed")
    records;
  (* sequence-number mismatch (replay) must fail *)
  let w2 = Tls.Record.create keys and r2 = Tls.Record.create keys in
  let one = Tls.Record.seal w2 Tls.Wire.Content_type.Handshake "x" in
  let body = String.sub one 5 (String.length one - 5) in
  (match Tls.Record.open_ r2 body with Some _ -> () | None -> Alcotest.fail "first");
  Alcotest.(check bool) "replay rejected" true (Tls.Record.open_ r2 body = None)

let test_null_records () =
  let w = Tls.Record.create_null () and r = Tls.Record.create_null () in
  let sealed = Tls.Record.seal w Tls.Wire.Content_type.Handshake "payload" in
  (* identical sizes to the AEAD path: 5 header + len + 1 type + 16 tag *)
  Alcotest.(check int) "size preserved" (5 + 7 + 1 + 16) (String.length sealed);
  (match Tls.Record.open_ r (String.sub sealed 5 (String.length sealed - 5)) with
  | Some (Tls.Wire.Content_type.Handshake, "payload") -> ()
  | _ -> Alcotest.fail "null open");
  Alcotest.(check bool) "null tamper detected" true
    (Tls.Record.open_ r (String.make 24 '\000') = None)

(* ---- key schedule --------------------------------------------------------------- *)

let test_key_schedule () =
  let ss = Crypto.Sha256.digest "shared" in
  let th = Crypto.Sha256.digest "transcript" in
  let s1 = Tls.Key_schedule.handshake_secrets ~shared_secret:ss ~hello_transcript_hash:th () in
  let s2 = Tls.Key_schedule.handshake_secrets ~shared_secret:ss ~hello_transcript_hash:th () in
  Alcotest.(check bool) "deterministic" true (s1 = s2);
  Alcotest.(check bool) "client <> server secret" true
    (s1.Tls.Key_schedule.client_handshake_traffic
    <> s1.Tls.Key_schedule.server_handshake_traffic);
  let other =
    Tls.Key_schedule.handshake_secrets ~shared_secret:(Crypto.Sha256.digest "x")
      ~hello_transcript_hash:th ()
  in
  Alcotest.(check bool) "secret-sensitive" true
    (other.Tls.Key_schedule.master <> s1.Tls.Key_schedule.master);
  let keys = Tls.Key_schedule.traffic_keys s1.Tls.Key_schedule.client_handshake_traffic in
  Alcotest.(check int) "aes-128 key" 16 (String.length keys.Tls.Key_schedule.key);
  Alcotest.(check int) "iv" 12 (String.length keys.Tls.Key_schedule.iv);
  (* RFC 8446 appendix: expand-label framing sanity via known reference
     derive of the "derived" label on a zero salt *)
  let label_out =
    Tls.Key_schedule.hkdf_expand_label ~secret:(String.make 32 '\000')
      ~label:"derived" ~context:(Crypto.Sha256.digest "") 32
  in
  Alcotest.(check int) "expand-label length" 32 (String.length label_out)

(* ---- resumption: key-schedule vectors, binders, tickets ---------------------------- *)

let hex = Crypto.Bytesx.of_hex

let test_key_schedule_vectors () =
  (* RFC 8446 key schedule on SHA-256: Extract(salt "", ikm zeros) *)
  Alcotest.(check bool) "no-PSK early secret" true
    (Tls.Key_schedule.early_secret ()
    = hex "33ad0a1c607ec03b09e6cd9893680ce210adf300aa1f2660e1b22e10f170f92a");
  (* RFC 8448 section 4 (resumed handshake): the resumption PSK and the
     early secret extracted from it *)
  let psk =
    hex "4ecd0eb6ec3b4d87f5d6028f922ca4c5851a277fd41311c9e62d2c9492e1c4f3"
  in
  Alcotest.(check bool) "RFC 8448 early secret" true
    (Tls.Key_schedule.early_secret ~psk ()
    = hex "9b2188e9b2fc6d64d71dc329900e20bb41915000f678aa839cbb797cb7d8332c")

let test_no_psk_regression () =
  (* ?psk:None must stay byte-identical to the historical zero-ikm path;
     an explicit all-zero PSK is the same ikm, a real PSK is not *)
  let ss = Crypto.Sha256.digest "shared" and th = Crypto.Sha256.digest "th" in
  let legacy =
    Tls.Key_schedule.handshake_secrets ~shared_secret:ss
      ~hello_transcript_hash:th ()
  in
  let zeros =
    Tls.Key_schedule.handshake_secrets ~psk:(String.make 32 '\000')
      ~shared_secret:ss ~hello_transcript_hash:th ()
  in
  Alcotest.(check bool) "zero PSK == no PSK" true (legacy = zeros);
  let with_psk =
    Tls.Key_schedule.handshake_secrets ~psk:(Crypto.Sha256.digest "psk")
      ~shared_secret:ss ~hello_transcript_hash:th ()
  in
  Alcotest.(check bool) "real PSK changes secrets" true (with_psk <> legacy)

(* extension types of an encoded ClientHello, in wire order *)
let extension_types msg =
  let r = Tls.Wire.Reader.of_string (Tls.Messages.body msg) in
  ignore (Tls.Wire.Reader.u16 r) (* legacy_version *);
  ignore (Tls.Wire.Reader.bytes r 32) (* random *);
  ignore (Tls.Wire.Reader.vec8 r) (* session_id *);
  ignore (Tls.Wire.Reader.vec16 r) (* cipher_suites *);
  ignore (Tls.Wire.Reader.vec8 r) (* compression *);
  let er = Tls.Wire.Reader.of_string (Tls.Wire.Reader.vec16 r) in
  let rec loop acc =
    if Tls.Wire.Reader.remaining er = 0 then List.rev acc
    else begin
      let ty = Tls.Wire.Reader.u16 er in
      ignore (Tls.Wire.Reader.vec16 er);
      loop (ty :: acc)
    end
  in
  loop []

let make_offer rng ?(binder = String.make 32 '\000') () =
  { Tls.Messages.random = Crypto.Drbg.generate rng 32;
    session_id = Crypto.Drbg.generate rng 32;
    group = "kyber768";
    key_share = Crypto.Drbg.generate rng 1184;
    sig_algs = [ "rsa:2048" ];
    psk_offer =
      Some
        { Tls.Messages.psk_identity = Crypto.Drbg.generate rng 150;
          psk_obfuscated_age = 0x11223344;
          psk_binder = binder };
    early_data = true }

let test_psk_client_hello () =
  let rng = Crypto.Drbg.create ~seed:"tls-psk-ch" in
  let ch = make_offer rng () in
  let enc = Tls.Messages.encode_client_hello ch in
  (* pre_shared_key (41) last, legacy session_ticket stub (35) dropped,
     early_data (42) present *)
  let tys = extension_types enc in
  Alcotest.(check bool) "psk last" true (List.nth tys (List.length tys - 1) = 41);
  Alcotest.(check bool) "session_ticket stub dropped" false (List.mem 35 tys);
  Alcotest.(check bool) "early_data offered" true (List.mem 42 tys);
  (* the full handshake keeps the stub and never offers a PSK *)
  let full_tys =
    extension_types
      (Tls.Messages.encode_client_hello
         { ch with Tls.Messages.psk_offer = None; early_data = false })
  in
  Alcotest.(check bool) "stub on full handshake" true (List.mem 35 full_tys);
  Alcotest.(check bool) "no psk on full handshake" false (List.mem 41 full_tys);
  (* codec roundtrip preserves the offer *)
  let dec = Tls.Messages.decode_client_hello enc in
  Alcotest.(check bool) "offer roundtrip" true (dec.Tls.Messages.psk_offer = ch.Tls.Messages.psk_offer);
  Alcotest.(check bool) "early_data roundtrip" true dec.Tls.Messages.early_data;
  (* truncation removes exactly the binders list from the end *)
  Alcotest.(check int) "truncation length" (String.length enc - Tls.Messages.binders_length)
    (String.length (Tls.Messages.truncated_client_hello ch))

let test_binder_mac () =
  let rng = Crypto.Drbg.create ~seed:"tls-binder" in
  let psk = Crypto.Drbg.generate rng 32 in
  let binder_of psk ch =
    let early = Tls.Key_schedule.early_secret ~psk () in
    Tls.Key_schedule.binder_mac
      ~binder_key:(Tls.Key_schedule.binder_key ~early_secret:early)
      ~truncated_transcript_hash:
        (Crypto.Sha256.digest (Tls.Messages.truncated_client_hello ch))
  in
  (* the truncated transcript is independent of the binder value, so the
     dummy-binder encoding computes the same MAC the final CH carries *)
  let dummy = make_offer rng () in
  let mac = binder_of psk dummy in
  let final = { dummy with Tls.Messages.psk_offer =
                  Option.map (fun o -> { o with Tls.Messages.psk_binder = mac })
                    dummy.Tls.Messages.psk_offer }
  in
  Alcotest.(check bool) "binder independent of binder bytes" true
    (Tls.Messages.truncated_client_hello final
    = Tls.Messages.truncated_client_hello dummy);
  (* negatives: a different PSK, or a different truncated transcript,
     must move the MAC *)
  Alcotest.(check bool) "wrong PSK detected" true
    (binder_of (Crypto.Drbg.generate rng 32) dummy <> mac);
  let other_ch = make_offer (Crypto.Drbg.create ~seed:"tls-binder-3") () in
  Alcotest.(check bool) "transcript-sensitive" true (binder_of psk other_ch <> mac)

let test_ticket_roundtrip () =
  let rng = Crypto.Drbg.create ~seed:"tls-nst" in
  let nst =
    { Tls.Messages.nst_lifetime = 7200;
      nst_age_add = 0xdeadbeef;
      nst_nonce = "\x00";
      nst_ticket = Crypto.Drbg.generate rng 150;
      nst_max_early_data = 16384 }
  in
  let enc = Tls.Messages.encode_new_session_ticket nst in
  Alcotest.(check bool) "nst roundtrip" true
    (Tls.Messages.decode_new_session_ticket enc = nst);
  (* no 0-RTT permission: the early_data ticket extension disappears *)
  let no_early = { nst with Tls.Messages.nst_max_early_data = 0 } in
  let enc0 = Tls.Messages.encode_new_session_ticket no_early in
  Alcotest.(check bool) "nst without early_data" true
    (Tls.Messages.decode_new_session_ticket enc0 = no_early);
  Alcotest.(check bool) "early_data ext costs bytes" true
    (String.length enc > String.length enc0);
  (* and the message survives TCP refragmentation through the codec *)
  let inb = Tls.Codec.Inbound.create () in
  let stream = Tls.Codec.fragment_plaintext enc in
  String.iter (fun c -> Tls.Codec.Inbound.feed inb (String.make 1 c)) stream;
  (match Tls.Codec.Inbound.next inb with
  | Tls.Codec.Inbound.Handshake_message m ->
    Alcotest.(check bool) "codec roundtrip" true
      (Tls.Messages.decode_new_session_ticket m = nst)
  | _ -> Alcotest.fail "codec did not yield the ticket")

(* ---- full handshakes --------------------------------------------------------------- *)

type hs_outcome = {
  part_a : float;
  part_b : float;
  client_bytes : int;
  server_bytes : int;
}

let run_handshake ?(buffering = Tls.Config.Optimized_push) ?chain_profile ~real
    kem_name sig_name =
  let engine = Netsim.Engine.create () in
  let trace = Netsim.Tap.create () in
  let rng = Crypto.Drbg.create ~seed:"tls-hs" in
  let link =
    Netsim.Link.create engine (Crypto.Drbg.fork rng "link") Netsim.Link.ideal
      ~tap:(fun t p -> Netsim.Tap.tap trace t p)
  in
  let client_host = Netsim.Host.create engine ~name:"client" in
  let server_host = Netsim.Host.create engine ~name:"server" in
  let config =
    (if real then Tls.Config.make else Tls.Config.mocked)
      ~buffering ?chain_profile (kem kem_name) (sa sig_name)
  in
  let result = ref None in
  Tls.Handshake.run ~engine ~link ~tcp_config:Netsim.Tcp.default_config
    ~client_host ~server_host ~config ~rng ~on_done:(fun r -> result := Some r)
    ();
  Netsim.Engine.run engine;
  match !result with
  | None -> Alcotest.fail (Printf.sprintf "%s x %s did not complete" kem_name sig_name)
  | Some r ->
    let t label = (Option.get (Netsim.Tap.find_mark trace label)).Netsim.Tap.time in
    { part_a = t "SH" -. t "CH";
      part_b = t "FIN_C" -. t "SH";
      client_bytes = Netsim.Tcp.bytes_sent r.Tls.Handshake.client_tcp;
      server_bytes = Netsim.Tcp.bytes_sent r.Tls.Handshake.server_tcp }

(* one full handshake that issues a ticket, then one resumed handshake
   on the same simulated network; returns (full, resumed) results *)
let run_resumption ?(early_data = false) ?tamper ~real kem_name sig_name =
  let engine = Netsim.Engine.create () in
  let rng = Crypto.Drbg.create ~seed:"tls-resume" in
  let link =
    Netsim.Link.create engine (Crypto.Drbg.fork rng "link") Netsim.Link.ideal
      ~tap:(fun _ _ -> ())
  in
  let client_host = Netsim.Host.create engine ~name:"client" in
  let server_host = Netsim.Host.create engine ~name:"server" in
  let config =
    (if real then Tls.Config.make else Tls.Config.mocked) (kem kem_name)
      (sa sig_name)
  in
  let session = ref None and full = ref None and resumed = ref None in
  Tls.Handshake.run ~engine ~link ~tcp_config:Netsim.Tcp.default_config
    ~client_host ~server_host ~config ~rng ~issue_ticket:true
    ~on_ticket:(fun s -> session := Some s)
    ~on_done:(fun r -> full := Some r)
    ();
  Netsim.Engine.run engine;
  let s =
    match !session with
    | Some s -> (match tamper with Some f -> f s | None -> s)
    | None -> Alcotest.fail "no ticket issued"
  in
  Tls.Handshake.run ~engine ~link ~tcp_config:Netsim.Tcp.default_config
    ~client_host ~server_host ~config
    ~rng:(Crypto.Drbg.fork rng "second") ~resume:s ~early_data
    ~on_done:(fun r -> resumed := Some r)
    ();
  Netsim.Engine.run engine;
  (Option.get !full, Option.get !resumed)

let test_resumption_omits_certificate () =
  (* the resumed server flight has no Certificate/CertificateVerify: with
     SPHINCS+ that is tens of kB of wire that must disappear *)
  let full, res = run_resumption ~real:false "kyber512" "sphincs128" in
  Alcotest.(check bool) "full not resumed" false full.Tls.Handshake.resumed;
  Alcotest.(check bool) "resumed" true res.Tls.Handshake.resumed;
  let fb = Netsim.Tcp.bytes_sent full.Tls.Handshake.server_tcp in
  let rb = Netsim.Tcp.bytes_sent res.Tls.Handshake.server_tcp in
  (* sphincs128's chain+sig flight is ~37 kB; the resumed flight is a
     couple of records. Require an order-of-magnitude collapse. *)
  Alcotest.(check bool)
    (Printf.sprintf "server flight collapses (%d -> %d B)" fb rb)
    true
    (fb > 30_000 && rb * 10 < fb)

let test_resumption_mocked_equals_real () =
  let wire (full, res) =
    ( Netsim.Tcp.bytes_sent full.Tls.Handshake.server_tcp,
      Netsim.Tcp.bytes_sent res.Tls.Handshake.server_tcp,
      Netsim.Tcp.bytes_sent res.Tls.Handshake.client_tcp,
      res.Tls.Handshake.client_finished_at )
  in
  let a = wire (run_resumption ~real:true "kyber768" "dilithium3") in
  let b = wire (run_resumption ~real:false "kyber768" "dilithium3") in
  Alcotest.(check bool) "mocked == real on the resumed path" true (a = b)

let test_zero_rtt () =
  let _, res = run_resumption ~real:false ~early_data:true "kyber768" "dilithium3" in
  Alcotest.(check int) "0-RTT bytes accepted" Tls.Handshake.early_data_size
    res.Tls.Handshake.early_data_bytes;
  (* without early data the server accepts none *)
  let _, plain = run_resumption ~real:false "kyber768" "dilithium3" in
  Alcotest.(check int) "no 0-RTT by default" 0 plain.Tls.Handshake.early_data_bytes

let test_binder_mismatch_fails_closed () =
  (* a client whose PSK disagrees with the (intact) ticket computes a
     wrong binder; the server must refuse before any flight is sent *)
  let flip s = String.mapi (fun i c -> if i = 0 then Char.chr (Char.code c lxor 1) else c) s in
  Alcotest.check_raises "binder mismatch"
    (Tls.Wire.Decode_error "PSK binder mismatch") (fun () ->
      ignore
        (run_resumption ~real:false
           ~tamper:(fun s -> { s with Tls.Handshake.psk = flip s.Tls.Handshake.psk })
           "kyber768" "dilithium3"));
  (* a corrupted ticket fails the STEK open instead; flip a ciphertext
     byte (past the 5-byte record header, which open_ticket discards) *)
  let flip_ct s =
    String.mapi (fun i c -> if i = 8 then Char.chr (Char.code c lxor 1) else c) s
  in
  Alcotest.check_raises "ticket corruption"
    (Tls.Wire.Decode_error "ticket decryption failed") (fun () ->
      ignore
        (run_resumption ~real:true
           ~tamper:(fun s ->
             { s with Tls.Handshake.ticket = flip_ct s.Tls.Handshake.ticket })
           "kyber768" "dilithium3"))

let test_handshake_completes_everywhere () =
  (* every KA and every SA completes a handshake (mocked for speed) *)
  List.iter
    (fun (k : Pqc.Kem.t) -> ignore (run_handshake ~real:false k.Pqc.Kem.name "rsa:2048"))
    Pqc.Registry.kems;
  List.iter
    (fun (s : Pqc.Sigalg.t) -> ignore (run_handshake ~real:false "x25519" s.Pqc.Sigalg.name))
    Pqc.Registry.sigs

let test_real_handshakes () =
  (* the real cryptographic stacks complete too *)
  List.iter
    (fun (k, s) -> ignore (run_handshake ~real:true k s))
    [ ("x25519", "rsa:2048"); ("kyber512", "dilithium2");
      ("p256_kyber512", "p256_dilithium2"); ("kyber1024", "falcon1024") ]

let test_mocked_equals_real () =
  (* the design invariant behind the measurement campaigns: mocked and
     real crypto produce byte- and time-identical simulations *)
  List.iter
    (fun (k, s) ->
      let a = run_handshake ~real:true k s in
      let b = run_handshake ~real:false k s in
      Alcotest.(check (float 1e-9)) (k ^ " partA invariant") a.part_a b.part_a;
      Alcotest.(check (float 1e-9)) (k ^ " partB invariant") a.part_b b.part_b;
      Alcotest.(check int) (k ^ " client bytes invariant") a.client_bytes b.client_bytes;
      Alcotest.(check int) (k ^ " server bytes invariant") a.server_bytes b.server_bytes)
    [ ("x25519", "rsa:2048"); ("kyber768", "dilithium3");
      ("bikel1", "sphincs128"); ("p384_kyber768", "p384_dilithium3") ]

let test_chain_handshakes () =
  (* every chain profile completes a handshake *)
  List.iter
    (fun (p : Tls.Chain_profile.t) ->
      ignore (run_handshake ~real:false ~chain_profile:p "x25519" "rsa:2048"))
    Tls.Chain_profile.all;
  (* an explicit default profile is byte- and time-identical to omitting
     the argument: Tables 2-6 cannot move *)
  let plain = run_handshake ~real:false "kyber768" "dilithium3" in
  let explicit =
    run_handshake ~real:false ~chain_profile:Tls.Chain_profile.default
      "kyber768" "dilithium3"
  in
  Alcotest.(check bool) "explicit default == no profile" true (plain = explicit);
  (* intermediates ride in the server flight and cost wire bytes *)
  let deep =
    run_handshake ~real:false
      ~chain_profile:(Tls.Chain_profile.find "mixed-acme") "kyber768"
      "dilithium3"
  in
  Alcotest.(check bool) "intermediates cost server bytes" true
    (deep.server_bytes > plain.server_bytes + 5000);
  (* per-level verification CPU lands on the client's clock *)
  Alcotest.(check bool) "chain verification costs client time" true
    (deep.part_b > plain.part_b)

let test_chain_mocked_equals_real () =
  (* the campaign invariant holds on every non-default shape *)
  List.iter
    (fun pname ->
      let profile = Tls.Chain_profile.find pname in
      let a = run_handshake ~real:true ~chain_profile:profile "kyber768" "dilithium3" in
      let b = run_handshake ~real:false ~chain_profile:profile "kyber768" "dilithium3" in
      Alcotest.(check (float 1e-9)) (pname ^ " partA invariant") a.part_a b.part_a;
      Alcotest.(check (float 1e-9)) (pname ^ " partB invariant") a.part_b b.part_b;
      Alcotest.(check int) (pname ^ " client bytes invariant") a.client_bytes
        b.client_bytes;
      Alcotest.(check int) (pname ^ " server bytes invariant") a.server_bytes
        b.server_bytes)
    [ "classical-shape"; "slhdsa-root"; "mixed-acme" ]

let test_buffering_modes () =
  (* default buffering withholds the SH until the whole flight is ready
     (for a small flight), so partA grows by roughly the signing time *)
  let opt = run_handshake ~real:false "x25519" "rsa:2048" in
  let def =
    run_handshake ~real:false ~buffering:Tls.Config.Default_buffered "x25519" "rsa:2048"
  in
  Alcotest.(check bool) "default delays SH" true (def.part_a > opt.part_a +. 0.001);
  (* a large certificate overflows the 4096 B buffer and pushes the SH
     early even in default mode *)
  let def_big =
    run_handshake ~real:false ~buffering:Tls.Config.Default_buffered "x25519" "sphincs128"
  in
  Alcotest.(check bool) "overflow pushes SH early" true (def_big.part_a < 0.002)

let test_handshake_sizes_scale () =
  let small = run_handshake ~real:false "x25519" "rsa:2048" in
  let big = run_handshake ~real:false "hqc256" "sphincs256" in
  Alcotest.(check bool) "hqc CH bigger" true (big.client_bytes > small.client_bytes + 7000);
  Alcotest.(check bool) "sphincs flight bigger" true
    (big.server_bytes > small.server_bytes + 100_000)

let test_codec_inbound () =
  (* records split across arbitrary TCP chunk boundaries *)
  let msgs =
    [ Tls.Wire.handshake Tls.Wire.Handshake_type.Finished (String.make 40 'a');
      Tls.Wire.handshake Tls.Wire.Handshake_type.Finished (String.make 20000 'b') ]
  in
  let stream =
    String.concat ""
      (List.map Tls.Codec.fragment_plaintext msgs)
  in
  let inb = Tls.Codec.Inbound.create () in
  let got = ref [] in
  let pos = ref 0 and step = ref 1 in
  while !pos < String.length stream do
    let take = min !step (String.length stream - !pos) in
    Tls.Codec.Inbound.feed inb (String.sub stream !pos take);
    pos := !pos + take;
    step := (!step * 13 mod 977) + 1;
    let rec drain () =
      match Tls.Codec.Inbound.next inb with
      | Tls.Codec.Inbound.Handshake_message m ->
        got := m :: !got;
        drain ()
      | Tls.Codec.Inbound.Change_cipher_spec
      | Tls.Codec.Inbound.Application_data _ ->
        drain ()
      | Tls.Codec.Inbound.Need_more_data -> ()
    in
    drain ()
  done;
  Alcotest.(check int) "both messages" 2 (List.length !got);
  Alcotest.(check bool) "reassembled exactly" true (List.rev !got = msgs)

let suites =
  [ ( "tls",
      [ Alcotest.test_case "wire vectors" `Quick test_wire_vectors;
        Alcotest.test_case "reader" `Quick test_reader;
        Alcotest.test_case "client hello codec" `Quick test_client_hello_roundtrip;
        Alcotest.test_case "server hello codec" `Quick test_server_hello_roundtrip;
        Alcotest.test_case "certificate chain" `Quick test_certificate_roundtrip;
        Alcotest.test_case "chain codec" `Quick test_chain_codec;
        Alcotest.test_case "chain verification" `Quick test_chain_verify;
        Alcotest.test_case "chain default identity" `Quick
          test_chain_default_identity;
        Alcotest.test_case "record protection" `Quick test_record_protection;
        Alcotest.test_case "null records" `Quick test_null_records;
        Alcotest.test_case "key schedule" `Quick test_key_schedule;
        Alcotest.test_case "key schedule vectors" `Quick test_key_schedule_vectors;
        Alcotest.test_case "no-PSK regression" `Quick test_no_psk_regression;
        Alcotest.test_case "PSK client hello" `Quick test_psk_client_hello;
        Alcotest.test_case "binder MAC" `Quick test_binder_mac;
        Alcotest.test_case "session ticket codec" `Quick test_ticket_roundtrip;
        Alcotest.test_case "codec reassembly" `Quick test_codec_inbound;
        Alcotest.test_case "resumption omits certificate" `Quick
          test_resumption_omits_certificate;
        Alcotest.test_case "resumption mocked == real" `Slow
          test_resumption_mocked_equals_real;
        Alcotest.test_case "0-RTT early data" `Quick test_zero_rtt;
        Alcotest.test_case "binder mismatch fails closed" `Quick
          test_binder_mismatch_fails_closed;
        Alcotest.test_case "handshakes complete for all algorithms" `Slow
          test_handshake_completes_everywhere;
        Alcotest.test_case "real-crypto handshakes" `Slow test_real_handshakes;
        Alcotest.test_case "mocked == real invariant" `Slow test_mocked_equals_real;
        Alcotest.test_case "chain-profile handshakes" `Quick test_chain_handshakes;
        Alcotest.test_case "chain mocked == real" `Slow
          test_chain_mocked_equals_real;
        Alcotest.test_case "buffering modes" `Quick test_buffering_modes;
        Alcotest.test_case "sizes scale with algorithms" `Quick
          test_handshake_sizes_scale ] ) ]
