(* TLS 1.3: wire codecs, record protection, key schedule invariants, and
   full simulated handshakes with both real and mocked crypto. *)

let kem name = Pqc.Registry.find_kem name
let sa name = Pqc.Registry.find_sig name

(* ---- wire ------------------------------------------------------------------ *)

let test_wire_vectors () =
  Alcotest.(check string) "vec8" "\x03abc" (Tls.Wire.vec8 "abc");
  Alcotest.(check string) "vec16" "\x00\x03abc" (Tls.Wire.vec16 "abc");
  Alcotest.(check string) "vec24" "\x00\x00\x03abc" (Tls.Wire.vec24 "abc");
  let r = Tls.Wire.record Tls.Wire.Content_type.Handshake "hi" in
  Alcotest.(check string) "record header" "\x16\x03\x03\x00\x02hi" r;
  let m = Tls.Wire.handshake Tls.Wire.Handshake_type.Finished "mac!" in
  Alcotest.(check string) "handshake header" "\x14\x00\x00\x04mac!" m

let test_reader () =
  let r = Tls.Wire.Reader.of_string "\x01\x00\x02\x03abc" in
  Alcotest.(check int) "u8" 1 (Tls.Wire.Reader.u8 r);
  Alcotest.(check int) "u16" 2 (Tls.Wire.Reader.u16 r);
  Alcotest.(check string) "vec8" "abc" (Tls.Wire.Reader.vec8 r);
  Tls.Wire.Reader.expect_end r;
  Alcotest.check_raises "short read" (Tls.Wire.Decode_error "short read: want 4 have 0")
    (fun () -> ignore (Tls.Wire.Reader.bytes r 4))

(* ---- messages ---------------------------------------------------------------- *)

let test_client_hello_roundtrip () =
  let rng = Crypto.Drbg.create ~seed:"tls-ch" in
  List.iter
    (fun kem_name ->
      let k = kem kem_name in
      let kp = k.Pqc.Kem.keygen rng in
      let ch =
        { Tls.Messages.random = Crypto.Drbg.generate rng 32;
          session_id = Crypto.Drbg.generate rng 32;
          group = kem_name;
          key_share = kp.Pqc.Kem.public;
          sig_algs = [ "rsa:2048"; "dilithium3" ] }
      in
      let enc = Tls.Messages.encode_client_hello ch in
      let dec = Tls.Messages.decode_client_hello enc in
      Alcotest.(check string) "group" kem_name dec.Tls.Messages.group;
      Alcotest.(check bool) "key share" true
        (dec.Tls.Messages.key_share = ch.Tls.Messages.key_share);
      Alcotest.(check (list string)) "sig algs" ch.Tls.Messages.sig_algs
        dec.Tls.Messages.sig_algs)
    [ "x25519"; "hqc256"; "p521_kyber1024" ]

let test_server_hello_roundtrip () =
  let rng = Crypto.Drbg.create ~seed:"tls-sh" in
  let sh =
    { Tls.Messages.sh_random = Crypto.Drbg.generate rng 32;
      sh_session_id = Crypto.Drbg.generate rng 32;
      sh_group = "kyber768";
      sh_key_share = Crypto.Drbg.generate rng 1088 }
  in
  let dec = Tls.Messages.decode_server_hello (Tls.Messages.encode_server_hello sh) in
  Alcotest.(check bool) "roundtrip" true (dec = sh)

let test_certificate_roundtrip () =
  let alg = sa "dilithium2" in
  let chain, _ = Tls.Certificate.make_chain alg (Crypto.Drbg.create ~seed:"cert") in
  Alcotest.(check bool) "chain verifies" true (Tls.Certificate.verify chain alg);
  let enc = Tls.Messages.encode_certificate chain.Tls.Certificate.leaf in
  let dec = Tls.Messages.decode_certificate enc in
  Alcotest.(check bool) "certificate roundtrip" true
    (dec = chain.Tls.Certificate.leaf);
  (* a tampered TBS must fail chain verification *)
  let bad = { chain with
              Tls.Certificate.leaf =
                { chain.Tls.Certificate.leaf with Tls.Certificate.subject = "evil" } }
  in
  Alcotest.(check bool) "tampered subject" false (Tls.Certificate.verify bad alg)

(* ---- record protection ------------------------------------------------------- *)

let test_record_protection () =
  let secret = Crypto.Sha256.digest "traffic" in
  let keys = Tls.Key_schedule.traffic_keys secret in
  let w = Tls.Record.create keys and r = Tls.Record.create keys in
  let records =
    List.map (Tls.Record.seal w Tls.Wire.Content_type.Handshake)
      [ "first"; "second"; "third" ]
  in
  List.iteri
    (fun i rec_bytes ->
      let body = String.sub rec_bytes 5 (String.length rec_bytes - 5) in
      match Tls.Record.open_ r body with
      | Some (Tls.Wire.Content_type.Handshake, frag) ->
        Alcotest.(check string) "fragment" (List.nth [ "first"; "second"; "third" ] i) frag
      | _ -> Alcotest.fail "open failed")
    records;
  (* sequence-number mismatch (replay) must fail *)
  let w2 = Tls.Record.create keys and r2 = Tls.Record.create keys in
  let one = Tls.Record.seal w2 Tls.Wire.Content_type.Handshake "x" in
  let body = String.sub one 5 (String.length one - 5) in
  (match Tls.Record.open_ r2 body with Some _ -> () | None -> Alcotest.fail "first");
  Alcotest.(check bool) "replay rejected" true (Tls.Record.open_ r2 body = None)

let test_null_records () =
  let w = Tls.Record.create_null () and r = Tls.Record.create_null () in
  let sealed = Tls.Record.seal w Tls.Wire.Content_type.Handshake "payload" in
  (* identical sizes to the AEAD path: 5 header + len + 1 type + 16 tag *)
  Alcotest.(check int) "size preserved" (5 + 7 + 1 + 16) (String.length sealed);
  (match Tls.Record.open_ r (String.sub sealed 5 (String.length sealed - 5)) with
  | Some (Tls.Wire.Content_type.Handshake, "payload") -> ()
  | _ -> Alcotest.fail "null open");
  Alcotest.(check bool) "null tamper detected" true
    (Tls.Record.open_ r (String.make 24 '\000') = None)

(* ---- key schedule --------------------------------------------------------------- *)

let test_key_schedule () =
  let ss = Crypto.Sha256.digest "shared" in
  let th = Crypto.Sha256.digest "transcript" in
  let s1 = Tls.Key_schedule.handshake_secrets ~shared_secret:ss ~hello_transcript_hash:th in
  let s2 = Tls.Key_schedule.handshake_secrets ~shared_secret:ss ~hello_transcript_hash:th in
  Alcotest.(check bool) "deterministic" true (s1 = s2);
  Alcotest.(check bool) "client <> server secret" true
    (s1.Tls.Key_schedule.client_handshake_traffic
    <> s1.Tls.Key_schedule.server_handshake_traffic);
  let other =
    Tls.Key_schedule.handshake_secrets ~shared_secret:(Crypto.Sha256.digest "x")
      ~hello_transcript_hash:th
  in
  Alcotest.(check bool) "secret-sensitive" true
    (other.Tls.Key_schedule.master <> s1.Tls.Key_schedule.master);
  let keys = Tls.Key_schedule.traffic_keys s1.Tls.Key_schedule.client_handshake_traffic in
  Alcotest.(check int) "aes-128 key" 16 (String.length keys.Tls.Key_schedule.key);
  Alcotest.(check int) "iv" 12 (String.length keys.Tls.Key_schedule.iv);
  (* RFC 8446 appendix: expand-label framing sanity via known reference
     derive of the "derived" label on a zero salt *)
  let label_out =
    Tls.Key_schedule.hkdf_expand_label ~secret:(String.make 32 '\000')
      ~label:"derived" ~context:(Crypto.Sha256.digest "") 32
  in
  Alcotest.(check int) "expand-label length" 32 (String.length label_out)

(* ---- full handshakes --------------------------------------------------------------- *)

type hs_outcome = {
  part_a : float;
  part_b : float;
  client_bytes : int;
  server_bytes : int;
}

let run_handshake ?(buffering = Tls.Config.Optimized_push) ~real kem_name sig_name =
  let engine = Netsim.Engine.create () in
  let trace = Netsim.Tap.create () in
  let rng = Crypto.Drbg.create ~seed:"tls-hs" in
  let link =
    Netsim.Link.create engine (Crypto.Drbg.fork rng "link") Netsim.Link.ideal
      ~tap:(fun t p -> Netsim.Tap.tap trace t p)
  in
  let client_host = Netsim.Host.create engine ~name:"client" in
  let server_host = Netsim.Host.create engine ~name:"server" in
  let config =
    (if real then Tls.Config.make else Tls.Config.mocked)
      ~buffering (kem kem_name) (sa sig_name)
  in
  let result = ref None in
  Tls.Handshake.run ~engine ~link ~tcp_config:Netsim.Tcp.default_config
    ~client_host ~server_host ~config ~rng ~on_done:(fun r -> result := Some r);
  Netsim.Engine.run engine;
  match !result with
  | None -> Alcotest.fail (Printf.sprintf "%s x %s did not complete" kem_name sig_name)
  | Some r ->
    let t label = (Option.get (Netsim.Tap.find_mark trace label)).Netsim.Tap.time in
    { part_a = t "SH" -. t "CH";
      part_b = t "FIN_C" -. t "SH";
      client_bytes = Netsim.Tcp.bytes_sent r.Tls.Handshake.client_tcp;
      server_bytes = Netsim.Tcp.bytes_sent r.Tls.Handshake.server_tcp }

let test_handshake_completes_everywhere () =
  (* every KA and every SA completes a handshake (mocked for speed) *)
  List.iter
    (fun (k : Pqc.Kem.t) -> ignore (run_handshake ~real:false k.Pqc.Kem.name "rsa:2048"))
    Pqc.Registry.kems;
  List.iter
    (fun (s : Pqc.Sigalg.t) -> ignore (run_handshake ~real:false "x25519" s.Pqc.Sigalg.name))
    Pqc.Registry.sigs

let test_real_handshakes () =
  (* the real cryptographic stacks complete too *)
  List.iter
    (fun (k, s) -> ignore (run_handshake ~real:true k s))
    [ ("x25519", "rsa:2048"); ("kyber512", "dilithium2");
      ("p256_kyber512", "p256_dilithium2"); ("kyber1024", "falcon1024") ]

let test_mocked_equals_real () =
  (* the design invariant behind the measurement campaigns: mocked and
     real crypto produce byte- and time-identical simulations *)
  List.iter
    (fun (k, s) ->
      let a = run_handshake ~real:true k s in
      let b = run_handshake ~real:false k s in
      Alcotest.(check (float 1e-9)) (k ^ " partA invariant") a.part_a b.part_a;
      Alcotest.(check (float 1e-9)) (k ^ " partB invariant") a.part_b b.part_b;
      Alcotest.(check int) (k ^ " client bytes invariant") a.client_bytes b.client_bytes;
      Alcotest.(check int) (k ^ " server bytes invariant") a.server_bytes b.server_bytes)
    [ ("x25519", "rsa:2048"); ("kyber768", "dilithium3");
      ("bikel1", "sphincs128"); ("p384_kyber768", "p384_dilithium3") ]

let test_buffering_modes () =
  (* default buffering withholds the SH until the whole flight is ready
     (for a small flight), so partA grows by roughly the signing time *)
  let opt = run_handshake ~real:false "x25519" "rsa:2048" in
  let def =
    run_handshake ~real:false ~buffering:Tls.Config.Default_buffered "x25519" "rsa:2048"
  in
  Alcotest.(check bool) "default delays SH" true (def.part_a > opt.part_a +. 0.001);
  (* a large certificate overflows the 4096 B buffer and pushes the SH
     early even in default mode *)
  let def_big =
    run_handshake ~real:false ~buffering:Tls.Config.Default_buffered "x25519" "sphincs128"
  in
  Alcotest.(check bool) "overflow pushes SH early" true (def_big.part_a < 0.002)

let test_handshake_sizes_scale () =
  let small = run_handshake ~real:false "x25519" "rsa:2048" in
  let big = run_handshake ~real:false "hqc256" "sphincs256" in
  Alcotest.(check bool) "hqc CH bigger" true (big.client_bytes > small.client_bytes + 7000);
  Alcotest.(check bool) "sphincs flight bigger" true
    (big.server_bytes > small.server_bytes + 100_000)

let test_codec_inbound () =
  (* records split across arbitrary TCP chunk boundaries *)
  let msgs =
    [ Tls.Wire.handshake Tls.Wire.Handshake_type.Finished (String.make 40 'a');
      Tls.Wire.handshake Tls.Wire.Handshake_type.Finished (String.make 20000 'b') ]
  in
  let stream =
    String.concat ""
      (List.map Tls.Codec.fragment_plaintext msgs)
  in
  let inb = Tls.Codec.Inbound.create () in
  let got = ref [] in
  let pos = ref 0 and step = ref 1 in
  while !pos < String.length stream do
    let take = min !step (String.length stream - !pos) in
    Tls.Codec.Inbound.feed inb (String.sub stream !pos take);
    pos := !pos + take;
    step := (!step * 13 mod 977) + 1;
    let rec drain () =
      match Tls.Codec.Inbound.next inb with
      | Tls.Codec.Inbound.Handshake_message m ->
        got := m :: !got;
        drain ()
      | Tls.Codec.Inbound.Change_cipher_spec -> drain ()
      | Tls.Codec.Inbound.Need_more_data -> ()
    in
    drain ()
  done;
  Alcotest.(check int) "both messages" 2 (List.length !got);
  Alcotest.(check bool) "reassembled exactly" true (List.rev !got = msgs)

let suites =
  [ ( "tls",
      [ Alcotest.test_case "wire vectors" `Quick test_wire_vectors;
        Alcotest.test_case "reader" `Quick test_reader;
        Alcotest.test_case "client hello codec" `Quick test_client_hello_roundtrip;
        Alcotest.test_case "server hello codec" `Quick test_server_hello_roundtrip;
        Alcotest.test_case "certificate chain" `Quick test_certificate_roundtrip;
        Alcotest.test_case "record protection" `Quick test_record_protection;
        Alcotest.test_case "null records" `Quick test_null_records;
        Alcotest.test_case "key schedule" `Quick test_key_schedule;
        Alcotest.test_case "codec reassembly" `Quick test_codec_inbound;
        Alcotest.test_case "handshakes complete for all algorithms" `Slow
          test_handshake_completes_everywhere;
        Alcotest.test_case "real-crypto handshakes" `Slow test_real_handshakes;
        Alcotest.test_case "mocked == real invariant" `Slow test_mocked_equals_real;
        Alcotest.test_case "buffering modes" `Quick test_buffering_modes;
        Alcotest.test_case "sizes scale with algorithms" `Quick
          test_handshake_sizes_scale ] ) ]
