(* Fault-tolerant campaign execution: a cell that keeps raising turns
   into [Error] with its attempt count recorded, the rest of the grid
   still completes (in spec order, identically for any job count),
   reports render with the failed cell marked, and the failure is never
   written to the result cache. *)

open Core

let kem = Pqc.Registry.find_kem
let sa = Pqc.Registry.find_sig

let contains needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* a deterministically failing cell: a zero sample budget means not a
   single handshake can complete, which run_spec reports by raising *)
let failing_spec seed =
  Experiment.spec ~seed ~max_samples:0 (kem "kyber512") (sa "dilithium2")

let good_spec seed = Experiment.spec ~seed (kem "x25519") (sa "rsa:2048")

let test_error_records_attempts () =
  let exec = Exec.create ~jobs:1 ~retries:2 () in
  match Exec.cell exec (failing_spec "failures-attempts") with
  | Ok _ -> Alcotest.fail "a zero-sample spec cannot succeed"
  | Error e ->
    Alcotest.(check int) "initial try plus two retries" 3 e.Exec.ce_attempts;
    Alcotest.(check bool) "message mentions the cell" true
      (String.length e.Exec.ce_message > 0);
    Alcotest.(check int) "counted as failed" 1 (Exec.failed_count exec);
    Alcotest.(check int) "not counted as ok" 0 (Exec.ok_count exec)

let test_lossy_underbudget_cell_fails () =
  (* a 10%-loss cell with a zero time budget: no handshake can finish,
     the engine gives up and the cell must surface as Error (with the
     retry recorded), not as a crash *)
  let spec =
    Experiment.spec ~seed:"failures-loss" ~scenario:Scenario.high_loss
      ~duration_s:0. ~max_samples:1
      (kem "kyber512") (sa "sphincs128")
  in
  match Exec.cell (Exec.create ~jobs:1 ~retries:1 ()) spec with
  | Error e -> Alcotest.(check int) "retried once" 2 e.Exec.ce_attempts
  | Ok _ -> Alcotest.fail "no handshake fits in zero virtual time"

let test_mixed_grid_order_and_determinism () =
  let specs =
    [ good_spec "failures-grid";
      failing_spec "failures-grid";
      Experiment.spec ~seed:"failures-grid" (kem "kyber768") (sa "dilithium3") ]
  in
  let run jobs = Exec.cells (Exec.create ~jobs ~retries:1 ()) specs in
  let r1 = run 1 and r4 = run 4 in
  let shape = function Ok _ -> `Ok | Error _ -> `Err in
  Alcotest.(check (list bool))
    "failure lands on the failing spec, order preserved"
    [ true; false; true ]
    (List.map (fun r -> shape r = `Ok) r1);
  let oks rs =
    List.filter_map (function Ok o -> Some o | Error _ -> None) rs
  in
  Alcotest.(check bool) "jobs=1 and jobs=4 bit-identical" true
    (String.equal
       (Marshal.to_string (oks r1) [])
       (Marshal.to_string (oks r4) []))

let test_injected_failure_renders_partial_report () =
  let exec = Exec.create ~jobs:2 ~fail_cell:"sphincs128" () in
  let report = Catalog.run ~seed:"failures-report" ~exec "all-sphincs" in
  Alcotest.(check bool) "failed cell marked" true
    (contains "(cell failed)" report);
  Alcotest.(check bool) "em dash rendered" true (contains "\xe2\x80\x94" report);
  Alcotest.(check bool) "other variants still present" true
    (contains "sphincs256f" report);
  Alcotest.(check bool) "campaign counted the failure" true
    (Exec.failed_count exec > 0)

let temp_cache_dir () =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "pqtls-failures-test-%d-%.0f" (Unix.getpid ())
       (Clock.now_s () *. 1e6))

let test_failures_are_not_cached () =
  let dir = temp_cache_dir () in
  let specs = [ good_spec "failures-cache"; failing_spec "failures-cache" ] in
  (* first run: one success (cached), one failure (must not be) *)
  let first = Exec.create ~jobs:1 ~cache_dir:dir ~retries:0 () in
  (match Exec.cells first specs with
  | [ Ok _; Error _ ] -> ()
  | _ -> Alcotest.fail "expected [Ok; Error] on the cold run");
  (* second run over the same directory: the success replays from disk,
     the failed cell is executed again — and fails again *)
  let second = Exec.create ~jobs:1 ~cache_dir:dir ~retries:0 () in
  (match Exec.cells second specs with
  | [ Ok _; Error _ ] -> ()
  | _ -> Alcotest.fail "expected [Ok; Error] on the warm run");
  let c = Option.get second.Exec.cache in
  Alcotest.(check int) "only the successful cell hit" 1 (Result_cache.hits c);
  Alcotest.(check int) "the failed cell re-executed" 1 (Result_cache.misses c)

let test_health_summary_counts () =
  let exec = Exec.create ~jobs:1 ~retries:0 () in
  (match Exec.cells exec [ good_spec "failures-health"; failing_spec "failures-health" ] with
  | [ Ok _; Error _ ] -> ()
  | _ -> Alcotest.fail "expected [Ok; Error]");
  Alcotest.(check int) "one ok" 1 (Exec.ok_count exec);
  Alcotest.(check int) "one failed" 1 (Exec.failed_count exec);
  Alcotest.(check int) "nothing retried" 0 (Exec.retried_count exec);
  let line = Exec.health_summary exec in
  Alcotest.(check bool) "summary lists ok and failed counts" true
    (contains "1 cells ok" line && contains "1 failed" line)

let suites =
  [ ( "failures",
      [ Alcotest.test_case "error records attempts" `Quick
          test_error_records_attempts;
        Alcotest.test_case "lossy under-budget cell fails cleanly" `Quick
          test_lossy_underbudget_cell_fails;
        Alcotest.test_case "mixed grid: order and determinism" `Slow
          test_mixed_grid_order_and_determinism;
        Alcotest.test_case "injected failure renders partial report" `Slow
          test_injected_failure_renders_partial_report;
        Alcotest.test_case "failures are not cached" `Quick
          test_failures_are_not_cached;
        Alcotest.test_case "health summary counts" `Quick
          test_health_summary_counts ] ) ]
