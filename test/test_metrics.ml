(* The observability layer: distribution statistics, the JSON codec,
   byte-identical metrics artifacts across [--jobs] and cache states,
   and the drift gates (artifact diff + against-paper). *)

open Core

let kem = Pqc.Registry.find_kem
let sa = Pqc.Registry.find_sig

(* ---- Stats helpers --------------------------------------------------------- *)

let test_stats_stddev () =
  Alcotest.(check (float 1e-9)) "known stddev" 1.
    (Stats.stddev [ 1.; 2.; 3. ]);
  Alcotest.(check (float 1e-9)) "constant data" 0. (Stats.stddev [ 5.; 5.; 5. ]);
  Alcotest.(check (float 1e-9)) "singleton" 0. (Stats.stddev [ 42. ]);
  Alcotest.check_raises "empty" (Invalid_argument "Stats.stddev: empty")
    (fun () -> ignore (Stats.stddev []))

let test_stats_percentiles () =
  let xs = [ 9.; 1.; 4.; 7.; 2.; 8.; 3.; 6.; 5.; 10. ] in
  let ps = [ 0.; 0.05; 0.25; 0.5; 0.75; 0.95; 0.99; 1. ] in
  (* the batched form must agree with the existing one-at-a-time
     percentile on every p — the tables keep rendering byte-identically *)
  List.iter2
    (fun p batched ->
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "p%g agrees" (100. *. p))
        (Stats.percentile p xs) batched)
    ps
    (Stats.percentiles ps xs);
  Alcotest.check_raises "empty" (Invalid_argument "Stats.percentiles: empty")
    (fun () -> ignore (Stats.percentiles [ 0.5 ] []))

let test_stats_bootstrap_ci () =
  let xs = List.init 50 (fun i -> float_of_int (i mod 13)) in
  let lo, hi = Stats.bootstrap_ci ~seed:"t" Stats.median xs in
  let lo', hi' = Stats.bootstrap_ci ~seed:"t" Stats.median xs in
  Alcotest.(check (pair (float 0.) (float 0.))) "deterministic" (lo, hi)
    (lo', hi');
  (* medians of discrete data can coincide across seeds; the mean of a
     resample almost never does, so that's where reseeding must show *)
  let mlo, mhi = Stats.bootstrap_ci ~seed:"t" Stats.mean xs in
  let mlo2, mhi2 = Stats.bootstrap_ci ~seed:"other" Stats.mean xs in
  Alcotest.(check bool) "seed-sensitive" true (mlo <> mlo2 || mhi <> mhi2);
  Alcotest.(check bool) "ordered interval" true (lo <= hi);
  let mn, mx = Stats.min_max xs in
  Alcotest.(check bool) "inside the data range" true (lo >= mn && hi <= mx);
  Alcotest.(check (pair (float 1e-9) (float 1e-9))) "singleton collapses"
    (3., 3.)
    (Stats.bootstrap_ci ~seed:"t" Stats.median [ 3. ]);
  Alcotest.check_raises "empty" (Invalid_argument "Stats.bootstrap_ci: empty")
    (fun () -> ignore (Stats.bootstrap_ci ~seed:"t" Stats.median []))

(* ---- the JSON codec --------------------------------------------------------- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [ ("int", Json.Int 42);
        ("neg", Json.Int (-7));
        ("float", Json.Float 0.1);
        ("tiny", Json.Float 1e-300);
        ("nan", Json.Float nan);
        ("inf", Json.Float infinity);
        ("s", Json.String "quote \" backslash \\ newline \n tab \t");
        ("list", Json.List [ Json.Bool true; Json.Bool false; Json.Null ]);
        ("empty_obj", Json.Obj []);
        ("empty_list", Json.List []) ]
  in
  let s = Json.to_string v in
  let reparsed =
    match Json.parse s with Ok j -> j | Error e -> Alcotest.fail e
  in
  (* non-finite floats serialize as null, so compare the printed forms:
     printing is deterministic and null re-prints as null *)
  Alcotest.(check string) "print/parse/print fixpoint" s
    (Json.to_string reparsed);
  (match Json.member "nan" reparsed with
  | Some Json.Null -> ()
  | _ -> Alcotest.fail "nan must serialize as null");
  Alcotest.(check (option (float 1e-12))) "null reads back as nan-ish"
    (Some nan)
    (Json.to_float (Json.member "nan" reparsed) |> function
     | Some f when Float.is_nan f -> Some nan
     | other -> other);
  List.iter
    (fun f ->
      Alcotest.(check (float 0.)) "float_repr round-trips" f
        (float_of_string (Json.float_repr f)))
    [ 0.1; 1. /. 3.; 1e-300; 6.02214076e23; 2.; -0.25 ];
  List.iter
    (fun bad ->
      match Json.parse bad with
      | Ok _ -> Alcotest.fail ("accepted malformed input: " ^ bad)
      | Error _ -> ())
    [ "{"; "[1,]"; "nul"; "\"unterminated"; "{} trailing"; "" ]

(* ---- artifact determinism --------------------------------------------------- *)

let grid seed =
  List.map
    (fun (k, s) -> Experiment.spec ~seed (kem k) (sa s))
    [ ("x25519", "rsa:2048"); ("kyber512", "dilithium2");
      ("p256", "rsa:2048"); ("kyber768", "dilithium3") ]

let artifact_string ~jobs ~seed =
  let exec = Exec.create ~jobs () in
  let results = Exec.cells exec (grid seed) in
  Alcotest.(check int) "all cells ok" (List.length (grid seed))
    (List.length (List.filter Result.is_ok results));
  Metrics.to_json_string (Metrics.artifact exec.Exec.metrics ~seed)

let parse_artifact s =
  match Metrics.of_json_string s with
  | Ok a -> a
  | Error e -> Alcotest.fail e

let test_artifact_jobs_identity () =
  let a1 = artifact_string ~jobs:1 ~seed:"metrics-jobs" in
  let a4 = artifact_string ~jobs:4 ~seed:"metrics-jobs" in
  Alcotest.(check string) "jobs=1 and jobs=4 byte-identical" a1 a4;
  let p = parse_artifact a1 in
  Alcotest.(check int) "four cells" 4 (List.length p.Metrics.p_cells);
  Alcotest.(check (list string)) "self-diff is clean" []
    (Metrics.diff p (parse_artifact a4));
  let first = List.hd p.Metrics.p_cells in
  Alcotest.(check string) "spec order preserved" "x25519 x rsa:2048 @ none"
    first.Metrics.p_key;
  Alcotest.(check bool) "standard cell" true first.Metrics.p_standard;
  Alcotest.(check bool) "distributions present" true
    (List.mem_assoc "data.latency_ms.total.p50" first.Metrics.p_metrics
    && List.mem_assoc "data.wire.server_bytes.p50" first.Metrics.p_metrics
    && List.mem_assoc "data.cpu.client_ms" first.Metrics.p_metrics)

let test_artifact_cache_identity () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "pqtls-metrics-test-%d-%.0f" (Unix.getpid ())
         (Clock.now_s () *. 1e6))
  in
  let seed = "metrics-cache" in
  let run () =
    let exec = Exec.create ~jobs:2 ~cache_dir:dir () in
    ignore (Exec.cells exec (grid seed));
    ( Metrics.to_json_string (Metrics.artifact exec.Exec.metrics ~seed),
      Metrics.counter exec.Exec.metrics "cells_executed",
      Metrics.counter exec.Exec.metrics "cells_from_cache" )
  in
  let cold, cold_fresh, cold_hits = run () in
  let warm, warm_fresh, warm_hits = run () in
  Alcotest.(check string) "cached re-run byte-identical" cold warm;
  Alcotest.(check (pair int int)) "cold telemetry" (4, 0)
    (cold_fresh, cold_hits);
  Alcotest.(check (pair int int)) "warm telemetry" (0, 4)
    (warm_fresh, warm_hits)

let test_registry_and_health () =
  let exec = Exec.create ~jobs:2 () in
  ignore (Exec.cells exec (grid "metrics-health"));
  Alcotest.(check int) "executed counter" 4
    (Metrics.counter exec.Exec.metrics "cells_executed");
  Alcotest.(check int) "wall observations, one per cell" 4
    (List.length (Metrics.observations exec.Exec.metrics "cell_wall_s"));
  let summary = Exec.health_summary exec in
  let contains needle =
    let n = String.length needle and h = String.length summary in
    let rec go i = i + n <= h && (String.sub summary i n = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("summary mentions " ^ needle) true
        (contains needle))
    [ "campaign health:"; "4 cells ok"; "0 failed"; "4 fresh"; "0 cached";
      "cell wall" ];
  (* the generic registry faces user code too *)
  Metrics.set_gauge exec.Exec.metrics "g" 2.5;
  Alcotest.(check (option (float 0.))) "gauge" (Some 2.5)
    (Metrics.gauge exec.Exec.metrics "g");
  Metrics.incr ~by:3 exec.Exec.metrics "c";
  Metrics.incr exec.Exec.metrics "c";
  Alcotest.(check int) "counter" 4 (Metrics.counter exec.Exec.metrics "c")

let test_cell_identity_rules () =
  let m = Metrics.create () in
  let sp = Experiment.spec ~seed:"id" (kem "x25519") (sa "rsa:2048") in
  let o = Experiment.run_spec sp in
  Metrics.record_cell m sp (Ok o);
  Metrics.record_cell m sp (Ok o);
  Alcotest.(check int) "same fingerprint records once" 1 (Metrics.cell_count m);
  (* same label, different knob: both recorded, keys disambiguated *)
  let sp2 = Experiment.spec ~seed:"id" ~buffer_limit:8192 (kem "x25519") (sa "rsa:2048") in
  Metrics.record_cell m sp2 (Ok (Experiment.run_spec sp2));
  let a = Metrics.artifact m ~seed:"id" in
  Alcotest.(check (list string)) "deterministic #k suffix on label clash"
    [ "x25519 x rsa:2048 @ none"; "x25519 x rsa:2048 @ none#2" ]
    (List.map (fun c -> c.Metrics.m_key) a.Metrics.a_cells);
  (match (List.nth a.Metrics.a_cells 1).Metrics.m_data with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "non-default knob is not standard" false
    (List.nth a.Metrics.a_cells 1).Metrics.m_standard

(* ---- mix cells (Table 6) ----------------------------------------------------- *)

let mix_grid seed =
  List.map
    (fun m ->
      Experiment.spec ~seed ~max_samples:10 ~mix:m (kem "kyber768")
        (sa "dilithium3"))
    [ Mix.full; Mix.find "resumed90"; Mix.find "resumed90-0rtt" ]

let mix_artifact_string ~jobs ~seed =
  let exec = Exec.create ~jobs () in
  let results = Exec.cells exec (mix_grid seed) in
  Alcotest.(check int) "all cells ok" 3
    (List.length (List.filter Result.is_ok results));
  Metrics.to_json_string (Metrics.artifact exec.Exec.metrics ~seed)

let test_mix_cells_in_artifact () =
  (* the full mix is the identity: same fingerprint as a pre-mix spec,
     so historical cache entries and artifacts keep matching *)
  let sp = Experiment.spec ~seed:"mix-id" (kem "x25519") (sa "rsa:2048") in
  let sp_full =
    Experiment.spec ~seed:"mix-id" ~mix:Mix.full (kem "x25519") (sa "rsa:2048")
  in
  Alcotest.(check string) "full mix keeps the pre-mix fingerprint"
    (Experiment.spec_fingerprint sp)
    (Experiment.spec_fingerprint sp_full);
  let seed = "metrics-mix" in
  let a1 = mix_artifact_string ~jobs:1 ~seed in
  let a4 = mix_artifact_string ~jobs:4 ~seed in
  Alcotest.(check string) "jobs=1 and jobs=4 byte-identical" a1 a4;
  let p = parse_artifact a1 in
  Alcotest.(check int) "three cells" 3 (List.length p.Metrics.p_cells);
  Alcotest.(check (list string)) "self-diff is clean" []
    (Metrics.diff p (parse_artifact a4));
  let has c k = List.mem_assoc k c.Metrics.p_metrics in
  (match p.Metrics.p_cells with
  | [ full_cell; r90; r90_0rtt ] ->
    (* all three carry ~max_samples, so none is "standard"; what matters
       is that only the mixed cells grow the resumption block *)
    Alcotest.(check bool) "full cell has no resumption block" false
      (has full_cell "data.resumption.resumed_n");
    List.iter
      (fun (c : Metrics.p_cell) ->
        Alcotest.(check bool) (c.Metrics.p_key ^ " is not standard") false
          c.Metrics.p_standard;
        Alcotest.(check bool) (c.Metrics.p_key ^ " splits populations") true
          (has c "data.resumption.resumed_n"
          && has c "data.resumption.full_n"
          && has c "data.resumption.resumed_server_bytes.p50");
        let v k = List.assoc k c.Metrics.p_metrics in
        Alcotest.(check (float 0.)) "populations sum to the sample budget"
          10.
          (v "data.resumption.resumed_n" +. v "data.resumption.full_n");
        Alcotest.(check bool) "resumed server flight is cheaper" true
          (v "data.resumption.resumed_server_bytes.p50"
          < v "data.resumption.full_server_bytes.p50"))
      [ r90; r90_0rtt ];
    Alcotest.(check (float 0.)) "no 0-RTT without the 0-RTT mix" 0.
      (List.assoc "data.resumption.early_data_bytes" r90.Metrics.p_metrics);
    Alcotest.(check bool) "0-RTT mix accepts early data" true
      (List.assoc "data.resumption.early_data_bytes"
         r90_0rtt.Metrics.p_metrics
      > 0.)
  | _ -> Alcotest.fail "expected exactly the three mix cells")

(* ---- chain cells (Table 7) ---------------------------------------------------- *)

let chain_grid seed =
  List.map
    (fun p ->
      Experiment.spec ~seed ~max_samples:10 ~chain:p (kem "kyber768")
        (sa "dilithium3"))
    [ Tls.Chain_profile.default;
      Tls.Chain_profile.find "slhdsa-root";
      Tls.Chain_profile.find "mixed-acme" ]

let chain_artifact_string ~jobs ~seed =
  let exec = Exec.create ~jobs () in
  let results = Exec.cells exec (chain_grid seed) in
  Alcotest.(check int) "all cells ok" 3
    (List.length (List.filter Result.is_ok results));
  Metrics.to_json_string (Metrics.artifact exec.Exec.metrics ~seed)

let test_chain_cells_in_artifact () =
  (* the default profile is the identity: same fingerprint as a pre-chain
     spec, so historical cache entries and artifacts keep matching *)
  let sp = Experiment.spec ~seed:"chain-id" (kem "x25519") (sa "rsa:2048") in
  let sp_default =
    Experiment.spec ~seed:"chain-id" ~chain:Tls.Chain_profile.default
      (kem "x25519") (sa "rsa:2048")
  in
  Alcotest.(check string) "default profile keeps the pre-chain fingerprint"
    (Experiment.spec_fingerprint sp)
    (Experiment.spec_fingerprint sp_default);
  let seed = "metrics-chain" in
  let a1 = chain_artifact_string ~jobs:1 ~seed in
  let a4 = chain_artifact_string ~jobs:4 ~seed in
  Alcotest.(check string) "jobs=1 and jobs=4 byte-identical" a1 a4;
  let p = parse_artifact a1 in
  Alcotest.(check int) "three cells" 3 (List.length p.Metrics.p_cells);
  Alcotest.(check (list string)) "self-diff is clean" []
    (Metrics.diff p (parse_artifact a4));
  let has c k = List.mem_assoc k c.Metrics.p_metrics in
  match p.Metrics.p_cells with
  | [ default_cell; slhdsa; mixed ] ->
    (* only the non-default cells grow the chain block *)
    Alcotest.(check bool) "default cell has no chain block" false
      (has default_cell "data.chain.wire_bytes");
    List.iter
      (fun (c : Metrics.p_cell) ->
        Alcotest.(check bool) (c.Metrics.p_key ^ " is not standard") false
          c.Metrics.p_standard;
        Alcotest.(check bool) (c.Metrics.p_key ^ " carries chain totals") true
          (has c "data.chain.wire_bytes" && has c "data.chain.verify_ms"))
      [ slhdsa; mixed ];
    let v c k = List.assoc k c.Metrics.p_metrics in
    (* mixed-acme is one level deeper than slhdsa-root: strictly more
       certificate bytes must cross the wire *)
    Alcotest.(check bool) "deeper chain costs more wire" true
      (v mixed "data.chain.wire_bytes" > v slhdsa "data.chain.wire_bytes")
  | _ -> Alcotest.fail "expected exactly the three chain cells"

(* ---- drift detection --------------------------------------------------------- *)

let perturb ~cell_key ~metric ~factor (a : Metrics.p_artifact) =
  { a with
    Metrics.p_cells =
      List.map
        (fun (c : Metrics.p_cell) ->
          if c.Metrics.p_key <> cell_key then c
          else
            { c with
              Metrics.p_metrics =
                List.map
                  (fun (k, v) -> if k = metric then (k, v *. factor) else (k, v))
                  c.Metrics.p_metrics })
        a.Metrics.p_cells }

let test_diff_catches_drift () =
  let s = artifact_string ~jobs:2 ~seed:"metrics-drift" in
  let base = parse_artifact s in
  let key = "kyber512 x dilithium2 @ none" in
  let metric = "data.latency_ms.total.p50" in
  let bad = perturb ~cell_key:key ~metric ~factor:1.07 base in
  (match Metrics.diff base bad with
  | [ issue ] ->
    let has needle =
      let n = String.length needle and h = String.length issue in
      let rec go i = i + n <= h && (String.sub issue i n = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "issue names the cell" true (has key);
    Alcotest.(check bool) "issue names the metric" true (has metric)
  | issues ->
    Alcotest.failf "expected exactly one issue, got %d" (List.length issues));
  Alcotest.(check int) "rel-tol forgives small drift" 0
    (List.length (Metrics.diff ~rel_tol:0.10 base bad));
  (* a missing cell is drift too *)
  let truncated =
    { base with
      Metrics.p_cells =
        List.filter
          (fun (c : Metrics.p_cell) -> c.Metrics.p_key <> key)
          base.Metrics.p_cells }
  in
  Alcotest.(check bool) "missing cell reported" true
    (Metrics.diff base truncated <> []);
  Alcotest.(check bool) "extra cell reported" true
    (Metrics.diff truncated base <> [])

let test_failed_cells_in_artifact () =
  let seed = "metrics-fail" in
  let sp = [ Experiment.spec ~seed (kem "x25519") (sa "rsa:2048") ] in
  let ok_exec = Exec.create ~jobs:1 () in
  ignore (Exec.cells ok_exec sp);
  let bad_exec = Exec.create ~jobs:1 ~retries:0 ~fail_cell:"x25519" () in
  ignore (Exec.cells bad_exec sp);
  let ok_a =
    parse_artifact (Metrics.to_json_string (Metrics.artifact ok_exec.Exec.metrics ~seed))
  in
  let bad_a =
    parse_artifact (Metrics.to_json_string (Metrics.artifact bad_exec.Exec.metrics ~seed))
  in
  (match (List.hd bad_a.Metrics.p_cells).Metrics.p_error with
  | Some _ -> ()
  | None -> Alcotest.fail "failed cell must carry its error");
  Alcotest.(check bool) "ok vs failed flip is drift" true
    (Metrics.diff ok_a bad_a <> []);
  Alcotest.(check (list string)) "failed vs failed agrees" []
    (Metrics.diff bad_a bad_a)

let test_against_paper_gate () =
  let seed = "metrics-paper" in
  let exec = Exec.create ~jobs:1 () in
  ignore (Exec.cells exec [ Experiment.spec ~seed (kem "x25519") (sa "rsa:2048") ]);
  let a =
    parse_artifact (Metrics.to_json_string (Metrics.artifact exec.Exec.metrics ~seed))
  in
  let checked, issues = Metrics.against_paper a in
  Alcotest.(check (list string)) "baseline cell tracks the paper" [] issues;
  (* 5 Table-2a comparisons + 2 Table-2b ones for the shared row *)
  Alcotest.(check int) "all paper comparisons ran" 7 checked;
  let drifted =
    perturb ~cell_key:"x25519 x rsa:2048 @ none"
      ~metric:"data.latency_ms.part_b.p50" ~factor:2.0 a
  in
  let _, issues = Metrics.against_paper drifted in
  Alcotest.(check bool) "2x part B drift is flagged" true (issues <> []);
  List.iter
    (fun i ->
      let has needle =
        let n = String.length needle and h = String.length i in
        let rec go j = j + n <= h && (String.sub i j n = needle || go (j + 1)) in
        go 0
      in
      Alcotest.(check bool) "issue names the cell" true (has "x25519"))
    issues

let test_schema_version_guard () =
  (match Metrics.of_json_string "{\"schema\": \"pqtls-bench-metrics/99\"}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "future schema must be rejected");
  match Metrics.of_json_string "not json at all" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage must be rejected"

let suites =
  [ ( "metrics",
      [ Alcotest.test_case "stats: stddev" `Quick test_stats_stddev;
        Alcotest.test_case "stats: batched percentiles" `Quick
          test_stats_percentiles;
        Alcotest.test_case "stats: deterministic bootstrap CI" `Quick
          test_stats_bootstrap_ci;
        Alcotest.test_case "json: round-trip" `Quick test_json_roundtrip;
        Alcotest.test_case "artifact: --jobs byte-identity" `Slow
          test_artifact_jobs_identity;
        Alcotest.test_case "artifact: cache byte-identity + telemetry" `Slow
          test_artifact_cache_identity;
        Alcotest.test_case "registry + health summary" `Slow
          test_registry_and_health;
        Alcotest.test_case "cell identity: dedup + label clash" `Slow
          test_cell_identity_rules;
        Alcotest.test_case "mix cells: identity, split, byte-identity" `Slow
          test_mix_cells_in_artifact;
        Alcotest.test_case "chain cells: identity, totals, byte-identity" `Slow
          test_chain_cells_in_artifact;
        Alcotest.test_case "diff: drift, tolerance, missing cells" `Slow
          test_diff_catches_drift;
        Alcotest.test_case "failed cells serialize and diff" `Quick
          test_failed_cells_in_artifact;
        Alcotest.test_case "against-paper gate" `Slow test_against_paper_gate;
        Alcotest.test_case "schema version guard" `Quick
          test_schema_version_guard ] ) ]
