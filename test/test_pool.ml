(* The parallel campaign layer: the work-stealing pool must be a
   drop-in List.map, the parallel runner must be bit-identical to the
   sequential one, and the result cache must serve re-runs without
   re-executing a single cell. *)

open Core

let kem = Pqc.Registry.find_kem
let sa = Pqc.Registry.find_sig

(* ---- pool mechanics -------------------------------------------------------- *)

let test_pool_matches_map () =
  let xs = List.init 50 Fun.id in
  (* uneven task sizes so stealing actually happens *)
  let f x =
    let acc = ref 0 in
    for i = 0 to (x mod 7) * 10_000 do
      acc := !acc + (i * x)
    done;
    (x * x) + (!acc * 0)
  in
  Alcotest.(check (list int))
    "jobs=4 equals List.map" (List.map f xs)
    (Pool.map ~jobs:4 f xs);
  Alcotest.(check (list int))
    "jobs=1 equals List.map" (List.map f xs)
    (Pool.map ~jobs:1 f xs);
  Alcotest.(check (list int))
    "more jobs than tasks" (List.map f [ 1; 2; 3 ])
    (Pool.map ~jobs:16 f [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "empty input" [] (Pool.map ~jobs:4 f [])

let test_pool_on_done () =
  let seen = ref [] in
  let results =
    Pool.map ~jobs:4
      ~on_done:(fun ~index ~completed:_ ~total x y _elapsed ->
        Alcotest.(check int) "total" 10 total;
        Alcotest.(check int) "result matches input" (x + 1) y;
        seen := index :: !seen)
      (fun x -> x + 1)
      (List.init 10 Fun.id)
  in
  Alcotest.(check (list int)) "results ordered" (List.init 10 (fun i -> i + 1))
    results;
  Alcotest.(check (list int)) "every index reported once"
    (List.init 10 Fun.id) (List.sort compare !seen)

exception Boom

let test_pool_exception () =
  Alcotest.check_raises "worker exception propagates" Boom (fun () ->
      ignore
        (Pool.map ~jobs:4
           (fun x -> if x = 17 then raise Boom else x)
           (List.init 32 Fun.id)))

(* ---- parallel determinism -------------------------------------------------- *)

let subgrid seed =
  let kems = [ "x25519"; "kyber512"; "kyber768" ] in
  let sas = [ "rsa:2048"; "dilithium2"; "sphincs128" ] in
  List.concat_map
    (fun k -> List.map (fun s -> Experiment.spec ~seed (kem k) (sa s)) sas)
    kems

let marshal_bytes (outcomes : Experiment.outcome list) =
  Marshal.to_string outcomes []

(* these grids are loss-free and must never fail a cell *)
let oks results =
  List.map
    (function
      | Ok o -> o
      | Error (e : Exec.cell_error) ->
        Alcotest.fail ("unexpected cell failure: " ^ e.Exec.ce_message))
    results

let test_parallel_bit_identical () =
  let specs = subgrid "pool-determinism" in
  let seq = oks (Exec.cells Exec.sequential specs) in
  let par = oks (Exec.cells { Exec.sequential with Exec.jobs = 4 } specs) in
  Alcotest.(check bool)
    "3x3 grid byte-identical across jobs=1/jobs=4" true
    (String.equal (marshal_bytes seq) (marshal_bytes par))

let test_catalog_report_bit_identical () =
  let seq = Catalog.run ~seed:"pool-report" "all-sphincs" in
  let par =
    Catalog.run ~seed:"pool-report"
      ~exec:(Exec.create ~jobs:4 ()) "all-sphincs"
  in
  Alcotest.(check string) "rendered report identical" seq par

(* ---- result cache ---------------------------------------------------------- *)

let temp_cache_dir () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "pqtls-cache-test-%d-%.0f" (Unix.getpid ())
         (Clock.now_s () *. 1e6))
  in
  dir

let test_cache_roundtrip () =
  let dir = temp_cache_dir () in
  let specs = subgrid "pool-cache" in
  let first = Exec.create ~jobs:2 ~cache_dir:dir () in
  let cold = oks (Exec.cells first specs) in
  let c1 = Option.get first.Exec.cache in
  Alcotest.(check int) "cold run misses everything" (List.length specs)
    (Result_cache.misses c1);
  Alcotest.(check int) "cold run hits nothing" 0 (Result_cache.hits c1);
  (* a fresh context over the same directory: all cells reload *)
  let second = Exec.create ~jobs:2 ~cache_dir:dir () in
  let warm = oks (Exec.cells second specs) in
  let c2 = Option.get second.Exec.cache in
  Alcotest.(check int) "warm run executes zero cells" 0
    (Result_cache.misses c2);
  Alcotest.(check int) "warm run hits everything" (List.length specs)
    (Result_cache.hits c2);
  (* marshal bytes are not comparable across a disk round-trip (string
     sharing between outcomes is lost), so compare structurally — floats
     included, which is exact *)
  Alcotest.(check bool) "cached outcomes identical" true (cold = warm)

let test_cache_key_sensitivity () =
  let dir = temp_cache_dir () in
  let c = Result_cache.create ~dir in
  let base = Experiment.spec ~seed:"a" (kem "kyber768") (sa "dilithium3") in
  let k1 = Result_cache.key c base in
  Alcotest.(check string) "key is stable" k1 (Result_cache.key c base);
  let different =
    [ Experiment.spec ~seed:"b" (kem "kyber768") (sa "dilithium3");
      Experiment.spec ~seed:"a" (kem "kyber512") (sa "dilithium3");
      Experiment.spec ~seed:"a" ~scenario:Scenario.five_g (kem "kyber768")
        (sa "dilithium3");
      Experiment.spec ~seed:"a" ~buffering:Tls.Config.Default_buffered
        (kem "kyber768") (sa "dilithium3");
      Experiment.spec ~seed:"a" ~buffer_limit:8192 (kem "kyber768")
        (sa "dilithium3") ]
  in
  List.iter
    (fun sp ->
      Alcotest.(check bool)
        ("distinct key for " ^ Experiment.spec_fingerprint sp)
        false
        (String.equal k1 (Result_cache.key c sp)))
    different

let test_cache_corrupt_entry_is_miss () =
  let dir = temp_cache_dir () in
  let c = Result_cache.create ~dir in
  let spec = List.hd (subgrid "pool-corrupt") in
  let k = Result_cache.key c spec in
  let o1, s1 = Result_cache.find_or_run c spec (fun () -> Experiment.run_spec spec) in
  Alcotest.(check bool) "first is a miss" true (s1 = `Miss);
  (* clobber the entry on disk; the reader must fall back to executing *)
  let oc = open_out_bin (Filename.concat dir (k ^ ".outcome")) in
  output_string oc "not a marshalled outcome";
  close_out oc;
  let o2, s2 = Result_cache.find_or_run c spec (fun () -> Experiment.run_spec spec) in
  Alcotest.(check bool) "corrupt entry re-executes" true (s2 = `Miss);
  Alcotest.(check bool) "and returns the same outcome" true (o1 = o2);
  let _, s3 = Result_cache.find_or_run c spec (fun () -> Experiment.run_spec spec) in
  Alcotest.(check bool) "repaired entry now hits" true (s3 = `Hit)

let test_catalog_aliases () =
  Alcotest.(check string) "table2a resolves" "all-kem"
    (Catalog.resolve "table2a");
  Alcotest.(check string) "identity otherwise" "attack"
    (Catalog.resolve "attack");
  Alcotest.(check string) "alias and canonical describe the same campaign"
    (Catalog.describe "all-kem")
    (Catalog.describe "table2a")

let suites =
  [ ( "pool",
      [ Alcotest.test_case "pool map = List.map" `Quick test_pool_matches_map;
        Alcotest.test_case "pool on_done reporting" `Quick test_pool_on_done;
        Alcotest.test_case "pool exception propagation" `Quick
          test_pool_exception;
        Alcotest.test_case "parallel 3x3 grid bit-identical" `Slow
          test_parallel_bit_identical;
        Alcotest.test_case "parallel catalog report identical" `Slow
          test_catalog_report_bit_identical ] );
    ( "result-cache",
      [ Alcotest.test_case "cold/warm roundtrip, zero re-execution" `Slow
          test_cache_roundtrip;
        Alcotest.test_case "key sensitivity" `Quick test_cache_key_sensitivity;
        Alcotest.test_case "corrupt entry is a miss" `Quick
          test_cache_corrupt_entry_is_miss;
        Alcotest.test_case "catalog aliases" `Quick test_catalog_aliases ] ) ]
