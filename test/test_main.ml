let () =
  Alcotest.run "pqtls"
    (Test_crypto.suites @ Test_bignum.suites @ Test_pubkey.suites
   @ Test_kyber.suites @ Test_slh.suites @ Test_dilithium.suites @ Test_pqc.suites
   @ Test_netsim.suites @ Test_tls.suites @ Test_core.suites
   @ Test_pool.suites @ Test_failures.suites @ Test_metrics.suites
   @ Test_trace.suites @ Test_farm.suites @ Test_profile.suites)
