(* pqtls-lint: one bad and one good fixture per rule (each rule fires
   exactly on its bad fixture and stays quiet on the good one), the two
   suppression channels, and a repo-wide clean-run assertion — the same
   invariant CI enforces with the real binary. *)

let parse path text = Lint.Source.parse_string ~path Lint.Source.Ml text

let run ?entries ?rules srcs = Lint.Engine.run ?entries ?rules srcs

let rules_fired diags =
  List.sort_uniq String.compare
    (List.map (fun d -> d.Lint.Diag.rule) diags)

(* every fixture lives at lib/fixture/..., which is inside lib/ (S1
   scope) but outside lib/{crypto,pqc,tls} (C1 scope) and always has a
   phantom .mli companion so M1 stays quiet unless it is the rule under
   test *)
let with_mli path srcs =
  Lint.Source.
    { path = path ^ "i"; kind = Mli; ast = Signature [] }
  :: srcs

let run_with_mli path text = run (with_mli path [ parse path text ])

let test_d1 () =
  let bad = "let stamp () = Unix.gettimeofday ()\nlet t = Sys.time ()" in
  let diags = run_with_mli "lib/fixture/d1_bad.ml" bad in
  Alcotest.(check (list string)) "both wall-clock reads fire" [ "D1"; "D1" ]
    (List.map (fun d -> d.Lint.Diag.rule) diags);
  Alcotest.(check string) "symbol is the enclosing binding" "stamp"
    (List.hd diags).Lint.Diag.symbol;
  let good = "let stamp engine = Engine.now engine" in
  Alcotest.(check (list string)) "virtual time is clean" []
    (rules_fired (run_with_mli "lib/fixture/d1_good.ml" good))

(* the second half of D1: the quarantined Core.Clock is itself banned in
   the deterministic simulation layers, while the harness layers (core,
   bin, bench, test) may observe it freely *)
let test_d1_clock_scope () =
  let read = "let stamp () = Clock.now_s ()" in
  Alcotest.(check (list string)) "clock read in lib/netsim fires" [ "D1" ]
    (rules_fired (run_with_mli "lib/netsim/d1_clock.ml" read));
  let qualified = "let stamp t0 = Core.Clock.elapsed_s t0" in
  Alcotest.(check (list string)) "qualified clock read in lib/trace fires"
    [ "D1" ]
    (rules_fired (run_with_mli "lib/trace/d1_clock.ml" qualified));
  Alcotest.(check (list string)) "lib/core may read the clock" []
    (rules_fired (run_with_mli "lib/core/d1_clock.ml" read));
  Alcotest.(check (list string)) "tests may read the clock" []
    (rules_fired (run [ parse "test/d1_clock.ml" read ]))

let test_d2 () =
  let bad = "let pairs h = Hashtbl.fold (fun k v a -> (k, v) :: a) h []" in
  Alcotest.(check (list string)) "unsorted fold escape fires" [ "D2" ]
    (rules_fired (run_with_mli "lib/fixture/d2_bad.ml" bad));
  let bad_iter = "let dump h = Hashtbl.iter (fun k _ -> print_string k) h" in
  Alcotest.(check (list string)) "hash-order iter fires" [ "D2" ]
    (rules_fired (run_with_mli "lib/fixture/d2_iter.ml" bad_iter));
  let good =
    "let pairs h =\n\
    \  Hashtbl.fold (fun k v a -> (k, v) :: a) h [] |> List.sort compare\n\
     let pairs2 h =\n\
    \  List.sort compare (Hashtbl.fold (fun k v a -> (k, v) :: a) h [])"
  in
  Alcotest.(check (list string)) "sorted-at-producer folds are clean" []
    (rules_fired (run_with_mli "lib/fixture/d2_good.ml" good))

let test_c1 () =
  let bad =
    "let check tag expected = String.equal tag expected\n\
     let is_magic s = s = \"magic\""
  in
  let path = "lib/crypto/c1_bad.ml" in
  Alcotest.(check (list string)) "both comparisons fire" [ "C1"; "C1" ]
    (List.map
       (fun d -> d.Lint.Diag.rule)
       (run (with_mli path [ parse path bad ])))
  ;
  let good = "let check tag expected = Bytesx.equal_ct tag expected" in
  let path = "lib/crypto/c1_good.ml" in
  Alcotest.(check (list string)) "equal_ct is clean" []
    (rules_fired (run (with_mli path [ parse path good ])));
  (* same bad text outside lib/{crypto,pqc,tls} is out of scope *)
  Alcotest.(check (list string)) "C1 scope stops at the crypto layers" []
    (rules_fired (run_with_mli "lib/fixture/c1_elsewhere.ml" bad))

let test_s1 () =
  let bad = "let cache = Hashtbl.create 8" in
  Alcotest.(check (list string)) "module-level mutable state fires" [ "S1" ]
    (rules_fired (run_with_mli "lib/fixture/s1_bad.ml" bad));
  let good =
    "let make () = Hashtbl.create 8\nlet lazy_tbl = lazy (Hashtbl.create 8)"
  in
  Alcotest.(check (list string)) "per-call creation is clean" []
    (rules_fired (run_with_mli "lib/fixture/s1_good.ml" good));
  (* the same text outside lib/ is out of scope *)
  let diags = run [ parse "bench/s1_elsewhere.ml" bad ] in
  Alcotest.(check (list string)) "S1 scope is lib/ only" []
    (rules_fired diags)

let test_m1 () =
  let ml = "let answer = 42" in
  Alcotest.(check (list string)) "missing .mli fires" [ "M1" ]
    (rules_fired (run [ parse "lib/fixture/m1_bad.ml" ml ]));
  Alcotest.(check (list string)) ".mli present is clean" []
    (rules_fired (run_with_mli "lib/fixture/m1_good.ml" ml));
  Alcotest.(check (list string)) "M1 scope is lib/ only" []
    (rules_fired (run [ parse "bin/m1_elsewhere.ml" ml ]))

let test_attribute_suppression () =
  let text =
    "let stamp () =\n\
    \  (Unix.gettimeofday () [@lint.allow \"D1\" \"test fixture\"])"
  in
  Alcotest.(check (list string)) "annotated site is suppressed" []
    (rules_fired (run_with_mli "lib/fixture/attr.ml" text));
  let binding =
    "let cache = Hashtbl.create 8 [@@lint.allow \"S1\" \"guarded\"]"
  in
  Alcotest.(check (list string)) "binding attribute is suppressed" []
    (rules_fired (run_with_mli "lib/fixture/attr_binding.ml" binding));
  let whole_file =
    "[@@@lint.allow \"D1\" \"wall-clock test file\"]\n\
     let a () = Unix.gettimeofday ()\n\
     let b () = Sys.time ()"
  in
  Alcotest.(check (list string)) "floating attribute covers the file" []
    (rules_fired (run_with_mli "lib/fixture/attr_file.ml" whole_file));
  (* a reason is mandatory: its absence is itself a violation *)
  let no_reason =
    "let stamp () = (Unix.gettimeofday () [@lint.allow \"D1\"])"
  in
  Alcotest.(check (list string)) "reason-less suppression = LINT + D1"
    [ "D1"; "LINT" ]
    (rules_fired (run_with_mli "lib/fixture/attr_bad.ml" no_reason));
  (* a suppression for rule X does not silence rule Y *)
  let wrong_rule =
    "let stamp () = (Unix.gettimeofday () [@lint.allow \"C1\" \"nope\"])"
  in
  Alcotest.(check (list string)) "wrong-rule suppression does not apply"
    [ "D1" ]
    (rules_fired (run_with_mli "lib/fixture/attr_wrong.ml" wrong_rule))

let test_allowlist_file () =
  let entries, bad =
    Lint.Allow.parse_entries ~path:"lint.allow"
      "# comment\n\n\
       D1  lib/fixture/al.ml  stamp  health telemetry only\n\
       S1  lib/fixture/al.ml  *      legacy state, tracked in #42\n\
       garbage-line-without-enough-fields\n"
  in
  Alcotest.(check int) "two entries parsed" 2 (List.length entries);
  Alcotest.(check int) "malformed line reported" 1 (List.length bad);
  let text =
    "let stamp () = Unix.gettimeofday ()\nlet cache = Hashtbl.create 8\n\
     let other () = Sys.time ()"
  in
  let diags = run ~entries (with_mli "lib/fixture/al.ml"
                              [ parse "lib/fixture/al.ml" text ]) in
  (* stamp's D1 and any S1 are allowlisted; other's D1 survives *)
  Alcotest.(check (list string)) "entries suppress by rule+path+symbol"
    [ "D1" ] (rules_fired diags);
  Alcotest.(check string) "the surviving site is the un-listed one" "other"
    (List.hd diags).Lint.Diag.symbol;
  (* suffix path matching: absolute paths match repo-relative entries *)
  let abs = "/root/anywhere/lib/fixture/al.ml" in
  let diags = run ~entries (with_mli abs [ parse abs text ]) in
  Alcotest.(check (list string)) "entries match absolute paths by suffix"
    [ "D1" ] (rules_fired diags)

let test_rule_selection () =
  let text = "let stamp () = Unix.gettimeofday ()\nlet c = Hashtbl.create 8" in
  let d1 = Option.get (Lint.Engine.find_rule "D1") in
  Alcotest.(check (list string)) "only the selected rule runs" [ "D1" ]
    (rules_fired
       (run ~rules:[ d1 ]
          (with_mli "lib/fixture/sel.ml" [ parse "lib/fixture/sel.ml" text ])));
  Alcotest.(check bool) "unknown rules are not found" true
    (Lint.Engine.find_rule "Z9" = None)

let test_report_json () =
  let diags = run [ parse "lib/fixture/j_bad.ml" "let t = Sys.time ()" ] in
  let json =
    Lint.Report.render Lint.Report.Json ~files:1 ~errors:[] diags
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("json contains " ^ needle) true
        (let n = String.length needle and m = String.length json in
         let rec go i =
           i + n <= m && (String.sub json i n = needle || go (i + 1))
         in
         go 0))
    [ "\"schema\": \"pqtls-lint/1\""; "\"rule\": \"D1\""; "\"line\": 1";
      "\"rule\": \"M1\"" ]

(* The invariant CI enforces with the installed binary: the tree itself
   is clean under the checked-in allowlist. Locate the repo root by
   walking up out of _build; skip (rather than fail) when the test runs
   detached from a checkout. *)
let repo_root () =
  match Sys.getenv_opt "PQTLS_LINT_ROOT" with
  | Some r -> Some r
  | None ->
    let rec up dir =
      let in_build path =
        List.mem "_build" (String.split_on_char '/' path)
      in
      if Sys.file_exists (Filename.concat dir "dune-project")
         && not (in_build dir)
      then Some dir
      else
        let parent = Filename.dirname dir in
        if parent = dir then None else up parent
    in
    up (Sys.getcwd ())

let test_repo_clean () =
  match repo_root () with
  | None -> print_endline "no checkout found; skipping repo-wide lint"
  | Some root ->
    let paths =
      List.map (Filename.concat root) [ "lib"; "bin"; "bench"; "test" ]
    in
    let sources, errors = Lint.Source.load_paths paths in
    Alcotest.(check (list (pair string string))) "everything parses" []
      errors;
    Alcotest.(check bool) "the tree is there" true
      (List.length sources > 100);
    let entries, bad =
      Lint.Allow.load_file (Filename.concat root "lint.allow")
    in
    Alcotest.(check int) "allowlist parses" 0 (List.length bad);
    let diags = run ~entries sources in
    Alcotest.(check (list string)) "repo-wide clean run" []
      (List.map Lint.Diag.to_string diags)

let suites =
  [ ( "lint",
      [ Alcotest.test_case "D1 wall clock" `Quick test_d1;
        Alcotest.test_case "D1 clock quarantine scope" `Quick
          test_d1_clock_scope;
        Alcotest.test_case "D2 hash order" `Quick test_d2;
        Alcotest.test_case "C1 constant time" `Quick test_c1;
        Alcotest.test_case "S1 global state" `Quick test_s1;
        Alcotest.test_case "M1 interfaces" `Quick test_m1;
        Alcotest.test_case "attribute suppression" `Quick
          test_attribute_suppression;
        Alcotest.test_case "allowlist file" `Quick test_allowlist_file;
        Alcotest.test_case "rule selection" `Quick test_rule_selection;
        Alcotest.test_case "json report" `Quick test_report_json;
        Alcotest.test_case "repo-wide clean run" `Quick test_repo_clean ] )
  ]
