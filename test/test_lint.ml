(* pqtls-lint: one bad and one good fixture per rule (each rule fires
   exactly on its bad fixture and stays quiet on the good one), the two
   suppression channels, and a repo-wide clean-run assertion — the same
   invariant CI enforces with the real binary. *)

let parse path text = Lint.Source.parse_string ~path Lint.Source.Ml text

let run ?entries ?rules srcs = Lint.Engine.run ?entries ?rules srcs

let rules_fired diags =
  List.sort_uniq String.compare
    (List.map (fun d -> d.Lint.Diag.rule) diags)

(* every fixture lives at lib/fixture/..., which is inside lib/ (S1
   scope) but outside lib/{crypto,pqc,tls} (C1 scope) and always has a
   phantom .mli companion so M1 stays quiet unless it is the rule under
   test *)
let with_mli path srcs =
  Lint.Source.
    { path = path ^ "i"; kind = Mli; ast = Signature [] }
  :: srcs

let run_with_mli path text = run (with_mli path [ parse path text ])

let test_d1 () =
  let bad = "let stamp () = Unix.gettimeofday ()\nlet t = Sys.time ()" in
  let diags = run_with_mli "lib/fixture/d1_bad.ml" bad in
  Alcotest.(check (list string)) "both wall-clock reads fire" [ "D1"; "D1" ]
    (List.map (fun d -> d.Lint.Diag.rule) diags);
  Alcotest.(check string) "symbol is the enclosing binding" "stamp"
    (List.hd diags).Lint.Diag.symbol;
  let good = "let stamp engine = Engine.now engine" in
  Alcotest.(check (list string)) "virtual time is clean" []
    (rules_fired (run_with_mli "lib/fixture/d1_good.ml" good))

(* the second half of D1: the quarantined Core.Clock is itself banned in
   the deterministic simulation layers, while the harness layers (core,
   bin, bench, test) may observe it freely *)
let test_d1_clock_scope () =
  let read = "let stamp () = Clock.now_s ()" in
  Alcotest.(check (list string)) "clock read in lib/netsim fires" [ "D1" ]
    (rules_fired (run_with_mli "lib/netsim/d1_clock.ml" read));
  let qualified = "let stamp t0 = Core.Clock.elapsed_s t0" in
  Alcotest.(check (list string)) "qualified clock read in lib/trace fires"
    [ "D1" ]
    (rules_fired (run_with_mli "lib/trace/d1_clock.ml" qualified));
  Alcotest.(check (list string)) "lib/core may read the clock" []
    (rules_fired (run_with_mli "lib/core/d1_clock.ml" read));
  Alcotest.(check (list string)) "tests may read the clock" []
    (rules_fired (run [ parse "test/d1_clock.ml" read ]))

let test_d2 () =
  let bad = "let pairs h = Hashtbl.fold (fun k v a -> (k, v) :: a) h []" in
  Alcotest.(check (list string)) "unsorted fold escape fires" [ "D2" ]
    (rules_fired (run_with_mli "lib/fixture/d2_bad.ml" bad));
  let bad_iter = "let dump h = Hashtbl.iter (fun k _ -> print_string k) h" in
  Alcotest.(check (list string)) "hash-order iter fires" [ "D2" ]
    (rules_fired (run_with_mli "lib/fixture/d2_iter.ml" bad_iter));
  let good =
    "let pairs h =\n\
    \  Hashtbl.fold (fun k v a -> (k, v) :: a) h [] |> List.sort compare\n\
     let pairs2 h =\n\
    \  List.sort compare (Hashtbl.fold (fun k v a -> (k, v) :: a) h [])"
  in
  Alcotest.(check (list string)) "sorted-at-producer folds are clean" []
    (rules_fired (run_with_mli "lib/fixture/d2_good.ml" good))

let test_c1 () =
  let bad =
    "let check tag expected = String.equal tag expected\n\
     let is_magic s = s = \"magic\""
  in
  let path = "lib/crypto/c1_bad.ml" in
  Alcotest.(check (list string)) "both comparisons fire" [ "C1"; "C1" ]
    (List.map
       (fun d -> d.Lint.Diag.rule)
       (run (with_mli path [ parse path bad ])))
  ;
  let good = "let check tag expected = Bytesx.equal_ct tag expected" in
  let path = "lib/crypto/c1_good.ml" in
  Alcotest.(check (list string)) "equal_ct is clean" []
    (rules_fired (run (with_mli path [ parse path good ])));
  (* same bad text outside lib/{crypto,pqc,tls} is out of scope *)
  Alcotest.(check (list string)) "C1 scope stops at the crypto layers" []
    (rules_fired (run_with_mli "lib/fixture/c1_elsewhere.ml" bad))

let test_s1 () =
  let bad = "let cache = Hashtbl.create 8" in
  Alcotest.(check (list string)) "module-level mutable state fires" [ "S1" ]
    (rules_fired (run_with_mli "lib/fixture/s1_bad.ml" bad));
  let good =
    "let make () = Hashtbl.create 8\nlet lazy_tbl = lazy (Hashtbl.create 8)"
  in
  Alcotest.(check (list string)) "per-call creation is clean" []
    (rules_fired (run_with_mli "lib/fixture/s1_good.ml" good));
  (* the same text outside lib/ is out of scope *)
  let diags = run [ parse "bench/s1_elsewhere.ml" bad ] in
  Alcotest.(check (list string)) "S1 scope is lib/ only" []
    (rules_fired diags)

let test_m1 () =
  let ml = "let answer = 42" in
  Alcotest.(check (list string)) "missing .mli fires" [ "M1" ]
    (rules_fired (run [ parse "lib/fixture/m1_bad.ml" ml ]));
  Alcotest.(check (list string)) ".mli present is clean" []
    (rules_fired (run_with_mli "lib/fixture/m1_good.ml" ml));
  Alcotest.(check (list string)) "M1 scope is lib/ only" []
    (rules_fired (run [ parse "bin/m1_elsewhere.ml" ml ]))

let test_attribute_suppression () =
  let text =
    "let stamp () =\n\
    \  (Unix.gettimeofday () [@lint.allow \"D1\" \"test fixture\"])"
  in
  Alcotest.(check (list string)) "annotated site is suppressed" []
    (rules_fired (run_with_mli "lib/fixture/attr.ml" text));
  let binding =
    "let cache = Hashtbl.create 8 [@@lint.allow \"S1\" \"guarded\"]"
  in
  Alcotest.(check (list string)) "binding attribute is suppressed" []
    (rules_fired (run_with_mli "lib/fixture/attr_binding.ml" binding));
  let whole_file =
    "[@@@lint.allow \"D1\" \"wall-clock test file\"]\n\
     let a () = Unix.gettimeofday ()\n\
     let b () = Sys.time ()"
  in
  Alcotest.(check (list string)) "floating attribute covers the file" []
    (rules_fired (run_with_mli "lib/fixture/attr_file.ml" whole_file));
  (* a reason is mandatory: its absence is itself a violation *)
  let no_reason =
    "let stamp () = (Unix.gettimeofday () [@lint.allow \"D1\"])"
  in
  Alcotest.(check (list string)) "reason-less suppression = LINT + D1"
    [ "D1"; "LINT" ]
    (rules_fired (run_with_mli "lib/fixture/attr_bad.ml" no_reason));
  (* a suppression for rule X does not silence rule Y *)
  let wrong_rule =
    "let stamp () = (Unix.gettimeofday () [@lint.allow \"C1\" \"nope\"])"
  in
  Alcotest.(check (list string)) "wrong-rule suppression does not apply"
    [ "D1" ]
    (rules_fired (run_with_mli "lib/fixture/attr_wrong.ml" wrong_rule))

let test_allowlist_file () =
  let entries, bad =
    Lint.Allow.parse_entries ~path:"lint.allow"
      "# comment\n\n\
       D1  lib/fixture/al.ml  stamp  health telemetry only\n\
       S1  lib/fixture/al.ml  *      legacy state, tracked in #42\n\
       garbage-line-without-enough-fields\n"
  in
  Alcotest.(check int) "two entries parsed" 2 (List.length entries);
  Alcotest.(check int) "malformed line reported" 1 (List.length bad);
  let text =
    "let stamp () = Unix.gettimeofday ()\nlet cache = Hashtbl.create 8\n\
     let other () = Sys.time ()"
  in
  let diags = run ~entries (with_mli "lib/fixture/al.ml"
                              [ parse "lib/fixture/al.ml" text ]) in
  (* stamp's D1 and any S1 are allowlisted; other's D1 survives *)
  Alcotest.(check (list string)) "entries suppress by rule+path+symbol"
    [ "D1" ] (rules_fired diags);
  Alcotest.(check string) "the surviving site is the un-listed one" "other"
    (List.hd diags).Lint.Diag.symbol;
  (* suffix path matching: absolute paths match repo-relative entries *)
  let abs = "/root/anywhere/lib/fixture/al.ml" in
  let diags = run ~entries (with_mli abs [ parse abs text ]) in
  Alcotest.(check (list string)) "entries match absolute paths by suffix"
    [ "D1" ] (rules_fired diags)

let test_rule_selection () =
  let text = "let stamp () = Unix.gettimeofday ()\nlet c = Hashtbl.create 8" in
  let d1 = Option.get (Lint.Engine.find_rule "D1") in
  Alcotest.(check (list string)) "only the selected rule runs" [ "D1" ]
    (rules_fired
       (run ~rules:[ d1 ]
          (with_mli "lib/fixture/sel.ml" [ parse "lib/fixture/sel.ml" text ])));
  Alcotest.(check bool) "unknown rules are not found" true
    (Lint.Engine.find_rule "Z9" = None)

let test_report_json () =
  let diags = run [ parse "lib/fixture/j_bad.ml" "let t = Sys.time ()" ] in
  let json =
    Lint.Report.render Lint.Report.Json ~rules:Lint.Engine.rules ~files:1
      ~errors:[] diags
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("json contains " ^ needle) true
        (let n = String.length needle and m = String.length json in
         let rec go i =
           i + n <= m && (String.sub json i n = needle || go (i + 1))
         in
         go 0))
    [ "\"schema\": \"pqtls-lint/1\""; "\"rule\": \"D1\""; "\"line\": 1";
      "\"rule\": \"M1\"" ]

let rule name = Option.get (Lint.Engine.find_rule name)

let contains haystack needle =
  let n = String.length needle and m = String.length haystack in
  let rec go i =
    i + n <= m && (String.sub haystack i n = needle || go (i + 1))
  in
  go 0

let test_c2 () =
  let c2 = [ rule "C2" ] in
  let fired path text = rules_fired (run ~rules:c2 [ parse path text ]) in
  Alcotest.(check (list string)) "seeded param reaching String.equal fires"
    [ "C2" ]
    (fired "lib/tls/c2a.ml" "let check ~psk other = String.equal psk other");
  Alcotest.(check (list string)) "taint survives one call level" [ "C2" ]
    (fired "lib/tls/c2b.ml"
       "let helper s = s\n\
        let f ~master_secret =\n\
       \  match helper master_secret with \"\" -> 0 | _ -> 1");
  (* an HKDF output is secret whatever its binding is called *)
  let hkdf =
    "let f h x =\n\
    \  let k = Hkdf.extract h ~salt:\"\" ~ikm:x in\n\
    \  if k = \"\" then 1 else 0"
  in
  Alcotest.(check int) "HKDF output branches fire (compare + if)" 2
    (List.length (run ~rules:c2 [ parse "lib/tls/c2c.ml" hkdf ]));
  Alcotest.(check (list string)) "equal_ct clears taint" []
    (fired "lib/tls/c2d.ml"
       "let check ~psk other = Crypto.Bytesx.equal_ct psk other");
  Alcotest.(check (list string)) "declassify annotation clears taint" []
    (fired "lib/tls/c2e.ml"
       "let helper s = s\n\
        let f ~ticket_key =\n\
       \  match (helper ticket_key [@lint.declassify \"audited\"]) with\n\
       \  | \"\" -> 0\n\
       \  | _ -> 1");
  Alcotest.(check (list string)) "reason-less declassify = LINT + C2"
    [ "C2"; "LINT" ]
    (fired "lib/tls/c2f.ml"
       "let f ~ticket_key =\n\
       \  match (ticket_key [@lint.declassify]) with \"\" -> 0 | _ -> 1");
  Alcotest.(check (list string)) "C2 scope stops at the crypto layers" []
    (fired "lib/netsim/c2g.ml"
       "let check ~psk other = String.equal psk other")

let test_taint_summaries () =
  let srcs =
    [ parse "lib/tls/t_sum.ml"
        "let derive h x = Hkdf.extract h ~salt:\"\" ~ikm:x\n\
         let pass x = x\n\
         let const () = 42" ]
  in
  let t = Lint.Taint.analyse (Lint.Symtab.build srcs) in
  let s q = Option.get (Lint.Taint.summary t q) in
  Alcotest.(check bool) "HKDF wrapper returns secret" true
    (s "Tls.T_sum.derive").Lint.Taint.s_ret;
  Alcotest.(check bool) "identity is not a source" false
    (s "Tls.T_sum.pass").Lint.Taint.s_ret;
  Alcotest.(check bool) "identity propagates argument taint" true
    (s "Tls.T_sum.pass").Lint.Taint.s_arg_to_ret;
  Alcotest.(check bool) "constants stay pure" false
    (s "Tls.T_sum.const").Lint.Taint.s_ret;
  Alcotest.(check bool) "secret_name seeds by suffix" true
    (Lint.Taint.secret_name "client_hs_secret");
  Alcotest.(check bool) "secret_name ignores public names" false
    (Lint.Taint.secret_name "transcript")

let test_callgraph () =
  let srcs =
    [ parse "lib/core/cg_a.ml"
        "let f x = x + 1\nlet g y = f y\nlet r xs = Pool.map f xs";
      parse "lib/tls/cg_b.ml" "let h z = Core.Cg_a.g z" ]
  in
  let syms = Lint.Symtab.build srcs in
  let cg = Lint.Callgraph.build syms in
  Alcotest.(check (list string)) "bare-name edge resolves" [ "Core.Cg_a.f" ]
    (Lint.Callgraph.callees cg "Core.Cg_a.g");
  Alcotest.(check (list string)) "cross-library edge resolves"
    [ "Core.Cg_a.g" ]
    (Lint.Callgraph.callees cg "Tls.Cg_b.h");
  let reach = Lint.Callgraph.reachable cg [ "Tls.Cg_b.h" ] in
  Alcotest.(check bool) "reachability is transitive" true
    (Hashtbl.mem reach "Core.Cg_a.f");
  Alcotest.(check bool) "unrelated defs are not reachable" false
    (Hashtbl.mem reach "Core.Cg_a.r");
  Alcotest.(check (list string)) "Pool.map sites are roots" [ "Core.Cg_a.r" ]
    (Lint.Callgraph.pool_roots syms);
  Alcotest.(check bool) "dot rendering is graphviz" true
    (contains (Lint.Callgraph.to_dot cg) "digraph")

let test_u1 () =
  let u1 = [ rule "U1" ] in
  let fired path text = rules_fired (run ~rules:u1 [ parse path text ]) in
  Alcotest.(check (list string)) "unsafe outside a kernel fires" [ "U1" ]
    (fired "lib/crypto/u1a.ml" "let get b i = Bytes.unsafe_get b i");
  Alcotest.(check (list string)) "kernel-annotated module is clean" []
    (fired "lib/crypto/u1b.ml"
       "[@@@lint.kernel \"fixture bounds argument\"]\n\
        let get b i = Bytes.unsafe_get b i");
  Alcotest.(check (list string)) "stale kernel annotation fires" [ "U1" ]
    (fired "lib/crypto/u1c.ml"
       "[@@@lint.kernel \"nothing unsafe here\"]\nlet id x = x");
  Alcotest.(check (list string)) "reason-less kernel annotation fires"
    [ "U1" ]
    (fired "lib/crypto/u1d.ml"
       "[@@@lint.kernel]\nlet get b i = Bytes.unsafe_get b i");
  Alcotest.(check (list string)) "U1 scope is lib/ only" []
    (fired "bench/u1e.ml" "let get b i = Bytes.unsafe_get b i")

let test_s2 () =
  let s2 = [ rule "S2" ] in
  let fired path text = rules_fired (run ~rules:s2 [ parse path text ]) in
  let unmutexed =
    "let cache = Hashtbl.create 16\n\
     let record x = Hashtbl.replace cache x x\n\
     let run xs = Pool.map record xs"
  in
  Alcotest.(check (list string)) "pool-reachable unguarded write fires"
    [ "S2" ]
    (fired "lib/core/s2a.ml" unmutexed);
  let mutexed =
    "let cache = Hashtbl.create 16\n\
     let lock = Mutex.create ()\n\
     let record x = Mutex.protect lock (fun () -> Hashtbl.replace cache x x)\n\
     let run xs = Pool.map record xs"
  in
  Alcotest.(check (list string)) "Mutex.protect-guarded write is clean" []
    (fired "lib/core/s2b.ml" mutexed);
  let no_pool =
    "let cache = Hashtbl.create 16\n\
     let record x = Hashtbl.replace cache x x"
  in
  Alcotest.(check (list string)) "writes unreachable from pools are clean"
    []
    (fired "lib/core/s2c.ml" no_pool)

let test_sarif () =
  let diags = run [ parse "lib/fixture/sa_bad.ml" "let t = Sys.time ()" ] in
  let sarif =
    Lint.Report.render Lint.Report.Sarif ~rules:Lint.Engine.rules ~files:1
      ~errors:[] diags
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("sarif contains " ^ needle) true
        (contains sarif needle))
    [ "\"version\": \"2.1.0\"";
      "sarif-2.1.0";
      "\"ruleId\": \"D1\"";
      "\"level\": \"error\"";
      "\"startLine\": 1";
      "\"id\": \"C2\"" ];
  Alcotest.(check bool) "sarif format is registered" true
    (Lint.Report.format_of_string "sarif" = Some Lint.Report.Sarif)

let test_rule_metadata () =
  List.iter
    (fun (r : Lint.Rule.t) ->
      Alcotest.(check bool) (r.Lint.Rule.name ^ " has a doc string") true
        (String.length r.Lint.Rule.doc > 40))
    Lint.Engine.rules;
  Alcotest.(check (list string)) "catalog order"
    [ "D1"; "D2"; "C1"; "C2"; "S1"; "S2"; "U1"; "M1" ]
    (List.map (fun (r : Lint.Rule.t) -> r.Lint.Rule.name) Lint.Engine.rules);
  Alcotest.(check string) "severity vocabulary" "error"
    (Lint.Rule.severity_string Lint.Rule.Error)

(* The invariant CI enforces with the installed binary: the tree itself
   is clean under the checked-in allowlist. Locate the repo root by
   walking up out of _build; skip (rather than fail) when the test runs
   detached from a checkout. *)
let repo_root () =
  match Sys.getenv_opt "PQTLS_LINT_ROOT" with
  | Some r -> Some r
  | None ->
    let rec up dir =
      let in_build path =
        List.mem "_build" (String.split_on_char '/' path)
      in
      if Sys.file_exists (Filename.concat dir "dune-project")
         && not (in_build dir)
      then Some dir
      else
        let parent = Filename.dirname dir in
        if parent = dir then None else up parent
    in
    up (Sys.getcwd ())

let test_repo_clean () =
  match repo_root () with
  | None -> print_endline "no checkout found; skipping repo-wide lint"
  | Some root ->
    let paths =
      List.map (Filename.concat root) [ "lib"; "bin"; "bench"; "test" ]
    in
    let sources, errors = Lint.Source.load_paths paths in
    Alcotest.(check (list (pair string string))) "everything parses" []
      errors;
    Alcotest.(check bool) "the tree is there" true
      (List.length sources > 100);
    let entries, bad =
      Lint.Allow.load_file (Filename.concat root "lint.allow")
    in
    Alcotest.(check int) "allowlist parses" 0 (List.length bad);
    let diags = run ~entries sources in
    Alcotest.(check (list string)) "repo-wide clean run" []
      (List.map Lint.Diag.to_string diags)

(* The on-disk fixture corpus CI also checks with the real binary: the
   exact per-rule finding counts prove each dataflow rule is alive (a
   silently-dead rule would report 0 everywhere). *)
let test_fixture_corpus () =
  match repo_root () with
  | None -> print_endline "no checkout found; skipping fixture corpus"
  | Some root ->
    let dir = Filename.concat root "test/lint_fixtures" in
    let sources, errors = Lint.Source.load_paths [ dir ] in
    Alcotest.(check (list (pair string string))) "fixtures parse" [] errors;
    Alcotest.(check int) "fixture corpus size" 7 (List.length sources);
    List.iter
      (fun (name, expected) ->
        let diags = run ~rules:[ rule name ] sources in
        Alcotest.(check int)
          (Printf.sprintf "%s fires %d times on the corpus" name expected)
          expected (List.length diags);
        List.iter
          (fun (d : Lint.Diag.t) ->
            Alcotest.(check string) "only the selected rule fires" name
              d.Lint.Diag.rule)
          diags)
      [ ("C2", 5); ("U1", 2); ("S2", 1) ];
    (* recursive scans skip the corpus, so the repo-wide clean run and
       the blocking CI lint job never see these deliberate findings *)
    let scanned = Lint.Source.scan [ Filename.concat root "test" ] in
    Alcotest.(check bool) "scan skips lint_fixtures" false
      (List.exists (fun p -> contains p "lint_fixtures") scanned)

let suites =
  [ ( "lint",
      [ Alcotest.test_case "D1 wall clock" `Quick test_d1;
        Alcotest.test_case "D1 clock quarantine scope" `Quick
          test_d1_clock_scope;
        Alcotest.test_case "D2 hash order" `Quick test_d2;
        Alcotest.test_case "C1 constant time" `Quick test_c1;
        Alcotest.test_case "C2 secret flow" `Quick test_c2;
        Alcotest.test_case "taint summaries" `Quick test_taint_summaries;
        Alcotest.test_case "call graph" `Quick test_callgraph;
        Alcotest.test_case "S1 global state" `Quick test_s1;
        Alcotest.test_case "S2 domain race" `Quick test_s2;
        Alcotest.test_case "U1 unsafe confinement" `Quick test_u1;
        Alcotest.test_case "M1 interfaces" `Quick test_m1;
        Alcotest.test_case "attribute suppression" `Quick
          test_attribute_suppression;
        Alcotest.test_case "allowlist file" `Quick test_allowlist_file;
        Alcotest.test_case "rule selection" `Quick test_rule_selection;
        Alcotest.test_case "json report" `Quick test_report_json;
        Alcotest.test_case "sarif report" `Quick test_sarif;
        Alcotest.test_case "rule metadata" `Quick test_rule_metadata;
        Alcotest.test_case "repo-wide clean run" `Quick test_repo_clean;
        Alcotest.test_case "fixture corpus counts" `Quick
          test_fixture_corpus ] )
  ]
