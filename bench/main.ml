(* The benchmark harness: one target per table/figure of the paper plus
   bechamel microbenchmarks of the real cryptography.

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe table2a    -- one artifact
     dune exec bench/main.exe micro      -- microbenchmarks only
     dune exec bench/main.exe -- -j 8 table4a   -- shard cells over 8 domains
     dune exec bench/main.exe -- --seed s2 table2a   -- reseed the campaign
     dune exec bench/main.exe -- --profile p.json    -- wall-clock profile artifact
*)

(* campaign seed, overridable with --seed; every target reads it through
   this ref so one flag reseeds the whole run *)
let seed_ref = ref "bench"
let seed () = !seed_ref

(* campaign execution context, set from the command line in [main] *)
let exec = ref Core.Exec.sequential

(* ---- bechamel microbenchmarks of the real implementations -------------- *)

let micro_tests () =
  let open Bechamel in
  let rng = Crypto.Drbg.create ~seed:"bench-micro" in
  let msg = Crypto.Drbg.generate rng 1024 in
  let kyber = Pqc.Kyber.kyber768 in
  let ky_pk, ky_sk = Pqc.Kyber.keygen kyber rng in
  let ky_ct, _ = Pqc.Kyber.encaps kyber rng ky_pk in
  let dil = Pqc.Dilithium.dilithium3 in
  let dil_pk, dil_sk = Pqc.Dilithium.keygen dil rng in
  let dil_sig = Pqc.Dilithium.sign dil dil_sk msg in
  let x_scalar = Crypto.Drbg.generate rng 32 in
  let x_point = Crypto.X25519.public_of_secret (Crypto.Drbg.generate rng 32) in
  let gcm = Crypto.Aes_gcm.of_secret (Crypto.Drbg.generate rng 16) in
  let nonce = Crypto.Drbg.generate rng 12 in
  let cc_key = Crypto.Drbg.generate rng 32 in
  let rsa = Crypto.Rsa_keys.fixed_key 2048 in
  let rsa_sig = Crypto.Rsa.sign_pkcs1_sha256 rsa msg in
  let stage name f = Test.make ~name (Staged.stage f) in
  Test.make_grouped ~name:"pqtls" ~fmt:"%s/%s"
    [ stage "sha256-1k" (fun () -> Crypto.Sha256.digest msg);
      stage "sha3_256-1k" (fun () -> Crypto.Keccak.sha3_256 msg);
      stage "shake128-1k" (fun () -> Crypto.Keccak.shake128 msg 32);
      stage "hmac-sha256" (fun () -> Crypto.Hmac.hmac Crypto.Hmac.sha256 ~key:"k" msg);
      stage "aes128gcm-seal-1k" (fun () -> Crypto.Aes_gcm.seal gcm ~nonce ~ad:"" msg);
      stage "chacha20poly1305-1k" (fun () ->
          Crypto.Chacha20poly1305.seal ~key:cc_key ~nonce ~ad:"" msg);
      stage "x25519" (fun () ->
          Crypto.X25519.scalar_mult ~scalar:x_scalar ~point:x_point);
      stage "kyber768-encaps" (fun () -> Pqc.Kyber.encaps kyber rng ky_pk);
      stage "kyber768-decaps" (fun () -> Pqc.Kyber.decaps kyber ky_sk ky_ct);
      stage "dilithium3-sign" (fun () -> Pqc.Dilithium.sign dil dil_sk msg);
      stage "dilithium3-verify" (fun () ->
          Pqc.Dilithium.verify dil dil_pk ~msg dil_sig);
      stage "rsa2048-verify" (fun () ->
          Crypto.Rsa.verify_pkcs1_sha256 rsa.Crypto.Rsa.pub ~msg rsa_sig);
      stage "handshake-sim-kyber768-dilithium3" (fun () ->
          let engine = Netsim.Engine.create () in
          let rng = Crypto.Drbg.create ~seed:"bench-hs" in
          let link =
            Netsim.Link.create engine (Crypto.Drbg.fork rng "l")
              Netsim.Link.ideal ~tap:(fun _ _ -> ())
          in
          let ch = Netsim.Host.create engine ~name:"client" in
          let sh = Netsim.Host.create engine ~name:"server" in
          let config =
            Tls.Config.mocked (Pqc.Registry.find_kem "kyber768")
              (Pqc.Registry.find_sig "dilithium3")
          in
          let ok = ref false in
          Tls.Handshake.run ~engine ~link
            ~tcp_config:Netsim.Tcp.default_config ~client_host:ch
            ~server_host:sh ~config ~rng ~on_done:(fun _ -> ok := true) ();
          Netsim.Engine.run engine;
          assert !ok) ]

let run_micro () =
  let open Bechamel in
  print_endline "Microbenchmarks (host time of the real implementations)";
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:None () in
  let raw =
    Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] (micro_tests ())
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (e :: _) -> e
          | _ -> nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort compare
  in
  List.iter
    (fun (name, ns) ->
      if ns >= 1e6 then Printf.printf "  %-40s %10.3f ms/op\n" name (ns /. 1e6)
      else Printf.printf "  %-40s %10.1f us/op\n" name (ns /. 1e3))
    rows;
  print_newline ()

(* ---- table/figure targets ------------------------------------------------ *)

let targets : (string * (unit -> unit)) list =
  [ ("table2a",
     fun () -> print_string (Core.Report.table2a ~seed:(seed ()) ~exec:!exec ()));
    ("table2b",
     fun () -> print_string (Core.Report.table2b ~seed:(seed ()) ~exec:!exec ()));
    ("figure3",
     fun () -> print_string (Core.Report.figure3 ~seed:(seed ()) ~exec:!exec ()));
    ("table3",
     fun () -> print_string (Core.Report.table3 ~seed:(seed ()) ~exec:!exec ()));
    ("table4a",
     fun () -> print_string (Core.Report.table4a ~seed:(seed ()) ~exec:!exec ()));
    ("table4b",
     fun () -> print_string (Core.Report.table4b ~seed:(seed ()) ~exec:!exec ()));
    ("figure4",
     fun () -> print_string (Core.Report.figure4 ~seed:(seed ()) ~exec:!exec ()));
    ("attack",
     fun () -> print_string (Core.Report.attack ~seed:(seed ()) ~exec:!exec ()));
    ( "ablation",
      fun () ->
        print_string (Core.Report.ablation_buffer ~seed:(seed ()) ~exec:!exec ());
        print_string (Core.Report.ablation_cwnd ~seed:(seed ()) ~exec:!exec ());
        print_string (Core.Report.ablation_hrr ~seed:(seed ()) ~exec:!exec ()) );
    ("micro", run_micro) ]

let () =
  (* [--seed S], [-j N], [--cache DIR], [--retries N] and
     [-k|--keep-going] apply to every campaign target; the remaining
     arguments name targets, default all *)
  let rec parse jobs cache retries keep_going metrics profile = function
    | ("-j" | "--jobs") :: n :: rest ->
      parse (int_of_string_opt n) cache retries keep_going metrics profile rest
    | "--seed" :: s :: rest ->
      seed_ref := s;
      parse jobs cache retries keep_going metrics profile rest
    | "--cache" :: dir :: rest ->
      parse jobs (Some dir) retries keep_going metrics profile rest
    | "--retries" :: n :: rest ->
      parse jobs cache (int_of_string_opt n) keep_going metrics profile rest
    | ("-k" | "--keep-going") :: rest ->
      parse jobs cache retries true metrics profile rest
    | "--metrics" :: file :: rest ->
      parse jobs cache retries keep_going (Some file) profile rest
    | "--profile" :: file :: rest ->
      parse jobs cache retries keep_going metrics (Some file) rest
    | names -> (jobs, cache, retries, keep_going, metrics, profile, names)
  in
  let jobs, cache_dir, retries, keep_going, metrics_out, profile_out, requested
      =
    parse None None None false None None (List.tl (Array.to_list Sys.argv))
  in
  exec := Core.Exec.create ?jobs ?cache_dir ?retries ();
  let requested =
    (* --profile with no explicit targets runs only the profile; naming
       targets alongside it runs both *)
    match requested with
    | [] when profile_out <> None -> []
    | [] -> List.map fst targets
    | names -> names
  in
  List.iter
    (fun name ->
      match List.assoc_opt name targets with
      | Some f ->
        Printf.printf "==> %s\n%!" name;
        let t0 = Core.Clock.now_s () in
        f ();
        Printf.printf "    (%s finished in %.1f s wall, %d jobs)\n\n%!" name
          (Core.Clock.elapsed_s t0) !exec.Core.Exec.jobs
      | None ->
        Printf.eprintf "unknown target %s; available: %s\n" name
          (String.concat " " (List.map fst targets));
        exit 1)
    requested;
  (match metrics_out with
  | None -> ()
  | Some path ->
    let artifact = Core.Metrics.artifact !exec.Core.Exec.metrics ~seed:(seed ()) in
    let oc = open_out path in
    output_string oc (Core.Metrics.to_json_string artifact);
    close_out oc;
    Printf.eprintf "wrote %s (%d cells)\n%!" path
      (List.length artifact.Core.Metrics.a_cells));
  (match profile_out with
  | None -> ()
  | Some path ->
    Printf.printf "==> profile\n%!";
    let t0 = Core.Clock.now_s () in
    let artifact = Core.Profile.run ?jobs ~seed:(seed ()) () in
    let oc = open_out path in
    output_string oc (Core.Profile.to_json_string artifact);
    close_out oc;
    Printf.eprintf "wrote %s (%d ops)\n%!" path
      (List.length artifact.Core.Profile.pa_ops);
    Printf.printf "    (profile finished in %.1f s wall)\n\n%!"
      (Core.Clock.elapsed_s t0));
  Printf.eprintf "%s\n%!" (Core.Exec.health_summary !exec);
  if Core.Exec.failed_count !exec > 0 && not keep_going then exit 1
