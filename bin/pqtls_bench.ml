(* Command-line driver mirroring the paper's experiment.py (Appendix B):

     pqtls-bench list
     pqtls-bench run all-kem all-sig -o out/
     pqtls-bench handshake --kem kyber768 --sig dilithium3 --scenario lte-m
     pqtls-bench trace kyber512 dilithium2 --format chrome -o trace.json
     pqtls-bench algorithms
*)

open Cmdliner

let seed_arg =
  let doc = "Deterministic seed for the whole campaign." in
  Arg.(value & opt string "pqtls" & info [ "seed" ] ~docv:"SEED" ~doc)

let jobs_arg =
  let doc =
    "Domains to shard campaign cells across (results are bit-identical \
     for any value). Defaults to the recommended domain count of this \
     machine."
  in
  Arg.(
    value
    & opt int (Core.Exec.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let cache_arg =
  let doc =
    "Memoize completed cells in $(docv): re-runs with the same binary, \
     seed and parameters reload instead of re-executing."
  in
  Arg.(value & opt (some string) None & info [ "cache" ] ~docv:"DIR" ~doc)

let quiet_arg =
  Arg.(
    value & flag
    & info [ "q"; "quiet" ] ~doc:"Suppress the per-cell progress lines.")

let retries_arg =
  let doc =
    "Re-run a failing cell up to $(docv) extra times (each attempt \
     reseeds the cell deterministically) before recording it as failed."
  in
  Arg.(value & opt int 1 & info [ "retries" ] ~docv:"N" ~doc)

let keep_going_arg =
  Arg.(
    value & flag
    & info [ "k"; "keep-going" ]
        ~doc:
          "Exit 0 even when cells failed after retries. Reports always \
           render, with failed cells marked; without this flag a failed \
           cell makes the run exit 1.")

(* ---- list ---------------------------------------------------------------- *)

let list_cmd =
  let what_arg =
    let whats =
      [ ("experiments", `Experiments); ("kas", `Kas); ("sas", `Sas);
        ("scenarios", `Scenarios); ("workloads", `Workloads);
        ("mixes", `Mixes); ("chains", `Chains); ("ops", `Ops) ]
    in
    Arg.(
      value
      & pos 0 (enum whats) `Experiments
      & info [] ~docv:"WHAT"
          ~doc:
            "What to list: $(b,experiments) (default), $(b,kas), \
             $(b,sas), $(b,scenarios), $(b,workloads), $(b,mixes), \
             $(b,chains), or $(b,ops) (the profiled-primitive registry \
             behind $(b,profile)).")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the listing as JSON (stable field order) for scripts.")
  in
  let run what json =
    let open Core.Json in
    let emit j = print_string (to_string j) in
    match (what, json) with
    | `Experiments, false ->
      List.iter
        (fun name ->
          Printf.printf "%-22s %s\n" name (Core.Catalog.describe name))
        Core.Catalog.names
    | `Experiments, true ->
      emit
        (List
           (List.map
              (fun n ->
                Obj
                  [ ("name", String n);
                    ("description", String (Core.Catalog.describe n));
                    ( "aliases",
                      List
                        (List.filter_map
                           (fun (a, target) ->
                             if target = n then Some (String a) else None)
                           Core.Catalog.aliases) ) ])
              Core.Catalog.names))
    | `Kas, false ->
      List.iter (fun (k : Pqc.Kem.t) -> print_endline k.name) Pqc.Registry.kems
    | `Kas, true ->
      emit
        (List
           (List.map
              (fun (k : Pqc.Kem.t) ->
                Obj
                  [ ("name", String k.name);
                    ("level", Int k.level);
                    ("hybrid", Bool k.hybrid);
                    ("public_key_bytes", Int k.public_key_bytes);
                    ("ciphertext_bytes", Int k.ciphertext_bytes) ])
              Pqc.Registry.kems))
    | `Sas, false ->
      List.iter (fun (s : Pqc.Sigalg.t) -> print_endline s.name) Pqc.Registry.sigs
    | `Sas, true ->
      emit
        (List
           (List.map
              (fun (s : Pqc.Sigalg.t) ->
                Obj
                  [ ("name", String s.name);
                    ("level", Int s.level);
                    ("hybrid", Bool s.hybrid);
                    ("public_key_bytes", Int s.public_key_bytes);
                    ("signature_bytes", Int s.signature_bytes) ])
              Pqc.Registry.sigs))
    | `Scenarios, false ->
      List.iter
        (fun (s : Core.Scenario.t) -> Printf.printf "%-10s %s\n" s.name s.label)
        Core.Scenario.all
    | `Scenarios, true ->
      emit
        (List
           (List.map
              (fun (s : Core.Scenario.t) ->
                let n = s.Core.Scenario.netem in
                Obj
                  [ ("name", String s.name);
                    ("label", String s.label);
                    ("loss", Float n.Netsim.Link.loss);
                    ( "loss_towards",
                      match n.Netsim.Link.loss_towards with
                      | None -> Null
                      | Some d -> String d );
                    ("delay_s", Float n.Netsim.Link.delay_s);
                    ("jitter_s", Float n.Netsim.Link.jitter_s);
                    ("rate_bps", Float n.Netsim.Link.rate_bps) ])
              Core.Scenario.all))
    | `Workloads, false ->
      List.iter
        (fun (w : Netsim.Workload.t) ->
          Printf.printf "%-12s %-24s %s\n" w.name w.label w.description)
        Netsim.Workload.all
    | `Workloads, true ->
      emit
        (List
           (List.map
              (fun (w : Netsim.Workload.t) ->
                Obj
                  [ ("name", String w.name);
                    ("label", String w.label);
                    ("description", String w.description);
                    ("peak", Float w.peak) ])
              Netsim.Workload.all))
    | `Mixes, false ->
      List.iter
        (fun (m : Core.Mix.t) ->
          Printf.printf "%-15s %-18s %s\n" m.name m.label m.description)
        Core.Mix.all
    | `Mixes, true ->
      emit
        (List
           (List.map
              (fun (m : Core.Mix.t) ->
                Obj
                  [ ("name", String m.name);
                    ("label", String m.label);
                    ("resumed", Float m.resumed);
                    ("early_data", Bool m.early_data);
                    ("description", String m.description) ])
              Core.Mix.all))
    | `Chains, false ->
      List.iter
        (fun (p : Tls.Chain_profile.t) ->
          Printf.printf "%-16s %-14s depth %d  %s\n" p.name p.label
            (Tls.Chain_profile.depth p) p.description)
        Tls.Chain_profile.all
    | `Chains, true ->
      let level = function
        | Tls.Chain_profile.Leaf_alg -> String "leaf-alg"
        | Tls.Chain_profile.Named n -> String n
      in
      emit
        (List
           (List.map
              (fun (p : Tls.Chain_profile.t) ->
                Obj
                  [ ("name", String p.name);
                    ("label", String p.label);
                    ("depth", Int (Tls.Chain_profile.depth p));
                    ("intermediates", List (List.map level p.intermediates));
                    ("root", level p.root);
                    ("description", String p.description) ])
              Tls.Chain_profile.all))
    | `Ops, false ->
      List.iter
        (fun (o : Core.Profile.op) ->
          Printf.printf "%-7s %-28s %d x %-3d  warmup %d\n"
            (Core.Profile.group_name o.op_group)
            o.op_name o.op_samples o.op_batch o.op_warmup)
        (Core.Profile.registry ())
    | `Ops, true ->
      emit
        (List
           (List.map
              (fun (o : Core.Profile.op) ->
                Obj
                  [ ("name", String o.op_name);
                    ("group", String (Core.Profile.group_name o.op_group));
                    ("alg", String o.op_alg);
                    ("kind", String o.op_kind);
                    ("samples", Int o.op_samples);
                    ("batch", Int o.op_batch);
                    ("warmup", Int o.op_warmup) ])
              (Core.Profile.registry ())))
  in
  Cmd.v
    (Cmd.info "list"
       ~doc:
         "List the available experiments (Appendix B.6 schema), key \
          agreements, signature algorithms, network scenarios, farm \
          arrival workloads, resumption workload mixes, certificate \
          chain profiles, or profiled primitives; $(b,--json) emits a \
          machine-readable listing.")
    Term.(const run $ what_arg $ json_arg)

(* ---- run ----------------------------------------------------------------- *)

let run_cmd =
  let experiments =
    let doc = "Experiments to run (see $(b,list))." in
    Arg.(non_empty & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)
  in
  let out_dir =
    let doc = "Write each experiment's report to $(docv)/<name>.txt instead of stdout." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"DIR" ~doc)
  in
  let csv =
    Arg.(value & flag & info [ "csv" ]
           ~doc:"Also emit latencies CSVs for all-kem / all-sig (needs -o).")
  in
  let trace_out =
    let doc =
      "Record a virtual-time trace of every executed cell and write it \
       as Chrome trace-event JSON to $(docv) (open in Perfetto or \
       chrome://tracing). Cells served from the cache appear empty."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let metrics_out =
    let doc =
      "Write the machine-readable campaign artifact (per-cell latency \
       and wire distributions, retransmit and CPU counters) to $(docv) \
       as versioned JSON. Byte-identical for any $(b,--jobs) and for \
       cached vs fresh cells; feed it to $(b,compare)."
    in
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)
  in
  let run seed jobs cache_dir quiet retries keep_going out_dir csv trace_out
      metrics_out experiments =
    let store = Option.map (fun _ -> Trace.Store.create ()) trace_out in
    let exec =
      Core.Exec.create ~jobs ?cache_dir ~progress:(not quiet) ~retries
        ?trace:store ()
    in
    List.iter
      (fun name ->
        Core.Metrics.note_experiment exec.Core.Exec.metrics
          (Core.Catalog.resolve name);
        if not quiet then
          Printf.eprintf "==> %s (%d jobs%s)\n%!" name exec.Core.Exec.jobs
            (match cache_dir with
            | Some d -> ", cache " ^ d
            | None -> "");
        let report =
          try Core.Catalog.run ~seed ~exec name
          with Invalid_argument m ->
            Printf.eprintf "error: %s\n" m;
            exit 1
        in
        match out_dir with
        | None -> print_string report
        | Some dir ->
          if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
          let write path contents =
            let oc = open_out path in
            output_string oc contents;
            close_out oc;
            Printf.printf "wrote %s\n%!" path
          in
          write (Filename.concat dir (Core.Catalog.resolve name ^ ".txt")) report;
          if csv then begin
            match Core.Catalog.resolve name with
            | "all-kem" ->
              write (Filename.concat dir "all-kem-latencies.csv")
                (Core.Report.table2a_csv ~seed ~exec ())
            | "all-sig" ->
              write (Filename.concat dir "all-sig-latencies.csv")
                (Core.Report.table2b_csv ~seed ~exec ())
            | _ -> ()
          end)
      experiments;
    (match (trace_out, store) with
    | Some path, Some store ->
      let oc = open_out path in
      output_string oc (Trace.Export.chrome (Trace.Store.cells store));
      close_out oc;
      Printf.eprintf "wrote %s (%d cells, %d events)\n%!" path
        (Trace.Store.length store)
        (Trace.Store.total_events store)
    | _ -> ());
    (match metrics_out with
    | None -> ()
    | Some path ->
      let artifact = Core.Metrics.artifact exec.Core.Exec.metrics ~seed in
      let oc = open_out path in
      output_string oc (Core.Metrics.to_json_string artifact);
      close_out oc;
      (* the notice goes to stderr: stdout stays bit-identical *)
      Printf.eprintf "wrote %s (%d cells)\n%!" path
        (List.length artifact.Core.Metrics.a_cells
        + List.length artifact.Core.Metrics.a_farm_cells));
    (* the health summary goes to stderr: stdout stays bit-identical
       across --jobs and runs *)
    let failed = Core.Exec.failed_count exec in
    if (not quiet) || failed > 0 then
      Printf.eprintf "%s\n%!" (Core.Exec.health_summary exec);
    if failed > 0 && not keep_going then exit 1
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run named experiments (60 virtual seconds per configuration), \
          sharded across domains with $(b,--jobs) and memoized with \
          $(b,--cache). Failing cells are retried, then marked in the \
          rendered report; $(b,--keep-going) makes such runs exit 0.")
    Term.(
      const run $ seed_arg $ jobs_arg $ cache_arg $ quiet_arg $ retries_arg
      $ keep_going_arg $ out_dir $ csv $ trace_out $ metrics_out
      $ experiments)

(* ---- compare --------------------------------------------------------------- *)

let compare_cmd =
  let files =
    let doc = "Metrics artifacts written by $(b,run --metrics)." in
    Arg.(non_empty & pos_all file [] & info [] ~docv:"ARTIFACT" ~doc)
  in
  let against_paper_arg =
    Arg.(
      value & flag
      & info [ "against-paper" ]
          ~doc:
            "Judge each artifact's standard cells against the embedded \
             paper tables (2a/2b medians, bytes and handshake rates; \
             4a/4b scenario medians) instead of diffing two artifacts.")
  in
  let rel_tol_arg =
    let doc =
      "Per-metric relative tolerance for artifact diffs, as a fraction \
       (default 0 = bit-exact numbers)."
    in
    Arg.(value & opt float 0. & info [ "rel-tol" ] ~docv:"FRACTION" ~doc)
  in
  let run against_paper rel_tol files =
    let load path =
      let ic = open_in_bin path in
      let contents = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Core.Metrics.of_json_string contents with
      | Ok a -> a
      | Error e ->
        Printf.eprintf "error: %s: %s\n" path e;
        exit 2
    in
    let show path issues ok_line =
      if issues = [] then print_endline ok_line
      else begin
        Printf.printf "%s: %d issue%s:\n" path (List.length issues)
          (if List.length issues = 1 then "" else "s");
        List.iter (fun i -> Printf.printf "  %s\n" i) issues
      end;
      issues <> []
    in
    let drifted =
      if against_paper then
        List.fold_left
          (fun acc path ->
            let a = load path in
            let checked, issues = Core.Metrics.against_paper a in
            let drift =
              show path issues
                (Printf.sprintf "%s: %d paper comparison%s ok" path checked
                   (if checked = 1 then "" else "s"))
            in
            (* zero comparisons on an artifact with cells means the gate
               is miswired (e.g. only non-standard cells): fail loudly
               rather than vacuously pass *)
            if checked = 0 && a.Core.Metrics.p_cells <> [] then begin
              Printf.printf
                "%s: no cell was comparable to the paper tables\n" path;
              true
            end
            else acc || drift)
          false files
      else
        match files with
        | [ base; cand ] ->
          let b = load base in
          let issues = Core.Metrics.diff ~rel_tol b (load cand) in
          show (base ^ " vs " ^ cand) issues
            (Printf.sprintf "%s and %s agree (%d cells)" base cand
               (List.length b.Core.Metrics.p_cells
               + List.length b.Core.Metrics.p_farm_cells))
        | _ ->
          Printf.eprintf
            "error: compare takes exactly two artifacts (or any number \
             with --against-paper)\n";
          exit 2
    in
    if drifted then exit 1
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:
         "Diff two metrics artifacts cell by cell, or gate artifacts \
          against the paper's tables with $(b,--against-paper). Exits 1 \
          on drift, 2 on unreadable artifacts.")
    Term.(const run $ against_paper_arg $ rel_tol_arg $ files)

(* ---- handshake ------------------------------------------------------------ *)

let handshake_cmd =
  let kem_arg =
    Arg.(value & opt string "kyber768" & info [ "kem" ] ~docv:"KA"
           ~doc:"Key agreement (paper spelling, e.g. p256_kyber512).")
  in
  let sig_arg =
    Arg.(value & opt string "dilithium3" & info [ "sig" ] ~docv:"SA"
           ~doc:"Signature algorithm (e.g. rsa:2048, p384_dilithium3).")
  in
  let scenario_arg =
    Arg.(value & opt string "none" & info [ "scenario" ] ~docv:"SC"
           ~doc:"Network scenario: none, loss, bandwidth, delay, lte-m, 5g.")
  in
  let real_arg =
    Arg.(value & flag & info [ "real" ]
           ~doc:"Run the real cryptography instead of the size-exact mocks.")
  in
  let default_buffering_arg =
    Arg.(value & flag & info [ "default-buffering" ]
           ~doc:"Use OpenSSL's stock flight buffering instead of the optimized push.")
  in
  let pcap_arg =
    Arg.(value & opt (some string) None & info [ "pcap" ] ~docv:"FILE"
           ~doc:"Also capture a single handshake to a pcap file (opens in Wireshark).")
  in
  let run seed kem_name sig_name scenario_name real default_buffering pcap =
    let kem =
      try Pqc.Registry.find_kem kem_name
      with Not_found ->
        Printf.eprintf "unknown KA %s\n" kem_name;
        exit 1
    in
    let sig_alg =
      try Pqc.Registry.find_sig sig_name
      with Not_found ->
        Printf.eprintf "unknown SA %s\n" sig_name;
        exit 1
    in
    let scenario = Core.Scenario.find scenario_name in
    let buffering =
      if default_buffering then Tls.Config.Default_buffered
      else Tls.Config.Optimized_push
    in
    let o =
      Core.Experiment.run ~seed ~scenario ~buffering ~real_crypto:real kem
        sig_alg
    in
    let m f = Core.Experiment.median_of f o in
    Printf.printf
      "%s x %s under %s (%s crypto, %s buffering)\n\
      \  CH->SH            %8.3f ms\n\
      \  SH->ClientFin     %8.3f ms\n\
      \  total             %8.3f ms\n\
      \  handshakes / 60s  %8d\n\
      \  client sent       %8d B   server sent %8d B\n\
      \  CPU / handshake   client %.2f ms, server %.2f ms\n"
      kem_name sig_name scenario.Core.Scenario.label
      (if real then "real" else "mocked")
      (if default_buffering then "default" else "optimized")
      (m (fun s -> s.Core.Experiment.part_a_ms))
      (m (fun s -> s.Core.Experiment.part_b_ms))
      (m (fun s -> s.Core.Experiment.total_ms))
      o.Core.Experiment.handshakes_per_minute
      (Core.Experiment.median_bytes (fun s -> s.Core.Experiment.client_bytes) o)
      (Core.Experiment.median_bytes (fun s -> s.Core.Experiment.server_bytes) o)
      o.Core.Experiment.client_cpu_ms o.Core.Experiment.server_cpu_ms;
    List.iter
      (fun (lib, share) ->
        if share >= 0.005 then
          Printf.printf "    server %-10s %4.0f%%\n" lib (100. *. share))
      o.Core.Experiment.server_ledger;
    match pcap with
    | None -> ()
    | Some path ->
      (* re-run a single handshake with a fresh tap and dump it *)
      let engine = Netsim.Engine.create () in
      let trace = Netsim.Tap.create () in
      let rng = Crypto.Drbg.create ~seed:(seed ^ "/pcap") in
      let link =
        Netsim.Link.create engine (Crypto.Drbg.fork rng "link")
          scenario.Core.Scenario.netem
          ~tap:(fun t p -> Netsim.Tap.tap trace t p)
      in
      let ch = Netsim.Host.create engine ~name:"client" in
      let sh = Netsim.Host.create engine ~name:"server" in
      let config =
        (if real then Tls.Config.make else Tls.Config.mocked) ~buffering kem
          sig_alg
      in
      Tls.Handshake.run ~engine ~link ~tcp_config:Netsim.Tcp.default_config
        ~client_host:ch ~server_host:sh ~config ~rng ~on_done:(fun _ -> ()) ();
      Netsim.Engine.run engine;
      Netsim.Pcap.write_file path trace;
      Printf.printf "wrote %s (%d packets)\n" path (Netsim.Tap.length trace)
  in
  Cmd.v
    (Cmd.info "handshake"
       ~doc:"Measure one KA x SA pair and print the full breakdown.")
    Term.(
      const run $ seed_arg $ kem_arg $ sig_arg $ scenario_arg $ real_arg
      $ default_buffering_arg $ pcap_arg)

(* ---- trace ----------------------------------------------------------------- *)

let trace_cmd =
  let kem_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"KA"
          ~doc:"Key agreement (paper spelling, e.g. p256_kyber512).")
  in
  let sig_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"SA"
          ~doc:"Signature algorithm (e.g. rsa:2048, dilithium2).")
  in
  let scenario_arg =
    Arg.(value & opt string "none" & info [ "scenario" ] ~docv:"SC"
           ~doc:"Network scenario: none, loss, bandwidth, delay, lte-m, 5g.")
  in
  let format_arg =
    let formats =
      [ ("chrome", `Chrome); ("folded", `Folded); ("timeline", `Timeline);
        ("table", `Table) ]
    in
    Arg.(
      value
      & opt (enum formats) `Chrome
      & info [ "format" ] ~docv:"FMT"
          ~doc:
            "Output format: $(b,chrome) (trace-event JSON for \
             Perfetto/chrome://tracing), $(b,folded) (folded stacks for \
             flamegraph.pl / speedscope), $(b,timeline) (plain-text \
             chronological listing), or $(b,table) (trace-derived \
             Table 3 CPU shares cross-checked against the white-box \
             ledger).")
  in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write the export to $(docv) instead of stdout.")
  in
  let max_samples_arg =
    Arg.(value & opt (some int) None & info [ "max-samples" ] ~docv:"N"
           ~doc:"Stop the cell after $(docv) handshake iterations.")
  in
  let run seed kem_name sig_name scenario_name format out max_samples =
    let kem =
      try Pqc.Registry.find_kem kem_name
      with Not_found ->
        Printf.eprintf "unknown KA %s\n" kem_name;
        exit 1
    in
    let sig_alg =
      try Pqc.Registry.find_sig sig_name
      with Not_found ->
        Printf.eprintf "unknown SA %s\n" sig_name;
        exit 1
    in
    let scenario = Core.Scenario.find scenario_name in
    let spec =
      Core.Experiment.spec ~seed ~scenario ?max_samples kem sig_alg
    in
    let buf = Trace.Buf.create ~label:(Core.Experiment.spec_label spec) () in
    let outcome = Core.Experiment.run_spec ~trace:buf spec in
    let contents =
      match format with
      | `Chrome -> Trace.Export.chrome [ buf ]
      | `Folded -> Trace.Export.folded [ buf ]
      | `Timeline -> Trace.Export.timeline [ buf ]
      | `Table ->
        Core.Whitebox.render_trace_checks
          ("Trace-derived CPU shares vs white-box ledger: "
          ^ Core.Experiment.spec_label spec)
          (Core.Whitebox.trace_checks outcome buf)
    in
    match out with
    | None -> print_string contents
    | Some path ->
      let oc = open_out path in
      output_string oc contents;
      close_out oc;
      Printf.eprintf "wrote %s (%d events)\n%!" path (Trace.Buf.length buf)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Trace one KA x SA cell in virtual time: handshake phases, \
          per-message spans, per-operation crypto costs, TCP transmit / \
          retransmit instants, cwnd counters and wire occupancy, \
          exported for Perfetto, flamegraphs, or plain text.")
    Term.(
      const run $ seed_arg $ kem_arg $ sig_arg $ scenario_arg $ format_arg
      $ out_arg $ max_samples_arg)

(* ---- profile --------------------------------------------------------------- *)

let profile_cmd =
  let ops_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "ops" ] ~docv:"FILTER"
          ~doc:
            "Only measure ops whose $(b,group:name) contains $(docv) \
             (e.g. $(b,kyber512), $(b,sign), $(b,kernel:)); see \
             $(b,list ops).")
  in
  let jobs_arg =
    let doc =
      "Domains to shard the micro-benchmarks across. Defaults to 1: \
       sequential measurement is the most accurate; parallel runs trade \
       timing fidelity for wall time (the artifact's deterministic shape \
       is identical either way)."
    in
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)
  in
  let format_arg =
    let formats = [ ("table", `Table); ("json", `Json); ("folded", `Folded) ] in
    Arg.(
      value
      & opt (enum formats) `Table
      & info [ "format" ] ~docv:"FMT"
          ~doc:
            "Output format: $(b,table) (per-op stats plus the virtual vs \
             real attribution table), $(b,json) (the versioned \
             pqtls-bench-profile artifact), or $(b,folded) (folded \
             stacks weighted by median real time, for flamegraph.pl / \
             speedscope).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the output to $(docv) instead of stdout.")
  in
  let run seed jobs ops format out =
    let artifact =
      try Core.Profile.run ~jobs ?ops_filter:ops ~seed ()
      with Invalid_argument msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 2
    in
    let contents =
      match format with
      | `Table -> Core.Profile.render_table artifact
      | `Json -> Core.Profile.to_json_string artifact
      | `Folded -> Core.Profile.folded artifact
    in
    match out with
    | None -> print_string contents
    | Some path ->
      let oc = open_out path in
      output_string oc contents;
      close_out oc;
      Printf.eprintf "wrote %s (%d ops)\n%!" path
        (List.length artifact.Core.Profile.pa_ops)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Micro-benchmark the real pure-OCaml substrates in host time: \
          per-KA keygen/encaps/decaps, per-SA keygen/sign/verify and the \
          shared kernels (Keccak permutation, NTTs, HKDF, SHA-256), with \
          robust per-op statistics, GC allocation deltas, and a \
          campaign-attribution table mapping each virtual-cost bucket to \
          measured real milliseconds. Values are machine-dependent by \
          design; the artifact's shape is deterministic.")
    Term.(const run $ seed_arg $ jobs_arg $ ops_arg $ format_arg $ out_arg)

(* ---- compare-profile ------------------------------------------------------- *)

let compare_profile_cmd =
  let files =
    let doc = "Profile artifacts written by $(b,profile --format json -o)." in
    Arg.(non_empty & pos_all file [] & info [] ~docv:"ARTIFACT" ~doc)
  in
  let rel_tol_arg =
    let doc =
      "Per-op relative tolerance on the judged metrics (median time, \
       minor allocation rate), as a fraction."
    in
    Arg.(value & opt float 0.25 & info [ "rel-tol" ] ~docv:"FRACTION" ~doc)
  in
  let run rel_tol files =
    let load path =
      let ic = open_in_bin path in
      let contents = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Core.Profile.of_json_string contents with
      | Ok a -> a
      | Error e ->
        Printf.eprintf "error: %s: %s\n" path e;
        exit 2
    in
    match files with
    | [ base; cand ] ->
      let b = load base in
      let issues = Core.Profile.diff ~rel_tol b (load cand) in
      if issues = [] then begin
        Printf.printf "%s and %s agree (%d ops, tol %.0f%%)\n" base cand
          (List.length b.Core.Profile.q_ops)
          (rel_tol *. 100.);
        exit 0
      end
      else begin
        Printf.printf "%s vs %s: %d issue%s:\n" base cand
          (List.length issues)
          (if List.length issues = 1 then "" else "s");
        List.iter (fun i -> Printf.printf "  %s\n" i) issues;
        exit 1
      end
    | _ ->
      Printf.eprintf "error: compare-profile takes exactly two artifacts\n";
      exit 2
  in
  Cmd.v
    (Cmd.info "compare-profile"
       ~doc:
         "Diff two profile artifacts op by op: shape changes (op set, \
          iteration plans) and drift beyond $(b,--rel-tol) on median \
          time and minor allocation rate are issues. Exits 1 on drift, \
          2 on unreadable artifacts. Timings are machine-dependent — \
          only compare artifacts from comparable machines.")
    Term.(const run $ rel_tol_arg $ files)

(* ---- algorithms ------------------------------------------------------------ *)

let algorithms_cmd =
  let run () =
    Printf.printf "Key agreements (%d):\n" (List.length Pqc.Registry.kems);
    List.iter
      (fun (k : Pqc.Kem.t) ->
        Printf.printf "  L%d %-18s pk %6d B  ct %6d B%s\n" k.level k.name
          k.public_key_bytes k.ciphertext_bytes
          (if k.hybrid then "  (hybrid)" else ""))
      Pqc.Registry.kems;
    Printf.printf "Signature algorithms (%d):\n" (List.length Pqc.Registry.sigs);
    List.iter
      (fun (s : Pqc.Sigalg.t) ->
        Printf.printf "  L%d %-18s pk %6d B  sig %6d B%s\n" s.level s.name
          s.public_key_bytes s.signature_bytes
          (if s.hybrid then "  (hybrid)" else ""))
      Pqc.Registry.sigs
  in
  Cmd.v
    (Cmd.info "algorithms" ~doc:"List every algorithm with its wire sizes.")
    Term.(const run $ const ())

let () =
  let info =
    Cmd.info "pqtls-bench"
      ~doc:"Reproduction harness for `The Performance of Post-Quantum TLS 1.3'"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; run_cmd; compare_cmd; handshake_cmd; trace_cmd;
            profile_cmd; compare_profile_cmd; algorithms_cmd ]))
