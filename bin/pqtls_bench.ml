(* Command-line driver mirroring the paper's experiment.py (Appendix B):

     pqtls-bench list
     pqtls-bench run all-kem all-sig -o out/
     pqtls-bench handshake --kem kyber768 --sig dilithium3 --scenario lte-m
     pqtls-bench trace kyber512 dilithium2 --format chrome -o trace.json
     pqtls-bench algorithms
*)

open Cmdliner

let seed_arg =
  let doc = "Deterministic seed for the whole campaign." in
  Arg.(value & opt string "pqtls" & info [ "seed" ] ~docv:"SEED" ~doc)

let jobs_arg =
  let doc =
    "Domains to shard campaign cells across (results are bit-identical \
     for any value). Defaults to the recommended domain count of this \
     machine."
  in
  Arg.(
    value
    & opt int (Core.Exec.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let cache_arg =
  let doc =
    "Memoize completed cells in $(docv): re-runs with the same binary, \
     seed and parameters reload instead of re-executing."
  in
  Arg.(value & opt (some string) None & info [ "cache" ] ~docv:"DIR" ~doc)

let quiet_arg =
  Arg.(
    value & flag
    & info [ "q"; "quiet" ] ~doc:"Suppress the per-cell progress lines.")

let retries_arg =
  let doc =
    "Re-run a failing cell up to $(docv) extra times (each attempt \
     reseeds the cell deterministically) before recording it as failed."
  in
  Arg.(value & opt int 1 & info [ "retries" ] ~docv:"N" ~doc)

let keep_going_arg =
  Arg.(
    value & flag
    & info [ "k"; "keep-going" ]
        ~doc:
          "Exit 0 even when cells failed after retries. Reports always \
           render, with failed cells marked; without this flag a failed \
           cell makes the run exit 1.")

(* ---- list ---------------------------------------------------------------- *)

let list_cmd =
  let run () =
    List.iter
      (fun name -> Printf.printf "%-22s %s\n" name (Core.Catalog.describe name))
      Core.Catalog.names
  in
  Cmd.v (Cmd.info "list" ~doc:"List the available experiments (Appendix B.6 schema).")
    Term.(const run $ const ())

(* ---- run ----------------------------------------------------------------- *)

let run_cmd =
  let experiments =
    let doc = "Experiments to run (see $(b,list))." in
    Arg.(non_empty & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)
  in
  let out_dir =
    let doc = "Write each experiment's report to $(docv)/<name>.txt instead of stdout." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"DIR" ~doc)
  in
  let csv =
    Arg.(value & flag & info [ "csv" ]
           ~doc:"Also emit latencies CSVs for all-kem / all-sig (needs -o).")
  in
  let trace_out =
    let doc =
      "Record a virtual-time trace of every executed cell and write it \
       as Chrome trace-event JSON to $(docv) (open in Perfetto or \
       chrome://tracing). Cells served from the cache appear empty."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let run seed jobs cache_dir quiet retries keep_going out_dir csv trace_out
      experiments =
    let store = Option.map (fun _ -> Trace.Store.create ()) trace_out in
    let exec =
      Core.Exec.create ~jobs ?cache_dir ~progress:(not quiet) ~retries
        ?trace:store ()
    in
    List.iter
      (fun name ->
        if not quiet then
          Printf.eprintf "==> %s (%d jobs%s)\n%!" name exec.Core.Exec.jobs
            (match cache_dir with
            | Some d -> ", cache " ^ d
            | None -> "");
        let report =
          try Core.Catalog.run ~seed ~exec name
          with Invalid_argument m ->
            Printf.eprintf "error: %s\n" m;
            exit 1
        in
        match out_dir with
        | None -> print_string report
        | Some dir ->
          if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
          let write path contents =
            let oc = open_out path in
            output_string oc contents;
            close_out oc;
            Printf.printf "wrote %s\n%!" path
          in
          write (Filename.concat dir (Core.Catalog.resolve name ^ ".txt")) report;
          if csv then begin
            match Core.Catalog.resolve name with
            | "all-kem" ->
              write (Filename.concat dir "all-kem-latencies.csv")
                (Core.Report.table2a_csv ~seed ~exec ())
            | "all-sig" ->
              write (Filename.concat dir "all-sig-latencies.csv")
                (Core.Report.table2b_csv ~seed ~exec ())
            | _ -> ()
          end)
      experiments;
    (match (trace_out, store) with
    | Some path, Some store ->
      let oc = open_out path in
      output_string oc (Trace.Export.chrome (Trace.Store.cells store));
      close_out oc;
      Printf.eprintf "wrote %s (%d cells, %d events)\n%!" path
        (Trace.Store.length store)
        (Trace.Store.total_events store)
    | _ -> ());
    (* the health summary goes to stderr: stdout stays bit-identical
       across --jobs and runs *)
    let failed = Core.Exec.failed_count exec in
    if (not quiet) || failed > 0 then
      Printf.eprintf "%s\n%!" (Core.Exec.health_summary exec);
    if failed > 0 && not keep_going then exit 1
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run named experiments (60 virtual seconds per configuration), \
          sharded across domains with $(b,--jobs) and memoized with \
          $(b,--cache). Failing cells are retried, then marked in the \
          rendered report; $(b,--keep-going) makes such runs exit 0.")
    Term.(
      const run $ seed_arg $ jobs_arg $ cache_arg $ quiet_arg $ retries_arg
      $ keep_going_arg $ out_dir $ csv $ trace_out $ experiments)

(* ---- handshake ------------------------------------------------------------ *)

let handshake_cmd =
  let kem_arg =
    Arg.(value & opt string "kyber768" & info [ "kem" ] ~docv:"KA"
           ~doc:"Key agreement (paper spelling, e.g. p256_kyber512).")
  in
  let sig_arg =
    Arg.(value & opt string "dilithium3" & info [ "sig" ] ~docv:"SA"
           ~doc:"Signature algorithm (e.g. rsa:2048, p384_dilithium3).")
  in
  let scenario_arg =
    Arg.(value & opt string "none" & info [ "scenario" ] ~docv:"SC"
           ~doc:"Network scenario: none, loss, bandwidth, delay, lte-m, 5g.")
  in
  let real_arg =
    Arg.(value & flag & info [ "real" ]
           ~doc:"Run the real cryptography instead of the size-exact mocks.")
  in
  let default_buffering_arg =
    Arg.(value & flag & info [ "default-buffering" ]
           ~doc:"Use OpenSSL's stock flight buffering instead of the optimized push.")
  in
  let pcap_arg =
    Arg.(value & opt (some string) None & info [ "pcap" ] ~docv:"FILE"
           ~doc:"Also capture a single handshake to a pcap file (opens in Wireshark).")
  in
  let run seed kem_name sig_name scenario_name real default_buffering pcap =
    let kem =
      try Pqc.Registry.find_kem kem_name
      with Not_found ->
        Printf.eprintf "unknown KA %s\n" kem_name;
        exit 1
    in
    let sig_alg =
      try Pqc.Registry.find_sig sig_name
      with Not_found ->
        Printf.eprintf "unknown SA %s\n" sig_name;
        exit 1
    in
    let scenario = Core.Scenario.find scenario_name in
    let buffering =
      if default_buffering then Tls.Config.Default_buffered
      else Tls.Config.Optimized_push
    in
    let o =
      Core.Experiment.run ~seed ~scenario ~buffering ~real_crypto:real kem
        sig_alg
    in
    let m f = Core.Experiment.median_of f o in
    Printf.printf
      "%s x %s under %s (%s crypto, %s buffering)\n\
      \  CH->SH            %8.3f ms\n\
      \  SH->ClientFin     %8.3f ms\n\
      \  total             %8.3f ms\n\
      \  handshakes / 60s  %8d\n\
      \  client sent       %8d B   server sent %8d B\n\
      \  CPU / handshake   client %.2f ms, server %.2f ms\n"
      kem_name sig_name scenario.Core.Scenario.label
      (if real then "real" else "mocked")
      (if default_buffering then "default" else "optimized")
      (m (fun s -> s.Core.Experiment.part_a_ms))
      (m (fun s -> s.Core.Experiment.part_b_ms))
      (m (fun s -> s.Core.Experiment.total_ms))
      o.Core.Experiment.handshakes_per_minute
      (Core.Experiment.median_bytes (fun s -> s.Core.Experiment.client_bytes) o)
      (Core.Experiment.median_bytes (fun s -> s.Core.Experiment.server_bytes) o)
      o.Core.Experiment.client_cpu_ms o.Core.Experiment.server_cpu_ms;
    List.iter
      (fun (lib, share) ->
        if share >= 0.005 then
          Printf.printf "    server %-10s %4.0f%%\n" lib (100. *. share))
      o.Core.Experiment.server_ledger;
    match pcap with
    | None -> ()
    | Some path ->
      (* re-run a single handshake with a fresh tap and dump it *)
      let engine = Netsim.Engine.create () in
      let trace = Netsim.Tap.create () in
      let rng = Crypto.Drbg.create ~seed:(seed ^ "/pcap") in
      let link =
        Netsim.Link.create engine (Crypto.Drbg.fork rng "link")
          scenario.Core.Scenario.netem
          ~tap:(fun t p -> Netsim.Tap.tap trace t p)
      in
      let ch = Netsim.Host.create engine ~name:"client" in
      let sh = Netsim.Host.create engine ~name:"server" in
      let config =
        (if real then Tls.Config.make else Tls.Config.mocked) ~buffering kem
          sig_alg
      in
      Tls.Handshake.run ~engine ~link ~tcp_config:Netsim.Tcp.default_config
        ~client_host:ch ~server_host:sh ~config ~rng ~on_done:(fun _ -> ());
      Netsim.Engine.run engine;
      Netsim.Pcap.write_file path trace;
      Printf.printf "wrote %s (%d packets)\n" path (Netsim.Tap.length trace)
  in
  Cmd.v
    (Cmd.info "handshake"
       ~doc:"Measure one KA x SA pair and print the full breakdown.")
    Term.(
      const run $ seed_arg $ kem_arg $ sig_arg $ scenario_arg $ real_arg
      $ default_buffering_arg $ pcap_arg)

(* ---- trace ----------------------------------------------------------------- *)

let trace_cmd =
  let kem_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"KA"
          ~doc:"Key agreement (paper spelling, e.g. p256_kyber512).")
  in
  let sig_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"SA"
          ~doc:"Signature algorithm (e.g. rsa:2048, dilithium2).")
  in
  let scenario_arg =
    Arg.(value & opt string "none" & info [ "scenario" ] ~docv:"SC"
           ~doc:"Network scenario: none, loss, bandwidth, delay, lte-m, 5g.")
  in
  let format_arg =
    let formats =
      [ ("chrome", `Chrome); ("folded", `Folded); ("timeline", `Timeline);
        ("table", `Table) ]
    in
    Arg.(
      value
      & opt (enum formats) `Chrome
      & info [ "format" ] ~docv:"FMT"
          ~doc:
            "Output format: $(b,chrome) (trace-event JSON for \
             Perfetto/chrome://tracing), $(b,folded) (folded stacks for \
             flamegraph.pl / speedscope), $(b,timeline) (plain-text \
             chronological listing), or $(b,table) (trace-derived \
             Table 3 CPU shares cross-checked against the white-box \
             ledger).")
  in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write the export to $(docv) instead of stdout.")
  in
  let max_samples_arg =
    Arg.(value & opt (some int) None & info [ "max-samples" ] ~docv:"N"
           ~doc:"Stop the cell after $(docv) handshake iterations.")
  in
  let run seed kem_name sig_name scenario_name format out max_samples =
    let kem =
      try Pqc.Registry.find_kem kem_name
      with Not_found ->
        Printf.eprintf "unknown KA %s\n" kem_name;
        exit 1
    in
    let sig_alg =
      try Pqc.Registry.find_sig sig_name
      with Not_found ->
        Printf.eprintf "unknown SA %s\n" sig_name;
        exit 1
    in
    let scenario = Core.Scenario.find scenario_name in
    let spec =
      Core.Experiment.spec ~seed ~scenario ?max_samples kem sig_alg
    in
    let buf = Trace.Buf.create ~label:(Core.Experiment.spec_label spec) () in
    let outcome = Core.Experiment.run_spec ~trace:buf spec in
    let contents =
      match format with
      | `Chrome -> Trace.Export.chrome [ buf ]
      | `Folded -> Trace.Export.folded [ buf ]
      | `Timeline -> Trace.Export.timeline [ buf ]
      | `Table ->
        Core.Whitebox.render_trace_checks
          ("Trace-derived CPU shares vs white-box ledger: "
          ^ Core.Experiment.spec_label spec)
          (Core.Whitebox.trace_checks outcome buf)
    in
    match out with
    | None -> print_string contents
    | Some path ->
      let oc = open_out path in
      output_string oc contents;
      close_out oc;
      Printf.eprintf "wrote %s (%d events)\n%!" path (Trace.Buf.length buf)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Trace one KA x SA cell in virtual time: handshake phases, \
          per-message spans, per-operation crypto costs, TCP transmit / \
          retransmit instants, cwnd counters and wire occupancy, \
          exported for Perfetto, flamegraphs, or plain text.")
    Term.(
      const run $ seed_arg $ kem_arg $ sig_arg $ scenario_arg $ format_arg
      $ out_arg $ max_samples_arg)

(* ---- algorithms ------------------------------------------------------------ *)

let algorithms_cmd =
  let run () =
    Printf.printf "Key agreements (%d):\n" (List.length Pqc.Registry.kems);
    List.iter
      (fun (k : Pqc.Kem.t) ->
        Printf.printf "  L%d %-18s pk %6d B  ct %6d B%s\n" k.level k.name
          k.public_key_bytes k.ciphertext_bytes
          (if k.hybrid then "  (hybrid)" else ""))
      Pqc.Registry.kems;
    Printf.printf "Signature algorithms (%d):\n" (List.length Pqc.Registry.sigs);
    List.iter
      (fun (s : Pqc.Sigalg.t) ->
        Printf.printf "  L%d %-18s pk %6d B  sig %6d B%s\n" s.level s.name
          s.public_key_bytes s.signature_bytes
          (if s.hybrid then "  (hybrid)" else ""))
      Pqc.Registry.sigs
  in
  Cmd.v
    (Cmd.info "algorithms" ~doc:"List every algorithm with its wire sizes.")
    Term.(const run $ const ())

let () =
  let info =
    Cmd.info "pqtls-bench"
      ~doc:"Reproduction harness for `The Performance of Post-Quantum TLS 1.3'"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; run_cmd; handshake_cmd; trace_cmd; algorithms_cmd ]))
