(* pqtls-lint — the determinism & constant-time analysis gate.

     pqtls-lint check                 # lib bin bench test, text report
     pqtls-lint check lib/crypto --rule C1
     pqtls-lint check --format json   # CI artifact
     pqtls-lint rules                 # the rule catalog

   Exit codes: 0 clean, 1 violations found, 2 parse/usage errors — so CI
   can distinguish "the code is wrong" from "the linter could not run". *)

open Cmdliner

let default_paths = [ "lib"; "bin"; "bench"; "test" ]

let paths_arg =
  let doc =
    "Files or directories to check (default: lib bin bench test)."
  in
  Arg.(value & pos_all string default_paths & info [] ~docv:"PATH" ~doc)

let format_arg =
  let doc = "Report format: $(b,text) or $(b,json)." in
  Arg.(value & opt string "text" & info [ "format" ] ~docv:"FMT" ~doc)

let rule_arg =
  let doc =
    "Run only rule $(docv) (repeatable). Default: the full catalog."
  in
  Arg.(value & opt_all string [] & info [ "r"; "rule" ] ~docv:"RULE" ~doc)

let allowlist_arg =
  let doc =
    "Checked-in allowlist file of audited exceptions (RULE PATH SYMBOL \
     REASON per line)."
  in
  Arg.(
    value & opt string "lint.allow" & info [ "allowlist" ] ~docv:"FILE" ~doc)

let check_cmd =
  let run paths format rule_names allowlist =
    match Lint.Report.format_of_string format with
    | None ->
      Printf.eprintf "pqtls-lint: unknown format %S (want text or json)\n"
        format;
      exit 2
    | Some fmt -> (
      match
        List.filter_map
          (fun name ->
            match Lint.Engine.find_rule name with
            | Some r -> Some (Ok r)
            | None -> Some (Error name))
          rule_names
      with
      | selected
        when List.exists (function Error _ -> true | Ok _ -> false) selected
        ->
        List.iter
          (function
            | Error name ->
              Printf.eprintf "pqtls-lint: unknown rule %S\n" name
            | Ok _ -> ())
          selected;
        exit 2
      | selected ->
        let rules =
          match
            List.filter_map
              (function Ok r -> Some r | Error _ -> None)
              selected
          with
          | [] -> Lint.Engine.rules
          | rs -> rs
        in
        let sources, parse_errors = Lint.Source.load_paths paths in
        let entries, allow_diags = Lint.Allow.load_file allowlist in
        let diags = allow_diags @ Lint.Engine.run ~entries ~rules sources in
        print_string
          (Lint.Report.render fmt
             ~files:(List.length sources)
             ~errors:parse_errors diags);
        if parse_errors <> [] then exit 2
        else if diags <> [] then exit 1
        else exit 0)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Parse every .ml/.mli under the given paths and run the \
          determinism / constant-time / state-discipline rules.")
    Term.(const run $ paths_arg $ format_arg $ rule_arg $ allowlist_arg)

let rules_cmd =
  let run () =
    List.iter
      (fun (r : Lint.Rule.t) ->
        Printf.printf "%-4s %s\n" r.Lint.Rule.name r.Lint.Rule.synopsis)
      Lint.Engine.rules
  in
  Cmd.v
    (Cmd.info "rules" ~doc:"List the rule catalog.")
    Term.(const run $ const ())

let () =
  let info =
    Cmd.info "pqtls-lint"
      ~doc:
        "AST-level determinism and constant-time analysis gate for the \
         pqtls tree"
  in
  exit (Cmd.eval (Cmd.group info ~default:Term.(ret (const (`Help (`Pager, None)))) [ check_cmd; rules_cmd ]))
