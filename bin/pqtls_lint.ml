(* pqtls-lint — the determinism & constant-time analysis gate.

     pqtls-lint check                 # lib bin bench test, text report
     pqtls-lint check lib/crypto --rule C1
     pqtls-lint check --format json   # CI artifact
     pqtls-lint check --format sarif  # GitHub code scanning
     pqtls-lint rules [--json]        # the rule catalog
     pqtls-lint graph [--dot]         # the computed call graph

   Exit codes: 0 clean, 1 violations found, 2 parse/usage errors — so CI
   can distinguish "the code is wrong" from "the linter could not run". *)

open Cmdliner

let default_paths = [ "lib"; "bin"; "bench"; "test" ]

let paths_arg =
  let doc =
    "Files or directories to check (default: lib bin bench test)."
  in
  Arg.(value & pos_all string default_paths & info [] ~docv:"PATH" ~doc)

let format_arg =
  let doc = "Report format: $(b,text), $(b,json) or $(b,sarif)." in
  Arg.(value & opt string "text" & info [ "format" ] ~docv:"FMT" ~doc)

let rule_arg =
  let doc =
    "Run only rule $(docv) (repeatable). Default: the full catalog."
  in
  Arg.(value & opt_all string [] & info [ "r"; "rule" ] ~docv:"RULE" ~doc)

let allowlist_arg =
  let doc =
    "Checked-in allowlist file of audited exceptions (RULE PATH SYMBOL \
     REASON per line)."
  in
  Arg.(
    value & opt string "lint.allow" & info [ "allowlist" ] ~docv:"FILE" ~doc)

let check_cmd =
  let run paths format rule_names allowlist =
    match Lint.Report.format_of_string format with
    | None ->
      Printf.eprintf
        "pqtls-lint: unknown format %S (want text, json or sarif)\n" format;
      exit 2
    | Some fmt -> (
      match
        List.filter_map
          (fun name ->
            match Lint.Engine.find_rule name with
            | Some r -> Some (Ok r)
            | None -> Some (Error name))
          rule_names
      with
      | selected
        when List.exists (function Error _ -> true | Ok _ -> false) selected
        ->
        List.iter
          (function
            | Error name ->
              Printf.eprintf "pqtls-lint: unknown rule %S\n" name
            | Ok _ -> ())
          selected;
        exit 2
      | selected ->
        let rules =
          match
            List.filter_map
              (function Ok r -> Some r | Error _ -> None)
              selected
          with
          | [] -> Lint.Engine.rules
          | rs -> rs
        in
        let sources, parse_errors = Lint.Source.load_paths paths in
        let entries, allow_diags = Lint.Allow.load_file allowlist in
        let diags = allow_diags @ Lint.Engine.run ~entries ~rules sources in
        print_string
          (Lint.Report.render fmt ~rules
             ~files:(List.length sources)
             ~errors:parse_errors diags);
        if parse_errors <> [] then exit 2
        else if diags <> [] then exit 1
        else exit 0)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Parse every .ml/.mli under the given paths and run the \
          determinism / constant-time / state-discipline rules.")
    Term.(const run $ paths_arg $ format_arg $ rule_arg $ allowlist_arg)

let rules_cmd =
  let json_arg =
    let doc = "Emit the catalog as JSON (name, severity, synopsis, doc)." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run json =
    if not json then
      List.iter
        (fun (r : Lint.Rule.t) ->
          Printf.printf "%-4s %s\n" r.Lint.Rule.name r.Lint.Rule.synopsis)
        Lint.Engine.rules
    else begin
      let buf = Buffer.create 1024 in
      let str s =
        Buffer.add_char buf '"';
        String.iter
          (fun c ->
            match c with
            | '"' -> Buffer.add_string buf "\\\""
            | '\\' -> Buffer.add_string buf "\\\\"
            | '\n' -> Buffer.add_string buf "\\n"
            | c -> Buffer.add_char buf c)
          s;
        Buffer.add_char buf '"'
      in
      Buffer.add_string buf "{\n  \"rules\": [";
      List.iteri
        (fun i (r : Lint.Rule.t) ->
          Buffer.add_string buf (if i = 0 then "\n" else ",\n");
          Buffer.add_string buf "    { \"name\": ";
          str r.Lint.Rule.name;
          Buffer.add_string buf ", \"severity\": ";
          str (Lint.Rule.severity_string r.Lint.Rule.severity);
          Buffer.add_string buf ",\n      \"synopsis\": ";
          str r.Lint.Rule.synopsis;
          Buffer.add_string buf ",\n      \"doc\": ";
          str r.Lint.Rule.doc;
          Buffer.add_string buf " }")
        Lint.Engine.rules;
      Buffer.add_string buf "\n  ]\n}\n";
      print_string (Buffer.contents buf)
    end
  in
  Cmd.v
    (Cmd.info "rules" ~doc:"List the rule catalog.")
    Term.(const run $ json_arg)

let graph_cmd =
  let dot_arg =
    let doc = "Emit Graphviz instead of caller -> callee lines." in
    Arg.(value & flag & info [ "dot" ] ~doc)
  in
  let run paths dot =
    let sources, parse_errors = Lint.Source.load_paths paths in
    List.iter
      (fun (path, msg) -> Printf.eprintf "%s: parse error\n%s\n" path msg)
      parse_errors;
    let cg = Lint.Callgraph.build (Lint.Symtab.build sources) in
    print_string
      (if dot then Lint.Callgraph.to_dot cg else Lint.Callgraph.to_text cg);
    if parse_errors <> [] then exit 2
  in
  Cmd.v
    (Cmd.info "graph"
       ~doc:
         "Dump the call graph the dataflow rules (C2, S2) compute, for \
          debugging the analysis.")
    Term.(const run $ paths_arg $ dot_arg)

let () =
  let info =
    Cmd.info "pqtls-lint"
      ~doc:
        "AST-level determinism and constant-time analysis gate for the \
         pqtls tree"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          ~default:Term.(ret (const (`Help (`Pager, None))))
          [ check_cmd; rules_cmd; graph_cmd ]))
