(* Quickstart: one post-quantum TLS 1.3 handshake, end to end, with the
   real cryptography (Kyber-768 key agreement, Dilithium-3 certificate),
   and the two phase latencies the paper measures (Figure 1).

     dune exec examples/quickstart.exe
*)

let () =
  print_endline "PQ TLS 1.3 quickstart: kyber768 x dilithium3, real crypto";
  print_endline "----------------------------------------------------------";

  (* 1. a simulated testbed: client and server hosts on a 10 Gbit/s
     fiber, with a passive tap playing the paper's timestamper *)
  let engine = Netsim.Engine.create () in
  let trace = Netsim.Tap.create () in
  let rng = Crypto.Drbg.create ~seed:"quickstart" in
  let link =
    Netsim.Link.create engine (Crypto.Drbg.fork rng "link") Netsim.Link.ideal
      ~tap:(fun time packet -> Netsim.Tap.tap trace time packet)
  in
  let client = Netsim.Host.create engine ~name:"client" in
  let server = Netsim.Host.create engine ~name:"server" in

  (* 2. pick the algorithms by their paper spelling; Config.make uses the
     real implementations (Config.mocked would use size-exact stand-ins) *)
  let kem = Pqc.Registry.find_kem "kyber768" in
  let sig_alg = Pqc.Registry.find_sig "dilithium3" in
  let config = Tls.Config.make kem sig_alg in
  Printf.printf "key shares: client sends %d B, server answers %d B\n"
    kem.Pqc.Kem.public_key_bytes kem.Pqc.Kem.ciphertext_bytes;
  Printf.printf "certificate key %d B, signatures %d B\n\n"
    sig_alg.Pqc.Sigalg.public_key_bytes sig_alg.Pqc.Sigalg.signature_bytes;

  (* 3. run the handshake *)
  let result = ref None in
  Tls.Handshake.run ~engine ~link ~tcp_config:Netsim.Tcp.default_config
    ~client_host:client ~server_host:server ~config ~rng
    ~on_done:(fun r -> result := Some r) ();
  Netsim.Engine.run engine;

  (* 4. read the tap like the paper's black-box analysis does *)
  let r = Option.get !result in
  let at label =
    (Option.get (Netsim.Tap.find_mark trace label)).Netsim.Tap.time
  in
  Printf.printf "packets on the wire:\n";
  List.iter
    (fun e ->
      let p = e.Netsim.Tap.packet in
      if Netsim.Packet.payload_len p > 0 || p.Netsim.Packet.flags.Netsim.Packet.syn
      then
        Printf.printf "  %8.3f ms  %s\n" (e.Netsim.Tap.time *. 1000.)
          (Netsim.Packet.describe p))
    (Netsim.Tap.entries trace);
  Printf.printf "\nphase 1 (CH -> SH):          %6.3f ms\n"
    ((at "SH" -. at "CH") *. 1000.);
  Printf.printf "phase 2 (SH -> Client Fin):  %6.3f ms\n"
    ((at "FIN_C" -. at "SH") *. 1000.);
  Printf.printf "client sent %d B, server sent %d B\n"
    (Netsim.Tcp.bytes_sent r.Tls.Handshake.client_tcp)
    (Netsim.Tcp.bytes_sent r.Tls.Handshake.server_tcp);
  Printf.printf "client CPU %.2f ms, server CPU %.2f ms (virtual)\n"
    (Netsim.Host.total_cpu_ms client)
    (Netsim.Host.total_cpu_ms server)
