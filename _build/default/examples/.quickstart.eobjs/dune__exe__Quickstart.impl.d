examples/quickstart.ml: Crypto List Netsim Option Pqc Printf Tls
