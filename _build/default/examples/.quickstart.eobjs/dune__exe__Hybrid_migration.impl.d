examples/hybrid_migration.ml: Core Experiment List Pqc Printf String
