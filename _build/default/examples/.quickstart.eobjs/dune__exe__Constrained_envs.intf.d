examples/constrained_envs.mli:
