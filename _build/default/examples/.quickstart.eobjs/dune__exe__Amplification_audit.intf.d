examples/amplification_audit.mli:
