examples/amplification_audit.ml: Amplification Core List Printf String
