examples/constrained_envs.ml: Core Experiment List Pqc Printf Scenario String
