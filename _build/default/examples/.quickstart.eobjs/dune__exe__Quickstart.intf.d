examples/quickstart.mli:
