examples/hybrid_migration.mli:
