(* A migration audit: what does it cost to move a TLS deployment from
   classical crypto to hybrid, and then to pure PQ, at each NIST level?
   This reproduces the discussion-section recommendation ("shift toward
   hybrids: no significant performance drawback") with numbers.

     dune exec examples/hybrid_migration.exe
*)

open Core

type stage = { label : string; ka : string; sa : string }

let plans =
  [ ( 1,
      [ { label = "classical"; ka = "x25519"; sa = "rsa:2048" };
        { label = "hybrid"; ka = "p256_kyber512"; sa = "p256_dilithium2" };
        { label = "pure PQ"; ka = "kyber512"; sa = "dilithium2" } ] );
    ( 3,
      [ { label = "classical"; ka = "p384"; sa = "rsa:3072" };
        { label = "hybrid"; ka = "p384_kyber768"; sa = "p384_dilithium3" };
        { label = "pure PQ"; ka = "kyber768"; sa = "dilithium3" } ] );
    ( 5,
      [ { label = "classical"; ka = "p521"; sa = "rsa:4096" };
        { label = "hybrid"; ka = "p521_kyber1024"; sa = "p521_dilithium5" };
        { label = "pure PQ"; ka = "kyber1024"; sa = "dilithium5" } ] ) ]

let () =
  print_endline "Classical -> hybrid -> pure-PQ migration, per NIST level";
  Printf.printf "%-5s %-10s %-30s %10s %10s %10s\n" "level" "stage"
    "KA x SA" "total ms" "hs/60s" "bytes";
  print_endline (String.make 82 '-');
  List.iter
    (fun (level, stages) ->
      List.iter
        (fun st ->
          let o =
            Experiment.run ~seed:"migration"
              (Pqc.Registry.find_kem st.ka)
              (Pqc.Registry.find_sig st.sa)
          in
          let total =
            Experiment.median_of (fun s -> s.Experiment.total_ms) o
          in
          let bytes =
            Experiment.median_bytes (fun s -> s.Experiment.client_bytes) o
            + Experiment.median_bytes (fun s -> s.Experiment.server_bytes) o
          in
          Printf.printf "%-5d %-10s %-30s %10.2f %10d %10d\n" level st.label
            (st.ka ^ " x " ^ st.sa) total o.Experiment.handshakes_per_minute
            bytes)
        stages;
      print_newline ())
    plans;
  print_endline
    "Reading: on level 1 the hybrid column costs almost nothing over\n\
     classical; on levels 3-5 pure PQ is the fastest option because the\n\
     classical component (generic P-384/P-521, big RSA) is the bottleneck --\n\
     the paper's conclusion, regenerated."
