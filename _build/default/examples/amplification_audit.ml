(* Attack-surface audit (section 5.5): how much can a spoofed-source
   attacker amplify traffic through a PQ TLS server, and how skewed is
   the CPU cost between client and server?

     dune exec examples/amplification_audit.exe
*)

open Core

let () =
  print_endline "PQ TLS amplification / CPU-asymmetry audit (section 5.5)";
  print_endline
    "(QUIC mandates an anti-amplification limit of 3x for comparison)\n";
  let rows = Amplification.survey ~seed:"audit" () in
  Printf.printf "%-16s %-20s %10s %14s\n" "KA" "SA" "CPU s/c" "amplification";
  print_endline (String.make 64 '-');
  List.iter
    (fun (r : Amplification.row) ->
      Printf.printf "%-16s %-20s %9.2fx %13.1fx %s\n" r.Amplification.kem
        r.Amplification.sa r.Amplification.cpu_ratio r.Amplification.amplification
        (if r.Amplification.amplification > Amplification.quic_limit then "!"
         else ""))
    rows;
  let worst = Amplification.worst_amplification rows in
  let skew = Amplification.worst_cpu_ratio rows in
  Printf.printf
    "\nworst amplifier: %s x %s at %.0fx -- a single spoofed ClientHello\n\
     elicits that many response bytes. The main lever is the signature\n\
     algorithm (certificate + CertificateVerify sizes).\n"
    worst.Amplification.kem worst.Amplification.sa
    worst.Amplification.amplification;
  Printf.printf
    "worst CPU skew: %s x %s at %.1fx server/client -- attractive for\n\
     algorithmic-complexity flooding.\n"
    skew.Amplification.kem skew.Amplification.sa skew.Amplification.cpu_ratio
