(* Choosing a PQ algorithm for constrained links (the section-5.4 story):
   the same candidate set is measured over LTE-M (15 km, lossy, 1 Mbit/s)
   and a 5G link, plus the 1 s-RTT case that exposes the initial-CWND
   ceiling.

     dune exec examples/constrained_envs.exe
*)

open Core

let candidates =
  (* (KA, SA) deployment candidates a practitioner might shortlist *)
  [ ("x25519", "rsa:2048") (* today's baseline *);
    ("kyber512", "falcon512") (* small PQ *);
    ("kyber768", "dilithium3") (* mainstream PQ *);
    ("p256_kyber512", "p256_dilithium2") (* hybrid *);
    ("hqc128", "dilithium2") (* big KEM keys *);
    ("kyber512", "sphincs128") (* hash-based signatures *) ]

let scenarios = [ Scenario.lte_m; Scenario.five_g; Scenario.high_delay ]

let () =
  print_endline "Algorithm choice on constrained links (medians of 60 s runs)";
  Printf.printf "%-16s %-16s %12s %12s %12s %9s\n" "KA" "SA" "LTE-M ms"
    "5G ms" "1s-RTT ms" "bytes";
  print_endline (String.make 82 '-');
  let rows =
    List.map
      (fun (k, s) ->
        let kem = Pqc.Registry.find_kem k and sa = Pqc.Registry.find_sig s in
        let med sc =
          Experiment.median_of
            (fun smp -> smp.Experiment.total_ms)
            (Experiment.run ~seed:"constrained" ~scenario:sc kem sa)
        in
        let bytes =
          let o = Experiment.run ~seed:"constrained" kem sa in
          Experiment.median_bytes (fun smp -> smp.Experiment.server_bytes) o
          + Experiment.median_bytes (fun smp -> smp.Experiment.client_bytes) o
        in
        ((k, s), List.map med scenarios, bytes))
      candidates
  in
  List.iter
    (fun ((k, s), meds, bytes) ->
      match meds with
      | [ lte; fiveg; delay ] ->
        Printf.printf "%-16s %-16s %12.1f %12.1f %12.1f %9d\n" k s lte fiveg
          delay bytes
      | _ -> assert false)
    rows;
  (* the section-5.4 takeaway, computed rather than asserted *)
  let lte_of (_, meds, _) = List.hd meds in
  let best_lte =
    List.fold_left
      (fun best row -> if lte_of row < lte_of best then row else best)
      (List.hd rows) (List.tl rows)
  in
  let (bk, bs), _, _ = best_lte in
  Printf.printf
    "\nfastest on LTE-M: %s x %s -- small keys beat raw CPU speed once the\n\
     link is slow; handshakes whose flights exceed the initial congestion\n\
     window (10 segments) pay whole extra round trips in the 1 s-RTT column.\n"
    bk bs
