(* SPHINCS+ / SLH-DSA: exact NIST artifact sizes for all six profiles,
   sign/verify round trips, and corruption behaviour. The s-profiles'
   signing costs minutes of host time, so only their dimensions and
   verification plumbing are exercised here. *)

open Pqc

let expected =
  (* name, pk, sk, sig -- NIST submission values *)
  Slh.
    [ (sphincs128f, 32, 64, 17088); (sphincs192f, 48, 96, 35664);
      (sphincs256f, 64, 128, 49856); (sphincs128s, 32, 64, 7856);
      (sphincs192s, 48, 96, 16224); (sphincs256s, 64, 128, 29792) ]

let test_sizes () =
  List.iter
    (fun (p, pk, sk, sg) ->
      Alcotest.(check int) (Slh.name p ^ " pk") pk (Slh.public_key_bytes p);
      Alcotest.(check int) (Slh.name p ^ " sk") sk (Slh.secret_key_bytes p);
      Alcotest.(check int) (Slh.name p ^ " sig") sg (Slh.signature_bytes p))
    expected

let roundtrip p =
  let rng = Crypto.Drbg.create ~seed:("slh-" ^ Slh.name p) in
  let pk, sk = Slh.keygen p rng in
  Alcotest.(check int) "pk len" (Slh.public_key_bytes p) (String.length pk);
  Alcotest.(check int) "sk len" (Slh.secret_key_bytes p) (String.length sk);
  let msg = "the hypertree certifies the fors key" in
  let s = Slh.sign p sk msg in
  Alcotest.(check int) "sig len" (Slh.signature_bytes p) (String.length s);
  Alcotest.(check bool) "verifies" true (Slh.verify p pk ~msg s);
  Alcotest.(check bool) "other msg rejected" false (Slh.verify p pk ~msg:"x" s);
  (* deterministic signing *)
  Alcotest.(check string) "deterministic" (Crypto.Bytesx.to_hex s)
    (Crypto.Bytesx.to_hex (Slh.sign p sk msg));
  (* corrupt each signature region: randomizer, FORS, hypertree *)
  List.iter
    (fun pos ->
      let bad = Bytes.of_string s in
      Bytes.set bad pos (Char.chr (Char.code (Bytes.get bad pos) lxor 0x20));
      Alcotest.(check bool)
        (Printf.sprintf "corruption at %d rejected" pos)
        false
        (Slh.verify p pk ~msg (Bytes.to_string bad)))
    [ 0; Slh.public_key_bytes p * 10; String.length s - 1 ];
  (* wrong public key *)
  let pk2, _ = Slh.keygen p rng in
  Alcotest.(check bool) "wrong pk rejected" false (Slh.verify p pk2 ~msg s);
  (* truncated / oversized input never crash *)
  Alcotest.(check bool) "truncated" false
    (Slh.verify p pk ~msg (String.sub s 0 (String.length s / 2)));
  Alcotest.(check bool) "short pk" false (Slh.verify p (String.sub pk 0 8) ~msg s)

let test_roundtrip_128f () = roundtrip Slh.sphincs128f
let test_roundtrip_192f () = roundtrip Slh.sphincs192f

let test_registry_integration () =
  (* the table names keep the paper spelling but run the real SLH code *)
  let sa = Registry.find_sig "sphincs128" in
  Alcotest.(check int) "sig bytes" 17088 sa.Sigalg.signature_bytes;
  Alcotest.(check bool) "not mocked" false sa.Sigalg.mocked;
  Alcotest.(check int) "six variants" 6 (List.length Registry.sphincs_variants);
  List.iter
    (fun (v : Sigalg.t) ->
      Alcotest.(check bool) (v.Sigalg.name ^ " has costs") true
        ((Pqc.Costs.sig_ v.Sigalg.name).Pqc.Costs.sign.Pqc.Costs.ms > 0.))
    Registry.sphincs_variants

let suites =
  [ ( "slh",
      [ Alcotest.test_case "exact NIST sizes (all six)" `Quick test_sizes;
        Alcotest.test_case "128f sign/verify/corruption" `Slow test_roundtrip_128f;
        Alcotest.test_case "192f sign/verify/corruption" `Slow test_roundtrip_192f;
        Alcotest.test_case "registry integration" `Quick test_registry_integration ] ) ]
