(* ML-KEM / Kyber: spec sizes, round trips, implicit rejection,
   determinism, and fuzzed ciphertext corruption. *)

open Pqc

let all_params =
  Kyber.[ kyber512; kyber768; kyber1024; kyber512_90s; kyber768_90s; kyber1024_90s ]

let expected_sizes =
  (* name, pk, sk, ct -- the NIST round-3 submission values *)
  [ ("kyber512", 800, 1632, 768); ("kyber768", 1184, 2400, 1088);
    ("kyber1024", 1568, 3168, 1568); ("kyber90s512", 800, 1632, 768);
    ("kyber90s768", 1184, 2400, 1088); ("kyber90s1024", 1568, 3168, 1568) ]

let test_sizes () =
  List.iter
    (fun p ->
      let name = Kyber.name p in
      let _, pk, sk, ct =
        List.find (fun (n, _, _, _) -> n = name)
          (List.map (fun (n, a, b, c) -> (n, a, b, c)) expected_sizes)
      in
      Alcotest.(check int) (name ^ " pk") pk (Kyber.public_key_bytes p);
      Alcotest.(check int) (name ^ " sk") sk (Kyber.secret_key_bytes p);
      Alcotest.(check int) (name ^ " ct") ct (Kyber.ciphertext_bytes p))
    all_params

let test_roundtrip () =
  let rng = Crypto.Drbg.create ~seed:"kyber-rt" in
  List.iter
    (fun p ->
      let name = Kyber.name p in
      let pk, sk = Kyber.keygen p rng in
      Alcotest.(check int) (name ^ " pk len") (Kyber.public_key_bytes p) (String.length pk);
      Alcotest.(check int) (name ^ " sk len") (Kyber.secret_key_bytes p) (String.length sk);
      for _ = 1 to 3 do
        let ct, ss = Kyber.encaps p rng pk in
        Alcotest.(check int) (name ^ " ct len") (Kyber.ciphertext_bytes p) (String.length ct);
        Alcotest.(check int) (name ^ " ss len") 32 (String.length ss);
        Alcotest.(check string) (name ^ " agreement")
          (Crypto.Bytesx.to_hex ss)
          (Crypto.Bytesx.to_hex (Kyber.decaps p sk ct))
      done)
    all_params

let test_implicit_rejection () =
  let rng = Crypto.Drbg.create ~seed:"kyber-rej" in
  List.iter
    (fun p ->
      let name = Kyber.name p in
      let pk, sk = Kyber.keygen p rng in
      let ct, ss = Kyber.encaps p rng pk in
      let bad = Bytes.of_string ct in
      Bytes.set bad 17 (Char.chr (Char.code (Bytes.get bad 17) lxor 0x40));
      let rejected = Kyber.decaps p sk (Bytes.to_string bad) in
      Alcotest.(check bool) (name ^ " rejects corrupt ct") true (rejected <> ss);
      Alcotest.(check int) (name ^ " rejection is a secret") 32 (String.length rejected);
      (* implicit rejection is deterministic *)
      Alcotest.(check string) (name ^ " rejection deterministic")
        (Crypto.Bytesx.to_hex rejected)
        (Crypto.Bytesx.to_hex (Kyber.decaps p sk (Bytes.to_string bad))))
    all_params

let test_determinism () =
  (* same DRBG seed -> identical keys and ciphertexts *)
  let run () =
    let rng = Crypto.Drbg.create ~seed:"kyber-det" in
    let pk, sk = Kyber.keygen Kyber.kyber768 rng in
    let ct, ss = Kyber.encaps Kyber.kyber768 rng pk in
    (pk, sk, ct, ss)
  in
  Alcotest.(check bool) "deterministic" true (run () = run ())

let test_cross_params () =
  (* keys from one parameter set must not decapsulate another's sizes *)
  let rng = Crypto.Drbg.create ~seed:"kyber-cross" in
  let pk512, _ = Kyber.keygen Kyber.kyber512 rng in
  Alcotest.(check_raises) "encaps size check"
    (Invalid_argument "Kyber.encaps: bad pk") (fun () ->
      ignore (Kyber.encaps Kyber.kyber768 rng pk512))

let qc name gen prop = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count:25 gen prop)

let prop_tests =
  [ qc "random single-byte corruption never leaks the secret"
      QCheck.(pair small_int small_int)
      (fun (pos_seed, delta) ->
        let p = Kyber.kyber512 in
        let rng = Crypto.Drbg.create ~seed:(Printf.sprintf "kc%d" pos_seed) in
        let pk, sk = Kyber.keygen p rng in
        let ct, ss = Kyber.encaps p rng pk in
        let pos = pos_seed mod String.length ct in
        let delta = 1 + (delta mod 255) in
        let bad = Bytes.of_string ct in
        Bytes.set bad pos (Char.chr (Char.code (Bytes.get bad pos) lxor delta));
        Kyber.decaps p sk (Bytes.to_string bad) <> ss) ]

let suites =
  [ ( "kyber",
      [ Alcotest.test_case "spec sizes" `Quick test_sizes;
        Alcotest.test_case "roundtrip all parameter sets" `Quick test_roundtrip;
        Alcotest.test_case "implicit rejection" `Quick test_implicit_rejection;
        Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "parameter confusion" `Quick test_cross_params ]
      @ prop_tests ) ]
