(* ML-DSA / Dilithium: spec sizes, sign/verify, negatives, hint encoding
   edge cases, and fuzzed corruption of signatures, keys and messages. *)

open Pqc

let all_params =
  Dilithium.
    [ dilithium2; dilithium3; dilithium5; dilithium2_aes; dilithium3_aes;
      dilithium5_aes ]

let expected_sizes =
  [ ("dilithium2", 1312, 2528, 2420); ("dilithium3", 1952, 4000, 3293);
    ("dilithium5", 2592, 4864, 4595); ("dilithium2_aes", 1312, 2528, 2420);
    ("dilithium3_aes", 1952, 4000, 3293); ("dilithium5_aes", 2592, 4864, 4595) ]

let test_sizes () =
  List.iter
    (fun p ->
      let name = Dilithium.name p in
      let _, pk, sk, sg = List.find (fun (n, _, _, _) -> n = name) expected_sizes in
      Alcotest.(check int) (name ^ " pk") pk (Dilithium.public_key_bytes p);
      Alcotest.(check int) (name ^ " sk") sk (Dilithium.secret_key_bytes p);
      Alcotest.(check int) (name ^ " sig") sg (Dilithium.signature_bytes p))
    all_params

let test_sign_verify () =
  let rng = Crypto.Drbg.create ~seed:"dil-sv" in
  List.iter
    (fun p ->
      let name = Dilithium.name p in
      let pk, sk = Dilithium.keygen p rng in
      List.iter
        (fun msg ->
          let s = Dilithium.sign p sk msg in
          Alcotest.(check int) (name ^ " sig len") (Dilithium.signature_bytes p)
            (String.length s);
          Alcotest.(check bool) (name ^ " verifies") true
            (Dilithium.verify p pk ~msg s);
          Alcotest.(check bool) (name ^ " rejects other msg") false
            (Dilithium.verify p pk ~msg:(msg ^ "!") s))
        [ ""; "m"; String.make 10000 'x' ])
    all_params

let test_deterministic_signing () =
  let rng = Crypto.Drbg.create ~seed:"dil-det" in
  let p = Dilithium.dilithium2 in
  let _, sk = Dilithium.keygen p rng in
  Alcotest.(check string) "deterministic signature"
    (Crypto.Bytesx.to_hex (Dilithium.sign p sk "msg"))
    (Crypto.Bytesx.to_hex (Dilithium.sign p sk "msg"))

let test_wrong_key () =
  let rng = Crypto.Drbg.create ~seed:"dil-wrong" in
  let p = Dilithium.dilithium3 in
  let pk1, sk1 = Dilithium.keygen p rng in
  let pk2, _ = Dilithium.keygen p rng in
  ignore pk1;
  let s = Dilithium.sign p sk1 "msg" in
  Alcotest.(check bool) "other key rejects" false (Dilithium.verify p pk2 ~msg:"msg" s)

let test_malformed_inputs () =
  let rng = Crypto.Drbg.create ~seed:"dil-mal" in
  let p = Dilithium.dilithium2 in
  let pk, sk = Dilithium.keygen p rng in
  let s = Dilithium.sign p sk "msg" in
  Alcotest.(check bool) "short signature" false
    (Dilithium.verify p pk ~msg:"msg" (String.sub s 0 100));
  Alcotest.(check bool) "short pk" false
    (Dilithium.verify p (String.sub pk 0 64) ~msg:"msg" s);
  (* hint-region corruption must be rejected by the unpacker or verify *)
  let hint_off = Dilithium.signature_bytes p - 4 in
  let bad = Bytes.of_string s in
  Bytes.set bad hint_off '\xff';
  Alcotest.(check bool) "corrupt hint counts" false
    (Dilithium.verify p pk ~msg:"msg" (Bytes.to_string bad))

let qc name gen prop = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count:15 gen prop)

let prop_tests =
  [ qc "any single-byte signature corruption is rejected"
      QCheck.(pair small_int small_int)
      (fun (pos_seed, delta) ->
        let p = Dilithium.dilithium2 in
        let rng = Crypto.Drbg.create ~seed:"dil-fuzz" in
        let pk, sk = Dilithium.keygen p rng in
        let s = Dilithium.sign p sk "fuzz" in
        let pos = pos_seed mod String.length s in
        let delta = 1 + (delta mod 255) in
        let bad = Bytes.of_string s in
        Bytes.set bad pos (Char.chr (Char.code (Bytes.get bad pos) lxor delta));
        not (Dilithium.verify p pk ~msg:"fuzz" (Bytes.to_string bad)));
    qc "signatures verify for random messages" QCheck.small_string (fun m ->
        let p = Dilithium.dilithium2 in
        let rng = Crypto.Drbg.create ~seed:"dil-rand" in
        let pk, sk = Dilithium.keygen p rng in
        Dilithium.verify p pk ~msg:m (Dilithium.sign p sk m)) ]

let suites =
  [ ( "dilithium",
      [ Alcotest.test_case "spec sizes" `Quick test_sizes;
        Alcotest.test_case "sign/verify all parameter sets" `Slow test_sign_verify;
        Alcotest.test_case "deterministic signing" `Quick test_deterministic_signing;
        Alcotest.test_case "wrong key" `Quick test_wrong_key;
        Alcotest.test_case "malformed inputs" `Quick test_malformed_inputs ]
      @ prop_tests ) ]
