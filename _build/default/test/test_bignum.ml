(* The from-scratch bignum: known answers plus algebraic property tests,
   cross-checked against native int arithmetic on small values. *)

open Crypto
module B = Bignum

let b = Alcotest.testable (Fmt.of_to_string B.to_hex) B.equal

let test_basics () =
  Alcotest.check b "of_int/to_int" (B.of_int 123456789) (B.of_hex "75bcd15");
  Alcotest.(check int) "to_int" 123456789 (B.to_int (B.of_int 123456789));
  Alcotest.(check int) "bit_length" 27 (B.bit_length (B.of_int 123456789));
  Alcotest.(check bool) "testbit" true (B.testbit (B.of_int 8) 3);
  Alcotest.(check bool) "is_even" true (B.is_even (B.of_int 42));
  Alcotest.check b "bytes roundtrip"
    (B.of_hex "0102030405060708090a0b0c0d0e0f")
    (B.of_bytes_be (B.to_bytes_be (B.of_hex "0102030405060708090a0b0c0d0e0f")));
  Alcotest.(check string) "padded encoding"
    "0000002a"
    (Bytesx.to_hex (B.to_bytes_be ~len:4 (B.of_int 42)))

let test_division () =
  (* long division against known quotients, crossing limb boundaries *)
  let a = B.of_hex "123456789abcdef0fedcba9876543210deadbeefcafebabe" in
  let d = B.of_hex "fedcba987654321" in
  let q, r = B.divmod a d in
  Alcotest.check b "q*d + r = a" a (B.add (B.mul q d) r);
  Alcotest.(check bool) "r < d" true (B.compare r d < 0);
  (* single-limb divisor *)
  let q2, r2 = B.divmod a (B.of_int 12345) in
  Alcotest.check b "short division" a (B.add (B.mul q2 (B.of_int 12345)) r2);
  (* divide by self / by larger *)
  Alcotest.check b "a/a" B.one (fst (B.divmod a a));
  Alcotest.check b "a mod bigger" a (snd (B.divmod a (B.add a B.one)));
  Alcotest.(check_raises) "div by zero" Division_by_zero (fun () ->
      ignore (B.divmod a B.zero))

let test_modular () =
  let m = B.of_hex "ffffffffffffffffffffffffffffff61" in
  let x = B.of_hex "123456789abcdef" in
  let inv = B.mod_inv x ~m in
  Alcotest.check b "x * x^-1 = 1" B.one (B.mod_mul x inv ~m);
  Alcotest.check b "fermat" B.one (B.mod_pow x (B.sub m B.one) ~m);
  Alcotest.check b "mod_pow small" (B.of_int 24) (B.mod_pow B.two (B.of_int 10) ~m:(B.of_int 1000));
  Alcotest.check b "mod_sub wraps" (B.sub m B.one) (B.mod_sub B.zero B.one ~m);
  Alcotest.(check_raises) "non-invertible" Not_found (fun () ->
      ignore (B.mod_inv (B.of_int 6) ~m:(B.of_int 9)))

let test_primality () =
  let rng = Drbg.create ~seed:"primes" in
  let prime p = Alcotest.(check bool) (string_of_int p) true (B.is_probable_prime rng (B.of_int p)) in
  let composite p = Alcotest.(check bool) (string_of_int p) false (B.is_probable_prime rng (B.of_int p)) in
  List.iter prime [ 2; 3; 5; 7; 97; 251; 65537; 104729 ];
  List.iter composite [ 0; 1; 4; 100; 65536; 561 (* Carmichael *); 104730 ];
  let p = B.gen_prime rng ~bits:96 in
  Alcotest.(check int) "generated prime width" 96 (B.bit_length p);
  Alcotest.(check bool) "generated prime is prime" true (B.is_probable_prime rng p)

let small = QCheck.int_range 0 ((1 lsl 30) - 1)

let qc name gen prop = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count:300 gen prop)

let prop_tests =
  [ qc "add agrees with int" QCheck.(pair small small) (fun (x, y) ->
        B.to_int (B.add (B.of_int x) (B.of_int y)) = x + y);
    qc "mul agrees with int" QCheck.(pair small small) (fun (x, y) ->
        B.to_int (B.mul (B.of_int x) (B.of_int y)) = x * y);
    qc "sub agrees with int" QCheck.(pair small small) (fun (x, y) ->
        let hi = max x y and lo = min x y in
        B.to_int (B.sub (B.of_int hi) (B.of_int lo)) = hi - lo);
    qc "divmod agrees with int" QCheck.(pair small (int_range 1 1000000))
      (fun (x, y) ->
        let q, r = B.divmod (B.of_int x) (B.of_int y) in
        B.to_int q = x / y && B.to_int r = x mod y);
    qc "shift roundtrip" QCheck.(pair small (int_range 0 200)) (fun (x, s) ->
        B.equal (B.of_int x) (B.shift_right (B.shift_left (B.of_int x) s) s));
    qc "compare total order" QCheck.(pair small small) (fun (x, y) ->
        B.compare (B.of_int x) (B.of_int y) = compare x y);
    qc "divmod identity on wide operands"
      QCheck.(pair (string_of_size (QCheck.Gen.int_range 1 40))
                (string_of_size (QCheck.Gen.int_range 1 20)))
      (fun (sa, sb) ->
        let a = B.of_bytes_be sa and d = B.of_bytes_be sb in
        B.is_zero d
        ||
        let q, r = B.divmod a d in
        B.equal a (B.add (B.mul q d) r) && B.compare r d < 0);
    qc "modpow multiplicative"
      QCheck.(triple small small (int_range 3 100000))
      (fun (x, y, m) ->
        let m = B.of_int m in
        let lhs = B.mod_mul (B.mod_pow (B.of_int x) (B.of_int 5) ~m)
                    (B.mod_pow (B.of_int y) (B.of_int 5) ~m) ~m in
        let rhs = B.mod_pow (B.mod_mul (B.of_int x) (B.of_int y) ~m) (B.of_int 5) ~m in
        B.equal lhs rhs) ]

let suites =
  [ ( "bignum",
      [ Alcotest.test_case "basics" `Quick test_basics;
        Alcotest.test_case "division" `Quick test_division;
        Alcotest.test_case "modular" `Quick test_modular;
        Alcotest.test_case "primality" `Quick test_primality ]
      @ prop_tests ) ]
