(* Symmetric primitives against published vectors, plus property tests. *)

open Crypto

let hex = Bytesx.of_hex
let check_hex name want got = Alcotest.(check string) name want (Bytesx.to_hex got)
let msg = "The Performance of Post-Quantum TLS 1.3"

(* ---- hashes -------------------------------------------------------------- *)

let test_sha2 () =
  check_hex "sha256 empty"
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Sha256.digest "");
  check_hex "sha256 abc"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Sha256.digest "abc");
  check_hex "sha256 msg"
    "5c961f4161b7f0cc3eb77f4fab0fb3d164e48028a3f02fba4009e16e16974cf2"
    (Sha256.digest msg);
  check_hex "sha224 abc"
    "23097d223405d8228642a477bda255b32aadbce4bda0b3f7e36c9da7"
    (Sha256.digest_224 "abc");
  check_hex "sha384 msg"
    "09ba5b8a487a9699bff70b5314cdcae6be592fbaf780b5f132ea31b90553b81b\
     aec723fe163e7e9215921b4ce4c055f1"
    (Sha512.digest_384 msg);
  check_hex "sha512 abc"
    "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a\
     2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f"
    (Sha512.digest "abc")

let test_sha2_streaming () =
  (* feeding in odd-size chunks must equal the one-shot digest *)
  let data = String.init 100_000 (fun i -> Char.chr (i mod 251)) in
  let ctx = Sha256.init () in
  let pos = ref 0 and step = ref 1 in
  while !pos < String.length data do
    let take = min !step (String.length data - !pos) in
    Sha256.feed_sub ctx data !pos take;
    pos := !pos + take;
    step := (!step * 7 mod 1024) + 1
  done;
  check_hex "streamed = one-shot" (Bytesx.to_hex (Sha256.digest data)) (Sha256.get ctx);
  (* get must not disturb the running context *)
  let c2 = Sha256.init () in
  Sha256.feed c2 "ab";
  let _ = Sha256.get c2 in
  Sha256.feed c2 "c";
  check_hex "get is non-destructive"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Sha256.get c2)

let test_sha3 () =
  check_hex "sha3-256 empty"
    "a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a"
    (Keccak.sha3_256 "");
  check_hex "sha3-256 msg"
    "c853950425f6bb6128ef36c5e52c194cea6e2aa2f46b0c37b20ce32fac270a67"
    (Keccak.sha3_256 msg);
  check_hex "sha3-512 abc"
    "b751850b1a57168a5693cd924b6b096e08f621827444f70d884f5d0240d2712e\
     10e116e9192af3c91a7ec57647e3934057340b4cf408d5a56592f8274eec53f0"
    (Keccak.sha3_512 "abc");
  check_hex "shake128 msg"
    "de805bd4a86e597fd39324bc92d86a68f5113f0c2a6ca5f7bd3cc991b50a7b12"
    (Keccak.shake128 msg 32);
  check_hex "shake256 empty (first 32)"
    "46b9dd2b0ba88d13233b3feb743eeb243fcd52ea62b81b82b50c27646ed5762f"
    (Keccak.shake256 "" 32)

let test_shake_incremental () =
  (* squeezing in pieces must equal a single squeeze *)
  let one_shot = Keccak.shake256 msg 700 in
  let x = Keccak.Xof.shake256 msg in
  let parts =
    List.map (Keccak.Xof.squeeze x) [ 1; 2; 61; 136; 300; 200 ]
  in
  Alcotest.(check string) "incremental squeeze" one_shot (String.concat "" parts)

(* ---- MAC / KDF ------------------------------------------------------------ *)

let test_hmac () =
  (* RFC 4231 test case 2 *)
  check_hex "hmac-sha256 rfc4231#2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Hmac.hmac Hmac.sha256 ~key:"Jefe" "what do ya want for nothing?");
  check_hex "hmac-sha512 rfc4231#2"
    "164b7a7bfcf819e2e395fbe73b56e0a387bd64222e831fd610270cd7ea250554\
     9758bf75c05a994a6d034f65f8f0e6fdcaeab1a34d4a6b4b636e070a38bce737"
    (Hmac.hmac Hmac.sha512 ~key:"Jefe" "what do ya want for nothing?");
  (* keys longer than the block size get hashed *)
  let long_key = String.make 200 'k' in
  Alcotest.(check string)
    "long key = hashed key"
    (Bytesx.to_hex (Hmac.hmac Hmac.sha256 ~key:(Sha256.digest long_key) msg))
    (Bytesx.to_hex (Hmac.hmac Hmac.sha256 ~key:long_key msg))

let test_hkdf () =
  (* RFC 5869 test case 1 *)
  let ikm = String.make 22 '\x0b' in
  let salt = hex "000102030405060708090a0b0c" in
  let info = hex "f0f1f2f3f4f5f6f7f8f9" in
  let prk = Hkdf.extract Hmac.sha256 ~salt ~ikm in
  check_hex "hkdf prk"
    "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5" prk;
  check_hex "hkdf okm"
    "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf\
     34007208d5b887185865"
    (Hkdf.expand Hmac.sha256 ~prk ~info 42)

(* ---- AES / GCM ------------------------------------------------------------ *)

let test_aes () =
  let enc key pt =
    Bytesx.to_hex (Aes.encrypt_block (Aes.expand_key (hex key)) (hex pt))
  in
  Alcotest.(check string) "aes-128 fips-197"
    "69c4e0d86a7b0430d8cdb78070b4c55a"
    (enc "000102030405060708090a0b0c0d0e0f" "00112233445566778899aabbccddeeff");
  Alcotest.(check string) "aes-192 fips-197"
    "dda97ca4864cdfe06eaf70a0ec0d7191"
    (enc "000102030405060708090a0b0c0d0e0f1011121314151617"
       "00112233445566778899aabbccddeeff");
  Alcotest.(check string) "aes-256 fips-197"
    "8ea2b7ca516745bfeafc49904b496089"
    (enc "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"
       "00112233445566778899aabbccddeeff")

let test_aes_ctr () =
  let key = Aes.expand_key (hex "000102030405060708090a0b0c0d0e0f") in
  let ks = Aes.ctr_keystream key ~nonce:(String.make 12 '\000') 100 in
  (* keystream must be deterministic and a prefix-extension *)
  let ks2 = Aes.ctr_keystream key ~nonce:(String.make 12 '\000') 40 in
  Alcotest.(check string) "ctr prefix" ks2 (String.sub ks 0 40);
  let pt = String.init 77 (fun i -> Char.chr (i * 3 mod 256)) in
  let ct = Aes.ctr_encrypt key ~nonce:(String.make 12 '\000') pt in
  Alcotest.(check string) "ctr roundtrip" pt
    (Aes.ctr_encrypt key ~nonce:(String.make 12 '\000') ct)

let test_gcm () =
  (* NIST GCM test case 1/2 and 4 *)
  let k0 = Aes_gcm.of_secret (String.make 16 '\000') in
  check_hex "gcm case 1" "58e2fccefa7e3061367f1d57a4e7455a"
    (Aes_gcm.seal k0 ~nonce:(String.make 12 '\000') ~ad:"" "");
  check_hex "gcm case 2"
    "0388dace60b6a392f328c2b971b2fe78ab6e47d42cec13bdf53a67b21257bddf"
    (Aes_gcm.seal k0 ~nonce:(String.make 12 '\000') ~ad:"" (String.make 16 '\000'));
  let k = Aes_gcm.of_secret (hex "feffe9928665731c6d6a8f9467308308") in
  let nonce = hex "cafebabefacedbaddecaf888" in
  let pt =
    hex
      "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
       1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39"
  in
  let ad = hex "feedfacedeadbeeffeedfacedeadbeefabaddad2" in
  check_hex "gcm case 4"
    "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
     21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e0915bc94fbc\
     3221a5db94fae95ae7121a47"
    (Aes_gcm.seal k ~nonce ~ad pt);
  (match Aes_gcm.open_ k ~nonce ~ad (Aes_gcm.seal k ~nonce ~ad pt) with
  | Some got -> Alcotest.(check string) "gcm roundtrip" (Bytesx.to_hex pt) (Bytesx.to_hex got)
  | None -> Alcotest.fail "gcm roundtrip failed");
  (* tampering must be caught *)
  let sealed = Bytes.of_string (Aes_gcm.seal k ~nonce ~ad pt) in
  Bytes.set sealed 5 (Char.chr (Char.code (Bytes.get sealed 5) lxor 1));
  Alcotest.(check bool) "gcm tamper" true
    (Aes_gcm.open_ k ~nonce ~ad (Bytes.to_string sealed) = None);
  Alcotest.(check bool) "gcm wrong ad" true
    (Aes_gcm.open_ k ~nonce ~ad:"other" (Aes_gcm.seal k ~nonce ~ad pt) = None)

(* ---- ChaCha20-Poly1305 ----------------------------------------------------- *)

let test_chacha20poly1305 () =
  (* RFC 8439 section 2.8.2 *)
  let key = String.init 32 (fun i -> Char.chr (0x80 + i)) in
  let nonce = hex "070000004041424344454647" in
  let ad = hex "50515253c0c1c2c3c4c5c6c7" in
  let pt =
    "Ladies and Gentlemen of the class of '99: If I could offer you only \
     one tip for the future, sunscreen would be it."
  in
  check_hex "rfc8439 aead"
    "d31a8d34648e60db7b86afbc53ef7ec2a4aded51296e08fea9e2b5a736ee62d6\
     3dbea45e8ca9671282fafb69da92728b1a71de0a9e060b2905d6a5b67ecd3b36\
     92ddbd7f2d778b8c9803aee328091b58fab324e4fad675945585808b4831d7bc\
     3ff4def08e4b7a9de576d26586cec64b61161ae10b594f09e26a7e902ecbd060\
     0691"
    (Chacha20poly1305.seal ~key ~nonce ~ad pt);
  (* RFC 8439 2.5.2 poly1305 *)
  check_hex "poly1305 rfc"
    "a8061dc1305136c6c22b8baf0c0127a9"
    (Poly1305.mac
       ~key:(hex "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b")
       "Cryptographic Forum Research Group")

(* ---- DRBG ------------------------------------------------------------------ *)

let test_drbg () =
  let a = Drbg.create ~seed:"s" and b = Drbg.create ~seed:"s" in
  Alcotest.(check string) "deterministic" (Drbg.generate a 64) (Drbg.generate b 64);
  let c = Drbg.create ~seed:"t" in
  Alcotest.(check bool) "seed-sensitive" true
    (Drbg.generate (Drbg.create ~seed:"s") 32 <> Drbg.generate c 32);
  let d = Drbg.create ~seed:"s" in
  let child = Drbg.fork d "x" in
  Alcotest.(check bool) "fork independent" true
    (Drbg.generate child 32 <> Drbg.generate (Drbg.create ~seed:"s") 32)

(* ---- property tests --------------------------------------------------------- *)

let qc name gen prop = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count:200 gen prop)

let prop_tests =
  [ qc "hex roundtrip" QCheck.string (fun s -> Bytesx.of_hex (Bytesx.to_hex s) = s);
    qc "xor involution"
      QCheck.(pair (string_of_size (Gen.return 32)) (string_of_size (Gen.return 32)))
      (fun (a, b) -> Bytesx.xor (Bytesx.xor a b) b = a);
    qc "equal_ct agrees with (=)"
      QCheck.(pair small_string small_string)
      (fun (a, b) -> Bytesx.equal_ct a b = (a = b));
    qc "sha256 distinct on distinct inputs (no trivial collisions)"
      QCheck.(pair small_string small_string)
      (fun (a, b) -> a = b || Sha256.digest a <> Sha256.digest b);
    qc "hkdf expand length" QCheck.(int_range 1 800)
      (fun n ->
        String.length (Hkdf.expand Hmac.sha256 ~prk:(Sha256.digest "p") ~info:"" n) = n);
    qc "gcm roundtrip random"
      QCheck.(pair small_string small_string)
      (fun (pt, ad) ->
        let k = Aes_gcm.of_secret (Sha256.digest "key") in
        let nonce = String.sub (Sha256.digest "nonce") 0 12 in
        Aes_gcm.open_ k ~nonce ~ad (Aes_gcm.seal k ~nonce ~ad pt) = Some pt);
    qc "chacha20poly1305 roundtrip random"
      QCheck.(pair small_string small_string)
      (fun (pt, ad) ->
        let key = Sha256.digest "k2" in
        let nonce = String.sub (Sha256.digest "n2") 0 12 in
        Chacha20poly1305.open_ ~key ~nonce ~ad
          (Chacha20poly1305.seal ~key ~nonce ~ad pt)
        = Some pt);
    qc "drbg uniform in range" QCheck.(int_range 1 1000)
      (fun n ->
        let rng = Drbg.create ~seed:(string_of_int n) in
        let v = Drbg.uniform rng n in
        v >= 0 && v < n) ]

let suites =
  [ ( "crypto",
      [ Alcotest.test_case "sha2 vectors" `Quick test_sha2;
        Alcotest.test_case "sha2 streaming" `Quick test_sha2_streaming;
        Alcotest.test_case "sha3/shake vectors" `Quick test_sha3;
        Alcotest.test_case "shake incremental" `Quick test_shake_incremental;
        Alcotest.test_case "hmac vectors" `Quick test_hmac;
        Alcotest.test_case "hkdf rfc5869" `Quick test_hkdf;
        Alcotest.test_case "aes fips-197" `Quick test_aes;
        Alcotest.test_case "aes ctr" `Quick test_aes_ctr;
        Alcotest.test_case "aes-gcm vectors + tamper" `Quick test_gcm;
        Alcotest.test_case "chacha20poly1305 rfc8439" `Quick test_chacha20poly1305;
        Alcotest.test_case "drbg" `Quick test_drbg ]
      @ prop_tests ) ]
