test/test_tls.ml: Alcotest Crypto List Netsim Option Pqc Printf String Tls
