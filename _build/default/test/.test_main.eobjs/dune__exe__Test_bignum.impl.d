test/test_bignum.ml: Alcotest Bignum Bytesx Crypto Drbg Fmt List QCheck QCheck_alcotest
