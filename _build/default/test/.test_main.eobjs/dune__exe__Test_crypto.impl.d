test/test_crypto.ml: Aes Aes_gcm Alcotest Bytes Bytesx Chacha20poly1305 Char Crypto Drbg Gen Hkdf Hmac Keccak List Poly1305 QCheck QCheck_alcotest Sha256 Sha512 String
