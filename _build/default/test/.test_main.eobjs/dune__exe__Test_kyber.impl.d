test/test_kyber.ml: Alcotest Bytes Char Crypto Kyber List Pqc Printf QCheck QCheck_alcotest String
