test/test_main.ml: Alcotest Test_bignum Test_core Test_crypto Test_dilithium Test_kyber Test_netsim Test_pqc Test_pubkey Test_slh Test_tls
