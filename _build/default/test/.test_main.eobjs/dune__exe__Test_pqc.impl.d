test/test_pqc.ml: Alcotest Bytes Char Costs Crypto Kem List Pqc Registry Sigalg Sim_suites String
