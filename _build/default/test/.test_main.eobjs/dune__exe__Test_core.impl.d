test/test_core.ml: Alcotest Amplification Catalog Core Deviation Experiment Float List Netsim Option Paper_data Pqc Printf Ranking Scenario Stats String Tls Whitebox
