test/test_netsim.ml: Alcotest Buffer Char Crypto List Netsim Printf QCheck QCheck_alcotest String
