test/test_pubkey.ml: Alcotest Bignum Bytes Bytesx Char Crypto Drbg Ec List QCheck QCheck_alcotest Rsa Rsa_keys Sha256 String X25519
