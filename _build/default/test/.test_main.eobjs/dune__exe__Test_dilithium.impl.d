test/test_dilithium.ml: Alcotest Bytes Char Crypto Dilithium List Pqc QCheck QCheck_alcotest String
