test/test_slh.ml: Alcotest Bytes Char Crypto List Pqc Printf Registry Sigalg Slh String
