(* Public-key primitives: X25519 (RFC 7748 vectors), NIST-curve
   ECDH/ECDSA, RSA. *)

open Crypto

let hex = Bytesx.of_hex

let test_x25519_vectors () =
  let check (scalar, point, want) =
    Alcotest.(check string) "rfc7748" want
      (Bytesx.to_hex (X25519.scalar_mult ~scalar:(hex scalar) ~point:(hex point)))
  in
  List.iter check
    [ ( "a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4",
        "e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c",
        "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552" );
      ( "4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d",
        "e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493",
        "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957" ) ]

let test_x25519_dh () =
  let rng = Drbg.create ~seed:"x25519" in
  for _ = 1 to 5 do
    let a = Drbg.generate rng 32 and bsec = Drbg.generate rng 32 in
    let pa = X25519.public_of_secret a and pb = X25519.public_of_secret bsec in
    Alcotest.(check string) "dh agreement"
      (Bytesx.to_hex (X25519.scalar_mult ~scalar:a ~point:pb))
      (Bytesx.to_hex (X25519.scalar_mult ~scalar:bsec ~point:pa))
  done

let curves = [ ("p256", Ec.p256); ("p384", Ec.p384); ("p521", Ec.p521) ]

let test_ec_group_laws () =
  List.iter
    (fun (name, c) ->
      let g = Ec.Affine (c.Ec.gx, c.Ec.gy) in
      Alcotest.(check bool) (name ^ " generator on curve") true (Ec.on_curve c g);
      (* n * G = infinity *)
      Alcotest.(check bool) (name ^ " order kills G") true
        (Ec.scalar_mult c c.Ec.n g = Ec.Infinity);
      (* 2G + G = 3G, computed two ways *)
      let two_g = Ec.double c g in
      Alcotest.(check bool) (name ^ " 2G on curve") true (Ec.on_curve c two_g);
      let three_a = Ec.add c two_g g in
      let three_b = Ec.base_mult c (Bignum.of_int 3) in
      Alcotest.(check bool) (name ^ " 2G+G = 3G") true (three_a = three_b);
      (* commutativity *)
      Alcotest.(check bool) (name ^ " add commutes") true
        (Ec.add c g two_g = Ec.add c two_g g);
      (* identity *)
      Alcotest.(check bool) (name ^ " G + inf = G") true
        (Ec.add c g Ec.Infinity = g))
    curves

let test_ecdh () =
  let rng = Drbg.create ~seed:"ecdh" in
  List.iter
    (fun (name, c) ->
      let d1, q1 = Ec.gen_keypair c rng in
      let d2, q2 = Ec.gen_keypair c rng in
      Alcotest.(check string) (name ^ " agreement")
        (Bytesx.to_hex (Ec.ecdh c d1 q2))
        (Bytesx.to_hex (Ec.ecdh c d2 q1));
      Alcotest.(check int) (name ^ " secret width") c.Ec.byte_size
        (String.length (Ec.ecdh c d1 q2));
      (* point codec *)
      let enc = Ec.encode_point c q1 in
      Alcotest.(check int) (name ^ " point size") (1 + (2 * c.Ec.byte_size))
        (String.length enc);
      Alcotest.(check bool) (name ^ " decode") true (Ec.decode_point c enc = Some q1);
      (* off-curve points are rejected *)
      let bad = Bytes.of_string enc in
      Bytes.set bad 5 (Char.chr (Char.code (Bytes.get bad 5) lxor 1));
      Alcotest.(check bool) (name ^ " off-curve rejected") true
        (Ec.decode_point c (Bytes.to_string bad) = None))
    curves

let test_ecdsa () =
  let rng = Drbg.create ~seed:"ecdsa" in
  List.iter
    (fun (name, c) ->
      let d, q = Ec.gen_keypair c rng in
      let digest = Sha256.digest "message" in
      let signature = Ec.ecdsa_sign c rng ~key:d ~digest in
      Alcotest.(check int) (name ^ " sig size") (2 * c.Ec.byte_size)
        (String.length signature);
      Alcotest.(check bool) (name ^ " verify") true
        (Ec.ecdsa_verify c ~pub:q ~digest signature);
      Alcotest.(check bool) (name ^ " wrong digest") false
        (Ec.ecdsa_verify c ~pub:q ~digest:(Sha256.digest "other") signature);
      let bad = Bytes.of_string signature in
      Bytes.set bad 3 (Char.chr (Char.code (Bytes.get bad 3) lxor 1));
      Alcotest.(check bool) (name ^ " corrupt sig") false
        (Ec.ecdsa_verify c ~pub:q ~digest (Bytes.to_string bad));
      let d2, q2 = Ec.gen_keypair c rng in
      ignore d2;
      Alcotest.(check bool) (name ^ " wrong key") false
        (Ec.ecdsa_verify c ~pub:q2 ~digest signature))
    curves

let test_rsa () =
  List.iter
    (fun bits ->
      let key = Rsa_keys.fixed_key bits in
      let msg = "post-quantum tls " ^ string_of_int bits in
      let signature = Rsa.sign_pkcs1_sha256 key msg in
      Alcotest.(check int) "sig = modulus size" (bits / 8) (String.length signature);
      Alcotest.(check bool) "verify" true
        (Rsa.verify_pkcs1_sha256 key.Rsa.pub ~msg signature);
      Alcotest.(check bool) "wrong msg" false
        (Rsa.verify_pkcs1_sha256 key.Rsa.pub ~msg:"x" signature);
      let bad = Bytes.of_string signature in
      Bytes.set bad 0 (Char.chr (Char.code (Bytes.get bad 0) lxor 1));
      Alcotest.(check bool) "corrupt" false
        (Rsa.verify_pkcs1_sha256 key.Rsa.pub ~msg (Bytes.to_string bad));
      (* pub codec *)
      let enc = Rsa.encode_pub key.Rsa.pub in
      match Rsa.decode_pub enc with
      | Some pub ->
        Alcotest.(check bool) "pub roundtrip" true
          (Bignum.equal pub.Rsa.n key.Rsa.pub.Rsa.n
          && Bignum.equal pub.Rsa.e key.Rsa.pub.Rsa.e)
      | None -> Alcotest.fail "pub decode")
    [ 1024; 2048 ]

let test_rsa_keygen () =
  (* fresh keygen at a small size so the test stays fast *)
  let rng = Drbg.create ~seed:"rsa-keygen" in
  let key = Rsa.gen rng ~bits:512 in
  Alcotest.(check int) "modulus bits" 64 (Rsa.modulus_bytes key.Rsa.pub);
  let msg = "fresh key" in
  Alcotest.(check bool) "fresh key signs" true
    (Rsa.verify_pkcs1_sha256 key.Rsa.pub ~msg (Rsa.sign_pkcs1_sha256 key msg))

let qc name gen prop = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count:20 gen prop)

let prop_tests =
  [ qc "x25519 ladder ignores high bit of u" QCheck.small_int (fun i ->
        let rng = Drbg.create ~seed:("hb" ^ string_of_int i) in
        let scalar = Drbg.generate rng 32 in
        let point = Drbg.generate rng 32 in
        let flipped =
          Bytes.of_string point |> fun b ->
          Bytes.set b 31 (Char.chr (Char.code (Bytes.get b 31) lxor 0x80));
          Bytes.to_string b
        in
        X25519.scalar_mult ~scalar ~point = X25519.scalar_mult ~scalar ~point:flipped);
    qc "ecdsa p256 roundtrip randomized" QCheck.small_string (fun m ->
        let rng = Drbg.create ~seed:"qc-ecdsa" in
        let d, q = Ec.gen_keypair Ec.p256 rng in
        let digest = Sha256.digest m in
        Ec.ecdsa_verify Ec.p256 ~pub:q ~digest
          (Ec.ecdsa_sign Ec.p256 rng ~key:d ~digest)) ]

let suites =
  [ ( "pubkey",
      [ Alcotest.test_case "x25519 rfc7748" `Quick test_x25519_vectors;
        Alcotest.test_case "x25519 dh" `Quick test_x25519_dh;
        Alcotest.test_case "ec group laws" `Quick test_ec_group_laws;
        Alcotest.test_case "ecdh all curves" `Quick test_ecdh;
        Alcotest.test_case "ecdsa all curves" `Quick test_ecdsa;
        Alcotest.test_case "rsa fixed keys" `Quick test_rsa;
        Alcotest.test_case "rsa keygen" `Slow test_rsa_keygen ]
      @ prop_tests ) ]
