(* The algorithm zoo: registry completeness, hybrid combinators, the
   simulated suites, mocked wrappers and the cost table. *)

open Pqc

let test_registry_counts () =
  Alcotest.(check int) "23 KAs (Table 2a)" 23 (List.length Registry.kems);
  Alcotest.(check int) "24 SAs (Table 2b + rsa3072_dilithium2)" 24
    (List.length Registry.sigs);
  (* exact paper spellings *)
  List.iter
    (fun n -> ignore (Registry.find_kem n))
    [ "x25519"; "bikel1"; "hqc128"; "kyber512"; "kyber90s512"; "p256";
      "p256_bikel1"; "p256_hqc128"; "p256_kyber512"; "bikel3"; "hqc192";
      "kyber768"; "kyber90s768"; "p384"; "p384_bikel3"; "p384_hqc192";
      "p384_kyber768"; "hqc256"; "kyber1024"; "kyber90s1024"; "p521";
      "p521_hqc256"; "p521_kyber1024" ];
  List.iter
    (fun n -> ignore (Registry.find_sig n))
    [ "rsa:1024"; "rsa:2048"; "falcon512"; "rsa:3072"; "rsa:4096";
      "sphincs128"; "p256_falcon512"; "p256_sphincs128"; "dilithium2";
      "dilithium2_aes"; "p256_dilithium2"; "rsa3072_dilithium2"; "dilithium3";
      "dilithium3_aes"; "sphincs192"; "p384_dilithium3"; "p384_sphincs192";
      "dilithium5"; "dilithium5_aes"; "falcon1024"; "sphincs256";
      "p521_dilithium5"; "p521_falcon1024"; "p521_sphincs256" ];
  Alcotest.(check_raises) "unknown kem" Not_found (fun () ->
      ignore (Registry.find_kem "sike"))

let test_registry_sizes () =
  (* liboqs / NIST-submission wire sizes for the simulated algorithms *)
  let k name = Registry.find_kem name in
  let check_kem name pk ct =
    Alcotest.(check (pair int int)) name (pk, ct)
      ((k name).Kem.public_key_bytes, (k name).Kem.ciphertext_bytes)
  in
  check_kem "bikel1" 1541 1573;
  check_kem "bikel3" 3083 3115;
  check_kem "hqc128" 2249 4497;
  check_kem "hqc192" 4522 9042;
  check_kem "hqc256" 7245 14485;
  check_kem "x25519" 32 32;
  check_kem "kyber512" 800 768;
  let s name = Registry.find_sig name in
  let check_sig name pk sg =
    Alcotest.(check (pair int int)) name (pk, sg)
      ((s name).Sigalg.public_key_bytes, (s name).Sigalg.signature_bytes)
  in
  check_sig "falcon512" 897 666;
  check_sig "falcon1024" 1793 1280;
  check_sig "sphincs128" 32 17088;
  check_sig "sphincs192" 48 35664;
  check_sig "sphincs256" 64 49856;
  check_sig "dilithium2" 1312 2420

let test_kem_roundtrip_all () =
  let rng = Crypto.Drbg.create ~seed:"zoo-kem" in
  List.iter
    (fun (kem : Kem.t) ->
      let kp = kem.Kem.keygen rng in
      Alcotest.(check int) (kem.Kem.name ^ " pk size") kem.Kem.public_key_bytes
        (String.length kp.Kem.public);
      let ct, ss = kem.Kem.encaps rng kp.Kem.public in
      Alcotest.(check int) (kem.Kem.name ^ " ct size") kem.Kem.ciphertext_bytes
        (String.length ct);
      Alcotest.(check int) (kem.Kem.name ^ " ss size") kem.Kem.shared_secret_bytes
        (String.length ss);
      Alcotest.(check string) (kem.Kem.name ^ " agreement")
        (Crypto.Bytesx.to_hex ss)
        (Crypto.Bytesx.to_hex (kem.Kem.decaps kp.Kem.secret ct)))
    Registry.kems

let test_sig_roundtrip_all () =
  let rng = Crypto.Drbg.create ~seed:"zoo-sig" in
  List.iter
    (fun (sa : Sigalg.t) ->
      let kp = sa.Sigalg.keygen rng in
      let s = sa.Sigalg.sign rng ~secret:kp.Sigalg.secret "zoo" in
      Alcotest.(check int) (sa.Sigalg.name ^ " sig size") sa.Sigalg.signature_bytes
        (String.length s);
      Alcotest.(check bool) (sa.Sigalg.name ^ " verify") true
        (sa.Sigalg.verify ~public:kp.Sigalg.public ~msg:"zoo" s);
      Alcotest.(check bool) (sa.Sigalg.name ^ " reject") false
        (sa.Sigalg.verify ~public:kp.Sigalg.public ~msg:"other" s))
    Registry.sigs

let test_hybrid_structure () =
  let h = Registry.find_kem "p256_kyber512" in
  let p256 = Registry.find_kem "p256" and ky = Registry.find_kem "kyber512" in
  Alcotest.(check int) "hybrid pk additive"
    (p256.Kem.public_key_bytes + ky.Kem.public_key_bytes)
    h.Kem.public_key_bytes;
  Alcotest.(check int) "hybrid ct additive"
    (p256.Kem.ciphertext_bytes + ky.Kem.ciphertext_bytes)
    h.Kem.ciphertext_bytes;
  Alcotest.(check int) "hybrid ss concatenated"
    (p256.Kem.shared_secret_bytes + ky.Kem.shared_secret_bytes)
    h.Kem.shared_secret_bytes;
  Alcotest.(check bool) "flagged hybrid" true h.Kem.hybrid;
  Alcotest.(check bool) "hybrid pq" true h.Kem.pq;
  Alcotest.(check bool) "classical not pq" false p256.Kem.pq;
  (* hybrid SA: breaking one component must break the composite *)
  let rng = Crypto.Drbg.create ~seed:"hybrid-sa" in
  let hs = Registry.find_sig "p256_dilithium2" in
  let kp = hs.Sigalg.keygen rng in
  let s = hs.Sigalg.sign rng ~secret:kp.Sigalg.secret "m" in
  Alcotest.(check bool) "composite verifies" true
    (hs.Sigalg.verify ~public:kp.Sigalg.public ~msg:"m" s);
  (* corrupt the classical half *)
  let bad = Bytes.of_string s in
  Bytes.set bad 5 (Char.chr (Char.code (Bytes.get bad 5) lxor 1));
  Alcotest.(check bool) "classical half protects" false
    (hs.Sigalg.verify ~public:kp.Sigalg.public ~msg:"m" (Bytes.to_string bad));
  (* corrupt the PQ half *)
  let bad2 = Bytes.of_string s in
  let off = String.length s - 10 in
  Bytes.set bad2 off (Char.chr (Char.code (Bytes.get bad2 off) lxor 1));
  Alcotest.(check bool) "pq half protects" false
    (hs.Sigalg.verify ~public:kp.Sigalg.public ~msg:"m" (Bytes.to_string bad2))

let test_mocked_wrappers () =
  let rng = Crypto.Drbg.create ~seed:"mock" in
  List.iter
    (fun (kem : Kem.t) ->
      let m = Kem.mocked kem in
      Alcotest.(check string) "same name" kem.Kem.name m.Kem.name;
      Alcotest.(check bool) "flagged" true m.Kem.mocked;
      Alcotest.(check bool) "idempotent" true (Kem.mocked m == m);
      let kp = m.Kem.keygen rng in
      Alcotest.(check int) "mock pk size" kem.Kem.public_key_bytes
        (String.length kp.Kem.public);
      let ct, ss = m.Kem.encaps rng kp.Kem.public in
      Alcotest.(check int) "mock ct size" kem.Kem.ciphertext_bytes (String.length ct);
      Alcotest.(check string) "mock roundtrip"
        (Crypto.Bytesx.to_hex ss)
        (Crypto.Bytesx.to_hex (m.Kem.decaps kp.Kem.secret ct)))
    [ Registry.find_kem "x25519"; Registry.find_kem "kyber768";
      Registry.find_kem "p521_kyber1024" ];
  let sa = Sigalg.mocked (Registry.find_sig "rsa:2048") in
  let kp = sa.Sigalg.keygen rng in
  let s = sa.Sigalg.sign rng ~secret:kp.Sigalg.secret "m" in
  Alcotest.(check int) "mock sig size" 256 (String.length s);
  Alcotest.(check bool) "mock verify" true
    (sa.Sigalg.verify ~public:kp.Sigalg.public ~msg:"m" s)

let test_costs_total () =
  (* every registered algorithm must have a cost entry *)
  List.iter
    (fun (kem : Kem.t) ->
      let c = Costs.kem kem.Kem.name in
      Alcotest.(check bool) (kem.Kem.name ^ " positive costs") true
        (c.Costs.kem_keygen.Costs.ms > 0.
        && c.Costs.kem_encaps.Costs.ms > 0.
        && c.Costs.kem_decaps.Costs.ms > 0.))
    Registry.kems;
  List.iter
    (fun (sa : Sigalg.t) ->
      let c = Costs.sig_ sa.Sigalg.name in
      Alcotest.(check bool) (sa.Sigalg.name ^ " positive costs") true
        (c.Costs.sign.Costs.ms > 0. && c.Costs.verify.Costs.ms > 0.))
    Registry.sigs;
  (* hybrids cost the sum of their parts *)
  let h = Costs.kem "p256_kyber512" in
  let a = Costs.kem "p256" and b = Costs.kem "kyber512" in
  Alcotest.(check (float 1e-9)) "hybrid encaps sum"
    (a.Costs.kem_encaps.Costs.ms +. b.Costs.kem_encaps.Costs.ms)
    h.Costs.kem_encaps.Costs.ms;
  (* the rsa3072 spelling inside hybrid names resolves *)
  let r = Costs.sig_ "rsa3072_dilithium2" in
  let r2 = Costs.sig_ "rsa:3072" and d = Costs.sig_ "dilithium2" in
  Alcotest.(check (float 1e-9)) "rsa hybrid sign sum"
    (r2.Costs.sign.Costs.ms +. d.Costs.sign.Costs.ms)
    r.Costs.sign.Costs.ms;
  Alcotest.(check_raises) "unknown algorithm" Not_found (fun () ->
      ignore (Costs.kem "ntru"))

let test_levels () =
  Alcotest.(check int) "kyber512 level group" 1
    (Registry.kem_level (Registry.find_kem "kyber512"));
  Alcotest.(check int) "dilithium2 grouped with level 1" 1
    (Registry.sig_level (Registry.find_sig "dilithium2"));
  Alcotest.(check int) "kyber768 level group" 3
    (Registry.kem_level (Registry.find_kem "kyber768"));
  Alcotest.(check int) "falcon1024 level" 5
    (Registry.sig_level (Registry.find_sig "falcon1024"));
  let l1 = Registry.level_group 1 `Kem in
  Alcotest.(check int) "six level-1 non-hybrid KAs" 6 (List.length l1);
  Alcotest.(check bool) "no hybrids in level groups" true
    (List.for_all (fun (k : Kem.t) -> not k.Kem.hybrid) l1);
  let s1 = Registry.level_group_sigs 1 in
  Alcotest.(check bool) "only rsa:3072 among RSAs (Fig. 3)" true
    (List.for_all
       (fun (s : Sigalg.t) ->
         match s.Sigalg.name with
         | "rsa:1024" | "rsa:2048" | "rsa:4096" -> false
         | _ -> true)
       s1)

let test_sim_suites () =
  let rng = Crypto.Drbg.create ~seed:"sim" in
  let pk, sk = Sim_suites.kem_keygen rng ~pk_len:100 in
  Alcotest.(check int) "sim pk len" 100 (String.length pk);
  let ct, ss = Sim_suites.kem_encaps rng ~pk ~ct_len:200 ~ss_len:64 in
  Alcotest.(check string) "sim kem roundtrip"
    (Crypto.Bytesx.to_hex ss)
    (Crypto.Bytesx.to_hex (Sim_suites.kem_decaps ~sk ~ct ~pk_len:100 ~ss_len:64));
  Alcotest.(check_raises) "ct too small"
    (Invalid_argument "Sim_suites.kem_encaps: ct too short") (fun () ->
      ignore (Sim_suites.kem_encaps rng ~pk ~ct_len:16 ~ss_len:32))

let suites =
  [ ( "pqc-zoo",
      [ Alcotest.test_case "registry counts and spellings" `Quick test_registry_counts;
        Alcotest.test_case "registry wire sizes" `Quick test_registry_sizes;
        Alcotest.test_case "every KA round-trips" `Slow test_kem_roundtrip_all;
        Alcotest.test_case "every SA round-trips" `Slow test_sig_roundtrip_all;
        Alcotest.test_case "hybrid structure" `Quick test_hybrid_structure;
        Alcotest.test_case "mocked wrappers" `Quick test_mocked_wrappers;
        Alcotest.test_case "cost table coverage" `Quick test_costs_total;
        Alcotest.test_case "level grouping" `Quick test_levels;
        Alcotest.test_case "sim suites" `Quick test_sim_suites ] ) ]
