(** A simulated host: one dedicated CPU core (the paper pins client and
    server to cores) plus a per-shared-library CPU ledger that feeds the
    white-box analysis (Table 3). *)

type t

val create : Engine.t -> name:string -> t
val name : t -> string

val charge : t -> ms:float -> lib:string -> k:(unit -> unit) -> unit
(** [charge host ~ms ~lib ~k] occupies the CPU for [ms] virtual
    milliseconds (queueing behind any in-flight work) and then runs [k].
    The time is attributed to [lib] in the ledger. *)

val charge_async : t -> ms:float -> lib:string -> unit
(** Account CPU time with no continuation (per-packet kernel work). *)

val ledger : t -> (string * float) list
(** Accumulated CPU milliseconds per library, descending. *)

val total_cpu_ms : t -> float
val reset_ledger : t -> unit
