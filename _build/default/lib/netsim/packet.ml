type flags = { syn : bool; ack : bool; fin : bool; rst : bool }

type t = {
  id : int;
  src : string;
  dst : string;
  flags : flags;
  seq : int;
  ack_seq : int;
  payload : string;
  marks : (int * string) list;
}

let plain_flags = { syn = false; ack = true; fin = false; rst = false }
let syn_flags = { syn = true; ack = false; fin = false; rst = false }
let synack_flags = { syn = true; ack = true; fin = false; rst = false }
let ack_flags = plain_flags
let fin_flags = { syn = false; ack = true; fin = true; rst = false }

let ethernet = 14
let ipv4 = 20
let tcp_base = 20
let tcp_options_syn = 20 (* MSS, SACK-permitted, timestamps, window scale *)
let tcp_options = 12 (* timestamps *)

let header_bytes p =
  ethernet + ipv4 + tcp_base
  + if p.flags.syn then tcp_options_syn else tcp_options

let payload_len p = String.length p.payload
let wire_bytes p = header_bytes p + payload_len p

let describe p =
  let fl = p.flags in
  Printf.sprintf "%s->%s %s%s%sseq=%d ack=%d len=%d%s" p.src p.dst
    (if fl.syn then "SYN " else "")
    (if fl.fin then "FIN " else "")
    (if fl.rst then "RST " else "")
    p.seq p.ack_seq (payload_len p)
    (match p.marks with
    | [] -> ""
    | ms -> " [" ^ String.concat "," (List.map snd ms) ^ "]")
