(** Simulated packets: TCP segments with realistic wire-size accounting.

    Wire bytes model what the paper's MoonGen timestamper counted on the
    fiber: Ethernet framing plus IPv4 plus TCP with the timestamp option
    (and the full option set on SYNs). *)

type flags = { syn : bool; ack : bool; fin : bool; rst : bool }

type t = {
  id : int;
  src : string;  (** host name, for traces *)
  dst : string;
  flags : flags;
  seq : int;  (** TCP sequence number (byte offset) *)
  ack_seq : int;
  payload : string;
  marks : (int * string) list;
      (** TLS messages that begin in this segment, as (absolute stream
          offset, label); carried for the passive tap, which in the real
          testbed reads the same information from plaintext record
          headers. *)
}

val plain_flags : flags
val syn_flags : flags
val synack_flags : flags
val ack_flags : flags
val fin_flags : flags

val header_bytes : t -> int
val wire_bytes : t -> int
val payload_len : t -> int
val describe : t -> string
