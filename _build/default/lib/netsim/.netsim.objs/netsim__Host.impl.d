lib/netsim/host.ml: Engine Float Hashtbl List Option
