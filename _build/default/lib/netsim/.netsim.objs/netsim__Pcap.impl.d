lib/netsim/pcap.ml: Buffer Char Crypto List Packet String Trace
