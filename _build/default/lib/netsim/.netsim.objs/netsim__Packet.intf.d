lib/netsim/packet.mli:
