lib/netsim/engine.mli:
