lib/netsim/link.mli: Crypto Engine Packet
