lib/netsim/pcap.mli: Trace
