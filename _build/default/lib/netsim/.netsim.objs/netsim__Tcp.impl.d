lib/netsim/tcp.ml: Buffer Engine Float Host Link List Option Packet String
