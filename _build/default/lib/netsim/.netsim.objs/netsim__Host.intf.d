lib/netsim/host.mli: Engine
