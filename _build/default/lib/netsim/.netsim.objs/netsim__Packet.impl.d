lib/netsim/packet.ml: List Printf String
