lib/netsim/link.ml: Crypto Engine Float Hashtbl Packet
