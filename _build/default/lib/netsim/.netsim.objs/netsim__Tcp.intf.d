lib/netsim/tcp.mli: Engine Host Link
