(** Impaired simplex paths and full-duplex links (tc-netem semantics):
    Bernoulli loss, fixed one-way delay and a token-rate bandwidth limit
    with a FIFO queue. A passive tap sees every packet that survives
    loss, with the timestamp at which its last bit passes the fiber. *)

type netem = {
  loss : float;  (** packet loss probability, 0..1 *)
  loss_towards : string option;
      (** apply loss only to packets addressed to this host (netem on one
          egress interface, as in the paper's testbed); [None] = both
          directions *)
  delay_s : float;  (** one-way propagation delay, seconds *)
  jitter_s : float;
      (** uniform delay variation (tc-netem's second delay parameter);
          crossing delays reorder packets *)
  rate_bps : float;  (** link rate, bits per second *)
}

val ideal : netem
(** The paper's testbed: direct 10 Gbit/s fiber, no loss, ~0 delay. *)

type t

val create :
  Engine.t ->
  Crypto.Drbg.t ->
  netem ->
  tap:(float -> Packet.t -> unit) ->
  t
(** The tap runs for every delivered-or-in-flight packet (the paper's
    timestamper host observes the fiber itself). *)

val send : t -> Packet.t -> deliver:(Packet.t -> unit) -> unit
(** Queue a packet in the direction implied by its src/dst; [deliver]
    fires at arrival time unless the packet is lost. *)

val stats_delivered : t -> int
val stats_lost : t -> int
