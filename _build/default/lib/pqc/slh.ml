(* SPHINCS+ (round-3 structure / FIPS 205 lineage) over SHAKE256,
   "simple" thash. See the .mli for the instantiation note. The layered
   construction: FORS signs the message digest, a WOTS+/XMSS hypertree
   certifies the FORS key.

   Tree indices span up to 64 bits (h - h/d = 64 for the 256f set), so
   they are carried as Int64 throughout. *)

type params = {
  name : string;
  n : int; (* hash output bytes *)
  h : int; (* total hypertree height *)
  d : int; (* hypertree layers *)
  a : int; (* FORS tree height *)
  k : int; (* FORS tree count *)
}

(* w = 16 throughout (so digits are 4 bits), as in every NIST set *)
let w = 16

let sphincs128f = { name = "sphincs128f"; n = 16; h = 66; d = 22; a = 6; k = 33 }
let sphincs192f = { name = "sphincs192f"; n = 24; h = 66; d = 22; a = 8; k = 33 }
let sphincs256f = { name = "sphincs256f"; n = 32; h = 68; d = 17; a = 9; k = 35 }
let sphincs128s = { name = "sphincs128s"; n = 16; h = 63; d = 7; a = 12; k = 14 }
let sphincs192s = { name = "sphincs192s"; n = 24; h = 63; d = 7; a = 14; k = 17 }
let sphincs256s = { name = "sphincs256s"; n = 32; h = 64; d = 8; a = 14; k = 22 }

let name p = p.name
let hp p = p.h / p.d
let len1 p = 2 * p.n (* base-16 digits of an n-byte value *)
let len2 = 3 (* checksum digits; 3 for every parameter set at w = 16 *)
let len p = len1 p + len2
let public_key_bytes p = 2 * p.n
let secret_key_bytes p = 4 * p.n
let signature_bytes p = p.n * (1 + (p.k * (p.a + 1)) + p.h + (p.d * len p))

let digest_bytes p =
  (((p.k * p.a) + 7) / 8) + ((p.h - hp p + 7) / 8) + ((hp p + 7) / 8)

(* ---- addresses ------------------------------------------------------------ *)

module Adrs = struct
  (* a 32-byte mutable address *)
  let create () = Bytes.make 32 '\000'
  let copy = Bytes.copy
  let set_layer t v = Crypto.Bytesx.set_u32_be t 0 v

  let set_tree t (v : int64) =
    (* 12-byte field: 4 zero bytes + 64-bit value *)
    Crypto.Bytesx.set_u32_be t 4 0;
    Crypto.Bytesx.set_u64_be t 8 v

  let set_type t v =
    Crypto.Bytesx.set_u32_be t 16 v;
    (* changing the type zeroes the remaining words, per the spec *)
    Crypto.Bytesx.set_u32_be t 20 0;
    Crypto.Bytesx.set_u32_be t 24 0;
    Crypto.Bytesx.set_u32_be t 28 0

  let set_keypair t v = Crypto.Bytesx.set_u32_be t 20 v
  let set_chain t v = Crypto.Bytesx.set_u32_be t 24 v
  let set_hash t v = Crypto.Bytesx.set_u32_be t 28 v
  let set_tree_height = set_chain
  let set_tree_index = set_hash
  let to_string = Bytes.to_string

  (* address types *)
  let wots_hash = 0
  let wots_pk = 1
  let tree = 2
  let fors_tree = 3
  let fors_roots = 4
  let wots_prf = 5
  let fors_prf = 6
end

(* ---- tweakable hashes (shake-simple) --------------------------------------- *)

let thash p ~pk_seed adrs parts =
  Crypto.Keccak.shake256
    (pk_seed ^ Adrs.to_string adrs ^ String.concat "" parts)
    p.n

let prf p ~pk_seed ~sk_seed adrs = thash p ~pk_seed adrs [ sk_seed ]

let prf_msg p ~sk_prf ~opt_rand msg =
  Crypto.Keccak.shake256 (sk_prf ^ opt_rand ^ msg) p.n

let h_msg p ~r ~pk_seed ~pk_root msg =
  Crypto.Keccak.shake256 (r ^ pk_seed ^ pk_root ^ msg) (digest_bytes p)

(* ---- bit plumbing ----------------------------------------------------------- *)

(* big-endian 4-bit digits of a byte string *)
let base_w16 s count =
  Array.init count (fun i ->
      let b = Char.code s.[i / 2] in
      if i land 1 = 0 then b lsr 4 else b land 0xf)

(* interpret up to 8 bytes big-endian as an Int64 *)
let int64_of_bytes s off bytes =
  let v = ref 0L in
  for i = 0 to bytes - 1 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code s.[off + i]))
  done;
  !v

let mask64 bits = if bits >= 64 then -1L else Int64.sub (Int64.shift_left 1L bits) 1L

(* ---- WOTS+ ------------------------------------------------------------------ *)

let chain p ~pk_seed adrs x start steps =
  let x = ref x in
  for j = start to start + steps - 1 do
    Adrs.set_hash adrs j;
    x := thash p ~pk_seed adrs [ !x ]
  done;
  !x

(* message digits plus checksum digits *)
let wots_digits p msg_n =
  let d1 = base_w16 msg_n (len1 p) in
  let csum = Array.fold_left (fun acc d -> acc + (w - 1 - d)) 0 d1 in
  (* left-shift so the checksum occupies the top bits of len2 digits *)
  let csum = csum lsl 4 (* (8 - (len2 * lg_w) mod 8) mod 8 = 4 *) in
  let csum_bytes =
    String.init 2 (fun i -> Char.chr ((csum lsr (8 * (1 - i))) land 0xff))
  in
  Array.append d1 (base_w16 csum_bytes len2)

let wots_sk p ~pk_seed ~sk_seed adrs i =
  let sk_adrs = Adrs.copy adrs in
  Adrs.set_type sk_adrs Adrs.wots_prf;
  Bytes.blit adrs 20 sk_adrs 20 4 (* keep the keypair word *);
  Adrs.set_chain sk_adrs i;
  Adrs.set_hash sk_adrs 0;
  prf p ~pk_seed ~sk_seed sk_adrs

let wots_pk_gen p ~pk_seed ~sk_seed adrs =
  (* adrs arrives typed WOTS_HASH with layer/tree/keypair set *)
  let tmp =
    List.init (len p) (fun i ->
        let sk = wots_sk p ~pk_seed ~sk_seed adrs i in
        Adrs.set_chain adrs i;
        chain p ~pk_seed adrs sk 0 (w - 1))
  in
  let pk_adrs = Adrs.copy adrs in
  Adrs.set_type pk_adrs Adrs.wots_pk;
  Bytes.blit adrs 20 pk_adrs 20 4;
  thash p ~pk_seed pk_adrs tmp

let wots_sign p ~pk_seed ~sk_seed adrs msg_n =
  let digits = wots_digits p msg_n in
  String.concat ""
    (List.init (len p) (fun i ->
         let sk = wots_sk p ~pk_seed ~sk_seed adrs i in
         Adrs.set_chain adrs i;
         chain p ~pk_seed adrs sk 0 digits.(i)))

let wots_pk_from_sig p ~pk_seed adrs msg_n signature =
  let digits = wots_digits p msg_n in
  let tmp =
    List.init (len p) (fun i ->
        let part = String.sub signature (i * p.n) p.n in
        Adrs.set_chain adrs i;
        chain p ~pk_seed adrs part digits.(i) (w - 1 - digits.(i)))
  in
  let pk_adrs = Adrs.copy adrs in
  Adrs.set_type pk_adrs Adrs.wots_pk;
  Bytes.blit adrs 20 pk_adrs 20 4;
  thash p ~pk_seed pk_adrs tmp

(* ---- XMSS subtrees ------------------------------------------------------------ *)

(* node [idx] at height [z] of the subtree rooted in (layer, tree) *)
let rec xmss_node p ~pk_seed ~sk_seed ~layer ~tree idx z =
  if z = 0 then begin
    let adrs = Adrs.create () in
    Adrs.set_layer adrs layer;
    Adrs.set_tree adrs tree;
    Adrs.set_type adrs Adrs.wots_hash;
    Adrs.set_keypair adrs idx;
    wots_pk_gen p ~pk_seed ~sk_seed adrs
  end
  else begin
    let left = xmss_node p ~pk_seed ~sk_seed ~layer ~tree (2 * idx) (z - 1) in
    let right = xmss_node p ~pk_seed ~sk_seed ~layer ~tree ((2 * idx) + 1) (z - 1) in
    let adrs = Adrs.create () in
    Adrs.set_layer adrs layer;
    Adrs.set_tree adrs tree;
    Adrs.set_type adrs Adrs.tree;
    Adrs.set_tree_height adrs z;
    Adrs.set_tree_index adrs idx;
    thash p ~pk_seed adrs [ left; right ]
  end

let xmss_sign p ~pk_seed ~sk_seed ~layer ~tree ~leaf msg_n =
  let adrs = Adrs.create () in
  Adrs.set_layer adrs layer;
  Adrs.set_tree adrs tree;
  Adrs.set_type adrs Adrs.wots_hash;
  Adrs.set_keypair adrs leaf;
  let wots = wots_sign p ~pk_seed ~sk_seed adrs msg_n in
  let auth =
    String.concat ""
      (List.init (hp p) (fun j ->
           xmss_node p ~pk_seed ~sk_seed ~layer ~tree ((leaf lsr j) lxor 1) j))
  in
  wots ^ auth

let xmss_pk_from_sig p ~pk_seed ~layer ~tree ~leaf msg_n signature =
  let adrs = Adrs.create () in
  Adrs.set_layer adrs layer;
  Adrs.set_tree adrs tree;
  Adrs.set_type adrs Adrs.wots_hash;
  Adrs.set_keypair adrs leaf;
  let wots = String.sub signature 0 (len p * p.n) in
  let node = ref (wots_pk_from_sig p ~pk_seed adrs msg_n wots) in
  let idx = ref leaf in
  for j = 0 to hp p - 1 do
    let sibling = String.sub signature ((len p * p.n) + (j * p.n)) p.n in
    let tree_adrs = Adrs.create () in
    Adrs.set_layer tree_adrs layer;
    Adrs.set_tree tree_adrs tree;
    Adrs.set_type tree_adrs Adrs.tree;
    Adrs.set_tree_height tree_adrs (j + 1);
    Adrs.set_tree_index tree_adrs (!idx lsr 1);
    node :=
      (if !idx land 1 = 0 then thash p ~pk_seed tree_adrs [ !node; sibling ]
       else thash p ~pk_seed tree_adrs [ sibling; !node ]);
    idx := !idx lsr 1
  done;
  !node

(* ---- hypertree ------------------------------------------------------------------ *)

let ht_sign p ~pk_seed ~sk_seed ~tree_idx ~leaf_idx root =
  let sig_buf = Buffer.create (p.d * (len p + hp p) * p.n) in
  let msg = ref root and tree = ref tree_idx and leaf = ref leaf_idx in
  for layer = 0 to p.d - 1 do
    Buffer.add_string sig_buf
      (xmss_sign p ~pk_seed ~sk_seed ~layer ~tree:!tree ~leaf:!leaf !msg);
    if layer < p.d - 1 then begin
      msg := xmss_node p ~pk_seed ~sk_seed ~layer ~tree:!tree 0 (hp p);
      leaf := Int64.to_int (Int64.logand !tree (mask64 (hp p)));
      tree := Int64.shift_right_logical !tree (hp p)
    end
  done;
  Buffer.contents sig_buf

let ht_verify p ~pk_seed ~pk_root ~tree_idx ~leaf_idx root signature =
  let xmss_sig_bytes = (len p + hp p) * p.n in
  let node = ref root and tree = ref tree_idx and leaf = ref leaf_idx in
  for layer = 0 to p.d - 1 do
    let part = String.sub signature (layer * xmss_sig_bytes) xmss_sig_bytes in
    node :=
      xmss_pk_from_sig p ~pk_seed ~layer ~tree:!tree ~leaf:!leaf !node part;
    leaf := Int64.to_int (Int64.logand !tree (mask64 (hp p)));
    tree := Int64.shift_right_logical !tree (hp p)
  done;
  Crypto.Bytesx.equal_ct !node pk_root

(* ---- FORS -------------------------------------------------------------------- *)

let fors_sk p ~pk_seed ~sk_seed ~tree_idx ~leaf_idx idx =
  let adrs = Adrs.create () in
  Adrs.set_layer adrs 0;
  Adrs.set_tree adrs tree_idx;
  Adrs.set_type adrs Adrs.fors_prf;
  Adrs.set_keypair adrs leaf_idx;
  Adrs.set_tree_height adrs 0;
  Adrs.set_tree_index adrs idx;
  prf p ~pk_seed ~sk_seed adrs

let rec fors_node p ~pk_seed ~sk_seed ~tree_idx ~leaf_idx idx z =
  let adrs = Adrs.create () in
  Adrs.set_layer adrs 0;
  Adrs.set_tree adrs tree_idx;
  Adrs.set_type adrs Adrs.fors_tree;
  Adrs.set_keypair adrs leaf_idx;
  if z = 0 then begin
    let sk = fors_sk p ~pk_seed ~sk_seed ~tree_idx ~leaf_idx idx in
    Adrs.set_tree_height adrs 0;
    Adrs.set_tree_index adrs idx;
    thash p ~pk_seed adrs [ sk ]
  end
  else begin
    let left = fors_node p ~pk_seed ~sk_seed ~tree_idx ~leaf_idx (2 * idx) (z - 1) in
    let right =
      fors_node p ~pk_seed ~sk_seed ~tree_idx ~leaf_idx ((2 * idx) + 1) (z - 1)
    in
    Adrs.set_tree_height adrs z;
    Adrs.set_tree_index adrs idx;
    thash p ~pk_seed adrs [ left; right ]
  end

(* FORS indices: k groups of a bits from the digest, big-endian bit order *)
let fors_indices p md =
  let bit i = (Char.code md.[i lsr 3] lsr (7 - (i land 7))) land 1 in
  Array.init p.k (fun i ->
      let v = ref 0 in
      for j = 0 to p.a - 1 do
        v := (!v lsl 1) lor bit ((i * p.a) + j)
      done;
      !v)

let fors_sign p ~pk_seed ~sk_seed ~tree_idx ~leaf_idx md =
  let indices = fors_indices p md in
  let buf = Buffer.create (p.k * (p.a + 1) * p.n) in
  Array.iteri
    (fun i idx ->
      let off = i lsl p.a in
      Buffer.add_string buf
        (fors_sk p ~pk_seed ~sk_seed ~tree_idx ~leaf_idx (off + idx));
      for j = 0 to p.a - 1 do
        let sibling_idx = (off lsr j) + ((idx lsr j) lxor 1) in
        Buffer.add_string buf
          (fors_node p ~pk_seed ~sk_seed ~tree_idx ~leaf_idx sibling_idx j)
      done)
    indices;
  Buffer.contents buf

let fors_pk_from_sig p ~pk_seed ~tree_idx ~leaf_idx md signature =
  let indices = fors_indices p md in
  let unit_bytes = (p.a + 1) * p.n in
  let roots =
    Array.to_list
      (Array.mapi
         (fun i idx ->
           let base = i * unit_bytes in
           let sk = String.sub signature base p.n in
           let adrs = Adrs.create () in
           Adrs.set_layer adrs 0;
           Adrs.set_tree adrs tree_idx;
           Adrs.set_type adrs Adrs.fors_tree;
           Adrs.set_keypair adrs leaf_idx;
           let off = i lsl p.a in
           Adrs.set_tree_height adrs 0;
           Adrs.set_tree_index adrs (off + idx);
           let node = ref (thash p ~pk_seed adrs [ sk ]) in
           let pos = ref (off + idx) in
           for j = 0 to p.a - 1 do
             let sibling = String.sub signature (base + ((j + 1) * p.n)) p.n in
             Adrs.set_tree_height adrs (j + 1);
             Adrs.set_tree_index adrs (!pos lsr 1);
             node :=
               (if !pos land 1 = 0 then thash p ~pk_seed adrs [ !node; sibling ]
                else thash p ~pk_seed adrs [ sibling; !node ]);
             pos := !pos lsr 1
           done;
           !node)
         indices)
  in
  let roots_adrs = Adrs.create () in
  Adrs.set_layer roots_adrs 0;
  Adrs.set_tree roots_adrs tree_idx;
  Adrs.set_type roots_adrs Adrs.fors_roots;
  Adrs.set_keypair roots_adrs leaf_idx;
  thash p ~pk_seed roots_adrs roots

(* ---- top level -------------------------------------------------------------------- *)

let split_digest p digest =
  let md_bytes = ((p.k * p.a) + 7) / 8 in
  let tree_bits = p.h - hp p in
  let tree_bytes = (tree_bits + 7) / 8 in
  let leaf_bytes = (hp p + 7) / 8 in
  let md = String.sub digest 0 md_bytes in
  let tree_idx =
    Int64.logand (int64_of_bytes digest md_bytes tree_bytes) (mask64 tree_bits)
  in
  let leaf_idx =
    Int64.to_int
      (Int64.logand
         (int64_of_bytes digest (md_bytes + tree_bytes) leaf_bytes)
         (mask64 (hp p)))
  in
  (md, tree_idx, leaf_idx)

let keygen p rng =
  let sk_seed = Crypto.Drbg.generate rng p.n in
  let sk_prf = Crypto.Drbg.generate rng p.n in
  let pk_seed = Crypto.Drbg.generate rng p.n in
  let pk_root =
    xmss_node p ~pk_seed ~sk_seed ~layer:(p.d - 1) ~tree:0L 0 (hp p)
  in
  (pk_seed ^ pk_root, sk_seed ^ sk_prf ^ pk_seed ^ pk_root)

let parse_sk p sk =
  if String.length sk <> secret_key_bytes p then invalid_arg "Slh: bad sk";
  ( String.sub sk 0 p.n,
    String.sub sk p.n p.n,
    String.sub sk (2 * p.n) p.n,
    String.sub sk (3 * p.n) p.n )

let sign p sk msg =
  let sk_seed, sk_prf, pk_seed, pk_root = parse_sk p sk in
  let r = prf_msg p ~sk_prf ~opt_rand:pk_seed msg in
  let digest = h_msg p ~r ~pk_seed ~pk_root msg in
  let md, tree_idx, leaf_idx = split_digest p digest in
  let fors = fors_sign p ~pk_seed ~sk_seed ~tree_idx ~leaf_idx md in
  let fors_pk = fors_pk_from_sig p ~pk_seed ~tree_idx ~leaf_idx md fors in
  let ht = ht_sign p ~pk_seed ~sk_seed ~tree_idx ~leaf_idx fors_pk in
  r ^ fors ^ ht

let verify p pk ~msg signature =
  String.length pk = public_key_bytes p
  && String.length signature = signature_bytes p
  &&
  let pk_seed = String.sub pk 0 p.n and pk_root = String.sub pk p.n p.n in
  let r = String.sub signature 0 p.n in
  let digest = h_msg p ~r ~pk_seed ~pk_root msg in
  let md, tree_idx, leaf_idx = split_digest p digest in
  let fors_bytes = p.k * (p.a + 1) * p.n in
  let fors = String.sub signature p.n fors_bytes in
  let ht =
    String.sub signature (p.n + fors_bytes)
      (String.length signature - p.n - fors_bytes)
  in
  let fors_pk = fors_pk_from_sig p ~pk_seed ~tree_idx ~leaf_idx md fors in
  ht_verify p ~pk_seed ~pk_root ~tree_idx ~leaf_idx fors_pk ht
