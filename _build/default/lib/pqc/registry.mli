(** The full algorithm zoo of the paper: 23 key agreements (Table 2a) and
    23 signature algorithms (Table 2b, plus the [rsa3072_dilithium2]
    composite that appears in Table 4b). *)

val kems : Kem.t list
(** In the paper's table order (grouped by NIST level). *)

val sigs : Sigalg.t list

val find_kem : string -> Kem.t
(** @raise Not_found for unknown names. *)

val find_sig : string -> Sigalg.t

val baseline_kem : Kem.t
(** [x25519], the paper's fixed KA when scanning SAs. *)

val baseline_sig : Sigalg.t
(** [rsa:2048], the paper's fixed SA when scanning KAs. *)

val sphincs_variants : Sigalg.t list
(** The six SPHINCS+ profiles (f/s at each level) behind the paper's
    [all-sphincs] fastest-variant selection (Appendix B.6). *)

val level_group : int -> [ `Kem ] -> Kem.t list
(** Non-hybrid KAs of a level group (1 covers levels 1-2, as in Fig. 3). *)

val level_group_sigs : int -> Sigalg.t list
(** Non-hybrid SAs of a level group, with only [rsa:3072] for RSA (the
    paper's Fig. 3 choice). *)

val kem_level : Kem.t -> int
(** The level group (1, 3 or 5) a KA is listed under in Table 2a. *)

val sig_level : Sigalg.t -> int
