type keypair = { public : string; secret : string }

type t = {
  name : string;
  level : int;
  hybrid : bool;
  pq : bool;
  mocked : bool;
  public_key_bytes : int;
  signature_bytes : int;
  keygen : Crypto.Drbg.t -> keypair;
  sign : Crypto.Drbg.t -> secret:string -> string -> string;
  verify : public:string -> msg:string -> string -> bool;
}

(* An RSA public key encodes as our compact n/e framing: modulus plus
   4-byte F4 exponent plus framing, close to the DER SubjectPublicKeyInfo
   sizes OpenSSL produces. *)
let rsa ~bits ~level =
  let key = Crypto.Rsa_keys.fixed_key bits in
  let modulus = bits / 8 in
  let example_pub = Crypto.Rsa.encode_pub key.Crypto.Rsa.pub in
  { name = Printf.sprintf "rsa:%d" bits;
    level;
    hybrid = false;
    pq = false;
    mocked = false;
    public_key_bytes = String.length example_pub;
    signature_bytes = modulus;
    keygen =
      (fun _rng ->
        (* fixed embedded key: see .mli *)
        let k = Crypto.Rsa_keys.fixed_key bits in
        { public = Crypto.Rsa.encode_pub k.Crypto.Rsa.pub;
          secret = string_of_int bits });
    sign =
      (fun _rng ~secret msg ->
        let k = Crypto.Rsa_keys.fixed_key (int_of_string secret) in
        Crypto.Rsa.sign_pkcs1_sha256 k msg);
    verify =
      (fun ~public ~msg signature ->
        match Crypto.Rsa.decode_pub public with
        | None -> false
        | Some pub -> Crypto.Rsa.verify_pkcs1_sha256 pub ~msg signature) }

let ecdsa curve ~name ~level =
  let coord = curve.Crypto.Ec.byte_size in
  { name;
    level;
    hybrid = false;
    pq = false;
    mocked = false;
    public_key_bytes = 1 + (2 * coord);
    signature_bytes = 2 * coord;
    keygen =
      (fun rng ->
        let d, q = Crypto.Ec.gen_keypair curve rng in
        { public = Crypto.Ec.encode_point curve q;
          secret = Crypto.Bignum.to_bytes_be ~len:coord d });
    sign =
      (fun rng ~secret msg ->
        Crypto.Ec.ecdsa_sign curve rng
          ~key:(Crypto.Bignum.of_bytes_be secret)
          ~digest:(Crypto.Sha256.digest msg));
    verify =
      (fun ~public ~msg signature ->
        match Crypto.Ec.decode_point curve public with
        | None -> false
        | Some pub ->
          Crypto.Ec.ecdsa_verify curve ~pub ~digest:(Crypto.Sha256.digest msg)
            signature) }

let of_dilithium params ~level =
  { name = Dilithium.name params;
    level;
    hybrid = false;
    pq = true;
    mocked = false;
    public_key_bytes = Dilithium.public_key_bytes params;
    signature_bytes = Dilithium.signature_bytes params;
    keygen =
      (fun rng ->
        let public, secret = Dilithium.keygen params rng in
        { public; secret });
    sign = (fun _rng ~secret msg -> Dilithium.sign params secret msg);
    verify =
      (fun ~public ~msg signature ->
        Dilithium.verify params public ~msg signature) }

let of_slh params ~level =
  { name = Slh.name params;
    level;
    hybrid = false;
    pq = true;
    mocked = false;
    public_key_bytes = Slh.public_key_bytes params;
    signature_bytes = Slh.signature_bytes params;
    keygen =
      (fun rng ->
        let public, secret = Slh.keygen params rng in
        { public; secret });
    sign = (fun _rng ~secret msg -> Slh.sign params secret msg);
    verify = (fun ~public ~msg signature -> Slh.verify params public ~msg signature) }

let simulated ~name ~level ~public_key_bytes ~signature_bytes =
  { name;
    level;
    hybrid = false;
    pq = true;
    mocked = false;
    public_key_bytes;
    signature_bytes;
    keygen =
      (fun rng ->
        let public, secret = Sim_suites.sig_keygen rng ~pk_len:public_key_bytes in
        { public; secret });
    sign =
      (fun _rng ~secret msg ->
        Sim_suites.sig_sign ~sk:secret ~msg ~sig_len:signature_bytes
          ~pk_len:public_key_bytes);
    verify =
      (fun ~public ~msg signature -> Sim_suites.sig_verify ~pk:public ~msg signature) }

(* Composite signatures (draft-ounsworth-pq-composite-sigs flavour):
   both components sign the same message; a 2-byte prefix records the
   classical component's length on keys, secrets and signatures. *)
let hybrid classical pq_alg =
  let with_len a b = Crypto.Bytesx.u16_be (String.length a) ^ a ^ b in
  let split s =
    let alen = (Char.code s.[0] lsl 8) lor Char.code s.[1] in
    (String.sub s 2 alen, String.sub s (2 + alen) (String.length s - 2 - alen))
  in
  { name = classical.name ^ "_" ^ pq_alg.name;
    level = max classical.level pq_alg.level;
    hybrid = true;
    pq = pq_alg.pq;
    mocked = false;
    public_key_bytes = 2 + classical.public_key_bytes + pq_alg.public_key_bytes;
    signature_bytes = 2 + classical.signature_bytes + pq_alg.signature_bytes;
    keygen =
      (fun rng ->
        let a = classical.keygen rng and b = pq_alg.keygen rng in
        { public = with_len a.public b.public; secret = with_len a.secret b.secret });
    sign =
      (fun rng ~secret msg ->
        let sk_a, sk_b = split secret in
        with_len (classical.sign rng ~secret:sk_a msg) (pq_alg.sign rng ~secret:sk_b msg));
    verify =
      (fun ~public ~msg signature ->
        let pk_a, pk_b = split public in
        match split signature with
        | sig_a, sig_b ->
          classical.verify ~public:pk_a ~msg sig_a
          && pq_alg.verify ~public:pk_b ~msg sig_b
        | exception _ -> false) }

let mocked s =
  if s.mocked then s
  else
    { s with
      mocked = true;
      keygen =
        (fun rng ->
          let public, secret =
            Sim_suites.sig_keygen rng ~pk_len:s.public_key_bytes
          in
          { public; secret });
      sign =
        (fun _rng ~secret msg ->
          Sim_suites.sig_sign ~sk:secret ~msg ~sig_len:s.signature_bytes
            ~pk_len:s.public_key_bytes);
      verify =
        (fun ~public ~msg signature ->
          Sim_suites.sig_verify ~pk:public ~msg signature) }
