(* Sizes for the simulated algorithms are the liboqs 0.8 / NIST-submission
   values the paper's OQS-OpenSSL shipped. *)

let kyber512 = Kem.of_kyber Kyber.kyber512 ~level:1
let kyber768 = Kem.of_kyber Kyber.kyber768 ~level:3
let kyber1024 = Kem.of_kyber Kyber.kyber1024 ~level:5
let kyber90s512 = Kem.of_kyber Kyber.kyber512_90s ~level:1
let kyber90s768 = Kem.of_kyber Kyber.kyber768_90s ~level:3
let kyber90s1024 = Kem.of_kyber Kyber.kyber1024_90s ~level:5
let x25519 = Kem.x25519
let p256 = Kem.of_ec_curve Crypto.Ec.p256 ~name:"p256" ~level:1
let p384 = Kem.of_ec_curve Crypto.Ec.p384 ~name:"p384" ~level:3
let p521 = Kem.of_ec_curve Crypto.Ec.p521 ~name:"p521" ~level:5

let bikel1 =
  Kem.simulated ~name:"bikel1" ~level:1 ~public_key_bytes:1541
    ~ciphertext_bytes:1573 ~shared_secret_bytes:32

let bikel3 =
  Kem.simulated ~name:"bikel3" ~level:3 ~public_key_bytes:3083
    ~ciphertext_bytes:3115 ~shared_secret_bytes:32

let hqc128 =
  Kem.simulated ~name:"hqc128" ~level:1 ~public_key_bytes:2249
    ~ciphertext_bytes:4497 ~shared_secret_bytes:64

let hqc192 =
  Kem.simulated ~name:"hqc192" ~level:3 ~public_key_bytes:4522
    ~ciphertext_bytes:9042 ~shared_secret_bytes:64

let hqc256 =
  Kem.simulated ~name:"hqc256" ~level:5 ~public_key_bytes:7245
    ~ciphertext_bytes:14485 ~shared_secret_bytes:64

let kems =
  [ (* level 1 *)
    x25519; bikel1; hqc128; kyber512; kyber90s512; p256;
    Kem.hybrid p256 bikel1; Kem.hybrid p256 hqc128; Kem.hybrid p256 kyber512;
    (* level 3 *)
    bikel3; hqc192; kyber768; kyber90s768; p384;
    Kem.hybrid p384 bikel3; Kem.hybrid p384 hqc192; Kem.hybrid p384 kyber768;
    (* level 5 *)
    hqc256; kyber1024; kyber90s1024; p521;
    Kem.hybrid p521 hqc256; Kem.hybrid p521 kyber1024 ]

let rsa1024 = Sigalg.rsa ~bits:1024 ~level:0
let rsa2048 = Sigalg.rsa ~bits:2048 ~level:0
let rsa3072 = Sigalg.rsa ~bits:3072 ~level:1
let rsa4096 = Sigalg.rsa ~bits:4096 ~level:1
let ecdsa_p256 = Sigalg.ecdsa Crypto.Ec.p256 ~name:"p256" ~level:1
let ecdsa_p384 = Sigalg.ecdsa Crypto.Ec.p384 ~name:"p384" ~level:3
let ecdsa_p521 = Sigalg.ecdsa Crypto.Ec.p521 ~name:"p521" ~level:5
let dilithium2 = Sigalg.of_dilithium Dilithium.dilithium2 ~level:2
let dilithium3 = Sigalg.of_dilithium Dilithium.dilithium3 ~level:3
let dilithium5 = Sigalg.of_dilithium Dilithium.dilithium5 ~level:5
let dilithium2_aes = Sigalg.of_dilithium Dilithium.dilithium2_aes ~level:2
let dilithium3_aes = Sigalg.of_dilithium Dilithium.dilithium3_aes ~level:3
let dilithium5_aes = Sigalg.of_dilithium Dilithium.dilithium5_aes ~level:5

let falcon512 =
  Sigalg.simulated ~name:"falcon512" ~level:1 ~public_key_bytes:897
    ~signature_bytes:666

let falcon1024 =
  Sigalg.simulated ~name:"falcon1024" ~level:5 ~public_key_bytes:1793
    ~signature_bytes:1280

(* The paper's SPHINCS+ rows are the fastest profile (haraka-Nf-simple);
   our real implementation runs the same parameter sets over SHAKE (see
   Slh) with identical wire sizes, so the table names keep the paper
   spelling. *)
let sphincs128 =
  { (Sigalg.of_slh Slh.sphincs128f ~level:1) with Sigalg.name = "sphincs128" }

let sphincs192 =
  { (Sigalg.of_slh Slh.sphincs192f ~level:3) with Sigalg.name = "sphincs192" }

let sphincs256 =
  { (Sigalg.of_slh Slh.sphincs256f ~level:5) with Sigalg.name = "sphincs256" }

(* the full variant set behind the paper's `all-sphincs` selection run *)
let sphincs_variants =
  [ Sigalg.of_slh Slh.sphincs128f ~level:1;
    Sigalg.of_slh Slh.sphincs128s ~level:1;
    Sigalg.of_slh Slh.sphincs192f ~level:3;
    Sigalg.of_slh Slh.sphincs192s ~level:3;
    Sigalg.of_slh Slh.sphincs256f ~level:5;
    Sigalg.of_slh Slh.sphincs256s ~level:5 ]

let sigs =
  [ rsa1024; rsa2048;
    (* level 1 *)
    falcon512; rsa3072; rsa4096; sphincs128;
    Sigalg.hybrid ecdsa_p256 falcon512; Sigalg.hybrid ecdsa_p256 sphincs128;
    (* level 2 *)
    dilithium2; dilithium2_aes; Sigalg.hybrid ecdsa_p256 dilithium2;
    { (Sigalg.hybrid rsa3072 dilithium2) with Sigalg.name = "rsa3072_dilithium2" }
    (* Table 4b row; the paper spells the RSA component without a colon *);
    (* level 3 *)
    dilithium3; dilithium3_aes; sphincs192;
    Sigalg.hybrid ecdsa_p384 dilithium3; Sigalg.hybrid ecdsa_p384 sphincs192;
    (* level 5 *)
    dilithium5; dilithium5_aes; falcon1024; sphincs256;
    Sigalg.hybrid ecdsa_p521 dilithium5; Sigalg.hybrid ecdsa_p521 falcon1024;
    Sigalg.hybrid ecdsa_p521 sphincs256 ]

let find_kem name =
  match List.find_opt (fun (k : Kem.t) -> k.name = name) kems with
  | Some k -> k
  | None -> raise Not_found

let find_sig name =
  match List.find_opt (fun (s : Sigalg.t) -> s.name = name) sigs with
  | Some s -> s
  | None -> raise Not_found

let baseline_kem = x25519
let baseline_sig = rsa2048

let kem_level (k : Kem.t) = match k.level with 0 | 1 | 2 -> 1 | 3 | 4 -> 3 | _ -> 5
let sig_level (s : Sigalg.t) = match s.level with 0 | 1 | 2 -> 1 | 3 | 4 -> 3 | _ -> 5

let level_group level `Kem =
  List.filter
    (fun (k : Kem.t) -> (not k.hybrid) && kem_level k = level)
    kems

let level_group_sigs level =
  List.filter
    (fun (s : Sigalg.t) ->
      (not s.hybrid) && sig_level s = level
      && (* Fig. 3 keeps a single RSA: rsa:3072 *)
      (match s.name with
      | "rsa:1024" | "rsa:2048" | "rsa:4096" -> false
      | _ -> true))
    sigs
