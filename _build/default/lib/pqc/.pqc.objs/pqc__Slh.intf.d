lib/pqc/slh.mli: Crypto
