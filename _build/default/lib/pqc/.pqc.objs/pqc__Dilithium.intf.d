lib/pqc/dilithium.mli: Crypto
