lib/pqc/registry.ml: Crypto Dilithium Kem Kyber List Sigalg Slh
