lib/pqc/dilithium.ml: Array Bytes Char Crypto Int64 String
