lib/pqc/kyber.ml: Array Bytes Char Crypto String
