lib/pqc/costs.ml: List String
