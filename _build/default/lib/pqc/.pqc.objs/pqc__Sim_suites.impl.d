lib/pqc/sim_suites.ml: Crypto String
