lib/pqc/kem.ml: Char Crypto Kyber Sim_suites String
