lib/pqc/costs.mli:
