lib/pqc/sim_suites.mli: Crypto
