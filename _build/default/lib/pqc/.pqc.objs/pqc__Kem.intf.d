lib/pqc/kem.mli: Crypto Kyber
