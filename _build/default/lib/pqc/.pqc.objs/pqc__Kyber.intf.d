lib/pqc/kyber.mli: Crypto
