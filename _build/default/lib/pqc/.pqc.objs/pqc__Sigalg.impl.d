lib/pqc/sigalg.ml: Char Crypto Dilithium Printf Sim_suites Slh String
