lib/pqc/slh.ml: Array Buffer Bytes Char Crypto Int64 List String
