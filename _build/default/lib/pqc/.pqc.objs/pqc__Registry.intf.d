lib/pqc/registry.mli: Kem Sigalg
