lib/pqc/sigalg.mli: Crypto Dilithium Slh
