(** First-class key-agreement interface.

    TLS 1.3 treats every key agreement — (EC)DH, a PQ KEM, or a hybrid —
    as "client sends a key share, server answers with a key share, both
    derive a shared secret". That is exactly a KEM with the server doing
    encapsulation, so everything here is a KEM:

    - real KEMs (Kyber) are used directly;
    - Diffie-Hellman (X25519, P-256/384/521) is wrapped: encapsulation
      generates an ephemeral keypair and the "ciphertext" is its public
      key;
    - hybrids concatenate public keys, ciphertexts and shared secrets in
      the draft-ietf-tls-hybrid-design fashion. *)

type keypair = { public : string; secret : string }

type t = {
  name : string;  (** paper spelling, e.g. ["p256_kyber512"] *)
  level : int;  (** claimed NIST security level, 1..5 *)
  hybrid : bool;
  pq : bool;  (** has a post-quantum component *)
  mocked : bool;  (** size-exact stand-in implementation (see {!mocked}) *)
  public_key_bytes : int;
  ciphertext_bytes : int;
  shared_secret_bytes : int;
  keygen : Crypto.Drbg.t -> keypair;
  encaps : Crypto.Drbg.t -> string -> string * string;
      (** [encaps rng pk] is [(ciphertext, shared_secret)]. *)
  decaps : string -> string -> string;  (** [decaps secret ct] *)
}

val of_kyber : Kyber.params -> level:int -> t
val x25519 : t
val of_ec_curve : Crypto.Ec.curve -> name:string -> level:int -> t

val simulated :
  name:string ->
  level:int ->
  public_key_bytes:int ->
  ciphertext_bytes:int ->
  shared_secret_bytes:int ->
  t
(** Size-exact simulated KEM (see {!Sim_suites}); functionally a KEM
    (round-trips, detects corruption) but with no security claim. *)

val hybrid : t -> t -> t
(** [hybrid classical pq] concatenates shares and secrets; named
    ["<classical>_<pq>"] as in the paper's tables. *)

val mocked : t -> t
(** A size- and name-identical stand-in whose operations are the cheap
    deterministic {!Sim_suites} ones. Measurement campaigns use mocked
    algorithms so that host time stays flat while every simulated
    quantity (sizes, virtual CPU, latency) is unchanged; the real
    implementations are exercised by the test suite, the examples and
    the microbenchmarks. Idempotent. *)
