(** SPHINCS+ / SLH-DSA, implemented in full: WOTS+ one-time signatures,
    XMSS subtrees, the hypertree, and FORS few-time signatures.

    Instantiation note (documented in DESIGN.md): the paper benchmarks the
    *haraka-simple* profile; Haraka is an AES-round permutation whose only
    role is to be a fast tweakable hash. We instantiate the same parameter
    sets over SHAKE256 ("shake-simple"), which leaves every artifact size
    identical — signature and key sizes depend only on (n, h, d, a, k, w)
    — while the speed difference lives in the calibrated cost table like
    every other algorithm's. Output is therefore not KAT-compatible with
    the haraka profile, but structurally and dimensionally exact. *)

type params

val sphincs128f : params
(** The paper's choice: the fastest profile at level 1 (f = fast). *)

val sphincs192f : params
val sphincs256f : params

val sphincs128s : params
(** s = small: much smaller signatures, much slower signing; used by the
    [all-sphincs] variant-selection experiment. *)

val sphincs192s : params
val sphincs256s : params

val name : params -> string
val public_key_bytes : params -> int
val secret_key_bytes : params -> int
val signature_bytes : params -> int

val keygen : params -> Crypto.Drbg.t -> string * string
val sign : params -> string -> string -> string
(** Deterministic (fixed randomizer), like the reference code's default. *)

val verify : params -> string -> msg:string -> string -> bool
