(** First-class signature-algorithm interface: RSA, ECDSA, Dilithium,
    Falcon, SPHINCS+ and composite (hybrid) combinations, all with the
    paper's Table 2b spellings. *)

type keypair = { public : string; secret : string }

type t = {
  name : string;  (** paper spelling, e.g. ["p256_dilithium2"] *)
  level : int;  (** claimed NIST level; 0 marks sub-level-1 RSA *)
  hybrid : bool;
  pq : bool;
  mocked : bool;  (** size-exact stand-in implementation (see {!mocked}) *)
  public_key_bytes : int;
  signature_bytes : int;
  keygen : Crypto.Drbg.t -> keypair;
  sign : Crypto.Drbg.t -> secret:string -> string -> string;
  verify : public:string -> msg:string -> string -> bool;
}

val rsa : bits:int -> level:int -> t
(** PKCS#1 v1.5 / SHA-256, named ["rsa:<bits>"]. Key generation returns
    the embedded fixed key for the standard sizes (see {!Crypto.Rsa_keys})
    so that experiments do not pay prime search. *)

val ecdsa : Crypto.Ec.curve -> name:string -> level:int -> t

val of_dilithium : Dilithium.params -> level:int -> t

val of_slh : Slh.params -> level:int -> t

val simulated :
  name:string -> level:int -> public_key_bytes:int -> signature_bytes:int -> t
(** Size-exact simulated signature scheme (Falcon, SPHINCS+). *)

val hybrid : t -> t -> t
(** Composite signatures: both components sign; verification requires
    both. Wire format concatenates with a 2-byte split marker. *)

val mocked : t -> t
(** Size- and name-identical {!Sim_suites} stand-in; see {!Kem.mocked}. *)
