(* Deterministic mock KEM/signature with exact artifact sizes.

   KEM construction: sk is a 32-byte seed; pk = XOF(seed, "pk").
   Encapsulation draws 32 random bytes r; the ciphertext is
   [r XOR XOF(pk,"mask")] followed by a deterministic tail bound to
   (pk, r); the shared secret is XOF(pk || r). Decapsulation re-derives
   pk from the seed, recovers r, recomputes the tail and falls back to an
   implicit-rejection secret when it mismatches — mirroring how real FO
   KEMs behave on corrupt input.

   Signature construction: pk = XOF(seed, "pk"); a signature is a 32-byte
   tag = XOF(pk || msg) plus a deterministic tail. Verification recomputes
   both from public data. (Consequently anyone can "sign": these provide
   sizes and behaviour, not security — see the .mli.) *)

let xof label parts len =
  Crypto.Keccak.shake256 ("sim:" ^ label ^ ":" ^ String.concat "|" parts) len

let seed_len = 32

let kem_keygen rng ~pk_len =
  let seed = Crypto.Drbg.generate rng seed_len in
  let pk = xof "kem-pk" [ seed ] pk_len in
  (pk, seed)

let kem_encaps rng ~pk ~ct_len ~ss_len =
  if ct_len < seed_len then invalid_arg "Sim_suites.kem_encaps: ct too short";
  let r = Crypto.Drbg.generate rng seed_len in
  let mask = xof "kem-mask" [ pk ] seed_len in
  let tail = xof "kem-tail" [ pk; r ] (ct_len - seed_len) in
  let ct = Crypto.Bytesx.xor r mask ^ tail in
  let ss = xof "kem-ss" [ pk; r ] ss_len in
  (ct, ss)

let kem_decaps ~sk ~ct ~pk_len ~ss_len =
  let pk = xof "kem-pk" [ sk ] pk_len in
  let mask = xof "kem-mask" [ pk ] seed_len in
  let r = Crypto.Bytesx.xor (String.sub ct 0 seed_len) mask in
  let tail = xof "kem-tail" [ pk; r ] (String.length ct - seed_len) in
  if Crypto.Bytesx.equal_ct tail (String.sub ct seed_len (String.length ct - seed_len))
  then xof "kem-ss" [ pk; r ] ss_len
  else xof "kem-reject" [ sk; ct ] ss_len

let sig_keygen rng ~pk_len =
  let seed = Crypto.Drbg.generate rng seed_len in
  let pk = xof "sig-pk" [ seed ] pk_len in
  (pk, seed)

let sig_sign ~sk ~msg ~sig_len ~pk_len =
  if sig_len < seed_len then invalid_arg "Sim_suites.sig_sign: sig too short";
  let pk = xof "sig-pk" [ sk ] pk_len in
  let tag = xof "sig-tag" [ pk; msg ] seed_len in
  tag ^ xof "sig-tail" [ tag ] (sig_len - seed_len)

let sig_verify ~pk ~msg signature =
  let len = String.length signature in
  len >= seed_len
  &&
  let tag = xof "sig-tag" [ pk; msg ] seed_len in
  Crypto.Bytesx.equal_ct signature (tag ^ xof "sig-tail" [ tag ] (len - seed_len))
