type keypair = { public : string; secret : string }

type t = {
  name : string;
  level : int;
  hybrid : bool;
  pq : bool;
  mocked : bool;
  public_key_bytes : int;
  ciphertext_bytes : int;
  shared_secret_bytes : int;
  keygen : Crypto.Drbg.t -> keypair;
  encaps : Crypto.Drbg.t -> string -> string * string;
  decaps : string -> string -> string;
}

let of_kyber params ~level =
  { name = Kyber.name params;
    level;
    hybrid = false;
    pq = true;
    mocked = false;
    public_key_bytes = Kyber.public_key_bytes params;
    ciphertext_bytes = Kyber.ciphertext_bytes params;
    shared_secret_bytes = Kyber.shared_secret_bytes;
    keygen =
      (fun rng ->
        let public, secret = Kyber.keygen params rng in
        { public; secret });
    encaps = (fun rng pk -> Kyber.encaps params rng pk);
    decaps = (fun secret ct -> Kyber.decaps params secret ct) }

let x25519 =
  { name = "x25519";
    level = 1;
    hybrid = false;
    pq = false;
    mocked = false;
    public_key_bytes = 32;
    ciphertext_bytes = 32;
    shared_secret_bytes = 32;
    keygen =
      (fun rng ->
        let secret = Crypto.Drbg.generate rng 32 in
        { public = Crypto.X25519.public_of_secret secret; secret });
    encaps =
      (fun rng peer_public ->
        let secret = Crypto.Drbg.generate rng 32 in
        let ct = Crypto.X25519.public_of_secret secret in
        (ct, Crypto.X25519.scalar_mult ~scalar:secret ~point:peer_public));
    decaps =
      (fun secret ct -> Crypto.X25519.scalar_mult ~scalar:secret ~point:ct) }

let of_ec_curve curve ~name ~level =
  let point_bytes = 1 + (2 * curve.Crypto.Ec.byte_size) in
  let encode_secret d = Crypto.Bignum.to_bytes_be ~len:curve.Crypto.Ec.byte_size d in
  let decode_point s =
    match Crypto.Ec.decode_point curve s with
    | Some p -> p
    | None -> invalid_arg (name ^ ": invalid point")
  in
  { name;
    level;
    hybrid = false;
    pq = false;
    mocked = false;
    public_key_bytes = point_bytes;
    ciphertext_bytes = point_bytes;
    shared_secret_bytes = curve.Crypto.Ec.byte_size;
    keygen =
      (fun rng ->
        let d, q = Crypto.Ec.gen_keypair curve rng in
        { public = Crypto.Ec.encode_point curve q; secret = encode_secret d });
    encaps =
      (fun rng peer_public ->
        let d, q = Crypto.Ec.gen_keypair curve rng in
        let ss = Crypto.Ec.ecdh curve d (decode_point peer_public) in
        (Crypto.Ec.encode_point curve q, ss));
    decaps =
      (fun secret ct ->
        Crypto.Ec.ecdh curve (Crypto.Bignum.of_bytes_be secret) (decode_point ct)) }

let simulated ~name ~level ~public_key_bytes ~ciphertext_bytes
    ~shared_secret_bytes =
  { name;
    level;
    hybrid = false;
    pq = true;
    mocked = false;
    public_key_bytes;
    ciphertext_bytes;
    shared_secret_bytes;
    keygen =
      (fun rng ->
        let public, secret = Sim_suites.kem_keygen rng ~pk_len:public_key_bytes in
        { public; secret });
    encaps =
      (fun rng pk ->
        Sim_suites.kem_encaps rng ~pk ~ct_len:ciphertext_bytes
          ~ss_len:shared_secret_bytes);
    decaps =
      (fun secret ct ->
        Sim_suites.kem_decaps ~sk:secret ~ct ~pk_len:public_key_bytes
          ~ss_len:shared_secret_bytes) }

(* draft-ietf-tls-hybrid-design: fixed-width concatenation of shares,
   ciphertexts and shared secrets. *)
let hybrid classical pq_kem =
  let split_public s =
    ( String.sub s 0 classical.public_key_bytes,
      String.sub s classical.public_key_bytes pq_kem.public_key_bytes )
  and split_ct s =
    ( String.sub s 0 classical.ciphertext_bytes,
      String.sub s classical.ciphertext_bytes pq_kem.ciphertext_bytes )
  in
  { name = classical.name ^ "_" ^ pq_kem.name;
    level = max classical.level pq_kem.level;
    hybrid = true;
    pq = pq_kem.pq;
    mocked = false;
    public_key_bytes = classical.public_key_bytes + pq_kem.public_key_bytes;
    ciphertext_bytes = classical.ciphertext_bytes + pq_kem.ciphertext_bytes;
    shared_secret_bytes =
      classical.shared_secret_bytes + pq_kem.shared_secret_bytes;
    keygen =
      (fun rng ->
        let a = classical.keygen rng and b = pq_kem.keygen rng in
        { public = a.public ^ b.public;
          secret =
            Crypto.Bytesx.u16_be (String.length a.secret) ^ a.secret ^ b.secret });
    encaps =
      (fun rng pk ->
        let pk_a, pk_b = split_public pk in
        let ct_a, ss_a = classical.encaps rng pk_a in
        let ct_b, ss_b = pq_kem.encaps rng pk_b in
        (ct_a ^ ct_b, ss_a ^ ss_b));
    decaps =
      (fun secret ct ->
        let alen = Char.code secret.[0] lsl 8 lor Char.code secret.[1] in
        let sk_a = String.sub secret 2 alen in
        let sk_b = String.sub secret (2 + alen) (String.length secret - 2 - alen) in
        let ct_a, ct_b = split_ct ct in
        classical.decaps sk_a ct_a ^ pq_kem.decaps sk_b ct_b) }

let mocked k =
  if k.mocked then k
  else
    { k with
      mocked = true;
      keygen =
        (fun rng ->
          let public, secret =
            Sim_suites.kem_keygen rng ~pk_len:k.public_key_bytes
          in
          { public; secret });
      encaps =
        (fun rng pk ->
          Sim_suites.kem_encaps rng ~pk ~ct_len:k.ciphertext_bytes
            ~ss_len:k.shared_secret_bytes);
      decaps =
        (fun secret ct ->
          Sim_suites.kem_decaps ~sk:secret ~ct ~pk_len:k.public_key_bytes
            ~ss_len:k.shared_secret_bytes) }
