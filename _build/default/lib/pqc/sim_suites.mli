(** Deterministic, size-exact stand-ins for the PQ algorithms this project
    does not implement natively (HQC, BIKE, Falcon, SPHINCS+).

    Rationale (see DESIGN.md section 2): the paper's results for these
    algorithms are a function of (a) exact wire sizes, which we take from
    the NIST submissions / liboqs, and (b) CPU cost, which comes from the
    calibration table in {!Costs}. Faithful decoders (BGF for BIKE,
    Reed-Muller/Reed-Solomon for HQC, Falcon's floating-point Gaussian
    sampler) would add thousands of lines without changing a single
    reproduced number, so these stand-ins provide the *functional*
    contract instead: encapsulation/decapsulation round-trip, signatures
    verify, corrupted inputs are rejected, and every artifact has exactly
    the right length. They offer NO security. *)

val kem_keygen :
  Crypto.Drbg.t -> pk_len:int -> (* pk *) string * (* sk *) string

val kem_encaps :
  Crypto.Drbg.t -> pk:string -> ct_len:int -> ss_len:int -> string * string

val kem_decaps : sk:string -> ct:string -> pk_len:int -> ss_len:int -> string
(** Implicit rejection: corrupted ciphertexts give a pseudorandom secret. *)

val sig_keygen : Crypto.Drbg.t -> pk_len:int -> string * string
val sig_sign : sk:string -> msg:string -> sig_len:int -> pk_len:int -> string
val sig_verify : pk:string -> msg:string -> string -> bool
