type t = Crypto.Sha256.ctx

let create () = Crypto.Sha256.init ()
let add t msg = Crypto.Sha256.feed t msg
let current t = Crypto.Sha256.get t
