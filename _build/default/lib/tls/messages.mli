(** TLS 1.3 handshake message codecs (RFC 8446 section 4), carrying the
    fields this study needs and realistic extension framing for the rest
    so that message sizes track a real OpenSSL handshake. *)

type client_hello = {
  random : string;  (** 32 bytes *)
  session_id : string;  (** 32 bytes of compatibility randomness *)
  group : string;  (** offered (and pre-computed) key-share group name *)
  key_share : string;
  sig_algs : string list;
}

type server_hello = {
  sh_random : string;
  sh_session_id : string;
  sh_group : string;
  sh_key_share : string;  (** the KEM ciphertext / server DH share *)
}

type certificate_verify = { cv_algorithm : string; cv_signature : string }

val encode_client_hello : client_hello -> string
(** The full handshake message (header included). *)

val decode_client_hello : string -> client_hello

val encode_server_hello : server_hello -> string
val decode_server_hello : string -> server_hello

val encode_encrypted_extensions : unit -> string
val encode_certificate : Certificate.t -> string
val decode_certificate : string -> Certificate.t

val encode_certificate_verify : certificate_verify -> string
val decode_certificate_verify : string -> certificate_verify

val cv_signed_content : transcript_hash:string -> string
(** The to-be-signed blob of section 4.4.3 (context string + hash). *)

val encode_finished : string -> string
val decode_finished : string -> string

val body : string -> string
(** Strip the 4-byte handshake header. *)

val handshake_type : string -> Wire.Handshake_type.t
