type t = {
  subject : string;
  issuer : string;
  algorithm : string;
  public_key : string;
  tbs_extra : string;
  signature : string;
}

type chain = { leaf : t; ca_public_key : string }

(* serial, validity, SKI/AKI, basicConstraints etc. in a real DER cert *)
let der_overhead = 10

let tbs c =
  Wire.vec8 c.subject ^ Wire.vec8 c.issuer ^ Wire.vec8 c.algorithm
  ^ Wire.vec16 c.public_key ^ Wire.vec8 c.tbs_extra

let make_chain alg rng =
  let ca = alg.Pqc.Sigalg.keygen rng in
  let server = alg.Pqc.Sigalg.keygen rng in
  let leaf =
    { subject = "server.pqtls.example";
      issuer = "ca.pqtls.example";
      algorithm = alg.Pqc.Sigalg.name;
      public_key = server.Pqc.Sigalg.public;
      tbs_extra = String.make der_overhead '\x5a';
      signature = "" }
  in
  let signature = alg.Pqc.Sigalg.sign rng ~secret:ca.Pqc.Sigalg.secret (tbs leaf) in
  ({ leaf = { leaf with signature }; ca_public_key = ca.Pqc.Sigalg.public },
   server)

let encode c = tbs c ^ Wire.vec24 c.signature

let decode s =
  let r = Wire.Reader.of_string s in
  let subject = Wire.Reader.vec8 r in
  let issuer = Wire.Reader.vec8 r in
  let algorithm = Wire.Reader.vec8 r in
  let public_key = Wire.Reader.vec16 r in
  let tbs_extra = Wire.Reader.vec8 r in
  let signature = Wire.Reader.vec24 r in
  Wire.Reader.expect_end r;
  { subject; issuer; algorithm; public_key; tbs_extra; signature }

let verify chain alg =
  alg.Pqc.Sigalg.verify ~public:chain.ca_public_key ~msg:(tbs chain.leaf)
    chain.leaf.signature
