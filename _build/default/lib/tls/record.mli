(** TLS 1.3 record protection (RFC 8446 section 5): AES-128-GCM with
    per-record nonces derived from the write IV and sequence number, and
    the inner-plaintext content-type byte. *)

type t
(** One protection direction (a write or read state). *)

val create : Key_schedule.traffic_keys -> t

val create_null : unit -> t
(** Size-preserving null protection for the measurement campaigns: record
    framing, padding and tag length are exact, but no AES is run, so the
    simulator's host time stays independent of flight size. *)

val seal : t -> Wire.Content_type.t -> string -> string
(** [seal t ty fragment] is a full TLSCiphertext record (header
    included); advances the sequence number. *)

val open_ : t -> string -> (Wire.Content_type.t * string) option
(** Decrypts the body of an application_data record (header excluded);
    [None] on authentication failure. *)

val plaintext_record : Wire.Content_type.t -> string -> string
(** Unprotected record (hello messages, change_cipher_spec). *)
