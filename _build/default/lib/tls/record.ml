type cipher =
  | Gcm of Crypto.Aes_gcm.key * string (* key, iv *)
  | Null
      (* size-preserving stand-in used by the measurement campaigns: the
         16-byte tag is a MAC-less checksum so records keep exact TLS
         sizes without paying AES-GCM host time (see DESIGN.md) *)

type t = { cipher : cipher; mutable seq : int64 }

let create (tk : Key_schedule.traffic_keys) =
  { cipher = Gcm (Crypto.Aes_gcm.of_secret tk.key, tk.iv); seq = 0L }

let create_null () = { cipher = Null; seq = 0L }

let nonce iv seq =
  let padded = String.make 4 '\000' ^ Crypto.Bytesx.u64_be seq in
  Crypto.Bytesx.xor iv padded

let bump t = t.seq <- Int64.add t.seq 1L
let null_tag = String.make Crypto.Aes_gcm.tag_size '\xa5'

let seal t ty fragment =
  let inner = fragment ^ String.make 1 (Char.chr (Wire.Content_type.to_byte ty)) in
  let len = String.length inner + Crypto.Aes_gcm.tag_size in
  let header = "\x17\x03\x03" ^ Crypto.Bytesx.u16_be len in
  let sealed =
    match t.cipher with
    | Gcm (key, iv) -> Crypto.Aes_gcm.seal key ~nonce:(nonce iv t.seq) ~ad:header inner
    | Null -> inner ^ null_tag
  in
  bump t;
  header ^ sealed

let open_ t body =
  let header = "\x17\x03\x03" ^ Crypto.Bytesx.u16_be (String.length body) in
  let opened =
    match t.cipher with
    | Gcm (key, iv) ->
      Crypto.Aes_gcm.open_ key ~nonce:(nonce iv t.seq) ~ad:header body
    | Null ->
      let n = String.length body - Crypto.Aes_gcm.tag_size in
      if n < 0 || String.sub body n Crypto.Aes_gcm.tag_size <> null_tag then None
      else Some (String.sub body 0 n)
  in
  match opened with
  | None -> None
  | Some inner ->
    bump t;
    (* strip zero padding, then the content type byte *)
    let n = ref (String.length inner) in
    while !n > 0 && inner.[!n - 1] = '\000' do
      decr n
    done;
    if !n = 0 then None
    else
      Some
        ( Wire.Content_type.of_byte (Char.code inner.[!n - 1]),
          String.sub inner 0 (!n - 1) )

let plaintext_record = Wire.record
