(** Running transcript hash over handshake messages (RFC 8446 s. 4.4.1). *)

type t

val create : unit -> t
val add : t -> string -> unit
(** Absorb a full handshake message (including its 4-byte header). *)

val current : t -> string
(** Hash of everything absorbed so far; the transcript keeps going. *)
