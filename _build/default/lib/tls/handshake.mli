(** The full simulated TLS 1.3 1-RTT handshake: client and server state
    machines running over simulated TCP, performing the real cryptography
    of the configured KA x SA pair and charging each host the calibrated
    virtual CPU cost of every operation.

    The server reproduces both OpenSSL flight-assembly behaviours from
    the paper (section 4): the stock 4096-byte buffer and the optimized
    push of ServerHello/Certificate. *)

type result = {
  client_finished_at : float;
      (** virtual time at which the client's Finished hit TCP *)
  server_finished_at : float;  (** server validated the client Finished *)
  client_tcp : Netsim.Tcp.t;
  server_tcp : Netsim.Tcp.t;
}

val run :
  engine:Netsim.Engine.t ->
  link:Netsim.Link.t ->
  tcp_config:Netsim.Tcp.config ->
  client_host:Netsim.Host.t ->
  server_host:Netsim.Host.t ->
  config:Config.t ->
  rng:Crypto.Drbg.t ->
  on_done:(result -> unit) ->
  unit
(** Creates a fresh connection, runs one handshake and reports both
    completion times. Raises [Wire.Decode_error] on protocol corruption
    (which a correct simulation never produces). *)
