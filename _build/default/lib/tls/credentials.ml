type t = {
  chain : Certificate.chain;
  server_key : Pqc.Sigalg.keypair;
  alg : Pqc.Sigalg.t;
}

let cache : (string, t) Hashtbl.t = Hashtbl.create 32

let get alg =
  let name =
    alg.Pqc.Sigalg.name ^ if alg.Pqc.Sigalg.mocked then "#mocked" else ""
  in
  match Hashtbl.find_opt cache name with
  | Some c -> c
  | None ->
    let rng = Crypto.Drbg.create ~seed:("credentials/" ^ name) in
    let chain, server_key = Certificate.make_chain alg rng in
    let c = { chain; server_key; alg } in
    Hashtbl.add cache name c;
    c
