(** Server credentials (certificate chain + private key), generated once
    per signature algorithm and cached: the paper pre-provisions one
    certificate per SA, so certificate generation is never part of a
    measured handshake. *)

type t = {
  chain : Certificate.chain;
  server_key : Pqc.Sigalg.keypair;
  alg : Pqc.Sigalg.t;
}

val get : Pqc.Sigalg.t -> t
(** Cached by algorithm name; deterministic (seeded by the name). *)
