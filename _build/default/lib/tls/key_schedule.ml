type secrets = {
  client_handshake_traffic : string;
  server_handshake_traffic : string;
  master : string;
}

let hash = Crypto.Hmac.sha256
let zeros = String.make hash.Crypto.Hmac.digest_size '\000'

let hkdf_expand_label ~secret ~label ~context len =
  let hkdf_label =
    Crypto.Bytesx.u16_be len
    ^ Wire.vec8 ("tls13 " ^ label)
    ^ Wire.vec8 context
  in
  Crypto.Hkdf.expand hash ~prk:secret ~info:hkdf_label len

let derive_secret ~secret ~label ~transcript_hash =
  hkdf_expand_label ~secret ~label ~context:transcript_hash
    hash.Crypto.Hmac.digest_size

let empty_hash = hash.Crypto.Hmac.digest ""

let handshake_secrets ~shared_secret ~hello_transcript_hash =
  let early = Crypto.Hkdf.extract hash ~salt:"" ~ikm:zeros in
  let derived = derive_secret ~secret:early ~label:"derived" ~transcript_hash:empty_hash in
  let hs = Crypto.Hkdf.extract hash ~salt:derived ~ikm:shared_secret in
  let client_handshake_traffic =
    derive_secret ~secret:hs ~label:"c hs traffic"
      ~transcript_hash:hello_transcript_hash
  and server_handshake_traffic =
    derive_secret ~secret:hs ~label:"s hs traffic"
      ~transcript_hash:hello_transcript_hash
  in
  let hs_derived =
    derive_secret ~secret:hs ~label:"derived" ~transcript_hash:empty_hash
  in
  let master = Crypto.Hkdf.extract hash ~salt:hs_derived ~ikm:zeros in
  { client_handshake_traffic; server_handshake_traffic; master }

type traffic_keys = { key : string; iv : string }

let traffic_keys secret =
  { key = hkdf_expand_label ~secret ~label:"key" ~context:"" 16;
    iv = hkdf_expand_label ~secret ~label:"iv" ~context:"" 12 }

let finished_mac ~traffic_secret ~transcript_hash =
  let finished_key =
    hkdf_expand_label ~secret:traffic_secret ~label:"finished" ~context:""
      hash.Crypto.Hmac.digest_size
  in
  Crypto.Hmac.hmac hash ~key:finished_key transcript_hash

let application_secrets ~master ~finished_transcript_hash =
  ( derive_secret ~secret:master ~label:"c ap traffic"
      ~transcript_hash:finished_transcript_hash,
    derive_secret ~secret:master ~label:"s ap traffic"
      ~transcript_hash:finished_transcript_hash )
