lib/tls/certificate.mli: Crypto Pqc
