lib/tls/wire.mli:
