lib/tls/wire.ml: Char Crypto Printf String
