lib/tls/codec.ml: Buffer Char Record String Wire
