lib/tls/transcript.mli:
