lib/tls/config.ml: Pqc
