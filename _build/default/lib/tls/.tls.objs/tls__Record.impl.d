lib/tls/record.ml: Char Crypto Int64 Key_schedule String Wire
