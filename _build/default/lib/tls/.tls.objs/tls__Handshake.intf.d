lib/tls/handshake.mli: Config Crypto Netsim
