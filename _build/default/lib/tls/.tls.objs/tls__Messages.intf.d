lib/tls/messages.mli: Certificate Wire
