lib/tls/messages.ml: Certificate Char Crypto List String Wire
