lib/tls/key_schedule.mli: Crypto
