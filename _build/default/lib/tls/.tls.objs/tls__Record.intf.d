lib/tls/record.mli: Key_schedule Wire
