lib/tls/config.mli: Pqc
