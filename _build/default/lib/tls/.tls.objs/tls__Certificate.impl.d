lib/tls/certificate.ml: Pqc String Wire
