lib/tls/transcript.ml: Crypto
