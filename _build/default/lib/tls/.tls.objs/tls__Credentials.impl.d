lib/tls/credentials.ml: Certificate Crypto Hashtbl Pqc
