lib/tls/key_schedule.ml: Crypto String Wire
