lib/tls/handshake.ml: Buffer Certificate Char Codec Config Credentials Crypto Float Key_schedule List Messages Netsim Option Pqc Printf Record String Transcript Wire
