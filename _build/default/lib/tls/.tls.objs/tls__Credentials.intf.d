lib/tls/credentials.mli: Certificate Pqc
