lib/tls/codec.mli: Record
