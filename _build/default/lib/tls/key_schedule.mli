(** The TLS 1.3 key schedule (RFC 8446 section 7.1) on HKDF-SHA256,
    including HKDF-Expand-Label and the Finished MAC. *)

type secrets = {
  client_handshake_traffic : string;
  server_handshake_traffic : string;
  master : string;
}

val hash : Crypto.Hmac.hash
(** The cipher-suite hash (SHA-256 for TLS_AES_128_GCM_SHA256). *)

val hkdf_expand_label :
  secret:string -> label:string -> context:string -> int -> string

val derive_secret : secret:string -> label:string -> transcript_hash:string -> string

val handshake_secrets :
  shared_secret:string -> hello_transcript_hash:string -> secrets
(** Early secret (no PSK) -> handshake secret -> traffic secrets and the
    master secret, exactly as the RFC's diagram. *)

type traffic_keys = { key : string; iv : string }

val traffic_keys : string -> traffic_keys
(** AEAD key/IV from a traffic secret (AES-128-GCM sizes). *)

val finished_mac : traffic_secret:string -> transcript_hash:string -> string

val application_secrets :
  master:string -> finished_transcript_hash:string -> string * string
(** [(client_app_traffic, server_app_traffic)]. *)
