type buffering = Default_buffered | Optimized_push

type t = {
  kem : Pqc.Kem.t;
  sig_alg : Pqc.Sigalg.t;
  buffering : buffering;
  buffer_limit : int;
  null_records : bool;
  wrong_first_key_share : bool;
}

let make ?(buffering = Optimized_push) ?(buffer_limit = 4096)
    ?(wrong_first_key_share = false) kem sig_alg =
  { kem; sig_alg; buffering; buffer_limit;
    null_records = kem.Pqc.Kem.mocked || sig_alg.Pqc.Sigalg.mocked;
    wrong_first_key_share }

let mocked ?buffering ?buffer_limit ?wrong_first_key_share kem sig_alg =
  make ?buffering ?buffer_limit ?wrong_first_key_share (Pqc.Kem.mocked kem)
    (Pqc.Sigalg.mocked sig_alg)
