(** SHA-512 and SHA-384 (FIPS 180-4), built on [Int64] lanes. *)

type ctx

val init : unit -> ctx
(** SHA-512 context (64-byte output). *)

val init_384 : unit -> ctx
(** SHA-384 context (48-byte output). *)

val feed : ctx -> string -> unit
val get : ctx -> string
val copy : ctx -> ctx

val digest : string -> string
(** One-shot SHA-512. *)

val digest_384 : string -> string
(** One-shot SHA-384. *)
