(** AES-128/192/256 block cipher (FIPS 197) plus CTR keystream.

    Only the forward cipher is provided: every mode used in this project
    (CTR, GCM, and the ML-KEM/ML-DSA "90s"/AES sampling variants) needs
    encryption only. *)

type key

val expand_key : string -> key
(** [expand_key k] accepts 16-, 24- or 32-byte keys.
    @raise Invalid_argument otherwise. *)

val encrypt_block : key -> string -> string
(** [encrypt_block key block] for a 16-byte [block]. *)

val ctr_keystream : key -> nonce:string -> int -> string
(** [ctr_keystream key ~nonce n] generates [n] bytes of CTR keystream.
    [nonce] is up to 16 bytes; it occupies the high-order bytes of the
    counter block and the remaining low-order bytes count up from 0
    (big-endian), matching both NIST CTR-with-96-bit-IV and the AES-CTR
    XOF construction used by Kyber-90s. *)

val ctr_encrypt : key -> nonce:string -> string -> string
(** XOR of the input with [ctr_keystream]. *)
