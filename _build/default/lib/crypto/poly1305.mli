(** Poly1305 one-time authenticator (RFC 8439). *)

val mac : key:string -> string -> string
(** [mac ~key msg] with a 32-byte one-time [key]; 16-byte tag. *)
