(** Short-Weierstrass elliptic curves (y^2 = x^3 + a x + b over F_p):
    the NIST prime curves P-256, P-384 and P-521, with ECDH and ECDSA. *)

type curve = {
  name : string;
  p : Bignum.t;  (** field prime *)
  a : Bignum.t;
  b : Bignum.t;
  gx : Bignum.t;
  gy : Bignum.t;
  n : Bignum.t;  (** group order *)
  byte_size : int;  (** coordinate size in bytes *)
}

val p256 : curve
val p384 : curve
val p521 : curve

type point = Infinity | Affine of Bignum.t * Bignum.t

val on_curve : curve -> point -> bool
val add : curve -> point -> point -> point
val double : curve -> point -> point
val scalar_mult : curve -> Bignum.t -> point -> point
val base_mult : curve -> Bignum.t -> point

val encode_point : curve -> point -> string
(** Uncompressed SEC1 encoding [04 || X || Y].
    @raise Invalid_argument on the point at infinity. *)

val decode_point : curve -> string -> point option
(** Parses an uncompressed point and checks it lies on the curve. *)

val gen_keypair : curve -> Drbg.t -> Bignum.t * point
(** [(d, Q = d*G)] with [d] uniform in [1, n). *)

val ecdh : curve -> Bignum.t -> point -> string
(** Shared secret: the X coordinate of [d * Q], fixed-width. *)

val ecdsa_sign : curve -> Drbg.t -> key:Bignum.t -> digest:string -> string
(** Raw [r || s] signature (fixed width), over a precomputed digest. *)

val ecdsa_verify : curve -> pub:point -> digest:string -> string -> bool
