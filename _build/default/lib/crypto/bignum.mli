(** Arbitrary-precision natural numbers, from scratch.

    Numbers are non-negative; base-2^26 limbs in native [int]s so that all
    intermediate products in multiplication and Knuth division fit 63-bit
    arithmetic. This module backs the RSA, NIST-curve ECDH/ECDSA and
    X25519 implementations. *)

type t

val zero : t
val one : t
val two : t

val of_int : int -> t
(** @raise Invalid_argument on negative input. *)

val to_int : t -> int
(** @raise Failure if the value does not fit in a native int. *)

val of_hex : string -> t
val to_hex : t -> string

val of_bytes_be : string -> t
val to_bytes_be : ?len:int -> t -> string
(** Big-endian encoding; [len] left-pads with zeros.
    @raise Invalid_argument if the value needs more than [len] bytes. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool
val is_even : t -> bool
val bit_length : t -> int
val testbit : t -> int -> bool

val add : t -> t -> t
val sub : t -> t -> t
(** @raise Invalid_argument if the result would be negative. *)

val mul : t -> t -> t
val shift_left : t -> int -> t
val shift_right : t -> int -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(a / b, a mod b)]. @raise Division_by_zero. *)

val rem : t -> t -> t

val mod_add : t -> t -> m:t -> t
val mod_sub : t -> t -> m:t -> t
val mod_mul : t -> t -> m:t -> t
(** Modular helpers; inputs must already be reduced for [mod_add]/
    [mod_sub]. *)

val mod_pow : t -> t -> m:t -> t
(** [mod_pow b e ~m] is [b^e mod m] by square-and-multiply. *)

val mod_inv : t -> m:t -> t
(** Modular inverse by extended Euclid.
    @raise Not_found if not invertible. *)

val gcd : t -> t -> t

val random : Drbg.t -> bits:int -> t
(** Uniform in [0, 2^bits). *)

val random_below : Drbg.t -> t -> t
(** Uniform in [0, n) by rejection. *)

val is_probable_prime : ?rounds:int -> Drbg.t -> t -> bool
(** Trial division by small primes, then Miller-Rabin. *)

val gen_prime : Drbg.t -> bits:int -> t
(** A random probable prime with the top two bits set (so products of two
    such primes have exactly [2*bits] bits, as RSA needs). *)

val pp : Format.formatter -> t -> unit
