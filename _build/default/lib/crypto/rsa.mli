(** RSA key generation and PKCS#1 v1.5 signatures (RFC 8017).

    Key generation uses Miller-Rabin primes from {!Bignum}; signing uses
    the CRT. Only signatures are implemented: TLS 1.3 never uses RSA key
    transport. *)

type pub = { n : Bignum.t; e : Bignum.t }

type priv = {
  pub : pub;
  d : Bignum.t;
  p : Bignum.t;
  q : Bignum.t;
  dp : Bignum.t;
  dq : Bignum.t;
  qinv : Bignum.t;
}

val modulus_bytes : pub -> int

val gen : Drbg.t -> bits:int -> priv
(** Fresh keypair with public exponent 65537. *)

val of_primes : p:Bignum.t -> q:Bignum.t -> priv
(** Builds a keypair from known primes (used for the pre-generated keys in
    {!Rsa_keys}). *)

val sign_pkcs1_sha256 : priv -> string -> string
(** EMSA-PKCS1-v1_5 with SHA-256 over the message; output is modulus-sized. *)

val verify_pkcs1_sha256 : pub -> msg:string -> string -> bool

val encode_pub : pub -> string
(** Compact [len(n) || n || len(e) || e] encoding used inside our
    certificates. *)

val decode_pub : string -> pub option
