module B = Bignum

type pub = { n : B.t; e : B.t }

type priv = {
  pub : pub;
  d : B.t;
  p : B.t;
  q : B.t;
  dp : B.t;
  dq : B.t;
  qinv : B.t;
}

let e65537 = B.of_int 65537
let modulus_bytes pub = (B.bit_length pub.n + 7) / 8

let of_primes ~p ~q =
  let n = B.mul p q in
  let p1 = B.sub p B.one and q1 = B.sub q B.one in
  let phi = B.mul p1 q1 in
  let d = B.mod_inv e65537 ~m:phi in
  { pub = { n; e = e65537 }; d; p; q; dp = B.rem d p1; dq = B.rem d q1;
    qinv = B.mod_inv q ~m:p }

let gen rng ~bits =
  let half = bits / 2 in
  let rec go () =
    let p = B.gen_prime rng ~bits:half in
    let q = B.gen_prime rng ~bits:(bits - half) in
    if B.equal p q then go ()
    else begin
      (* e must be coprime to phi *)
      let phi = B.mul (B.sub p B.one) (B.sub q B.one) in
      if B.equal (B.gcd e65537 phi) B.one then of_primes ~p ~q else go ()
    end
  in
  go ()

(* RSASP1 via CRT: m1 = c^dp mod p, m2 = c^dq mod q,
   h = qinv*(m1-m2) mod p, m = m2 + h*q. *)
let private_op key c =
  let m1 = B.mod_pow c key.dp ~m:key.p in
  let m2 = B.mod_pow c key.dq ~m:key.q in
  let h = B.mod_mul key.qinv (B.mod_sub m1 (B.rem m2 key.p) ~m:key.p) ~m:key.p in
  B.add m2 (B.mul h key.q)

(* DER prefix for a SHA-256 DigestInfo, RFC 8017 section 9.2 note 1. *)
let sha256_digest_info_prefix =
  Bytesx.of_hex "3031300d060960864801650304020105000420"

let emsa_pkcs1_sha256 ~em_len msg =
  let t = sha256_digest_info_prefix ^ Sha256.digest msg in
  let t_len = String.length t in
  if em_len < t_len + 11 then invalid_arg "Rsa: modulus too small";
  "\x00\x01" ^ String.make (em_len - t_len - 3) '\xff' ^ "\x00" ^ t

let sign_pkcs1_sha256 key msg =
  let k = modulus_bytes key.pub in
  let em = emsa_pkcs1_sha256 ~em_len:k msg in
  B.to_bytes_be ~len:k (private_op key (B.of_bytes_be em))

let verify_pkcs1_sha256 pub ~msg signature =
  let k = modulus_bytes pub in
  if String.length signature <> k then false
  else begin
    let s = B.of_bytes_be signature in
    if B.compare s pub.n >= 0 then false
    else begin
      let em = B.to_bytes_be ~len:k (B.mod_pow s pub.e ~m:pub.n) in
      Bytesx.equal_ct em (emsa_pkcs1_sha256 ~em_len:k msg)
    end
  end

let encode_pub pub =
  let n = B.to_bytes_be pub.n and e = B.to_bytes_be pub.e in
  Bytesx.u16_be (String.length n) ^ n ^ Bytesx.u16_be (String.length e) ^ e

let decode_pub s =
  let len = String.length s in
  if len < 4 then None
  else begin
    let nlen = Char.code s.[0] lsl 8 lor Char.code s.[1] in
    if 2 + nlen + 2 > len then None
    else begin
      let n = B.of_bytes_be (String.sub s 2 nlen) in
      let off = 2 + nlen in
      let elen = Char.code s.[off] lsl 8 lor Char.code s.[off + 1] in
      if off + 2 + elen <> len then None
      else Some { n; e = B.of_bytes_be (String.sub s (off + 2) elen) }
    end
  end
