(** ChaCha20-Poly1305 AEAD (RFC 8439 section 2.8). *)

val tag_size : int

val seal : key:string -> nonce:string -> ad:string -> string -> string
(** [seal ~key ~nonce ~ad pt] is ciphertext with the 16-byte tag appended.
    [key] is 32 bytes, [nonce] 12 bytes. *)

val open_ : key:string -> nonce:string -> ad:string -> string -> string option
(** Authenticated decryption; [None] on tag mismatch. *)
