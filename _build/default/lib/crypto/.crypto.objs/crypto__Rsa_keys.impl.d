lib/crypto/rsa_keys.ml: Bignum Drbg Hashtbl List Printf Rsa
