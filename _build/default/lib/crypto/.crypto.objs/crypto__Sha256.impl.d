lib/crypto/sha256.ml: Array Bytes Bytesx Int64 String
