lib/crypto/hmac.mli:
