lib/crypto/aes_gcm.mli:
