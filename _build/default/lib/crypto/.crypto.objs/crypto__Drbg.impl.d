lib/crypto/drbg.ml: Char Keccak String
