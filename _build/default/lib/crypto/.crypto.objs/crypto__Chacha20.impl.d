lib/crypto/chacha20.ml: Array Buffer Bytes Bytesx String
