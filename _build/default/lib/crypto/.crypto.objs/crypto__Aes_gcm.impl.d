lib/crypto/aes_gcm.ml: Aes Buffer Bytes Bytesx Int64 String
