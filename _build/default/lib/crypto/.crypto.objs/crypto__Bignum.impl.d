lib/crypto/bignum.ml: Array Bytes Bytesx Char Drbg Format List Stdlib String
