lib/crypto/aes.mli:
