lib/crypto/sha512.ml: Array Bytes Bytesx Int64 String
