lib/crypto/rsa.ml: Bignum Bytesx Char Sha256 String
