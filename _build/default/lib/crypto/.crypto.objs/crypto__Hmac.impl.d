lib/crypto/hmac.ml: Bytesx Sha256 Sha512 String
