lib/crypto/bytesx.mli: Bytes
