lib/crypto/poly1305.ml: Bytes Bytesx Char String
