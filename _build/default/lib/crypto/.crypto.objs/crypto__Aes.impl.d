lib/crypto/aes.ml: Array Buffer Bytes Bytesx Char String
