lib/crypto/ec.ml: Bignum String
