lib/crypto/keccak.mli:
