lib/crypto/bytesx.ml: Buffer Bytes Char Int64 String
