lib/crypto/keccak.ml: Array Bytes Bytesx Char Int64 String
