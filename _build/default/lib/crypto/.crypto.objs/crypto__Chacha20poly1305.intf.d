lib/crypto/chacha20poly1305.mli:
