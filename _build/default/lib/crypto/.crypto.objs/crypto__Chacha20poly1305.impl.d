lib/crypto/chacha20poly1305.ml: Bytesx Chacha20 Int64 Poly1305 String
