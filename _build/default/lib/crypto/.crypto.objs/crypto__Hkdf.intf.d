lib/crypto/hkdf.mli: Hmac
