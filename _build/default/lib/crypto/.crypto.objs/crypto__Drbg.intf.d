lib/crypto/drbg.mli:
