(** HMAC (RFC 2104) over a pluggable hash. *)

type hash = {
  name : string;
  digest_size : int;
  block_size : int;
  digest : string -> string;
}
(** A one-shot hash description; see {!sha256} and {!sha384}. *)

val sha256 : hash
val sha384 : hash
val sha512 : hash

val hmac : hash -> key:string -> string -> string
(** [hmac h ~key msg] is HMAC-H(key, msg). *)
