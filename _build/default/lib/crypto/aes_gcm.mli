(** AES-GCM AEAD (NIST SP 800-38D) with 96-bit nonces and 16-byte tags. *)

type key

val of_secret : string -> key
(** 16- or 32-byte secret for AES-128-GCM / AES-256-GCM. *)

val seal : key -> nonce:string -> ad:string -> string -> string
(** [seal k ~nonce ~ad plaintext] is ciphertext with the 16-byte tag
    appended. [nonce] must be 12 bytes. *)

val open_ : key -> nonce:string -> ad:string -> string -> string option
(** Authenticated decryption; [None] if the tag does not verify. *)

val tag_size : int
