(** HKDF (RFC 5869): extract-then-expand key derivation. *)

val extract : Hmac.hash -> salt:string -> ikm:string -> string
(** [extract h ~salt ~ikm] is the PRK; an empty [salt] means a string of
    [h.digest_size] zero bytes, per the RFC. *)

val expand : Hmac.hash -> prk:string -> info:string -> int -> string
(** [expand h ~prk ~info len] derives [len] bytes of output keying
    material. @raise Invalid_argument if [len > 255 * digest_size]. *)
