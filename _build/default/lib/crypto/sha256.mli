(** SHA-256 and SHA-224 (FIPS 180-4).

    A streaming context plus one-shot helpers. The implementation uses
    OCaml's native [int] with 32-bit masking, which is safe on 64-bit
    platforms (the only ones this project targets). *)

type ctx
(** Mutable hashing context. *)

val init : unit -> ctx
val init_224 : unit -> ctx
val feed : ctx -> string -> unit
val feed_sub : ctx -> string -> int -> int -> unit
val get : ctx -> string
(** [get ctx] finalizes a copy of [ctx]; [ctx] itself can keep absorbing. *)

val copy : ctx -> ctx

val digest : string -> string
(** One-shot SHA-256; 32-byte output. *)

val digest_224 : string -> string
(** One-shot SHA-224; 28-byte output. *)
