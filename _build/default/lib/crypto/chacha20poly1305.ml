let tag_size = 16

let pad16 s =
  let r = String.length s mod 16 in
  if r = 0 then "" else String.make (16 - r) '\000'

let le64 n = Bytesx.u64_be (Int64.of_int n) |> fun s ->
  String.init 8 (fun i -> s.[7 - i])

let compute_tag ~key ~nonce ~ad c =
  let otk = String.sub (Chacha20.block ~key ~counter:0 ~nonce) 0 32 in
  let data =
    ad ^ pad16 ad ^ c ^ pad16 c ^ le64 (String.length ad)
    ^ le64 (String.length c)
  in
  Poly1305.mac ~key:otk data

let seal ~key ~nonce ~ad pt =
  let c = Chacha20.encrypt ~key ~counter:1 ~nonce pt in
  c ^ compute_tag ~key ~nonce ~ad c

let open_ ~key ~nonce ~ad sealed =
  let n = String.length sealed in
  if n < tag_size then None
  else begin
    let c = String.sub sealed 0 (n - tag_size) in
    let tag = String.sub sealed (n - tag_size) tag_size in
    if Bytesx.equal_ct tag (compute_tag ~key ~nonce ~ad c) then
      Some (Chacha20.encrypt ~key ~counter:1 ~nonce c)
    else None
  end
