module B = Bignum

type curve = {
  name : string;
  p : B.t;
  a : B.t;
  b : B.t;
  gx : B.t;
  gy : B.t;
  n : B.t;
  byte_size : int;
}

let curve name ~p ~b ~gx ~gy ~n ~byte_size =
  let p = B.of_hex p in
  { name; p; a = B.sub p (B.of_int 3); b = B.of_hex b; gx = B.of_hex gx;
    gy = B.of_hex gy; n = B.of_hex n; byte_size }

let p256 =
  curve "P-256" ~byte_size:32
    ~p:"ffffffff00000001000000000000000000000000ffffffffffffffffffffffff"
    ~b:"5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b"
    ~gx:"6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296"
    ~gy:"4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5"
    ~n:"ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551"

let p384 =
  curve "P-384" ~byte_size:48
    ~p:
      "fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe\
       ffffffff0000000000000000ffffffff"
    ~b:
      "b3312fa7e23ee7e4988e056be3f82d19181d9c6efe8141120314088f5013875a\
       c656398d8a2ed19d2a85c8edd3ec2aef"
    ~gx:
      "aa87ca22be8b05378eb1c71ef320ad746e1d3b628ba79b9859f741e082542a38\
       5502f25dbf55296c3a545e3872760ab7"
    ~gy:
      "3617de4a96262c6f5d9e98bf9292dc29f8f41dbd289a147ce9da3113b5f0b8c0\
       0a60b1ce1d7e819d7a431d7c90ea0e5f"
    ~n:
      "ffffffffffffffffffffffffffffffffffffffffffffffffc7634d81f4372ddf\
       581a0db248b0a77aecec196accc52973"

let p521 =
  curve "P-521" ~byte_size:66
    ~p:
      "01ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff\
       ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff\
       ffff"
    ~b:
      "0051953eb9618e1c9a1f929a21a0b68540eea2da725b99b315f3b8b489918ef1\
       09e156193951ec7e937b1652c0bd3bb1bf073573df883d2c34f1ef451fd46b50\
       3f00"
    ~gx:
      "00c6858e06b70404e9cd9e3ecb662395b4429c648139053fb521f828af606b4d\
       3dbaa14b5e77efe75928fe1dc127a2ffa8de3348b3c1856a429bf97e7e31c2e5\
       bd66"
    ~gy:
      "011839296a789a3bc0045c8a5fb42c7d1bd998f54449579b446817afbd17273e\
       662c97ee72995ef42640c550b9013fad0761353c7086a272c24088be94769fd1\
       6650"
    ~n:
      "01ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff\
       fffa51868783bf2f966b7fcc0148f709a5d03bb5c9b8899c47aebb6fb71e9138\
       6409"

type point = Infinity | Affine of B.t * B.t

let on_curve c = function
  | Infinity -> true
  | Affine (x, y) ->
    let lhs = B.mod_mul y y ~m:c.p in
    let x2 = B.mod_mul x x ~m:c.p in
    let x3 = B.mod_mul x2 x ~m:c.p in
    let rhs = B.mod_add (B.mod_add x3 (B.mod_mul c.a x ~m:c.p) ~m:c.p) c.b ~m:c.p in
    B.equal lhs rhs

let double c pt =
  match pt with
  | Infinity -> Infinity
  | Affine (_, y) when B.is_zero y -> Infinity
  | Affine (x, y) ->
    let m = c.p in
    let three_x2 = B.mod_mul (B.of_int 3) (B.mod_mul x x ~m) ~m in
    let num = B.mod_add three_x2 c.a ~m in
    let den = B.mod_inv (B.mod_mul B.two y ~m) ~m in
    let s = B.mod_mul num den ~m in
    let x' = B.mod_sub (B.mod_mul s s ~m) (B.mod_add x x ~m) ~m in
    let y' = B.mod_sub (B.mod_mul s (B.mod_sub x x' ~m) ~m) y ~m in
    Affine (x', y')

let add c p1 p2 =
  match (p1, p2) with
  | Infinity, q | q, Infinity -> q
  | Affine (x1, y1), Affine (x2, y2) ->
    if B.equal x1 x2 then
      if B.equal y1 y2 then double c p1 else Infinity
    else begin
      let m = c.p in
      let s =
        B.mod_mul (B.mod_sub y2 y1 ~m) (B.mod_inv (B.mod_sub x2 x1 ~m) ~m) ~m
      in
      let x3 = B.mod_sub (B.mod_sub (B.mod_mul s s ~m) x1 ~m) x2 ~m in
      let y3 = B.mod_sub (B.mod_mul s (B.mod_sub x1 x3 ~m) ~m) y1 ~m in
      Affine (x3, y3)
    end

let scalar_mult c k pt =
  let acc = ref Infinity and base = ref pt in
  let bits = B.bit_length k in
  for i = 0 to bits - 1 do
    if B.testbit k i then acc := add c !acc !base;
    if i < bits - 1 then base := double c !base
  done;
  !acc

let base_mult c k = scalar_mult c k (Affine (c.gx, c.gy))

let encode_point c = function
  | Infinity -> invalid_arg "Ec.encode_point: infinity"
  | Affine (x, y) ->
    "\x04"
    ^ B.to_bytes_be ~len:c.byte_size x
    ^ B.to_bytes_be ~len:c.byte_size y

let decode_point c s =
  let sz = c.byte_size in
  if String.length s <> 1 + (2 * sz) || s.[0] <> '\x04' then None
  else begin
    let x = B.of_bytes_be (String.sub s 1 sz) in
    let y = B.of_bytes_be (String.sub s (1 + sz) sz) in
    let pt = Affine (x, y) in
    if on_curve c pt then Some pt else None
  end

let gen_keypair c rng =
  let d = B.add B.one (B.random_below rng (B.sub c.n B.one)) in
  (d, base_mult c d)

let ecdh c d q =
  match scalar_mult c d q with
  | Infinity -> invalid_arg "Ec.ecdh: degenerate shared point"
  | Affine (x, _) -> B.to_bytes_be ~len:c.byte_size x

(* digest -> integer, truncated to the order's bit length per FIPS 186 *)
let bits_of_digest c digest =
  let e = B.of_bytes_be digest in
  let dbits = 8 * String.length digest and nbits = B.bit_length c.n in
  if dbits > nbits then B.shift_right e (dbits - nbits) else e

let ecdsa_sign c rng ~key ~digest =
  let z = B.rem (bits_of_digest c digest) c.n in
  let rec go () =
    let k = B.add B.one (B.random_below rng (B.sub c.n B.one)) in
    match base_mult c k with
    | Infinity -> go ()
    | Affine (x, _) ->
      let r = B.rem x c.n in
      if B.is_zero r then go ()
      else begin
        let kinv = B.mod_inv k ~m:c.n in
        let s = B.mod_mul kinv (B.mod_add z (B.mod_mul r key ~m:c.n) ~m:c.n) ~m:c.n in
        if B.is_zero s then go ()
        else B.to_bytes_be ~len:c.byte_size r ^ B.to_bytes_be ~len:c.byte_size s
      end
  in
  go ()

let ecdsa_verify c ~pub ~digest signature =
  let sz = c.byte_size in
  if String.length signature <> 2 * sz then false
  else begin
    let r = B.of_bytes_be (String.sub signature 0 sz) in
    let s = B.of_bytes_be (String.sub signature sz sz) in
    let in_range v = not (B.is_zero v) && B.compare v c.n < 0 in
    if not (in_range r && in_range s) then false
    else begin
      let z = B.rem (bits_of_digest c digest) c.n in
      let w = B.mod_inv s ~m:c.n in
      let u1 = B.mod_mul z w ~m:c.n and u2 = B.mod_mul r w ~m:c.n in
      match add c (base_mult c u1) (scalar_mult c u2 pub) with
      | Infinity -> false
      | Affine (x, _) -> B.equal (B.rem x c.n) r
    end
  end
