(** ChaCha20 stream cipher (RFC 8439). *)

val block : key:string -> counter:int -> nonce:string -> string
(** One 64-byte keystream block. [key] is 32 bytes, [nonce] 12 bytes. *)

val encrypt : key:string -> counter:int -> nonce:string -> string -> string
(** XOR the message with the keystream starting at block [counter]. *)
