type hash = {
  name : string;
  digest_size : int;
  block_size : int;
  digest : string -> string;
}

let sha256 =
  { name = "SHA-256"; digest_size = 32; block_size = 64;
    digest = Sha256.digest }

let sha384 =
  { name = "SHA-384"; digest_size = 48; block_size = 128;
    digest = Sha512.digest_384 }

let sha512 =
  { name = "SHA-512"; digest_size = 64; block_size = 128;
    digest = Sha512.digest }

let hmac h ~key msg =
  let key =
    if String.length key > h.block_size then h.digest key else key
  in
  let key = key ^ String.make (h.block_size - String.length key) '\000' in
  let ipad = Bytesx.xor key (String.make h.block_size '\x36') in
  let opad = Bytesx.xor key (String.make h.block_size '\x5c') in
  h.digest (opad ^ h.digest (ipad ^ msg))
