(** Byte-string utilities shared by every primitive in this library.

    All values are immutable [string]s used as byte vectors; the helpers
    here cover hex conversion, integer load/store in both endiannesses,
    XOR, and constant-time comparison. *)

val to_hex : string -> string
(** [to_hex s] is the lowercase hexadecimal rendering of [s]. *)

val of_hex : string -> string
(** [of_hex h] parses a hex string (whitespace allowed).
    @raise Invalid_argument on odd length or non-hex characters. *)

val xor : string -> string -> string
(** [xor a b] is the byte-wise XOR of two equal-length strings.
    @raise Invalid_argument if lengths differ. *)

val equal_ct : string -> string -> bool
(** Constant-time equality: scans both inputs fully before deciding. *)

val get_u32_be : string -> int -> int
val get_u32_le : string -> int -> int
val get_u64_be : string -> int -> int64
val get_u64_le : string -> int -> int64

val set_u32_be : Bytes.t -> int -> int -> unit
val set_u32_le : Bytes.t -> int -> int -> unit
val set_u64_be : Bytes.t -> int -> int64 -> unit
val set_u64_le : Bytes.t -> int -> int64 -> unit

val u16_be : int -> string
val u24_be : int -> string
val u32_be : int -> string
val u64_be : int64 -> string
(** Big-endian encodings of small integers as fresh strings. *)

val concat : string list -> string
(** Alias of [String.concat ""]. *)

val repeat : char -> int -> string
(** [repeat c n] is [n] copies of [c]. *)

val sub : string -> int -> int -> string
(** [sub s off len] with the usual bounds checks. *)
