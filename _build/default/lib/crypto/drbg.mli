(** Deterministic random byte generator backed by SHAKE256.

    Every source of randomness in the project flows through a [Drbg.t] so
    that experiments are exactly reproducible from a seed, mirroring the
    paper's emphasis on repeatable measurement campaigns. *)

type t

val create : seed:string -> t
(** Domain-separated generator; distinct seeds give independent streams. *)

val generate : t -> int -> string
(** [generate t n] produces the next [n] bytes. *)

val byte : t -> int
(** Next byte as 0..255. *)

val uniform : t -> int -> int
(** [uniform t n] is a uniform integer in [0, n) (rejection sampled).
    @raise Invalid_argument if [n <= 0]. *)

val float : t -> float
(** Uniform float in [0, 1). *)

val fork : t -> string -> t
(** [fork t label] derives an independent child generator; the parent
    stream is not consumed. *)
