(** X25519 Diffie-Hellman (RFC 7748). *)

val key_size : int
(** 32 bytes for scalars, public keys and shared secrets. *)

val base_point : string
(** The canonical u = 9 base point encoding. *)

val scalar_mult : scalar:string -> point:string -> string
(** [scalar_mult ~scalar ~point] is X25519(k, u); both arguments and the
    result are 32-byte little-endian strings. The scalar is clamped as the
    RFC requires. *)

val public_of_secret : string -> string
(** [scalar_mult ~scalar ~point:base_point]. *)
