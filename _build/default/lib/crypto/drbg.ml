type t = { seed : string; xof : Keccak.Xof.t }

let create ~seed = { seed; xof = Keccak.Xof.shake256 ("drbg:" ^ seed) }
let generate t n = Keccak.Xof.squeeze t.xof n
let byte t = Char.code (generate t 1).[0]

let uniform t n =
  if n <= 0 then invalid_arg "Drbg.uniform";
  if n = 1 then 0
  else begin
    (* sample 30-bit words, reject above the largest multiple of n *)
    let bound = 1 lsl 30 in
    let limit = bound - (bound mod n) in
    let rec go () =
      let b = generate t 4 in
      let v =
        (Char.code b.[0] lsl 22) lor (Char.code b.[1] lsl 14)
        lor (Char.code b.[2] lsl 6) lor (Char.code b.[3] lsr 2)
      in
      if v < limit then v mod n else go ()
    in
    go ()
  end

let float t =
  let b = generate t 7 in
  let acc = ref 0 in
  for i = 0 to 6 do
    acc := (!acc lsl 8) lor Char.code b.[i]
  done;
  (* 53 random bits *)
  float_of_int (!acc lsr 3) /. 9007199254740992.0

let fork t label = create ~seed:(t.seed ^ "/" ^ label)
