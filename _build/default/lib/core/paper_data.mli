(** The paper's published numbers (Tables 2 and 4), embedded for
    side-by-side comparison in reports, EXPERIMENTS.md and the
    calibration tests. *)

type t2_row = {
  alg : string;
  part_a : float;  (** ms *)
  part_b : float;
  total_k : float;  (** thousands of handshakes per 60 s *)
  client_b : int;
  server_b : int;
}

val table2a : t2_row list
(** KAs paired with rsa:2048. *)

val table2b : t2_row list
(** SAs paired with x25519. *)

val find2a : string -> t2_row option
val find2b : string -> t2_row option

type t4_row = {
  t4_alg : string;
  none : float;
  loss : float;
  bandwidth : float;
  delay : float;
  lte_m : float;
  five_g : float;
}

val table4a : t4_row list
val table4b : t4_row list
val find4a : string -> t4_row option
val find4b : string -> t4_row option
