type t = { name : string; label : string; netem : Netsim.Link.netem }

let base = Netsim.Link.ideal

let no_emulation = { name = "none"; label = "No Emulation"; netem = base }

(* netem ran on one egress in the testbed: loss hits the downstream
   (server -> client) path, which carries nearly all handshake bytes *)
let high_loss =
  { name = "loss"; label = "High Loss (10%)";
    netem = { base with loss = 0.10; loss_towards = Some "client" } }

let low_bandwidth =
  { name = "bandwidth"; label = "Low Bandwidth (1 Mbit/s)";
    netem = { base with rate_bps = 1e6 } }

let high_delay =
  { name = "delay"; label = "High Delay (1s RTT)";
    netem = { base with delay_s = 0.5 } }

let lte_m =
  { name = "lte-m"; label = "LTE-M";
    netem =
      { loss = 0.10; loss_towards = Some "client"; delay_s = 0.1;
        jitter_s = 0.; rate_bps = 1e6 } }

let five_g =
  { name = "5g"; label = "5G";
    netem =
      { loss = 0.04; loss_towards = Some "client"; delay_s = 0.022;
        jitter_s = 0.; rate_bps = 880e6 } }

let all = [ no_emulation; high_loss; low_bandwidth; high_delay; lte_m; five_g ]

let find name =
  match List.find_opt (fun s -> s.name = name) all with
  | Some s -> s
  | None -> invalid_arg ("Scenario.find: unknown scenario " ^ name)
