type cell = {
  kem : string;
  sa : string;
  measured_ms : float;
  expected_ms : float;
  deviation_ms : float;
}

type grid = {
  level : int;
  buffering : Tls.Config.buffering;
  cells : cell list;
}

let total outcome = Experiment.median_of (fun s -> s.Experiment.total_ms) outcome

let analyze ?(buffering = Tls.Config.Optimized_push) ?(seed = "deviation") level =
  let kems = Pqc.Registry.level_group level `Kem in
  let sigs = Pqc.Registry.level_group_sigs level in
  let baseline_kem = Pqc.Registry.baseline_kem in
  let baseline_sig = Pqc.Registry.baseline_sig in
  let measure k s = total (Experiment.run ~buffering ~seed k s) in
  let m_base = measure baseline_kem baseline_sig in
  let m_kem =
    List.map (fun k -> (k.Pqc.Kem.name, measure k baseline_sig)) kems
  in
  let m_sig =
    List.map (fun s -> (s.Pqc.Sigalg.name, measure baseline_kem s)) sigs
  in
  let cells =
    List.concat_map
      (fun k ->
        List.map
          (fun s ->
            let measured = measure k s in
            let expected =
              List.assoc k.Pqc.Kem.name m_kem
              +. List.assoc s.Pqc.Sigalg.name m_sig
              -. m_base
            in
            { kem = k.Pqc.Kem.name;
              sa = s.Pqc.Sigalg.name;
              measured_ms = measured;
              expected_ms = expected;
              deviation_ms = expected -. measured })
          sigs)
      kems
  in
  { level; buffering; cells }

let improvement ~optimized ~default =
  List.filter_map
    (fun c ->
      match
        List.find_opt
          (fun d -> d.kem = c.kem && d.sa = c.sa)
          default.cells
      with
      | Some d -> Some (c.kem, c.sa, d.measured_ms -. c.measured_ms)
      | None -> None)
    optimized.cells
