(** Small numeric helpers used by every evaluation. *)

val median : float list -> float
(** @raise Invalid_argument on the empty list. *)

val mean : float list -> float
val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [0,1], linear interpolation. *)

val min_max : float list -> float * float
val median_int : int list -> float
