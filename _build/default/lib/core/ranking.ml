type entry = { name : string; latency_ms : float; rank : int }

let rank latencies =
  match latencies with
  | [] -> []
  | _ ->
    let logs = List.map (fun (n, l) -> (n, Float.log l)) latencies in
    let lo, hi = Stats.min_max (List.map snd logs) in
    let scale v =
      if hi -. lo < 1e-9 then 0
      else int_of_float (Float.round (10. *. (v -. lo) /. (hi -. lo)))
    in
    logs
    |> List.map (fun (n, v) ->
           { name = n;
             latency_ms = Float.exp v;
             rank = scale v })
    |> List.sort (fun a b -> compare (a.rank, a.latency_ms) (b.rank, b.latency_ms))

let total o = Experiment.median_of (fun s -> s.Experiment.total_ms) o
let of_outcomes outcomes = rank (List.map (fun (n, o) -> (n, total o)) outcomes)
let kem_ranking = of_outcomes
let sig_ranking = of_outcomes
