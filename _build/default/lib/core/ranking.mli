(** Figure 4: algorithms ranked by a [0,10] log-scale of their median
    handshake latency (0 = fastest). *)

type entry = { name : string; latency_ms : float; rank : int }

val rank : (string * float) list -> entry list
(** [rank latencies] applies the paper's recipe: log, linear rescale to
    [0, 10], round; sorted fastest first. *)

val kem_ranking : (string * Experiment.outcome) list -> entry list
val sig_ranking : (string * Experiment.outcome) list -> entry list
