(** The experiment naming schema of Appendix B.6: each name maps to the
    campaign that the paper's `experiment.py` would run, rendered as a
    report string. *)

val names : string list
(** [all-kem], [all-sig], [level1|3|5], [level1|3|5-nopush],
    [level1|3|5-perf], [all-kem-scenarios], [all-sig-scenarios],
    [attack], [ablation-buffer], [ablation-cwnd]. *)

val run : ?seed:string -> string -> string
(** @raise Invalid_argument for unknown names. *)

val describe : string -> string
