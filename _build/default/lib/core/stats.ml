let percentile p xs =
  match List.sort Float.compare xs with
  | [] -> invalid_arg "Stats.percentile: empty"
  | sorted ->
    let a = Array.of_list sorted in
    let n = Array.length a in
    if n = 1 then a.(0)
    else begin
      let pos = p *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor pos) in
      let hi = min (n - 1) (lo + 1) in
      let frac = pos -. float_of_int lo in
      a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
    end

let median xs = percentile 0.5 xs

let mean = function
  | [] -> invalid_arg "Stats.mean: empty"
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let min_max = function
  | [] -> invalid_arg "Stats.min_max: empty"
  | x :: rest ->
    List.fold_left (fun (lo, hi) v -> (Float.min lo v, Float.max hi v)) (x, x) rest

let median_int xs = median (List.map float_of_int xs)
