(** The emulated network conditions of section 5.4 / Table 4. *)

type t = {
  name : string;  (** short id used in experiment names *)
  label : string;  (** table column heading *)
  netem : Netsim.Link.netem;
}

val no_emulation : t

(** 10 % loss per direction. *)
val high_loss : t

(** 1 Mbit/s. *)
val low_bandwidth : t

(** 1 s RTT. *)
val high_delay : t

(** 10 % loss, 200 ms RTT, 1 Mbit/s (ref [11] of the paper, 15 km). *)
val lte_m : t

(** 4 % loss, 44 ms RTT, 880 Mbit/s (ref [34] of the paper). *)
val five_g : t

val all : t list
(** Table 4 column order. *)

val find : string -> t
