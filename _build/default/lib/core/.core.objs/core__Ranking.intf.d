lib/core/ranking.mli: Experiment
