lib/core/report.ml: Amplification Buffer Deviation Experiment Float List Netsim Option Paper_data Pqc Printf Ranking Scenario Stats String Tls Whitebox
