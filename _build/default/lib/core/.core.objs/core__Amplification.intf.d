lib/core/amplification.mli: Pqc
