lib/core/whitebox.ml: Experiment List Pqc Stats
