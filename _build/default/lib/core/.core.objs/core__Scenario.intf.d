lib/core/scenario.mli: Netsim
