lib/core/catalog.ml: Buffer Deviation Experiment Float List Pqc Printf Report Stats Tls Whitebox
