lib/core/amplification.ml: Experiment Float List Pqc Stats Whitebox
