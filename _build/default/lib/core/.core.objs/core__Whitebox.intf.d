lib/core/whitebox.mli:
