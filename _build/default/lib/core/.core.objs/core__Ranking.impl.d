lib/core/ranking.ml: Experiment Float List Stats
