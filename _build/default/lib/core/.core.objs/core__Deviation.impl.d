lib/core/deviation.ml: Experiment List Pqc Tls
