lib/core/deviation.mli: Tls
