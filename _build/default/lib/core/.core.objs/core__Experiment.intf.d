lib/core/experiment.mli: Netsim Pqc Scenario Tls
