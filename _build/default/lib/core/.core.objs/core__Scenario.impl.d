lib/core/scenario.ml: List Netsim
