lib/core/report.mli:
