lib/core/experiment.ml: Crypto List Netsim Pqc Printf Scenario Stats Tls
