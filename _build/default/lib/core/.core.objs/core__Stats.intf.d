lib/core/stats.mli:
