lib/core/catalog.mli:
