type row = {
  kem : string;
  sa : string;
  cpu_ratio : float;
  amplification : float;
}

let quic_limit = 3.0

let measure ?(seed = "attack") kem sa =
  let o = Experiment.run ~seed kem sa in
  let med f = Stats.median_int (List.map f o.Experiment.samples) in
  { kem = kem.Pqc.Kem.name;
    sa = sa.Pqc.Sigalg.name;
    cpu_ratio = o.Experiment.server_cpu_ms /. o.Experiment.client_cpu_ms;
    amplification =
      med (fun s -> s.Experiment.server_bytes)
      /. med (fun s -> s.Experiment.client_bytes) }

let survey ?seed () =
  let sa_rows =
    List.map
      (fun sa -> measure ?seed Pqc.Registry.baseline_kem sa)
      Pqc.Registry.sigs
  in
  let pair_rows =
    List.map
      (fun (_, k, s) ->
        measure ?seed (Pqc.Registry.find_kem k) (Pqc.Registry.find_sig s))
      Whitebox.paper_pairs
  in
  List.sort
    (fun a b -> Float.compare b.amplification a.amplification)
    (sa_rows @ pair_rows)

let worst_by f = function
  | [] -> invalid_arg "Amplification: empty survey"
  | hd :: tl ->
    List.fold_left (fun best r -> if f r > f best then r else best) hd tl

let worst_amplification rows = worst_by (fun r -> r.amplification) rows
let worst_cpu_ratio rows = worst_by (fun r -> r.cpu_ratio) rows
