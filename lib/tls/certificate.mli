(** A minimal X.509-shaped certificate: a TBS blob (names, validity,
    serial, the subject public key) signed by an issuer. Field framing
    plus a fixed DER-overhead pad keep encoded sizes close to what
    OpenSSL emits for the same key/signature algorithm. *)

type t = {
  subject : string;
  issuer : string;
  algorithm : string;  (** signature algorithm name, paper spelling *)
  public_key : string;
  tbs_extra : string;  (** serial/validity/extensions stand-in *)
  signature : string;
}

type chain = { leaf : t; ca_public_key : string }

val make_chain : Pqc.Sigalg.t -> Crypto.Drbg.t -> chain * Pqc.Sigalg.keypair
(** Builds a CA keypair and a leaf certificate for a fresh server keypair,
    both using the given algorithm (the paper's per-SA certificates).
    Returns the chain and the server's keypair. *)

val encode : t -> string
val decode : string -> t

val verify : chain -> Pqc.Sigalg.t -> bool
(** Check the leaf signature against the CA public key. *)

val tbs : t -> string
(** The signed portion, for verification. *)

val der_overhead : int
(** Byte count of the serial/validity/extensions stand-in pad. *)
