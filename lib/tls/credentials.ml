type t = {
  chain : Chain.t;
  server_key : Pqc.Sigalg.keypair;
  alg : Pqc.Sigalg.t;
  profile : Chain_profile.t;
}

let cache : (string, t) Hashtbl.t =
  Hashtbl.create 32
[@@lint.allow "S1" "every access goes through cache_lock below"]

(* the cache is shared across domains when campaigns run in parallel;
   generation is deterministic, so holding the lock while generating
   only serializes the first request per algorithm x profile *)
let cache_lock = Mutex.create ()

let cache_key ~profile alg =
  (* the default profile keeps the pre-chain key (and thus the pre-chain
     DRBG seed) so existing fingerprints and artifacts stay identical *)
  alg.Pqc.Sigalg.name
  ^ (if alg.Pqc.Sigalg.mocked then "#mocked" else "")
  ^
  if Chain_profile.is_default profile then ""
  else "@" ^ profile.Chain_profile.name

let get ?(profile = Chain_profile.default) alg =
  let key = cache_key ~profile alg in
  Mutex.protect cache_lock (fun () ->
      match Hashtbl.find_opt cache key with
      | Some c -> c
      | None ->
        let rng = Crypto.Drbg.create ~seed:("credentials/" ^ key) in
        let chain, server_key = Chain.make profile ~leaf:alg rng in
        let c = { chain; server_key; alg; profile } in
        Hashtbl.add cache key c;
        c)
