type t = {
  chain : Certificate.chain;
  server_key : Pqc.Sigalg.keypair;
  alg : Pqc.Sigalg.t;
}

let cache : (string, t) Hashtbl.t =
  Hashtbl.create 32
[@@lint.allow "S1" "every access goes through cache_lock below"]

(* the cache is shared across domains when campaigns run in parallel;
   generation is deterministic, so holding the lock while generating
   only serializes the first request per algorithm *)
let cache_lock = Mutex.create ()

let get alg =
  let name =
    alg.Pqc.Sigalg.name ^ if alg.Pqc.Sigalg.mocked then "#mocked" else ""
  in
  Mutex.protect cache_lock (fun () ->
      match Hashtbl.find_opt cache name with
      | Some c -> c
      | None ->
        let rng = Crypto.Drbg.create ~seed:("credentials/" ^ name) in
        let chain, server_key = Certificate.make_chain alg rng in
        let c = { chain; server_key; alg } in
        Hashtbl.add cache name c;
        c)
