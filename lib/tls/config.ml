type buffering = Default_buffered | Optimized_push

type t = {
  kem : Pqc.Kem.t;
  sig_alg : Pqc.Sigalg.t;
  buffering : buffering;
  buffer_limit : int;
  null_records : bool;
  wrong_first_key_share : bool;
  chain_profile : Chain_profile.t;
}

let make ?(buffering = Optimized_push) ?(buffer_limit = 4096)
    ?(wrong_first_key_share = false) ?(chain_profile = Chain_profile.default)
    kem sig_alg =
  { kem; sig_alg; buffering; buffer_limit;
    null_records = kem.Pqc.Kem.mocked || sig_alg.Pqc.Sigalg.mocked;
    wrong_first_key_share; chain_profile }

let mocked ?buffering ?buffer_limit ?wrong_first_key_share ?chain_profile kem
    sig_alg =
  make ?buffering ?buffer_limit ?wrong_first_key_share ?chain_profile
    (Pqc.Kem.mocked kem)
    (Pqc.Sigalg.mocked sig_alg)
