exception Decode_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Decode_error s)) fmt

module B = Crypto.Bytesx

let vec8 s =
  if String.length s > 0xff then fail "vec8 overflow";
  String.make 1 (Char.chr (String.length s)) ^ s

let vec16 s =
  if String.length s > 0xffff then fail "vec16 overflow";
  B.u16_be (String.length s) ^ s

let vec24 s =
  if String.length s > 0xffffff then fail "vec24 overflow";
  B.u24_be (String.length s) ^ s

module Content_type = struct
  type t = Change_cipher_spec | Alert | Handshake | Application_data

  let to_byte = function
    | Change_cipher_spec -> 20
    | Alert -> 21
    | Handshake -> 22
    | Application_data -> 23

  let of_byte = function
    | 20 -> Change_cipher_spec
    | 21 -> Alert
    | 22 -> Handshake
    | 23 -> Application_data
    | b -> fail "unknown content type %d" b
end

let record ct body =
  String.make 1 (Char.chr (Content_type.to_byte ct))
  ^ "\x03\x03" ^ B.u16_be (String.length body) ^ body

module Handshake_type = struct
  type t =
    | Client_hello
    | Server_hello
    | New_session_ticket
    | End_of_early_data
    | Encrypted_extensions
    | Certificate
    | Certificate_verify
    | Finished

  let to_byte = function
    | Client_hello -> 1
    | Server_hello -> 2
    | New_session_ticket -> 4
    | End_of_early_data -> 5
    | Encrypted_extensions -> 8
    | Certificate -> 11
    | Certificate_verify -> 15
    | Finished -> 20

  let of_byte = function
    | 1 -> Client_hello
    | 2 -> Server_hello
    | 4 -> New_session_ticket
    | 5 -> End_of_early_data
    | 8 -> Encrypted_extensions
    | 11 -> Certificate
    | 15 -> Certificate_verify
    | 20 -> Finished
    | b -> fail "unknown handshake type %d" b

  let label = function
    | Client_hello -> "CH"
    | Server_hello -> "SH"
    | New_session_ticket -> "NST"
    | End_of_early_data -> "EOED"
    | Encrypted_extensions -> "EE"
    | Certificate -> "CERT"
    | Certificate_verify -> "CV"
    | Finished -> "FIN"
end

let handshake ty body =
  String.make 1 (Char.chr (Handshake_type.to_byte ty))
  ^ B.u24_be (String.length body) ^ body

module Reader = struct
  type t = { data : string; mutable pos : int }

  let of_string data = { data; pos = 0 }
  let remaining t = String.length t.data - t.pos

  let bytes t n =
    if remaining t < n then fail "short read: want %d have %d" n (remaining t);
    let s = String.sub t.data t.pos n in
    t.pos <- t.pos + n;
    s

  let u8 t = Char.code (bytes t 1).[0]

  let u16 t =
    let s = bytes t 2 in
    (Char.code s.[0] lsl 8) lor Char.code s.[1]

  let u24 t =
    let s = bytes t 3 in
    (Char.code s.[0] lsl 16) lor (Char.code s.[1] lsl 8) lor Char.code s.[2]

  let u32 t =
    let s = bytes t 4 in
    (Char.code s.[0] lsl 24)
    lor (Char.code s.[1] lsl 16)
    lor (Char.code s.[2] lsl 8)
    lor Char.code s.[3]

  let vec8 t = bytes t (u8 t)
  let vec16 t = bytes t (u16 t)
  let vec24 t = bytes t (u24 t)
  let expect_end t = if remaining t <> 0 then fail "trailing bytes"
end
