(** Named certificate-hierarchy shapes for the signature-placement study
    (Table 7): which signature algorithm signs at each level of a
    root / intermediates / leaf chain.

    The leaf is always signed for the campaign's SA dimension; a profile
    only fixes the CA levels, so profiles compose with the KA x SA grid.
    The [default] profile is the pre-chain behaviour — a lone leaf under
    a raw CA key of the campaign SA — and is the identity everywhere:
    cache keys, fingerprints and artifacts are byte-identical to before
    the chain subsystem existed. *)

type level =
  | Leaf_alg  (** this level uses the campaign's (leaf) signature algorithm *)
  | Named of string  (** a fixed registry algorithm, by paper spelling *)

type t = {
  name : string;  (** stable key: cache keys, fingerprints, CLI *)
  label : string;  (** short human label for table rows *)
  intermediates : level list;
      (** issuing algorithm of each intermediate, closest-to-leaf first;
          these certificates ride in the server's Certificate message *)
  root : level;
      (** trust-anchor algorithm; the root certificate never crosses the
          wire (RFC 8446 section 4.4.2 allows omitting it) *)
  description : string;
}

val default : t
(** Leaf-only, anchor keyed with the campaign SA: today's behaviour. *)

val all : t list
(** [default] first, then the study profiles ([classical-shape],
    [mldsa-all], [slhdsa-root], [mixed-acme]). *)

val find : string -> t
(** @raise Invalid_argument on unknown names, listing the known ones. *)

val is_default : t -> bool

val depth : t -> int
(** Number of hierarchy levels including the unsent root (leaf-only = 2). *)

val level_names : t -> string list
(** ["leaf"; "int1"; ...; "root"], wire order then anchor. *)
