(** The TLS 1.3 key schedule (RFC 8446 section 7.1) on HKDF-SHA256,
    including HKDF-Expand-Label and the Finished MAC. *)

type secrets = {
  client_handshake_traffic : string;
  server_handshake_traffic : string;
  master : string;
}

val hash : Crypto.Hmac.hash
(** The cipher-suite hash (SHA-256 for TLS_AES_128_GCM_SHA256). *)

val hkdf_expand_label :
  secret:string -> label:string -> context:string -> int -> string

val derive_secret : secret:string -> label:string -> transcript_hash:string -> string

val empty_hash : string
(** Transcript hash of the empty string (Derive-Secret's "" context). *)

val early_secret : ?psk:string -> unit -> string
(** HKDF-Extract(0, PSK) — the top of the key-schedule diagram. Without
    [?psk] this is the full-handshake early secret (ikm all-zero). *)

val binder_key : early_secret:string -> string
(** Derive-Secret(early, "res binder", "") for resumption PSKs. *)

val binder_mac : binder_key:string -> truncated_transcript_hash:string -> string
(** The PskBinderEntry MAC (section 4.2.11.2): a Finished-style HMAC over
    the hash of the ClientHello truncated before the binders list. *)

val client_early_traffic : early_secret:string -> client_hello_hash:string -> string
(** Derive-Secret(early, "c e traffic", CH) — keys 0-RTT application data. *)

val handshake_secrets :
  ?psk:string ->
  shared_secret:string ->
  hello_transcript_hash:string ->
  unit ->
  secrets
(** Early secret (PSK when resuming, none otherwise) -> handshake secret
    -> traffic secrets and the master secret, exactly as the RFC's
    diagram. The no-PSK output is byte-identical to the historical
    hard-coded [ikm:zeros] path. *)

type traffic_keys = { key : string; iv : string }

val traffic_keys : string -> traffic_keys
(** AEAD key/IV from a traffic secret (AES-128-GCM sizes). *)

val finished_mac : traffic_secret:string -> transcript_hash:string -> string

val application_secrets :
  master:string -> finished_transcript_hash:string -> string * string
(** [(client_app_traffic, server_app_traffic)]. *)

val resumption_master :
  master:string -> finished_transcript_hash:string -> string
(** Derive-Secret(master, "res master", transcript incl. client Finished). *)

val resumption_psk : resumption_master:string -> ticket_nonce:string -> string
(** The PSK bound to one NewSessionTicket: HKDF-Expand-Label(res master,
    "resumption", ticket_nonce) (section 4.6.1). *)
