(** Byte-stream plumbing between TCP and the handshake logic: a
    consumable buffer, TLS record parsing/decryption, handshake-message
    reassembly, and fragmentation of outgoing messages into records. *)

module Consumable : sig
  type t

  val create : unit -> t
  val add : t -> string -> unit
  val length : t -> int
  (** Unconsumed bytes. *)

  val peek : t -> int -> string option
  (** [peek t n] is the next [n] bytes without consuming, if available. *)

  val consume : t -> int -> unit
end

module Inbound : sig
  type t
  (** Record parser + handshake reassembler for one read direction. *)

  type event =
    | Handshake_message of string  (** complete message, header included *)
    | Application_data of string
        (** decrypted early (0-RTT) or application payload fragment *)
    | Change_cipher_spec
    | Need_more_data

  val create : unit -> t
  val feed : t -> string -> unit
  val enable_decryption : t -> Record.t -> unit
  (** All subsequent application_data records are opened with this state. *)

  val next : t -> event
  (** Pull-driven: the state machine asks for the next event only when it
      is ready to process it (CPU-serialized), so records that arrive
      before the traffic keys exist stay buffered and undecrypted.
      @raise Wire.Decode_error on malformed input or failed decryption. *)
end

val max_fragment : int
(** 2^14, RFC 8446 section 5.1. *)

val fragment_plaintext : string -> string
(** Wrap a handshake message into one or more plaintext records. *)

val fragment_encrypted : Record.t -> string -> string
(** Wrap into encrypted application_data records, advancing the write
    state. *)

val fragment_app : Record.t -> string -> string
(** Like {!fragment_encrypted} but with inner type application_data —
    0-RTT and post-handshake payload bytes. *)
