type t = {
  certs : Certificate.t list;
  issuers : Pqc.Sigalg.t list;
  leaf_alg : Pqc.Sigalg.t;
  anchor_key : string;
  anchor_alg : string;
  profile : Chain_profile.t;
}

let pad () = String.make Certificate.der_overhead '\x5a'

let resolve leaf_alg = function
  | Chain_profile.Leaf_alg -> leaf_alg
  | Chain_profile.Named n ->
    let a = Pqc.Registry.find_sig n in
    if leaf_alg.Pqc.Sigalg.mocked then Pqc.Sigalg.mocked a else a

let make profile ~leaf:alg rng =
  if Chain_profile.is_default profile then
    (* the pre-chain path, byte for byte: same DRBG draws, same leaf *)
    let c, server = Certificate.make_chain alg rng in
    ( { certs = [ c.Certificate.leaf ];
        issuers = [ alg ];
        leaf_alg = alg;
        anchor_key = c.Certificate.ca_public_key;
        anchor_alg = alg.Pqc.Sigalg.name;
        profile },
      server )
  else
    let root_alg = resolve alg profile.Chain_profile.root in
    let int_algs = List.map (resolve alg) profile.Chain_profile.intermediates in
    let n = List.length int_algs in
    (* deterministic DRBG stream: root keygen, intermediate keygens
       top-down, server keygen, then signatures top-down *)
    let root_kp = root_alg.Pqc.Sigalg.keygen rng in
    let ints_top_down =
      List.rev int_algs
      |> List.mapi (fun i (a : Pqc.Sigalg.t) ->
             ( Printf.sprintf "ca%d.pqtls.example" (n - i),
               a,
               a.Pqc.Sigalg.keygen rng ))
    in
    let server = alg.Pqc.Sigalg.keygen rng in
    let issue (issuer_name, (issuer_alg : Pqc.Sigalg.t), issuer_kp) ~subject
        ~public =
      let unsigned =
        { Certificate.subject;
          issuer = issuer_name;
          algorithm = issuer_alg.Pqc.Sigalg.name;
          public_key = public;
          tbs_extra = pad ();
          signature = "" }
      in
      let signature =
        issuer_alg.Pqc.Sigalg.sign rng
          ~secret:issuer_kp.Pqc.Sigalg.secret
          (Certificate.tbs unsigned)
      in
      { unsigned with Certificate.signature }
    in
    (* walk top-down issuing each intermediate; returns the intermediate
       certificates in wire (leaf-first) order plus the leaf's issuer *)
    let rec go issuer = function
      | [] -> (issuer, [])
      | ((subject, _, kp) as level) :: lower ->
        let cert =
          issue issuer ~subject ~public:kp.Pqc.Sigalg.public
        in
        let leaf_issuer, below = go level lower in
        (leaf_issuer, below @ [ cert ])
    in
    let leaf_issuer, int_certs =
      go ("root.pqtls.example", root_alg, root_kp) ints_top_down
    in
    let leaf =
      issue leaf_issuer ~subject:"server.pqtls.example"
        ~public:server.Pqc.Sigalg.public
    in
    ( { certs = leaf :: int_certs;
        issuers = int_algs @ [ root_alg ];
        leaf_alg = alg;
        anchor_key = root_kp.Pqc.Sigalg.public;
        anchor_alg = root_alg.Pqc.Sigalg.name;
        profile },
      server )

let leaf t = List.hd t.certs
let wire_certs t = t.certs
let issuer_algs t = t.issuers

let verify_against ~local received =
  List.length received = List.length local.certs
  && List.for_all2
       (fun (r : Certificate.t) (iss : Pqc.Sigalg.t) ->
         (* public algorithm names, not secret-adjacent bytes *)
         r.Certificate.algorithm = iss.Pqc.Sigalg.name)
       received local.issuers
  &&
  let rec walk certs issuers =
    match (certs, issuers) with
    | [], [] -> true
    | (c : Certificate.t) :: rest, (iss : Pqc.Sigalg.t) :: iss_rest ->
      let public =
        match rest with
        | (up : Certificate.t) :: _ -> up.Certificate.public_key
        | [] -> local.anchor_key
      in
      iss.Pqc.Sigalg.verify ~public ~msg:(Certificate.tbs c)
        c.Certificate.signature
      && walk rest iss_rest
    | _ -> false
  in
  walk received local.issuers

let verify t = verify_against ~local:t t.certs

type level_stat = {
  lv_name : string;
  lv_subject_sa : string;
  lv_issuer_sa : string;
  lv_bytes : int;
  lv_verify_ms : float;
}

(* vec24 length prefix (3) + empty per-entry extensions vec16 (2) *)
let entry_overhead = 5

let levels t =
  List.mapi
    (fun i ((c : Certificate.t), (iss : Pqc.Sigalg.t)) ->
      let subject_sa =
        if i = 0 then t.leaf_alg.Pqc.Sigalg.name
        else (List.nth t.issuers (i - 1)).Pqc.Sigalg.name
      in
      { lv_name = (if i = 0 then "leaf" else Printf.sprintf "int%d" i);
        lv_subject_sa = subject_sa;
        lv_issuer_sa = iss.Pqc.Sigalg.name;
        lv_bytes = String.length (Certificate.encode c) + entry_overhead;
        lv_verify_ms =
          (Pqc.Costs.sig_ iss.Pqc.Sigalg.name).Pqc.Costs.verify.Pqc.Costs.ms
      })
    (List.combine t.certs t.issuers)

let wire_bytes t = List.fold_left (fun acc l -> acc + l.lv_bytes) 0 (levels t)

let verify_ms t =
  List.fold_left (fun acc l -> acc +. l.lv_verify_ms) 0. (levels t)
