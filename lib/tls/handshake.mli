(** The full simulated TLS 1.3 handshake: client and server state
    machines running over simulated TCP, performing the real cryptography
    of the configured KA x SA pair and charging each host the calibrated
    virtual CPU cost of every operation.

    The server reproduces both OpenSSL flight-assembly behaviours from
    the paper (section 4): the stock 4096-byte buffer and the optimized
    push of ServerHello/Certificate.

    Beyond the 1-RTT flow, the machines speak PSK resumption
    (psk_dhe_ke), NewSessionTicket issuance and 0-RTT early data
    (RFC 8446 sections 2.2, 4.6.1, 4.2.10): a resumed handshake omits
    Certificate/CertificateVerify from the server flight, and the binder
    over the truncated ClientHello transcript is verified constant-time
    and fails closed. *)

type result = {
  client_finished_at : float;
      (** virtual time at which the client finished (its Finished hit
          TCP, or — when a ticket was requested — the NewSessionTicket
          was processed) *)
  server_finished_at : float;  (** server validated the client Finished *)
  client_tcp : Netsim.Tcp.t;
  server_tcp : Netsim.Tcp.t;
  resumed : bool;  (** this run offered (and used) a resumption PSK *)
  early_data_bytes : int;
      (** 0-RTT application bytes the server accepted *)
}

type session = {
  psk : string;  (** the resumption PSK (client side of section 4.6.1) *)
  ticket : string;  (** the opaque STEK-sealed server ticket *)
  age_add : int;
  max_early_data : int;
}
(** Client-side resumption state distilled from one NewSessionTicket. *)

val mint_session :
  config:Config.t -> ticket_key:string -> rng:Crypto.Drbg.t -> session
(** A session exactly as a prior full handshake (against a server using
    [ticket_key]) would have issued: lets campaigns seed resumption
    without running the issuing handshake. *)

val default_max_early_data : int
(** max_early_data_size advertised on issued tickets (bytes). *)

val early_data_size : int
(** 0-RTT payload size a resuming client sends when early data is on. *)

val run :
  ?resume:session ->
  ?early_data:bool ->
  ?issue_ticket:bool ->
  ?ticket_key:string ->
  ?on_ticket:(session -> unit) ->
  engine:Netsim.Engine.t ->
  link:Netsim.Link.t ->
  tcp_config:Netsim.Tcp.config ->
  client_host:Netsim.Host.t ->
  server_host:Netsim.Host.t ->
  config:Config.t ->
  rng:Crypto.Drbg.t ->
  on_done:(result -> unit) ->
  unit ->
  unit
(** Creates a fresh connection, runs one handshake and reports both
    completion times. [?resume] offers the session's PSK (psk_dhe_ke);
    [?early_data] additionally sends 0-RTT data (needs [?resume]);
    [?issue_ticket] has the server send a NewSessionTicket after the
    handshake, delivered to [?on_ticket] — the client then counts as
    finished once the ticket is processed. Raises [Wire.Decode_error]
    on protocol corruption, including a PSK binder mismatch (which a
    correct simulation never produces). *)
