module Consumable = struct
  type t = { mutable data : Buffer.t; mutable offset : int }

  let create () = { data = Buffer.create 1024; offset = 0 }

  let compact t =
    if t.offset > 16384 && t.offset * 2 > Buffer.length t.data then begin
      let rest = Buffer.sub t.data t.offset (Buffer.length t.data - t.offset) in
      let fresh = Buffer.create (String.length rest + 1024) in
      Buffer.add_string fresh rest;
      t.data <- fresh;
      t.offset <- 0
    end

  let add t s = Buffer.add_string t.data s
  let length t = Buffer.length t.data - t.offset

  let peek t n =
    if length t < n then None else Some (Buffer.sub t.data t.offset n)

  let consume t n =
    assert (length t >= n);
    t.offset <- t.offset + n;
    compact t
end

module Inbound = struct
  type event =
    | Handshake_message of string
    | Application_data of string
    | Change_cipher_spec
    | Need_more_data

  type t = {
    raw : Consumable.t;
    hs : Consumable.t;
    mutable crypt : Record.t option;
    mutable pending_ccs : bool;
    mutable pending_app : string list;  (* arrival order *)
  }

  let create () =
    { raw = Consumable.create (); hs = Consumable.create (); crypt = None;
      pending_ccs = false; pending_app = [] }

  let feed t s = Consumable.add t.raw s
  let enable_decryption t r = t.crypt <- Some r

  (* consume one full record from raw if available; return true on progress *)
  let pull_record t =
    match Consumable.peek t.raw 5 with
    | None -> false
    | Some header ->
      let len = (Char.code header.[3] lsl 8) lor Char.code header.[4] in
      (match Consumable.peek t.raw (5 + len) with
      | None -> false
      | Some full ->
        Consumable.consume t.raw (5 + len);
        let body = String.sub full 5 len in
        (match Wire.Content_type.of_byte (Char.code full.[0]) with
        | Wire.Content_type.Change_cipher_spec ->
          t.pending_ccs <- true;
          true
        | Wire.Content_type.Alert ->
          raise (Wire.Decode_error "unexpected alert")
        | Wire.Content_type.Handshake ->
          Consumable.add t.hs body;
          true
        | Wire.Content_type.Application_data ->
          (match t.crypt with
          | None -> raise (Wire.Decode_error "ciphertext before keys")
          | Some r ->
            (match Record.open_ r body with
            | None -> raise (Wire.Decode_error "record authentication failed")
            | Some (Wire.Content_type.Handshake, frag) ->
              Consumable.add t.hs frag;
              true
            | Some (Wire.Content_type.Change_cipher_spec, _) ->
              t.pending_ccs <- true;
              true
            | Some (Wire.Content_type.Application_data, frag) ->
              (* 0-RTT: early application data under the early keys *)
              t.pending_app <- t.pending_app @ [ frag ];
              true
            | Some _ -> raise (Wire.Decode_error "unexpected inner type")))))

  let next t =
    let rec go () =
      if t.pending_ccs then begin
        t.pending_ccs <- false;
        Change_cipher_spec
      end
      else
        match t.pending_app with
        | frag :: rest ->
          t.pending_app <- rest;
          Application_data frag
        | [] -> (
          match Consumable.peek t.hs 4 with
          | Some hdr ->
            let len =
              (Char.code hdr.[1] lsl 16) lor (Char.code hdr.[2] lsl 8)
              lor Char.code hdr.[3]
            in
            (match Consumable.peek t.hs (4 + len) with
            | Some msg ->
              Consumable.consume t.hs (4 + len);
              Handshake_message msg
            | None -> if pull_record t then go () else Need_more_data)
          | None -> if pull_record t then go () else Need_more_data)
    in
    go ()
end

let max_fragment = 16384

let fragment_plaintext msg =
  let buf = Buffer.create (String.length msg + 16) in
  let n = String.length msg in
  let pos = ref 0 in
  while !pos < n do
    let len = min max_fragment (n - !pos) in
    Buffer.add_string buf
      (Wire.record Wire.Content_type.Handshake (String.sub msg !pos len));
    pos := !pos + len
  done;
  Buffer.contents buf

let fragment_encrypted crypt msg =
  let buf = Buffer.create (String.length msg + 64) in
  let n = String.length msg in
  let pos = ref 0 in
  while !pos < n do
    let len = min max_fragment (n - !pos) in
    Buffer.add_string buf
      (Record.seal crypt Wire.Content_type.Handshake (String.sub msg !pos len));
    pos := !pos + len
  done;
  Buffer.contents buf

let fragment_app crypt msg =
  let buf = Buffer.create (String.length msg + 64) in
  let n = String.length msg in
  let pos = ref 0 in
  while !pos < n do
    let len = min max_fragment (n - !pos) in
    Buffer.add_string buf
      (Record.seal crypt Wire.Content_type.Application_data
         (String.sub msg !pos len));
    pos := !pos + len
  done;
  Buffer.contents buf
