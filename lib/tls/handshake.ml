module K = Key_schedule
module M = Messages

type result = {
  client_finished_at : float;
  server_finished_at : float;
  client_tcp : Netsim.Tcp.t;
  server_tcp : Netsim.Tcp.t;
  resumed : bool;
  early_data_bytes : int;
}

type session = {
  psk : string;  (* the resumption PSK (client side of section 4.6.1) *)
  ticket : string;  (* the opaque STEK-sealed server ticket *)
  age_add : int;
  max_early_data : int;
}

let charge host (op : Pqc.Costs.op) k =
  Netsim.Host.charge host ~op:op.Pqc.Costs.label ~ms:op.Pqc.Costs.ms
    ~lib:(Pqc.Costs.lib_name op.Pqc.Costs.lib) ~k

let charge_n host (op : Pqc.Costs.op) n k =
  Netsim.Host.charge host ~op:op.Pqc.Costs.label
    ~ms:(op.Pqc.Costs.ms *. float_of_int n)
    ~lib:(Pqc.Costs.lib_name op.Pqc.Costs.lib) ~k

let ccs_record = Wire.record Wire.Content_type.Change_cipher_spec "\x01"

let make_record cfg traffic_secret =
  if cfg.Config.null_records then Record.create_null ()
  else Record.create (K.traffic_keys traffic_secret)

(* ---- session tickets (stateless STEK sealing) --------------------------- *)

(* Tickets are sealed under a Session-Ticket-Encryption-Key the server
   never shares: the record machinery doubles as the AEAD so mocked runs
   keep exact ticket sizes (Record.create_null is size-preserving). The
   plaintext is the PSK plus fixed padding, so every ticket has the same
   realistic ~150 B wire footprint. *)
let ticket_padding = 96
let ticket_lifetime_s = 7200
let default_max_early_data = 16384
let early_data_size = 256

let stek_record ~config ~ticket_key =
  let secret = Crypto.Hkdf.extract K.hash ~salt:"pqtls stek" ~ikm:ticket_key in
  make_record config secret

let seal_ticket ~config ~ticket_key psk =
  Record.seal
    (stek_record ~config ~ticket_key)
    Wire.Content_type.Application_data
    (psk ^ String.make ticket_padding '\000')

let open_ticket ~config ~ticket_key ticket =
  if String.length ticket < 5 then raise (Wire.Decode_error "short ticket");
  let body = String.sub ticket 5 (String.length ticket - 5) in
  match
    (Record.open_ (stek_record ~config ~ticket_key) body
    [@lint.declassify
      "AEAD open on an attacker-supplied ticket: the success bit and \
       plaintext length are inherently wire-observable (the server \
       either resumes or falls back), the tag check inside Aes_gcm is \
       constant-time, and the failure arm raises a constant payload — \
       no key bytes leave this match"])
  with
  | Some (Wire.Content_type.Application_data, pt)
    when String.length pt >= K.hash.Crypto.Hmac.digest_size ->
    String.sub pt 0 K.hash.Crypto.Hmac.digest_size
  | _ -> raise (Wire.Decode_error "ticket decryption failed")

let mint_session ~config ~ticket_key ~rng =
  (* a session exactly as a prior full handshake would have issued it,
     without running one: the farm pre-mints its shared session this way *)
  let psk = Crypto.Drbg.generate rng K.hash.Crypto.Hmac.digest_size in
  { psk; ticket = seal_ticket ~config ~ticket_key psk; age_add = 0;
    max_early_data = default_max_early_data }

(* HelloRetryRequest: a ServerHello whose random is the RFC 8446 magic *)
let hrr_random =
  Crypto.Bytesx.of_hex
    "cf21ad74e59a6111be1d8c021e65b891c2a211167abb8c5e079e09e2c8a8339c"

let encode_hrr ~session_id ~group =
  M.encode_server_hello
    { M.sh_random = hrr_random; sh_session_id = session_id; sh_group = group;
      sh_key_share = ""; sh_psk_selected = false }

let is_hrr (sh : M.server_hello) =
  Crypto.Bytesx.equal_ct sh.M.sh_random hrr_random


(* ---- per-peer plumbing -------------------------------------------------- *)

type peer = {
  host : Netsim.Host.t;
  tcp : Netsim.Tcp.t;
  inbound : Codec.Inbound.t;
  mutable transcript : Transcript.t;
  mutable busy : bool;
  mutable done_ : bool;
  mutable dispatch : peer -> string -> unit;
  mutable on_app : peer -> string -> unit;
}

let rec make_peer host tcp =
  let p =
    { host; tcp; inbound = Codec.Inbound.create ();
      transcript = Transcript.create (); busy = false; done_ = false;
      dispatch = (fun _ _ -> ());
      on_app =
        (fun _ _ -> raise (Wire.Decode_error "unexpected application data")) }
  in
  Netsim.Tcp.on_receive tcp (fun bytes ->
      Codec.Inbound.feed p.inbound bytes;
      step p);
  p

and step p =
  if (not p.busy) && not p.done_ then begin
    match Codec.Inbound.next p.inbound with
    | Codec.Inbound.Need_more_data -> ()
    | Codec.Inbound.Change_cipher_spec -> step p
    | Codec.Inbound.Application_data frag ->
      (* 0-RTT early data: delivered through the same busy-gated CPS
         path as handshake messages so CPU serialization holds *)
      p.busy <- true;
      if Trace.Sink.enabled () then
        Trace.Sink.begin_span
          ~track:(Netsim.Host.name p.host)
          ~cat:"message" ~name:"0RTT"
          (Netsim.Host.now p.host);
      p.on_app p frag
    | Codec.Inbound.Handshake_message msg ->
      p.busy <- true;
      (* a "message" span covers the whole dispatch of one inbound
         handshake message, CPU charges included: it opens here and the
         matching [finish_step] closes it (the state machines are CPS,
         so dispatch completion is exactly the finish_step call) *)
      if Trace.Sink.enabled () then
        Trace.Sink.begin_span
          ~track:(Netsim.Host.name p.host)
          ~cat:"message"
          ~name:(Wire.Handshake_type.label (M.handshake_type msg))
          (Netsim.Host.now p.host);
      p.dispatch p msg
  end

let finish_step p =
  if Trace.Sink.enabled () then
    Trace.Sink.end_span
      ~track:(Netsim.Host.name p.host)
      (Netsim.Host.now p.host);
  p.busy <- false;
  step p

(* RFC 8446 4.4.1: after an HRR, CH1 is replaced in the transcript by a
   synthetic message_hash message *)
let restart_transcript_after_ch1 (p : peer) hrr_msg =
  let ch1_hash = Transcript.current p.transcript in
  let fresh = Transcript.create () in
  Transcript.add fresh ("\xfe\x00\x00" ^ String.make 1 (Char.chr 32) ^ ch1_hash);
  Transcript.add fresh hrr_msg;
  p.transcript <- fresh

(* ---- outgoing flight buffer (models the OpenSSL BIO buffer) ------------ *)

type flight = {
  cfg : Config.t;
  peer : peer;
  buf : Buffer.t;
  mutable fmarks : (int * string) list;
}

let make_flight cfg peer = { cfg; peer; buf = Buffer.create 4096; fmarks = [] }

let flight_flush f =
  if Buffer.length f.buf > 0 then begin
    Netsim.Tcp.write f.peer.tcp ~marks:(List.rev f.fmarks) (Buffer.contents f.buf);
    Buffer.clear f.buf;
    f.fmarks <- []
  end

let flight_append f ?label records =
  (match label with
  | Some l -> f.fmarks <- (Buffer.length f.buf, l) :: f.fmarks
  | None -> ());
  Buffer.add_string f.buf records

(* Default-buffered mode: adding data that would overflow the BIO buffer
   first flushes what is pending; oversized chunks then go straight out. *)
let flight_emit f ?label records =
  match f.cfg.Config.buffering with
  | Config.Optimized_push -> flight_append f ?label records
  | Config.Default_buffered ->
    let len = String.length records in
    if Buffer.length f.buf + len > f.cfg.Config.buffer_limit then flight_flush f;
    if len > f.cfg.Config.buffer_limit then
      Netsim.Tcp.write f.peer.tcp
        ~marks:(match label with Some l -> [ (0, l) ] | None -> [])
        records
    else flight_append f ?label records

(* flush point honoured only by the optimized server *)
let flight_push_point f =
  match f.cfg.Config.buffering with
  | Config.Optimized_push -> flight_flush f
  | Config.Default_buffered -> ()

(* ---- server ------------------------------------------------------------- *)

type server_ctx = {
  s_cfg : Config.t;
  s_creds : Credentials.t;
  s_rng : Crypto.Drbg.t;
  s_flight : flight;
  s_issue_ticket : bool;
  s_ticket_key : string;
  mutable s_secrets : K.secrets option;
  mutable s_write : Record.t option;
  mutable s_client_hs_secret : string;
  mutable s_sfin_hash : string;  (* transcript hash at the server Finished *)
  mutable s_early_bytes : int;
  mutable s_expect :
    [ `Client_hello | `End_of_early_data | `Client_finished ];
  s_on_done : unit -> unit;
}

let server_encrypt ctx msg =
  match ctx.s_write with
  | None -> Codec.fragment_plaintext msg
  | Some crypt -> Codec.fragment_encrypted crypt msg

let kem_costs cfg = Pqc.Costs.kem cfg.Config.kem.Pqc.Kem.name
let sig_costs cfg = Pqc.Costs.sig_ cfg.Config.sig_alg.Pqc.Sigalg.name

(* per-fragment AEAD cost, scaled to the fragment size *)
let aead_cost len =
  { Pqc.Costs.aead_per_kilobyte with
    Pqc.Costs.ms =
      Pqc.Costs.aead_per_kilobyte.Pqc.Costs.ms
      *. (float_of_int len /. 1024.) }

(* The psk_dhe_ke resumption flight (section 2.2): binder verification,
   then ServerHello/EncryptedExtensions/Finished — no Certificate, no
   CertificateVerify, no signature. *)
let server_on_resumption ctx (p : peer) msg (ch : M.client_hello) offer =
  let cfg = ctx.s_cfg in
  let psk = open_ticket ~config:cfg ~ticket_key:ctx.s_ticket_key
              offer.M.psk_identity in
  (* early secret + binder key + binder MAC *)
  charge_n p.host Pqc.Costs.key_schedule_derive 3 @@ fun () ->
  let early_secret = K.early_secret ~psk () in
  let binder_key = K.binder_key ~early_secret in
  let truncated_hash =
    K.hash.Crypto.Hmac.digest (M.truncated_client_hello ch)
  in
  let expected =
    K.binder_mac ~binder_key ~truncated_transcript_hash:truncated_hash
  in
  if not (Crypto.Bytesx.equal_ct offer.M.psk_binder expected) then
    raise (Wire.Decode_error "PSK binder mismatch");
  Transcript.add p.transcript msg;
  charge p.host (kem_costs cfg).Pqc.Costs.kem_encaps @@ fun () ->
  let ct, shared_secret =
    cfg.Config.kem.Pqc.Kem.encaps ctx.s_rng ch.M.key_share
  in
  let sh =
    M.encode_server_hello
      { M.sh_random = Crypto.Drbg.generate ctx.s_rng 32;
        sh_session_id = ch.M.session_id;
        sh_group = cfg.Config.kem.Pqc.Kem.name;
        sh_key_share = ct;
        sh_psk_selected = true }
  in
  Transcript.add p.transcript sh;
  charge p.host Pqc.Costs.build_server_flight @@ fun () ->
  charge_n p.host Pqc.Costs.key_schedule_derive 4 @@ fun () ->
  let secrets =
    K.handshake_secrets ~psk ~shared_secret
      ~hello_transcript_hash:(Transcript.current p.transcript) ()
  in
  ctx.s_secrets <- Some secrets;
  ctx.s_client_hs_secret <- secrets.K.client_handshake_traffic;
  flight_emit ctx.s_flight ~label:"SH" (Codec.fragment_plaintext sh);
  flight_emit ctx.s_flight ccs_record;
  ctx.s_write <- Some (make_record cfg secrets.K.server_handshake_traffic);
  flight_push_point ctx.s_flight;
  let ee = M.encode_encrypted_extensions ~early_data_accepted:ch.M.early_data () in
  Transcript.add p.transcript ee;
  flight_emit ctx.s_flight ~label:"EE" (server_encrypt ctx ee);
  charge p.host Pqc.Costs.key_schedule_derive @@ fun () ->
  let mac =
    K.finished_mac ~traffic_secret:secrets.K.server_handshake_traffic
      ~transcript_hash:(Transcript.current p.transcript)
  in
  let fin = M.encode_finished mac in
  Transcript.add p.transcript fin;
  ctx.s_sfin_hash <- Transcript.current p.transcript;
  flight_emit ctx.s_flight ~label:"FIN" (server_encrypt ctx fin);
  flight_flush ctx.s_flight;
  if ch.M.early_data then begin
    (* 0-RTT records arrive under the client early traffic keys; the
       client hello hash is the transcript at the CH alone *)
    charge p.host Pqc.Costs.key_schedule_derive @@ fun () ->
    let early_traffic =
      K.client_early_traffic ~early_secret
        ~client_hello_hash:(K.hash.Crypto.Hmac.digest msg)
    in
    Codec.Inbound.enable_decryption p.inbound (make_record cfg early_traffic);
    p.on_app <-
      (fun p frag ->
        charge p.host (aead_cost (String.length frag)) @@ fun () ->
        ctx.s_early_bytes <- ctx.s_early_bytes + String.length frag;
        finish_step p);
    ctx.s_expect <- `End_of_early_data;
    finish_step p
  end
  else begin
    Codec.Inbound.enable_decryption p.inbound
      (make_record cfg ctx.s_client_hs_secret);
    ctx.s_expect <- `Client_finished;
    finish_step p
  end

let server_on_client_hello ctx (p : peer) msg =
  let cfg = ctx.s_cfg in
  let parse_cost =
    { Pqc.Costs.parse_client_hello with
      Pqc.Costs.ms =
        Pqc.Costs.parse_client_hello.Pqc.Costs.ms
        +. (sig_costs cfg).Pqc.Costs.ch_overhead }
  in
  charge p.host parse_cost @@ fun () ->
  let ch = M.decode_client_hello msg in
  match ch.M.psk_offer with
  | Some offer -> server_on_resumption ctx p msg ch offer
  | None ->
  if ch.M.group <> cfg.Config.kem.Pqc.Kem.name then begin
    (* wrong key-share guess: answer with HelloRetryRequest (2-RTT path) *)
    Transcript.add p.transcript msg;
    let hrr = encode_hrr ~session_id:ch.M.session_id
                ~group:cfg.Config.kem.Pqc.Kem.name in
    restart_transcript_after_ch1 p hrr;
    charge p.host Pqc.Costs.build_server_flight @@ fun () ->
    Netsim.Tcp.write p.tcp ~marks:[ (0, "HRR") ] (Codec.fragment_plaintext hrr);
    finish_step p
  end
  else
  charge p.host (kem_costs cfg).Pqc.Costs.kem_encaps @@ fun () ->
  let ct, shared_secret = cfg.Config.kem.Pqc.Kem.encaps ctx.s_rng ch.M.key_share in
  Transcript.add p.transcript msg;
  let sh =
    M.encode_server_hello
      { M.sh_random = Crypto.Drbg.generate ctx.s_rng 32;
        sh_session_id = ch.M.session_id;
        sh_group = cfg.Config.kem.Pqc.Kem.name;
        sh_key_share = ct;
        sh_psk_selected = false }
  in
  Transcript.add p.transcript sh;
  charge p.host Pqc.Costs.build_server_flight @@ fun () ->
  charge_n p.host Pqc.Costs.key_schedule_derive 4 @@ fun () ->
  let hello_hash = Transcript.current p.transcript in
  let secrets =
    K.handshake_secrets ~shared_secret ~hello_transcript_hash:hello_hash ()
  in
  ctx.s_secrets <- Some secrets;
  ctx.s_client_hs_secret <- secrets.K.client_handshake_traffic;
  (* ServerHello and the compatibility CCS travel in the clear *)
  flight_emit ctx.s_flight ~label:"SH" (Codec.fragment_plaintext sh);
  flight_emit ctx.s_flight ccs_record;
  ctx.s_write <- Some (make_record cfg secrets.K.server_handshake_traffic);
  flight_push_point ctx.s_flight;
  (* EncryptedExtensions + Certificate do not wait for the signature *)
  let ee = M.encode_encrypted_extensions () in
  Transcript.add p.transcript ee;
  flight_emit ctx.s_flight ~label:"EE" (server_encrypt ctx ee);
  let cert_msg =
    M.encode_certificate_chain
      (Chain.wire_certs ctx.s_creds.Credentials.chain)
  in
  Transcript.add p.transcript cert_msg;
  flight_emit ctx.s_flight ~label:"CERT" (server_encrypt ctx cert_msg);
  flight_push_point ctx.s_flight;
  charge p.host (sig_costs cfg).Pqc.Costs.sign @@ fun () ->
  let cv_content =
    M.cv_signed_content ~transcript_hash:(Transcript.current p.transcript)
  in
  let signature =
    cfg.Config.sig_alg.Pqc.Sigalg.sign ctx.s_rng
      ~secret:ctx.s_creds.Credentials.server_key.Pqc.Sigalg.secret cv_content
  in
  let cv =
    M.encode_certificate_verify
      { M.cv_algorithm = cfg.Config.sig_alg.Pqc.Sigalg.name;
        cv_signature = signature }
  in
  Transcript.add p.transcript cv;
  flight_emit ctx.s_flight ~label:"CV" (server_encrypt ctx cv);
  charge p.host Pqc.Costs.key_schedule_derive @@ fun () ->
  let mac =
    K.finished_mac
      ~traffic_secret:(Option.get ctx.s_secrets).K.server_handshake_traffic
      ~transcript_hash:(Transcript.current p.transcript)
  in
  let fin = M.encode_finished mac in
  Transcript.add p.transcript fin;
  ctx.s_sfin_hash <- Transcript.current p.transcript;
  flight_emit ctx.s_flight ~label:"FIN" (server_encrypt ctx fin);
  flight_flush ctx.s_flight;
  ctx.s_expect <- `Client_finished;
  (* client Finished arrives under the client handshake traffic keys *)
  Codec.Inbound.enable_decryption p.inbound
    (make_record cfg ctx.s_client_hs_secret);
  finish_step p

let server_on_end_of_early_data ctx (p : peer) msg =
  Transcript.add p.transcript msg;
  (* the client switches to its handshake keys after EndOfEarlyData *)
  Codec.Inbound.enable_decryption p.inbound
    (make_record ctx.s_cfg ctx.s_client_hs_secret);
  ctx.s_expect <- `Client_finished;
  finish_step p

let server_on_client_finished ctx (p : peer) msg =
  charge p.host Pqc.Costs.key_schedule_derive @@ fun () ->
  let expected =
    K.finished_mac ~traffic_secret:ctx.s_client_hs_secret
      ~transcript_hash:(Transcript.current p.transcript)
  in
  if not (Crypto.Bytesx.equal_ct (M.decode_finished msg) expected) then
    raise (Wire.Decode_error "client Finished MAC mismatch");
  Transcript.add p.transcript msg;
  if ctx.s_issue_ticket then begin
    (* post-handshake NewSessionTicket under the server application
       traffic keys: res master covers the client Finished (section 7.1),
       the ticket PSK is HKDF-Expand-Label(res master, "resumption",
       nonce) and rides STEK-sealed so the server stays stateless *)
    charge_n p.host Pqc.Costs.key_schedule_derive 3 @@ fun () ->
    let secrets = Option.get ctx.s_secrets in
    let _c_app, s_app =
      K.application_secrets ~master:secrets.K.master
        ~finished_transcript_hash:ctx.s_sfin_hash
    in
    let res_master =
      K.resumption_master ~master:secrets.K.master
        ~finished_transcript_hash:(Transcript.current p.transcript)
    in
    let nonce = "\x00" in
    let psk = K.resumption_psk ~resumption_master:res_master ~ticket_nonce:nonce in
    let nst =
      M.encode_new_session_ticket
        { M.nst_lifetime = ticket_lifetime_s;
          nst_age_add =
            Crypto.Bytesx.get_u32_be (Crypto.Drbg.generate ctx.s_rng 4) 0;
          nst_nonce = nonce;
          nst_ticket =
            seal_ticket ~config:ctx.s_cfg ~ticket_key:ctx.s_ticket_key psk;
          nst_max_early_data = default_max_early_data }
    in
    let crypt = make_record ctx.s_cfg s_app in
    Netsim.Tcp.write p.tcp ~marks:[ (0, "NST") ]
      (Codec.fragment_encrypted crypt nst)
  end;
  p.done_ <- true;
  ctx.s_on_done ();
  finish_step p

let server_dispatch ctx p msg =
  match ctx.s_expect with
  | `Client_hello -> server_on_client_hello ctx p msg
  | `End_of_early_data ->
    if M.handshake_type msg <> Wire.Handshake_type.End_of_early_data then
      raise (Wire.Decode_error "expected EndOfEarlyData");
    server_on_end_of_early_data ctx p msg
  | `Client_finished -> server_on_client_finished ctx p msg

(* ---- client ------------------------------------------------------------- *)

type client_ctx = {
  c_cfg : Config.t;
  c_rng : Crypto.Drbg.t;
  c_creds : Credentials.t; (* for the trusted CA public key *)
  c_resume : session option;
  c_early_data : bool;
  c_expect_ticket : bool;
  c_on_ticket : session -> unit;
  mutable c_keypair : Pqc.Kem.keypair option;
  mutable c_session_id : string;
  mutable c_retried : bool;
  mutable c_secrets : K.secrets option;
  mutable c_early_write : Record.t option;  (* 0-RTT seal state, for EOED *)
  mutable c_sfin_hash : string;
  mutable c_expect :
    [ `Server_hello | `Encrypted_extensions | `Certificate | `Cert_verify
    | `Finished | `Ticket ];
  mutable c_server_cert : Certificate.t option;
  c_on_done : unit -> unit;
}

let client_dispatch ctx (p : peer) msg =
  let cfg = ctx.c_cfg in
  match (ctx.c_expect, M.handshake_type msg) with
  | `Server_hello, Wire.Handshake_type.Server_hello
    when is_hrr (M.decode_server_hello msg) ->
    if ctx.c_retried then raise (Wire.Decode_error "second HelloRetryRequest");
    ctx.c_retried <- true;
    charge p.host Pqc.Costs.parse_server_flight @@ fun () ->
    restart_transcript_after_ch1 p msg;
    (* now compute the share the server actually wants *)
    charge p.host (kem_costs cfg).Pqc.Costs.kem_keygen @@ fun () ->
    ctx.c_keypair <- Some (cfg.Config.kem.Pqc.Kem.keygen ctx.c_rng);
    let ch2 =
      M.encode_client_hello
        { M.random = Crypto.Drbg.generate ctx.c_rng 32;
          session_id = ctx.c_session_id;
          group = cfg.Config.kem.Pqc.Kem.name;
          key_share = (Option.get ctx.c_keypair).Pqc.Kem.public;
          sig_algs = [ cfg.Config.sig_alg.Pqc.Sigalg.name ];
          psk_offer = None;
          early_data = false }
    in
    Transcript.add p.transcript ch2;
    Netsim.Tcp.write p.tcp ~marks:[ (0, "CH2") ] (Codec.fragment_plaintext ch2);
    finish_step p
  | `Server_hello, Wire.Handshake_type.Server_hello ->
    charge p.host Pqc.Costs.parse_server_flight @@ fun () ->
    let sh = M.decode_server_hello msg in
    (if ctx.c_resume <> None && not sh.M.sh_psk_selected then
       (* a real client would fall back to a full handshake; our server
          always accepts a binder-valid offer, so this is fail-closed *)
       raise (Wire.Decode_error "server ignored the PSK offer"));
    charge p.host (kem_costs cfg).Pqc.Costs.kem_decaps @@ fun () ->
    let keypair = Option.get ctx.c_keypair in
    let shared_secret =
      cfg.Config.kem.Pqc.Kem.decaps keypair.Pqc.Kem.secret sh.M.sh_key_share
    in
    Transcript.add p.transcript msg;
    charge_n p.host Pqc.Costs.key_schedule_derive 4 @@ fun () ->
    let secrets =
      K.handshake_secrets
        ?psk:(Option.map (fun s -> s.psk) ctx.c_resume)
        ~shared_secret
        ~hello_transcript_hash:(Transcript.current p.transcript) ()
    in
    ctx.c_secrets <- Some secrets;
    Codec.Inbound.enable_decryption p.inbound
      (make_record cfg secrets.K.server_handshake_traffic);
    ctx.c_expect <- `Encrypted_extensions;
    finish_step p
  | `Encrypted_extensions, Wire.Handshake_type.Encrypted_extensions ->
    Transcript.add p.transcript msg;
    (if ctx.c_early_data && not (M.ee_early_data_accepted msg) then
       raise (Wire.Decode_error "server rejected early data"));
    (* a resumed server flight carries no Certificate/CertificateVerify *)
    ctx.c_expect <-
      (if ctx.c_resume <> None then `Finished else `Certificate);
    finish_step p
  | `Certificate, Wire.Handshake_type.Certificate ->
    let certs = M.decode_certificate_chain msg in
    let local = ctx.c_creds.Credentials.chain in
    (* PKI check: walk the received chain up to the trust anchor, one
       verification per level, each charged at its issuing SA's cost so
       the Table 3 ledger sees the per-level placement *)
    let rec charge_levels issuers k =
      match issuers with
      | [] -> k ()
      | (iss : Pqc.Sigalg.t) :: rest ->
        charge p.host (Pqc.Costs.sig_ iss.Pqc.Sigalg.name).Pqc.Costs.verify
        @@ fun () -> charge_levels rest k
    in
    charge_levels (Chain.issuer_algs local) @@ fun () ->
    if not (Chain.verify_against ~local certs) then
      raise (Wire.Decode_error "certificate chain verification failed");
    ctx.c_server_cert <- Some (List.hd certs);
    Transcript.add p.transcript msg;
    ctx.c_expect <- `Cert_verify;
    finish_step p
  | `Cert_verify, Wire.Handshake_type.Certificate_verify ->
    let cv = M.decode_certificate_verify msg in
    let content =
      M.cv_signed_content ~transcript_hash:(Transcript.current p.transcript)
    in
    charge p.host (sig_costs cfg).Pqc.Costs.verify @@ fun () ->
    let cert = Option.get ctx.c_server_cert in
    if
      not
        (cfg.Config.sig_alg.Pqc.Sigalg.verify ~public:cert.Certificate.public_key
           ~msg:content cv.M.cv_signature)
    then raise (Wire.Decode_error "CertificateVerify signature invalid");
    Transcript.add p.transcript msg;
    ctx.c_expect <- `Finished;
    finish_step p
  | `Finished, Wire.Handshake_type.Finished ->
    charge p.host Pqc.Costs.key_schedule_derive @@ fun () ->
    let secrets = Option.get ctx.c_secrets in
    let expected =
      K.finished_mac ~traffic_secret:secrets.K.server_handshake_traffic
        ~transcript_hash:(Transcript.current p.transcript)
    in
    if not (Crypto.Bytesx.equal_ct (M.decode_finished msg) expected) then
      raise (Wire.Decode_error "server Finished MAC mismatch");
    Transcript.add p.transcript msg;
    ctx.c_sfin_hash <- Transcript.current p.transcript;
    (* 0-RTT closes with EndOfEarlyData under the early keys, part of
       the transcript the client Finished covers (section 4.5) *)
    let eoed_records =
      match ctx.c_early_write with
      | Some crypt when ctx.c_early_data ->
        let eoed = M.encode_end_of_early_data () in
        Transcript.add p.transcript eoed;
        Codec.fragment_encrypted crypt eoed
      | _ -> ""
    in
    charge p.host Pqc.Costs.build_client_finished @@ fun () ->
    let mac =
      K.finished_mac ~traffic_secret:secrets.K.client_handshake_traffic
        ~transcript_hash:(Transcript.current p.transcript)
    in
    let fin = M.encode_finished mac in
    Transcript.add p.transcript fin;
    let crypt = make_record cfg secrets.K.client_handshake_traffic in
    let records =
      eoed_records ^ ccs_record ^ Codec.fragment_encrypted crypt fin
    in
    Netsim.Tcp.write p.tcp ~marks:[ (0, "FIN_C") ] records;
    (* application traffic secrets, as OpenSSL derives them eagerly *)
    charge_n p.host Pqc.Costs.key_schedule_derive 2 @@ fun () ->
    if ctx.c_expect_ticket then begin
      (* stay up for the post-handshake NewSessionTicket, which arrives
         under the server application traffic keys *)
      let _c_app, s_app =
        K.application_secrets ~master:secrets.K.master
          ~finished_transcript_hash:ctx.c_sfin_hash
      in
      Codec.Inbound.enable_decryption p.inbound (make_record cfg s_app);
      ctx.c_expect <- `Ticket;
      finish_step p
    end
    else begin
      ignore
        (K.application_secrets ~master:secrets.K.master
           ~finished_transcript_hash:(Transcript.current p.transcript));
      p.done_ <- true;
      ctx.c_on_done ();
      finish_step p
    end
  | `Ticket, Wire.Handshake_type.New_session_ticket ->
    charge_n p.host Pqc.Costs.key_schedule_derive 2 @@ fun () ->
    let secrets = Option.get ctx.c_secrets in
    let nst = M.decode_new_session_ticket msg in
    (* same derivation as the server: res master over the transcript
       including the client Finished, then the per-ticket PSK *)
    let res_master =
      K.resumption_master ~master:secrets.K.master
        ~finished_transcript_hash:(Transcript.current p.transcript)
    in
    let psk =
      K.resumption_psk ~resumption_master:res_master
        ~ticket_nonce:nst.M.nst_nonce
    in
    ctx.c_on_ticket
      { psk; ticket = nst.M.nst_ticket; age_add = nst.M.nst_age_add;
        max_early_data = nst.M.nst_max_early_data };
    p.done_ <- true;
    ctx.c_on_done ();
    finish_step p
  | _, ty ->
    raise
      (Wire.Decode_error
         (Printf.sprintf "unexpected %s" (Wire.Handshake_type.label ty)))

(* ---- driver ------------------------------------------------------------- *)

let run ?resume ?(early_data = false) ?(issue_ticket = false)
    ?(ticket_key = "stek") ?(on_ticket = fun _ -> ()) ~engine ~link
    ~tcp_config ~client_host ~server_host ~config ~rng ~on_done () =
  let client_tcp, server_tcp =
    Netsim.Tcp.create_pair engine link tcp_config ~client:client_host
      ~server:server_host
  in
  let client_peer = make_peer client_host client_tcp in
  let server_peer = make_peer server_host server_tcp in
  let creds =
    Credentials.get ~profile:config.Config.chain_profile config.Config.sig_alg
  in
  let client_done_at = ref nan and server_done_at = ref nan in
  let maybe_done_ref = ref (fun () -> ()) in
  let server_ctx =
    { s_cfg = config; s_creds = creds; s_rng = Crypto.Drbg.fork rng "server";
      s_flight = make_flight config server_peer;
      s_issue_ticket = issue_ticket; s_ticket_key = ticket_key;
      s_secrets = None; s_write = None; s_client_hs_secret = "";
      s_sfin_hash = ""; s_early_bytes = 0; s_expect = `Client_hello;
      s_on_done =
        (fun () ->
          server_done_at := Netsim.Engine.now engine;
          !maybe_done_ref ()) }
  in
  let maybe_done () =
    if not (Float.is_nan !client_done_at || Float.is_nan !server_done_at) then
      on_done
        { client_finished_at = !client_done_at;
          server_finished_at = !server_done_at;
          client_tcp;
          server_tcp;
          resumed = resume <> None;
          early_data_bytes = server_ctx.s_early_bytes }
  in
  maybe_done_ref := maybe_done;
  server_peer.dispatch <- (fun p msg -> server_dispatch server_ctx p msg);
  let client_ctx =
    { c_cfg = config; c_rng = Crypto.Drbg.fork rng "client"; c_creds = creds;
      c_resume = resume; c_early_data = early_data && resume <> None;
      c_expect_ticket = issue_ticket; c_on_ticket = on_ticket;
      c_keypair = None; c_session_id = ""; c_retried = false;
      c_secrets = None; c_early_write = None; c_sfin_hash = "";
      c_expect = `Server_hello; c_server_cert = None;
      c_on_done =
        (fun () ->
          client_done_at := Netsim.Engine.now engine;
          maybe_done ()) }
  in
  client_peer.dispatch <- (fun p msg -> client_dispatch client_ctx p msg);
  (* the client pre-computes its key share, then opens the connection;
     none of this is inside the measured phases (Fig. 1). With
     [wrong_first_key_share] it guesses a group the server will refuse. *)
  let guess_cost =
    if config.Config.wrong_first_key_share then
      (Pqc.Costs.kem "x25519").Pqc.Costs.kem_keygen
    else (kem_costs config).Pqc.Costs.kem_keygen
  in
  charge client_host guess_cost @@ fun () ->
  let first_group, first_share =
    if config.Config.wrong_first_key_share then
      ("wrong-guess", Crypto.Drbg.generate client_ctx.c_rng 32)
    else begin
      client_ctx.c_keypair <-
        Some (config.Config.kem.Pqc.Kem.keygen client_ctx.c_rng);
      ( config.Config.kem.Pqc.Kem.name,
        (Option.get client_ctx.c_keypair).Pqc.Kem.public )
    end
  in
  Netsim.Tcp.connect client_tcp ~on_established:(fun () ->
      charge client_host Pqc.Costs.build_client_finished @@ fun () ->
      client_ctx.c_session_id <- Crypto.Drbg.generate client_ctx.c_rng 32;
      let base =
        { M.random = Crypto.Drbg.generate client_ctx.c_rng 32;
          session_id = client_ctx.c_session_id;
          group = first_group;
          key_share = first_share;
          sig_algs = [ config.Config.sig_alg.Pqc.Sigalg.name ];
          psk_offer = None;
          early_data = false }
      in
      match resume with
      | None ->
        let ch = M.encode_client_hello base in
        Transcript.add client_peer.transcript ch;
        Netsim.Tcp.write client_tcp ~marks:[ (0, "CH") ]
          (Codec.fragment_plaintext ch)
      | Some s ->
        (* psk_dhe_ke offer: binder over the truncated CH (computed with
           a placeholder binder of the same length, section 4.2.11.2) *)
        charge_n client_host Pqc.Costs.key_schedule_derive 3 @@ fun () ->
        let offer binder =
          { base with
            M.psk_offer =
              Some
                { M.psk_identity = s.ticket;
                  psk_obfuscated_age = s.age_add;
                  psk_binder = binder };
            early_data = client_ctx.c_early_data }
        in
        let early_secret = K.early_secret ~psk:s.psk () in
        let binder_key = K.binder_key ~early_secret in
        let truncated_hash =
          K.hash.Crypto.Hmac.digest
            (M.truncated_client_hello (offer (String.make 32 '\000')))
        in
        let binder =
          K.binder_mac ~binder_key ~truncated_transcript_hash:truncated_hash
        in
        let ch = M.encode_client_hello (offer binder) in
        Transcript.add client_peer.transcript ch;
        Netsim.Tcp.write client_tcp ~marks:[ (0, "CH") ]
          (Codec.fragment_plaintext ch);
        if client_ctx.c_early_data then begin
          charge client_host Pqc.Costs.key_schedule_derive @@ fun () ->
          let early_traffic =
            K.client_early_traffic ~early_secret
              ~client_hello_hash:(K.hash.Crypto.Hmac.digest ch)
          in
          let crypt = make_record config early_traffic in
          client_ctx.c_early_write <- Some crypt;
          let payload =
            String.make (min early_data_size s.max_early_data) 'e'
          in
          charge client_host (aead_cost (String.length payload)) @@ fun () ->
          Netsim.Tcp.write client_tcp ~marks:[ (0, "0RTT") ]
            (Codec.fragment_app crypt payload)
        end)
