module K = Key_schedule
module M = Messages

type result = {
  client_finished_at : float;
  server_finished_at : float;
  client_tcp : Netsim.Tcp.t;
  server_tcp : Netsim.Tcp.t;
}

let charge host (op : Pqc.Costs.op) k =
  Netsim.Host.charge host ~op:op.Pqc.Costs.label ~ms:op.Pqc.Costs.ms
    ~lib:(Pqc.Costs.lib_name op.Pqc.Costs.lib) ~k

let charge_n host (op : Pqc.Costs.op) n k =
  Netsim.Host.charge host ~op:op.Pqc.Costs.label
    ~ms:(op.Pqc.Costs.ms *. float_of_int n)
    ~lib:(Pqc.Costs.lib_name op.Pqc.Costs.lib) ~k

let ccs_record = Wire.record Wire.Content_type.Change_cipher_spec "\x01"

let make_record cfg traffic_secret =
  if cfg.Config.null_records then Record.create_null ()
  else Record.create (K.traffic_keys traffic_secret)

(* HelloRetryRequest: a ServerHello whose random is the RFC 8446 magic *)
let hrr_random =
  Crypto.Bytesx.of_hex
    "cf21ad74e59a6111be1d8c021e65b891c2a211167abb8c5e079e09e2c8a8339c"

let encode_hrr ~session_id ~group =
  M.encode_server_hello
    { M.sh_random = hrr_random; sh_session_id = session_id; sh_group = group;
      sh_key_share = "" }

let is_hrr (sh : M.server_hello) =
  Crypto.Bytesx.equal_ct sh.M.sh_random hrr_random


(* ---- per-peer plumbing -------------------------------------------------- *)

type peer = {
  host : Netsim.Host.t;
  tcp : Netsim.Tcp.t;
  inbound : Codec.Inbound.t;
  mutable transcript : Transcript.t;
  mutable busy : bool;
  mutable done_ : bool;
  mutable dispatch : peer -> string -> unit;
}

let rec make_peer host tcp =
  let p =
    { host; tcp; inbound = Codec.Inbound.create ();
      transcript = Transcript.create (); busy = false; done_ = false;
      dispatch = (fun _ _ -> ()) }
  in
  Netsim.Tcp.on_receive tcp (fun bytes ->
      Codec.Inbound.feed p.inbound bytes;
      step p);
  p

and step p =
  if (not p.busy) && not p.done_ then begin
    match Codec.Inbound.next p.inbound with
    | Codec.Inbound.Need_more_data -> ()
    | Codec.Inbound.Change_cipher_spec -> step p
    | Codec.Inbound.Handshake_message msg ->
      p.busy <- true;
      (* a "message" span covers the whole dispatch of one inbound
         handshake message, CPU charges included: it opens here and the
         matching [finish_step] closes it (the state machines are CPS,
         so dispatch completion is exactly the finish_step call) *)
      if Trace.Sink.enabled () then
        Trace.Sink.begin_span
          ~track:(Netsim.Host.name p.host)
          ~cat:"message"
          ~name:(Wire.Handshake_type.label (M.handshake_type msg))
          (Netsim.Host.now p.host);
      p.dispatch p msg
  end

let finish_step p =
  if Trace.Sink.enabled () then
    Trace.Sink.end_span
      ~track:(Netsim.Host.name p.host)
      (Netsim.Host.now p.host);
  p.busy <- false;
  step p

(* RFC 8446 4.4.1: after an HRR, CH1 is replaced in the transcript by a
   synthetic message_hash message *)
let restart_transcript_after_ch1 (p : peer) hrr_msg =
  let ch1_hash = Transcript.current p.transcript in
  let fresh = Transcript.create () in
  Transcript.add fresh ("\xfe\x00\x00" ^ String.make 1 (Char.chr 32) ^ ch1_hash);
  Transcript.add fresh hrr_msg;
  p.transcript <- fresh

(* ---- outgoing flight buffer (models the OpenSSL BIO buffer) ------------ *)

type flight = {
  cfg : Config.t;
  peer : peer;
  buf : Buffer.t;
  mutable fmarks : (int * string) list;
}

let make_flight cfg peer = { cfg; peer; buf = Buffer.create 4096; fmarks = [] }

let flight_flush f =
  if Buffer.length f.buf > 0 then begin
    Netsim.Tcp.write f.peer.tcp ~marks:(List.rev f.fmarks) (Buffer.contents f.buf);
    Buffer.clear f.buf;
    f.fmarks <- []
  end

let flight_append f ?label records =
  (match label with
  | Some l -> f.fmarks <- (Buffer.length f.buf, l) :: f.fmarks
  | None -> ());
  Buffer.add_string f.buf records

(* Default-buffered mode: adding data that would overflow the BIO buffer
   first flushes what is pending; oversized chunks then go straight out. *)
let flight_emit f ?label records =
  match f.cfg.Config.buffering with
  | Config.Optimized_push -> flight_append f ?label records
  | Config.Default_buffered ->
    let len = String.length records in
    if Buffer.length f.buf + len > f.cfg.Config.buffer_limit then flight_flush f;
    if len > f.cfg.Config.buffer_limit then
      Netsim.Tcp.write f.peer.tcp
        ~marks:(match label with Some l -> [ (0, l) ] | None -> [])
        records
    else flight_append f ?label records

(* flush point honoured only by the optimized server *)
let flight_push_point f =
  match f.cfg.Config.buffering with
  | Config.Optimized_push -> flight_flush f
  | Config.Default_buffered -> ()

(* ---- server ------------------------------------------------------------- *)

type server_ctx = {
  s_cfg : Config.t;
  s_creds : Credentials.t;
  s_rng : Crypto.Drbg.t;
  s_flight : flight;
  mutable s_secrets : K.secrets option;
  mutable s_write : Record.t option;
  mutable s_client_hs_secret : string;
  mutable s_expect : [ `Client_hello | `Client_finished ];
  s_on_done : unit -> unit;
}

let server_encrypt ctx msg =
  match ctx.s_write with
  | None -> Codec.fragment_plaintext msg
  | Some crypt -> Codec.fragment_encrypted crypt msg

let kem_costs cfg = Pqc.Costs.kem cfg.Config.kem.Pqc.Kem.name
let sig_costs cfg = Pqc.Costs.sig_ cfg.Config.sig_alg.Pqc.Sigalg.name

let server_on_client_hello ctx (p : peer) msg =
  let cfg = ctx.s_cfg in
  let parse_cost =
    { Pqc.Costs.parse_client_hello with
      Pqc.Costs.ms =
        Pqc.Costs.parse_client_hello.Pqc.Costs.ms
        +. (sig_costs cfg).Pqc.Costs.ch_overhead }
  in
  charge p.host parse_cost @@ fun () ->
  let ch = M.decode_client_hello msg in
  if ch.M.group <> cfg.Config.kem.Pqc.Kem.name then begin
    (* wrong key-share guess: answer with HelloRetryRequest (2-RTT path) *)
    Transcript.add p.transcript msg;
    let hrr = encode_hrr ~session_id:ch.M.session_id
                ~group:cfg.Config.kem.Pqc.Kem.name in
    restart_transcript_after_ch1 p hrr;
    charge p.host Pqc.Costs.build_server_flight @@ fun () ->
    Netsim.Tcp.write p.tcp ~marks:[ (0, "HRR") ] (Codec.fragment_plaintext hrr);
    finish_step p
  end
  else
  charge p.host (kem_costs cfg).Pqc.Costs.kem_encaps @@ fun () ->
  let ct, shared_secret = cfg.Config.kem.Pqc.Kem.encaps ctx.s_rng ch.M.key_share in
  Transcript.add p.transcript msg;
  let sh =
    M.encode_server_hello
      { M.sh_random = Crypto.Drbg.generate ctx.s_rng 32;
        sh_session_id = ch.M.session_id;
        sh_group = cfg.Config.kem.Pqc.Kem.name;
        sh_key_share = ct }
  in
  Transcript.add p.transcript sh;
  charge p.host Pqc.Costs.build_server_flight @@ fun () ->
  charge_n p.host Pqc.Costs.key_schedule_derive 4 @@ fun () ->
  let hello_hash = Transcript.current p.transcript in
  let secrets = K.handshake_secrets ~shared_secret ~hello_transcript_hash:hello_hash in
  ctx.s_secrets <- Some secrets;
  ctx.s_client_hs_secret <- secrets.K.client_handshake_traffic;
  (* ServerHello and the compatibility CCS travel in the clear *)
  flight_emit ctx.s_flight ~label:"SH" (Codec.fragment_plaintext sh);
  flight_emit ctx.s_flight ccs_record;
  ctx.s_write <- Some (make_record cfg secrets.K.server_handshake_traffic);
  flight_push_point ctx.s_flight;
  (* EncryptedExtensions + Certificate do not wait for the signature *)
  let ee = M.encode_encrypted_extensions () in
  Transcript.add p.transcript ee;
  flight_emit ctx.s_flight ~label:"EE" (server_encrypt ctx ee);
  let cert_msg = M.encode_certificate ctx.s_creds.Credentials.chain.Certificate.leaf in
  Transcript.add p.transcript cert_msg;
  flight_emit ctx.s_flight ~label:"CERT" (server_encrypt ctx cert_msg);
  flight_push_point ctx.s_flight;
  charge p.host (sig_costs cfg).Pqc.Costs.sign @@ fun () ->
  let cv_content =
    M.cv_signed_content ~transcript_hash:(Transcript.current p.transcript)
  in
  let signature =
    cfg.Config.sig_alg.Pqc.Sigalg.sign ctx.s_rng
      ~secret:ctx.s_creds.Credentials.server_key.Pqc.Sigalg.secret cv_content
  in
  let cv =
    M.encode_certificate_verify
      { M.cv_algorithm = cfg.Config.sig_alg.Pqc.Sigalg.name;
        cv_signature = signature }
  in
  Transcript.add p.transcript cv;
  flight_emit ctx.s_flight ~label:"CV" (server_encrypt ctx cv);
  charge p.host Pqc.Costs.key_schedule_derive @@ fun () ->
  let mac =
    K.finished_mac
      ~traffic_secret:(Option.get ctx.s_secrets).K.server_handshake_traffic
      ~transcript_hash:(Transcript.current p.transcript)
  in
  let fin = M.encode_finished mac in
  Transcript.add p.transcript fin;
  flight_emit ctx.s_flight ~label:"FIN" (server_encrypt ctx fin);
  flight_flush ctx.s_flight;
  ctx.s_expect <- `Client_finished;
  (* client Finished arrives under the client handshake traffic keys *)
  Codec.Inbound.enable_decryption p.inbound
    (make_record cfg ctx.s_client_hs_secret);
  finish_step p

let server_on_client_finished ctx (p : peer) msg =
  charge p.host Pqc.Costs.key_schedule_derive @@ fun () ->
  let expected =
    K.finished_mac ~traffic_secret:ctx.s_client_hs_secret
      ~transcript_hash:(Transcript.current p.transcript)
  in
  if not (Crypto.Bytesx.equal_ct (M.decode_finished msg) expected) then
    raise (Wire.Decode_error "client Finished MAC mismatch");
  Transcript.add p.transcript msg;
  p.done_ <- true;
  ctx.s_on_done ();
  finish_step p

let server_dispatch ctx p msg =
  match ctx.s_expect with
  | `Client_hello -> server_on_client_hello ctx p msg
  | `Client_finished -> server_on_client_finished ctx p msg

(* ---- client ------------------------------------------------------------- *)

type client_ctx = {
  c_cfg : Config.t;
  c_rng : Crypto.Drbg.t;
  c_creds : Credentials.t; (* for the trusted CA public key *)
  mutable c_keypair : Pqc.Kem.keypair option;
  mutable c_session_id : string;
  mutable c_retried : bool;
  mutable c_secrets : K.secrets option;
  mutable c_expect :
    [ `Server_hello | `Encrypted_extensions | `Certificate | `Cert_verify
    | `Finished ];
  mutable c_server_cert : Certificate.t option;
  c_on_done : unit -> unit;
}

let client_dispatch ctx (p : peer) msg =
  let cfg = ctx.c_cfg in
  match (ctx.c_expect, M.handshake_type msg) with
  | `Server_hello, Wire.Handshake_type.Server_hello
    when is_hrr (M.decode_server_hello msg) ->
    if ctx.c_retried then raise (Wire.Decode_error "second HelloRetryRequest");
    ctx.c_retried <- true;
    charge p.host Pqc.Costs.parse_server_flight @@ fun () ->
    restart_transcript_after_ch1 p msg;
    (* now compute the share the server actually wants *)
    charge p.host (kem_costs cfg).Pqc.Costs.kem_keygen @@ fun () ->
    ctx.c_keypair <- Some (cfg.Config.kem.Pqc.Kem.keygen ctx.c_rng);
    let ch2 =
      M.encode_client_hello
        { M.random = Crypto.Drbg.generate ctx.c_rng 32;
          session_id = ctx.c_session_id;
          group = cfg.Config.kem.Pqc.Kem.name;
          key_share = (Option.get ctx.c_keypair).Pqc.Kem.public;
          sig_algs = [ cfg.Config.sig_alg.Pqc.Sigalg.name ] }
    in
    Transcript.add p.transcript ch2;
    Netsim.Tcp.write p.tcp ~marks:[ (0, "CH2") ] (Codec.fragment_plaintext ch2);
    finish_step p
  | `Server_hello, Wire.Handshake_type.Server_hello ->
    charge p.host Pqc.Costs.parse_server_flight @@ fun () ->
    let sh = M.decode_server_hello msg in
    charge p.host (kem_costs cfg).Pqc.Costs.kem_decaps @@ fun () ->
    let keypair = Option.get ctx.c_keypair in
    let shared_secret =
      cfg.Config.kem.Pqc.Kem.decaps keypair.Pqc.Kem.secret sh.M.sh_key_share
    in
    Transcript.add p.transcript msg;
    charge_n p.host Pqc.Costs.key_schedule_derive 4 @@ fun () ->
    let secrets =
      K.handshake_secrets ~shared_secret
        ~hello_transcript_hash:(Transcript.current p.transcript)
    in
    ctx.c_secrets <- Some secrets;
    Codec.Inbound.enable_decryption p.inbound
      (make_record cfg secrets.K.server_handshake_traffic);
    ctx.c_expect <- `Encrypted_extensions;
    finish_step p
  | `Encrypted_extensions, Wire.Handshake_type.Encrypted_extensions ->
    Transcript.add p.transcript msg;
    ctx.c_expect <- `Certificate;
    finish_step p
  | `Certificate, Wire.Handshake_type.Certificate ->
    let cert = M.decode_certificate msg in
    charge p.host (sig_costs cfg).Pqc.Costs.verify @@ fun () ->
    (* PKI check: leaf signature under the trusted CA key *)
    let chain =
      { Certificate.leaf = cert;
        ca_public_key = ctx.c_creds.Credentials.chain.Certificate.ca_public_key }
    in
    if not (Certificate.verify chain cfg.Config.sig_alg) then
      raise (Wire.Decode_error "certificate chain verification failed");
    ctx.c_server_cert <- Some cert;
    Transcript.add p.transcript msg;
    ctx.c_expect <- `Cert_verify;
    finish_step p
  | `Cert_verify, Wire.Handshake_type.Certificate_verify ->
    let cv = M.decode_certificate_verify msg in
    let content =
      M.cv_signed_content ~transcript_hash:(Transcript.current p.transcript)
    in
    charge p.host (sig_costs cfg).Pqc.Costs.verify @@ fun () ->
    let cert = Option.get ctx.c_server_cert in
    if
      not
        (cfg.Config.sig_alg.Pqc.Sigalg.verify ~public:cert.Certificate.public_key
           ~msg:content cv.M.cv_signature)
    then raise (Wire.Decode_error "CertificateVerify signature invalid");
    Transcript.add p.transcript msg;
    ctx.c_expect <- `Finished;
    finish_step p
  | `Finished, Wire.Handshake_type.Finished ->
    charge p.host Pqc.Costs.key_schedule_derive @@ fun () ->
    let secrets = Option.get ctx.c_secrets in
    let expected =
      K.finished_mac ~traffic_secret:secrets.K.server_handshake_traffic
        ~transcript_hash:(Transcript.current p.transcript)
    in
    if not (Crypto.Bytesx.equal_ct (M.decode_finished msg) expected) then
      raise (Wire.Decode_error "server Finished MAC mismatch");
    Transcript.add p.transcript msg;
    charge p.host Pqc.Costs.build_client_finished @@ fun () ->
    let mac =
      K.finished_mac ~traffic_secret:secrets.K.client_handshake_traffic
        ~transcript_hash:(Transcript.current p.transcript)
    in
    let fin = M.encode_finished mac in
    Transcript.add p.transcript fin;
    let crypt = make_record cfg secrets.K.client_handshake_traffic in
    let records = ccs_record ^ Codec.fragment_encrypted crypt fin in
    Netsim.Tcp.write p.tcp ~marks:[ (0, "FIN_C") ] records;
    (* application traffic secrets, as OpenSSL derives them eagerly *)
    charge_n p.host Pqc.Costs.key_schedule_derive 2 @@ fun () ->
    ignore
      (K.application_secrets ~master:secrets.K.master
         ~finished_transcript_hash:(Transcript.current p.transcript));
    p.done_ <- true;
    ctx.c_on_done ();
    finish_step p
  | _, ty ->
    raise
      (Wire.Decode_error
         (Printf.sprintf "unexpected %s" (Wire.Handshake_type.label ty)))

(* ---- driver ------------------------------------------------------------- *)

let run ~engine ~link ~tcp_config ~client_host ~server_host ~config ~rng
    ~on_done =
  let client_tcp, server_tcp =
    Netsim.Tcp.create_pair engine link tcp_config ~client:client_host
      ~server:server_host
  in
  let client_peer = make_peer client_host client_tcp in
  let server_peer = make_peer server_host server_tcp in
  let creds = Credentials.get config.Config.sig_alg in
  let client_done_at = ref nan and server_done_at = ref nan in
  let maybe_done () =
    if not (Float.is_nan !client_done_at || Float.is_nan !server_done_at) then
      on_done
        { client_finished_at = !client_done_at;
          server_finished_at = !server_done_at;
          client_tcp;
          server_tcp }
  in
  let server_ctx =
    { s_cfg = config; s_creds = creds; s_rng = Crypto.Drbg.fork rng "server";
      s_flight = make_flight config server_peer; s_secrets = None;
      s_write = None; s_client_hs_secret = ""; s_expect = `Client_hello;
      s_on_done =
        (fun () ->
          server_done_at := Netsim.Engine.now engine;
          maybe_done ()) }
  in
  server_peer.dispatch <- (fun p msg -> server_dispatch server_ctx p msg);
  let client_ctx =
    { c_cfg = config; c_rng = Crypto.Drbg.fork rng "client"; c_creds = creds;
      c_keypair = None; c_session_id = ""; c_retried = false;
      c_secrets = None; c_expect = `Server_hello;
      c_server_cert = None;
      c_on_done =
        (fun () ->
          client_done_at := Netsim.Engine.now engine;
          maybe_done ()) }
  in
  client_peer.dispatch <- (fun p msg -> client_dispatch client_ctx p msg);
  (* the client pre-computes its key share, then opens the connection;
     none of this is inside the measured phases (Fig. 1). With
     [wrong_first_key_share] it guesses a group the server will refuse. *)
  let guess_cost =
    if config.Config.wrong_first_key_share then
      (Pqc.Costs.kem "x25519").Pqc.Costs.kem_keygen
    else (kem_costs config).Pqc.Costs.kem_keygen
  in
  charge client_host guess_cost @@ fun () ->
  let first_group, first_share =
    if config.Config.wrong_first_key_share then
      ("wrong-guess", Crypto.Drbg.generate client_ctx.c_rng 32)
    else begin
      client_ctx.c_keypair <-
        Some (config.Config.kem.Pqc.Kem.keygen client_ctx.c_rng);
      ( config.Config.kem.Pqc.Kem.name,
        (Option.get client_ctx.c_keypair).Pqc.Kem.public )
    end
  in
  Netsim.Tcp.connect client_tcp ~on_established:(fun () ->
      charge client_host Pqc.Costs.build_client_finished @@ fun () ->
      client_ctx.c_session_id <- Crypto.Drbg.generate client_ctx.c_rng 32;
      let ch =
        M.encode_client_hello
          { M.random = Crypto.Drbg.generate client_ctx.c_rng 32;
            session_id = client_ctx.c_session_id;
            group = first_group;
            key_share = first_share;
            sig_algs = [ config.Config.sig_alg.Pqc.Sigalg.name ] }
      in
      Transcript.add client_peer.transcript ch;
      Netsim.Tcp.write client_tcp ~marks:[ (0, "CH") ]
        (Codec.fragment_plaintext ch))
