(** Multi-certificate hierarchies for the signature-placement study: a
    root / N intermediates / leaf chain where every level carries its own
    {!Pqc.Sigalg.t}, shaped by a {!Chain_profile.t}.

    The wire carries the leaf plus the intermediates (leaf first, RFC 8446
    section 4.4.2 order); the root stays in the trust store as
    [anchor_key]. The [default] profile reproduces the pre-chain
    behaviour exactly — same DRBG draws, same lone leaf certificate. *)

type t = {
  certs : Certificate.t list;  (** wire order, leaf first; root not sent *)
  issuers : Pqc.Sigalg.t list;
      (** same length as [certs]: the algorithm that signed each one *)
  leaf_alg : Pqc.Sigalg.t;  (** the campaign SA (signs the handshake) *)
  anchor_key : string;  (** trust-anchor public key (root, or lone CA) *)
  anchor_alg : string;
  profile : Chain_profile.t;
}

val make :
  Chain_profile.t ->
  leaf:Pqc.Sigalg.t ->
  Crypto.Drbg.t ->
  t * Pqc.Sigalg.keypair
(** Deterministically generates every level's keypair and issues the
    chain top-down; returns the chain and the leaf (server) keypair.
    CA-level algorithms are wrapped {!Pqc.Sigalg.mocked} whenever the
    leaf algorithm is mocked, keeping mocked==real byte-identity. *)

val leaf : t -> Certificate.t
val wire_certs : t -> Certificate.t list
val issuer_algs : t -> Pqc.Sigalg.t list

val verify_against : local:t -> Certificate.t list -> bool
(** Client-side full-chain verification of a received CertificateEntry
    list against the locally trusted chain: depth must match (truncation
    fails), each level's signature algorithm must match the expected
    placement (wrong-level SA fails), and every signature must verify up
    to [local.anchor_key] (tampering or an unknown root fails). *)

val verify : t -> bool
(** Self-check: [verify_against ~local:t t.certs]. *)

(** Per-level wire-size and verification-CPU breakdown. *)
type level_stat = {
  lv_name : string;  (** ["leaf"], ["int1"], ... *)
  lv_subject_sa : string;  (** algorithm of this level's key *)
  lv_issuer_sa : string;  (** algorithm that signed this certificate *)
  lv_bytes : int;  (** CertificateEntry bytes incl. per-entry framing *)
  lv_verify_ms : float;  (** Table 3 verify cost for the issuing SA *)
}

val entry_overhead : int
(** Per-entry framing bytes: vec24 length prefix + empty extensions. *)

val levels : t -> level_stat list
val wire_bytes : t -> int
(** Sum of entry bytes — the Certificate-message payload the chain adds. *)

val verify_ms : t -> float
(** Total full-chain verification CPU in virtual ms. *)
