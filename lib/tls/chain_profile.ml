type level = Leaf_alg | Named of string

type t = {
  name : string;
  label : string;
  intermediates : level list;
  root : level;
  description : string;
}

let default =
  { name = "default";
    label = "leaf-only";
    intermediates = [];
    root = Leaf_alg;
    description =
      "Leaf certificate only, anchored directly at a CA key of the \
       campaign SA (the paper's Section 5 setup)." }

let classical_shape =
  { name = "classical-shape";
    label = "web-PKI shape";
    intermediates = [ Leaf_alg ];
    root = Leaf_alg;
    description =
      "Root -> intermediate -> leaf, every level signed with the campaign \
       SA: the common web-PKI shape, so the wire now also carries the \
       intermediate." }

let mldsa_all =
  { name = "mldsa-all";
    label = "ML-DSA CAs";
    intermediates = [ Named "dilithium2" ];
    root = Named "dilithium3";
    description =
      "ML-DSA at both CA levels (dilithium2 intermediate under a \
       dilithium3 root); only the leaf varies with the campaign SA." }

let slhdsa_root =
  { name = "slhdsa-root";
    label = "SLH-DSA root";
    intermediates = [ Named "dilithium2" ];
    root = Named "sphincs128";
    description =
      "Conservative hash-based root (sphincs128) over a dilithium2 \
       intermediate: the placement the signature-placement paper \
       recommends, since root signatures never cross the wire." }

let mixed_acme =
  { name = "mixed-acme";
    label = "enterprise ACME";
    intermediates = [ Named "dilithium2"; Named "dilithium3" ];
    root = Named "sphincs192";
    description =
      "Depth-4 enterprise/ACME hierarchy: two ML-DSA intermediates under \
       an offline sphincs192 root, so two intermediates ride in the \
       server flight." }

let all = [ default; classical_shape; mldsa_all; slhdsa_root; mixed_acme ]

let find name =
  match List.find_opt (fun p -> p.name = name) all with
  | Some p -> p
  | None ->
    invalid_arg
      (Printf.sprintf "Chain_profile.find: unknown profile %S (have %s)" name
         (String.concat ", " (List.map (fun p -> p.name) all)))

let is_default p = p.name = default.name

(* root + intermediates + leaf *)
let depth p = 2 + List.length p.intermediates

let level_names p =
  let ints = List.mapi (fun i _ -> Printf.sprintf "int%d" (i + 1)) p.intermediates in
  ("leaf" :: ints) @ [ "root" ]
