(** TLS 1.3 handshake message codecs (RFC 8446 section 4), carrying the
    fields this study needs and realistic extension framing for the rest
    so that message sizes track a real OpenSSL handshake. *)

type psk_offer = {
  psk_identity : string;  (** the opaque (STEK-sealed) ticket *)
  psk_obfuscated_age : int;  (** ticket_age_add-obfuscated age, u32 *)
  psk_binder : string;  (** 32-byte HMAC over the truncated CH transcript *)
}

type client_hello = {
  random : string;  (** 32 bytes *)
  session_id : string;  (** 32 bytes of compatibility randomness *)
  group : string;  (** offered (and pre-computed) key-share group name *)
  key_share : string;
  sig_algs : string list;
  psk_offer : psk_offer option;  (** a resumption offer (psk_dhe_ke) *)
  early_data : bool;  (** 0-RTT offered (only meaningful with [psk]) *)
}

type server_hello = {
  sh_random : string;
  sh_session_id : string;
  sh_group : string;
  sh_key_share : string;  (** the KEM ciphertext / server DH share *)
  sh_psk_selected : bool;
      (** pre_shared_key acceptance (selected_identity 0) *)
}

type new_session_ticket = {
  nst_lifetime : int;  (** seconds, u32 *)
  nst_age_add : int;  (** u32 *)
  nst_nonce : string;  (** input to the "resumption" PSK derivation *)
  nst_ticket : string;  (** opaque to the client *)
  nst_max_early_data : int;  (** 0 = ticket does not permit 0-RTT *)
}

type certificate_verify = { cv_algorithm : string; cv_signature : string }

val encode_client_hello : client_hello -> string
(** The full handshake message (header included). When a PSK is offered
    the encoder asserts that pre_shared_key is the last extension
    (RFC 8446 section 4.2.11) and drops the legacy session_ticket stub. *)

val decode_client_hello : string -> client_hello
(** @raise Wire.Decode_error if a pre_shared_key extension is present
    but not last. *)

val truncated_client_hello : client_hello -> string
(** The encoded ClientHello minus the binders list — the transcript the
    binder MAC covers (section 4.2.11.2). Only valid with a PSK offer. *)

val binders_length : int
(** Wire size of the single-entry binders list the truncation removes. *)

val encode_server_hello : server_hello -> string
val decode_server_hello : string -> server_hello

val encode_encrypted_extensions : ?early_data_accepted:bool -> unit -> string

val ee_early_data_accepted : string -> bool
(** Whether an encoded EncryptedExtensions carries the early_data ack. *)

val encode_certificate_chain : Certificate.t list -> string
(** RFC 8446 section 4.4.2 CertificateEntry list, leaf first, each entry
    with an explicit (empty) per-entry extensions length. *)

val decode_certificate_chain : string -> Certificate.t list
(** @raise Wire.Decode_error on an empty certificate_list. *)

val encode_certificate : Certificate.t -> string
(** [encode_certificate_chain] of the single leaf — byte-identical to the
    historical single-entry encoding (asserted in tests). *)

val decode_certificate : string -> Certificate.t
(** @raise Wire.Decode_error unless the list has exactly one entry. *)

val encode_certificate_verify : certificate_verify -> string
val decode_certificate_verify : string -> certificate_verify

val cv_signed_content : transcript_hash:string -> string
(** The to-be-signed blob of section 4.4.3 (context string + hash). *)

val encode_new_session_ticket : new_session_ticket -> string
val decode_new_session_ticket : string -> new_session_ticket

val encode_end_of_early_data : unit -> string
(** EndOfEarlyData (section 4.5): closes the 0-RTT stream. *)

val encode_finished : string -> string
val decode_finished : string -> string

val body : string -> string
(** Strip the 4-byte handshake header. *)

val handshake_type : string -> Wire.Handshake_type.t
