type secrets = {
  client_handshake_traffic : string;
  server_handshake_traffic : string;
  master : string;
}

let hash = Crypto.Hmac.sha256
let zeros = String.make hash.Crypto.Hmac.digest_size '\000'

let hkdf_expand_label ~secret ~label ~context len =
  let hkdf_label =
    Crypto.Bytesx.u16_be len
    ^ Wire.vec8 ("tls13 " ^ label)
    ^ Wire.vec8 context
  in
  Crypto.Hkdf.expand hash ~prk:secret ~info:hkdf_label len

let derive_secret ~secret ~label ~transcript_hash =
  hkdf_expand_label ~secret ~label ~context:transcript_hash
    hash.Crypto.Hmac.digest_size

let empty_hash = hash.Crypto.Hmac.digest ""

(* The early-secret extract of the RFC's diagram: [ikm] is the PSK when
   resuming and all-zero otherwise, so the no-PSK output is unchanged. *)
let early_secret ?psk () =
  Crypto.Hkdf.extract hash ~salt:"" ~ikm:(Option.value ~default:zeros psk)

let binder_key ~early_secret =
  (* resumption PSKs only: the "res binder" branch of section 7.1 *)
  derive_secret ~secret:early_secret ~label:"res binder"
    ~transcript_hash:empty_hash

let binder_mac ~binder_key ~truncated_transcript_hash =
  (* the binder is computed exactly like a Finished MAC (section 4.2.11.2),
     over the transcript of the ClientHello truncated before the binders *)
  let k =
    hkdf_expand_label ~secret:binder_key ~label:"finished" ~context:""
      hash.Crypto.Hmac.digest_size
  in
  Crypto.Hmac.hmac hash ~key:k truncated_transcript_hash

let client_early_traffic ~early_secret ~client_hello_hash =
  derive_secret ~secret:early_secret ~label:"c e traffic"
    ~transcript_hash:client_hello_hash

let handshake_secrets ?psk ~shared_secret ~hello_transcript_hash () =
  let early = early_secret ?psk () in
  let derived = derive_secret ~secret:early ~label:"derived" ~transcript_hash:empty_hash in
  let hs = Crypto.Hkdf.extract hash ~salt:derived ~ikm:shared_secret in
  let client_handshake_traffic =
    derive_secret ~secret:hs ~label:"c hs traffic"
      ~transcript_hash:hello_transcript_hash
  and server_handshake_traffic =
    derive_secret ~secret:hs ~label:"s hs traffic"
      ~transcript_hash:hello_transcript_hash
  in
  let hs_derived =
    derive_secret ~secret:hs ~label:"derived" ~transcript_hash:empty_hash
  in
  let master = Crypto.Hkdf.extract hash ~salt:hs_derived ~ikm:zeros in
  { client_handshake_traffic; server_handshake_traffic; master }

type traffic_keys = { key : string; iv : string }

let traffic_keys secret =
  { key = hkdf_expand_label ~secret ~label:"key" ~context:"" 16;
    iv = hkdf_expand_label ~secret ~label:"iv" ~context:"" 12 }

let finished_mac ~traffic_secret ~transcript_hash =
  let finished_key =
    hkdf_expand_label ~secret:traffic_secret ~label:"finished" ~context:""
      hash.Crypto.Hmac.digest_size
  in
  Crypto.Hmac.hmac hash ~key:finished_key transcript_hash

let application_secrets ~master ~finished_transcript_hash =
  ( derive_secret ~secret:master ~label:"c ap traffic"
      ~transcript_hash:finished_transcript_hash,
    derive_secret ~secret:master ~label:"s ap traffic"
      ~transcript_hash:finished_transcript_hash )

let resumption_master ~master ~finished_transcript_hash =
  (* over the transcript including the client Finished (section 7.1) *)
  derive_secret ~secret:master ~label:"res master"
    ~transcript_hash:finished_transcript_hash

let resumption_psk ~resumption_master ~ticket_nonce =
  (* PSK associated with one NewSessionTicket (section 4.6.1) *)
  hkdf_expand_label ~secret:resumption_master ~label:"resumption"
    ~context:ticket_nonce hash.Crypto.Hmac.digest_size
