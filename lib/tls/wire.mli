(** TLS wire-format helpers: length-prefixed vectors, record and
    handshake-message framing (RFC 8446 section 3-5), and a bounds-checked
    cursor for parsing. *)

exception Decode_error of string

val vec8 : string -> string
val vec16 : string -> string
val vec24 : string -> string
(** Length-prefixed opaque vectors. *)

(** TLS record content types. *)
module Content_type : sig
  type t = Change_cipher_spec | Alert | Handshake | Application_data

  val to_byte : t -> int
  val of_byte : int -> t
end

val record : Content_type.t -> string -> string
(** A TLSPlaintext/TLSCiphertext record with the 5-byte header
    (legacy version 0x0303). *)

(** Handshake message types. *)
module Handshake_type : sig
  type t =
    | Client_hello
    | Server_hello
    | New_session_ticket
    | End_of_early_data
    | Encrypted_extensions
    | Certificate
    | Certificate_verify
    | Finished

  val to_byte : t -> int
  val of_byte : int -> t
  val label : t -> string
end

val handshake : Handshake_type.t -> string -> string
(** A handshake message with its 4-byte type+length header. *)

module Reader : sig
  type t

  val of_string : string -> t
  val remaining : t -> int
  val u8 : t -> int
  val u16 : t -> int
  val u24 : t -> int
  val u32 : t -> int
  val bytes : t -> int -> string
  val vec8 : t -> string
  val vec16 : t -> string
  val vec24 : t -> string
  val expect_end : t -> unit
end
