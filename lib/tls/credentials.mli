(** Server credentials (certificate chain + private key), generated once
    per signature algorithm x chain profile and cached: the paper
    pre-provisions one certificate per SA, so certificate generation is
    never part of a measured handshake. *)

type t = {
  chain : Chain.t;
  server_key : Pqc.Sigalg.keypair;
  alg : Pqc.Sigalg.t;  (** the leaf (campaign) signature algorithm *)
  profile : Chain_profile.t;
}

val get : ?profile:Chain_profile.t -> Pqc.Sigalg.t -> t
(** Cached by algorithm name and chain profile, so mixed-profile
    campaigns never collide on a cached chain; deterministic (the DRBG
    seed is derived from the cache key). [?profile] defaults to
    {!Chain_profile.default}, whose key and seed are byte-identical to
    the pre-chain scheme. *)
