module W = Wire
module HT = Wire.Handshake_type

type psk_offer = {
  psk_identity : string;  (* the opaque (STEK-sealed) ticket *)
  psk_obfuscated_age : int;
  psk_binder : string;  (* 32-byte HMAC over the truncated CH transcript *)
}

type client_hello = {
  random : string;
  session_id : string;
  group : string;
  key_share : string;
  sig_algs : string list;
  psk_offer : psk_offer option;
  early_data : bool;
}

type server_hello = {
  sh_random : string;
  sh_session_id : string;
  sh_group : string;
  sh_key_share : string;
  sh_psk_selected : bool;  (* pre_shared_key { selected_identity = 0 } *)
}

type new_session_ticket = {
  nst_lifetime : int;  (* seconds, u32 *)
  nst_age_add : int;  (* u32 *)
  nst_nonce : string;
  nst_ticket : string;  (* opaque to the client *)
  nst_max_early_data : int;  (* 0 = ticket does not permit 0-RTT *)
}

type certificate_verify = { cv_algorithm : string; cv_signature : string }

(* cipher suites offered: TLS_AES_128_GCM_SHA256, TLS_AES_256_GCM_SHA384,
   TLS_CHACHA20_POLY1305_SHA256 *)
let cipher_suites = "\x13\x01\x13\x02\x13\x03"
let selected_suite = "\x13\x01"

let extension ty body = Crypto.Bytesx.u16_be ty ^ W.vec16 body

(* The OpenSSL s_client CH also carries SNI, EC point formats, session
   ticket, encrypt-then-mac, extended master secret, PSK modes and
   padding-free framing; modelled with realistic bodies. *)
let client_extensions ch =
  let sni =
    extension 0 (W.vec16 ("\x00" ^ W.vec16 "server.pqtls.example"))
  in
  let supported_versions = extension 43 (W.vec8 "\x03\x04") in
  let groups =
    (* the client announces a handful of groups; two bytes each *)
    let ids = String.concat "" (List.init 12 (fun i -> Crypto.Bytesx.u16_be (0x0100 + i))) in
    extension 10 (W.vec16 ids)
  in
  let sig_algs =
    let ids =
      String.concat ""
        (List.init (max 17 (List.length ch.sig_algs)) (fun i ->
             Crypto.Bytesx.u16_be (0x0800 + i)))
    in
    extension 13 (W.vec16 ids)
  in
  let key_share =
    extension 51 (W.vec16 (Crypto.Bytesx.u16_be 0x0199 ^ W.vec16 ch.key_share))
  in
  (* psk_key_exchange_modes: psk_dhe_ke only (section 4.2.9) *)
  let psk_modes = extension 45 (W.vec8 "\x01") in
  let misc =
    (* EMS, EtM, record size limit: fixed small bodies. The legacy
       session_ticket (35) stub is only advertised on full handshakes:
       offering a real TLS 1.3 PSK alongside a fake empty ticket body
       would be a wire lie. *)
    (match ch.psk_offer with None -> extension 35 "" | Some _ -> "")
    ^ extension 23 "" ^ extension 22 "" ^ extension 28 "\x40\x01"
  in
  (* group and algorithm names ride in a private extension so the peer
     can resolve the exact algorithm without a numeric registry *)
  let names = extension 0xfd00 (W.vec8 ch.group ^ W.vec8 (String.concat "," ch.sig_algs)) in
  let early_data = if ch.early_data then extension 42 "" else "" in
  (* pre_shared_key MUST be the last extension (section 4.2.11): the
     binder MAC covers everything before it *)
  let pre_shared_key =
    match ch.psk_offer with
    | None -> ""
    | Some p ->
      let identity =
        W.vec16 p.psk_identity ^ Crypto.Bytesx.u32_be p.psk_obfuscated_age
      in
      extension 41 (W.vec16 identity ^ W.vec16 (W.vec8 p.psk_binder))
  in
  W.vec16
    (sni ^ supported_versions ^ groups ^ sig_algs ^ key_share ^ psk_modes
   ^ misc ^ names ^ early_data ^ pre_shared_key)

(* the wire size of the binders list: vec16 [ vec8 (32-byte binder) ] *)
let binders_length = 2 + 1 + 32

let assert_psk_last exts =
  (* encoder self-check for the section 4.2.11 MUST *)
  let r = W.Reader.of_string exts in
  let last = ref None in
  while W.Reader.remaining r > 0 do
    last := Some (W.Reader.u16 r);
    ignore (W.Reader.vec16 r)
  done;
  assert (!last = Some 41)

let encode_client_hello ch =
  let body =
    "\x03\x03" ^ ch.random ^ W.vec8 ch.session_id ^ W.vec16 cipher_suites
    ^ W.vec8 "\x00" (* null compression *)
    ^ client_extensions ch
  in
  (match ch.psk_offer with
  | None -> ()
  | Some p ->
    assert (String.length p.psk_binder = 32);
    let exts = client_extensions ch in
    assert_psk_last (String.sub exts 2 (String.length exts - 2)));
  W.handshake HT.Client_hello body

let truncated_client_hello ch =
  (* the binder transcript: the encoded CH minus the binders list
     (section 4.2.11.2) *)
  assert (ch.psk_offer <> None);
  let full = encode_client_hello ch in
  String.sub full 0 (String.length full - binders_length)

let find_extension_opt exts ty =
  let r = W.Reader.of_string exts in
  let rec go () =
    if W.Reader.remaining r = 0 then None
    else begin
      let t = W.Reader.u16 r in
      let body = W.Reader.vec16 r in
      if t = ty then Some body else go ()
    end
  in
  go ()

let find_extension exts ty =
  match find_extension_opt exts ty with
  | Some body -> body
  | None -> raise (W.Decode_error "extension missing")

let body msg =
  if String.length msg < 4 then raise (W.Decode_error "short handshake message");
  String.sub msg 4 (String.length msg - 4)

let handshake_type msg =
  if String.length msg < 4 then raise (W.Decode_error "short handshake message");
  HT.of_byte (Char.code msg.[0])

let decode_client_hello msg =
  if handshake_type msg <> HT.Client_hello then
    raise (W.Decode_error "not a ClientHello");
  let r = W.Reader.of_string (body msg) in
  let _version = W.Reader.u16 r in
  let random = W.Reader.bytes r 32 in
  let session_id = W.Reader.vec8 r in
  let _suites = W.Reader.vec16 r in
  let _comp = W.Reader.vec8 r in
  let exts = W.Reader.vec16 r in
  W.Reader.expect_end r;
  let key_share =
    (* client_shares list wrapper, then the single offered share *)
    let kr = W.Reader.of_string (find_extension exts 51) in
    let shares = W.Reader.of_string (W.Reader.vec16 kr) in
    let _group = W.Reader.u16 shares in
    W.Reader.vec16 shares
  in
  let names = W.Reader.of_string (find_extension exts 0xfd00) in
  let group = W.Reader.vec8 names in
  let sig_algs = String.split_on_char ',' (W.Reader.vec8 names) in
  let psk_offer =
    match find_extension_opt exts 41 with
    | None -> None
    | Some body ->
      (* receiver-side section 4.2.11 enforcement: pre_shared_key must
         close the extension block *)
      let er = W.Reader.of_string exts in
      let last = ref (-1) in
      while W.Reader.remaining er > 0 do
        last := W.Reader.u16 er;
        ignore (W.Reader.vec16 er)
      done;
      if !last <> 41 then
        raise (W.Decode_error "pre_shared_key is not the last extension");
      let r = W.Reader.of_string body in
      let ids = W.Reader.of_string (W.Reader.vec16 r) in
      let psk_identity = W.Reader.vec16 ids in
      let psk_obfuscated_age = W.Reader.u32 ids in
      W.Reader.expect_end ids;
      let binders = W.Reader.of_string (W.Reader.vec16 r) in
      let psk_binder = W.Reader.vec8 binders in
      W.Reader.expect_end binders;
      W.Reader.expect_end r;
      Some { psk_identity; psk_obfuscated_age; psk_binder }
  in
  let early_data = find_extension_opt exts 42 <> None in
  { random; session_id; group; key_share; sig_algs; psk_offer; early_data }

let server_extensions sh =
  let supported_versions = extension 43 "\x03\x04" in
  let key_share =
    extension 51 (Crypto.Bytesx.u16_be 0x0199 ^ W.vec16 sh.sh_key_share)
  in
  (* pre_shared_key: the accepted identity index (always 0 — one offer) *)
  let psk_ext =
    if sh.sh_psk_selected then extension 41 (Crypto.Bytesx.u16_be 0) else ""
  in
  let names = extension 0xfd00 (W.vec8 sh.sh_group) in
  W.vec16 (supported_versions ^ key_share ^ psk_ext ^ names)

let encode_server_hello sh =
  let body =
    "\x03\x03" ^ sh.sh_random ^ W.vec8 sh.sh_session_id ^ selected_suite
    ^ "\x00" (* compression *)
    ^ server_extensions sh
  in
  W.handshake HT.Server_hello body

let decode_server_hello msg =
  if handshake_type msg <> HT.Server_hello then
    raise (W.Decode_error "not a ServerHello");
  let r = W.Reader.of_string (body msg) in
  let _version = W.Reader.u16 r in
  let sh_random = W.Reader.bytes r 32 in
  let sh_session_id = W.Reader.vec8 r in
  let _suite = W.Reader.bytes r 2 in
  let _comp = W.Reader.u8 r in
  let exts = W.Reader.vec16 r in
  W.Reader.expect_end r;
  let sh_key_share =
    let ks = find_extension exts 51 in
    let kr = W.Reader.of_string ks in
    let _group = W.Reader.u16 kr in
    W.Reader.vec16 kr
  in
  let names = W.Reader.of_string (find_extension exts 0xfd00) in
  let sh_group = W.Reader.vec8 names in
  let sh_psk_selected = find_extension_opt exts 41 <> None in
  { sh_random; sh_session_id; sh_group; sh_key_share; sh_psk_selected }

let encode_encrypted_extensions ?(early_data_accepted = false) () =
  (* server name ack + ALPN-free empty extension block; the early_data
     ack (42) when the server accepts the client's 0-RTT offer *)
  let ed = if early_data_accepted then extension 42 "" else "" in
  W.handshake HT.Encrypted_extensions (W.vec16 (extension 0 "" ^ ed))

let ee_early_data_accepted msg =
  if handshake_type msg <> HT.Encrypted_extensions then
    raise (W.Decode_error "not an EncryptedExtensions");
  let r = W.Reader.of_string (body msg) in
  let exts = W.Reader.vec16 r in
  W.Reader.expect_end r;
  find_extension_opt exts 42 <> None

let encode_certificate_chain certs =
  (* certificate_request_context (empty) + one CertificateEntry per
     certificate, leaf first (RFC 8446 section 4.4.2), each carrying an
     empty per-entry extension list *)
  let entries =
    String.concat ""
      (List.map (fun c -> W.vec24 (Certificate.encode c) ^ W.vec16 "") certs)
  in
  W.handshake HT.Certificate (W.vec8 "" ^ W.vec24 entries)

let encode_certificate cert = encode_certificate_chain [ cert ]

let decode_certificate_chain msg =
  if handshake_type msg <> HT.Certificate then
    raise (W.Decode_error "not a Certificate");
  let r = W.Reader.of_string (body msg) in
  let _ctx = W.Reader.vec8 r in
  let entries = W.Reader.of_string (W.Reader.vec24 r) in
  let rec entry_loop acc =
    if W.Reader.remaining entries = 0 then List.rev acc
    else
      let cert = Certificate.decode (W.Reader.vec24 entries) in
      let _exts = W.Reader.vec16 entries in
      entry_loop (cert :: acc)
  in
  match entry_loop [] with
  | [] -> raise (W.Decode_error "Certificate: empty certificate_list")
  | certs -> certs

let decode_certificate msg =
  match decode_certificate_chain msg with
  | [ cert ] -> cert
  | _ -> raise (W.Decode_error "Certificate: expected a single entry")

let encode_certificate_verify cv =
  W.handshake HT.Certificate_verify
    (W.vec8 cv.cv_algorithm ^ W.vec16 cv.cv_signature)

let decode_certificate_verify msg =
  if handshake_type msg <> HT.Certificate_verify then
    raise (W.Decode_error "not a CertificateVerify");
  let r = W.Reader.of_string (body msg) in
  let cv_algorithm = W.Reader.vec8 r in
  let cv_signature = W.Reader.vec16 r in
  W.Reader.expect_end r;
  { cv_algorithm; cv_signature }

let cv_signed_content ~transcript_hash =
  String.make 64 ' ' ^ "TLS 1.3, server CertificateVerify" ^ "\x00"
  ^ transcript_hash

let encode_new_session_ticket nst =
  let exts =
    if nst.nst_max_early_data > 0 then
      extension 42 (Crypto.Bytesx.u32_be nst.nst_max_early_data)
    else ""
  in
  W.handshake HT.New_session_ticket
    (Crypto.Bytesx.u32_be nst.nst_lifetime
    ^ Crypto.Bytesx.u32_be nst.nst_age_add
    ^ W.vec8 nst.nst_nonce ^ W.vec16 nst.nst_ticket ^ W.vec16 exts)

let decode_new_session_ticket msg =
  if handshake_type msg <> HT.New_session_ticket then
    raise (W.Decode_error "not a NewSessionTicket");
  let r = W.Reader.of_string (body msg) in
  let nst_lifetime = W.Reader.u32 r in
  let nst_age_add = W.Reader.u32 r in
  let nst_nonce = W.Reader.vec8 r in
  let nst_ticket = W.Reader.vec16 r in
  let exts = W.Reader.vec16 r in
  W.Reader.expect_end r;
  let nst_max_early_data =
    match find_extension_opt exts 42 with
    | None -> 0
    | Some body ->
      let er = W.Reader.of_string body in
      let v = W.Reader.u32 er in
      W.Reader.expect_end er;
      v
  in
  { nst_lifetime; nst_age_add; nst_nonce; nst_ticket; nst_max_early_data }

let encode_end_of_early_data () = W.handshake HT.End_of_early_data ""

let encode_finished mac = W.handshake HT.Finished mac

let decode_finished msg =
  if handshake_type msg <> HT.Finished then raise (W.Decode_error "not a Finished");
  body msg
