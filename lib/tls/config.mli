(** Handshake configuration: the KA x SA pair under test and the OpenSSL
    message-buffering behaviour (section 4 of the paper). *)

type buffering =
  | Default_buffered
      (** OpenSSL's stock BIO buffer: the whole server flight is
          accumulated and flushed after CertificateVerify, unless a
          message overflows the 4096-byte buffer, which pushes everything
          computed so far (notably the SH) early. *)
  | Optimized_push
      (** The paper's patch: SH and Certificate are pushed to TCP the
          moment they are computed. *)

type t = {
  kem : Pqc.Kem.t;
  sig_alg : Pqc.Sigalg.t;
  buffering : buffering;
  buffer_limit : int;  (** 4096 in OpenSSL *)
  null_records : bool;
      (** size-preserving record protection; implied by mocked algorithms *)
  wrong_first_key_share : bool;
      (** the client's pre-computed key share misses the server's group,
          forcing the HelloRetryRequest 2-RTT fallback the paper
          deliberately configured away (section 2) — exposed here so its
          cost can be measured *)
  chain_profile : Chain_profile.t;
      (** certificate-hierarchy shape for the signature-placement study;
          {!Chain_profile.default} is the paper's leaf-only setup *)
}

val make :
  ?buffering:buffering ->
  ?buffer_limit:int ->
  ?wrong_first_key_share:bool ->
  ?chain_profile:Chain_profile.t ->
  Pqc.Kem.t ->
  Pqc.Sigalg.t ->
  t
(** Defaults: [Optimized_push], 4096, correct key-share guess,
    {!Chain_profile.default} (the paper's setting for Section 5 unless
    stated otherwise). *)

val mocked :
  ?buffering:buffering ->
  ?buffer_limit:int ->
  ?wrong_first_key_share:bool ->
  ?chain_profile:Chain_profile.t ->
  Pqc.Kem.t ->
  Pqc.Sigalg.t ->
  t
(** [make] over {!Pqc.Kem.mocked}/{!Pqc.Sigalg.mocked} algorithms: what
    the measurement campaigns use (see DESIGN.md on host-time flatness). *)
