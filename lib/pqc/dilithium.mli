(** CRYSTALS-Dilithium (round-3.1 parameter sets, as in the paper's
    OQS-OpenSSL): complete implementation with NTT arithmetic mod
    8380417, rejection sampling, hint encoding and deterministic signing.

    The [_aes] profiles replace SHAKE expansion of the matrix/vectors by
    AES-256-CTR, mirroring the [dilithiumN_aes] rows of Table 2b. *)

type params

val dilithium2 : params
val dilithium3 : params
val dilithium5 : params
val dilithium2_aes : params
val dilithium3_aes : params
val dilithium5_aes : params

val name : params -> string
val public_key_bytes : params -> int
val secret_key_bytes : params -> int
val signature_bytes : params -> int

val keygen : params -> Crypto.Drbg.t -> string * string
(** [(public_key, secret_key)]. *)

val sign : params -> string -> string -> string
(** [sign p sk msg] is the deterministic signature. *)

val verify : params -> string -> msg:string -> string -> bool
(** [verify p pk ~msg signature]. *)

val bench_ntt : unit -> unit -> unit
(** [bench_ntt ()] returns a thunk running one forward 256-coefficient
    NTT mod 8380417 over a fixed polynomial — the substrate-kernel hook
    behind [Core.Profile]. *)
