type lib = Libcrypto | Libssl | Kernel | Libc | Ixgbe | Python

let lib_name = function
  | Libcrypto -> "libcrypto"
  | Libssl -> "libssl"
  | Kernel -> "kernel"
  | Libc -> "libc"
  | Ixgbe -> "ixgbe"
  | Python -> "python"

type op = { ms : float; lib : lib; label : string }

type kem_costs = { kem_keygen : op; kem_encaps : op; kem_decaps : op }
type sig_costs = { sign : op; verify : op; ch_overhead : float }
(* ch_overhead: extra server-side ClientHello processing observed for the
   OQS-provider signature algorithms (Table 2b's partA spread) *)

let crypto ms = { ms; lib = Libcrypto; label = "" }
let ssl ms = { ms; lib = Libssl; label = "" }

(* Diffie-Hellman wrapped as a KEM. OpenSSL key generation uses fixed-base
   (precomputed-table) scalar multiplication and is several times cheaper
   than the variable-base derive; encapsulation does both on the server. *)
let dh_kem ~kg ~derive =
  { kem_keygen = crypto kg;
    kem_encaps = crypto (kg +. derive);
    kem_decaps = crypto derive }

(* (keygen, encaps, decaps) in ms; fit notes reference Table 2a columns. *)
let base_kems =
  [ (* x25519 partA 0.25 => encaps ~ 0.13 + overhead *)
    ("x25519", dh_kem ~kg:0.045 ~derive:0.085);
    (* OpenSSL has fast P-256, generic P-384/P-521 (partA 0.33/3.09/6.97) *)
    ("p256", dh_kem ~kg:0.055 ~derive:0.19);
    ("p384", dh_kem ~kg:0.67 ~derive:2.3);
    ("p521", dh_kem ~kg:1.85 ~derive:5.0);
    ("kyber512",
     { kem_keygen = crypto 0.03; kem_encaps = crypto 0.055; kem_decaps = crypto 0.33 });
    ("kyber768",
     { kem_keygen = crypto 0.04; kem_encaps = crypto 0.09; kem_decaps = crypto 0.36 });
    ("kyber1024",
     { kem_keygen = crypto 0.05; kem_encaps = crypto 0.12; kem_decaps = crypto 0.35 });
    (* 90s variants trade SHAKE for AES-NI: slightly cheaper (Sec. 5.1) *)
    ("kyber90s512",
     { kem_keygen = crypto 0.025; kem_encaps = crypto 0.045; kem_decaps = crypto 0.34 });
    ("kyber90s768",
     { kem_keygen = crypto 0.03; kem_encaps = crypto 0.07; kem_decaps = crypto 0.32 });
    ("kyber90s1024",
     { kem_keygen = crypto 0.04; kem_encaps = crypto 0.095; kem_decaps = crypto 0.33 });
    (* HQC: moderate encaps, heavier decaps; client share shows up in
       libssl in the paper's Table 3 *)
    ("hqc128",
     { kem_keygen = crypto 0.14; kem_encaps = crypto 0.17; kem_decaps = ssl 0.25 });
    ("hqc192",
     { kem_keygen = crypto 0.3; kem_encaps = crypto 0.43; kem_decaps = ssl 0.62 });
    ("hqc256",
     { kem_keygen = crypto 0.43; kem_encaps = crypto 0.62; kem_decaps = ssl 1.75 });
    (* BIKE: cheap encaps, very expensive client decoding living in
       libssl (Table 3's finding) *)
    ("bikel1",
     { kem_keygen = crypto 0.6; kem_encaps = crypto 0.11; kem_decaps = ssl 2.6 });
    ("bikel3",
     { kem_keygen = crypto 1.3; kem_encaps = crypto 0.29; kem_decaps = ssl 5.85 }) ]

(* (sign, verify); fit notes reference Table 2b. *)
let base_sigs =
  [ ("rsa:1024", { sign = crypto 0.57; verify = crypto 0.015; ch_overhead = 0.07 });
    ("rsa:2048", { sign = crypto 1.37; verify = crypto 0.035; ch_overhead = 0. });
    ("rsa:3072", { sign = crypto 3.3; verify = crypto 0.06; ch_overhead = 0.01 });
    ("rsa:4096", { sign = crypto 6.76; verify = crypto 0.1; ch_overhead = 0. });
    (* ECDSA used only inside hybrid SAs: signing is fixed-base (cheap),
       verification is a double scalar multiplication (~1.2x a derive) *)
    ("p256", { sign = crypto 0.07; verify = crypto 0.28; ch_overhead = 0.02 });
    ("p384", { sign = crypto 1.35; verify = crypto 1.55; ch_overhead = 0.02 });
    ("p521", { sign = crypto 3.2; verify = crypto 3.3; ch_overhead = 0.02 });
    ("falcon512", { sign = crypto 0.85; verify = crypto 0.06; ch_overhead = 0.11 });
    ("falcon1024", { sign = crypto 1.7; verify = crypto 0.12; ch_overhead = 0.13 });
    ("dilithium2", { sign = crypto 0.60; verify = crypto 0.1; ch_overhead = 0.14 });
    ("dilithium3", { sign = crypto 0.63; verify = crypto 0.16; ch_overhead = 0.11 });
    ("dilithium5", { sign = crypto 0.67; verify = crypto 0.25; ch_overhead = 0.11 });
    ("dilithium2_aes", { sign = crypto 0.54; verify = crypto 0.09; ch_overhead = 0.14 });
    ("dilithium3_aes", { sign = crypto 0.56; verify = crypto 0.14; ch_overhead = 0.13 });
    ("dilithium5_aes", { sign = crypto 0.58; verify = crypto 0.22; ch_overhead = 0.11 });
    (* fastest profile: sphincs-haraka-Nf-simple *)
    ("sphincs128", { sign = crypto 13.5; verify = crypto 0.8; ch_overhead = 0.03 });
    ("sphincs192", { sign = crypto 22.0; verify = crypto 1.2; ch_overhead = 0.02 });
    ("sphincs256", { sign = crypto 46.5; verify = crypto 1.3; ch_overhead = 0.02 });
    (* the remaining profiles measured by the all-sphincs selection run:
       f = fast signing / big signatures, s = small / slow *)
    ("sphincs128f", { sign = crypto 13.5; verify = crypto 0.8; ch_overhead = 0.03 });
    ("sphincs192f", { sign = crypto 22.0; verify = crypto 1.2; ch_overhead = 0.02 });
    ("sphincs256f", { sign = crypto 46.5; verify = crypto 1.3; ch_overhead = 0.02 });
    ("sphincs128s", { sign = crypto 280.0; verify = crypto 0.35; ch_overhead = 0.03 });
    ("sphincs192s", { sign = crypto 510.0; verify = crypto 0.5; ch_overhead = 0.02 });
    ("sphincs256s", { sign = crypto 450.0; verify = crypto 0.7; ch_overhead = 0.02 }) ]

let add_op a b =
  { ms = a.ms +. b.ms;
    (* a hybrid's attribution follows the costlier component *)
    lib = (if a.ms >= b.ms then a.lib else b.lib);
    label = "" }

(* hybrid names split on '_', but algorithm names themselves may contain
   '_' (dilithium2_aes), so try whole-name lookup first. *)
let canonical name =
  match name with
  | "rsa1024" -> "rsa:1024"
  | "rsa2048" -> "rsa:2048"
  | "rsa3072" -> "rsa:3072"
  | "rsa4096" -> "rsa:4096"
  | n -> n

let rec lookup table combine name =
  let name = canonical name in
  match List.assoc_opt name table with
  | Some v -> v
  | None ->
    (match String.index_opt name '_' with
    | None -> raise Not_found
    | Some i ->
      let left = String.sub name 0 i in
      let right = String.sub name (i + 1) (String.length name - i - 1) in
      (match List.assoc_opt (canonical left) table with
      | None -> raise Not_found
      | Some l -> combine l (lookup table combine right)))

(* trace span names ("keygen kyber512", "sign dilithium2", ...) are
   stamped on the final lookup result, so hybrids carry the full name *)
let relabel label op = { op with label }

let kem name =
  let c =
    lookup base_kems
      (fun a b ->
        { kem_keygen = add_op a.kem_keygen b.kem_keygen;
          kem_encaps = add_op a.kem_encaps b.kem_encaps;
          kem_decaps = add_op a.kem_decaps b.kem_decaps })
      name
  in
  { kem_keygen = relabel ("keygen " ^ name) c.kem_keygen;
    kem_encaps = relabel ("encaps " ^ name) c.kem_encaps;
    kem_decaps = relabel ("decaps " ^ name) c.kem_decaps }

let sig_ name =
  let c =
    lookup base_sigs
      (fun a b ->
        { sign = add_op a.sign b.sign;
          verify = add_op a.verify b.verify;
          ch_overhead = a.ch_overhead +. b.ch_overhead })
      name
  in
  { c with
    sign = relabel ("sign " ^ name) c.sign;
    verify = relabel ("verify " ^ name) c.verify }

(* protocol overheads: fitted so the x25519 x rsa:2048 baseline reproduces
   partA = 0.25 ms, partB = 1.48 ms and 22.3 k handshakes / 60 s *)
let parse_client_hello = relabel "parse ClientHello" (ssl 0.03)
let build_server_flight = relabel "build server flight" (ssl 0.03)
let parse_server_flight = relabel "parse server flight" (ssl 0.05)
let build_client_finished = relabel "build client flight" (ssl 0.035)
let key_schedule_derive = relabel "key schedule" (crypto 0.012)
let aead_per_kilobyte = relabel "aead" (crypto 0.004)
let kernel_per_packet = { ms = 0.009; lib = Kernel; label = "kernel packet" }
let connection_setup = { ms = 0.05; lib = Kernel; label = "connection setup" }
let harness_gap_ms = 0.85
