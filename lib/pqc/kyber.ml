(* CRYSTALS-Kyber, round-3 submission (the parameter sets benchmarked by
   the paper's OQS-OpenSSL). Plain modular arithmetic throughout: with
   q = 3329 every intermediate fits a native int, and handshake timing in
   this project is virtual, so Montgomery/Barrett tricks would only
   obscure the math. Structure follows the reference implementation. *)
[@@@lint.kernel
  "polynomial arrays are fixed size n = 256 and pack/unpack loops are bounded by the byte lengths computed from the parameter set"]


module Bytesx = Crypto.Bytesx

let n = 256
let q = 3329
let sym_bytes = 32
let shared_secret_bytes = 32

(* zetas.(i) = 17^bitrev7(i) mod q *)
let zetas =
  let bitrev7 i =
    let r = ref 0 in
    for b = 0 to 6 do
      if i land (1 lsl b) <> 0 then r := !r lor (1 lsl (6 - b))
    done;
    !r
  in
  let pow b e =
    let r = ref 1 and b = ref b and e = ref e in
    while !e > 0 do
      if !e land 1 = 1 then r := !r * !b mod q;
      b := !b * !b mod q;
      e := !e lsr 1
    done;
    !r
  in
  Array.init 128 (fun i -> pow 17 (bitrev7 i))
[@@lint.allow "S1" "init-once NTT twiddle table; never written after \
                    module init"]

let inv128 = 3303 (* 128^-1 mod q *)

type poly = int array (* 256 coefficients in [0, q) *)

let poly_zero () : poly = Array.make n 0
let modq x = ((x mod q) + q) mod q

let poly_add a b = Array.init n (fun i -> modq (a.(i) + b.(i)))
let poly_sub a b = Array.init n (fun i -> modq (a.(i) - b.(i)))

let ntt r =
  let r = Array.copy r in
  let k = ref 1 in
  let len = ref 128 in
  while !len >= 2 do
    let start = ref 0 in
    while !start < 256 do
      let zeta = zetas.(!k) in
      incr k;
      for j = !start to !start + !len - 1 do
        let t = zeta * r.(j + !len) mod q in
        r.(j + !len) <- modq (r.(j) - t);
        r.(j) <- modq (r.(j) + t)
      done;
      start := !start + (2 * !len)
    done;
    len := !len / 2
  done;
  r

let inv_ntt r =
  let r = Array.copy r in
  let k = ref 127 in
  let len = ref 2 in
  while !len <= 128 do
    let start = ref 0 in
    while !start < 256 do
      let zeta = zetas.(!k) in
      decr k;
      for j = !start to !start + !len - 1 do
        let t = r.(j) in
        r.(j) <- modq (t + r.(j + !len));
        r.(j + !len) <- zeta * modq (r.(j + !len) - t) mod q
      done;
      start := !start + (2 * !len)
    done;
    len := !len * 2
  done;
  for j = 0 to n - 1 do
    r.(j) <- r.(j) * inv128 mod q
  done;
  r

(* multiplication in the NTT domain: 128 products of degree-1 polys *)
let basemul a b =
  let r = poly_zero () in
  for i = 0 to 63 do
    let zeta = zetas.(64 + i) in
    let mul4 off zsign =
      let a0 = a.(off) and a1 = a.(off + 1) in
      let b0 = b.(off) and b1 = b.(off + 1) in
      let z = if zsign then zeta else q - zeta in
      r.(off) <- modq ((a0 * b0 mod q) + (a1 * b1 mod q * z mod q));
      r.(off + 1) <- modq ((a0 * b1 mod q) + (a1 * b0 mod q))
    in
    mul4 (4 * i) true;
    mul4 ((4 * i) + 2) false
  done;
  r

(* --- bit packing ------------------------------------------------------ *)

let pack_bits d poly =
  let out = Bytes.make (d * n / 8) '\000' in
  let acc = ref 0 and acc_bits = ref 0 and pos = ref 0 in
  Array.iter
    (fun c ->
      acc := !acc lor (c lsl !acc_bits);
      acc_bits := !acc_bits + d;
      while !acc_bits >= 8 do
        Bytes.set out !pos (Char.chr (!acc land 0xff));
        incr pos;
        acc := !acc lsr 8;
        acc_bits := !acc_bits - 8
      done)
    poly;
  Bytes.unsafe_to_string out

let unpack_bits d s off =
  let out = poly_zero () in
  let acc = ref 0 and acc_bits = ref 0 and pos = ref off in
  for i = 0 to n - 1 do
    while !acc_bits < d do
      acc := !acc lor (Char.code s.[!pos] lsl !acc_bits);
      incr pos;
      acc_bits := !acc_bits + 8
    done;
    out.(i) <- !acc land ((1 lsl d) - 1);
    acc := !acc lsr d;
    acc_bits := !acc_bits - d
  done;
  out

let compress d x = (((x lsl d) + (q / 2)) / q) land ((1 lsl d) - 1)
let decompress d y = ((y * q) + (1 lsl (d - 1))) lsr d

let poly_compress d p = pack_bits d (Array.map (compress d) p)
let poly_decompress d s off = Array.map (decompress d) (unpack_bits d s off)

(* --- symmetric-primitive profiles ------------------------------------- *)

type stream = int -> string (* squeeze next n bytes *)

type sym = {
  profile : string;
  h : string -> string; (* 32-byte hash *)
  g : string -> string; (* 64-byte hash *)
  kdf : string -> string; (* 32-byte KDF *)
  xof : string -> int -> int -> stream; (* rho, x, y *)
  prf : string -> int -> int -> string; (* seed, nonce, len *)
}

let shake_stream msg =
  let x = Crypto.Keccak.Xof.shake128 msg in
  fun len -> Crypto.Keccak.Xof.squeeze x len

let aes_stream key nonce =
  let k = Crypto.Aes.expand_key key in
  let pos = ref 0 in
  fun len ->
    (* stateless CTR keystream sliced progressively *)
    let out = Crypto.Aes.ctr_keystream k ~nonce (!pos + len) in
    let s = String.sub out !pos len in
    pos := !pos + len;
    s

let two_bytes a b = String.init 2 (fun i -> Char.chr (if i = 0 then a else b))

let sym_shake =
  { profile = "shake";
    h = Crypto.Keccak.sha3_256;
    g = Crypto.Keccak.sha3_512;
    kdf = (fun s -> Crypto.Keccak.shake256 s 32);
    xof = (fun rho x y -> shake_stream (rho ^ two_bytes x y));
    prf =
      (fun seed nonce len ->
        Crypto.Keccak.shake256 (seed ^ String.make 1 (Char.chr nonce)) len) }

let sym_90s =
  { profile = "90s";
    h = Crypto.Sha256.digest;
    g = Crypto.Sha512.digest;
    kdf = Crypto.Sha256.digest;
    xof =
      (fun rho x y ->
        aes_stream rho (two_bytes x y ^ String.make 10 '\000'));
    prf =
      (fun seed nonce len ->
        let nonce12 = String.make 1 (Char.chr nonce) ^ String.make 11 '\000' in
        Crypto.Aes.ctr_keystream (Crypto.Aes.expand_key seed) ~nonce:nonce12 len) }

(* --- sampling ---------------------------------------------------------- *)

(* uniform rejection sampling of an NTT-domain polynomial *)
let sample_ntt stream =
  let out = poly_zero () in
  let filled = ref 0 in
  while !filled < n do
    let buf = stream 3 in
    let b0 = Char.code buf.[0] and b1 = Char.code buf.[1] and b2 = Char.code buf.[2] in
    let d1 = b0 lor ((b1 land 0x0f) lsl 8) in
    let d2 = (b1 lsr 4) lor (b2 lsl 4) in
    if d1 < q && !filled < n then begin
      out.(!filled) <- d1;
      incr filled
    end;
    if d2 < q && !filled < n then begin
      out.(!filled) <- d2;
      incr filled
    end
  done;
  out

(* centered binomial distribution of parameter eta *)
let cbd eta buf =
  let bit i = (Char.code buf.[i lsr 3] lsr (i land 7)) land 1 in
  let out = poly_zero () in
  for i = 0 to n - 1 do
    let base = 2 * eta * i in
    let a = ref 0 and b = ref 0 in
    for j = 0 to eta - 1 do
      a := !a + bit (base + j);
      b := !b + bit (base + eta + j)
    done;
    out.(i) <- modq (!a - !b)
  done;
  out

(* --- parameter sets ---------------------------------------------------- *)

type params = {
  name : string;
  k : int;
  eta1 : int;
  eta2 : int;
  du : int;
  dv : int;
  sym : sym;
}

let kyber512 = { name = "kyber512"; k = 2; eta1 = 3; eta2 = 2; du = 10; dv = 4; sym = sym_shake }
let kyber768 = { name = "kyber768"; k = 3; eta1 = 2; eta2 = 2; du = 10; dv = 4; sym = sym_shake }
let kyber1024 = { name = "kyber1024"; k = 4; eta1 = 2; eta2 = 2; du = 11; dv = 5; sym = sym_shake }
let kyber512_90s = { kyber512 with name = "kyber90s512"; sym = sym_90s }
let kyber768_90s = { kyber768 with name = "kyber90s768"; sym = sym_90s }
let kyber1024_90s = { kyber1024 with name = "kyber90s1024"; sym = sym_90s }

let name p = p.name
let poly_vec_bytes p = 384 * p.k
let public_key_bytes p = poly_vec_bytes p + sym_bytes
let indcpa_secret_bytes p = poly_vec_bytes p
let secret_key_bytes p = indcpa_secret_bytes p + public_key_bytes p + (2 * sym_bytes)
let ciphertext_bytes p = (p.du * p.k * n / 8) + (p.dv * n / 8)

(* --- IND-CPA public-key encryption ------------------------------------ *)

let gen_matrix p rho ~transposed =
  Array.init p.k (fun i ->
      Array.init p.k (fun j ->
          let x, y = if transposed then (i, j) else (j, i) in
          sample_ntt (p.sym.xof rho x y)))

let sample_vec p ~eta ~seed ~nonce0 =
  Array.init p.k (fun i -> cbd eta (p.sym.prf seed (nonce0 + i) (64 * eta)))

let vec_ntt = Array.map ntt

let mat_vec_mul mat v =
  Array.map
    (fun row ->
      let acc = ref (poly_zero ()) in
      Array.iteri (fun j aij -> acc := poly_add !acc (basemul aij v.(j))) row;
      !acc)
    mat

let inner_product a b =
  let acc = ref (poly_zero ()) in
  Array.iteri (fun i ai -> acc := poly_add !acc (basemul ai b.(i))) a;
  !acc

let indcpa_keygen p d =
  let seeds = p.sym.g d in
  let rho = String.sub seeds 0 32 and sigma = String.sub seeds 32 32 in
  let a = gen_matrix p rho ~transposed:false in
  let s = sample_vec p ~eta:p.eta1 ~seed:sigma ~nonce0:0 in
  let e = sample_vec p ~eta:p.eta1 ~seed:sigma ~nonce0:p.k in
  let s_hat = vec_ntt s and e_hat = vec_ntt e in
  let t_hat = Array.mapi (fun i ti -> poly_add ti e_hat.(i)) (mat_vec_mul a s_hat) in
  let pk =
    Bytesx.concat (Array.to_list (Array.map (pack_bits 12) t_hat)) ^ rho
  in
  let sk = Bytesx.concat (Array.to_list (Array.map (pack_bits 12) s_hat)) in
  (pk, sk)

let decode_vec12 p s =
  Array.init p.k (fun i -> unpack_bits 12 s (384 * i))

let indcpa_encrypt p pk m coins =
  let t_hat = decode_vec12 p pk in
  let rho = String.sub pk (poly_vec_bytes p) 32 in
  let at = gen_matrix p rho ~transposed:true in
  let r = sample_vec p ~eta:p.eta1 ~seed:coins ~nonce0:0 in
  let e1 = sample_vec p ~eta:p.eta2 ~seed:coins ~nonce0:p.k in
  let e2 = cbd p.eta2 (p.sym.prf coins (2 * p.k) (64 * p.eta2)) in
  let r_hat = vec_ntt r in
  let u =
    Array.mapi (fun i ui -> poly_add (inv_ntt ui) e1.(i)) (mat_vec_mul at r_hat)
  in
  let msg_poly =
    Array.init n (fun i ->
        let bit = (Char.code m.[i lsr 3] lsr (i land 7)) land 1 in
        decompress 1 bit)
  in
  let v = poly_add (poly_add (inv_ntt (inner_product t_hat r_hat)) e2) msg_poly in
  let cu = Bytesx.concat (Array.to_list (Array.map (poly_compress p.du) u)) in
  let cv = poly_compress p.dv v in
  cu ^ cv

let indcpa_decrypt p sk c =
  let du_bytes = p.du * n / 8 in
  let u = Array.init p.k (fun i -> poly_decompress p.du c (du_bytes * i)) in
  let v = poly_decompress p.dv c (du_bytes * p.k) in
  let s_hat = decode_vec12 p sk in
  let w = poly_sub v (inv_ntt (inner_product s_hat (vec_ntt u))) in
  let m = Bytes.make 32 '\000' in
  Array.iteri
    (fun i coeff ->
      let bit = compress 1 coeff in
      if bit = 1 then
        Bytes.set m (i lsr 3)
          (Char.chr (Char.code (Bytes.get m (i lsr 3)) lor (1 lsl (i land 7)))))
    w;
  Bytes.unsafe_to_string m

(* --- CCA-secure KEM (Fujisaki-Okamoto, round-3 flavour) ---------------- *)

let keygen p rng =
  let d = Crypto.Drbg.generate rng 32 in
  let z = Crypto.Drbg.generate rng 32 in
  let pk, sk_cpa = indcpa_keygen p d in
  let sk = sk_cpa ^ pk ^ p.sym.h pk ^ z in
  (pk, sk)

let encaps p rng pk =
  if String.length pk <> public_key_bytes p then invalid_arg "Kyber.encaps: bad pk";
  let m = p.sym.h (Crypto.Drbg.generate rng 32) in
  let kr = p.sym.g (m ^ p.sym.h pk) in
  let k_bar = String.sub kr 0 32 and coins = String.sub kr 32 32 in
  let c = indcpa_encrypt p pk m coins in
  let ss = p.sym.kdf (k_bar ^ p.sym.h c) in
  (c, ss)

let decaps p sk c =
  if String.length sk <> secret_key_bytes p then invalid_arg "Kyber.decaps: bad sk";
  if String.length c <> ciphertext_bytes p then invalid_arg "Kyber.decaps: bad ct";
  let ipv = indcpa_secret_bytes p in
  let pkb = public_key_bytes p in
  let sk_cpa = String.sub sk 0 ipv in
  let pk = String.sub sk ipv pkb in
  let h_pk = String.sub sk (ipv + pkb) 32 in
  let z = String.sub sk (ipv + pkb + 32) 32 in
  let m' = indcpa_decrypt p sk_cpa c in
  let kr = p.sym.g (m' ^ h_pk) in
  let k_bar = String.sub kr 0 32 and coins = String.sub kr 32 32 in
  let c' = indcpa_encrypt p pk m' coins in
  if Bytesx.equal_ct c c' then p.sym.kdf (k_bar ^ p.sym.h c)
  else p.sym.kdf (z ^ p.sym.h c) (* implicit rejection *)

(* ---- micro-benchmark kernel hook ----------------------------------------- *)

let bench_ntt () =
  let p = Array.init n (fun i -> i * 17 mod q) in
  fun () -> ignore (ntt p : poly)
