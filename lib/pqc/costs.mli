(** Virtual CPU-time calibration table.

    Every cryptographic operation in the simulated handshake charges the
    executing host the number of (virtual) milliseconds listed here.
    Values model one core of the paper's Intel Xeon D-1518 (2.2 GHz) and
    were fitted in two steps: initial values from public liboqs / OpenSSL
    benchmarks of that CPU class, then refined so that the simulator's
    Table 2 matches the paper's phase medians (see EXPERIMENTS.md for the
    final residuals). Each operation also carries the shared library that
    would have executed it, which feeds the white-box accounting of
    Table 3. *)

type lib = Libcrypto | Libssl | Kernel | Libc | Ixgbe | Python

val lib_name : lib -> string

type op = {
  ms : float;
  lib : lib;
  label : string;
      (** trace span name ("keygen kyber512", "parse ClientHello", ...);
          [""] means "use the library name" *)
}

type kem_costs = { kem_keygen : op; kem_encaps : op; kem_decaps : op }
type sig_costs = {
  sign : op;
  verify : op;
  ch_overhead : float;
      (** extra server-side ClientHello-processing ms observed for
          OQS-provider signature algorithms (Table 2b partA spread) *)
}

val kem : string -> kem_costs
(** Lookup by the paper's algorithm spelling; hybrid names
    ([p256_kyber512]) cost the sum of their components.
    @raise Not_found for unknown algorithms. *)

val sig_ : string -> sig_costs
(** Same for signature algorithms (accepts both [rsa:3072] and the
    [rsa3072] spelling used inside hybrid names). *)

(** Fixed protocol overheads, also in virtual ms. *)

val parse_client_hello : op
val build_server_flight : op
val parse_server_flight : op
val build_client_finished : op
val key_schedule_derive : op
(** One HKDF extract/expand stage. *)

val aead_per_kilobyte : op
val kernel_per_packet : op
val connection_setup : op
(** accept(2)/socket bookkeeping per handshake, charged to the kernel. *)

val harness_gap_ms : float
(** Inter-handshake gap of the measurement loop (python tooling +
    connection teardown); contributes to handshakes-per-60 s and the
    white-box python share, but never to handshake latency. *)
