(** ML-KEM / CRYSTALS-Kyber (round-3 parameter sets), implemented in full:
    NTT arithmetic mod 3329, CBD sampling, compression, and the
    Fujisaki-Okamoto transform.

    Both symmetric-primitive profiles from the paper are provided: the
    standard SHAKE-based one and the "90s" profile (AES-256-CTR + SHA-2)
    that Table 2 lists as [kyber90s*]. *)

type params

val kyber512 : params
val kyber768 : params
val kyber1024 : params
val kyber512_90s : params
val kyber768_90s : params
val kyber1024_90s : params

val name : params -> string
val public_key_bytes : params -> int
val secret_key_bytes : params -> int
val ciphertext_bytes : params -> int

val shared_secret_bytes : int
(** Always 32. *)

val keygen : params -> Crypto.Drbg.t -> string * string
(** [(public_key, secret_key)]. *)

val encaps : params -> Crypto.Drbg.t -> string -> string * string
(** [encaps p rng pk] is [(ciphertext, shared_secret)]. *)

val decaps : params -> string -> string -> string
(** [decaps p sk ct] is the shared secret. Implicit rejection: a corrupt
    ciphertext yields a pseudorandom secret, never an exception. *)

val bench_ntt : unit -> unit -> unit
(** [bench_ntt ()] returns a thunk running one forward 256-coefficient
    NTT mod 3329 over a fixed polynomial — the substrate-kernel hook
    behind [Core.Profile]. *)
