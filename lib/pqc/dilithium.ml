(* CRYSTALS-Dilithium round 3.1. Coefficients are kept canonical in
   [0, q); centering happens locally where the spec needs signed values.
   Products of two canonical coefficients stay below 2^47, so plain
   native-int arithmetic is exact. Structure follows the reference code;
   see kyber.ml for why no Montgomery arithmetic is used. *)
[@@@lint.kernel
  "polynomial arrays are fixed size n = 256 and pack loops are bounded by lengths derived from the parameter set"]


let n = 256
let q = 8380417
let d = 13
let seed_bytes = 32
let crh_bytes = 64

let modq x = ((x mod q) + q) mod q
let center c = if c > q / 2 then c - q else c

(* zetas.(i) = 1753^bitrev8(i) mod q *)
let zetas =
  let bitrev8 i =
    let r = ref 0 in
    for b = 0 to 7 do
      if i land (1 lsl b) <> 0 then r := !r lor (1 lsl (7 - b))
    done;
    !r
  in
  let pow b e =
    let r = ref 1 and b = ref b and e = ref e in
    while !e > 0 do
      if !e land 1 = 1 then r := !r * !b mod q;
      b := !b * !b mod q;
      e := !e lsr 1
    done;
    !r
  in
  Array.init 256 (fun i -> pow 1753 (bitrev8 i))
[@@lint.allow "S1" "init-once NTT twiddle table; never written after \
                    module init"]

let inv256 =
  (* 256^-1 mod q *)
  let rec pow b e acc =
    if e = 0 then acc
    else pow (b * b mod q) (e / 2) (if e land 1 = 1 then acc * b mod q else acc)
  in
  pow 256 (q - 2) 1

type poly = int array

let poly_zero () : poly = Array.make n 0
let poly_add a b = Array.init n (fun i -> modq (a.(i) + b.(i)))
let poly_sub a b = Array.init n (fun i -> modq (a.(i) - b.(i)))

let ntt a =
  let a = Array.copy a in
  let k = ref 0 in
  let len = ref 128 in
  while !len > 0 do
    let start = ref 0 in
    while !start < 256 do
      incr k;
      let zeta = zetas.(!k) in
      for j = !start to !start + !len - 1 do
        let t = zeta * a.(j + !len) mod q in
        a.(j + !len) <- modq (a.(j) - t);
        a.(j) <- modq (a.(j) + t)
      done;
      start := !start + (2 * !len)
    done;
    len := !len / 2
  done;
  a

let inv_ntt a =
  let a = Array.copy a in
  let k = ref 256 in
  let len = ref 1 in
  while !len < 256 do
    let start = ref 0 in
    while !start < 256 do
      decr k;
      let zeta = q - zetas.(!k) in
      for j = !start to !start + !len - 1 do
        let t = a.(j) in
        a.(j) <- modq (t + a.(j + !len));
        a.(j + !len) <- zeta * modq (t - a.(j + !len)) mod q
      done;
      start := !start + (2 * !len)
    done;
    len := !len * 2
  done;
  for j = 0 to n - 1 do
    a.(j) <- a.(j) * inv256 mod q
  done;
  a

let pointwise a b = Array.init n (fun i -> a.(i) * b.(i) mod q)

(* infinity norm on centered representatives; true if any |c| >= bound *)
let exceeds_norm poly bound =
  Array.exists (fun c -> abs (center c) >= bound) poly

(* --- rounding (spec figure 3) ------------------------------------------ *)

let power2round a =
  let a1 = (a + (1 lsl (d - 1)) - 1) asr d in
  (a1, a - (a1 lsl d)) (* (t1, t0 centered in (-2^12, 2^12]) *)

let decompose ~gamma2 a =
  let alpha = 2 * gamma2 in
  let r0 = a mod alpha in
  let r0 = if r0 > gamma2 then r0 - alpha else r0 in
  if a - r0 = q - 1 then (0, r0 - 1) else ((a - r0) / alpha, r0)

let highbits ~gamma2 a = fst (decompose ~gamma2 a)

(* MakeHint (spec figure 3): flag coefficients whose high bits change when
   the verifier's reconstruction error ct0 is removed. *)
let make_hint ~gamma2 ~with_ct0 ~without_ct0 =
  if highbits ~gamma2 with_ct0 <> highbits ~gamma2 without_ct0 then 1 else 0

let use_hint ~gamma2 h a =
  let m = (q - 1) / (2 * gamma2) in
  let a1, a0 = decompose ~gamma2 a in
  if h = 0 then a1
  else if a0 > 0 then (a1 + 1) mod m
  else (a1 - 1 + m) mod m

(* --- packing ------------------------------------------------------------ *)

let pack_bits d_bits values =
  let out = Bytes.make (d_bits * Array.length values / 8) '\000' in
  let acc = ref 0 and acc_bits = ref 0 and pos = ref 0 in
  Array.iter
    (fun v ->
      acc := !acc lor (v lsl !acc_bits);
      acc_bits := !acc_bits + d_bits;
      while !acc_bits >= 8 do
        Bytes.set out !pos (Char.chr (!acc land 0xff));
        incr pos;
        acc := !acc lsr 8;
        acc_bits := !acc_bits - 8
      done)
    values;
  Bytes.unsafe_to_string out

let unpack_bits d_bits count s off =
  let out = Array.make count 0 in
  let acc = ref 0 and acc_bits = ref 0 and pos = ref off in
  for i = 0 to count - 1 do
    while !acc_bits < d_bits do
      acc := !acc lor (Char.code s.[!pos] lsl !acc_bits);
      incr pos;
      acc_bits := !acc_bits + 8
    done;
    out.(i) <- !acc land ((1 lsl d_bits) - 1);
    acc := !acc lsr d_bits;
    acc_bits := !acc_bits - d_bits
  done;
  out

(* --- expansion streams --------------------------------------------------- *)

type expand = [ `Shake | `Aes ]

let nonce16 v = String.init 2 (fun i -> Char.chr ((v lsr (8 * i)) land 0xff))

(* stream128/stream256 from the spec; the AES profile keys AES-256-CTR
   with the seed and uses the nonce as the IV, as the reference _aes
   variant does. *)
let stream expand ~wide seed nonce : int -> string =
  match expand with
  | `Shake ->
    let x =
      if wide then Crypto.Keccak.Xof.shake128 (seed ^ nonce16 nonce)
      else Crypto.Keccak.Xof.shake256 (seed ^ nonce16 nonce)
    in
    fun len -> Crypto.Keccak.Xof.squeeze x len
  | `Aes ->
    let key =
      if String.length seed = 32 then seed else Crypto.Sha256.digest seed
    in
    let k = Crypto.Aes.expand_key key in
    let iv = nonce16 nonce ^ String.make 10 '\000' in
    let pos = ref 0 in
    fun len ->
      let out = Crypto.Aes.ctr_keystream k ~nonce:iv (!pos + len) in
      let s = String.sub out !pos len in
      pos := !pos + len;
      s

(* --- parameter sets ------------------------------------------------------ *)

type params = {
  name : string;
  k : int;
  l : int;
  eta : int;
  tau : int;
  beta : int;
  gamma1 : int;
  gamma2 : int;
  omega : int;
  expand : expand;
}

let dilithium2 =
  { name = "dilithium2"; k = 4; l = 4; eta = 2; tau = 39; beta = 78;
    gamma1 = 1 lsl 17; gamma2 = (q - 1) / 88; omega = 80; expand = `Shake }

let dilithium3 =
  { name = "dilithium3"; k = 6; l = 5; eta = 4; tau = 49; beta = 196;
    gamma1 = 1 lsl 19; gamma2 = (q - 1) / 32; omega = 55; expand = `Shake }

let dilithium5 =
  { name = "dilithium5"; k = 8; l = 7; eta = 2; tau = 60; beta = 120;
    gamma1 = 1 lsl 19; gamma2 = (q - 1) / 32; omega = 75; expand = `Shake }

let dilithium2_aes = { dilithium2 with name = "dilithium2_aes"; expand = `Aes }
let dilithium3_aes = { dilithium3 with name = "dilithium3_aes"; expand = `Aes }
let dilithium5_aes = { dilithium5 with name = "dilithium5_aes"; expand = `Aes }

let name p = p.name
let eta_bits p = if p.eta = 2 then 3 else 4
let z_bits p = if p.gamma1 = 1 lsl 17 then 18 else 20
let w1_bits p = if p.gamma2 = (q - 1) / 88 then 6 else 4
let polyt1_bytes = 320
let polyt0_bytes = 416
let polyeta_bytes p = 32 * eta_bits p
let polyz_bytes p = 32 * z_bits p
let public_key_bytes p = seed_bytes + (p.k * polyt1_bytes)

let secret_key_bytes p =
  (3 * seed_bytes) + ((p.l + p.k) * polyeta_bytes p) + (p.k * polyt0_bytes)

let signature_bytes p = seed_bytes + (p.l * polyz_bytes p) + p.omega + p.k

(* --- sampling ------------------------------------------------------------ *)

let poly_uniform p seed nonce =
  let st = stream p.expand ~wide:true seed nonce in
  let out = poly_zero () in
  let filled = ref 0 in
  while !filled < n do
    let b = st 3 in
    let t =
      Char.code b.[0] lor (Char.code b.[1] lsl 8)
      lor ((Char.code b.[2] land 0x7f) lsl 16)
    in
    if t < q then begin
      out.(!filled) <- t;
      incr filled
    end
  done;
  out

let poly_uniform_eta p seed nonce =
  let st = stream p.expand ~wide:false seed nonce in
  let out = poly_zero () in
  let filled = ref 0 in
  while !filled < n do
    let b = Char.code (st 1).[0] in
    let try_nibble t =
      if !filled < n then
        if p.eta = 2 && t < 15 then begin
          out.(!filled) <- modq (2 - (t mod 5));
          incr filled
        end
        else if p.eta = 4 && t < 9 then begin
          out.(!filled) <- modq (4 - t);
          incr filled
        end
    in
    try_nibble (b land 0x0f);
    try_nibble (b lsr 4)
  done;
  out

let polyz_pack p poly =
  pack_bits (z_bits p) (Array.map (fun c -> p.gamma1 - center c) poly)

let polyz_unpack p s off =
  Array.map (fun v -> modq (p.gamma1 - v)) (unpack_bits (z_bits p) n s off)

let poly_uniform_gamma1 p seed nonce =
  let st = stream p.expand ~wide:false seed nonce in
  polyz_unpack p (st (polyz_bytes p)) 0

(* SampleInBall (spec figure 2) *)
let challenge p c_tilde =
  let x = Crypto.Keccak.Xof.shake256 c_tilde in
  let signs = ref (Crypto.Bytesx.get_u64_le (Crypto.Keccak.Xof.squeeze x 8) 0) in
  let c = poly_zero () in
  for i = n - p.tau to n - 1 do
    let rec draw () =
      let b = Char.code (Crypto.Keccak.Xof.squeeze x 1).[0] in
      if b <= i then b else draw ()
    in
    let j = draw () in
    c.(i) <- c.(j);
    c.(j) <- (if Int64.logand !signs 1L = 1L then q - 1 else 1);
    signs := Int64.shift_right_logical !signs 1
  done;
  c

(* --- vector/matrix helpers ---------------------------------------------- *)

let expand_a p rho =
  Array.init p.k (fun i ->
      Array.init p.l (fun j -> poly_uniform p rho ((i lsl 8) + j)))

let mat_vec_mul mat v_hat =
  Array.map
    (fun row ->
      let acc = ref (poly_zero ()) in
      Array.iteri (fun j aij -> acc := poly_add !acc (pointwise aij v_hat.(j))) row;
      !acc)
    mat

let vec_map = Array.map
let vec_map2 f a b = Array.init (Array.length a) (fun i -> f a.(i) b.(i))
let vec_exceeds v bound = Array.exists (fun poly -> exceeds_norm poly bound) v

(* --- key and signature encodings ---------------------------------------- *)

let pack_eta p poly = pack_bits (eta_bits p) (Array.map (fun c -> modq (p.eta - c) land 0xf) poly)

let unpack_eta p s off =
  Array.map (fun v -> modq (p.eta - v)) (unpack_bits (eta_bits p) n s off)

let pack_t0 poly =
  pack_bits 13 (Array.map (fun c -> (1 lsl (d - 1)) - center c) poly)

let unpack_t0 s off =
  Array.map (fun v -> modq ((1 lsl (d - 1)) - v)) (unpack_bits 13 n s off)

let pack_w1 p w1 =
  Crypto.Bytesx.concat (Array.to_list (Array.map (pack_bits (w1_bits p)) w1))

let concat_polys pack vec = Crypto.Bytesx.concat (Array.to_list (Array.map pack vec))

let pack_hints p h =
  let buf = Bytes.make (p.omega + p.k) '\000' in
  let idx = ref 0 in
  Array.iteri
    (fun i poly ->
      Array.iteri
        (fun j v ->
          if v <> 0 then begin
            Bytes.set buf !idx (Char.chr j);
            incr idx
          end)
        poly;
      Bytes.set buf (p.omega + i) (Char.chr !idx))
    h;
  Bytes.unsafe_to_string buf

let unpack_hints p s off =
  let h = Array.init p.k (fun _ -> poly_zero ()) in
  let idx = ref 0 in
  let ok = ref true in
  for i = 0 to p.k - 1 do
    let upto = Char.code s.[off + p.omega + i] in
    if upto < !idx || upto > p.omega then ok := false
    else begin
      let prev = ref (-1) in
      while !idx < upto do
        let j = Char.code s.[off + !idx] in
        if j <= !prev then ok := false; (* positions must increase *)
        prev := j;
        h.(i).(j) <- 1;
        incr idx
      done
    end
  done;
  (* remaining hint slots must be zero *)
  for i = !idx to p.omega - 1 do
    if s.[off + i] <> '\000' then ok := false
  done;
  if !ok then Some h else None

(* --- key generation ------------------------------------------------------ *)

let keygen_from_seed p seed =
  let buf = Crypto.Keccak.shake256 seed ((2 * seed_bytes) + crh_bytes) in
  let rho = String.sub buf 0 32 in
  let rhoprime = String.sub buf 32 crh_bytes in
  let key = String.sub buf (32 + crh_bytes) 32 in
  let a = expand_a p rho in
  let s1 = Array.init p.l (fun i -> poly_uniform_eta p rhoprime i) in
  let s2 = Array.init p.k (fun i -> poly_uniform_eta p rhoprime (p.l + i)) in
  let s1_hat = vec_map ntt s1 in
  let t = vec_map2 poly_add (vec_map inv_ntt (mat_vec_mul a s1_hat)) s2 in
  let t1 = Array.map (Array.map (fun c -> fst (power2round c))) t in
  let t0 =
    Array.map (Array.map (fun c -> modq (snd (power2round c)))) t
  in
  let pk = rho ^ concat_polys (pack_bits 10) t1 in
  let tr = Crypto.Keccak.shake256 pk seed_bytes in
  let sk =
    rho ^ key ^ tr
    ^ concat_polys (pack_eta p) s1
    ^ concat_polys (pack_eta p) s2
    ^ concat_polys pack_t0 t0
  in
  (pk, sk)

let keygen p rng = keygen_from_seed p (Crypto.Drbg.generate rng 32)

(* --- signing -------------------------------------------------------------- *)

type sk_parts = {
  rho : string;
  key : string;
  tr : string;
  s1_hat : poly array;
  s2_hat : poly array;
  t0_hat : poly array;
}

let parse_sk p sk =
  if String.length sk <> secret_key_bytes p then invalid_arg "Dilithium: bad sk";
  let rho = String.sub sk 0 32 in
  let key = String.sub sk 32 32 in
  let tr = String.sub sk 64 32 in
  let off = ref 96 in
  let read_vec count reader size =
    Array.init count (fun _ ->
        let v = reader sk !off in
        off := !off + size;
        v)
  in
  let s1 = read_vec p.l (unpack_eta p) (polyeta_bytes p) in
  let s2 = read_vec p.k (unpack_eta p) (polyeta_bytes p) in
  let t0 = read_vec p.k unpack_t0 polyt0_bytes in
  { rho; key; tr; s1_hat = vec_map ntt s1; s2_hat = vec_map ntt s2;
    t0_hat = vec_map ntt t0 }

let sign p sk msg =
  let { rho; key; tr; s1_hat; s2_hat; t0_hat } = parse_sk p sk in
  let a = expand_a p rho in
  let mu = Crypto.Keccak.shake256 (tr ^ msg) crh_bytes in
  let rhoprime = Crypto.Keccak.shake256 (key ^ mu) crh_bytes in
  let rec attempt kappa =
    let y = Array.init p.l (fun i -> poly_uniform_gamma1 p rhoprime ((p.l * kappa) + i)) in
    let y_hat = vec_map ntt y in
    let w = vec_map inv_ntt (mat_vec_mul a y_hat) in
    let w1 = vec_map (Array.map (highbits ~gamma2:p.gamma2)) w in
    let c_tilde =
      Crypto.Keccak.shake256 (mu ^ pack_w1 p w1) seed_bytes
    in
    let c = challenge p c_tilde in
    let c_hat = ntt c in
    let z =
      vec_map2 poly_add y (vec_map (fun s -> inv_ntt (pointwise c_hat s)) s1_hat)
    in
    if vec_exceeds z (p.gamma1 - p.beta) then attempt (kappa + 1)
    else begin
      let cs2 = vec_map (fun s -> inv_ntt (pointwise c_hat s)) s2_hat in
      let w_minus_cs2 = vec_map2 poly_sub w cs2 in
      let r0 =
        vec_map (Array.map (fun v -> snd (decompose ~gamma2:p.gamma2 v))) w_minus_cs2
      in
      let r0_exceeds =
        Array.exists (Array.exists (fun v -> abs v >= p.gamma2 - p.beta)) r0
      in
      if r0_exceeds then attempt (kappa + 1)
      else begin
        let ct0 = vec_map (fun t -> inv_ntt (pointwise c_hat t)) t0_hat in
        if vec_exceeds ct0 p.gamma2 then attempt (kappa + 1)
        else begin
          let with_ct0 = vec_map2 poly_add w_minus_cs2 ct0 in
          let hints =
            Array.init p.k (fun i ->
                Array.init n (fun j ->
                    make_hint ~gamma2:p.gamma2 ~with_ct0:with_ct0.(i).(j)
                      ~without_ct0:w_minus_cs2.(i).(j)))
          in
          let count =
            Array.fold_left
              (fun acc poly -> acc + Array.fold_left ( + ) 0 poly)
              0 hints
          in
          if count > p.omega then attempt (kappa + 1)
          else c_tilde ^ concat_polys (polyz_pack p) z ^ pack_hints p hints
        end
      end
    end
  in
  attempt 0

(* --- verification ---------------------------------------------------------- *)

let verify p pk ~msg signature =
  if String.length pk <> public_key_bytes p
     || String.length signature <> signature_bytes p
  then false
  else begin
    let rho = String.sub pk 0 32 in
    let t1 =
      Array.init p.k (fun i ->
          unpack_bits 10 n pk (seed_bytes + (polyt1_bytes * i)))
    in
    let c_tilde = String.sub signature 0 seed_bytes in
    let z =
      Array.init p.l (fun i ->
          polyz_unpack p signature (seed_bytes + (polyz_bytes p * i)))
    in
    match unpack_hints p signature (seed_bytes + (p.l * polyz_bytes p)) with
    | None -> false
    | Some h ->
      if vec_exceeds z (p.gamma1 - p.beta) then false
      else begin
        let a = expand_a p rho in
        let tr = Crypto.Keccak.shake256 pk seed_bytes in
        let mu = Crypto.Keccak.shake256 (tr ^ msg) crh_bytes in
        let c = challenge p c_tilde in
        let c_hat = ntt c in
        let az = mat_vec_mul a (vec_map ntt z) in
        let t1_shifted_hat =
          vec_map (fun poly -> ntt (Array.map (fun v -> modq (v lsl d)) poly)) t1
        in
        let w_approx =
          vec_map inv_ntt
            (vec_map2 (fun azi cti -> poly_sub azi (pointwise c_hat cti)) az
               t1_shifted_hat)
        in
        let w1' =
          Array.init p.k (fun i ->
              Array.init n (fun j ->
                  use_hint ~gamma2:p.gamma2 h.(i).(j) w_approx.(i).(j)))
        in
        let expected = Crypto.Keccak.shake256 (mu ^ pack_w1 p w1') seed_bytes in
        Crypto.Bytesx.equal_ct expected c_tilde
      end
  end

(* ---- micro-benchmark kernel hook ----------------------------------------- *)

let bench_ntt () =
  let p = Array.init n (fun i -> i * 1753 mod q) in
  fun () -> ignore (ntt p : poly)
