(** Trace exporters. Each is a pure function of the buffers, so output
    is byte-identical for any [--jobs] as long as buffers arrive in spec
    order (which {!Store} guarantees). *)

val chrome : Buf.t list -> string
(** Chrome trace-event JSON (the catapult format): one process per cell
    (named with the cell label), one thread per track, "X" complete
    events for spans, "i" instants, "C" counters, timestamps in
    microseconds of virtual time. Loads in Perfetto / chrome://tracing. *)

val folded : Buf.t list -> string
(** Folded stacks ("path;to;frame <self-us>" per line, sorted) for
    flamegraph.pl / inferno / speedscope. Nesting is recovered from span
    containment per track; values are self time in integer microseconds
    (zero-self frames are omitted). *)

val timeline : Buf.t list -> string
(** Human-readable chronological listing, one line per event. *)
