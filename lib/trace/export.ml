(* Exporters. All three are pure functions of the buffer list, so a
   campaign traced under any job count exports byte-identically. *)

let us t = t *. 1e6 (* virtual seconds -> microseconds *)

(* ---- Chrome trace-event JSON (catapult format, Perfetto-loadable) ---- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_args args =
  String.concat ","
    (List.map
       (fun (k, v) ->
         Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
       args)

let chrome bufs =
  let b = Buffer.create 65536 in
  Buffer.add_string b "{\"traceEvents\":[";
  let first = ref true in
  let emit line =
    if !first then first := false else Buffer.add_char b ',';
    Buffer.add_string b "\n";
    Buffer.add_string b line
  in
  List.iteri
    (fun i buf ->
      let pid = i + 1 in
      let cell =
        match Buf.label buf with "" -> Printf.sprintf "cell %d" pid | l -> l
      in
      emit
        (Printf.sprintf
           "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"%s\"}}"
           pid (json_escape cell));
      (* thread ids in order of first appearance, with name metadata *)
      let tracks = Hashtbl.create 8 in
      let next_tid = ref 0 in
      let tid track =
        match Hashtbl.find_opt tracks track with
        | Some id -> id
        | None ->
          incr next_tid;
          let id = !next_tid in
          Hashtbl.add tracks track id;
          emit
            (Printf.sprintf
               "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
               pid id (json_escape track));
          id
      in
      Buf.iter buf (fun ev ->
          match ev with
          | Event.Span s ->
            let id = tid s.Event.s_track in
            emit
              (Printf.sprintf
                 "{\"ph\":\"X\",\"name\":\"%s\",\"cat\":\"%s\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,\"args\":{%s}}"
                 (json_escape s.Event.s_name) (json_escape s.Event.s_cat) pid
                 id (us s.Event.s_begin)
                 (us (s.Event.s_end -. s.Event.s_begin))
                 (json_args s.Event.s_args))
          | Event.Instant ins ->
            let id = tid ins.Event.i_track in
            emit
              (Printf.sprintf
                 "{\"ph\":\"i\",\"s\":\"t\",\"name\":\"%s\",\"cat\":\"%s\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,\"args\":{%s}}"
                 (json_escape ins.Event.i_name) (json_escape ins.Event.i_cat)
                 pid id (us ins.Event.i_ts)
                 (json_args ins.Event.i_args))
          | Event.Counter c ->
            let id = tid c.Event.c_track in
            emit
              (Printf.sprintf
                 "{\"ph\":\"C\",\"name\":\"%s\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,\"args\":{\"value\":%g}}"
                 (json_escape c.Event.c_name) pid id (us c.Event.c_ts)
                 c.Event.c_value)))
    bufs;
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents b

(* ---- folded stacks (flamegraph.pl / inferno input) ------------------- *)

(* Per track: sort spans by (begin asc, end desc, emission order), walk
   with an explicit stack using interval containment, and attribute each
   frame its self time (duration minus children). *)

type frame = {
  fr_path : string;
  fr_end : float;
  mutable fr_children_s : float;
  fr_dur : float;
}

let folded bufs =
  let tally : (string, float) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  let credit path seconds =
    (match Hashtbl.find_opt tally path with
    | None -> order := path :: !order
    | Some _ -> ());
    let prev = Option.value ~default:0. (Hashtbl.find_opt tally path) in
    Hashtbl.replace tally path (prev +. seconds)
  in
  List.iter
    (fun buf ->
      let root = match Buf.label buf with "" -> "trace" | l -> l in
      (* gather spans per track, remembering emission order for stability *)
      let by_track : (string, (int * Event.span) list ref) Hashtbl.t =
        Hashtbl.create 8
      in
      let track_order = ref [] in
      let idx = ref 0 in
      Buf.iter buf (fun ev ->
          (match ev with
          | Event.Span s ->
            let slot =
              match Hashtbl.find_opt by_track s.Event.s_track with
              | Some r -> r
              | None ->
                let r = ref [] in
                Hashtbl.add by_track s.Event.s_track r;
                track_order := s.Event.s_track :: !track_order;
                r
            in
            slot := (!idx, s) :: !slot
          | _ -> ());
          incr idx);
      List.iter
        (fun track ->
          let spans =
            List.sort
              (fun (ia, (a : Event.span)) (ib, b) ->
                match Float.compare a.Event.s_begin b.Event.s_begin with
                | 0 -> (
                  match Float.compare b.Event.s_end a.Event.s_end with
                  (* identical intervals: inner spans are emitted first
                     (a cpu span completes before its message span is
                     closed), so the later emission is the outer one *)
                  | 0 -> compare ib ia
                  | c -> c)
                | c -> c)
              !(Hashtbl.find by_track track)
          in
          let stack = ref [] in
          let close (f : frame) =
            credit f.fr_path (Float.max 0. (f.fr_dur -. f.fr_children_s));
            match !stack with
            | parent :: _ -> parent.fr_children_s <- parent.fr_children_s +. f.fr_dur
            | [] -> ()
          in
          (* a frame can only be an ancestor if it fully contains the
             incoming span; pop frames that ended already and frames
             that merely overlap it (async kernel charges straddle
             message boundaries) *)
          let rec pop_until (s : Event.span) =
            match !stack with
            | top :: rest
              when top.fr_end <= s.Event.s_begin
                   || top.fr_end < s.Event.s_end ->
              stack := rest;
              close top;
              pop_until s
            | _ -> ()
          in
          List.iter
            (fun (_, (s : Event.span)) ->
              pop_until s;
              let parent_path =
                match !stack with
                | top :: _ -> top.fr_path
                | [] -> root ^ ";" ^ track
              in
              let f =
                { fr_path = parent_path ^ ";" ^ s.Event.s_name;
                  fr_end = s.Event.s_end;
                  fr_children_s = 0.;
                  fr_dur = Float.max 0. (s.Event.s_end -. s.Event.s_begin) }
              in
              stack := f :: !stack)
            spans;
          (* drain whatever is still open at end of track *)
          let rec drain () =
            match !stack with
            | top :: rest ->
              stack := rest;
              close top;
              drain ()
            | [] -> ()
          in
          drain ())
        (List.rev !track_order))
    bufs;
  let lines =
    List.filter_map
      (fun path ->
        let s = Hashtbl.find tally path in
        let usecs = int_of_float (Float.round (us s)) in
        if usecs > 0 then Some (Printf.sprintf "%s %d" path usecs) else None)
      (List.rev !order)
  in
  String.concat "" (List.map (fun l -> l ^ "\n") (List.sort compare lines))

(* ---- plain-text timeline --------------------------------------------- *)

let timeline bufs =
  let b = Buffer.create 65536 in
  List.iter
    (fun buf ->
      Buffer.add_string b
        (Printf.sprintf "=== %s (%d events) ===\n"
           (match Buf.label buf with "" -> "trace" | l -> l)
           (Buf.length buf));
      let events =
        List.stable_sort
          (fun a b -> Float.compare (Event.time a) (Event.time b))
          (Buf.events buf)
      in
      let fmt_args = function
        | [] -> ""
        | args ->
          "  ["
          ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) args)
          ^ "]"
      in
      List.iter
        (fun ev ->
          match ev with
          | Event.Span s ->
            Buffer.add_string b
              (Printf.sprintf "%12.6f  %-8s %-9s %-28s %9.3f ms%s\n"
                 s.Event.s_begin s.Event.s_track s.Event.s_cat s.Event.s_name
                 ((s.Event.s_end -. s.Event.s_begin) *. 1000.)
                 (fmt_args s.Event.s_args))
          | Event.Instant i ->
            Buffer.add_string b
              (Printf.sprintf "%12.6f  %-8s %-9s %-28s%s\n" i.Event.i_ts
                 i.Event.i_track i.Event.i_cat i.Event.i_name
                 (fmt_args i.Event.i_args))
          | Event.Counter c ->
            Buffer.add_string b
              (Printf.sprintf "%12.6f  %-8s %-9s %-28s = %g\n" c.Event.c_ts
                 c.Event.c_track "counter" c.Event.c_name c.Event.c_value))
        events;
      Buffer.add_char b '\n')
    bufs;
  Buffer.contents b
