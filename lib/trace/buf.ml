type open_frame = {
  f_cat : string;
  f_name : string;
  f_begin : float;
  f_args : Event.args;
}

type t = {
  label : string;
  mutable events : Event.t array;
  mutable len : int;
  (* per-track stacks of begin_span frames awaiting their end_span *)
  mutable open_spans : (string * open_frame list) list;
}

let create ?(label = "") () =
  { label; events = Array.make 64 (Event.Counter { Event.c_track = ""; c_name = ""; c_ts = 0.; c_value = 0. });
    len = 0; open_spans = [] }

let label t = t.label
let length t = t.len

let clear t =
  t.len <- 0;
  t.open_spans <- []

let add t e =
  if t.len = Array.length t.events then begin
    let bigger = Array.make (2 * t.len) e in
    Array.blit t.events 0 bigger 0 t.len;
    t.events <- bigger
  end;
  t.events.(t.len) <- e;
  t.len <- t.len + 1

let span t ~track ~cat ~name ?(args = []) t0 t1 =
  add t
    (Event.Span
       { Event.s_track = track; s_cat = cat; s_name = name; s_begin = t0;
         s_end = t1; s_args = args })

let instant t ~track ~cat ~name ?(args = []) ts =
  add t
    (Event.Instant
       { Event.i_track = track; i_cat = cat; i_name = name; i_ts = ts;
         i_args = args })

let counter t ~track ~name ts value =
  add t
    (Event.Counter
       { Event.c_track = track; c_name = name; c_ts = ts; c_value = value })

let begin_span t ~track ~cat ~name ?(args = []) ts =
  let frame = { f_cat = cat; f_name = name; f_begin = ts; f_args = args } in
  let stack =
    Option.value ~default:[] (List.assoc_opt track t.open_spans)
  in
  t.open_spans <-
    (track, frame :: stack) :: List.remove_assoc track t.open_spans

let end_span t ~track ts =
  match List.assoc_opt track t.open_spans with
  | None | Some [] -> () (* unmatched end: ignore *)
  | Some (frame :: rest) ->
    t.open_spans <- (track, rest) :: List.remove_assoc track t.open_spans;
    span t ~track ~cat:frame.f_cat ~name:frame.f_name ~args:frame.f_args
      frame.f_begin ts

let events t = Array.to_list (Array.sub t.events 0 t.len)

let iter t f =
  for i = 0 to t.len - 1 do
    f t.events.(i)
  done
