(** Aggregate "cpu" spans back into the paper's Table 3 quantities.

    Because every simulated CPU charge emits exactly one cpu span
    tagged with its library bucket, summing spans reproduces the
    per-host ledgers that {!Core.Whitebox} reports — the cross-check
    that turns the white-box table into a view over the trace stream. *)

val per_lib : (string, float) Hashtbl.t -> (string * float) list
(** Extract a per-library ms table in the canonical artifact order —
    descending cost, ties by name — so hash-bucket order never escapes
    the producer. Same order contract as [Netsim.Host.ledger]. *)

val cpu_ms_by_lib : Buf.t -> (string * (string * float) list) list
(** Per track (host), total CPU milliseconds per library, descending by
    cost. Tracks in order of first appearance. *)

val shares : (string * float) list -> (string * float) list
(** Normalize a per-library ms list to fractions of its total. *)

val cpu_shares : Buf.t -> (string * (string * float) list) list
(** {!cpu_ms_by_lib} normalized per track — directly comparable to
    [Experiment.outcome.client_ledger] / [server_ledger]. *)
