(* The campaign-level trace: one buffer per cell, appended by the
   coordinating domain only (Exec adds buffers after the pool joins),
   in spec order — so a traced campaign exports identically whatever
   [--jobs] was. *)

type t = { mutable rev_cells : Buf.t list; mutable count : int }

let create () = { rev_cells = []; count = 0 }

let add t buf =
  t.rev_cells <- buf :: t.rev_cells;
  t.count <- t.count + 1

let cells t = List.rev t.rev_cells
let length t = t.count
let total_events t = List.fold_left (fun acc b -> acc + Buf.length b) 0 (cells t)
