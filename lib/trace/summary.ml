(* The trace-consuming aggregator: recompute the white-box (Table 3)
   CPU attribution purely from emitted "cpu" spans. Every virtual CPU
   charge in the simulator flows through Netsim.Host.charge{,_async},
   and both emit one cpu span carrying its library bucket — so these
   sums must agree with the Host ledgers to float rounding. *)

(* Sorted at the producer — biggest spender first, ties by name — the
   same order contract as Netsim.Host.ledger, so consumers never see
   (or depend on re-sorting away) hash-bucket order. *)
let per_lib h =
  Hashtbl.fold (fun lib ms acc -> (lib, ms) :: acc) h []
  |> List.sort (fun (la, a) (lb, b) ->
         match Float.compare b a with 0 -> String.compare la lb | c -> c)

let cpu_ms_by_lib buf =
  let tracks : (string, (string, float) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 4
  in
  let track_order = ref [] in
  Buf.iter buf (fun ev ->
      match ev with
      | Event.Span s when s.Event.s_cat = "cpu" ->
        let lib =
          Option.value ~default:"?" (List.assoc_opt "lib" s.Event.s_args)
        in
        let per_lib =
          match Hashtbl.find_opt tracks s.Event.s_track with
          | Some h -> h
          | None ->
            let h = Hashtbl.create 8 in
            Hashtbl.add tracks s.Event.s_track h;
            track_order := s.Event.s_track :: !track_order;
            h
        in
        let ms = (s.Event.s_end -. s.Event.s_begin) *. 1000. in
        let prev = Option.value ~default:0. (Hashtbl.find_opt per_lib lib) in
        Hashtbl.replace per_lib lib (prev +. ms)
      | _ -> ());
  List.map
    (fun track -> (track, per_lib (Hashtbl.find tracks track)))
    (List.rev !track_order)

let shares per_lib =
  let total = List.fold_left (fun acc (_, ms) -> acc +. ms) 0. per_lib in
  if total <= 0. then []
  else List.map (fun (lib, ms) -> (lib, ms /. total)) per_lib

let cpu_shares buf =
  List.map (fun (track, libs) -> (track, shares libs)) (cpu_ms_by_lib buf)
