(** The event model: everything is stamped in virtual seconds. A track
    is one horizontal lane of the timeline (host name, "net", ...);
    spans on a track either nest or are disjoint, which is what lets the
    exporters render proper flame stacks. *)

type args = (string * string) list

type span = {
  s_track : string;
  s_cat : string; (* "handshake" | "phase" | "message" | "cpu" | "net" *)
  s_name : string;
  s_begin : float; (* virtual seconds *)
  s_end : float;
  s_args : args;
}

type instant = {
  i_track : string;
  i_cat : string;
  i_name : string;
  i_ts : float;
  i_args : args;
}

type counter = {
  c_track : string;
  c_name : string;
  c_ts : float;
  c_value : float;
}

type t = Span of span | Instant of instant | Counter of counter

val time : t -> float
(** The event's timestamp: a span's start, an instant's or counter's
    instant. *)

val track : t -> string
