(** The null-by-default tracing sink.

    Each domain carries at most one installed {!Buf.t}; every emitter
    below is a no-op when none is installed, which is the "zero cost
    when disabled" guarantee (asserted by the test suite: campaign
    outputs are bit-identical with and without tracing). *)

val enabled : unit -> bool
(** True while a buffer is installed on the calling domain — use to
    skip argument construction at hot instrumentation sites. *)

val current : unit -> Buf.t option

val run_with : Buf.t -> (unit -> 'a) -> 'a
(** [run_with buf f] installs [buf] on the calling domain for the
    duration of [f] (restoring the previous sink on exit, even on
    raise). *)

val span :
  track:string -> cat:string -> name:string -> ?args:Event.args ->
  float -> float -> unit

val begin_span :
  track:string -> cat:string -> name:string -> ?args:Event.args ->
  float -> unit

val end_span : track:string -> float -> unit

val instant :
  track:string -> cat:string -> name:string -> ?args:Event.args ->
  float -> unit

val counter : track:string -> name:string -> float -> float -> unit
