(** One cell's event buffer: append-only, owned by exactly one domain at
    a time (each campaign cell runs wholly on one domain), so the hot
    path needs no locks. Merging buffers in spec order at campaign end
    keeps exporter output bit-identical across [--jobs]. *)

type t

val create : ?label:string -> unit -> t
(** [label] names the cell (e.g. the {!Core.Experiment.spec_label}); the
    Chrome exporter shows it as the process name. *)

val label : t -> string
val length : t -> int

val clear : t -> unit
(** Drop every event and any open spans — used when a failing cell is
    retried, so only the final attempt's events survive. *)

val span :
  t -> track:string -> cat:string -> name:string -> ?args:Event.args ->
  float -> float -> unit
(** [span t ~track ~cat ~name t0 t1] records a complete interval. *)

val begin_span :
  t -> track:string -> cat:string -> name:string -> ?args:Event.args ->
  float -> unit
(** Open a span on [track]'s stack; closed by the next {!end_span}. *)

val end_span : t -> track:string -> float -> unit
(** Close the innermost open span on [track] (no-op when none is open). *)

val instant : t -> track:string -> cat:string -> name:string ->
  ?args:Event.args -> float -> unit

val counter : t -> track:string -> name:string -> float -> float -> unit
(** [counter t ~track ~name ts v] records a counter sample. *)

val events : t -> Event.t list
(** In emission order. *)

val iter : t -> (Event.t -> unit) -> unit
