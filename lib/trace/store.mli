(** Ordered collection of per-cell buffers for a whole campaign.
    Mutated only by the coordinating domain; worker domains write into
    their own cell's {!Buf.t} via {!Sink}. *)

type t

val create : unit -> t

val add : t -> Buf.t -> unit
(** Append a cell buffer (call in spec order for deterministic export). *)

val cells : t -> Buf.t list
(** In insertion order. *)

val length : t -> int
val total_events : t -> int
