(* The per-domain current buffer. Instrumentation sites throughout
   netsim/tls/core emit through these functions; when no buffer is
   installed on the calling domain every emitter is a cheap None check,
   so campaigns without tracing stay bit-identical and essentially free.

   Domain-locality is what makes this safe without locks: Core.Pool runs
   each cell entirely on one domain, and Exec installs that cell's
   buffer for exactly the duration of the cell. *)

let key : Buf.t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)
[@@lint.allow "S1" "domain-local storage is the containment mechanism \
                    itself; each domain sees only its own slot"]

let current () = !(Domain.DLS.get key)
let enabled () = current () <> None

let run_with buf f =
  let slot = Domain.DLS.get key in
  let saved = !slot in
  slot := Some buf;
  Fun.protect ~finally:(fun () -> slot := saved) f

let span ~track ~cat ~name ?args t0 t1 =
  match current () with
  | None -> ()
  | Some b -> Buf.span b ~track ~cat ~name ?args t0 t1

let begin_span ~track ~cat ~name ?args ts =
  match current () with
  | None -> ()
  | Some b -> Buf.begin_span b ~track ~cat ~name ?args ts

let end_span ~track ts =
  match current () with
  | None -> ()
  | Some b -> Buf.end_span b ~track ts

let instant ~track ~cat ~name ?args ts =
  match current () with
  | None -> ()
  | Some b -> Buf.instant b ~track ~cat ~name ?args ts

let counter ~track ~name ts value =
  match current () with
  | None -> ()
  | Some b -> Buf.counter b ~track ~name ts value
