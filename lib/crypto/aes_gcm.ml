(* SP 800-38D. GF(2^128) elements are (hi, lo) Int64 pairs, bit 0 of the
   field = MSB of [hi], per the GCM bit ordering. *)
[@@@lint.kernel
  "block and tag buffers are allocated at their final 16-byte size in the same function as every access"]


let tag_size = 16

type key = { aes : Aes.key; h : int64 * int64 }

let block_of_string s off =
  (Bytesx.get_u64_be s off, Bytesx.get_u64_be s (off + 8))

let string_of_block (hi, lo) =
  let b = Bytes.create 16 in
  Bytesx.set_u64_be b 0 hi;
  Bytesx.set_u64_be b 8 lo;
  Bytes.unsafe_to_string b

let xor_block (ah, al) (bh, bl) = (Int64.logxor ah bh, Int64.logxor al bl)

(* reduction constant R = 11100001 || 0^120 *)
let r_hi = 0xe100000000000000L

let gf_mul (xh, xl) (yh, yl) =
  let zh = ref 0L and zl = ref 0L in
  let vh = ref yh and vl = ref yl in
  let step bit =
    if bit then begin
      zh := Int64.logxor !zh !vh;
      zl := Int64.logxor !zl !vl
    end;
    let lsb = Int64.logand !vl 1L in
    let new_vl =
      Int64.logor (Int64.shift_right_logical !vl 1) (Int64.shift_left !vh 63)
    in
    let new_vh = Int64.shift_right_logical !vh 1 in
    vl := new_vl;
    vh := if lsb = 1L then Int64.logxor new_vh r_hi else new_vh
  in
  for i = 63 downto 0 do
    step (Int64.logand (Int64.shift_right_logical xh i) 1L = 1L)
  done;
  for i = 63 downto 0 do
    step (Int64.logand (Int64.shift_right_logical xl i) 1L = 1L)
  done;
  (!zh, !zl)

let of_secret secret =
  let aes = Aes.expand_key secret in
  let h = block_of_string (Aes.encrypt_block aes (String.make 16 '\000')) 0 in
  { aes; h }

let ghash key data =
  (* data length need not be a multiple of 16; short tail is zero-padded *)
  let n = String.length data in
  let acc = ref (0L, 0L) in
  let i = ref 0 in
  while !i < n do
    let blk =
      if !i + 16 <= n then block_of_string data !i
      else begin
        let b = Bytes.make 16 '\000' in
        Bytes.blit_string data !i b 0 (n - !i);
        block_of_string (Bytes.unsafe_to_string b) 0
      end
    in
    acc := gf_mul (xor_block !acc blk) key.h;
    i := !i + 16
  done;
  !acc

let pad16 s =
  let r = String.length s mod 16 in
  if r = 0 then s else s ^ String.make (16 - r) '\000'

let lengths_block ad c =
  Bytesx.u64_be (Int64.of_int (8 * String.length ad))
  ^ Bytesx.u64_be (Int64.of_int (8 * String.length c))

let counter_block nonce i =
  nonce ^ Bytesx.u32_be i

let gctr key nonce start msg =
  let n = String.length msg in
  let buf = Buffer.create n in
  let blocks = (n + 15) / 16 in
  for i = 0 to blocks - 1 do
    Buffer.add_string buf
      (Aes.encrypt_block key.aes (counter_block nonce (start + i)))
  done;
  Bytesx.xor msg (String.sub (Buffer.contents buf) 0 n)

let compute_tag key nonce ad c =
  let s = ghash key (pad16 ad ^ pad16 c ^ lengths_block ad c) in
  let j0 = counter_block nonce 1 in
  Bytesx.xor (string_of_block s) (Aes.encrypt_block key.aes j0)

let seal key ~nonce ~ad plaintext =
  if String.length nonce <> 12 then invalid_arg "Aes_gcm.seal: 12-byte nonce";
  let c = gctr key nonce 2 plaintext in
  c ^ compute_tag key nonce ad c

let open_ key ~nonce ~ad sealed =
  if String.length nonce <> 12 then invalid_arg "Aes_gcm.open_: 12-byte nonce";
  let n = String.length sealed in
  if n < tag_size then None
  else begin
    let c = String.sub sealed 0 (n - tag_size) in
    let tag = String.sub sealed (n - tag_size) tag_size in
    if Bytesx.equal_ct tag (compute_tag key nonce ad c) then
      Some (gctr key nonce 2 c)
    else None
  end
