(* Little-endian base-2^26 limbs; the invariant is "no trailing zero limb",
   so zero is the empty array and [Array.length] orders magnitudes of equal
   top-limb count. 26-bit limbs keep every product and the Knuth-D trial
   quotient inside 63-bit native ints. *)
[@@@lint.kernel
  "limb loops run to Array.length of the operand computed in the same function; normalization keeps every access below that bound"]


let bits_per_limb = 26
let base = 1 lsl bits_per_limb
let limb_mask = base - 1

type t = int array

let zero = [||]
let one = [| 1 |]
let two = [| 2 |]

let normalize a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int v =
  if v < 0 then invalid_arg "Bignum.of_int: negative";
  let rec go v acc = if v = 0 then acc else go (v lsr bits_per_limb) (v land limb_mask :: acc) in
  normalize (Array.of_list (List.rev (go v [])))

let to_int a =
  let n = Array.length a in
  if n * bits_per_limb > 62 && n > 3 then failwith "Bignum.to_int: too large";
  let acc = ref 0 in
  for i = n - 1 downto 0 do
    if !acc >= 1 lsl (62 - bits_per_limb) then failwith "Bignum.to_int: too large";
    acc := (!acc lsl bits_per_limb) lor a.(i)
  done;
  !acc

let is_zero a = Array.length a = 0
let is_even a = Array.length a = 0 || a.(0) land 1 = 0

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let equal a b = compare a b = 0

let bit_length a =
  let n = Array.length a in
  if n = 0 then 0
  else begin
    let top = a.(n - 1) in
    let rec msb v acc = if v = 0 then acc else msb (v lsr 1) (acc + 1) in
    ((n - 1) * bits_per_limb) + msb top 0
  end

let testbit a i =
  let limb = i / bits_per_limb and off = i mod bits_per_limb in
  limb < Array.length a && (a.(limb) lsr off) land 1 = 1

let add a b =
  let la = Array.length a and lb = Array.length b in
  let n = 1 + max la lb in
  let r = Array.make n 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s =
      (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry
    in
    r.(i) <- s land limb_mask;
    carry := s lsr bits_per_limb
  done;
  assert (!carry = 0);
  normalize r

let sub a b =
  if compare a b < 0 then invalid_arg "Bignum.sub: negative result";
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end
    else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  normalize r

let mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let v = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- v land limb_mask;
        carry := v lsr bits_per_limb
      done;
      (* propagate the final carry, which may itself exceed one limb *)
      let k = ref (i + lb) in
      while !carry <> 0 do
        let v = r.(!k) + !carry in
        r.(!k) <- v land limb_mask;
        carry := v lsr bits_per_limb;
        incr k
      done
    done;
    normalize r
  end

let shift_left a n =
  if n < 0 then invalid_arg "Bignum.shift_left";
  if is_zero a || n = 0 then a
  else begin
    let limbs = n / bits_per_limb and bits = n mod bits_per_limb in
    let la = Array.length a in
    let r = Array.make (la + limbs + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl bits in
      r.(i + limbs) <- r.(i + limbs) lor (v land limb_mask);
      r.(i + limbs + 1) <- v lsr bits_per_limb
    done;
    normalize r
  end

let shift_right a n =
  if n < 0 then invalid_arg "Bignum.shift_right";
  if is_zero a || n = 0 then a
  else begin
    let limbs = n / bits_per_limb and bits = n mod bits_per_limb in
    let la = Array.length a in
    if limbs >= la then zero
    else begin
      let r = Array.make (la - limbs) 0 in
      for i = 0 to la - limbs - 1 do
        let lo = a.(i + limbs) lsr bits in
        let hi =
          if bits = 0 || i + limbs + 1 >= la then 0
          else (a.(i + limbs + 1) lsl (bits_per_limb - bits)) land limb_mask
        in
        r.(i) <- lo lor hi
      done;
      normalize r
    end
  end

(* Knuth TAOCP vol. 2, Algorithm 4.3.1 D, in base 2^26. *)
let divmod a b =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else if Array.length b = 1 then begin
    (* short division *)
    let d = b.(0) in
    let la = Array.length a in
    let q = Array.make la 0 in
    let rem = ref 0 in
    for i = la - 1 downto 0 do
      let cur = (!rem lsl bits_per_limb) lor a.(i) in
      q.(i) <- cur / d;
      rem := cur mod d
    done;
    (normalize q, of_int !rem)
  end
  else begin
    (* normalize so the top divisor limb has its high bit set *)
    let shift =
      let top = b.(Array.length b - 1) in
      let rec go v acc = if v land (base lsr 1) <> 0 then acc else go (v lsl 1) (acc + 1) in
      go top 0
    in
    let u0 = shift_left a shift and v = shift_left b shift in
    let n = Array.length v in
    let m = Array.length u0 - n in
    (* u gets one extra high limb *)
    let u = Array.make (Array.length u0 + 1) 0 in
    Array.blit u0 0 u 0 (Array.length u0);
    let q = Array.make (m + 1) 0 in
    let vn1 = v.(n - 1) and vn2 = if n >= 2 then v.(n - 2) else 0 in
    for j = m downto 0 do
      let num = (u.(j + n) lsl bits_per_limb) lor u.(j + n - 1) in
      let qhat = ref (num / vn1) and rhat = ref (num mod vn1) in
      let adjust = ref true in
      while !adjust do
        if !qhat >= base
           || !qhat * vn2 > (!rhat lsl bits_per_limb) lor u.(j + n - 2)
        then begin
          decr qhat;
          rhat := !rhat + vn1;
          if !rhat >= base then adjust := false
        end
        else adjust := false
      done;
      (* multiply-subtract qhat * v from u[j .. j+n] *)
      let borrow = ref 0 and carry = ref 0 in
      for i = 0 to n - 1 do
        let p = (!qhat * v.(i)) + !carry in
        carry := p lsr bits_per_limb;
        let d = u.(i + j) - (p land limb_mask) - !borrow in
        if d < 0 then begin
          u.(i + j) <- d + base;
          borrow := 1
        end
        else begin
          u.(i + j) <- d;
          borrow := 0
        end
      done;
      let d = u.(j + n) - !carry - !borrow in
      if d < 0 then begin
        (* qhat was one too large: add v back *)
        u.(j + n) <- d + base;
        decr qhat;
        let c = ref 0 in
        for i = 0 to n - 1 do
          let s = u.(i + j) + v.(i) + !c in
          u.(i + j) <- s land limb_mask;
          c := s lsr bits_per_limb
        done;
        u.(j + n) <- (u.(j + n) + !c) land limb_mask
      end
      else u.(j + n) <- d;
      q.(j) <- !qhat
    done;
    let r = normalize (Array.sub u 0 n) in
    (normalize q, shift_right r shift)
  end

let rem a b = snd (divmod a b)

let mod_add a b ~m =
  let s = add a b in
  if compare s m >= 0 then sub s m else s

let mod_sub a b ~m = if compare a b >= 0 then sub a b else sub (add a m) b
let mod_mul a b ~m = rem (mul a b) m

let mod_pow b e ~m =
  if is_zero m then raise Division_by_zero;
  if equal m one then zero
  else begin
    let result = ref one and base_ = ref (rem b m) in
    let nbits = bit_length e in
    for i = 0 to nbits - 1 do
      if testbit e i then result := mod_mul !result !base_ ~m;
      if i < nbits - 1 then base_ := mod_mul !base_ !base_ ~m
    done;
    !result
  end

(* Extended Euclid on naturals, tracking Bezout coefficients with explicit
   signs: invariant r = a*x - a*x' style bookkeeping via (sign, magnitude). *)
let mod_inv a ~m =
  let a = rem a m in
  if is_zero a then raise Not_found;
  (* iterative extended euclid: r0 = m, r1 = a; t0 = 0, t1 = 1 with signs *)
  let rec go r0 r1 (s0, t0) (s1, t1) =
    if is_zero r1 then begin
      if not (equal r0 one) then raise Not_found;
      if s0 then sub m t0 else t0
    end
    else begin
      let q, r2 = divmod r0 r1 in
      (* t2 = t0 - q * t1, with signs *)
      let qt1 = mul q t1 in
      let s2, t2 =
        if s0 = s1 then
          if compare t0 qt1 >= 0 then (s0, sub t0 qt1) else (not s0, sub qt1 t0)
        else (s0, add t0 qt1)
      in
      go r1 r2 (s1, t1) (s2, t2)
    end
  in
  let inv = go m a (false, zero) (false, one) in
  rem inv m

let rec gcd a b = if is_zero b then a else gcd b (rem a b)

let of_bytes_be s =
  let acc = ref zero in
  String.iter
    (fun c -> acc := add (shift_left !acc 8) (of_int (Char.code c)))
    s;
  !acc

let to_bytes_be ?len a =
  let nbytes = (bit_length a + 7) / 8 in
  let nbytes = max nbytes 1 in
  let out = Bytes.make nbytes '\000' in
  let v = ref a in
  for i = nbytes - 1 downto 0 do
    let limb = if is_zero !v then 0 else !v.(0) in
    Bytes.set out i (Char.chr (limb land 0xff));
    v := shift_right !v 8
  done;
  let s = Bytes.unsafe_to_string out in
  match len with
  | None -> s
  | Some l ->
    if nbytes > l then begin
      (* allow when the extra leading bytes are zero *)
      let extra = nbytes - l in
      if String.sub s 0 extra <> String.make extra '\000' then
        invalid_arg "Bignum.to_bytes_be: value too large for len";
      String.sub s extra l
    end
    else String.make (l - nbytes) '\000' ^ s

let of_hex h = of_bytes_be (Bytesx.of_hex (if String.length h mod 2 = 1 then "0" ^ h else h))
let to_hex a = Bytesx.to_hex (to_bytes_be a)

let random rng ~bits =
  if bits <= 0 then zero
  else begin
    let nbytes = (bits + 7) / 8 in
    let b = Bytes.of_string (Drbg.generate rng nbytes) in
    let extra = (8 * nbytes) - bits in
    Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) land (0xff lsr extra)));
    of_bytes_be (Bytes.unsafe_to_string b)
  end

let random_below rng n =
  if is_zero n then invalid_arg "Bignum.random_below";
  let bits = bit_length n in
  let rec go () =
    let v = random rng ~bits in
    if compare v n < 0 then v else go ()
  in
  go ()

let small_primes =
  [ 2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37; 41; 43; 47; 53; 59; 61; 67;
    71; 73; 79; 83; 89; 97; 101; 103; 107; 109; 113; 127; 131; 137; 139;
    149; 151; 157; 163; 167; 173; 179; 181; 191; 193; 197; 199; 211; 223;
    227; 229; 233; 239; 241; 251 ]

let is_probable_prime ?(rounds = 20) rng n =
  if compare n two < 0 then false
  else if compare n (of_int 4) < 0 then true (* 2 and 3 *)
  else if is_even n then false
  else begin
    let n_int = if bit_length n <= 16 then Some (to_int n) else None in
    let divisible_by_small =
      List.exists
        (fun p ->
          match n_int with
          | Some v -> v <> p && v mod p = 0
          | None -> is_zero (rem n (of_int p)))
        small_primes
    in
    if divisible_by_small then
      (match n_int with
      | Some v -> List.mem v small_primes
      | None -> false)
    else begin
      (* n - 1 = d * 2^s *)
      let n1 = sub n one in
      let rec split d s = if is_even d then split (shift_right d 1) (s + 1) else (d, s) in
      let d, s = split n1 0 in
      let witness a =
        let x = ref (mod_pow a d ~m:n) in
        if equal !x one || equal !x n1 then false
        else begin
          let composite = ref true in
          (try
             for _ = 1 to s - 1 do
               x := mod_mul !x !x ~m:n;
               if equal !x n1 then begin
                 composite := false;
                 raise Exit
               end
             done
           with Exit -> ());
          !composite
        end
      in
      let rec rounds_left k =
        if k = 0 then true
        else begin
          let a = add two (random_below rng (sub n (of_int 3))) in
          if witness a then false else rounds_left (k - 1)
        end
      in
      rounds_left rounds
    end
  end

let gen_prime rng ~bits =
  if bits < 8 then invalid_arg "Bignum.gen_prime: need >= 8 bits";
  let top_bits = add (shift_left one (bits - 1)) (shift_left one (bits - 2)) in
  let rec go () =
    (* two top bits forced so p*q has exactly 2*bits bits; forced odd *)
    let cand = add (random rng ~bits:(bits - 2)) top_bits in
    let cand = if is_even cand then add cand one else cand in
    if is_probable_prime rng cand then cand else go ()
  in
  go ()

let pp fmt a = Format.pp_print_string fmt ("0x" ^ to_hex a)
