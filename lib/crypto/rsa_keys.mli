(** Fixed RSA keypairs for tests and benchmarks.

    Key generation is multi-second at benchmark sizes, so moduli built
    from pre-generated seeded primes (see DESIGN.md) are embedded and
    memoized behind a mutex; campaigns running cells on several domains
    share one cache. The keys are for this repository only — never reuse
    them elsewhere. *)

val find : int -> (Bignum.t * Bignum.t) option
(** [find bits] is the embedded prime pair [(p, q)] for a modulus of
    [bits] bits, if one is embedded (1024, 2048, 3072, 4096). *)

val fixed_key : int -> Rsa.priv
(** [fixed_key bits] is the deterministic keypair of [bits] modulus
    bits: the embedded primes when available, otherwise generated from a
    fixed seed (slow path). Memoized; domain-safe. *)
