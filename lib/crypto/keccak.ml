(* Keccak-f[1600] sponge, FIPS 202.

   Performance note: OCaml boxes int64 array elements, which makes the
   obvious Int64 implementation allocate on every lane operation. Each
   64-bit lane is therefore split into two *native* ints (low/high 32
   bits), kept in plain int arrays — allocation-free and several times
   faster, which matters because SHAKE sits on the hot path of Kyber,
   Dilithium, SPHINCS+ and the DRBG. Lane (x, y) lives at index
   [x + 5*y]. *)
[@@@lint.kernel
  "lane arrays are fixed size 25 (5x5 state); rho/pi index tables are precomputed permutations of 0..24; rate offsets are bounded by the absorb/squeeze loops"]


let m32 = 0xffffffff

(* round constants split into (lo32, hi32) *)
let rc_lo, rc_hi =
  let rc =
    [| 0x0000000000000001L; 0x0000000000008082L; 0x800000000000808aL;
       0x8000000080008000L; 0x000000000000808bL; 0x0000000080000001L;
       0x8000000080008081L; 0x8000000000008009L; 0x000000000000008aL;
       0x0000000000000088L; 0x0000000080008009L; 0x000000008000000aL;
       0x000000008000808bL; 0x800000000000008bL; 0x8000000000008089L;
       0x8000000000008003L; 0x8000000000008002L; 0x8000000000000080L;
       0x000000000000800aL; 0x800000008000000aL; 0x8000000080008081L;
       0x8000000000008080L; 0x0000000080000001L; 0x8000000080008008L |]
  in
  ( Array.map (fun v -> Int64.to_int (Int64.logand v 0xffffffffL)) rc,
    Array.map
      (fun v -> Int64.to_int (Int64.shift_right_logical v 32) land m32)
      rc )

(* rotation offsets, indexed x + 5*y *)
let rho =
  [| 0; 1; 62; 28; 27; 36; 44; 6; 55; 20; 3; 10; 43; 25; 39; 41; 45; 15; 21;
     8; 18; 2; 61; 56; 14 |]

(* pi permutation target: dst.(pi.(i)) <- rotated src.(i) *)
let pi =
  let t = Array.make 25 0 in
  for x = 0 to 4 do
    for y = 0 to 4 do
      t.(x + (5 * y)) <- y + (5 * (((2 * x) + (3 * y)) mod 5))
    done
  done;
  t
[@@lint.allow "S1" "init-once permutation table; never written after \
                    module init"]

type state = {
  lo : int array; (* 25 low halves *)
  hi : int array; (* 25 high halves *)
  (* permutation scratch *)
  clo : int array;
  chi : int array;
  dlo : int array;
  dhi : int array;
  blo : int array;
  bhi : int array;
}

let make_state () =
  { lo = Array.make 25 0; hi = Array.make 25 0; clo = Array.make 5 0;
    chi = Array.make 5 0; dlo = Array.make 5 0; dhi = Array.make 5 0;
    blo = Array.make 25 0; bhi = Array.make 25 0 }

(* index tables avoid mod-5 arithmetic in the inner loops *)
let mod5 =
  Array.init 25 (fun i -> i mod 5)
[@@lint.allow "S1" "init-once index table; never written after module init"]

let chi_i1 =
  Array.init 25 (fun i -> (5 * (i / 5)) + ((i + 1) mod 5))
[@@lint.allow "S1" "init-once index table; never written after module init"]

let chi_i2 =
  Array.init 25 (fun i -> (5 * (i / 5)) + ((i + 2) mod 5))
[@@lint.allow "S1" "init-once index table; never written after module init"]

let keccak_f st =
  let lo = st.lo and hi = st.hi in
  let clo = st.clo and chi = st.chi and dlo = st.dlo and dhi = st.dhi in
  let blo = st.blo and bhi = st.bhi in
  for round = 0 to 23 do
    (* theta *)
    for x = 0 to 4 do
      Array.unsafe_set clo x
        (Array.unsafe_get lo x lxor Array.unsafe_get lo (x + 5)
        lxor Array.unsafe_get lo (x + 10) lxor Array.unsafe_get lo (x + 15)
        lxor Array.unsafe_get lo (x + 20));
      Array.unsafe_set chi x
        (Array.unsafe_get hi x lxor Array.unsafe_get hi (x + 5)
        lxor Array.unsafe_get hi (x + 10) lxor Array.unsafe_get hi (x + 15)
        lxor Array.unsafe_get hi (x + 20))
    done;
    for x = 0 to 4 do
      let x1 = if x = 4 then 0 else x + 1 and x4 = if x = 0 then 4 else x - 1 in
      (* rotl1 of column x+1 *)
      let rl = ((Array.unsafe_get clo x1 lsl 1) lor (Array.unsafe_get chi x1 lsr 31)) land m32 in
      let rh = ((Array.unsafe_get chi x1 lsl 1) lor (Array.unsafe_get clo x1 lsr 31)) land m32 in
      Array.unsafe_set dlo x (Array.unsafe_get clo x4 lxor rl);
      Array.unsafe_set dhi x (Array.unsafe_get chi x4 lxor rh)
    done;
    for i = 0 to 24 do
      let m = Array.unsafe_get mod5 i in
      Array.unsafe_set lo i (Array.unsafe_get lo i lxor Array.unsafe_get dlo m);
      Array.unsafe_set hi i (Array.unsafe_get hi i lxor Array.unsafe_get dhi m)
    done;
    (* rho + pi *)
    for i = 0 to 24 do
      let n = Array.unsafe_get rho i in
      let l = Array.unsafe_get lo i and h = Array.unsafe_get hi i in
      let t = Array.unsafe_get pi i in
      if n = 0 then begin
        Array.unsafe_set blo t l;
        Array.unsafe_set bhi t h
      end
      else if n < 32 then begin
        Array.unsafe_set blo t (((l lsl n) lor (h lsr (32 - n))) land m32);
        Array.unsafe_set bhi t (((h lsl n) lor (l lsr (32 - n))) land m32)
      end
      else if n = 32 then begin
        Array.unsafe_set blo t h;
        Array.unsafe_set bhi t l
      end
      else begin
        let k = n - 32 in
        Array.unsafe_set blo t (((h lsl k) lor (l lsr (32 - k))) land m32);
        Array.unsafe_set bhi t (((l lsl k) lor (h lsr (32 - k))) land m32)
      end
    done;
    (* chi *)
    for i = 0 to 24 do
      let i1 = Array.unsafe_get chi_i1 i and i2 = Array.unsafe_get chi_i2 i in
      Array.unsafe_set lo i
        (Array.unsafe_get blo i
        lxor (lnot (Array.unsafe_get blo i1) land Array.unsafe_get blo i2 land m32));
      Array.unsafe_set hi i
        (Array.unsafe_get bhi i
        lxor (lnot (Array.unsafe_get bhi i1) land Array.unsafe_get bhi i2 land m32))
    done;
    (* iota *)
    Array.unsafe_set lo 0 (Array.unsafe_get lo 0 lxor Array.unsafe_get rc_lo round);
    Array.unsafe_set hi 0 (Array.unsafe_get hi 0 lxor Array.unsafe_get rc_hi round)
  done

type sponge = {
  st : state;
  rate : int; (* rate in bytes *)
  mutable pos : int; (* byte position within the current rate block *)
}

let xor_byte_into st i v =
  let lane = i lsr 3 and off = i land 7 in
  if off < 4 then st.lo.(lane) <- st.lo.(lane) lxor (v lsl (8 * off))
  else st.hi.(lane) <- st.hi.(lane) lxor (v lsl (8 * (off - 4)))

let byte_out st i =
  let lane = i lsr 3 and off = i land 7 in
  if off < 4 then (st.lo.(lane) lsr (8 * off)) land 0xff
  else (st.hi.(lane) lsr (8 * (off - 4))) land 0xff

let absorb sp msg pad_byte =
  let n = String.length msg in
  let i = ref 0 in
  while !i < n do
    (* fast path: absorb a whole aligned 64-bit lane at once *)
    if sp.pos land 7 = 0 && n - !i >= 8 then begin
      let lane = sp.pos lsr 3 in
      let lo32 = Bytesx.get_u32_le msg !i in
      let hi32 = Bytesx.get_u32_le msg (!i + 4) in
      sp.st.lo.(lane) <- sp.st.lo.(lane) lxor lo32;
      sp.st.hi.(lane) <- sp.st.hi.(lane) lxor hi32;
      sp.pos <- sp.pos + 8;
      i := !i + 8
    end
    else begin
      xor_byte_into sp.st sp.pos (Char.code (String.unsafe_get msg !i));
      sp.pos <- sp.pos + 1;
      incr i
    end;
    if sp.pos = sp.rate then begin
      keccak_f sp.st;
      sp.pos <- 0
    end
  done;
  (* pad10*1 with the domain bits folded into the first pad byte *)
  xor_byte_into sp.st sp.pos pad_byte;
  xor_byte_into sp.st (sp.rate - 1) 0x80;
  keccak_f sp.st;
  sp.pos <- 0

let squeeze sp n =
  let out = Bytes.create n in
  for i = 0 to n - 1 do
    if sp.pos = sp.rate then begin
      keccak_f sp.st;
      sp.pos <- 0
    end;
    Bytes.set out i (Char.chr (byte_out sp.st sp.pos));
    sp.pos <- sp.pos + 1
  done;
  Bytes.unsafe_to_string out

let hash rate pad_byte msg out_len =
  let sp = { st = make_state (); rate; pos = 0 } in
  absorb sp msg pad_byte;
  squeeze sp out_len

let sha3_256 msg = hash 136 0x06 msg 32
let sha3_512 msg = hash 72 0x06 msg 64
let shake128 msg n = hash 168 0x1f msg n
let shake256 msg n = hash 136 0x1f msg n

module Xof = struct
  type t = sponge

  let make rate msg =
    let sp = { st = make_state (); rate; pos = 0 } in
    absorb sp msg 0x1f;
    sp

  let shake128 msg = make 168 msg
  let shake256 msg = make 136 msg
  let squeeze = squeeze
end

(* ---- micro-benchmark kernel hook ----------------------------------------- *)

let bench_permutation () =
  let st = make_state () in
  (* fixed non-trivial lane contents so every round does real work *)
  for i = 0 to 24 do
    st.lo.(i) <- (i * 0x9e3779b9) land m32;
    st.hi.(i) <- ((i + 7) * 0x7c15) land m32
  done;
  fun () -> keccak_f st
