(* RFC 8439 ChaCha20. 32-bit words in native ints, masked. *)
[@@@lint.kernel
  "16-word state arrays are created with fixed size 16 and every index is a constant 0..15 from the RFC 8439 quarter-round schedule"]


let mask = 0xffffffff
let rotl x n = ((x lsl n) lor (x lsr (32 - n))) land mask

let quarter st a b c d =
  st.(a) <- (st.(a) + st.(b)) land mask;
  st.(d) <- rotl (st.(d) lxor st.(a)) 16;
  st.(c) <- (st.(c) + st.(d)) land mask;
  st.(b) <- rotl (st.(b) lxor st.(c)) 12;
  st.(a) <- (st.(a) + st.(b)) land mask;
  st.(d) <- rotl (st.(d) lxor st.(a)) 8;
  st.(c) <- (st.(c) + st.(d)) land mask;
  st.(b) <- rotl (st.(b) lxor st.(c)) 7

let block ~key ~counter ~nonce =
  if String.length key <> 32 then invalid_arg "Chacha20: 32-byte key";
  if String.length nonce <> 12 then invalid_arg "Chacha20: 12-byte nonce";
  let init = Array.make 16 0 in
  init.(0) <- 0x61707865;
  init.(1) <- 0x3320646e;
  init.(2) <- 0x79622d32;
  init.(3) <- 0x6b206574;
  for i = 0 to 7 do
    init.(4 + i) <- Bytesx.get_u32_le key (4 * i)
  done;
  init.(12) <- counter land mask;
  for i = 0 to 2 do
    init.(13 + i) <- Bytesx.get_u32_le nonce (4 * i)
  done;
  let st = Array.copy init in
  for _ = 1 to 10 do
    quarter st 0 4 8 12;
    quarter st 1 5 9 13;
    quarter st 2 6 10 14;
    quarter st 3 7 11 15;
    quarter st 0 5 10 15;
    quarter st 1 6 11 12;
    quarter st 2 7 8 13;
    quarter st 3 4 9 14
  done;
  let out = Bytes.create 64 in
  for i = 0 to 15 do
    Bytesx.set_u32_le out (4 * i) ((st.(i) + init.(i)) land mask)
  done;
  Bytes.unsafe_to_string out

let encrypt ~key ~counter ~nonce msg =
  let n = String.length msg in
  let buf = Buffer.create (n + 64) in
  let blocks = (n + 63) / 64 in
  for i = 0 to blocks - 1 do
    Buffer.add_string buf (block ~key ~counter:(counter + i) ~nonce)
  done;
  Bytesx.xor msg (String.sub (Buffer.contents buf) 0 n)
