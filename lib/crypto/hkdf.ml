let extract h ~salt ~ikm =
  let salt =
    if (salt = "" [@lint.allow "C1" "emptiness check selecting the RFC 5869 \
                                     default salt; length is public"])
    then String.make h.Hmac.digest_size '\000'
    else salt
  in
  Hmac.hmac h ~key:salt ikm

let expand h ~prk ~info len =
  if len > 255 * h.Hmac.digest_size then invalid_arg "Hkdf.expand: too long";
  let buf = Buffer.create len in
  let rec go t i =
    if Buffer.length buf < len then begin
      let t = Hmac.hmac h ~key:prk (t ^ info ^ String.make 1 (Char.chr i)) in
      Buffer.add_string buf t;
      go t (i + 1)
    end
  in
  go "" 1;
  String.sub (Buffer.contents buf) 0 len
