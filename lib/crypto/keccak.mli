(** Keccak sponge (FIPS 202): SHA3-256/512 and the SHAKE128/256 XOFs.

    SHAKE is exposed both as one-shot ([shake128], [shake256]) and as an
    incremental XOF ([Xof]) so callers (ML-KEM / ML-DSA samplers) can
    squeeze an unbounded stream. *)

val sha3_256 : string -> string
val sha3_512 : string -> string

val shake128 : string -> int -> string
(** [shake128 msg n] squeezes [n] bytes. *)

val shake256 : string -> int -> string

module Xof : sig
  type t

  val shake128 : string -> t
  (** Absorb [msg] and switch to the squeeze phase. *)

  val shake256 : string -> t

  val squeeze : t -> int -> string
  (** [squeeze t n] produces the next [n] bytes of the output stream. *)
end

val bench_permutation : unit -> unit -> unit
(** [bench_permutation ()] builds a deterministically-filled sponge
    state and returns a thunk applying one Keccak-f[1600] permutation to
    it in place — the substrate-kernel hook behind [Core.Profile], not
    part of the hashing API. *)
