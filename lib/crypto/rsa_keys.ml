(* Pre-generated RSA primes (see DESIGN.md: produced once with a seeded
   sympy script and embedded so tests and benches do not pay multi-second
   Miller-Rabin key generation). Private use only -- never reuse outside
   this repository. *)

let primes = [
  ( 1024,
    "e925962d0622c270b781100cd93c1632f162121b550d3802ae43ceb165af5a92e709c86893dc04853dbb9e89e5c7e6e7a32009a75afe41dc9a6182db5cdc80f7",
    "f0735e3b74ab7370864299bcf4f42888851501f97ef06ce0d2bdd82b2bb3a89f6bea301d233f6d69bf9a4f8b453b54f654e7af9f828c41f017e219aee87320e7" );
  ( 2048,
    "cdaad240b7a06fed93814c4ceac3561a4ee41922bdba7afe7bd97c3928af7edd3d3e77fb6abd77ecef8cafc666d8d5e6b783f9ac8ec32436cbf4dea87ee6fa4c1eda0730b560e8a833317ebf12ec71e88c33229d46d2f68bc12eb0ae1f187d0eba786f6415804c4f475da58cae4c2fd80e2e96259054c969de6cd57ebdc2fa51",
    "f982155f77b3c1e5870acdbde19e38d89c6e7e99991e13505cc68b62f02d85115cb9806cab06cfecaf65a3a406c97e5291c42fdfc79f37c13d7d87fddbbf9a0a2352e41f84c5011e3c5554561035c86a5285056e3fa0e32d1bdf1fc28c484aefc503983c5dbc45655186a70f63feee623103d76fdf4dd103d9b5b8b437274963" );
  ( 3072,
    "ffb3ce17c4e1dccda7be6558b583a019d5b2f9d98ff197a4ea759f58120ca998257cda49faa9c154df23c3c95a95046cac409519321e1d1baf2e0a0521f4d9fbaa0ece7f055430ac37ad2322d25cc0913552aea0d55af65b60ba26313c5d4e8172a39a8409b1a4dae018e6048fe0c71df0cd04c4fb2612474fe84efd946d20ef508ab8ca85f4fa68725e6daaeb2604a312a023ee77b9029e32869a117981335c5c6e9598c0eca566001f9aa0a9edb266bdb3ca84014692a9db0a315cecd60daf",
    "c22aa9679adc269abb9ebd1f7ee2729e3c489ce1364574e558b276f967b5b45e1b90b293b28445b10c8fc01aea012a9360784e8ef106fde95a48061471b44a177670a426119436b93f71dd624d85a4b0a0499c775c3b909f40153683fe1076881a5f62cdafa70ba6d376069be948200c5fc9b4c5a057c91222f91a3850193f39222e2e9b1db4f91e5c394e9ad2f70db7e3a31cb99b494137add7dcf2e5d1cb0934f09058640a87d2855437e669338e9520db622a18c9e28826f4595a73e63107" );
  ( 4096,
    "cf73311306f4204811d9bdc1ec2d0d9a7a868db24d6a9cb617505c3878dfa1d9b25374b1a73f2219459cc8ad71c20426a25248336daf290867ce7e0ca575896b6574870cc6d955c610b5e10e389e81e5f80e21a23e3ae57c42af3bbc6ea77606f7136f9a0298c02d3e0024c6201cc243256c6a07316a47b59aba9e46e06db21f2084136157a1ca747e85910882d0857bd1ba122e88a4827c0abfba965d0a409ab64a1f69588e42583303ddf9fb4510df397d8eec0825c3ecaa5bb92329eb0a790b803058020ad3154afb582efc143189b4722edbf62c087000ac1cf86d480c6e2bb943311b238b01a7cab6c80a0fb012f51b39c8d05d8387f9a9fc3f01c0d967",
    "d01cae8b583dc4d63c4a73a5102c7f91851c5b91502d37322f9a3a2f4219645d9ab2084bf4db650b76e48443fe1d4b7cbcc4fa774b5dc4142a7d002af5c731155a499fb5d3049a1e7b307e2fb7162592a67d0c64fd60822166f000ae97ac616a97a55a7210d6d461cc6e43317df92b438405d821addb2036b00b2abf54232e2badaa1600bc9c1fbfa6c4b4275cc17544e8d698a91a9c0d87f53cd83a0caa0c5ba47fd3d453a709c14ffca389e87edbd1800b3c138560cd50da65edc4de851336c79d0feabc7cde1045de4e1f18edf73a689a72d801fbf26b551100e9a950a0e1a8e6bd037827493cba5358e6cc35ce6fec52c3c5f82c76b004edf7ef56e115e3" );
]

let find bits =
  match List.find_opt (fun (b, _, _) -> b = bits) primes with
  | None -> None
  | Some (_, p, q) -> Some (Bignum.of_hex p, Bignum.of_hex q)

let key_cache : (int, Rsa.priv) Hashtbl.t =
  Hashtbl.create 8
[@@lint.allow "S1" "every access goes through key_cache_lock below"]

(* the cache is shared across domains when campaigns run in parallel *)
let key_cache_lock = Mutex.create ()

(* Fixed keypair of [bits] modulus bits: embedded primes when available,
   otherwise generated from a fixed seed (slow path). *)
let fixed_key bits =
  Mutex.protect key_cache_lock (fun () ->
      match Hashtbl.find_opt key_cache bits with
      | Some k -> k
      | None ->
        let k =
          match find bits with
          | Some (p, q) -> Rsa.of_primes ~p ~q
          | None ->
            Rsa.gen
              (Drbg.create ~seed:(Printf.sprintf "rsa-fixed-%d" bits))
              ~bits
        in
        Hashtbl.add key_cache bits k;
        k)
