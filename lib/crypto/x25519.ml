(* RFC 7748 over the Bignum field arithmetic. Speed is irrelevant here
   (handshake timing is virtual), so the clear ladder wins over limb
   tricks. *)
[@@@lint.kernel
  "all buffers are fixed 32-byte keys allocated locally; unsafe_to_string covers bytes that never escape mutably"]


let key_size = 32

module B = Bignum

let p = B.sub (B.shift_left B.one 255) (B.of_int 19)
let a24 = B.of_int 121665

let base_point =
  let b = Bytes.make 32 '\000' in
  Bytes.set b 0 '\x09';
  Bytes.unsafe_to_string b
[@@lint.allow "S1" "frozen to an immutable string before escaping module \
                    init"]

let of_le s = B.of_bytes_be (String.init (String.length s) (fun i -> s.[String.length s - 1 - i]))

let to_le32 v =
  let be = B.to_bytes_be ~len:32 v in
  String.init 32 (fun i -> be.[31 - i])

let clamp scalar =
  let b = Bytes.of_string scalar in
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) land 248));
  Bytes.set b 31 (Char.chr (Char.code (Bytes.get b 31) land 127 lor 64));
  Bytes.unsafe_to_string b

let scalar_mult ~scalar ~point =
  if String.length scalar <> 32 || String.length point <> 32 then
    invalid_arg "X25519.scalar_mult: 32-byte inputs";
  let k = of_le (clamp scalar) in
  (* mask the unused high bit of the u-coordinate *)
  let u =
    let b = Bytes.of_string point in
    Bytes.set b 31 (Char.chr (Char.code (Bytes.get b 31) land 127));
    B.rem (of_le (Bytes.unsafe_to_string b)) p
  in
  let add a b = B.mod_add a b ~m:p
  and sub a b = B.mod_sub a b ~m:p
  and mul a b = B.mod_mul a b ~m:p in
  let x1 = u in
  let x2 = ref B.one and z2 = ref B.zero in
  let x3 = ref u and z3 = ref B.one in
  let swap = ref false in
  let cswap cond =
    if cond then begin
      let t = !x2 in
      x2 := !x3;
      x3 := t;
      let t = !z2 in
      z2 := !z3;
      z3 := t
    end
  in
  for t = 254 downto 0 do
    let kt = B.testbit k t in
    cswap (!swap <> kt);
    swap := kt;
    let a = add !x2 !z2 in
    let aa = mul a a in
    let b = sub !x2 !z2 in
    let bb = mul b b in
    let e = sub aa bb in
    let c = add !x3 !z3 in
    let d = sub !x3 !z3 in
    let da = mul d a in
    let cb = mul c b in
    let t1 = add da cb in
    x3 := mul t1 t1;
    let t2 = sub da cb in
    z3 := mul x1 (mul t2 t2);
    x2 := mul aa bb;
    z2 := mul e (add aa (mul a24 e))
  done;
  cswap !swap;
  let out = mul !x2 (B.mod_pow !z2 (B.sub p B.two) ~m:p) in
  to_le32 out

let public_of_secret scalar = scalar_mult ~scalar ~point:base_point
