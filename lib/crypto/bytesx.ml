[@@@lint.kernel
  "every loop bound is the length of the same string/bytes taken immediately before the loop; unsafe_to_string covers locally created buffers"]

let hex_digit = "0123456789abcdef"

let to_hex s =
  let n = String.length s in
  let b = Bytes.create (2 * n) in
  for i = 0 to n - 1 do
    let c = Char.code s.[i] in
    Bytes.set b (2 * i) hex_digit.[c lsr 4];
    Bytes.set b ((2 * i) + 1) hex_digit.[c land 0xf]
  done;
  Bytes.unsafe_to_string b

let of_hex h =
  let buf = Buffer.create (String.length h / 2) in
  let nib = ref (-1) in
  let value c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> invalid_arg "Bytesx.of_hex: bad character"
  in
  String.iter
    (fun c ->
      match c with
      | ' ' | '\t' | '\n' | '\r' -> ()
      | c ->
        let v = value c in
        if !nib < 0 then nib := v
        else begin
          Buffer.add_char buf (Char.chr ((!nib lsl 4) lor v));
          nib := -1
        end)
    h;
  if !nib >= 0 then invalid_arg "Bytesx.of_hex: odd number of digits";
  Buffer.contents buf

let xor a b =
  let n = String.length a in
  if String.length b <> n then invalid_arg "Bytesx.xor: length mismatch";
  String.init n (fun i -> Char.chr (Char.code a.[i] lxor Char.code b.[i]))

let equal_ct a b =
  let la = String.length a and lb = String.length b in
  let acc = ref (la lxor lb) in
  let n = min la lb in
  for i = 0 to n - 1 do
    acc := !acc lor (Char.code a.[i] lxor Char.code b.[i])
  done;
  !acc = 0

let byte s i = Char.code (String.unsafe_get s i)

let get_u32_be s off =
  (byte s off lsl 24)
  lor (byte s (off + 1) lsl 16)
  lor (byte s (off + 2) lsl 8)
  lor byte s (off + 3)

let get_u32_le s off =
  byte s off
  lor (byte s (off + 1) lsl 8)
  lor (byte s (off + 2) lsl 16)
  lor (byte s (off + 3) lsl 24)

let get_u64_be s off =
  let hi = get_u32_be s off and lo = get_u32_be s (off + 4) in
  Int64.logor (Int64.shift_left (Int64.of_int hi) 32) (Int64.of_int lo)

let get_u64_le s off =
  let lo = get_u32_le s off and hi = get_u32_le s (off + 4) in
  Int64.logor (Int64.shift_left (Int64.of_int hi) 32) (Int64.of_int lo)

let set_u32_be b off v =
  Bytes.set b off (Char.chr ((v lsr 24) land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (off + 2) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 3) (Char.chr (v land 0xff))

let set_u32_le b off v =
  Bytes.set b off (Char.chr (v land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 2) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (off + 3) (Char.chr ((v lsr 24) land 0xff))

let set_u64_be b off v =
  set_u32_be b off (Int64.to_int (Int64.shift_right_logical v 32) land 0xffffffff);
  set_u32_be b (off + 4) (Int64.to_int v land 0xffffffff)

let set_u64_le b off v =
  set_u32_le b off (Int64.to_int v land 0xffffffff);
  set_u32_le b (off + 4) (Int64.to_int (Int64.shift_right_logical v 32) land 0xffffffff)

let u16_be v =
  String.init 2 (fun i -> Char.chr ((v lsr (8 * (1 - i))) land 0xff))

let u24_be v =
  String.init 3 (fun i -> Char.chr ((v lsr (8 * (2 - i))) land 0xff))

let u32_be v =
  String.init 4 (fun i -> Char.chr ((v lsr (8 * (3 - i))) land 0xff))

let u64_be v =
  let b = Bytes.create 8 in
  set_u64_be b 0 v;
  Bytes.unsafe_to_string b

let concat = String.concat ""
let repeat c n = String.make n c
let sub = String.sub
