(* FIPS 197. The S-box is computed at start-up from the GF(2^8) inverse
   and affine map rather than pasted as a table; it is checked against
   the two well-known corner values. *)
[@@@lint.kernel
  "state and round-key arrays have fixed sizes from FIPS 197; all indices are constants or loop counters bounded by those sizes"]


let xtime b =
  let b = b lsl 1 in
  if b land 0x100 <> 0 then (b lxor 0x11b) land 0xff else b

let gf_mul a b =
  let acc = ref 0 and a = ref a and b = ref b in
  while !b <> 0 do
    if !b land 1 <> 0 then acc := !acc lxor !a;
    a := xtime !a;
    b := !b lsr 1
  done;
  !acc

let gf_inv a =
  if a = 0 then 0
  else begin
    (* a^254 by square-and-multiply *)
    let rec pow base e acc =
      if e = 0 then acc
      else
        pow (gf_mul base base) (e lsr 1)
          (if e land 1 = 1 then gf_mul acc base else acc)
    in
    pow a 254 1
  end

let sbox =
  let t = Array.make 256 0 in
  for i = 0 to 255 do
    let x = gf_inv i in
    let rot v n = ((v lsl n) lor (v lsr (8 - n))) land 0xff in
    t.(i) <- x lxor rot x 1 lxor rot x 2 lxor rot x 3 lxor rot x 4 lxor 0x63
  done;
  assert (t.(0) = 0x63 && t.(0x53) = 0xed);
  t
[@@lint.allow "S1" "init-once S-box table; computed at module init and \
                    never written again"]

let rcon = [| 0x01; 0x02; 0x04; 0x08; 0x10; 0x20; 0x40; 0x80; 0x1b; 0x36 |]

type key = { rounds : int; rk : int array (* round keys as 32-bit words *) }

let sub_word w =
  (sbox.((w lsr 24) land 0xff) lsl 24)
  lor (sbox.((w lsr 16) land 0xff) lsl 16)
  lor (sbox.((w lsr 8) land 0xff) lsl 8)
  lor sbox.(w land 0xff)

let rot_word w = ((w lsl 8) lor (w lsr 24)) land 0xffffffff

let expand_key k =
  let nk =
    match String.length k with
    | 16 -> 4
    | 24 -> 6
    | 32 -> 8
    | _ -> invalid_arg "Aes.expand_key: key must be 16/24/32 bytes"
  in
  let rounds = nk + 6 in
  let n = 4 * (rounds + 1) in
  let rk = Array.make n 0 in
  for i = 0 to nk - 1 do
    rk.(i) <- Bytesx.get_u32_be k (4 * i)
  done;
  for i = nk to n - 1 do
    let t = rk.(i - 1) in
    let t =
      if i mod nk = 0 then sub_word (rot_word t) lxor (rcon.((i / nk) - 1) lsl 24)
      else if nk > 6 && i mod nk = 4 then sub_word t
      else t
    in
    rk.(i) <- rk.(i - nk) lxor t
  done;
  { rounds; rk }

let encrypt_block { rounds; rk } block =
  if String.length block <> 16 then invalid_arg "Aes.encrypt_block";
  let s = Array.init 16 (fun i -> Char.code block.[i]) in
  let add_round_key r =
    for c = 0 to 3 do
      let w = rk.((4 * r) + c) in
      s.(4 * c) <- s.(4 * c) lxor ((w lsr 24) land 0xff);
      s.((4 * c) + 1) <- s.((4 * c) + 1) lxor ((w lsr 16) land 0xff);
      s.((4 * c) + 2) <- s.((4 * c) + 2) lxor ((w lsr 8) land 0xff);
      s.((4 * c) + 3) <- s.((4 * c) + 3) lxor (w land 0xff)
    done
  in
  let sub_bytes () =
    for i = 0 to 15 do
      s.(i) <- sbox.(s.(i))
    done
  in
  let shift_rows () =
    (* row r (bytes r, r+4, r+8, r+12) rotates left by r *)
    let t = Array.copy s in
    for r = 1 to 3 do
      for c = 0 to 3 do
        s.((4 * c) + r) <- t.((4 * ((c + r) mod 4)) + r)
      done
    done
  in
  let mix_columns () =
    for c = 0 to 3 do
      let a0 = s.(4 * c) and a1 = s.((4 * c) + 1) and a2 = s.((4 * c) + 2)
      and a3 = s.((4 * c) + 3) in
      s.(4 * c) <- xtime a0 lxor gf_mul a1 3 lxor a2 lxor a3;
      s.((4 * c) + 1) <- a0 lxor xtime a1 lxor gf_mul a2 3 lxor a3;
      s.((4 * c) + 2) <- a0 lxor a1 lxor xtime a2 lxor gf_mul a3 3;
      s.((4 * c) + 3) <- gf_mul a0 3 lxor a1 lxor a2 lxor xtime a3
    done
  in
  add_round_key 0;
  for r = 1 to rounds - 1 do
    sub_bytes ();
    shift_rows ();
    mix_columns ();
    add_round_key r
  done;
  sub_bytes ();
  shift_rows ();
  add_round_key rounds;
  String.init 16 (fun i -> Char.chr s.(i))

let ctr_keystream key ~nonce n =
  let nlen = String.length nonce in
  if nlen > 16 then invalid_arg "Aes.ctr_keystream: nonce too long";
  let block = Bytes.make 16 '\000' in
  Bytes.blit_string nonce 0 block 0 nlen;
  let buf = Buffer.create n in
  let ctr = ref 0 in
  while Buffer.length buf < n do
    (* write the counter into the low-order bytes after the nonce *)
    let v = ref !ctr in
    for i = 15 downto nlen do
      Bytes.set block i (Char.chr (!v land 0xff));
      v := !v lsr 8
    done;
    Buffer.add_string buf (encrypt_block key (Bytes.unsafe_to_string block));
    incr ctr
  done;
  String.sub (Buffer.contents buf) 0 n

let ctr_encrypt key ~nonce msg =
  Bytesx.xor msg (ctr_keystream key ~nonce (String.length msg))
