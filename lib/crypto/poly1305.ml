(* RFC 8439 Poly1305 in 5 x 26-bit limbs; all arithmetic fits native int
   on 64-bit platforms (products bounded by 2^58). *)
[@@@lint.kernel
  "limb arrays are fixed size 5 and block reads are guarded by the 16-byte chunking loop; unsafe_to_string covers the locally built tag"]


let m26 = 0x3ffffff

let mac ~key msg =
  if String.length key <> 32 then invalid_arg "Poly1305.mac: 32-byte key";
  (* clamped r *)
  let t0 = Bytesx.get_u32_le key 0
  and t1 = Bytesx.get_u32_le key 4
  and t2 = Bytesx.get_u32_le key 8
  and t3 = Bytesx.get_u32_le key 12 in
  let r0 = t0 land 0x3ffffff in
  let r1 = ((t0 lsr 26) lor (t1 lsl 6)) land 0x3ffff03 in
  let r2 = ((t1 lsr 20) lor (t2 lsl 12)) land 0x3ffc0ff in
  let r3 = ((t2 lsr 14) lor (t3 lsl 18)) land 0x3f03fff in
  let r4 = (t3 lsr 8) land 0x00fffff in
  let s1 = r1 * 5 and s2 = r2 * 5 and s3 = r3 * 5 and s4 = r4 * 5 in
  let h0 = ref 0 and h1 = ref 0 and h2 = ref 0 and h3 = ref 0 and h4 = ref 0 in
  let n = String.length msg in
  let pos = ref 0 in
  while !pos < n do
    let take = min 16 (n - !pos) in
    let blk = Bytes.make 17 '\000' in
    Bytes.blit_string msg !pos blk 0 take;
    Bytes.set blk take '\001';
    let blk = Bytes.unsafe_to_string blk in
    let b0 = Bytesx.get_u32_le blk 0
    and b1 = Bytesx.get_u32_le blk 4
    and b2 = Bytesx.get_u32_le blk 8
    and b3 = Bytesx.get_u32_le blk 12
    and b4 = Char.code blk.[16] in
    h0 := !h0 + (b0 land 0x3ffffff);
    h1 := !h1 + (((b0 lsr 26) lor (b1 lsl 6)) land 0x3ffffff);
    h2 := !h2 + (((b1 lsr 20) lor (b2 lsl 12)) land 0x3ffffff);
    h3 := !h3 + (((b2 lsr 14) lor (b3 lsl 18)) land 0x3ffffff);
    h4 := !h4 + ((b3 lsr 8) lor (b4 lsl 24));
    (* h *= r mod 2^130 - 5 *)
    let d0 =
      (!h0 * r0) + (!h1 * s4) + (!h2 * s3) + (!h3 * s2) + (!h4 * s1)
    and d1 =
      (!h0 * r1) + (!h1 * r0) + (!h2 * s4) + (!h3 * s3) + (!h4 * s2)
    and d2 =
      (!h0 * r2) + (!h1 * r1) + (!h2 * r0) + (!h3 * s4) + (!h4 * s3)
    and d3 =
      (!h0 * r3) + (!h1 * r2) + (!h2 * r1) + (!h3 * r0) + (!h4 * s4)
    and d4 =
      (!h0 * r4) + (!h1 * r3) + (!h2 * r2) + (!h3 * r1) + (!h4 * r0)
    in
    let c = d0 lsr 26 in
    h0 := d0 land m26;
    let d1 = d1 + c in
    let c = d1 lsr 26 in
    h1 := d1 land m26;
    let d2 = d2 + c in
    let c = d2 lsr 26 in
    h2 := d2 land m26;
    let d3 = d3 + c in
    let c = d3 lsr 26 in
    h3 := d3 land m26;
    let d4 = d4 + c in
    let c = d4 lsr 26 in
    h4 := d4 land m26;
    h0 := !h0 + (c * 5);
    let c = !h0 lsr 26 in
    h0 := !h0 land m26;
    h1 := !h1 + c;
    pos := !pos + take
  done;
  (* full reduction *)
  let c = !h1 lsr 26 in
  h1 := !h1 land m26;
  h2 := !h2 + c;
  let c = !h2 lsr 26 in
  h2 := !h2 land m26;
  h3 := !h3 + c;
  let c = !h3 lsr 26 in
  h3 := !h3 land m26;
  h4 := !h4 + c;
  let c = !h4 lsr 26 in
  h4 := !h4 land m26;
  h0 := !h0 + (c * 5);
  let c = !h0 lsr 26 in
  h0 := !h0 land m26;
  h1 := !h1 + c;
  (* compute h - p by adding 5 and checking bit 130 *)
  let g0 = !h0 + 5 in
  let c = g0 lsr 26 in
  let g0 = g0 land m26 in
  let g1 = !h1 + c in
  let c = g1 lsr 26 in
  let g1 = g1 land m26 in
  let g2 = !h2 + c in
  let c = g2 lsr 26 in
  let g2 = g2 land m26 in
  let g3 = !h3 + c in
  let c = g3 lsr 26 in
  let g3 = g3 land m26 in
  let g4 = !h4 + c - (1 lsl 26) in
  if g4 >= 0 then begin
    h0 := g0;
    h1 := g1;
    h2 := g2;
    h3 := g3;
    h4 := g4
  end;
  (* h += s mod 2^128, then serialize little-endian *)
  let f0 = !h0 lor (!h1 lsl 26) in
  let f0 = f0 land 0xffffffff in
  let f1 = ((!h1 lsr 6) lor (!h2 lsl 20)) land 0xffffffff in
  let f2 = ((!h2 lsr 12) lor (!h3 lsl 14)) land 0xffffffff in
  let f3 = ((!h3 lsr 18) lor (!h4 lsl 8)) land 0xffffffff in
  let s0 = Bytesx.get_u32_le key 16
  and s1' = Bytesx.get_u32_le key 20
  and s2' = Bytesx.get_u32_le key 24
  and s3' = Bytesx.get_u32_le key 28 in
  let f0 = f0 + s0 in
  let f1 = f1 + s1' + (f0 lsr 32) in
  let f2 = f2 + s2' + (f1 lsr 32) in
  let f3 = f3 + s3' + (f2 lsr 32) in
  let out = Bytes.create 16 in
  Bytesx.set_u32_le out 0 (f0 land 0xffffffff);
  Bytesx.set_u32_le out 4 (f1 land 0xffffffff);
  Bytesx.set_u32_le out 8 (f2 land 0xffffffff);
  Bytesx.set_u32_le out 12 (f3 land 0xffffffff);
  Bytes.unsafe_to_string out
