(* The single D1 quarantine site: the raw wall-clock primitive appears
   exactly once in the tree, here, annotated. Everything else reads host
   time through this module, and the linter keeps the simulation layers
   from calling even that (see rule_wallclock.ml). *)

let now_s () =
  (Unix.gettimeofday () [@lint.allow "D1" "the one quarantined wall-clock \
                                           read; volatile telemetry and \
                                           profiling only, never part of \
                                           a deterministic artifact"])

let elapsed_s t0 = now_s () -. t0

let time_ms f =
  let t0 = now_s () in
  f ();
  (now_s () -. t0) *. 1000.
