(* The campaign execution context: how many domains, which result
   cache, and whether to narrate progress. Report/Deviation/Whitebox/
   Amplification build their grids as [Experiment.spec] lists and hand
   them here; formatting stays sequential and cheap. *)

type t = {
  jobs : int;
  cache : Result_cache.t option;
  progress : bool;
}

let default_jobs = Pool.default_jobs

let sequential = { jobs = 1; cache = None; progress = false }

let create ?jobs ?cache_dir ?(progress = false) () =
  { jobs = (match jobs with Some j -> max 1 j | None -> default_jobs ());
    cache = Option.map (fun dir -> Result_cache.create ~dir) cache_dir;
    progress }

let cells t specs =
  let run spec =
    match t.cache with
    | None -> (Experiment.run_spec spec, `Miss)
    | Some c -> Result_cache.find_or_run c spec (fun () -> Experiment.run_spec spec)
  in
  let on_done =
    if not t.progress then None
    else
      Some
        (fun ~index:_ ~completed ~total spec (_, status) elapsed ->
          Printf.eprintf "  [%*d/%d] %-45s %6.2fs%s\n%!"
            (String.length (string_of_int total))
            completed total
            (Experiment.spec_label spec)
            elapsed
            (match status with `Hit -> "  (cached)" | `Miss -> ""))
  in
  List.map fst (Pool.map ~jobs:t.jobs ?on_done run specs)

let cell t spec =
  match cells t [ spec ] with
  | [ o ] -> o
  | _ -> assert false

let cache_summary t =
  Option.map
    (fun c ->
      Printf.sprintf "cache: %d cells reused, %d executed"
        (Result_cache.hits c) (Result_cache.misses c))
    t.cache
