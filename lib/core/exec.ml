(* The campaign execution context: how many domains, which result
   cache, retry budget, and whether to narrate progress.
   Report/Deviation/Whitebox/Amplification build their grids as
   [Experiment.spec] lists and hand them here; formatting stays
   sequential and cheap.

   Execution is fault-tolerant: a cell that raises is retried up to
   [retries] times with a deterministically derived per-attempt seed,
   and an exhausted budget yields [Error] instead of killing the
   campaign — renderers mark the cell and every completed neighbour
   survives. Failures are never written to the result cache. *)

type cell_error = {
  ce_message : string;
  ce_backtrace : string;
  ce_attempts : int;
  ce_elapsed_s : float;
}

type cell_result = (Experiment.outcome, cell_error) result

type counters = {
  c_ok : int Atomic.t;
  c_retried : int Atomic.t;
  c_failed : int Atomic.t;
  c_started : float;
}

type t = {
  jobs : int;
  cache : Result_cache.t option;
  progress : bool;
  retries : int;
  fail_cell : string option;
  counters : counters;
  trace : Trace.Store.t option;
  metrics : Metrics.t;
}

let default_jobs = Pool.default_jobs

let fresh_counters () =
  { c_ok = Atomic.make 0;
    c_retried = Atomic.make 0;
    c_failed = Atomic.make 0;
    c_started = Clock.now_s () }

let sequential =
  { jobs = 1; cache = None; progress = false; retries = 1; fail_cell = None;
    counters = fresh_counters (); trace = None; metrics = Metrics.create () }

let create ?jobs ?cache_dir ?(progress = false) ?(retries = 1) ?fail_cell
    ?trace () =
  Printexc.record_backtrace true;
  { jobs = (match jobs with Some j -> max 1 j | None -> default_jobs ());
    cache = Option.map (fun dir -> Result_cache.create ~dir) cache_dir;
    progress;
    retries = max 0 retries;
    fail_cell =
      (match fail_cell with
      | Some _ -> fail_cell
      | None -> Sys.getenv_opt "PQTLS_FAIL_CELL");
    counters = fresh_counters ();
    trace;
    metrics = Metrics.create () }

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

(* attempt 0 runs the spec verbatim (cache keys and historical outputs
   are unchanged); attempt [k > 0] reseeds the cell's DRBG through the
   seed string, so retry results depend only on the spec and the attempt
   number — never on scheduling or [jobs] *)
let attempt_spec spec k =
  if k = 0 then spec
  else
    { spec with
      Experiment.sp_seed =
        Printf.sprintf "%s#retry%d" spec.Experiment.sp_seed k }

let run_cell ?trace t spec =
  (* volatile telemetry only (ce_elapsed_s, cell_wall_s): host time never
     reaches a deterministic artifact, see Clock *)
  let t0 = Clock.now_s () in
  let rec attempt k =
    (* a retried attempt restarts the cell from scratch, so its trace
       does too — only the completing attempt's events survive *)
    (match trace with Some b -> Trace.Buf.clear b | None -> ());
    match
      (match t.fail_cell with
      | Some needle when contains ~needle (Experiment.spec_label spec) ->
        failwith ("injected failure for " ^ Experiment.spec_label spec)
      | _ -> ());
      Experiment.run_spec ?trace (attempt_spec spec k)
    with
    | o ->
      Atomic.incr t.counters.c_ok;
      if k > 0 then Atomic.incr t.counters.c_retried;
      Ok o
    | exception e ->
      let bt = Printexc.get_backtrace () in
      if k < t.retries then attempt (k + 1)
      else begin
        Atomic.incr t.counters.c_failed;
        Error
          { ce_message = Printexc.to_string e;
            ce_backtrace = bt;
            ce_attempts = k + 1;
            ce_elapsed_s = Clock.elapsed_s t0 }
      end
  in
  attempt 0

let cells t specs =
  (* one buffer per cell, allocated in spec order before the fan-out and
     merged into the store in that same order afterwards, so the trace is
     bit-identical whatever [jobs]. A cell served from the cache keeps
     its (empty, labelled) buffer: cache hits execute nothing. *)
  let bufs =
    match t.trace with
    | None -> List.map (fun _ -> None) specs
    | Some _ ->
      List.map
        (fun sp ->
          Some (Trace.Buf.create ~label:(Experiment.spec_label sp) ()))
        specs
  in
  let run (spec, trace) =
    let t0 = Clock.now_s () in
    let result =
      match t.cache with
      | None -> (run_cell ?trace t spec, `Miss)
      | Some c -> (
        let k = Result_cache.key c spec in
        match Result_cache.find c k with
        | Some o ->
          Atomic.incr t.counters.c_ok;
          (Ok o, `Hit)
        | None ->
          let r = run_cell ?trace t spec in
          (* failures are never cached: the next run re-executes the cell
             instead of replaying the error *)
          (match r with Ok o -> Result_cache.store c k o | Error _ -> ());
          (r, `Miss))
    in
    (* self-telemetry: volatile (host wall clock, scheduling-dependent),
       so it feeds the registry and the stderr health summary only —
       never the deterministic artifact *)
    Metrics.observe t.metrics "cell_wall_s" (Clock.elapsed_s t0);
    Metrics.incr t.metrics
      (match snd result with
      | `Hit -> "cells_from_cache"
      | `Miss -> "cells_executed");
    result
  in
  let on_done =
    if not t.progress then None
    else
      Some
        (fun ~index:_ ~completed ~total (spec, _) (r, status) elapsed ->
          let note =
            match (r, status) with
            | Ok _, `Hit -> "  (cached)"
            | Ok _, `Miss -> ""
            | Error e, _ ->
              Printf.sprintf "  FAILED after %d attempt%s: %s" e.ce_attempts
                (if e.ce_attempts = 1 then "" else "s")
                e.ce_message
          in
          Printf.eprintf "  [%*d/%d] %-45s %6.2fs%s\n%!"
            (String.length (string_of_int total))
            completed total
            (Experiment.spec_label spec)
            elapsed note)
  in
  let results =
    Pool.map ~jobs:t.jobs ?on_done run (List.combine specs bufs)
  in
  (match t.trace with
  | None -> ()
  | Some store ->
    List.iter
      (function Some b -> Trace.Store.add store b | None -> ())
      bufs);
  (* record cell summaries in spec order from this (coordinating)
     domain, mirroring the trace-buffer merge above: the artifact's cell
     order is a function of the grids alone, never of [jobs] *)
  List.iter2
    (fun spec (r, _status) ->
      Metrics.record_cell t.metrics spec
        (Result.map_error (fun e -> e.ce_message) r))
    specs results;
  List.map fst results

let cell t spec =
  match cells t [ spec ] with
  | [ r ] -> r
  | _ -> assert false

(* ---- farm cells ---------------------------------------------------------- *)

type farm_cell_result = (Experiment.farm_outcome, cell_error) result

let attempt_farm_spec spec k =
  if k = 0 then spec
  else
    { spec with
      Experiment.fa_seed =
        Printf.sprintf "%s#retry%d" spec.Experiment.fa_seed k }

let run_farm_cell t spec =
  let t0 = Clock.now_s () in
  let rec attempt k =
    match
      (match t.fail_cell with
      | Some needle when contains ~needle (Experiment.farm_spec_label spec) ->
        failwith
          ("injected failure for " ^ Experiment.farm_spec_label spec)
      | _ -> ());
      Experiment.run_farm_spec (attempt_farm_spec spec k)
    with
    | o ->
      Atomic.incr t.counters.c_ok;
      if k > 0 then Atomic.incr t.counters.c_retried;
      Ok o
    | exception e ->
      let bt = Printexc.get_backtrace () in
      if k < t.retries then attempt (k + 1)
      else begin
        Atomic.incr t.counters.c_failed;
        Error
          { ce_message = Printexc.to_string e;
            ce_backtrace = bt;
            ce_attempts = k + 1;
            ce_elapsed_s = Clock.elapsed_s t0 }
      end
  in
  attempt 0

(* the farm counterpart of [cells]: same cache / retry / fail-injection
   / metrics-in-spec-order contract. Farm cells are not traced — one
   cell spans thousands of handshakes, so a per-cell event buffer would
   dwarf the trace store; the single-pair cells cover tracing needs. *)
let farm_cells t specs =
  let run spec =
    let t0 = Clock.now_s () in
    let result =
      match t.cache with
      | None -> (run_farm_cell t spec, `Miss)
      | Some c -> (
        let k = Result_cache.farm_key c spec in
        match Result_cache.find_farm c k with
        | Some o ->
          Atomic.incr t.counters.c_ok;
          (Ok o, `Hit)
        | None ->
          let r = run_farm_cell t spec in
          (match r with
          | Ok o -> Result_cache.store_farm c k o
          | Error _ -> ());
          (r, `Miss))
    in
    Metrics.observe t.metrics "cell_wall_s" (Clock.elapsed_s t0);
    Metrics.incr t.metrics
      (match snd result with
      | `Hit -> "cells_from_cache"
      | `Miss -> "cells_executed");
    result
  in
  let on_done =
    if not t.progress then None
    else
      Some
        (fun ~index:_ ~completed ~total spec (r, status) elapsed ->
          let note =
            match (r, status) with
            | Ok _, `Hit -> "  (cached)"
            | Ok _, `Miss -> ""
            | Error e, _ ->
              Printf.sprintf "  FAILED after %d attempt%s: %s" e.ce_attempts
                (if e.ce_attempts = 1 then "" else "s")
                e.ce_message
          in
          Printf.eprintf "  [%*d/%d] %-45s %6.2fs%s\n%!"
            (String.length (string_of_int total))
            completed total
            (Experiment.farm_spec_label spec)
            elapsed note)
  in
  let results = Pool.map ~jobs:t.jobs ?on_done run specs in
  List.iter2
    (fun spec (r, _status) ->
      Metrics.record_farm_cell t.metrics spec
        (Result.map_error (fun e -> e.ce_message) r))
    specs results;
  List.map fst results

let ok_count t = Atomic.get t.counters.c_ok
let retried_count t = Atomic.get t.counters.c_retried
let failed_count t = Atomic.get t.counters.c_failed

let cache_summary t =
  Option.map
    (fun c ->
      Printf.sprintf "cache: %d cells reused, %d executed"
        (Result_cache.hits c) (Result_cache.misses c))
    t.cache

let health_summary t =
  let walls = Metrics.observations t.metrics "cell_wall_s" in
  let total_wall = List.fold_left ( +. ) 0. walls in
  let max_wall = List.fold_left Float.max 0. walls in
  Printf.sprintf
    "campaign health: %d cells ok (%d retried), %d failed%s; wall %.1f s; \
     cells: %d fresh, %d cached; cell wall %.1f s total, %.1f s max"
    (ok_count t) (retried_count t) (failed_count t)
    (match cache_summary t with None -> "" | Some line -> "; " ^ line)
    (Clock.elapsed_s t.counters.c_started)
    (Metrics.counter t.metrics "cells_executed")
    (Metrics.counter t.metrics "cells_from_cache")
    total_wall max_wall
