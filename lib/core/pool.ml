(* A small work-stealing pool over OCaml 5 domains, sized for campaign
   grids: tasks are coarse (one task = one 60-virtual-second experiment,
   milliseconds to seconds of host time), so every queue operation can
   afford a mutex and the scheduler can stay simple and obviously
   correct.

   Each worker owns a deque seeded round-robin; it pops from the front
   of its own deque and, when empty, steals from the *back* of the
   busiest other deque, which preserves locality of the initial shard
   and balances stragglers. The caller's domain participates as worker
   0, so [jobs = n] uses exactly [n] domains in total.

   A raising task abandons the rest of the map and re-raises in the
   caller — a backstop only: campaign cells are wrapped into [result]
   values by [Exec] before they get here, so a failing cell degrades
   one grid entry instead of killing the whole campaign. *)

let default_jobs () = max 1 (Domain.recommended_domain_count ())

type deque = { lock : Mutex.t; mutable tasks : int list }

let pop_front d =
  Mutex.protect d.lock (fun () ->
      match d.tasks with
      | [] -> None
      | i :: rest ->
        d.tasks <- rest;
        Some i)

let steal_back d =
  Mutex.protect d.lock (fun () ->
      match List.rev d.tasks with
      | [] -> None
      | i :: rest ->
        d.tasks <- List.rev rest;
        Some i)

let length d = Mutex.protect d.lock (fun () -> List.length d.tasks)

let map ?jobs ?on_done f inputs =
  let inputs = Array.of_list inputs in
  let n = Array.length inputs in
  let jobs =
    match jobs with Some j -> max 1 j | None -> default_jobs ()
  in
  let progress = Mutex.create () in
  let completed = ref 0 in
  let finish i result elapsed =
    (match on_done with
    | None -> ()
    | Some g ->
      Mutex.protect progress (fun () ->
          incr completed;
          g ~index:i ~completed:!completed ~total:n inputs.(i) result elapsed));
    result
  in
  let timed i =
    (* per-task elapsed time for the progress callback; display only *)
    let t0 = Clock.now_s () in
    let r = f inputs.(i) in
    finish i r (Clock.elapsed_s t0)
  in
  if jobs = 1 || n <= 1 then Array.to_list (Array.init n timed)
  else begin
    let workers = min jobs n in
    let results = Array.make n None in
    let remaining = Atomic.make n in
    let failure = Atomic.make None in
    let deques =
      Array.init workers (fun _ -> { lock = Mutex.create (); tasks = [] })
    in
    for i = n - 1 downto 0 do
      let d = deques.(i mod workers) in
      d.tasks <- i :: d.tasks
    done;
    let try_steal me =
      let victim = ref None and best = ref 0 in
      Array.iteri
        (fun w d ->
          if w <> me then begin
            let l = length d in
            if l > !best then begin
              best := l;
              victim := Some d
            end
          end)
        deques;
      Option.bind !victim steal_back
    in
    let exec i =
      (try results.(i) <- Some (timed i)
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         ignore (Atomic.compare_and_set failure None (Some (e, bt))));
      Atomic.decr remaining
    in
    let rec worker me =
      if Atomic.get failure = None then
        match pop_front deques.(me) with
        | Some i ->
          exec i;
          worker me
        | None -> (
          match try_steal me with
          | Some i ->
            exec i;
            worker me
          | None ->
            (* nothing queued; other workers may still push nothing new,
               so just wait for in-flight tasks to drain *)
            if Atomic.get remaining > 0 then begin
              Domain.cpu_relax ();
              worker me
            end)
    in
    let domains =
      List.init (workers - 1) (fun k -> Domain.spawn (fun () -> worker (k + 1)))
    in
    worker 0;
    List.iter Domain.join domains;
    (match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.to_list
      (Array.map
         (function
           | Some r -> r
           | None -> invalid_arg "Pool.map: unfinished task")
         results)
  end
