(** Disk memoization of {!Experiment.outcome}s, keyed by a SHA-256 of
    [(spec fingerprint, executable fingerprint)] — re-running a campaign
    with the same binary, seed and parameters reloads every cell from
    disk; changing any of them (including rebuilding the code) misses.

    Entries are written atomically (temp file + rename), so one cache
    directory can safely be shared by parallel domains and by separate
    processes. Corrupt entries read as misses.

    Only completed outcomes are ever stored: {!Exec} calls {!store}
    exclusively on success, so a failed cell is re-executed — never
    replayed — on the next run. *)

type t

val create : dir:string -> t
(** Creates [dir] (and parents) if needed and fingerprints the running
    executable. *)

val key : t -> Experiment.spec -> string
(** Hex cache key of a cell under this cache's code fingerprint. *)

val find : t -> string -> Experiment.outcome option
(** Lookup by {!key}; counts a hit or a miss. *)

val store : t -> string -> Experiment.outcome -> unit

val farm_key : t -> Experiment.farm_spec -> string
(** Cache key of a farm cell. Farm entries live in the same directory
    but under their own magic and [.farm] extension — the Marshal
    payloads of the two outcome types are mutually unreadable. *)

val find_farm : t -> string -> Experiment.farm_outcome option
val store_farm : t -> string -> Experiment.farm_outcome -> unit

val find_or_run :
  t -> Experiment.spec -> (unit -> Experiment.outcome) ->
  Experiment.outcome * [ `Hit | `Miss ]
(** The memoized entry point: runs [f] and stores its result only on a
    miss. *)

val hits : t -> int
(** Lookups served from disk since [create]. *)

val misses : t -> int
(** Lookups that had to execute since [create]. *)
