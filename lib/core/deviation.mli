(** The KA/SA-independence analysis of section 5.2 / Figure 3.

    If KA and SA contributed latency independently, the handshake latency
    of any pair would be predicted by
    [E(k,s) = M(k, rsa2048) + M(x25519, s) - M(x25519, rsa2048)].
    This module measures every same-level (non-hybrid) combination and
    reports the deviation [E - M]: positive means faster than predicted. *)

type cell = {
  kem : string;
  sa : string;
  measured_ms : float;  (** median full-handshake latency *)
  expected_ms : float;
  deviation_ms : float;  (** expected - measured *)
}

type grid = {
  level : int;
  buffering : Tls.Config.buffering;
  cells : cell list;
  failed : (string * string) list;
      (** KA x SA combinations with no deviation value because the
          pair's own cell, one of its marginals, or the baseline failed
          (after retries); renderers mark these instead of aborting. *)
}

val analyze :
  ?buffering:Tls.Config.buffering -> ?seed:string -> ?exec:Exec.t -> int -> grid
(** [analyze level] runs the full level-group campaign (the paper's
    [level1]/[level3]/[level5] experiments; [level1-nopush] etc. with
    [~buffering:Default_buffered]). Each distinct KA x SA pair is
    measured exactly once, through [exec] (default sequential). *)

val improvement : optimized:grid -> default:grid -> (string * string * float) list
(** Figure 3c: per-combination latency gain of the optimized push,
    [default_measured - optimized_measured] in ms. *)
