(** The signature-placement study (Table 7): per-{!Tls.Chain_profile}
    full-chain wire size, verification CPU, handshake-time medians under
    the paper's deterministic scenarios, and the flights-to-deliver
    column showing the chain-size x initcwnd cliff. *)

val flights_to_deliver : tcp:Netsim.Tcp.config -> int -> int
(** Smallest number of slow-start flights that delivers [bytes]:
    flight [n] carries [init_cwnd * 2^(n-1)] full segments, so this is
    the least [n] with [mss * init_cwnd * (2^n - 1) >= bytes]. 0 for
    empty payloads. *)

val chain_stats :
  profile:Tls.Chain_profile.t -> string -> Tls.Chain.level_stat list
(** Per-level breakdown of exactly the (cached, mocked) credentials the
    campaign cells serve for this SA name, without running a cell. *)

val table7_grid :
  seed:string ->
  exec:Exec.t ->
  pairs:(string * string) list ->
  profiles:Tls.Chain_profile.t list ->
  max_samples:int ->
  string

val table7 : ?seed:string -> ?exec:Exec.t -> unit -> string
(** Three anchor pairs x every chain profile x (none, delay): the main
    placement table plus the per-level breakdown. *)

val table7_smoke : ?seed:string -> ?exec:Exec.t -> unit -> string
(** The blocking CI gate's campaign: two pairs, three shapes, ten
    samples. *)
