(* Real-time profiling of the pure-OCaml substrates. Two deliberate
   design points:

   - Iteration counts come from a static, hand-written cost-estimate
     table, NOT from a calibration run: the estimates are coarse (they
     were eyeballed from one machine) but they are code constants, so
     the sampling plan — and with it the artifact's entire shape — is a
     pure function of the registries, identical on every machine and
     across [--jobs].

   - The only wall-clock reads go through {!Clock}; everything measured
     here is explicitly volatile and never feeds back into a campaign
     outcome. *)

type group = Ka | Sa | Kernel

let group_name = function Ka -> "ka" | Sa -> "sa" | Kernel -> "kernel"

type op = {
  op_name : string;
  op_group : group;
  op_alg : string;
  op_kind : string;
  op_samples : int;
  op_batch : int;
  op_warmup : int;
  op_prepare : unit -> unit -> unit;
}

(* --- the sampling plan ------------------------------------------- *)

let budget_ms = 2.0

(* Rough pure-OCaml per-op milliseconds for one component algorithm.
   Encapsulation doubles EC work (ephemeral keygen + shared secret) and
   verification doubles ECDSA work (two scalar muls), hence the [ev]
   split. Only the order of magnitude matters: it picks batch sizes. *)
let component_est ~kind name =
  let ev = kind = "encaps" || kind = "verify" in
  match name with
  | "x25519" -> 0.05
  | "p256" -> if ev then 50. else 25.
  | "p384" -> if ev then 140. else 70.
  | "p521" -> if ev then 300. else 150.
  | "kyber512" | "kyber768" | "kyber1024" -> 0.6
  | "kyber90s512" -> 60.
  | "kyber90s768" -> 110.
  | "kyber90s1024" -> 200.
  | "bikel1" | "bikel3" | "hqc128" | "hqc192" | "hqc256" -> 1.5
  | "falcon512" | "falcon1024" -> 0.3
  | "dilithium2" | "dilithium3" | "dilithium5" -> 2.5
  | "dilithium2_aes" -> 520.
  | "dilithium3_aes" -> 1000.
  | "dilithium5_aes" -> 1800.
  | "sphincs128" ->
      if kind = "sign" then 1100. else if kind = "verify" then 40. else 30.
  | "sphincs192" ->
      if kind = "sign" then 1550. else if kind = "verify" then 55. else 35.
  | "sphincs256" ->
      if kind = "sign" then 3300. else if kind = "verify" then 50. else 125.
  | "rsa:1024" ->
      if kind = "sign" then 8. else if kind = "verify" then 0.5 else 0.1
  | "rsa:2048" ->
      if kind = "sign" then 55. else if kind = "verify" then 1.5 else 0.1
  | "rsa:3072" | "rsa3072" ->
      if kind = "sign" then 170. else if kind = "verify" then 3. else 0.1
  | "rsa:4096" ->
      if kind = "sign" then 370. else if kind = "verify" then 5. else 0.1
  | "keccak-f1600" -> 0.002
  | "kyber-ntt" | "dilithium-ntt" | "sha256-1k" -> 0.01
  | "hkdf-sha256" -> 0.02
  | _ -> 1.

(* Hybrids run both components, so their estimate is the sum; the split
   must honour the [hybrid] flag — [dilithium2_aes] contains '_' without
   being one. *)
let est ~kind ~hybrid name =
  if hybrid then
    match String.index_opt name '_' with
    | Some i ->
        component_est ~kind (String.sub name 0 i)
        +. component_est ~kind
             (String.sub name (i + 1) (String.length name - i - 1))
    | None -> component_est ~kind name
  else component_est ~kind name

let plan ~kind ~hybrid name =
  let e = est ~kind ~hybrid name in
  let batch =
    if e <= 0. then 256
    else max 1 (min 256 (int_of_float (ceil (budget_ms /. e))))
  in
  let samples = if e >= 50. then 3 else 5 in
  let warmup = if e >= 50. then 1 else 2 in
  (samples, batch, warmup)

(* --- the registry ------------------------------------------------- *)

let make_op ~group ~alg ~kind ~hybrid prepare =
  let samples, batch, warmup = plan ~kind ~hybrid alg in
  let name =
    match group with Kernel -> "kernel " ^ alg | Ka | Sa -> kind ^ " " ^ alg
  in
  { op_name = name;
    op_group = group;
    op_alg = alg;
    op_kind = kind;
    op_samples = samples;
    op_batch = batch;
    op_warmup = warmup;
    op_prepare = prepare }

let ka_ops (k : Pqc.Kem.t) =
  let rng kind = Crypto.Drbg.create ~seed:("profile/ka/" ^ kind ^ "/" ^ k.name) in
  [ make_op ~group:Ka ~alg:k.name ~kind:"keygen" ~hybrid:k.hybrid (fun () ->
        let rng = rng "keygen" in
        fun () -> ignore (k.keygen rng : Pqc.Kem.keypair));
    make_op ~group:Ka ~alg:k.name ~kind:"encaps" ~hybrid:k.hybrid (fun () ->
        let rng = rng "encaps" in
        let kp = k.keygen rng in
        fun () -> ignore (k.encaps rng kp.public : string * string));
    make_op ~group:Ka ~alg:k.name ~kind:"decaps" ~hybrid:k.hybrid (fun () ->
        let rng = rng "decaps" in
        let kp = k.keygen rng in
        let ct, _ = k.encaps rng kp.public in
        fun () -> ignore (k.decaps kp.secret ct : string)) ]

let sa_ops (s : Pqc.Sigalg.t) =
  let rng kind = Crypto.Drbg.create ~seed:("profile/sa/" ^ kind ^ "/" ^ s.name) in
  (* a CertificateVerify-sized message: 64-byte transcript-hash block *)
  let msg rng = Crypto.Drbg.generate rng 64 in
  [ make_op ~group:Sa ~alg:s.name ~kind:"keygen" ~hybrid:s.hybrid (fun () ->
        let rng = rng "keygen" in
        fun () -> ignore (s.keygen rng : Pqc.Sigalg.keypair));
    make_op ~group:Sa ~alg:s.name ~kind:"sign" ~hybrid:s.hybrid (fun () ->
        let rng = rng "sign" in
        let kp = s.keygen rng in
        let m = msg rng in
        fun () -> ignore (s.sign rng ~secret:kp.secret m : string));
    make_op ~group:Sa ~alg:s.name ~kind:"verify" ~hybrid:s.hybrid (fun () ->
        let rng = rng "verify" in
        let kp = s.keygen rng in
        let m = msg rng in
        let sg = s.sign rng ~secret:kp.secret m in
        fun () -> ignore (s.verify ~public:kp.public ~msg:m sg : bool)) ]

let kernel_ops () =
  let kernel alg prepare = make_op ~group:Kernel ~alg ~kind:"kernel" ~hybrid:false prepare in
  [ kernel "keccak-f1600" (fun () -> Crypto.Keccak.bench_permutation ());
    kernel "kyber-ntt" (fun () -> Pqc.Kyber.bench_ntt ());
    kernel "dilithium-ntt" (fun () -> Pqc.Dilithium.bench_ntt ());
    kernel "hkdf-sha256" (fun () ->
        let salt = String.make 32 '\007' and ikm = String.make 32 '\042' in
        fun () ->
          let prk = Crypto.Hkdf.extract Crypto.Hmac.sha256 ~salt ~ikm in
          ignore (Crypto.Hkdf.expand Crypto.Hmac.sha256 ~prk ~info:"profile" 32
                  : string));
    kernel "sha256-1k" (fun () ->
        let m = String.init 1024 (fun i -> Char.chr (i land 0xff)) in
        fun () -> ignore (Crypto.Sha256.digest m : string)) ]

let registry () =
  List.concat_map ka_ops Pqc.Registry.kems
  @ List.concat_map sa_ops Pqc.Registry.sigs
  @ kernel_ops ()

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  if nl = 0 then true
  else begin
    let found = ref false in
    for i = 0 to hl - nl do
      if (not !found) && String.sub hay i nl = needle then found := true
    done;
    !found
  end

let filter needle ops =
  List.filter
    (fun o -> contains ~needle (group_name o.op_group ^ ":" ^ o.op_name))
    ops

(* --- measurement -------------------------------------------------- *)

type gc_delta = {
  g_minor_words : float;
  g_promoted_words : float;
  g_major_words : float;
  g_minor_collections : float;
  g_major_collections : float;
}

type measured = { p_op : op; p_time : Metrics.dist; p_gc : gc_delta }

let measure op =
  let f = op.op_prepare () in
  for _ = 1 to op.op_warmup do
    f ()
  done;
  let samples = Array.make op.op_samples 0. in
  (* a minor collection flushes the allocation counters: in native code
     [Gc.quick_stat] only accounts for words at collection boundaries,
     so without the flush a low-allocation op reads a delta of zero *)
  Gc.minor ();
  let g0 = Gc.quick_stat () in
  for i = 0 to op.op_samples - 1 do
    let t0 = Clock.now_s () in
    for _ = 1 to op.op_batch do
      f ()
    done;
    samples.(i) <- Clock.elapsed_s t0 *. 1000. /. float_of_int op.op_batch
  done;
  Gc.minor ();
  let g1 = Gc.quick_stat () in
  let iters = float_of_int (op.op_samples * op.op_batch) in
  let gc =
    { g_minor_words = (g1.minor_words -. g0.minor_words) /. iters;
      g_promoted_words = (g1.promoted_words -. g0.promoted_words) /. iters;
      g_major_words = (g1.major_words -. g0.major_words) /. iters;
      g_minor_collections =
        float_of_int (g1.minor_collections - g0.minor_collections) /. iters;
      g_major_collections =
        float_of_int (g1.major_collections - g0.major_collections) /. iters }
  in
  let dist =
    Metrics.dist ~seed:("profile/" ^ op.op_name) (Array.to_list samples)
  in
  (dist, gc)

(* --- campaign attribution ----------------------------------------- *)

type attr_row = {
  at_lib : string;
  at_op : string;
  at_count : int;
  at_virtual_ms : float;
  at_real_ms : float option;
}

type artifact = {
  pa_seed : string;
  pa_attr_kem : string;
  pa_attr_sig : string;
  pa_attr_scenario : string;
  pa_ops : measured list;
  pa_attribution : attr_row list;
}

let attr_kem = "kyber768"
let attr_sig = "dilithium3"

(* Map a charge label to the profiled op covering it: most labels are
   shared spellings ("encaps kyber768"), the key schedule's real cost is
   the HKDF kernel; protocol stand-ins (parse/build, per-packet kernel
   time, AEAD framing) have no profiled counterpart and stay [None]. *)
let real_key = function
  | "key schedule" -> "kernel hkdf-sha256"
  | op -> op

let attribution ~seed =
  let kem = Pqc.Kem.mocked (Pqc.Registry.find_kem attr_kem) in
  let sg = Pqc.Sigalg.mocked (Pqc.Registry.find_sig attr_sig) in
  let spec = Experiment.spec ~seed:(seed ^ "/attribution") ~max_samples:8 kem sg in
  let buf = Trace.Buf.create ~label:"profile attribution" () in
  let (_ : Experiment.outcome) = Experiment.run_spec ~trace:buf spec in
  let tbl = Hashtbl.create 64 in
  Trace.Buf.iter buf (fun ev ->
      match ev with
      | Trace.Event.Span s when s.s_cat = "cpu" ->
          let lib =
            match List.assoc_opt "lib" s.s_args with Some l -> l | None -> "?"
          in
          let count, ms =
            match Hashtbl.find_opt tbl (lib, s.s_name) with
            | Some v -> v
            | None -> (0, 0.)
          in
          Hashtbl.replace tbl (lib, s.s_name)
            (count + 1, ms +. ((s.s_end -. s.s_begin) *. 1000.))
      | _ -> ());
  let rows =
    Hashtbl.fold (fun (lib, op) (count, ms) acc -> (lib, op, count, ms) :: acc)
      tbl []
    |> List.sort (fun (l1, o1, _, m1) (l2, o2, _, m2) ->
           match compare m2 m1 with
           | 0 -> compare (l1, o1) (l2, o2)
           | c -> c)
  in
  (spec.Experiment.sp_scenario.Scenario.name, rows)

let run ?(jobs = 1) ?ops_filter ~seed () =
  let ops = registry () in
  let ops =
    match ops_filter with
    | None -> ops
    | Some needle -> (
        match filter needle ops with
        | [] ->
            invalid_arg
              (Printf.sprintf "profile: no op matches filter %S" needle)
        | l -> l)
  in
  let measured =
    Pool.map ~jobs
      (fun op ->
        let time, gc = measure op in
        { p_op = op; p_time = time; p_gc = gc })
      ops
  in
  let scenario, rows = attribution ~seed in
  let medians =
    List.map (fun m -> (m.p_op.op_name, m.p_time.Metrics.d_p50)) measured
  in
  let attribution =
    List.map
      (fun (lib, op, count, virt) ->
        { at_lib = lib;
          at_op = op;
          at_count = count;
          at_virtual_ms = virt;
          at_real_ms = List.assoc_opt (real_key op) medians })
      rows
  in
  { pa_seed = seed;
    pa_attr_kem = attr_kem;
    pa_attr_sig = attr_sig;
    pa_attr_scenario = scenario;
    pa_ops = measured;
    pa_attribution = attribution }

(* --- serialization ------------------------------------------------ *)

let schema_version = "pqtls-bench-profile/1"

(* [shape_only] zeroes every volatile leaf: what remains is a pure
   function of the registries and the attribution spec, asserted
   byte-identical across [--jobs] by test_profile.ml. *)
let json_of ~shape_only a =
  let vf v = Json.Float (if shape_only then 0. else v) in
  let dist (d : Metrics.dist) =
    Json.Obj
      [ ("n", Json.Int d.d_n);
        ("mean", vf d.d_mean);
        ("stddev", vf d.d_stddev);
        ("p5", vf d.d_p5);
        ("p25", vf d.d_p25);
        ("p50", vf d.d_p50);
        ("p75", vf d.d_p75);
        ("p95", vf d.d_p95);
        ("p99", vf d.d_p99);
        ("ci95_lo", vf d.d_ci_lo);
        ("ci95_hi", vf d.d_ci_hi) ]
  in
  let gc g =
    Json.Obj
      [ ("minor_words", vf g.g_minor_words);
        ("promoted_words", vf g.g_promoted_words);
        ("major_words", vf g.g_major_words);
        ("minor_collections", vf g.g_minor_collections);
        ("major_collections", vf g.g_major_collections) ]
  in
  let op m =
    Json.Obj
      [ ("name", Json.String m.p_op.op_name);
        ("group", Json.String (group_name m.p_op.op_group));
        ("alg", Json.String m.p_op.op_alg);
        ("kind", Json.String m.p_op.op_kind);
        ("samples", Json.Int m.p_op.op_samples);
        ("batch", Json.Int m.p_op.op_batch);
        ("warmup", Json.Int m.p_op.op_warmup);
        ("iters", Json.Int (m.p_op.op_samples * m.p_op.op_batch));
        ("time_ms", dist m.p_time);
        ("gc", gc m.p_gc) ]
  in
  let attr r =
    let real, total =
      match r.at_real_ms with
      | Some v when not shape_only ->
          (Json.Float v, Json.Float (v *. float_of_int r.at_count))
      | _ -> (Json.Null, Json.Null)
    in
    Json.Obj
      [ ("lib", Json.String r.at_lib);
        ("op", Json.String r.at_op);
        ("count", Json.Int r.at_count);
        ("virtual_ms", Json.Float r.at_virtual_ms);
        ("real_ms_per_op", real);
        ("real_ms_total", total) ]
  in
  Json.Obj
    [ ("schema", Json.String schema_version);
      ("seed", Json.String a.pa_seed);
      ("budget_ms", Json.Float budget_ms);
      ( "attribution_cell",
        Json.Obj
          [ ("kem", Json.String a.pa_attr_kem);
            ("sig", Json.String a.pa_attr_sig);
            ("scenario", Json.String a.pa_attr_scenario) ] );
      ("ops", Json.List (List.map op a.pa_ops));
      ("attribution", Json.List (List.map attr a.pa_attribution)) ]

let to_json_string a = Json.to_string (json_of ~shape_only:false a)
let shape_json_string a = Json.to_string (json_of ~shape_only:true a)

(* --- rendering ---------------------------------------------------- *)

let render_attribution a =
  let title =
    Printf.sprintf
      "Virtual vs real attribution (%s x %s, scenario %s, %d charge ops)"
      a.pa_attr_kem a.pa_attr_sig a.pa_attr_scenario
      (List.length a.pa_attribution)
  in
  let header =
    Printf.sprintf "%-10s  %-22s  %6s  %10s  %12s  %12s" "lib" "op" "count"
      "virtual ms" "real ms/op" "real ms tot"
  in
  (* display order: real wall-clock total descending — the substrates
     that dominate host time first; unmeasured stand-ins keep their
     virtual order at the bottom *)
  let display =
    List.stable_sort
      (fun r1 r2 ->
        let key r =
          match r.at_real_ms with
          | Some v -> v *. float_of_int r.at_count
          | None -> neg_infinity
        in
        compare (key r2) (key r1))
      a.pa_attribution
  in
  let rows =
    List.map
      (fun r ->
        let real, total =
          match r.at_real_ms with
          | Some v ->
              ( Printf.sprintf "%12.4f" v,
                Printf.sprintf "%12.2f" (v *. float_of_int r.at_count) )
          | None -> (Tablefmt.dash 12, Tablefmt.dash 12)
        in
        Printf.sprintf "%-10s  %-22s  %6d  %10.2f  %s  %s" r.at_lib r.at_op
          r.at_count r.at_virtual_ms real total)
      display
  in
  Tablefmt.buf_table title header rows

let render_table a =
  let title =
    Printf.sprintf "Profile: %d ops (seed %s)" (List.length a.pa_ops) a.pa_seed
  in
  let header =
    Printf.sprintf "%-28s  %10s  %10s  %10s  %10s  %12s" "op" "iters"
      "p50 ms" "p95 ms" "ci95 ms" "minor w/op"
  in
  let rows =
    List.map
      (fun m ->
        let d = m.p_time in
        Printf.sprintf "%-28s  %6dx%-3d  %10.4f  %10.4f  %10.4f  %12.0f"
          m.p_op.op_name m.p_op.op_samples m.p_op.op_batch d.Metrics.d_p50
          d.Metrics.d_p95
          (d.Metrics.d_ci_hi -. d.Metrics.d_ci_lo)
          m.p_gc.g_minor_words)
      a.pa_ops
  in
  Tablefmt.buf_table title header rows ^ "\n" ^ render_attribution a

let folded a =
  let buf = Trace.Buf.create ~label:"profile" () in
  let t = ref 0. in
  let span name t0 t1 =
    Trace.Buf.span buf ~track:"profile" ~cat:"profile" ~name t0 t1
  in
  List.iter
    (fun g ->
      match List.filter (fun m -> m.p_op.op_group = g) a.pa_ops with
      | [] -> ()
      | ops_g ->
          let g0 = !t in
          let algs =
            List.fold_left
              (fun acc m ->
                if List.mem m.p_op.op_alg acc then acc else acc @ [ m.p_op.op_alg ])
              [] ops_g
          in
          List.iter
            (fun alg ->
              let a0 = !t in
              List.iter
                (fun m ->
                  if m.p_op.op_alg = alg then begin
                    let d = m.p_time.Metrics.d_p50 /. 1000. in
                    span m.p_op.op_kind !t (!t +. d);
                    t := !t +. d
                  end)
                ops_g;
              (* parents emitted after children: on identical intervals
                 the folded exporter treats the later emission as outer *)
              span alg a0 !t)
            algs;
          span (group_name g) g0 !t)
    [ Ka; Sa; Kernel ];
  Trace.Export.folded [ buf ]

(* --- comparison --------------------------------------------------- *)

type p_op = {
  q_name : string;
  q_group : string;
  q_alg : string;
  q_kind : string;
  q_samples : int;
  q_batch : int;
  q_warmup : int;
  q_metrics : (string * float) list;
}

type p_artifact = { q_seed : string; q_ops : p_op list }

let of_json_string s =
  match Json.parse s with
  | Error e -> Error e
  | Ok j -> (
      match Json.to_str (Json.member "schema" j) with
      | Some v when v = schema_version ->
          let seed =
            Option.value ~default:"" (Json.to_str (Json.member "seed" j))
          in
          let parse_op o =
            let str k =
              Option.value ~default:"" (Json.to_str (Json.member k o))
            in
            let int k =
              Option.value ~default:0 (Json.to_int (Json.member k o))
            in
            let leaves prefix =
              match Json.to_obj (Json.member prefix o) with
              | None -> []
              | Some fields ->
                  List.filter_map
                    (fun (k, v) ->
                      Option.map
                        (fun f -> (prefix ^ "." ^ k, f))
                        (Json.to_float (Some v)))
                    fields
            in
            { q_name = str "name";
              q_group = str "group";
              q_alg = str "alg";
              q_kind = str "kind";
              q_samples = int "samples";
              q_batch = int "batch";
              q_warmup = int "warmup";
              q_metrics = leaves "time_ms" @ leaves "gc" }
          in
          let ops =
            Option.value ~default:[] (Json.to_list (Json.member "ops" j))
          in
          Ok { q_seed = seed; q_ops = List.map parse_op ops }
      | Some v ->
          Error
            (Printf.sprintf "unsupported schema %S (expected %S)" v
               schema_version)
      | None -> Error "missing schema field")

(* Of the measured leaves only the run-stable ones are judged: the
   median (robust to scheduler spikes, unlike mean/p99 over a handful of
   samples) and the minor allocation rate (a pure function of the code
   path, the most regression-sensitive signal here). *)
let judged = [ "time_ms.p50"; "gc.minor_words" ]

let diff ?(rel_tol = 0.25) a b =
  let issues = ref [] in
  let add fmt = Printf.ksprintf (fun s -> issues := s :: !issues) fmt in
  List.iter
    (fun qa ->
      match List.find_opt (fun qb -> qb.q_name = qa.q_name) b.q_ops with
      | None -> add "op %S missing from candidate" qa.q_name
      | Some qb ->
          if qa.q_group <> qb.q_group || qa.q_alg <> qb.q_alg
             || qa.q_kind <> qb.q_kind
          then add "op %S: identity changed" qa.q_name;
          if
            (qa.q_samples, qa.q_batch, qa.q_warmup)
            <> (qb.q_samples, qb.q_batch, qb.q_warmup)
          then
            add "op %S: iteration plan changed (%dx%d warmup %d -> %dx%d warmup %d)"
              qa.q_name qa.q_samples qa.q_batch qa.q_warmup qb.q_samples
              qb.q_batch qb.q_warmup;
          List.iter
            (fun key ->
              match
                ( List.assoc_opt key qa.q_metrics,
                  List.assoc_opt key qb.q_metrics )
              with
              | Some va, Some vb ->
                  let denom = Float.max (Float.abs va) (Float.abs vb) in
                  if denom > 0. && Float.abs (va -. vb) /. denom > rel_tol then
                    add "op %S: %s drifted %s -> %s (tol %.0f%%)" qa.q_name key
                      (Json.float_repr va) (Json.float_repr vb)
                      (rel_tol *. 100.)
              | _ -> add "op %S: metric %s missing" qa.q_name key)
            judged)
    a.q_ops;
  List.iter
    (fun qb ->
      if not (List.exists (fun qa -> qa.q_name = qb.q_name) a.q_ops) then
        add "op %S not in baseline" qb.q_name)
    b.q_ops;
  List.rev !issues
