(** The wall-clock quarantine (lint rule D1): every real-time read in
    the tree flows through this one module, so the determinism linter
    can prove at a glance that nothing outside it can observe host time.

    Readings are *volatile*: they depend on the machine, the scheduler
    and the moment — they may feed operator telemetry (progress lines,
    {!Exec.health_summary}) and the real-time profiling artifact
    ({!Profile}), whose values are explicitly machine-dependent, but
    they must never influence a campaign outcome or a deterministic
    artifact. Rule D1 enforces the complement: the raw primitives
    ([Unix.gettimeofday] and friends) are banned everywhere but here,
    and {!now_s}/{!elapsed_s} themselves are banned inside the
    simulation layers (lib/crypto, lib/pqc, lib/tls, lib/netsim,
    lib/trace, lib/lint), which must stay pure functions of spec and
    seed. *)

val now_s : unit -> float
(** Seconds since the Unix epoch, from the host's best-effort monotonic
    source. Only meaningful as a difference between two reads. *)

val elapsed_s : float -> float
(** [elapsed_s t0] is [now_s () -. t0] — host seconds since [t0]. *)

val time_ms : (unit -> unit) -> float
(** [time_ms f] runs [f] once and returns its wall-clock duration in
    milliseconds — the micro-benchmark primitive behind {!Profile}. *)
