(** Workload mixes: the fraction of connections that resume with a PSK
    ticket instead of running the paper's full handshake, plus whether
    resuming clients send 0-RTT early data. A mix is a campaign
    dimension — cells carry it in their spec, fingerprint and label, and
    the [full] mix reproduces the historical cells byte-for-byte. *)

type t = {
  name : string;  (** stable identifier, keyed into fingerprints *)
  label : string;  (** short human rendering for table headers *)
  resumed : float;  (** fraction of connections that resume, in [0,1] *)
  early_data : bool;  (** resuming clients send 0-RTT early data *)
  description : string;
}

val full : t
(** 0% resumed: the paper's workload. Cells with this mix are bit-
    identical to cells that predate the mix dimension. *)

val all : t list
(** Every registered mix, [full] first (stable order for listings). *)

val find : string -> t
(** @raise Invalid_argument on an unknown name. *)

val is_full : t -> bool
