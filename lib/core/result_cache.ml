(* Disk memoization of completed experiment cells. Only successful
   outcomes are stored (Exec never caches failures), so an entry's
   presence means the cell genuinely finished under this binary.

   One file per cell under the cache directory, named by the SHA-256 of
   the cell's full parameter fingerprint plus a fingerprint of the
   running executable — so a rebuild that changes *any* code invalidates
   everything, which is the only safe default for Marshal-ed payloads.

   Writes go through a unique temp file followed by [Sys.rename], so
   concurrent domains (or concurrent processes sharing a cache
   directory) never observe a torn entry; a corrupt or alien file is
   treated as a miss and overwritten. *)

let magic = "pqtls-cache-1"

type t = {
  dir : string;
  code_fingerprint : string;
  hits : int Atomic.t;
  misses : int Atomic.t;
}

let hex s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

let create ~dir =
  mkdir_p dir;
  let code_fingerprint =
    try Digest.to_hex (Digest.file Sys.executable_name)
    with Sys_error _ -> "no-executable"
  in
  { dir;
    code_fingerprint;
    hits = Atomic.make 0;
    misses = Atomic.make 0 }

let key t spec =
  hex
    (Crypto.Sha256.digest
       (Experiment.spec_fingerprint spec ^ "|code=" ^ t.code_fingerprint))

let path t k = Filename.concat t.dir (k ^ ".outcome")

let find t k =
  let read () =
    let ic = open_in_bin (path t k) in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let m, (o : Experiment.outcome) = Marshal.from_channel ic in
        if m <> magic then None else Some o)
  in
  let r = try read () with Sys_error _ | End_of_file | Failure _ -> None in
  (match r with
  | Some _ -> Atomic.incr t.hits
  | None -> Atomic.incr t.misses);
  r

let store t k (o : Experiment.outcome) =
  let final = path t k in
  let tmp =
    Printf.sprintf "%s.%d.%d.tmp" final (Unix.getpid ())
      (Domain.self () :> int)
  in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> Marshal.to_channel oc (magic, o) []);
  Sys.rename tmp final

(* farm cells share the directory but use their own magic and extension:
   Marshal is untyped, so the two outcome types must never be able to
   read each other's files *)
let farm_magic = "pqtls-farm-cache-1"

let farm_key t spec =
  hex
    (Crypto.Sha256.digest
       (Experiment.farm_spec_fingerprint spec ^ "|code=" ^ t.code_fingerprint))

let farm_path t k = Filename.concat t.dir (k ^ ".farm")

let find_farm t k =
  let read () =
    let ic = open_in_bin (farm_path t k) in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let m, (o : Experiment.farm_outcome) = Marshal.from_channel ic in
        if m <> farm_magic then None else Some o)
  in
  let r = try read () with Sys_error _ | End_of_file | Failure _ -> None in
  (match r with
  | Some _ -> Atomic.incr t.hits
  | None -> Atomic.incr t.misses);
  r

let store_farm t k (o : Experiment.farm_outcome) =
  let final = farm_path t k in
  let tmp =
    Printf.sprintf "%s.%d.%d.tmp" final (Unix.getpid ())
      (Domain.self () :> int)
  in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> Marshal.to_channel oc (farm_magic, o) []);
  Sys.rename tmp final

let find_or_run t spec f =
  let k = key t spec in
  match find t k with
  | Some o -> (o, `Hit)
  | None ->
    let o = f () in
    store t k o;
    (o, `Miss)

let hits t = Atomic.get t.hits
let misses t = Atomic.get t.misses
