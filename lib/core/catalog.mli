(** The experiment naming schema of Appendix B.6: each name maps to the
    campaign that the paper's `experiment.py` would run, rendered as a
    report string. *)

val names : string list
(** [all-kem], [all-sig], [level1|3|5], [level1|3|5-nopush],
    [level1|3|5-perf], [all-kem-scenarios], [all-sig-scenarios],
    [attack], [ablation-buffer], [ablation-cwnd]. *)

val aliases : (string * string) list
(** Paper-table spellings accepted everywhere a name is:
    [table2a] = [all-kem], [table2b] = [all-sig],
    [table4a] = [all-kem-scenarios], [table4b] = [all-sig-scenarios]. *)

val resolve : string -> string
(** Canonical name of an alias; identity for everything else. *)

val run : ?seed:string -> ?exec:Exec.t -> string -> string
(** Run a campaign through [exec] (default {!Exec.sequential}); the
    report is bit-identical for any [exec.jobs].
    @raise Invalid_argument for unknown names. *)

val describe : string -> string
