(** Section 5.5: PQ TLS as an attack surface.

    Two asymmetries per KA x SA pair: CPU-cost skew between server and
    client (algorithmic-complexity attacks) and the response/request
    byte amplification usable with spoofed sources (the paper contrasts
    the worst factor with QUIC's mandated limit of 3). *)

type row = {
  kem : string;
  sa : string;
  cpu_ratio : float;  (** server CPU per handshake / client CPU *)
  amplification : float;  (** server bytes sent / client bytes sent *)
}

val measure : ?seed:string -> Pqc.Kem.t -> Pqc.Sigalg.t -> row

val survey : ?seed:string -> ?exec:Exec.t -> unit -> row list
(** Every SA against the x25519 baseline plus the white-box pairs;
    sorted by amplification, worst first. *)

val worst_amplification : row list -> row
val worst_cpu_ratio : row list -> row
val quic_limit : float
(** 3.0 *)
