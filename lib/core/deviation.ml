type cell = {
  kem : string;
  sa : string;
  measured_ms : float;
  expected_ms : float;
  deviation_ms : float;
}

type grid = {
  level : int;
  buffering : Tls.Config.buffering;
  cells : cell list;
  failed : (string * string) list;
}

let total outcome = Experiment.median_of (fun s -> s.Experiment.total_ms) outcome

let analyze ?(buffering = Tls.Config.Optimized_push) ?(seed = "deviation")
    ?(exec = Exec.sequential) level =
  let kems = Pqc.Registry.level_group level `Kem in
  let sigs = Pqc.Registry.level_group_sigs level in
  let baseline_kem = Pqc.Registry.baseline_kem in
  let baseline_sig = Pqc.Registry.baseline_sig in
  (* the KA-only / SA-only marginals overlap the grid when a baseline is
     a member of its level group, so measure each distinct pair once *)
  let pairs =
    (baseline_kem, baseline_sig)
    :: List.map (fun k -> (k, baseline_sig)) kems
    @ List.map (fun s -> (baseline_kem, s)) sigs
    @ List.concat_map (fun k -> List.map (fun s -> (k, s)) sigs) kems
  in
  let distinct =
    List.sort_uniq
      (fun (k1, s1) (k2, s2) ->
        compare
          (k1.Pqc.Kem.name, s1.Pqc.Sigalg.name)
          (k2.Pqc.Kem.name, s2.Pqc.Sigalg.name))
      pairs
  in
  let results =
    Exec.cells exec
      (List.map (fun (k, s) -> Experiment.spec ~buffering ~seed k s) distinct)
  in
  (* only completed cells enter the lookup table; a combination whose
     own measurement or either marginal (or the baseline) failed lands
     in [failed] instead of aborting the whole grid *)
  let table =
    List.concat
      (List.map2
         (fun (k, s) r ->
           match r with
           | Ok o -> [ ((k.Pqc.Kem.name, s.Pqc.Sigalg.name), total o) ]
           | Error _ -> [])
         distinct results)
  in
  let measure k s =
    List.assoc_opt (k.Pqc.Kem.name, s.Pqc.Sigalg.name) table
  in
  let m_base = measure baseline_kem baseline_sig in
  let cells, failed =
    List.partition_map Fun.id
      (List.concat_map
         (fun k ->
           List.map
             (fun s ->
               match
                 ( measure k s, measure k baseline_sig,
                   measure baseline_kem s, m_base )
               with
               | Some measured, Some mk, Some ms, Some mb ->
                 let expected = mk +. ms -. mb in
                 Either.Left
                   { kem = k.Pqc.Kem.name;
                     sa = s.Pqc.Sigalg.name;
                     measured_ms = measured;
                     expected_ms = expected;
                     deviation_ms = expected -. measured }
               | _ -> Either.Right (k.Pqc.Kem.name, s.Pqc.Sigalg.name))
             sigs)
         kems)
  in
  { level; buffering; cells; failed }

let improvement ~optimized ~default =
  List.filter_map
    (fun c ->
      match
        List.find_opt
          (fun d -> d.kem = c.kem && d.sa = c.sa)
          default.cells
      with
      | Some d -> Some (c.kem, c.sa, d.measured_ms -. c.measured_ms)
      | None -> None)
    optimized.cells
