(** Work-stealing domain pool for campaign grids.

    Tasks are coarse (one task = one experiment cell), so the pool
    favours simplicity: per-worker deques seeded round-robin, idle
    workers steal from the back of the fullest other deque. Results come
    back in input order, so a parallel map is a drop-in replacement for
    [List.map] whenever [f] is pure — which experiment cells are (each
    builds its own engine, RNG and hosts from a derived seed). *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], at least 1. *)

val map :
  ?jobs:int ->
  ?on_done:
    (index:int ->
    completed:int ->
    total:int ->
    'a ->
    'b ->
    float ->
    unit) ->
  ('a -> 'b) ->
  'a list ->
  'b list
(** [map ~jobs f xs] is [List.map f xs] evaluated on [jobs] domains
    (including the calling one). [jobs] defaults to {!default_jobs};
    [jobs = 1] runs sequentially in the caller with no domain spawned.

    [on_done] fires after each task under an internal lock (safe to
    print from): input index, completion count, total, the input, the
    result, and the task's host-time seconds.

    If a task raises, remaining queued tasks are abandoned, in-flight
    ones drain, and the first exception is re-raised in the caller.
    This is a backstop for genuine bugs: the campaign layer ({!Exec})
    catches per-cell failures into [(_, _) result] values before they
    reach the pool, so one failing experiment cell cannot abandon the
    rest of a grid. *)
