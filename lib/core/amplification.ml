type row = {
  kem : string;
  sa : string;
  cpu_ratio : float;
  amplification : float;
}

let quic_limit = 3.0

let row_of kem sa (o : Experiment.outcome) =
  let med f = Stats.median_int (List.map f o.Experiment.samples) in
  { kem = kem.Pqc.Kem.name;
    sa = sa.Pqc.Sigalg.name;
    cpu_ratio = o.Experiment.server_cpu_ms /. o.Experiment.client_cpu_ms;
    amplification =
      med (fun s -> s.Experiment.server_bytes)
      /. med (fun s -> s.Experiment.client_bytes) }

let measure ?(seed = "attack") kem sa =
  row_of kem sa (Experiment.run ~seed kem sa)

let survey ?(seed = "attack") ?(exec = Exec.sequential) () =
  let pairs =
    List.map (fun sa -> (Pqc.Registry.baseline_kem, sa)) Pqc.Registry.sigs
    @ List.map
        (fun (_, k, s) -> (Pqc.Registry.find_kem k, Pqc.Registry.find_sig s))
        Whitebox.paper_pairs
  in
  let results =
    Exec.cells exec (List.map (fun (k, s) -> Experiment.spec ~seed k s) pairs)
  in
  (* failed cells simply drop out of the survey *)
  let rows =
    List.concat
      (List.map2
         (fun (k, s) r ->
           match r with Ok o -> [ row_of k s o ] | Error _ -> [])
         pairs results)
  in
  List.sort (fun a b -> Float.compare b.amplification a.amplification) rows

let worst_by f = function
  | [] -> invalid_arg "Amplification: empty survey"
  | hd :: tl ->
    List.fold_left (fun best r -> if f r > f best then r else best) hd tl

let worst_amplification rows = worst_by (fun r -> r.amplification) rows
let worst_cpu_ratio rows = worst_by (fun r -> r.cpu_ratio) rows
