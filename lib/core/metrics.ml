(* The observability layer: a domain-safe registry of counters, gauges
   and observation series for harness self-telemetry, plus per-cell
   distribution summaries recorded by [Exec] after every campaign grid.

   Two invariants keep the [--metrics] artifact useful as a regression
   gate:

   - determinism: a cell's summary is a pure function of its outcome,
     which is a pure function of its spec, so the serialized artifact is
     byte-identical for any [--jobs] and for cache hits vs fresh
     executions. Volatile telemetry (wall time, cache hits) lives only
     in the registry and the stderr health summary, never in the
     artifact.

   - schema stability: the artifact carries a version tag; [compare]
     refuses unknown versions instead of mis-reading them. *)

(* ---- distribution summaries --------------------------------------------- *)

type dist = {
  d_n : int;
  d_mean : float;
  d_stddev : float;
  d_p5 : float;
  d_p25 : float;
  d_p50 : float;
  d_p75 : float;
  d_p95 : float;
  d_p99 : float;
  d_ci_lo : float;
  d_ci_hi : float;
}

(* the bootstrap reseeds from the cell fingerprint and the metric name,
   so the interval is a pure function of the data — the artifact stays
   byte-identical whatever domain computed it *)
let dist ~seed xs =
  let ci_lo, ci_hi = Stats.bootstrap_ci ~seed Stats.median xs in
  match Stats.percentiles [ 0.05; 0.25; 0.5; 0.75; 0.95; 0.99 ] xs with
  | [ p5; p25; p50; p75; p95; p99 ] ->
    { d_n = List.length xs;
      d_mean = Stats.mean xs;
      d_stddev = Stats.stddev xs;
      d_p5 = p5;
      d_p25 = p25;
      d_p50 = p50;
      d_p75 = p75;
      d_p95 = p95;
      d_p99 = p99;
      d_ci_lo = ci_lo;
      d_ci_hi = ci_hi }
  | _ -> assert false

(* ---- per-cell data ------------------------------------------------------- *)

(* per-population split of a mixed-workload cell: the full-handshake and
   resumed-handshake sub-distributions behind Table 6. [None] dists mean
   the coin never produced that population within the sample budget. *)
type resumption = {
  rs_resumed_n : int;
  rs_full_n : int;
  rs_early_data_bytes : int;  (* 0-RTT bytes accepted, summed *)
  rs_resumed_total : dist option;  (* ms, CH -> client Finished *)
  rs_full_total : dist option;
  rs_resumed_server_bytes : dist option;
  rs_full_server_bytes : dist option;
}

type cell_data = {
  cd_handshakes_per_minute : int;
  cd_part_a : dist;
  cd_part_b : dist;
  cd_total : dist;
  cd_iteration : dist;
  cd_client_bytes : dist;
  cd_server_bytes : dist;
  cd_client_pkts : dist;
  cd_server_pkts : dist;
  cd_retransmissions : int;
  cd_fast_retx : int;
  cd_timeout_retx : int;
  cd_rtt_samples : int;
  cd_client_cpu_ms : float;
  cd_server_cpu_ms : float;
  cd_client_cpu_charges : int;
  cd_server_cpu_charges : int;
  cd_client_ledger : (string * float) list;
  cd_server_ledger : (string * float) list;
  cd_resumption : resumption option;  (* Some iff the mix is not full *)
  cd_chain_levels : (string * string * int * float) list;
      (* per-level placement breakdown; serialized iff the chain profile
         is not the default *)
}

type cell = {
  m_id : string;
  m_key : string;
  m_kem : string;
  m_sig : string;
  m_scenario : string;
  m_mix : string;
  m_chain : string;
  m_buffering : string;
  m_standard : bool;
  m_data : (cell_data, string) result;
}

let data_of_outcome ~id (o : Experiment.outcome) =
  let samples = o.Experiment.samples in
  let d name f =
    dist ~seed:(id ^ "/" ^ name) (List.map f samples)
  in
  let di name f = d name (fun s -> float_of_int (f s)) in
  let sum f = List.fold_left (fun acc s -> acc + f s) 0 samples in
  let resumption =
    if o.Experiment.mix_name = "full" then None
    else begin
      let resumed, full =
        List.partition (fun s -> s.Experiment.resumed) samples
      in
      let sub name subset f =
        match subset with
        | [] -> None
        | _ -> Some (dist ~seed:(id ^ "/" ^ name) (List.map f subset))
      in
      Some
        { rs_resumed_n = List.length resumed;
          rs_full_n = List.length full;
          rs_early_data_bytes = sum (fun s -> s.Experiment.early_data_bytes);
          rs_resumed_total =
            sub "resumed_total" resumed (fun s -> s.Experiment.total_ms);
          rs_full_total =
            sub "full_total" full (fun s -> s.Experiment.total_ms);
          rs_resumed_server_bytes =
            sub "resumed_server_bytes" resumed (fun s ->
                float_of_int s.Experiment.server_bytes);
          rs_full_server_bytes =
            sub "full_server_bytes" full (fun s ->
                float_of_int s.Experiment.server_bytes) }
    end
  in
  { cd_handshakes_per_minute = o.Experiment.handshakes_per_minute;
    cd_part_a = d "part_a" (fun s -> s.Experiment.part_a_ms);
    cd_part_b = d "part_b" (fun s -> s.Experiment.part_b_ms);
    cd_total = d "total" (fun s -> s.Experiment.total_ms);
    cd_iteration = d "iteration" (fun s -> s.Experiment.iteration_ms);
    cd_client_bytes = di "client_bytes" (fun s -> s.Experiment.client_bytes);
    cd_server_bytes = di "server_bytes" (fun s -> s.Experiment.server_bytes);
    cd_client_pkts = di "client_pkts" (fun s -> s.Experiment.client_pkts);
    cd_server_pkts = di "server_pkts" (fun s -> s.Experiment.server_pkts);
    cd_retransmissions = sum (fun s -> s.Experiment.retransmissions);
    cd_fast_retx = sum (fun s -> s.Experiment.fast_retransmissions);
    cd_timeout_retx = sum (fun s -> s.Experiment.timeout_retransmissions);
    cd_rtt_samples = sum (fun s -> s.Experiment.rtt_samples);
    cd_client_cpu_ms = o.Experiment.client_cpu_ms;
    cd_server_cpu_ms = o.Experiment.server_cpu_ms;
    cd_client_cpu_charges = o.Experiment.client_cpu_charges;
    cd_server_cpu_charges = o.Experiment.server_cpu_charges;
    cd_client_ledger = o.Experiment.client_ledger;
    cd_server_ledger = o.Experiment.server_ledger;
    cd_resumption = resumption;
    cd_chain_levels = o.Experiment.chain_levels }

let buffering_name = function
  | Tls.Config.Optimized_push -> "push"
  | Tls.Config.Default_buffered -> "buffered"

(* a cell is "standard" when everything except kem/sig/scenario/
   buffering/seed sits at the [Experiment.spec] defaults — exactly the
   shape of the paper's Table 2 / Table 4 campaigns, and the only cells
   [against_paper] may judge. Fingerprints compare the specs without
   touching the closure-bearing algorithm values. *)
let is_standard (sp : Experiment.spec) =
  let rebuilt =
    Experiment.spec ~buffering:sp.Experiment.sp_buffering
      ~scenario:sp.Experiment.sp_scenario ~seed:sp.Experiment.sp_seed
      ~real_crypto:sp.Experiment.sp_real_crypto sp.Experiment.sp_kem
      sp.Experiment.sp_sig
  in
  String.equal
    (Experiment.spec_fingerprint rebuilt)
    (Experiment.spec_fingerprint sp)

(* ---- per-farm-cell data --------------------------------------------------- *)

type farm_cell_data = {
  fd_capacity_hs_s : float;
  fd_offered_rate : float;
  fd_window_s : float;
  fd_offered : int;
  fd_completed : int;
  fd_dropped : int;
  fd_unfinished : int;
  fd_latency : dist;
  fd_latency_p999 : float;
  fd_p99_ci_lo : float;
  fd_p99_ci_hi : float;
  fd_wait : dist;
  fd_server_cpu_ms : float;
  fd_server_busy : float;
  fd_server_ledger : (string * float) list;
  fd_per_server_completed : int list;
  fd_adv_launched : int;
  fd_adv_completed : int;
  fd_adv_client_bytes : int;
  fd_adv_server_bytes : int;
  fd_benign_client_bytes : int;
  fd_benign_server_bytes : int;
  fd_cal_client_cpu_ms : float;
  fd_cal_server_cpu_ms : float;
  fd_cal_adv_server_cpu_ms : float;
  fd_resumed_completed : int;
  fd_early_data_bytes : int;
}

type farm_cell = {
  f_id : string;
  f_key : string;
  f_kem : string;
  f_sig : string;
  f_scenario : string;
  f_profile : string;
  f_policy : string;
  f_utilization : float;
  f_adv_fraction : float;
  f_mix : string;
  f_data : (farm_cell_data, string) result;
}

let data_of_farm_outcome ~id (o : Experiment.farm_outcome) =
  let lat = o.Experiment.fo_latencies_ms in
  let p99_lo, p99_hi =
    Stats.bootstrap_ci ~seed:(id ^ "/p99") (Stats.percentile 0.99) lat
  in
  { fd_capacity_hs_s = o.Experiment.fo_capacity_hs_s;
    fd_offered_rate = o.Experiment.fo_offered_rate;
    fd_window_s = o.Experiment.fo_window_s;
    fd_offered = o.Experiment.fo_offered;
    fd_completed = o.Experiment.fo_completed;
    fd_dropped = o.Experiment.fo_dropped;
    fd_unfinished = o.Experiment.fo_unfinished;
    fd_latency = dist ~seed:(id ^ "/latency") lat;
    fd_latency_p999 = Stats.percentile 0.999 lat;
    fd_p99_ci_lo = p99_lo;
    fd_p99_ci_hi = p99_hi;
    fd_wait = dist ~seed:(id ^ "/wait") o.Experiment.fo_wait_ms;
    fd_server_cpu_ms = o.Experiment.fo_server_cpu_ms;
    fd_server_busy = o.Experiment.fo_server_busy;
    fd_server_ledger = o.Experiment.fo_server_ledger;
    fd_per_server_completed = o.Experiment.fo_per_server_completed;
    fd_adv_launched = o.Experiment.fo_adv_launched;
    fd_adv_completed = o.Experiment.fo_adv_completed;
    fd_adv_client_bytes = o.Experiment.fo_adv_client_bytes;
    fd_adv_server_bytes = o.Experiment.fo_adv_server_bytes;
    fd_benign_client_bytes = o.Experiment.fo_benign_client_bytes;
    fd_benign_server_bytes = o.Experiment.fo_benign_server_bytes;
    fd_cal_client_cpu_ms = o.Experiment.fo_cal_client_cpu_ms;
    fd_cal_server_cpu_ms = o.Experiment.fo_cal_server_cpu_ms;
    fd_cal_adv_server_cpu_ms = o.Experiment.fo_cal_adv_server_cpu_ms;
    fd_resumed_completed = o.Experiment.fo_resumed_completed;
    fd_early_data_bytes = o.Experiment.fo_early_data_bytes }

(* ---- the registry -------------------------------------------------------- *)

type t = {
  mu : Mutex.t;
  counters : (string, int) Hashtbl.t;
  gauges : (string, float) Hashtbl.t;
  series : (string, float list) Hashtbl.t; (* newest first *)
  seen : (string, unit) Hashtbl.t; (* cell fingerprints already recorded *)
  labels : (string, int) Hashtbl.t; (* spec_label -> occurrences *)
  mutable cells_rev : cell list;
  mutable farm_cells_rev : farm_cell list;
  mutable experiments_rev : string list;
}

let create () =
  { mu = Mutex.create ();
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 8;
    series = Hashtbl.create 8;
    seen = Hashtbl.create 64;
    labels = Hashtbl.create 64;
    cells_rev = [];
    farm_cells_rev = [];
    experiments_rev = [] }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let incr ?(by = 1) t name =
  locked t (fun () ->
      Hashtbl.replace t.counters name
        (by + Option.value ~default:0 (Hashtbl.find_opt t.counters name)))

let counter t name =
  locked t (fun () ->
      Option.value ~default:0 (Hashtbl.find_opt t.counters name))

let set_gauge t name v =
  locked t (fun () -> Hashtbl.replace t.gauges name v)

let gauge t name = locked t (fun () -> Hashtbl.find_opt t.gauges name)

let observe t name v =
  locked t (fun () ->
      Hashtbl.replace t.series name
        (v :: Option.value ~default:[] (Hashtbl.find_opt t.series name)))

let observations t name =
  locked t (fun () ->
      List.rev (Option.value ~default:[] (Hashtbl.find_opt t.series name)))

let note_experiment t name =
  locked t (fun () ->
      if not (List.mem name t.experiments_rev) then
        t.experiments_rev <- name :: t.experiments_rev)

(* Called by [Exec.cells] once per grid, in spec order, from the
   coordinating domain — so recording order (and thus the artifact) is
   independent of [jobs]. Re-run cells (same fingerprint) keep their
   first recording; grids that share cells stay deduplicated. *)
let record_cell t (sp : Experiment.spec) result =
  let id = Experiment.spec_fingerprint sp in
  locked t (fun () ->
      if not (Hashtbl.mem t.seen id) then begin
        Hashtbl.add t.seen id ();
        let label = Experiment.spec_label sp in
        let occurrences =
          Option.value ~default:0 (Hashtbl.find_opt t.labels label)
        in
        Hashtbl.replace t.labels label (occurrences + 1);
        (* ablation grids reuse labels (same pair, different knob):
           disambiguate later occurrences deterministically *)
        let key =
          if occurrences = 0 then label
          else Printf.sprintf "%s#%d" label (occurrences + 1)
        in
        let cell =
          { m_id = id;
            m_key = key;
            m_kem = sp.Experiment.sp_kem.Pqc.Kem.name;
            m_sig = sp.Experiment.sp_sig.Pqc.Sigalg.name;
            m_scenario = sp.Experiment.sp_scenario.Scenario.name;
            m_mix = sp.Experiment.sp_mix.Mix.name;
            m_chain = sp.Experiment.sp_chain.Tls.Chain_profile.name;
            m_buffering = buffering_name sp.Experiment.sp_buffering;
            m_standard = is_standard sp;
            m_data = Result.map (fun o -> data_of_outcome ~id o) result }
        in
        t.cells_rev <- cell :: t.cells_rev
      end)

(* farm cells share the dedup and label machinery above: fingerprints
   never collide across the two kinds (the farm tag differs), and label
   formats differ, so one [seen] / [labels] pair serves both *)
let record_farm_cell t (sp : Experiment.farm_spec) result =
  let id = Experiment.farm_spec_fingerprint sp in
  locked t (fun () ->
      if not (Hashtbl.mem t.seen id) then begin
        Hashtbl.add t.seen id ();
        let label = Experiment.farm_spec_label sp in
        let occurrences =
          Option.value ~default:0 (Hashtbl.find_opt t.labels label)
        in
        Hashtbl.replace t.labels label (occurrences + 1);
        let key =
          if occurrences = 0 then label
          else Printf.sprintf "%s#%d" label (occurrences + 1)
        in
        let cell =
          { f_id = id;
            f_key = key;
            f_kem = sp.Experiment.fa_kem.Pqc.Kem.name;
            f_sig = sp.Experiment.fa_sig.Pqc.Sigalg.name;
            f_scenario = sp.Experiment.fa_scenario.Scenario.name;
            f_profile = sp.Experiment.fa_profile;
            f_policy = sp.Experiment.fa_policy;
            f_utilization = sp.Experiment.fa_utilization;
            f_adv_fraction = sp.Experiment.fa_adv_fraction;
            f_mix = sp.Experiment.fa_mix.Mix.name;
            f_data = Result.map (fun o -> data_of_farm_outcome ~id o) result }
        in
        t.farm_cells_rev <- cell :: t.farm_cells_rev
      end)

let cell_count t =
  locked t (fun () ->
      List.length t.cells_rev + List.length t.farm_cells_rev)

(* ---- the artifact -------------------------------------------------------- *)

let schema_version = "pqtls-bench-metrics/1"

type artifact = {
  a_seed : string;
  a_experiments : string list;
  a_cells : cell list;
  a_farm_cells : farm_cell list;
}

let artifact t ~seed =
  locked t (fun () ->
      { a_seed = seed;
        a_experiments = List.rev t.experiments_rev;
        a_cells = List.rev t.cells_rev;
        a_farm_cells = List.rev t.farm_cells_rev })

let json_of_dist d =
  Json.Obj
    [ ("n", Json.Int d.d_n);
      ("mean", Json.Float d.d_mean);
      ("stddev", Json.Float d.d_stddev);
      ("p5", Json.Float d.d_p5);
      ("p25", Json.Float d.d_p25);
      ("p50", Json.Float d.d_p50);
      ("p75", Json.Float d.d_p75);
      ("p95", Json.Float d.d_p95);
      ("p99", Json.Float d.d_p99);
      ("ci95_lo", Json.Float d.d_ci_lo);
      ("ci95_hi", Json.Float d.d_ci_hi) ]

let json_of_ledger l =
  Json.Obj (List.map (fun (lib, share) -> (lib, Json.Float share)) l)

(* the resumption block (and the "mix" identity key) only exist for
   mixed-workload cells, so every pre-mix artifact stays byte-identical
   under schema /1 — the same stance farm_cells takes below *)
let json_of_resumption r =
  let opt_dist = function
    | None -> Json.Null
    | Some d -> json_of_dist d
  in
  Json.Obj
    [ ("resumed_n", Json.Int r.rs_resumed_n);
      ("full_n", Json.Int r.rs_full_n);
      ("early_data_bytes", Json.Int r.rs_early_data_bytes);
      ("resumed_total_ms", opt_dist r.rs_resumed_total);
      ("full_total_ms", opt_dist r.rs_full_total);
      ("resumed_server_bytes", opt_dist r.rs_resumed_server_bytes);
      ("full_server_bytes", opt_dist r.rs_full_server_bytes) ]

(* like the resumption block: the chain identity key and per-level
   breakdown only exist for non-default chain profiles, so every
   pre-chain artifact stays byte-identical under schema /1 *)
let json_of_chain_levels levels =
  let wire = List.fold_left (fun acc (_, _, b, _) -> acc + b) 0 levels in
  let cpu = List.fold_left (fun acc (_, _, _, ms) -> acc +. ms) 0. levels in
  Json.Obj
    [ ("wire_bytes", Json.Int wire);
      ("verify_ms", Json.Float cpu);
      ( "levels",
        Json.List
          (List.map
             (fun (name, issuer, bytes, verify_ms) ->
               Json.Obj
                 [ ("level", Json.String name);
                   ("issuer_sa", Json.String issuer);
                   ("bytes", Json.Int bytes);
                   ("verify_ms", Json.Float verify_ms) ])
             levels) ) ]

let json_of_cell c =
  let base =
    [ ("id", Json.String c.m_id);
      ("key", Json.String c.m_key);
      ("kem", Json.String c.m_kem);
      ("sig", Json.String c.m_sig);
      ("scenario", Json.String c.m_scenario) ]
    @ (if c.m_mix = "full" then []
       else [ ("mix", Json.String c.m_mix) ])
    @ (if c.m_chain = "default" then []
       else [ ("chain", Json.String c.m_chain) ])
    @ [ ("buffering", Json.String c.m_buffering);
        ("standard", Json.Bool c.m_standard) ]
  in
  match c.m_data with
  | Error msg ->
    Json.Obj (base @ [ ("error", Json.String msg); ("data", Json.Null) ])
  | Ok d ->
    Json.Obj
      (base
      @ [ ( "data",
            Json.Obj
              ([ ("handshakes_per_minute", Json.Int d.cd_handshakes_per_minute);
                ( "latency_ms",
                  Json.Obj
                    [ ("part_a", json_of_dist d.cd_part_a);
                      ("part_b", json_of_dist d.cd_part_b);
                      ("total", json_of_dist d.cd_total);
                      ("iteration", json_of_dist d.cd_iteration) ] );
                ( "wire",
                  Json.Obj
                    [ ("client_bytes", json_of_dist d.cd_client_bytes);
                      ("server_bytes", json_of_dist d.cd_server_bytes);
                      ("client_pkts", json_of_dist d.cd_client_pkts);
                      ("server_pkts", json_of_dist d.cd_server_pkts);
                      ("retransmissions", Json.Int d.cd_retransmissions);
                      ("fast_retx", Json.Int d.cd_fast_retx);
                      ("timeout_retx", Json.Int d.cd_timeout_retx);
                      ("rtt_samples", Json.Int d.cd_rtt_samples) ] );
                ( "cpu",
                  Json.Obj
                    [ ("client_ms", Json.Float d.cd_client_cpu_ms);
                      ("server_ms", Json.Float d.cd_server_cpu_ms);
                      ("client_charges", Json.Int d.cd_client_cpu_charges);
                      ("server_charges", Json.Int d.cd_server_cpu_charges);
                      ("client_ledger", json_of_ledger d.cd_client_ledger);
                      ("server_ledger", json_of_ledger d.cd_server_ledger) ]
                ) ]
              @ (match d.cd_resumption with
                | None -> []
                | Some r -> [ ("resumption", json_of_resumption r) ])
              @
              if c.m_chain = "default" then []
              else [ ("chain", json_of_chain_levels d.cd_chain_levels) ]) ) ])

let json_of_farm_cell c =
  let base =
    [ ("id", Json.String c.f_id);
      ("key", Json.String c.f_key);
      ("kem", Json.String c.f_kem);
      ("sig", Json.String c.f_sig);
      ("scenario", Json.String c.f_scenario);
      ("profile", Json.String c.f_profile);
      ("policy", Json.String c.f_policy);
      ("utilization", Json.Float c.f_utilization);
      ("adv_fraction", Json.Float c.f_adv_fraction) ]
    @ if c.f_mix = "full" then [] else [ ("mix", Json.String c.f_mix) ]
  in
  match c.f_data with
  | Error msg ->
    Json.Obj (base @ [ ("error", Json.String msg); ("data", Json.Null) ])
  | Ok d ->
    Json.Obj
      (base
      @ [ ( "data",
            Json.Obj
              ([ ( "load",
                  Json.Obj
                    [ ("capacity_hs_s", Json.Float d.fd_capacity_hs_s);
                      ("offered_rate_hs_s", Json.Float d.fd_offered_rate);
                      ("window_s", Json.Float d.fd_window_s);
                      ("offered", Json.Int d.fd_offered);
                      ("completed", Json.Int d.fd_completed);
                      ("dropped", Json.Int d.fd_dropped);
                      ("unfinished", Json.Int d.fd_unfinished) ] );
                ( "latency_ms",
                  Json.Obj
                    [ ("handshake", json_of_dist d.fd_latency);
                      ("p999", Json.Float d.fd_latency_p999);
                      ("p99_ci95_lo", Json.Float d.fd_p99_ci_lo);
                      ("p99_ci95_hi", Json.Float d.fd_p99_ci_hi);
                      ("accept_wait", json_of_dist d.fd_wait) ] );
                ( "servers",
                  Json.Obj
                    [ ("cpu_ms", Json.Float d.fd_server_cpu_ms);
                      ("busy", Json.Float d.fd_server_busy);
                      ("ledger", json_of_ledger d.fd_server_ledger);
                      ( "completed",
                        Json.List
                          (List.map
                             (fun n -> Json.Int n)
                             d.fd_per_server_completed) ) ] );
                ( "adversarial",
                  Json.Obj
                    [ ("launched", Json.Int d.fd_adv_launched);
                      ("completed", Json.Int d.fd_adv_completed);
                      ("adv_client_bytes", Json.Int d.fd_adv_client_bytes);
                      ("adv_server_bytes", Json.Int d.fd_adv_server_bytes);
                      ("benign_client_bytes", Json.Int d.fd_benign_client_bytes);
                      ("benign_server_bytes", Json.Int d.fd_benign_server_bytes)
                    ] );
                ( "calibration",
                  Json.Obj
                    [ ("client_cpu_ms", Json.Float d.fd_cal_client_cpu_ms);
                      ("server_cpu_ms", Json.Float d.fd_cal_server_cpu_ms);
                      ( "adv_server_cpu_ms",
                        Json.Float d.fd_cal_adv_server_cpu_ms ) ] ) ]
              @
              if c.f_mix = "full" then []
              else
                [ ( "resumption",
                    Json.Obj
                      [ ("completed", Json.Int d.fd_resumed_completed);
                        ("early_data_bytes", Json.Int d.fd_early_data_bytes)
                      ] ) ]) ) ])

let to_json_string a =
  Json.to_string
    (Json.Obj
       ([ ("schema", Json.String schema_version);
          ("seed", Json.String a.a_seed);
          ( "experiments",
            Json.List (List.map (fun e -> Json.String e) a.a_experiments) );
          ("cells", Json.List (List.map json_of_cell a.a_cells)) ]
       (* only farm campaigns carry the key: artifacts of the existing
          campaigns stay byte-identical under schema /1 *)
       @
       match a.a_farm_cells with
       | [] -> []
       | fcs ->
         [ ("farm_cells", Json.List (List.map json_of_farm_cell fcs)) ]))

(* ---- the parsed (comparison) side ---------------------------------------- *)

type p_cell = {
  p_id : string;
  p_key : string;
  p_kem : string;
  p_sig : string;
  p_scenario : string;
  p_buffering : string;
  p_standard : bool;
  p_error : string option;
  p_metrics : (string * float) list; (* flattened numeric leaves, in order *)
}

type p_farm_cell = {
  pf_id : string;
  pf_key : string;
  pf_kem : string;
  pf_sig : string;
  pf_scenario : string;
  pf_profile : string;
  pf_policy : string;
  pf_error : string option;
  pf_metrics : (string * float) list;
}

type p_artifact = {
  p_seed : string;
  p_experiments : string list;
  p_cells : p_cell list;
  p_farm_cells : p_farm_cell list;
}

let rec flatten prefix j acc =
  let join k = if prefix = "" then k else prefix ^ "." ^ k in
  match j with
  | Json.Obj fields ->
    List.fold_left (fun acc (k, v) -> flatten (join k) v acc) acc fields
  | Json.List items ->
    List.fold_left
      (fun (acc, i) v -> (flatten (join (string_of_int i)) v acc, i + 1))
      (acc, 0) items
    |> fst
  | Json.Int n -> (prefix, float_of_int n) :: acc
  | Json.Float f -> (prefix, f) :: acc
  | Json.Null -> (prefix, nan) :: acc
  | Json.Bool _ | Json.String _ -> acc

let ( let* ) = Result.bind

let req what o =
  match o with
  | Some v -> Ok v
  | None -> Error ("metrics artifact: missing or ill-typed " ^ what)

let parse_cell j =
  let str k = Json.to_str (Json.member k j) in
  let* id = req "cell id" (str "id") in
  let* key = req "cell key" (str "key") in
  let* kem = req "cell kem" (str "kem") in
  let* sig_ = req "cell sig" (str "sig") in
  let* scenario = req "cell scenario" (str "scenario") in
  let* buffering = req "cell buffering" (str "buffering") in
  let* standard = req "cell standard" (Json.to_bool (Json.member "standard" j)) in
  let error = Json.to_str (Json.member "error" j) in
  let metrics =
    match Json.member "data" j with
    | Some (Json.Obj _ as data) -> List.rev (flatten "data" data [])
    | _ -> []
  in
  Ok
    { p_id = id;
      p_key = key;
      p_kem = kem;
      p_sig = sig_;
      p_scenario = scenario;
      p_buffering = buffering;
      p_standard = standard;
      p_error = error;
      p_metrics = metrics }

let rec collect_cells = function
  | [] -> Ok []
  | j :: rest ->
    let* c = parse_cell j in
    let* cs = collect_cells rest in
    Ok (c :: cs)

let parse_farm_cell j =
  let str k = Json.to_str (Json.member k j) in
  let* id = req "farm cell id" (str "id") in
  let* key = req "farm cell key" (str "key") in
  let* kem = req "farm cell kem" (str "kem") in
  let* sig_ = req "farm cell sig" (str "sig") in
  let* scenario = req "farm cell scenario" (str "scenario") in
  let* profile = req "farm cell profile" (str "profile") in
  let* policy = req "farm cell policy" (str "policy") in
  let error = str "error" in
  let metrics =
    match Json.member "data" j with
    | Some (Json.Obj _ as data) -> List.rev (flatten "data" data [])
    | _ -> []
  in
  Ok
    { pf_id = id;
      pf_key = key;
      pf_kem = kem;
      pf_sig = sig_;
      pf_scenario = scenario;
      pf_profile = profile;
      pf_policy = policy;
      pf_error = error;
      pf_metrics = metrics }

let rec collect_farm_cells = function
  | [] -> Ok []
  | j :: rest ->
    let* c = parse_farm_cell j in
    let* cs = collect_farm_cells rest in
    Ok (c :: cs)

let of_json_string s =
  let* j = Json.parse s in
  let* schema = req "schema" (Json.to_str (Json.member "schema" j)) in
  if schema <> schema_version then
    Error
      (Printf.sprintf "unsupported metrics schema %S (this build reads %S)"
         schema schema_version)
  else
    let* seed = req "seed" (Json.to_str (Json.member "seed" j)) in
    let* experiments = req "experiments" (Json.to_list (Json.member "experiments" j)) in
    let* experiments =
      List.fold_left
        (fun acc e ->
          let* acc = acc in
          let* name = req "experiment name" (Json.to_str (Some e)) in
          Ok (name :: acc))
        (Ok []) experiments
      |> Result.map List.rev
    in
    let* cells = req "cells" (Json.to_list (Json.member "cells" j)) in
    let* cells = collect_cells cells in
    (* absent for every pre-farm artifact; never required *)
    let* farm_cells =
      match Json.member "farm_cells" j with
      | None -> Ok []
      | Some fj ->
        let* items = req "farm_cells" (Json.to_list (Some fj)) in
        collect_farm_cells items
    in
    Ok
      { p_seed = seed;
        p_experiments = experiments;
        p_cells = cells;
        p_farm_cells = farm_cells }

(* ---- diffing two artifacts ----------------------------------------------- *)

let both_nan a b = Float.is_nan a && Float.is_nan b

let rel_delta a b =
  if both_nan a b || a = b then 0.
  else
    Float.abs (a -. b)
    /. Float.max (Float.max (Float.abs a) (Float.abs b)) 1e-9

(* shared cell-matching core of [diff]: both cell kinds reduce to
   (id, key, error, metrics) views and get identical treatment *)
let diff_views ~rel_tol ~issue base_cells cand_cells =
  let issue fmt = Printf.ksprintf issue fmt in
  let index =
    let h = Hashtbl.create (List.length cand_cells) in
    List.iter
      (fun ((id, _, _, _) as c) -> Hashtbl.replace h id c)
      cand_cells;
    h
  in
  let base_ids = Hashtbl.create (List.length base_cells) in
  List.iter (fun (id, _, _, _) -> Hashtbl.replace base_ids id ()) base_cells;
  List.iter
    (fun (b_id, b_key, b_error, b_metrics) ->
      match Hashtbl.find_opt index b_id with
      | None -> issue "%s: cell missing from candidate" b_key
      | Some (_, _, c_error, c_metrics) -> (
        match (b_error, c_error) with
        | Some _, Some _ -> () (* both failed; messages may differ *)
        | Some _, None -> issue "%s: failed in baseline, ok in candidate" b_key
        | None, Some _ -> issue "%s: ok in baseline, failed in candidate" b_key
        | None, None ->
          let cm = Hashtbl.create (List.length c_metrics) in
          List.iter (fun (k, v) -> Hashtbl.replace cm k v) c_metrics;
          List.iter
            (fun (k, bv) ->
              match Hashtbl.find_opt cm k with
              | None -> issue "%s: metric %s missing from candidate" b_key k
              | Some cv ->
                let rel = rel_delta bv cv in
                if not (rel <= rel_tol) then
                  issue "%s: %s %s vs %s (%.2f%% apart, tol %.2f%%)" b_key k
                    (Json.float_repr bv) (Json.float_repr cv) (100. *. rel)
                    (100. *. rel_tol))
            b_metrics;
          List.iter
            (fun (k, _) ->
              if not (List.mem_assoc k b_metrics) then
                issue "%s: metric %s missing from baseline" b_key k)
            c_metrics))
    base_cells;
  List.iter
    (fun (id, key, _, _) ->
      if not (Hashtbl.mem base_ids id) then
        issue "%s: cell missing from baseline" key)
    cand_cells

let diff ?(rel_tol = 0.) base cand =
  let issues = ref [] in
  let issue fmt = Printf.ksprintf (fun s -> issues := s :: !issues) fmt in
  if base.p_seed <> cand.p_seed then
    issue "seed mismatch: %S vs %S" base.p_seed cand.p_seed;
  let issue s = issue "%s" s in
  let cell_view c = (c.p_id, c.p_key, c.p_error, c.p_metrics) in
  let farm_view c = (c.pf_id, c.pf_key, c.pf_error, c.pf_metrics) in
  diff_views ~rel_tol ~issue
    (List.map cell_view base.p_cells)
    (List.map cell_view cand.p_cells);
  diff_views ~rel_tol ~issue
    (List.map farm_view base.p_farm_cells)
    (List.map farm_view cand.p_farm_cells);
  List.rev !issues

(* ---- the paper-drift gate ------------------------------------------------ *)

(* the same relative-error form as the calibration tests in
   test/test_core.ml: small paper values are floored at 0.05 ms so a
   0.01 ms absolute slip on a 0.2 ms cell doesn't read as 5 % drift *)
let paper_rel ~paper sim = Float.abs (sim -. paper) /. Float.max paper 0.05

(* tolerances track test_core.ml's calibration assertions for Table 2;
   Table 4 medians under loss/jitter scenarios carry more spread (the
   paper's own numbers include outliers like p256 @ lte-m), so the gate
   is looser there *)
let tol_t2_latency = 0.30
let tol_t2a_bytes = 0.10
let tol_t2b_server_bytes = 0.25

(* handshakes/min goes as the reciprocal of the iteration time, so a
   latency within the 30 % band can move the count by up to
   0.30 / (1 - 0.30) = 43 % — the count band must be at least that *)
let tol_t2_count = 0.45
let tol_t4 = 0.45

(* only the deterministic impairments are gated: the bandwidth and
   delay medians are pinned by serialization time and the RTT, and the
   simulator tracks the paper well inside the band. The random-loss
   columns (loss, lte-m, 5g) reproduce the paper's *qualitative*
   findings (see test_core.ml) but not its medians — large-flight rows
   like SPHINCS+ under 10 % loss land 5-10x away in either direction,
   as do several of the paper's own internally inconsistent loss cells
   — so gating them would mean tolerances too wide to catch drift *)
let t4_col (r : Paper_data.t4_row) = function
  | "bandwidth" -> Some r.Paper_data.bandwidth
  | "delay" -> Some r.Paper_data.delay
  | _ -> None

let against_paper a =
  let checked = ref 0 in
  let issues = ref [] in
  let check c ~tol ~what ~paper sim =
    if not (Float.is_nan paper) then begin
      Stdlib.incr checked;
      let rel = paper_rel ~paper sim in
      if not (rel <= tol) then
        issues :=
          Printf.sprintf "%s: %s sim %.4g vs paper %.4g (%.0f%% off, tol %.0f%%)"
            c.p_key what sim paper (100. *. rel) (100. *. tol)
          :: !issues
    end
  in
  let get c name = Option.value ~default:nan (List.assoc_opt name c.p_metrics) in
  List.iter
    (fun c ->
      if c.p_standard && c.p_buffering = "push" && c.p_error = None then begin
        (match
           if c.p_sig = "rsa:2048" && c.p_scenario = "none" then
             Paper_data.find2a c.p_kem
           else None
         with
        | Some r ->
          check c ~tol:tol_t2_latency ~what:"part A p50 (Table 2a)"
            ~paper:r.Paper_data.part_a
            (get c "data.latency_ms.part_a.p50");
          check c ~tol:tol_t2_latency ~what:"part B p50 (Table 2a)"
            ~paper:r.Paper_data.part_b
            (get c "data.latency_ms.part_b.p50");
          check c ~tol:tol_t2_count ~what:"handshakes/min (Table 2a)"
            ~paper:(r.Paper_data.total_k *. 1000.)
            (get c "data.handshakes_per_minute");
          check c ~tol:tol_t2a_bytes ~what:"client bytes p50 (Table 2a)"
            ~paper:(float_of_int r.Paper_data.client_b)
            (get c "data.wire.client_bytes.p50");
          check c ~tol:tol_t2a_bytes ~what:"server bytes p50 (Table 2a)"
            ~paper:(float_of_int r.Paper_data.server_b)
            (get c "data.wire.server_bytes.p50")
        | None -> ());
        (match
           if c.p_kem = "x25519" && c.p_scenario = "none" then
             Paper_data.find2b c.p_sig
           else None
         with
        | Some r ->
          check c ~tol:tol_t2_latency ~what:"part B p50 (Table 2b)"
            ~paper:r.Paper_data.part_b
            (get c "data.latency_ms.part_b.p50");
          check c ~tol:tol_t2b_server_bytes ~what:"server bytes p50 (Table 2b)"
            ~paper:(float_of_int r.Paper_data.server_b)
            (get c "data.wire.server_bytes.p50")
        | None -> ());
        (match
           if c.p_scenario = "none" then None
           else if c.p_sig = "rsa:2048" then
             Option.bind (Paper_data.find4a c.p_kem) (fun r ->
                 Option.map (fun v -> ("Table 4a", v)) (t4_col r c.p_scenario))
           else if c.p_kem = "x25519" then
             Option.bind (Paper_data.find4b c.p_sig) (fun r ->
                 Option.map (fun v -> ("Table 4b", v)) (t4_col r c.p_scenario))
           else None
         with
        | Some (table, paper) ->
          check c ~tol:tol_t4
            ~what:(Printf.sprintf "total p50 (%s, %s)" table c.p_scenario)
            ~paper
            (get c "data.latency_ms.total.p50")
        | None -> ())
      end)
    a.p_cells;
  (!checked, List.rev !issues)
