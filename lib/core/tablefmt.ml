(* Shared plain-text table rendering, used by Report and Catalog so
   every campaign output formats failed cells and sim/paper pairs the
   same way. *)

let em_dash = "\xe2\x80\x94"

let dash n = String.make (max 0 (n - 1)) ' ' ^ em_dash

let fmt_paper v = if Float.is_nan v then "   -  " else Printf.sprintf "%6.2f" v

let buf_table title header rows =
  let b = Buffer.create 4096 in
  Buffer.add_string b (title ^ "\n");
  Buffer.add_string b (header ^ "\n");
  Buffer.add_string b (String.make (String.length header) '-' ^ "\n");
  List.iter (fun r -> Buffer.add_string b (r ^ "\n")) rows;
  Buffer.contents b
