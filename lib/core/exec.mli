(** Campaign execution context: domain count, optional result cache,
    and progress narration. Every campaign in {!Report}, {!Deviation},
    {!Whitebox}, {!Amplification} and {!Catalog} accepts one; the
    default {!sequential} reproduces the historical single-core
    behaviour bit for bit. *)

type t = {
  jobs : int;  (** domains used per grid, including the caller's *)
  cache : Result_cache.t option;
  progress : bool;  (** per-cell timing lines on stderr *)
}

val sequential : t
(** [jobs = 1], no cache, silent — the default everywhere. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], at least 1. *)

val create : ?jobs:int -> ?cache_dir:string -> ?progress:bool -> unit -> t
(** [jobs] defaults to {!default_jobs}; [cache_dir] opens (creating if
    needed) a {!Result_cache} there; [progress] defaults to [false]. *)

val cells : t -> Experiment.spec list -> Experiment.outcome list
(** Evaluate a grid: each cell is served from the cache when possible,
    executed otherwise, sharded across [jobs] domains. Results are in
    input order and bit-identical to [List.map Experiment.run_spec]
    regardless of [jobs] (cells derive independent deterministic
    seeds). *)

val cell : t -> Experiment.spec -> Experiment.outcome

val cache_summary : t -> string option
(** One-line hit/miss totals, when a cache is attached. *)
