(** Campaign execution context: domain count, optional result cache,
    per-cell retry budget, and progress narration. Every campaign in
    {!Report}, {!Deviation}, {!Whitebox}, {!Amplification} and
    {!Catalog} accepts one; the default {!sequential} reproduces the
    historical single-core behaviour bit for bit.

    Execution is fault-tolerant end to end: a cell whose experiment
    raises (e.g. zero completed handshakes under 10 % loss) is retried
    with a deterministically reseeded DRBG, and if the attempt budget is
    exhausted the campaign records an {!cell_error} for that cell and
    keeps going — renderers mark the failed cell instead of aborting,
    and the health counters report what happened. *)

type cell_error = {
  ce_message : string;  (** [Printexc.to_string] of the last exception *)
  ce_backtrace : string;  (** backtrace of the last failing attempt *)
  ce_attempts : int;  (** attempts made, [>= 1] *)
  ce_elapsed_s : float;  (** host seconds spent across all attempts *)
}

type cell_result = (Experiment.outcome, cell_error) result

type counters = {
  c_ok : int Atomic.t;
  c_retried : int Atomic.t;
  c_failed : int Atomic.t;
  c_started : float;
}
(** Campaign health, accumulated across every {!cells} call on this
    context (domain-safe). *)

type t = {
  jobs : int;  (** domains used per grid, including the caller's *)
  cache : Result_cache.t option;
  progress : bool;  (** per-cell timing lines on stderr *)
  retries : int;  (** extra attempts granted to a failing cell *)
  fail_cell : string option;
      (** fault injection for tests/CI: any cell whose
          {!Experiment.spec_label} contains this substring raises on
          every attempt. Defaults from [PQTLS_FAIL_CELL]. *)
  counters : counters;
  trace : Trace.Store.t option;
      (** when set, every executed cell records its trace into a
          per-cell buffer; buffers are merged into the store in spec
          order after each {!cells} call, bit-identical whatever
          [jobs]. Cache hits contribute empty labelled buffers. *)
  metrics : Metrics.t;
      (** always-on observability: per-cell distribution summaries
          recorded in spec order after each {!cells} call (deduplicated
          on the spec fingerprint, so the artifact is bit-identical
          whatever [jobs]), plus volatile self-telemetry — the
          [cells_executed] / [cells_from_cache] counters and the
          [cell_wall_s] series feeding {!health_summary}. *)
}

val sequential : t
(** [jobs = 1], no cache, silent, one retry — the default everywhere. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], at least 1. *)

val create :
  ?jobs:int ->
  ?cache_dir:string ->
  ?progress:bool ->
  ?retries:int ->
  ?fail_cell:string ->
  ?trace:Trace.Store.t ->
  unit ->
  t
(** [jobs] defaults to {!default_jobs}; [cache_dir] opens (creating if
    needed) a {!Result_cache} there; [progress] defaults to [false];
    [retries] defaults to [1]; [fail_cell] defaults to the
    [PQTLS_FAIL_CELL] environment variable (unset = no injection);
    [trace] collects per-cell traces (see the field doc). *)

val cells : t -> Experiment.spec list -> cell_result list
(** Evaluate a grid: each cell is served from the cache when possible,
    executed otherwise, sharded across [jobs] domains. Results are in
    input order and bit-identical regardless of [jobs]: cells derive
    independent deterministic seeds, and retry attempt [k] reruns the
    cell with seed ["<seed>#retry<k>"], so even retried and failed cells
    are a pure function of the spec and the budget. A failing cell
    yields [Error] (never cached); completed cells are unaffected. *)

val cell : t -> Experiment.spec -> cell_result

type farm_cell_result = (Experiment.farm_outcome, cell_error) result

val farm_cells : t -> Experiment.farm_spec list -> farm_cell_result list
(** {!cells} for server-farm grids: same cache (separate [.farm]
    entries), same retry reseeding through [fa_seed], same fault
    injection (matched against {!Experiment.farm_spec_label}), and farm
    summaries recorded via {!Metrics.record_farm_cell} in spec order.
    Farm cells are never traced: one cell spans thousands of handshakes,
    so per-event buffers belong to the single-pair campaigns. *)

val ok_count : t -> int
(** Cells that completed (first try, retry, or cache hit). *)

val retried_count : t -> int
(** Completed cells that needed more than one attempt. *)

val failed_count : t -> int
(** Cells that exhausted the attempt budget. *)

val cache_summary : t -> string option
(** One-line hit/miss totals, when a cache is attached. *)

val health_summary : t -> string
(** One line: cells ok / retried / failed, cache hits when a cache is
    attached, wall time since the context was created, fresh-vs-cached
    cell counts, and total / max per-cell wall time. Wall time is host
    time — print this to stderr to keep reports deterministic. *)
