(** Small numeric helpers used by every evaluation. *)

val median : float list -> float
(** @raise Invalid_argument on the empty list. *)

val mean : float list -> float
val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [0,1], linear interpolation. *)

val min_max : float list -> float * float
val median_int : int list -> float

val stddev : float list -> float
(** Sample standard deviation (n-1 denominator); [0.] for a singleton.
    @raise Invalid_argument on the empty list. *)

val percentiles : float list -> float list -> float list
(** [percentiles ps xs] evaluates every [p] in [ps] against one shared
    sort of [xs] — the same linear interpolation as {!percentile}, for
    the full p5..p99 ladder of a metrics distribution. *)

val bootstrap_ci :
  ?resamples:int ->
  ?confidence:float ->
  seed:string ->
  (float list -> float) ->
  float list ->
  float * float
(** [bootstrap_ci ~seed stat xs] is a deterministic percentile-bootstrap
    confidence interval for [stat] over [xs]: resampling indices come
    from a {!Crypto.Drbg} seeded with [seed], so the same inputs give
    the same interval on every machine and domain. Defaults: 200
    resamples, 95 % confidence. A singleton collapses to [(v, v)]. *)
