let percentile p xs =
  match List.sort Float.compare xs with
  | [] -> invalid_arg "Stats.percentile: empty"
  | sorted ->
    let a = Array.of_list sorted in
    let n = Array.length a in
    if n = 1 then a.(0)
    else begin
      let pos = p *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor pos) in
      let hi = min (n - 1) (lo + 1) in
      let frac = pos -. float_of_int lo in
      a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
    end

let median xs = percentile 0.5 xs

let mean = function
  | [] -> invalid_arg "Stats.mean: empty"
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let min_max = function
  | [] -> invalid_arg "Stats.min_max: empty"
  | x :: rest ->
    List.fold_left (fun (lo, hi) v -> (Float.min lo v, Float.max hi v)) (x, x) rest

let median_int xs = median (List.map float_of_int xs)

let stddev = function
  | [] -> invalid_arg "Stats.stddev: empty"
  | [ _ ] -> 0.
  | xs ->
    let m = mean xs in
    let n = float_of_int (List.length xs) in
    sqrt
      (List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs
      /. (n -. 1.))

let percentiles ps xs =
  match List.sort Float.compare xs with
  | [] -> invalid_arg "Stats.percentiles: empty"
  | sorted ->
    let a = Array.of_list sorted in
    let n = Array.length a in
    List.map
      (fun p ->
        if n = 1 then a.(0)
        else begin
          let pos = p *. float_of_int (n - 1) in
          let lo = int_of_float (Float.floor pos) in
          let hi = min (n - 1) (lo + 1) in
          let frac = pos -. float_of_int lo in
          a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
        end)
      ps

let bootstrap_ci ?(resamples = 200) ?(confidence = 0.95) ~seed stat = function
  | [] -> invalid_arg "Stats.bootstrap_ci: empty"
  | [ x ] ->
    let v = stat [ x ] in
    (v, v)
  | xs ->
    let a = Array.of_list xs in
    let n = Array.length a in
    let rng = Crypto.Drbg.create ~seed:("stats-bootstrap/" ^ seed) in
    let stats =
      List.init resamples (fun _ ->
          stat (List.init n (fun _ -> a.(Crypto.Drbg.uniform rng n))))
    in
    let alpha = (1. -. confidence) /. 2. in
    match percentiles [ alpha; 1. -. alpha ] stats with
    | [ lo; hi ] -> (lo, hi)
    | _ -> assert false
