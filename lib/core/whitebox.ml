type row = {
  level : int;
  kem : string;
  sa : string;
  handshakes_per_s : float;
  server_cpu_ms : float;
  client_cpu_ms : float;
  server_pkts : int;
  client_pkts : int;
  server_libs : (string * float) list;
  client_libs : (string * float) list;
}

let paper_pairs =
  [ (1, "x25519", "rsa:2048");
    (1, "kyber512", "dilithium2");
    (1, "bikel1", "dilithium2");
    (1, "kyber512", "sphincs128");
    (1, "hqc128", "falcon512");
    (1, "p256_kyber512", "p256_dilithium2");
    (3, "kyber768", "dilithium3");
    (5, "kyber1024", "dilithium5") ]

let spec_of ?(seed = "whitebox") (_, kem_name, sa_name) =
  Experiment.spec ~seed
    (Pqc.Registry.find_kem kem_name)
    (Pqc.Registry.find_sig sa_name)

let row_of (level, kem_name, sa_name) o =
  let pkts f = int_of_float (Stats.median_int (List.map f o.Experiment.samples)) in
  { level;
    kem = kem_name;
    sa = sa_name;
    handshakes_per_s = float_of_int o.Experiment.handshakes_per_minute /. 60.;
    server_cpu_ms = o.Experiment.server_cpu_ms;
    client_cpu_ms = o.Experiment.client_cpu_ms;
    server_pkts = pkts (fun s -> s.Experiment.server_pkts);
    client_pkts = pkts (fun s -> s.Experiment.client_pkts);
    server_libs = o.Experiment.server_ledger;
    client_libs = o.Experiment.client_ledger }

let rows ?seed ?(exec = Exec.sequential) pairs =
  let results = Exec.cells exec (List.map (spec_of ?seed) pairs) in
  List.map2
    (fun p r -> match r with Ok o -> Some (row_of p o) | Error _ -> None)
    pairs results

let measure ?seed pair = row_of pair (Experiment.run_spec (spec_of ?seed pair))

let table ?seed ?exec () = rows ?seed ?exec paper_pairs

(* Trace-vs-ledger cross-check: the ledger is written by Host.charge and
   every charge also emits exactly one cpu span tagged with its library,
   so the two per-library CPU shares must agree to float rounding. A
   disagreement means an instrumentation path was missed. *)

type trace_check = {
  tc_side : string;
  tc_lib : string;
  tc_whitebox : float;
  tc_trace : float;
}

let side_checks side ledger trace_shares =
  let libs =
    List.sort_uniq compare (List.map fst ledger @ List.map fst trace_shares)
  in
  let get l assoc = Option.value ~default:0. (List.assoc_opt l assoc) in
  List.map
    (fun lib ->
      { tc_side = side;
        tc_lib = lib;
        tc_whitebox = get lib ledger;
        tc_trace = get lib trace_shares })
    libs

let trace_checks outcome buf =
  let shares = Trace.Summary.cpu_shares buf in
  let of_track track = Option.value ~default:[] (List.assoc_opt track shares) in
  side_checks "client" outcome.Experiment.client_ledger (of_track "client")
  @ side_checks "server" outcome.Experiment.server_ledger (of_track "server")

let max_trace_delta checks =
  List.fold_left
    (fun acc c -> Float.max acc (Float.abs (c.tc_whitebox -. c.tc_trace)))
    0. checks

let render_trace_checks title checks =
  let b = Buffer.create 512 in
  Printf.bprintf b "%s\n" title;
  Printf.bprintf b "%-8s %-10s %10s %10s %8s\n" "side" "library"
    "whitebox" "trace" "delta";
  List.iter
    (fun c ->
      Printf.bprintf b "%-8s %-10s %9.2f%% %9.2f%% %8.4f\n" c.tc_side c.tc_lib
        (100. *. c.tc_whitebox) (100. *. c.tc_trace)
        (Float.abs (c.tc_whitebox -. c.tc_trace)))
    checks;
  Printf.bprintf b "max |whitebox - trace| = %.6f\n" (max_trace_delta checks);
  Buffer.contents b
