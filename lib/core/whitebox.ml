type row = {
  level : int;
  kem : string;
  sa : string;
  handshakes_per_s : float;
  server_cpu_ms : float;
  client_cpu_ms : float;
  server_pkts : int;
  client_pkts : int;
  server_libs : (string * float) list;
  client_libs : (string * float) list;
}

let paper_pairs =
  [ (1, "x25519", "rsa:2048");
    (1, "kyber512", "dilithium2");
    (1, "bikel1", "dilithium2");
    (1, "kyber512", "sphincs128");
    (1, "hqc128", "falcon512");
    (1, "p256_kyber512", "p256_dilithium2");
    (3, "kyber768", "dilithium3");
    (5, "kyber1024", "dilithium5") ]

let spec_of ?(seed = "whitebox") (_, kem_name, sa_name) =
  Experiment.spec ~seed
    (Pqc.Registry.find_kem kem_name)
    (Pqc.Registry.find_sig sa_name)

let row_of (level, kem_name, sa_name) o =
  let pkts f = int_of_float (Stats.median_int (List.map f o.Experiment.samples)) in
  { level;
    kem = kem_name;
    sa = sa_name;
    handshakes_per_s = float_of_int o.Experiment.handshakes_per_minute /. 60.;
    server_cpu_ms = o.Experiment.server_cpu_ms;
    client_cpu_ms = o.Experiment.client_cpu_ms;
    server_pkts = pkts (fun s -> s.Experiment.server_pkts);
    client_pkts = pkts (fun s -> s.Experiment.client_pkts);
    server_libs = o.Experiment.server_ledger;
    client_libs = o.Experiment.client_ledger }

let rows ?seed ?(exec = Exec.sequential) pairs =
  let results = Exec.cells exec (List.map (spec_of ?seed) pairs) in
  List.map2
    (fun p r -> match r with Ok o -> Some (row_of p o) | Error _ -> None)
    pairs results

let measure ?seed pair = row_of pair (Experiment.run_spec (spec_of ?seed pair))

let table ?seed ?exec () = rows ?seed ?exec paper_pairs
