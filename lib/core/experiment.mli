(** One measurement run: sequential TLS handshakes for a fixed KA x SA
    pair under a fixed network scenario, for (virtual) 60 seconds —
    exactly the paper's campaign unit (section 4).

    Runs are deterministic: the same parameters and seed give the same
    samples bit for bit. By default algorithms are the size-exact mocked
    ones (see {!Pqc.Kem.mocked}); pass [~real_crypto:true] to run the
    actual Kyber/Dilithium/RSA/ECC implementations (slower in host time,
    identical in every simulated quantity — asserted by the test suite). *)

type sample = {
  part_a_ms : float;  (** CH -> SH on the tap *)
  part_b_ms : float;  (** SH -> client Finished *)
  total_ms : float;  (** CH -> client Finished *)
  iteration_ms : float;  (** full loop iteration including harness gap *)
  client_bytes : int;  (** wire bytes incl. headers, up to completion *)
  server_bytes : int;
  client_pkts : int;
  server_pkts : int;
  retransmissions : int;  (** both directions, any cause *)
  fast_retransmissions : int;  (** dup-ACK-driven subset *)
  timeout_retransmissions : int;  (** RTO / SYN / SYN-ACK subset *)
  rtt_samples : int;  (** completed round-trip measurements, both sides *)
  resumed : bool;  (** this connection resumed with a PSK ticket *)
  early_data_bytes : int;  (** 0-RTT bytes the server accepted *)
}

type outcome = {
  kem_name : string;
  sig_name : string;
  scenario_name : string;
  mix_name : string;  (** {!Mix} this cell ran under ("full" historically) *)
  chain_name : string;
      (** {!Tls.Chain_profile} served ("default" = leaf-only) *)
  chain_levels : (string * string * int * float) list;
      (** per-level placement breakdown of the served chain, leaf first:
          (level name, issuing SA, CertificateEntry bytes, verify ms) *)
  buffering : Tls.Config.buffering;
  samples : sample list;
  handshakes_per_minute : int;
      (** per-minute handshake rate: the raw count scaled by
          [60 / duration_s], or extrapolated from the mean iteration
          time when the sample cap was hit first. *)
  client_cpu_ms : float;  (** mean CPU cost per handshake, all libraries *)
  server_cpu_ms : float;
  client_ledger : (string * float) list;
      (** per-library share of client CPU, fraction of total, desc. *)
  server_ledger : (string * float) list;
  client_cpu_charges : int;
      (** CPU charge events on the host over the whole run — harness
          scheduler pressure, surfaced in the metrics artifact *)
  server_cpu_charges : int;
}

type spec = {
  sp_buffering : Tls.Config.buffering;
  sp_scenario : Scenario.t;
  sp_duration_s : float;
  sp_max_samples : int option;
  sp_seed : string;
  sp_real_crypto : bool;
  sp_tcp_config : Netsim.Tcp.config;
  sp_buffer_limit : int;
  sp_wrong_key_share : bool;
  sp_mix : Mix.t;
      (** workload mix: the first connection is always full, later ones
          resume (optionally with 0-RTT) per the mix's resumed fraction;
          {!Mix.full} reproduces pre-mix cells bit for bit *)
  sp_chain : Tls.Chain_profile.t;
      (** certificate-hierarchy shape the server deploys;
          {!Tls.Chain_profile.default} reproduces pre-chain cells bit
          for bit *)
  sp_kem : Pqc.Kem.t;
  sp_sig : Pqc.Sigalg.t;
}
(** The full parameter set of one campaign cell — what {!run} closes
    over, reified so grids can be built first and executed later (in
    parallel, or against the result cache). *)

val spec :
  ?buffering:Tls.Config.buffering ->
  ?scenario:Scenario.t ->
  ?duration_s:float ->
  ?max_samples:int ->
  ?seed:string ->
  ?real_crypto:bool ->
  ?tcp_config:Netsim.Tcp.config ->
  ?buffer_limit:int ->
  ?wrong_key_share:bool ->
  ?mix:Mix.t ->
  ?chain:Tls.Chain_profile.t ->
  Pqc.Kem.t ->
  Pqc.Sigalg.t ->
  spec
(** Same defaults as {!run}. *)

val run_spec : ?trace:Trace.Buf.t -> spec -> outcome
(** Execute one cell. Deterministic in the spec alone: two calls with
    equal specs return structurally identical outcomes, on any domain.
    [?trace] collects every event the cell emits (crypto cpu spans, TCP
    instants, wire occupancy, handshake/message/phase spans) into the
    given buffer via the domain-local sink; the outcome itself is
    unaffected, bit for bit.
    @raise Invalid_argument if not a single handshake completed within
    the duration (possible under heavy impairment, or with a sample /
    duration budget of zero) — the campaign layer ({!Exec}) turns this
    into a retried, then recorded, cell failure. *)

val spec_label : spec -> string
(** Short human-readable cell name for progress lines. *)

val spec_fingerprint : spec -> string
(** Stable rendering of every outcome-relevant field, used as the
    pre-image of {!Result_cache} keys. Versioned: bump the leading tag
    when the meaning of a field changes. *)

val run :
  ?buffering:Tls.Config.buffering ->
  ?scenario:Scenario.t ->
  ?duration_s:float ->
  ?max_samples:int ->
  ?seed:string ->
  ?real_crypto:bool ->
  ?tcp_config:Netsim.Tcp.config ->
  ?buffer_limit:int ->
  ?wrong_key_share:bool ->
  ?mix:Mix.t ->
  ?chain:Tls.Chain_profile.t ->
  Pqc.Kem.t ->
  Pqc.Sigalg.t ->
  outcome
(** Defaults: optimized buffering, no emulation, 60 virtual seconds,
    mocked crypto, Linux-default TCP. The default sample cap is 40 for
    deterministic loss-free runs and 200 under loss; the 60 s budget and
    the paper's handshake counts are preserved by extrapolating from the
    mean iteration time when the cap is reached first. *)

val median_of : (sample -> float) -> outcome -> float
val median_bytes : (sample -> int) -> outcome -> int

(** {1 Server-farm cells (Table 5)}

    Open-loop N-client x M-server campaigns: arrivals from a
    {!Netsim.Workload} profile at a rate set as a fraction
    ([fa_utilization]) of the farm's CPU-sustainable capacity, dispatched
    by a {!Netsim.Balancer} policy across [fa_servers] single-core hosts
    with per-server admission control. Capacity is calibrated per cell
    from a short closed-loop run of the same KA x SA x scenario with the
    measurement-harness overhead removed. *)

type farm_spec = {
  fa_kem : Pqc.Kem.t;
  fa_sig : Pqc.Sigalg.t;
  fa_scenario : Scenario.t;
  fa_profile : string;  (** {!Netsim.Workload} name *)
  fa_policy : string;  (** {!Netsim.Balancer} policy name *)
  fa_servers : int;
  fa_max_concurrent : int;
  fa_accept_queue : int;
  fa_utilization : float;  (** offered rate / calibrated capacity *)
  fa_duration_s : float;
  fa_max_connections : int;
      (** cap on total arrivals; enforced by shrinking the window so the
          profile shape is preserved *)
  fa_adv_fraction : float;
      (** section 5.5 at scale: fraction of arrivals that are
          adversarial clients negotiating [fa_adv_kem] *)
  fa_adv_kem : Pqc.Kem.t;
  fa_mix : Mix.t;
      (** workload mix: benign arrivals resume (with a shared pre-minted
          ticket) at the mix's resumed fraction; capacity is calibrated
          under the same mix. Adversarial arrivals never resume. *)
  fa_seed : string;
}

type farm_outcome = {
  fo_kem_name : string;
  fo_sig_name : string;
  fo_scenario_name : string;
  fo_profile : string;
  fo_policy : string;
  fo_servers : int;
  fo_utilization : float;
  fo_capacity_hs_s : float;  (** calibrated farm capacity, handshakes/s *)
  fo_offered_rate : float;  (** mean offered arrival rate, handshakes/s *)
  fo_window_s : float;  (** effective arrival window *)
  fo_offered : int;
  fo_completed : int;
  fo_dropped : int;  (** accept-queue overflows *)
  fo_unfinished : int;  (** still in flight at the drain horizon *)
  fo_latencies_ms : float list;
      (** arrival-to-Finished per completed connection, arrival order *)
  fo_wait_ms : float list;  (** arrival-to-admission, arrival order *)
  fo_server_cpu_ms : float;  (** summed over all server cores *)
  fo_server_busy : float;  (** fraction of total server core-time busy *)
  fo_server_ledger : (string * float) list;
  fo_per_server_completed : int list;
  fo_mix_name : string;
  fo_resumed_completed : int;  (** completed connections that resumed *)
  fo_early_data_bytes : int;  (** 0-RTT bytes accepted across the farm *)
  fo_adv_launched : int;
  fo_adv_completed : int;
  fo_adv_client_bytes : int;
  fo_adv_server_bytes : int;
  fo_benign_client_bytes : int;
  fo_benign_server_bytes : int;
  fo_cal_client_cpu_ms : float;
  fo_cal_server_cpu_ms : float;
  fo_cal_adv_server_cpu_ms : float;
}

val farm_spec :
  ?scenario:Scenario.t ->
  ?profile:string ->
  ?policy:string ->
  ?servers:int ->
  ?max_concurrent:int ->
  ?accept_queue:int ->
  ?utilization:float ->
  ?duration_s:float ->
  ?max_connections:int ->
  ?adv_fraction:float ->
  ?adv_kem:Pqc.Kem.t ->
  ?mix:Mix.t ->
  ?seed:string ->
  Pqc.Kem.t ->
  Pqc.Sigalg.t ->
  farm_spec
(** Defaults: no emulation, poisson arrivals, least-connections over 3
    servers, 64 in-service + 128 queued per server, 90 % utilization,
    a 1 s window capped at 1200 connections, no adversarial mix (the
    adversarial KEM defaults to the x25519 baseline — smallest client
    flight, maximal amplification).
    @raise Invalid_argument for unknown profile or policy names. *)

val run_farm_spec : farm_spec -> farm_outcome
(** Execute one farm cell. Deterministic in the spec alone, like
    {!run_spec}: arrivals, balancing, per-connection crypto and netem
    draws all derive from DRBG forks of [fa_seed].
    @raise Invalid_argument if not a single handshake completed. *)

val farm_spec_label : farm_spec -> string
val farm_spec_fingerprint : farm_spec -> string
