(** Text renderings of every table and figure in the paper's evaluation,
    with the published value printed next to each reproduced one.
    Each function runs the underlying campaign (virtual 60 s per cell)
    and returns the finished table as a string.

    Every campaign accepts an [exec] context ({!Exec.t}, default
    {!Exec.sequential}): the full cell grid is built first and evaluated
    through it, so [~exec:(Exec.create ~jobs:n ())] shards the campaign
    across [n] domains and an attached result cache makes re-runs
    incremental — with output bit-identical to the sequential run. *)

val table2a : ?seed:string -> ?exec:Exec.t -> unit -> string
val table2b : ?seed:string -> ?exec:Exec.t -> unit -> string

(** The Table-2 campaigns as machine-readable CSV (the paper's artifact
    format: columns mirror its latencies.csv plus the published values). *)

val table2a_csv : ?seed:string -> ?exec:Exec.t -> unit -> string

val table2b_csv : ?seed:string -> ?exec:Exec.t -> unit -> string
val table3 : ?seed:string -> ?exec:Exec.t -> unit -> string
val table4a : ?seed:string -> ?exec:Exec.t -> unit -> string
val table4b : ?seed:string -> ?exec:Exec.t -> unit -> string
val figure3 : ?seed:string -> ?exec:Exec.t -> unit -> string
val figure4 : ?seed:string -> ?exec:Exec.t -> unit -> string
val attack : ?seed:string -> ?exec:Exec.t -> unit -> string

val ablation_buffer : ?seed:string -> ?exec:Exec.t -> unit -> string
(** Extra (section 4 / 5.2 design lever): handshake latency as a
    function of the OpenSSL buffer limit, under both flight behaviours. *)

val ablation_cwnd : ?seed:string -> ?exec:Exec.t -> unit -> string
(** Extra (section 5.4's "tuning factor"): high-delay handshake latency
    as a function of the initial congestion window. *)

val ablation_hrr : ?seed:string -> ?exec:Exec.t -> unit -> string
(** Extra (section 2's "the 2-RTT fallback never occurred"): what that
    fallback would have cost — a wrong pre-computed key share forces a
    HelloRetryRequest round trip plus a second key generation. *)

val all : ?seed:string -> ?exec:Exec.t -> unit -> (string * string) list
(** Every artifact above as (name, rendering), in paper order. *)
