(** Text renderings of every table and figure in the paper's evaluation,
    with the published value printed next to each reproduced one.
    Each function runs the underlying campaign (virtual 60 s per cell)
    and returns the finished table as a string.

    Every campaign accepts an [exec] context ({!Exec.t}, default
    {!Exec.sequential}): the full cell grid is built first and evaluated
    through it, so [~exec:(Exec.create ~jobs:n ())] shards the campaign
    across [n] domains and an attached result cache makes re-runs
    incremental — with output bit-identical to the sequential run. *)

val table2a : ?seed:string -> ?exec:Exec.t -> unit -> string
val table2b : ?seed:string -> ?exec:Exec.t -> unit -> string

(** The Table-2 campaigns as machine-readable CSV (the paper's artifact
    format: columns mirror its latencies.csv plus the published values). *)

val table2a_csv : ?seed:string -> ?exec:Exec.t -> unit -> string

val table2b_csv : ?seed:string -> ?exec:Exec.t -> unit -> string
val table3 : ?seed:string -> ?exec:Exec.t -> unit -> string
val table4a : ?seed:string -> ?exec:Exec.t -> unit -> string
val table4b : ?seed:string -> ?exec:Exec.t -> unit -> string
val figure3 : ?seed:string -> ?exec:Exec.t -> unit -> string
val figure4 : ?seed:string -> ?exec:Exec.t -> unit -> string
val attack : ?seed:string -> ?exec:Exec.t -> unit -> string

val table5 : ?seed:string -> ?exec:Exec.t -> unit -> string
(** Beyond the paper, toward its "server farms would need" projections:
    sustainable handshake capacity and p50/p99/p999 tail latency of an
    N-client x M-server farm under open-loop poisson / ramp /
    flash-crowd arrival profiles, per KA x SA pair, plus the section 5.5
    adversarial client-mix analysis re-run at scale (amplification and
    CPU asymmetry at 70/90/99 % utilization). *)

val table5_smoke : ?seed:string -> ?exec:Exec.t -> unit -> string
(** The CI gate's Table 5: identical structure with the farm sizes cut
    (2 pairs, 2 profiles, hundreds of connections) for wall clock. *)

val table6 : ?seed:string -> ?exec:Exec.t -> unit -> string
(** Beyond the paper, section 2.2 made measurable: steady-state
    per-handshake cost under {!Mix} workload mixes (50/90/99 %
    resumption, optionally with 0-RTT), per KA x SA pair. Resumed
    connections run the wire-accurate psk_dhe_ke flow — no
    Certificate/CertificateVerify — so the hash-based outlier's server
    bytes collapse toward the KA-only cost as the resumed fraction
    grows, while the full-handshake columns stay comparable to
    Table 2. *)

val table6_smoke : ?seed:string -> ?exec:Exec.t -> unit -> string
(** The CI gate's Table 6: 2 pairs x 3 mixes x 12 samples. *)

val table7 : ?seed:string -> ?exec:Exec.t -> unit -> string
(** The signature-placement study ({!Placement.table7}): per-chain-profile
    full-chain wire size, verification CPU, handshake medians and the
    flights-to-deliver column, plus a per-level breakdown. *)

val table7_smoke : ?seed:string -> ?exec:Exec.t -> unit -> string
(** The CI gate's Table 7: 2 pairs x 3 chain shapes x 10 samples. *)

val ablation_buffer : ?seed:string -> ?exec:Exec.t -> unit -> string
(** Extra (section 4 / 5.2 design lever): handshake latency as a
    function of the OpenSSL buffer limit, under both flight behaviours. *)

val ablation_cwnd : ?seed:string -> ?exec:Exec.t -> unit -> string
(** Extra (section 5.4's "tuning factor"): high-delay handshake latency
    as a function of the initial congestion window. *)

val ablation_hrr : ?seed:string -> ?exec:Exec.t -> unit -> string
(** Extra (section 2's "the 2-RTT fallback never occurred"): what that
    fallback would have cost — a wrong pre-computed key share forces a
    HelloRetryRequest round trip plus a second key generation. *)

val all : ?seed:string -> ?exec:Exec.t -> unit -> (string * string) list
(** Every artifact above as (name, rendering), in paper order. *)
