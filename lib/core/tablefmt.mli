(** Shared plain-text table rendering for campaign reports. *)

val em_dash : string
(** ["—"]: 3 bytes of UTF-8, one display column. *)

val dash : int -> string
(** [dash n] right-aligns an em dash in an [n]-column field — the
    standard rendering of a failed cell. The result is [n + 2] bytes but
    [n] display columns. *)

val fmt_paper : float -> string
(** Paper reference value in 6 columns; NaN (no published value)
    renders as ["   -  "]. *)

val buf_table : string -> string -> string list -> string
(** [buf_table title header rows]: title line, header line, a dash rule
    as wide as the header, then one line per row. *)
