(** Minimal JSON for the machine-readable campaign artifacts.

    The printer is deterministic: object fields keep their construction
    order and floats print as the shortest decimal that parses back to
    the same bit pattern, so serializing a value is a pure function —
    the property behind the byte-identical [--metrics] artifacts. NaN
    and infinities (illegible paper cells) serialize as [null] and read
    back as [nan]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:int -> t -> string
(** Pretty, newline-terminated, deterministic rendering. *)

val float_repr : float -> string
(** The shortest ["%.*g"] rendering that round-trips through
    [float_of_string]. *)

val parse : string -> (t, string) result
(** Strict parse of one JSON document (rejects trailing input). *)

(** {1 Accessors} — all total; [None] on shape mismatch. *)

val member : string -> t -> t option

val to_float : t option -> float option
(** Accepts [Int], [Float] and [Null] (as [nan]). *)

val to_int : t option -> int option
val to_str : t option -> string option
val to_bool : t option -> bool option
val to_list : t option -> t list option
val to_obj : t option -> (string * t) list option
