(** Campaign observability: a domain-safe registry of counters, gauges
    and observation series (harness self-telemetry), per-cell
    distribution summaries, the versioned machine-readable artifact
    behind [pqtls-bench run --metrics], and the drift gates behind
    [pqtls-bench compare].

    Determinism contract: cell summaries derive only from
    {!Experiment.outcome} values, so the serialized artifact is
    byte-identical for any [jobs] and whether cells executed or came
    from the result cache. Volatile telemetry (wall clock, cache hits,
    pool occupancy) lives in the registry only and surfaces via
    {!Exec.health_summary}, never in the artifact. *)

(** {1 Distribution summaries} *)

type dist = {
  d_n : int;  (** sample count *)
  d_mean : float;
  d_stddev : float;  (** sample stddev, 0 for singletons *)
  d_p5 : float;
  d_p25 : float;
  d_p50 : float;
  d_p75 : float;
  d_p95 : float;
  d_p99 : float;
  d_ci_lo : float;  (** deterministic bootstrap 95 % CI of the median *)
  d_ci_hi : float;
}

val dist : seed:string -> float list -> dist
(** Summarize one sample list; [seed] drives the bootstrap resampling
    (callers pass the cell fingerprint plus the metric name, making the
    interval a pure function of the data).
    @raise Invalid_argument on the empty list. *)

type resumption = {
  rs_resumed_n : int;  (** sampled connections that resumed *)
  rs_full_n : int;  (** sampled connections that ran the full handshake *)
  rs_early_data_bytes : int;  (** 0-RTT bytes accepted, summed *)
  rs_resumed_total : dist option;  (** total latency, resumed subset (ms) *)
  rs_full_total : dist option;
  rs_resumed_server_bytes : dist option;
  rs_full_server_bytes : dist option;
}
(** Per-population split of a mixed-workload cell (Table 6): [None]
    dists mean the mix's coin never produced that population within the
    sample budget. *)

type cell_data = {
  cd_handshakes_per_minute : int;
  cd_part_a : dist;  (** latencies in ms *)
  cd_part_b : dist;
  cd_total : dist;
  cd_iteration : dist;
  cd_client_bytes : dist;
  cd_server_bytes : dist;
  cd_client_pkts : dist;
  cd_server_pkts : dist;
  cd_retransmissions : int;  (** summed over every sampled handshake *)
  cd_fast_retx : int;
  cd_timeout_retx : int;
  cd_rtt_samples : int;
  cd_client_cpu_ms : float;
  cd_server_cpu_ms : float;
  cd_client_cpu_charges : int;
  cd_server_cpu_charges : int;
  cd_client_ledger : (string * float) list;
  cd_server_ledger : (string * float) list;
  cd_resumption : resumption option;
      (** [Some] iff the cell ran a non-full {!Mix}; the serialized
          artifact gains its "resumption" key (and the cell its "mix"
          key) only then, so pre-mix artifacts stay byte-identical *)
  cd_chain_levels : (string * string * int * float) list;
      (** per-level certificate-chain breakdown, leaf first: (level,
          issuing SA, CertificateEntry bytes, verify ms). Serialized —
          as the "chain" data block plus the cell's "chain" identity
          key — only for non-default {!Tls.Chain_profile}s, so
          pre-chain artifacts stay byte-identical *)
}

type cell = {
  m_id : string;  (** {!Experiment.spec_fingerprint} — the identity *)
  m_key : string;
      (** {!Experiment.spec_label}, with a deterministic [#k] suffix
          when several specs share a label (ablation grids) *)
  m_kem : string;
  m_sig : string;
  m_scenario : string;
  m_mix : string;  (** {!Mix} name; ["full"] for pre-mix cells *)
  m_chain : string;
      (** {!Tls.Chain_profile} name; ["default"] for pre-chain cells *)
  m_buffering : string;  (** ["push"] or ["buffered"] *)
  m_standard : bool;
      (** everything except kem/sig/scenario/buffering/seed at the
          {!Experiment.spec} defaults — the cells {!against_paper} may
          judge *)
  m_data : (cell_data, string) result;  (** [Error] carries the failure *)
}

(** {1 Farm cells (Table 5)}

    One summary per {!Experiment.farm_spec} cell. The artifact gains a
    [farm_cells] key only when a farm campaign ran, so artifacts of the
    existing campaigns stay byte-identical under the same schema
    version; parsers treat the key as optional. *)

type farm_cell_data = {
  fd_capacity_hs_s : float;
  fd_offered_rate : float;
  fd_window_s : float;
  fd_offered : int;
  fd_completed : int;
  fd_dropped : int;
  fd_unfinished : int;
  fd_latency : dist;  (** arrival-to-Finished, ms *)
  fd_latency_p999 : float;
  fd_p99_ci_lo : float;  (** deterministic bootstrap 95 % CI of the p99 *)
  fd_p99_ci_hi : float;
  fd_wait : dist;  (** accept-queue wait, ms *)
  fd_server_cpu_ms : float;
  fd_server_busy : float;
  fd_server_ledger : (string * float) list;
  fd_per_server_completed : int list;
  fd_adv_launched : int;
  fd_adv_completed : int;
  fd_adv_client_bytes : int;
  fd_adv_server_bytes : int;
  fd_benign_client_bytes : int;
  fd_benign_server_bytes : int;
  fd_cal_client_cpu_ms : float;
  fd_cal_server_cpu_ms : float;
  fd_cal_adv_server_cpu_ms : float;
  fd_resumed_completed : int;  (** completed connections that resumed *)
  fd_early_data_bytes : int;  (** 0-RTT bytes accepted across the farm *)
}

type farm_cell = {
  f_id : string;  (** {!Experiment.farm_spec_fingerprint} *)
  f_key : string;
  f_kem : string;
  f_sig : string;
  f_scenario : string;
  f_profile : string;
  f_policy : string;
  f_utilization : float;
  f_adv_fraction : float;
  f_mix : string;  (** {!Mix} name; ["full"] for pre-mix cells *)
  f_data : (farm_cell_data, string) result;
}

(** {1 The registry} *)

type t

val create : unit -> t

val incr : ?by:int -> t -> string -> unit
(** Bump a named counter (created at 0 on first use). Domain-safe. *)

val counter : t -> string -> int

val set_gauge : t -> string -> float -> unit
val gauge : t -> string -> float option

val observe : t -> string -> float -> unit
(** Append one observation to a named series (e.g. per-cell wall
    seconds). Domain-safe. *)

val observations : t -> string -> float list
(** The series in observation order (arrival order across domains —
    volatile; never serialized into the artifact). *)

val note_experiment : t -> string -> unit
(** Record a campaign name for the artifact header (deduplicated,
    first-seen order). *)

val record_cell :
  t -> Experiment.spec -> (Experiment.outcome, string) result -> unit
(** Summarize one finished cell. Deduplicated on the spec fingerprint
    (first recording wins), so call order — which {!Exec.cells} fixes
    to spec order — fully determines the artifact. *)

val record_farm_cell :
  t ->
  Experiment.farm_spec ->
  (Experiment.farm_outcome, string) result ->
  unit
(** Farm-cell counterpart of {!record_cell}: same fingerprint dedup and
    label disambiguation, recorded by {!Exec.farm_cells} in spec order. *)

val cell_count : t -> int
(** Recorded cells of both kinds. *)

(** {1 The artifact} *)

val schema_version : string
(** ["pqtls-bench-metrics/1"]; bump when the JSON shape changes. *)

type artifact = {
  a_seed : string;
  a_experiments : string list;
  a_cells : cell list;
  a_farm_cells : farm_cell list;
}

val artifact : t -> seed:string -> artifact
val to_json_string : artifact -> string
(** Deterministic serialization (see {!Json.to_string}): equal
    artifacts render byte-identically. *)

(** {1 Comparison} *)

(** A parsed artifact: per-cell identity plus the flattened numeric
    leaves, which is all the gates need — re-reading a file someone
    else's build wrote never loses precision this way. *)

type p_cell = {
  p_id : string;
  p_key : string;
  p_kem : string;
  p_sig : string;
  p_scenario : string;
  p_buffering : string;
  p_standard : bool;
  p_error : string option;
  p_metrics : (string * float) list;
      (** dotted-path numeric leaves, e.g.
          ["data.latency_ms.total.p50"], in serialization order *)
}

type p_farm_cell = {
  pf_id : string;
  pf_key : string;
  pf_kem : string;
  pf_sig : string;
  pf_scenario : string;
  pf_profile : string;
  pf_policy : string;
  pf_error : string option;
  pf_metrics : (string * float) list;
}

type p_artifact = {
  p_seed : string;
  p_experiments : string list;
  p_cells : p_cell list;
  p_farm_cells : p_farm_cell list;  (** [[]] for pre-farm artifacts *)
}

val of_json_string : string -> (p_artifact, string) result
(** Rejects other schema versions and malformed documents. *)

val diff : ?rel_tol:float -> p_artifact -> p_artifact -> string list
(** Human-readable drift issues between a baseline and a candidate,
    empty when they agree. Farm cells are compared with the same rules
    as standard cells. Cells match on [p_id]; unmatched cells,
    ok/failed flips, missing metrics and seed mismatches are issues.
    [rel_tol] (default [0.] = exact, NaN equal to NaN) bounds
    [|a - b| / max(|a|, |b|)] per metric. *)

val against_paper : p_artifact -> int * string list
(** Judge every standard, push-buffered, completed cell against the
    embedded paper tables: Table 2a/2b medians, byte counts and
    handshake rates on the ideal link, and Table 4a/4b total medians
    under the deterministic impairments (bandwidth, delay). Returns
    (comparisons made, issues). Tolerances mirror test/test_core.ml's
    calibration assertions (30 % latency, 10-25 % bytes, 45 % on
    reciprocal-of-latency handshake counts and Table 4 medians);
    illegible (NaN) paper cells and the random-loss scenario columns
    are skipped. *)
