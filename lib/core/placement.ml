(* The signature-placement study (Table 7): how the chain profile — which
   SA signs at each hierarchy level — moves full-chain wire size,
   verification CPU, and the number of TCP flights the server's
   certificate flight needs under slow-start. *)

let flights_to_deliver ~(tcp : Netsim.Tcp.config) bytes =
  (* flight n delivers init_cwnd * 2^(n-1) segments: the smallest n with
     mss * init_cwnd * (2^n - 1) >= bytes gets the flight on the wire *)
  let window = tcp.Netsim.Tcp.mss * tcp.Netsim.Tcp.init_cwnd_segments in
  let rec go n delivered cwnd_bytes =
    if delivered >= bytes then n
    else go (n + 1) (delivered + cwnd_bytes) (2 * cwnd_bytes)
  in
  if bytes <= 0 then 0 else go 0 0 window

(* the Table 6 anchor pairs: the classical baseline, a mid lattice pair,
   and the hash-based outlier whose chain bytes dominate everything *)
let table7_pairs =
  [ ("x25519", "rsa:2048"); ("kyber768", "dilithium3");
    ("kyber512", "sphincs128") ]

(* the two deterministic paper scenarios: an unimpaired link pins the
   CPU story, the 0.5 s-delay link exposes the flight cliff *)
let table7_scenarios = [ Scenario.no_emulation; Scenario.high_delay ]

(* per-level stats of exactly the credentials the mocked cells serve
   (same cache entry), computable without running the cell — failed
   cells still render their placement columns *)
let chain_stats ~profile sa_name =
  let alg = Pqc.Sigalg.mocked (Pqc.Registry.find_sig sa_name) in
  let creds = Tls.Credentials.get ~profile alg in
  Tls.Chain.levels creds.Tls.Credentials.chain

let rec chunks n = function
  | [] -> []
  | xs ->
    let rec split i = function
      | rest when i = 0 -> ([], rest)
      | [] -> ([], [])
      | x :: rest ->
        let taken, left = split (i - 1) rest in
        (x :: taken, left)
    in
    let taken, left = split n xs in
    taken :: chunks n left

let cwnd_variant segments =
  { Netsim.Tcp.default_config with Netsim.Tcp.init_cwnd_segments = segments }

let table7_grid ~seed ~exec ~pairs ~profiles ~max_samples =
  let scenarios = table7_scenarios in
  let specs =
    List.concat_map
      (fun (k, s) ->
        List.concat_map
          (fun profile ->
            List.map
              (fun scenario ->
                Experiment.spec ~seed ~max_samples ~scenario ~chain:profile
                  (Pqc.Registry.find_kem k) (Pqc.Registry.find_sig s))
              scenarios)
          profiles)
      pairs
  in
  let results = Exec.cells exec specs in
  let groups =
    chunks (List.length scenarios) (List.combine specs results)
  in
  let meta =
    List.concat_map
      (fun (k, s) -> List.map (fun p -> (k, s, p)) profiles)
      pairs
  in
  let p50_of = function
    | Ok (o : Experiment.outcome) ->
      Printf.sprintf "%8.2f"
        (Stats.median
           (List.map (fun s -> s.Experiment.total_ms) o.Experiment.samples))
    | Error _ -> Printf.sprintf "%8s" (Tablefmt.dash 8)
  in
  let rows =
    List.map2
      (fun (k, s, (profile : Tls.Chain_profile.t)) group ->
        let levels = chain_stats ~profile s in
        let chain_b =
          List.fold_left (fun a l -> a + l.Tls.Chain.lv_bytes) 0 levels
        in
        let verify_ms =
          List.fold_left (fun a l -> a +. l.Tls.Chain.lv_verify_ms) 0. levels
        in
        let totals = List.map (fun (_, r) -> p50_of r) group in
        (* server flight bytes measured on the unimpaired link *)
        let sv_bytes =
          match group with
          | (_, Ok (o : Experiment.outcome)) :: _ ->
            Some
              (Experiment.median_bytes
                 (fun s -> s.Experiment.server_bytes)
                 o)
          | _ -> None
        in
        let sv_col, fl10, fl40 =
          match sv_bytes with
          | Some b ->
            ( Printf.sprintf "%8d" b,
              Printf.sprintf "%5d" (flights_to_deliver ~tcp:(cwnd_variant 10) b),
              Printf.sprintf "%5d" (flights_to_deliver ~tcp:(cwnd_variant 40) b)
            )
          | None ->
            ( Printf.sprintf "%8s" (Tablefmt.dash 8),
              Printf.sprintf "%5s" (Tablefmt.dash 5),
              Printf.sprintf "%5s" (Tablefmt.dash 5) )
        in
        Printf.sprintf "%-12s %-12s %-16s %5d %8d %8.3f %s %s %s %s" k s
          profile.Tls.Chain_profile.name
          (Tls.Chain_profile.depth profile)
          chain_b verify_ms
          (String.concat " " totals)
          sv_col fl10 fl40)
      meta groups
  in
  let main =
    Tablefmt.buf_table
      "Table 7: signature placement across certificate hierarchies \
       (root/intermediate/leaf)"
      (Printf.sprintf "%-12s %-12s %-16s %5s %8s %8s %8s %8s %8s %5s %5s" "KA"
         "SA" "chain" "depth" "chain B" "vfy ms" "p50 none" "p50 dly"
         "sv B" "fl@10" "fl@40")
      rows
  in
  let breakdown_rows =
    List.concat_map
      (fun (_, s, (profile : Tls.Chain_profile.t)) ->
        List.map
          (fun (l : Tls.Chain.level_stat) ->
            Printf.sprintf "%-12s %-16s %-6s %-14s %8d %8.3f" s
              profile.Tls.Chain_profile.name l.Tls.Chain.lv_name
              l.Tls.Chain.lv_issuer_sa l.Tls.Chain.lv_bytes
              l.Tls.Chain.lv_verify_ms)
          (chain_stats ~profile s))
      meta
  in
  let breakdown =
    Tablefmt.buf_table
      "Table 7 per-level breakdown (CertificateEntry bytes, verify CPU per \
       issuing SA)"
      (Printf.sprintf "%-12s %-16s %-6s %-14s %8s %8s" "SA" "chain" "level"
         "issuer SA" "bytes" "vfy ms")
      breakdown_rows
  in
  main ^ "\n" ^ breakdown

let table7 ?(seed = "table7") ?(exec = Exec.sequential) () =
  table7_grid ~seed ~exec ~pairs:table7_pairs
    ~profiles:Tls.Chain_profile.all ~max_samples:40

(* the CI gate's campaign: two pairs, three shapes, a dozen samples *)
let table7_smoke ?(seed = "table7") ?(exec = Exec.sequential) () =
  table7_grid ~seed ~exec
    ~pairs:[ ("x25519", "rsa:2048"); ("kyber512", "sphincs128") ]
    ~profiles:
      [ Tls.Chain_profile.default;
        Tls.Chain_profile.find "slhdsa-root";
        Tls.Chain_profile.find "mixed-acme" ]
    ~max_samples:10
