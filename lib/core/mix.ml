type t = {
  name : string;
  label : string;
  resumed : float;
  early_data : bool;
  description : string;
}

let full =
  { name = "full"; label = "100% full"; resumed = 0.; early_data = false;
    description = "every connection runs the paper's full 1-RTT handshake" }

let all =
  [ full;
    { name = "resumed50"; label = "50% resumed"; resumed = 0.5;
      early_data = false;
      description = "every other connection resumes with a PSK ticket" };
    { name = "resumed90"; label = "90% resumed"; resumed = 0.9;
      early_data = false;
      description =
        "steady-state web workload: 9 of 10 connections resume" };
    { name = "resumed99"; label = "99% resumed"; resumed = 0.99;
      early_data = false;
      description = "long-lived client population, tickets almost never \
                     expire" };
    { name = "resumed90-0rtt"; label = "90% resumed + 0-RTT";
      resumed = 0.9; early_data = true;
      description =
        "as resumed90, with resuming clients sending 0-RTT early data" } ]

let find name =
  match List.find_opt (fun m -> m.name = name) all with
  | Some m -> m
  | None -> invalid_arg ("Mix: unknown workload mix " ^ name)

let is_full m = m.name = full.name
