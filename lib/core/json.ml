(* A minimal JSON layer for the metrics artifacts: the printer is
   deterministic (object fields keep their construction order, floats
   use the shortest decimal that round-trips), so an artifact is a pure
   function of its value — byte-identical across domains, machines and
   [--jobs]. The parser accepts anything the printer emits plus standard
   JSON written by other tools. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* shortest decimal representation that parses back to exactly [f] *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else begin
    let rec go p =
      if p > 17 then Printf.sprintf "%.17g" f
      else
        let s = Printf.sprintf "%.*g" p f in
        if float_of_string s = f then s else go (p + 1)
    in
    go 1
  end

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let to_string ?(indent = 2) v =
  let b = Buffer.create 4096 in
  let pad depth = Buffer.add_string b (String.make (depth * indent) ' ') in
  let rec go depth = function
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (if x then "true" else "false")
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f ->
      (* JSON has no NaN/inf; they only arise from illegible paper cells
         and read back as null -> nan *)
      if Float.is_finite f then Buffer.add_string b (float_repr f)
      else Buffer.add_string b "null"
    | String s -> escape_string b s
    | List [] -> Buffer.add_string b "[]"
    | List xs ->
      Buffer.add_string b "[";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string b ",";
          Buffer.add_char b '\n';
          pad (depth + 1);
          go (depth + 1) x)
        xs;
      Buffer.add_char b '\n';
      pad depth;
      Buffer.add_string b "]"
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
      Buffer.add_string b "{";
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_string b ",";
          Buffer.add_char b '\n';
          pad (depth + 1);
          escape_string b k;
          Buffer.add_string b ": ";
          go (depth + 1) x)
        fields;
      Buffer.add_char b '\n';
      pad depth;
      Buffer.add_string b "}"
  in
  go 0 v;
  Buffer.add_char b '\n';
  Buffer.contents b

exception Parse_error of string

let parse s =
  let pos = ref 0 in
  let len = String.length s in
  let error msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> error (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= len && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else error ("expected " ^ word)
  in
  let utf8_of_code b u =
    if u < 0x80 then Buffer.add_char b (Char.chr u)
    else if u < 0x800 then begin
      Buffer.add_char b (Char.chr (0xc0 lor (u lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (u land 0x3f)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xe0 lor (u lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((u lsr 6) land 0x3f)));
      Buffer.add_char b (Char.chr (0x80 lor (u land 0x3f)))
    end
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= len then error "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents b
      | '\\' -> begin
        if !pos >= len then error "unterminated escape";
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'u' ->
          if !pos + 4 > len then error "truncated \\u escape";
          let hex = String.sub s !pos 4 in
          pos := !pos + 4;
          let u =
            try int_of_string ("0x" ^ hex)
            with _ -> error "bad \\u escape"
          in
          utf8_of_code b u
        | _ -> error "unknown escape");
        go ()
      end
      | c -> Buffer.add_char b c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let number_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < len && number_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> error ("bad number " ^ tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> error "expected ',' or ']'"
        in
        List (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let rec fields acc =
          let f = field () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields (f :: acc)
          | Some '}' ->
            advance ();
            List.rev (f :: acc)
          | _ -> error "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then error "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* ---- accessors ----------------------------------------------------------- *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let to_float = function
  | Some (Float f) -> Some f
  | Some (Int i) -> Some (float_of_int i)
  | Some Null -> Some nan
  | _ -> None

let to_int = function Some (Int i) -> Some i | _ -> None
let to_str = function Some (String s) -> Some s | _ -> None
let to_bool = function Some (Bool b) -> Some b | _ -> None
let to_list = function Some (List xs) -> Some xs | _ -> None
let to_obj = function Some (Obj fields) -> Some fields | _ -> None
