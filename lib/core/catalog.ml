let level_report ?seed ?exec ~buffering level =
  let g = Deviation.analyze ?seed ?exec ~buffering level in
  let b = Buffer.create 2048 in
  Buffer.add_string b
    (Printf.sprintf "Level-%d combinations (%s buffering)\n" level
       (match buffering with
       | Tls.Config.Optimized_push -> "optimized"
       | Tls.Config.Default_buffered -> "default"));
  List.iter
    (fun (c : Deviation.cell) ->
      Buffer.add_string b
        (Printf.sprintf "  %-15s %-15s measured %8.2f expected %8.2f dev %+6.2f\n"
           c.Deviation.kem c.Deviation.sa c.Deviation.measured_ms
           c.Deviation.expected_ms c.Deviation.deviation_ms))
    g.Deviation.cells;
  List.iter
    (fun (k, s) ->
      Buffer.add_string b
        (Printf.sprintf "  %-15s %-15s measured %8s (cell failed)\n" k s
           Tablefmt.em_dash))
    g.Deviation.failed;
  Buffer.contents b

let perf_report ?seed ?exec level =
  let rows =
    List.filter (fun (l, _, _) -> l = level) Whitebox.paper_pairs
  in
  let b = Buffer.create 1024 in
  Buffer.add_string b (Printf.sprintf "Level-%d white-box profiling\n" level);
  List.iter2
    (fun (_, kem, sa) r ->
      Buffer.add_string b
        (match r with
        | Some r ->
          Printf.sprintf "  %-15s %-15s %4.0f hs/s cpu %5.2f/%5.2f ms\n"
            r.Whitebox.kem r.Whitebox.sa r.Whitebox.handshakes_per_s
            r.Whitebox.server_cpu_ms r.Whitebox.client_cpu_ms
        | None ->
          Printf.sprintf "  %-15s %-15s %4s hs/s (cell failed)\n" kem sa
            Tablefmt.em_dash))
    rows
    (Whitebox.rows ?seed ?exec rows);
  Buffer.contents b

(* the Appendix-B all-sphincs run: find the fastest SPHINCS+ profile *)
let all_sphincs_report ?seed ?(exec = Exec.sequential) () =
  let results =
    Exec.cells exec
      (List.map
         (fun (v : Pqc.Sigalg.t) ->
           Experiment.spec ?seed Pqc.Registry.baseline_kem v)
         Pqc.Registry.sphincs_variants)
  in
  (* failed variants drop out of the ranking and are marked below it *)
  let rows, failed =
    List.partition_map Fun.id
      (List.map2
         (fun (v : Pqc.Sigalg.t) r ->
           match r with
           | Ok o ->
             let total =
               Stats.median
                 (List.map
                    (fun s -> s.Experiment.total_ms)
                    o.Experiment.samples)
             in
             Either.Left
               (v.Pqc.Sigalg.name, total, v.Pqc.Sigalg.signature_bytes)
           | Error _ -> Either.Right v.Pqc.Sigalg.name)
         Pqc.Registry.sphincs_variants results)
  in
  let sorted = List.sort (fun (_, a, _) (_, b, _) -> Float.compare a b) rows in
  let b = Buffer.create 1024 in
  Buffer.add_string b
    "SPHINCS+ variant selection (x25519 KA), fastest first:\n";
  List.iter
    (fun (n, t, sig_b) ->
      Buffer.add_string b
        (Printf.sprintf "  %-14s %9.2f ms   sig %6d B\n" n t sig_b))
    sorted;
  List.iter
    (fun n ->
      Buffer.add_string b
        (Printf.sprintf "  %-14s %9s ms   (cell failed)\n" n Tablefmt.em_dash))
    failed;
  (match sorted with
  | (best, _, _) :: _ ->
    Buffer.add_string b
      (Printf.sprintf
         "fastest: %s -- the f(ast) simple profile, matching the paper's pick\n"
         best)
  | [] -> ());
  Buffer.contents b

let entries :
    (string * string * (?seed:string -> ?exec:Exec.t -> unit -> string)) list =
  [ ("all-kem", "Table 2a campaign: every KA with rsa:2048",
     fun ?seed ?exec () -> Report.table2a ?seed ?exec ());
    ("all-sig", "Table 2b campaign: every SA with x25519",
     fun ?seed ?exec () -> Report.table2b ?seed ?exec ());
    ("level1", "Figure 3 campaign, level 1-2, optimized buffering",
     fun ?seed ?exec () ->
       level_report ?seed ?exec ~buffering:Tls.Config.Optimized_push 1);
    ("level3", "Figure 3 campaign, level 3, optimized buffering",
     fun ?seed ?exec () ->
       level_report ?seed ?exec ~buffering:Tls.Config.Optimized_push 3);
    ("level5", "Figure 3 campaign, level 5, optimized buffering",
     fun ?seed ?exec () ->
       level_report ?seed ?exec ~buffering:Tls.Config.Optimized_push 5);
    ("level1-nopush", "Figure 3 campaign, level 1-2, default buffering",
     fun ?seed ?exec () ->
       level_report ?seed ?exec ~buffering:Tls.Config.Default_buffered 1);
    ("level3-nopush", "Figure 3 campaign, level 3, default buffering",
     fun ?seed ?exec () ->
       level_report ?seed ?exec ~buffering:Tls.Config.Default_buffered 3);
    ("level5-nopush", "Figure 3 campaign, level 5, default buffering",
     fun ?seed ?exec () ->
       level_report ?seed ?exec ~buffering:Tls.Config.Default_buffered 5);
    ("level1-perf", "Table 3 rows on level 1-2",
     fun ?seed ?exec () -> perf_report ?seed ?exec 1);
    ("level3-perf", "Table 3 rows on level 3",
     fun ?seed ?exec () -> perf_report ?seed ?exec 3);
    ("level5-perf", "Table 3 rows on level 5",
     fun ?seed ?exec () -> perf_report ?seed ?exec 5);
    ("all-kem-scenarios", "Table 4a campaign: KAs under netem scenarios",
     fun ?seed ?exec () -> Report.table4a ?seed ?exec ());
    ("all-sig-scenarios", "Table 4b campaign: SAs under netem scenarios",
     fun ?seed ?exec () -> Report.table4b ?seed ?exec ());
    ("all-sphincs", "SPHINCS+ variant selection (Appendix B.6)",
     fun ?seed ?exec () -> all_sphincs_report ?seed ?exec ());
    ("attack", "Section 5.5 asymmetry survey",
     fun ?seed ?exec () -> Report.attack ?seed ?exec ());
    ("farm", "Table 5 campaign: server-farm capacity, tail latency and \
              adversarial mix",
     fun ?seed ?exec () -> Report.table5 ?seed ?exec ());
    ("farm-smoke", "Table 5 campaign at CI smoke size",
     fun ?seed ?exec () -> Report.table5_smoke ?seed ?exec ());
    ("mixes", "Table 6 campaign: steady-state cost under PSK-resumption \
               and 0-RTT workload mixes",
     fun ?seed ?exec () -> Report.table6 ?seed ?exec ());
    ("mixes-smoke", "Table 6 campaign at CI smoke size",
     fun ?seed ?exec () -> Report.table6_smoke ?seed ?exec ());
    ("chains", "Table 7 campaign: signature placement across certificate \
                hierarchies (chain profiles, flights-to-deliver)",
     fun ?seed ?exec () -> Report.table7 ?seed ?exec ());
    ("chains-smoke", "Table 7 campaign at CI smoke size",
     fun ?seed ?exec () -> Report.table7_smoke ?seed ?exec ());
    ("ablation-buffer", "BIO buffer-limit sweep",
     fun ?seed ?exec () -> Report.ablation_buffer ?seed ?exec ());
    ("ablation-cwnd", "initial congestion-window sweep",
     fun ?seed ?exec () -> Report.ablation_cwnd ?seed ?exec ());
    ("ablation-hrr", "HelloRetryRequest (wrong key-share) fallback cost",
     fun ?seed ?exec () -> Report.ablation_hrr ?seed ?exec ()) ]

(* paper-table spellings accepted as synonyms (the CI smoke job and the
   bench targets use these) *)
let aliases =
  [ ("table2a", "all-kem");
    ("table2b", "all-sig");
    ("table4a", "all-kem-scenarios");
    ("table4b", "all-sig-scenarios");
    ("table5", "farm");
    ("table6", "mixes");
    ("table7", "chains") ]

let names = List.map (fun (n, _, _) -> n) entries

let resolve name =
  match List.assoc_opt name aliases with Some n -> n | None -> name

let find name =
  let name = resolve name in
  match List.find_opt (fun (n, _, _) -> n = name) entries with
  | Some e -> e
  | None -> invalid_arg ("Catalog: unknown experiment " ^ name)

let run ?seed ?exec name =
  let _, _, f = find name in
  f ?seed ?exec ()

let describe name =
  let _, d, _ = find name in
  d
