(* cell/table rendering shared with Catalog *)
let buf_table = Tablefmt.buf_table
let fmt_paper = Tablefmt.fmt_paper
let dash = Tablefmt.dash

let part_a o = Experiment.median_of (fun s -> s.Experiment.part_a_ms) o
let part_b o = Experiment.median_of (fun s -> s.Experiment.part_b_ms) o
let total o = Experiment.median_of (fun s -> s.Experiment.total_ms) o
let cbytes o = Experiment.median_bytes (fun s -> s.Experiment.client_bytes) o
let sbytes o = Experiment.median_bytes (fun s -> s.Experiment.server_bytes) o

(* ---- Table 2 ------------------------------------------------------------ *)

type t2_data = {
  t2_name : string;
  t2_sim : (float * float * int * int * int) option;
      (* partA, partB, count, client B, server B; None = cell failed *)
  t2_paper : (float * float * float * int * int) option;
}

let table2_data ?seed ?(exec = Exec.sequential) which =
  let algs, spec_of, find =
    match which with
    | `A ->
      ( List.map (fun (k : Pqc.Kem.t) -> k.name) Pqc.Registry.kems,
        (fun name ->
          Experiment.spec ?seed (Pqc.Registry.find_kem name)
            Pqc.Registry.baseline_sig),
        fun name ->
          Option.map
            (fun (r : Paper_data.t2_row) ->
              (r.part_a, r.part_b, r.total_k, r.client_b, r.server_b))
            (Paper_data.find2a name) )
    | `B ->
      ( List.map (fun (s : Pqc.Sigalg.t) -> s.name) Pqc.Registry.sigs,
        (fun name ->
          Experiment.spec ?seed Pqc.Registry.baseline_kem
            (Pqc.Registry.find_sig name)),
        fun name ->
          Option.map
            (fun (r : Paper_data.t2_row) ->
              (r.part_a, r.part_b, r.total_k, r.client_b, r.server_b))
            (Paper_data.find2b name) )
  in
  let results = Exec.cells exec (List.map spec_of algs) in
  List.map2
    (fun name r ->
      { t2_name = name;
        t2_sim =
          (match r with
          | Ok o ->
            Some
              ( part_a o, part_b o, o.Experiment.handshakes_per_minute,
                cbytes o, sbytes o )
          | Error _ -> None);
        t2_paper = find name })
    algs results

let table2_rows ?seed ?exec which =
  List.map
    (fun r ->
      let pa, pb, tk, cb, sb =
        match r.t2_paper with
        | Some v -> v
        | None -> (nan, nan, nan, 0, 0)
      in
      match r.t2_sim with
      | Some (spa, spb, scount, scb, ssb) ->
        Printf.sprintf
          "%-20s %6.2f %s | %6.2f %s | %6.1fk %5.1fk | %7d %7d | %7d %7d"
          r.t2_name spa (fmt_paper pa) spb (fmt_paper pb)
          (float_of_int scount /. 1000.)
          tk scb cb ssb sb
      | None ->
        Printf.sprintf "%-20s %s %s | %s %s | %s %5.1fk | %s %7d | %s %7d"
          r.t2_name (dash 6) (fmt_paper pa) (dash 6) (fmt_paper pb) (dash 7)
          tk (dash 7) cb (dash 7) sb)
    (table2_data ?seed ?exec which)

let table2_csv ?seed ?exec which =
  let b = Buffer.create 2048 in
  Buffer.add_string b
    "algorithm,partA_ms,partB_ms,handshakes_per_60s,client_bytes,server_bytes,\
     paper_partA_ms,paper_partB_ms,paper_handshakes,paper_client_bytes,paper_server_bytes\n";
  List.iter
    (fun r ->
      let ppa, ppb, ptk, pcb, psb =
        match r.t2_paper with
        | Some v -> v
        | None -> (nan, nan, nan, 0, 0)
      in
      let f v = if Float.is_nan v then "" else Printf.sprintf "%.3f" v in
      let sim =
        match r.t2_sim with
        | Some (spa, spb, scount, scb, ssb) ->
          Printf.sprintf "%.3f,%.3f,%d,%d,%d" spa spb scount scb ssb
        | None -> ",,,," (* failed cell: empty sim columns *)
      in
      Buffer.add_string b
        (Printf.sprintf "%s,%s,%s,%s,%s,%d,%d\n" r.t2_name sim (f ppa) (f ppb)
           (f (ptk *. 1000.)) pcb psb))
    (table2_data ?seed ?exec which);
  Buffer.contents b

let table2a_csv ?seed ?exec () = table2_csv ?seed ?exec `A
let table2b_csv ?seed ?exec () = table2_csv ?seed ?exec `B

let header2 =
  Printf.sprintf "%-20s %14s | %14s | %14s | %15s | %15s" "algorithm"
    "partA sim/pap" "partB sim/pap" "#60s sim/pap" "client B sim/pap"
    "server B sim/pap"

let table2a ?seed ?exec () =
  buf_table
    "Table 2a: handshake latency, data usage and count (KAs with rsa:2048)"
    header2
    (table2_rows ?seed ?exec `A)

let table2b ?seed ?exec () =
  buf_table
    "Table 2b: handshake latency, data usage and count (SAs with x25519)"
    header2
    (table2_rows ?seed ?exec `B)

(* ---- Table 3 ------------------------------------------------------------ *)

let fmt_libs libs =
  libs
  |> List.filter (fun (_, f) -> f >= 0.005)
  |> List.map (fun (lib, f) -> Printf.sprintf "%s %.0f%%" lib (100. *. f))
  |> String.concat " "

let table3 ?seed ?exec () =
  let rows =
    List.map2
      (fun (level, kem, sa) r ->
        match r with
        | Some r ->
          Printf.sprintf
            "%d %-14s %-15s %5.0f | %5.2f %5.2f | %3d %3d | S: %s | C: %s"
            r.Whitebox.level r.Whitebox.kem r.Whitebox.sa
            r.Whitebox.handshakes_per_s r.Whitebox.server_cpu_ms
            r.Whitebox.client_cpu_ms r.Whitebox.server_pkts
            r.Whitebox.client_pkts
            (fmt_libs r.Whitebox.server_libs)
            (fmt_libs r.Whitebox.client_libs)
        | None ->
          Printf.sprintf "%d %-14s %-15s %s | %s %s | %s %s | (cell failed)"
            level kem sa (dash 5) (dash 5) (dash 5) (dash 3) (dash 3))
      Whitebox.paper_pairs
      (Whitebox.table ?seed ?exec ())
  in
  buf_table "Table 3: white-box measurements"
    (Printf.sprintf "L %-14s %-15s %5s | %11s | %7s | %s" "KA" "SA" "HS/s"
       "CPU srv/cli" "pkt s/c" "library distribution")
    rows

(* ---- Table 4 ------------------------------------------------------------ *)

let table4_rows ?seed ?(exec = Exec.sequential) which =
  let algs, spec_of, find =
    match which with
    | `A ->
      ( List.map (fun (k : Pqc.Kem.t) -> k.name) Pqc.Registry.kems,
        (fun name sc ->
          Experiment.spec ?seed ~scenario:sc (Pqc.Registry.find_kem name)
            Pqc.Registry.baseline_sig),
        Paper_data.find4a )
    | `B ->
      ( List.map (fun (s : Pqc.Sigalg.t) -> s.name) Pqc.Registry.sigs,
        (fun name sc ->
          Experiment.spec ?seed ~scenario:sc Pqc.Registry.baseline_kem
            (Pqc.Registry.find_sig name)),
        Paper_data.find4b )
  in
  let nsc = List.length Scenario.all in
  let outcomes =
    Exec.cells exec
      (List.concat_map
         (fun name -> List.map (spec_of name) Scenario.all)
         algs)
    |> Array.of_list
  in
  List.mapi
    (fun i name ->
      let paper =
        match find name with
        | Some (r : Paper_data.t4_row) ->
          [ r.none; r.loss; r.bandwidth; r.delay; r.lte_m; r.five_g ]
        | None -> [ nan; nan; nan; nan; nan; nan ]
      in
      let sims =
        List.init nsc (fun j ->
            match outcomes.((i * nsc) + j) with
            | Ok o -> Some (total o)
            | Error _ -> None)
      in
      let cols =
        List.map2
          (fun sim pap ->
            match sim with
            | Some v -> Printf.sprintf "%8.2f %s" v (fmt_paper pap)
            | None -> Printf.sprintf "%s %s" (dash 8) (fmt_paper pap))
          sims paper
      in
      Printf.sprintf "%-20s %s" name (String.concat " | " cols))
    algs

let header4 =
  Printf.sprintf "%-20s %s" "algorithm"
    (String.concat " | "
       (List.map
          (fun sc -> Printf.sprintf "%15s" sc.Scenario.label)
          Scenario.all))

let table4a ?seed ?exec () =
  buf_table
    "Table 4a: median handshake latency (ms) per network scenario (KAs, sim/paper)"
    header4
    (table4_rows ?seed ?exec `A)

let table4b ?seed ?exec () =
  buf_table
    "Table 4b: median handshake latency (ms) per network scenario (SAs, sim/paper)"
    header4
    (table4_rows ?seed ?exec `B)

(* ---- Figure 3 ------------------------------------------------------------ *)

let figure3 ?(seed = "figure3") ?exec () =
  let b = Buffer.create 8192 in
  let levels = [ 1; 3; 5 ] in
  let grids_opt = List.map (Deviation.analyze ~seed ?exec) levels in
  let grids_def =
    List.map
      (Deviation.analyze ~buffering:Tls.Config.Default_buffered ~seed ?exec)
      levels
  in
  let dump title grids =
    Buffer.add_string b (title ^ "\n");
    Buffer.add_string b
      "  level KA              SA              measured expected deviation\n";
    List.iter
      (fun (g : Deviation.grid) ->
        List.iter
          (fun (c : Deviation.cell) ->
            Buffer.add_string b
              (Printf.sprintf "  %d     %-15s %-15s %8.2f %8.2f %+9.2f\n"
                 g.Deviation.level c.Deviation.kem c.Deviation.sa
                 c.Deviation.measured_ms c.Deviation.expected_ms
                 c.Deviation.deviation_ms))
          g.Deviation.cells;
        List.iter
          (fun (k, s) ->
            Buffer.add_string b
              (Printf.sprintf "  %d     %-15s %-15s %s %s %s  (cell failed)\n"
                 g.Deviation.level k s (dash 8) (dash 8) (dash 9)))
          g.Deviation.failed)
      grids;
    let all_devs =
      List.concat_map
        (fun (g : Deviation.grid) ->
          List.map (fun c -> c.Deviation.deviation_ms) g.Deviation.cells)
        grids
    in
    if all_devs = [] then
      Buffer.add_string b "  (no cells completed)\n\n"
    else begin
      let lo, hi = Stats.min_max all_devs in
      Buffer.add_string b
        (Printf.sprintf
           "  deviation median %+0.2f ms, range [%+0.2f, %+0.2f]\n\n"
           (Stats.median all_devs) lo hi)
    end
  in
  dump "Figure 3a: deviation from additive prediction (default OpenSSL)"
    grids_def;
  dump "Figure 3b: deviation from additive prediction (optimized push)"
    grids_opt;
  Buffer.add_string b "Figure 3c: improvement of optimized over default (ms)\n";
  List.iter2
    (fun o d ->
      List.iter
        (fun (k, s, gain) ->
          Buffer.add_string b
            (Printf.sprintf "  %d     %-15s %-15s %+8.2f\n" o.Deviation.level k
               s gain))
        (Deviation.improvement ~optimized:o ~default:d))
    grids_opt grids_def;
  Buffer.contents b

(* ---- Figure 4 ------------------------------------------------------------ *)

let figure4 ?(seed = "figure4") ?(exec = Exec.sequential) () =
  let b = Buffer.create 2048 in
  let kem_specs =
    List.map
      (fun (k : Pqc.Kem.t) ->
        Experiment.spec ~seed (Pqc.Registry.find_kem k.name)
          Pqc.Registry.baseline_sig)
      Pqc.Registry.kems
  in
  let sig_specs =
    List.map
      (fun (s : Pqc.Sigalg.t) ->
        Experiment.spec ~seed Pqc.Registry.baseline_kem
          (Pqc.Registry.find_sig s.name))
      Pqc.Registry.sigs
  in
  let outcomes = Exec.cells exec (kem_specs @ sig_specs) in
  let rec split n = function
    | rest when n = 0 -> ([], rest)
    | x :: rest ->
      let a, b = split (n - 1) rest in
      (x :: a, b)
    | [] -> invalid_arg "figure4: grid size mismatch"
  in
  let kem_outcomes, sig_outcomes = split (List.length kem_specs) outcomes in
  (* failed cells drop out of the ranking and are listed below it *)
  let keep names results =
    List.concat
      (List.map2
         (fun n r -> match r with Ok o -> [ (n, o) ] | Error _ -> [])
         names results)
  in
  let lost names results =
    List.concat
      (List.map2
         (fun n r -> match r with Ok _ -> [] | Error _ -> [ n ])
         names results)
  in
  let kem_names = List.map (fun (k : Pqc.Kem.t) -> k.name) Pqc.Registry.kems in
  let sig_names = List.map (fun (s : Pqc.Sigalg.t) -> s.name) Pqc.Registry.sigs in
  let run_kems = keep kem_names kem_outcomes in
  let run_sigs = keep sig_names sig_outcomes in
  let dump title entries failures =
    Buffer.add_string b (title ^ "\n");
    List.iter
      (fun (e : Ranking.entry) ->
        Buffer.add_string b
          (Printf.sprintf "  [%2d] %-20s %8.2f ms\n" e.Ranking.rank
             e.Ranking.name e.Ranking.latency_ms))
      entries;
    List.iter
      (fun n ->
        Buffer.add_string b
          (Printf.sprintf "  [ %s] %-20s %s ms  (cell failed)\n"
             Tablefmt.em_dash n (dash 8)))
      failures;
    Buffer.add_char b '\n'
  in
  dump "Figure 4 (top): key agreements ranked by log-scaled latency"
    (Ranking.kem_ranking run_kems)
    (lost kem_names kem_outcomes);
  dump "Figure 4 (bottom): signature algorithms ranked by log-scaled latency"
    (Ranking.sig_ranking run_sigs)
    (lost sig_names sig_outcomes);
  Buffer.contents b

(* ---- Section 5.5 ---------------------------------------------------------- *)

let attack ?seed ?exec () =
  let rows = Amplification.survey ?seed ?exec () in
  let body =
    List.map
      (fun (r : Amplification.row) ->
        Printf.sprintf "%-16s %-18s %9.2fx %12.2fx%s" r.Amplification.kem
          r.Amplification.sa r.Amplification.cpu_ratio
          r.Amplification.amplification
          (if r.Amplification.amplification > Amplification.quic_limit then
             "  (exceeds QUIC's 3x)"
           else ""))
      rows
  in
  let table =
    buf_table "Section 5.5: attack-surface asymmetries"
      (Printf.sprintf "%-16s %-18s %10s %13s" "KA" "SA" "CPU s/c"
         "amplification")
      body
  in
  match rows with
  | [] -> table ^ "(no cells completed)\n"
  | _ ->
    let worst_a = Amplification.worst_amplification rows in
    let worst_c = Amplification.worst_cpu_ratio rows in
    table
    ^ Printf.sprintf
        "worst amplification: %s x %s at %.1fx (QUIC limit: %.0fx)\n\
         worst CPU skew: %s x %s at %.1fx\n"
        worst_a.Amplification.kem worst_a.Amplification.sa
        worst_a.Amplification.amplification Amplification.quic_limit
        worst_c.Amplification.kem worst_c.Amplification.sa
        worst_c.Amplification.cpu_ratio

(* ---- Table 5 ------------------------------------------------------------- *)

(* the capacity campaign covers the paper's reference pair plus one
   lattice pair per level and the hash-based outlier — the pairs whose
   single-handshake profiles differ most, so farm behaviour separates *)
let table5_pairs =
  [ ("x25519", "rsa:2048"); ("kyber512", "dilithium2");
    ("kyber768", "dilithium3"); ("kyber512", "sphincs128") ]

let farm_p50_p99_p999 (o : Experiment.farm_outcome) =
  match
    Stats.percentiles [ 0.5; 0.99; 0.999 ] o.Experiment.fo_latencies_ms
  with
  | [ p50; p99; p999 ] -> (p50, p99, p999)
  | _ -> assert false

let table5_capacity ~seed ~exec ~pairs ~profiles ~servers ~duration_s
    ~max_connections =
  let specs =
    List.concat_map
      (fun (k, s) ->
        List.map
          (fun profile ->
            Experiment.farm_spec ~seed ~profile ~servers ~duration_s
              ~max_connections (Pqc.Registry.find_kem k)
              (Pqc.Registry.find_sig s))
          profiles)
      pairs
  in
  let rows =
    List.map2
      (fun sp r ->
        match r with
        | Ok (o : Experiment.farm_outcome) ->
          let p50, p99, p999 = farm_p50_p99_p999 o in
          Printf.sprintf
            "%-15s %-12s %-12s %8.0f %6d %6d %5d %4d %8.2f %8.2f %8.2f"
            o.Experiment.fo_kem_name o.Experiment.fo_sig_name
            o.Experiment.fo_profile o.Experiment.fo_capacity_hs_s
            o.Experiment.fo_offered o.Experiment.fo_completed
            o.Experiment.fo_dropped o.Experiment.fo_unfinished p50 p99 p999
        | Error _ ->
          Printf.sprintf
            "%-15s %-12s %-12s %s %s %s %s %s %s %s %s  (cell failed)"
            sp.Experiment.fa_kem.Pqc.Kem.name
            sp.Experiment.fa_sig.Pqc.Sigalg.name sp.Experiment.fa_profile
            (dash 8) (dash 6) (dash 6) (dash 5) (dash 4) (dash 8) (dash 8)
            (dash 8))
      specs
      (Exec.farm_cells exec specs)
  in
  buf_table
    (Printf.sprintf
       "Table 5: sustainable handshake capacity and tail latency (%d \
        single-core servers, 90%% utilization)"
       servers)
    (Printf.sprintf "%-15s %-12s %-12s %8s %6s %6s %5s %4s %8s %8s %8s" "KA"
       "SA" "profile" "cap/s" "offer" "compl" "drop" "live" "p50 ms" "p99 ms"
       "p999 ms")
    rows

(* section 5.5 at farm scale: a fraction of arrivals are adversarial
   clients negotiating the cheapest KEM (x25519 — a few hundred client
   bytes buying the full SA-dominated server flight and its CPU) *)
let table5_attack ~seed ~exec ~servers ~duration_s ~max_connections
    ~utilizations ~adv_fractions (k, s) =
  let specs =
    List.concat_map
      (fun u ->
        List.map
          (fun adv ->
            Experiment.farm_spec ~seed ~servers ~duration_s ~max_connections
              ~utilization:u ~adv_fraction:adv (Pqc.Registry.find_kem k)
              (Pqc.Registry.find_sig s))
          adv_fractions)
      utilizations
  in
  let rows =
    List.map2
      (fun sp r ->
        match r with
        | Ok (o : Experiment.farm_outcome) ->
          let _, p99, _ = farm_p50_p99_p999 o in
          let amp =
            if o.Experiment.fo_adv_client_bytes = 0 then 0.
            else
              float_of_int o.Experiment.fo_adv_server_bytes
              /. float_of_int o.Experiment.fo_adv_client_bytes
          in
          let cpu_share =
            if o.Experiment.fo_server_cpu_ms = 0. then 0.
            else
              float_of_int o.Experiment.fo_adv_completed
              *. o.Experiment.fo_cal_adv_server_cpu_ms
              /. o.Experiment.fo_server_cpu_ms
          in
          Printf.sprintf
            "%4.0f%% %7.0f%% %6d %6d %5d %8.2f %9.2fx %9.0f%%"
            (100. *. sp.Experiment.fa_utilization)
            (100. *. sp.Experiment.fa_adv_fraction)
            o.Experiment.fo_offered o.Experiment.fo_completed
            o.Experiment.fo_dropped p99 amp (100. *. cpu_share)
        | Error _ ->
          Printf.sprintf "%4.0f%% %7.0f%% %s %s %s %s %s %s  (cell failed)"
            (100. *. sp.Experiment.fa_utilization)
            (100. *. sp.Experiment.fa_adv_fraction)
            (dash 6) (dash 6) (dash 5) (dash 8) (dash 10) (dash 10))
      specs
      (Exec.farm_cells exec specs)
  in
  buf_table
    (Printf.sprintf
       "Section 5.5 at scale: adversarial client mix (%s x %s, adversary \
        negotiates x25519)"
       k s)
    (Printf.sprintf "%5s %8s %6s %6s %5s %8s %10s %10s" "util" "adv mix"
       "offer" "compl" "drop" "p99 ms" "amplif" "adv CPU")
    rows

let table5 ?(seed = "table5") ?(exec = Exec.sequential) () =
  table5_capacity ~seed ~exec ~pairs:table5_pairs
    ~profiles:(List.map (fun w -> w.Netsim.Workload.name) Netsim.Workload.all)
    ~servers:3 ~duration_s:1.0 ~max_connections:1200
  ^ "\n"
  ^ table5_attack ~seed ~exec ~servers:3 ~duration_s:1.0 ~max_connections:900
      ~utilizations:[ 0.70; 0.90; 0.99 ] ~adv_fractions:[ 0.; 0.3 ]
      ("kyber512", "sphincs128")

(* the CI gate's campaign: same shape, farm sizes cut for wall clock *)
let table5_smoke ?(seed = "table5") ?(exec = Exec.sequential) () =
  table5_capacity ~seed ~exec
    ~pairs:[ ("x25519", "rsa:2048"); ("kyber768", "dilithium3") ]
    ~profiles:[ "poisson"; "flash-crowd" ] ~servers:2 ~duration_s:0.4
    ~max_connections:240
  ^ "\n"
  ^ table5_attack ~seed ~exec ~servers:2 ~duration_s:0.4 ~max_connections:200
      ~utilizations:[ 0.90 ] ~adv_fractions:[ 0.; 0.3 ]
      ("kyber512", "sphincs128")

(* ---- Table 6 ------------------------------------------------------------- *)

(* steady-state amortization under workload mixes: the reference pair,
   a mid lattice pair and the hash-based outlier. The outlier is the
   point of the table — at 90 % resumption its huge per-handshake
   server flight collapses toward the KA-only cost, because
   Certificate/CertificateVerify leave the wire on resumed connections *)
let table6_pairs =
  [ ("x25519", "rsa:2048"); ("kyber768", "dilithium3");
    ("kyber512", "sphincs128") ]

let table6_grid ~seed ~exec ~pairs ~mixes ~max_samples =
  let specs =
    List.concat_map
      (fun (k, s) ->
        List.map
          (fun mix ->
            Experiment.spec ~seed ~max_samples ~mix
              (Pqc.Registry.find_kem k) (Pqc.Registry.find_sig s))
          mixes)
      pairs
  in
  let rows =
    List.map2
      (fun sp r ->
        match r with
        | Ok (o : Experiment.outcome) ->
          let samples = o.Experiment.samples in
          let resumed, full =
            List.partition (fun s -> s.Experiment.resumed) samples
          in
          let p50 subset =
            match subset with
            | [] -> Printf.sprintf "%8s" (dash 8)
            | _ ->
              Printf.sprintf "%8.2f"
                (Stats.median
                   (List.map (fun s -> s.Experiment.total_ms) subset))
          in
          let mean_i f =
            Stats.mean (List.map (fun s -> float_of_int (f s)) samples)
          in
          let early =
            List.fold_left
              (fun acc s -> acc + s.Experiment.early_data_bytes)
              0 samples
          in
          Printf.sprintf "%-15s %-12s %-20s %s %s %9.0f %9.0f %8.2f %7d %7d"
            o.Experiment.kem_name o.Experiment.sig_name
            sp.Experiment.sp_mix.Mix.label (p50 full) (p50 resumed)
            (mean_i (fun s -> s.Experiment.client_bytes))
            (mean_i (fun s -> s.Experiment.server_bytes))
            o.Experiment.server_cpu_ms o.Experiment.handshakes_per_minute
            early
        | Error _ ->
          Printf.sprintf
            "%-15s %-12s %-20s %8s %8s %9s %9s %8s %7s %7s  (cell failed)"
            sp.Experiment.sp_kem.Pqc.Kem.name
            sp.Experiment.sp_sig.Pqc.Sigalg.name
            sp.Experiment.sp_mix.Mix.label (dash 8) (dash 8) (dash 9)
            (dash 9) (dash 8) (dash 7) (dash 7))
      specs (Exec.cells exec specs)
  in
  buf_table
    "Table 6: steady-state cost under workload mixes (PSK resumption, 0-RTT)"
    (Printf.sprintf "%-15s %-12s %-20s %8s %8s %9s %9s %8s %7s %7s" "KA" "SA"
       "mix" "full p50" "res p50" "cl B/hs" "sv B/hs" "sv ms" "hs/min"
       "0RTT B")
    rows

let table6 ?(seed = "table6") ?(exec = Exec.sequential) () =
  table6_grid ~seed ~exec ~pairs:table6_pairs ~mixes:Mix.all ~max_samples:60

(* the CI gate's campaign: two pairs, three mixes, a dozen samples *)
let table6_smoke ?(seed = "table6") ?(exec = Exec.sequential) () =
  table6_grid ~seed ~exec
    ~pairs:[ ("x25519", "rsa:2048"); ("kyber512", "sphincs128") ]
    ~mixes:[ Mix.full; Mix.find "resumed90"; Mix.find "resumed90-0rtt" ]
    ~max_samples:12

(* ---- Table 7 (signature placement) ---------------------------------------- *)

let table7 = Placement.table7
let table7_smoke = Placement.table7_smoke

(* ---- ablations ------------------------------------------------------------ *)

let ablation_buffer ?(seed = "ablation") ?(exec = Exec.sequential) () =
  let limits = [ 1024; 2048; 4096; 8192; 16384; 65536 ] in
  let kem = Pqc.Registry.find_kem "kyber512" in
  let sa = Pqc.Registry.find_sig "sphincs128" in
  let outcomes =
    Exec.cells exec
      (List.concat_map
         (fun limit ->
           List.map
             (fun buffering ->
               Experiment.spec ~seed ~buffering ~buffer_limit:limit kem sa)
             [ Tls.Config.Default_buffered; Tls.Config.Optimized_push ])
         limits)
    |> Array.of_list
  in
  let cell r =
    match r with
    | Ok o -> Printf.sprintf "%12.2f" (total o)
    | Error _ -> dash 12
  in
  let rows =
    List.mapi
      (fun i limit ->
        Printf.sprintf "%8d %s %s" limit
          (cell outcomes.(2 * i))
          (cell outcomes.((2 * i) + 1)))
      limits
  in
  buf_table
    "Ablation: BIO buffer limit vs total latency (kyber512 x sphincs128, ms)"
    (Printf.sprintf "%8s %12s %12s" "limit B" "default" "optimized")
    rows

let ablation_cwnd ?(seed = "ablation") ?(exec = Exec.sequential) () =
  let windows = [ 4; 10; 20; 40; 80 ] in
  let pairs =
    [ ("x25519", "rsa:2048"); ("kyber768", "dilithium3");
      ("kyber512", "sphincs128"); ("x25519", "sphincs256") ]
  in
  let outcomes =
    Exec.cells exec
      (List.concat_map
         (fun (k, s) ->
           List.map
             (fun w ->
               let tcp_config =
                 { Netsim.Tcp.default_config with
                   Netsim.Tcp.init_cwnd_segments = w }
               in
               Experiment.spec ~seed ~scenario:Scenario.high_delay ~tcp_config
                 (Pqc.Registry.find_kem k) (Pqc.Registry.find_sig s))
             windows)
         pairs)
    |> Array.of_list
  in
  let nw = List.length windows in
  let rows =
    List.mapi
      (fun i (k, s) ->
        let cells =
          List.init nw (fun j ->
              match outcomes.((i * nw) + j) with
              | Ok o -> Printf.sprintf "%9.0f" (total o)
              | Error _ -> dash 9)
        in
        Printf.sprintf "%-12s %-12s %s" k s (String.concat " " cells))
      pairs
  in
  buf_table
    "Ablation: initial CWND (segments) vs high-delay latency (ms, 1 s RTT)"
    (Printf.sprintf "%-12s %-12s %s" "KA" "SA"
       (String.concat " " (List.map (Printf.sprintf "%9d") windows)))
    rows

let ablation_hrr ?(seed = "ablation") ?(exec = Exec.sequential) () =
  (* the 2-RTT HelloRetryRequest fallback the paper configured away:
     cost of a wrong pre-computed key share, per scenario *)
  let pairs =
    [ ("x25519", "rsa:2048"); ("kyber768", "dilithium3");
      ("p521_kyber1024", "p521_dilithium5") ]
  in
  let scenarios = [ Scenario.no_emulation; Scenario.five_g; Scenario.high_delay ] in
  let outcomes =
    Exec.cells exec
      (List.concat_map
         (fun (k, s) ->
           let kem = Pqc.Registry.find_kem k and sa = Pqc.Registry.find_sig s in
           List.concat_map
             (fun sc ->
               List.map
                 (fun wrong ->
                   Experiment.spec ~seed ~scenario:sc ~wrong_key_share:wrong
                     kem sa)
                 [ false; true ])
             scenarios)
         pairs)
    |> Array.of_list
  in
  let per_pair = 2 * List.length scenarios in
  let rows =
    List.mapi
      (fun i (k, s) ->
        let cells =
          List.init per_pair (fun j ->
              match outcomes.((i * per_pair) + j) with
              | Ok o -> Printf.sprintf "%9.2f" (total o)
              | Error _ -> dash 9)
        in
        Printf.sprintf "%-15s %-16s %s" k s (String.concat " " cells))
      pairs
  in
  buf_table
    "Ablation: HelloRetryRequest fallback (total ms; guessed vs wrong key share)"
    (Printf.sprintf "%-15s %-16s %s" "KA" "SA"
       (String.concat " "
          (List.concat_map
             (fun sc ->
               [ Printf.sprintf "%9s" sc.Scenario.name;
                 Printf.sprintf "%9s" (sc.Scenario.name ^ "+HRR") ])
             scenarios)))
    rows

let all ?seed ?exec () =
  [ ("table2a", table2a ?seed ?exec ());
    ("table2b", table2b ?seed ?exec ());
    ("figure3", figure3 ?seed ?exec ());
    ("table3", table3 ?seed ?exec ());
    ("table4a", table4a ?seed ?exec ());
    ("table4b", table4b ?seed ?exec ());
    ("figure4", figure4 ?seed ?exec ());
    ("attack", attack ?seed ?exec ());
    ("ablation-buffer", ablation_buffer ?seed ?exec ());
    ("ablation-cwnd", ablation_cwnd ?seed ?exec ());
    ("ablation-hrr", ablation_hrr ?seed ?exec ()) ]
