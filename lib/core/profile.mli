(** Real-time profiling: wall-clock micro-benchmarks of the actual
    OCaml substrates, per-op GC accounting, and the virtual-vs-real
    campaign attribution behind [pqtls-bench profile].

    Everything else in the repo measures *virtual* time — deterministic,
    machine-independent, a pure function of spec and seed. This module
    is deliberately the opposite: it reads the host clock (through the
    {!Clock} quarantine) to find out where *real* CPU time and
    allocation go, which is what hot-path optimization work gates
    against. The artifact therefore separates:

    - a {e deterministic shape} — the op registry, per-op iteration
      counts, JSON schema and key order, and the attribution rows'
      identities, counts and virtual costs, all pure functions of the
      registries and the planning table ({!shape_json_string} is
      asserted byte-identical across [--jobs] by the tests); from
    - {e nondeterministic values} — the measured millisecond
      distributions, GC deltas and real-attribution columns, which
      depend on the machine and the moment and are compared only with a
      relative tolerance ([pqtls-bench compare-profile]). *)

type group = Ka | Sa | Kernel

val group_name : group -> string
(** ["ka"], ["sa"], ["kernel"]. *)

type op = {
  op_name : string;
      (** ["keygen kyber512"], ["sign dilithium3"], ["kernel
          keccak-f1600"] — KA/SA spellings match the {!Pqc.Costs} trace
          labels so attribution can join on them *)
  op_group : group;
  op_alg : string;  (** algorithm or kernel name *)
  op_kind : string;
      (** ["keygen" | "encaps" | "decaps" | "sign" | "verify" |
          "kernel"] *)
  op_samples : int;  (** timed samples taken (each times one batch) *)
  op_batch : int;  (** iterations per timed sample *)
  op_warmup : int;  (** untimed executions before sampling *)
  op_prepare : unit -> unit -> unit;
      (** [op_prepare ()] builds the op's deterministic inputs (keys,
          ciphertexts, messages — outside the timed region) and returns
          the thunk running one iteration *)
}

val budget_ms : float
(** Per-sample time budget (virtual planning constant). Batch sizes are
    [clamp 1 256 (budget_ms / est)] where [est] is a static per-family
    estimate of the pure-OCaml cost — coarse and machine-relative, but a
    code constant, so iteration counts are identical on every machine. *)

val registry : unit -> op list
(** The full profiled-primitive registry, in deterministic order: every
    {!Pqc.Registry} KA x {keygen, encaps, decaps}, every SA x {keygen,
    sign, verify}, then the substrate kernels (Keccak-f[1600], Kyber and
    Dilithium NTT, HKDF-SHA256, SHA-256 over 1 KiB). *)

val filter : string -> op list -> op list
(** [filter needle ops] keeps ops whose name contains [needle]
    (substring match, also matching ["ka:"], ["sa:"], ["kernel:"] group
    prefixes). *)

type gc_delta = {
  g_minor_words : float;  (** words allocated on the minor heap, per op *)
  g_promoted_words : float;
  g_major_words : float;
  g_minor_collections : float;  (** collections per op (usually << 1) *)
  g_major_collections : float;
}
(** [Gc.quick_stat] deltas across the whole sampling run, divided by the
    iteration count. *)

type measured = {
  p_op : op;
  p_time : Metrics.dist;  (** per-iteration milliseconds, over samples *)
  p_gc : gc_delta;
}

type attr_row = {
  at_lib : string;  (** Table 3 bucket ("libcrypto", "libssl", ...) *)
  at_op : string;  (** charge op label ("encaps kyber768", ...) *)
  at_count : int;  (** charge events in the attribution cell *)
  at_virtual_ms : float;  (** summed virtual ms the ledger was charged *)
  at_real_ms : float option;
      (** measured real ms per op (median) for ops the profile registry
          covers; [None] for protocol stand-ins with no real
          implementation (parse/build, per-packet kernel work) *)
}

type artifact = {
  pa_seed : string;
  pa_attr_kem : string;
  pa_attr_sig : string;
  pa_attr_scenario : string;
  pa_ops : measured list;
  pa_attribution : attr_row list;
      (** sorted by virtual ms (desc, then lib/op) — a deterministic
          order; the renderer re-sorts by real ms for display *)
}

val schema_version : string
(** ["pqtls-bench-profile/1"]; bump when the JSON shape changes. *)

val measure : op -> Metrics.dist * gc_delta
(** Micro-benchmark one op on the calling domain: warmup, then
    [op_samples] timed batches with {!Clock}, with one [Gc.quick_stat]
    delta bracketing the whole sampled region. *)

val run : ?jobs:int -> ?ops_filter:string -> seed:string -> unit -> artifact
(** Measure the (optionally filtered) registry, sharding ops across
    [jobs] domains (default 1 — parallel measurement trades accuracy
    for wall time; the artifact's shape is identical either way), and
    run the attribution cell (a traced mocked-crypto kyber768 x
    dilithium3 cell under the ideal scenario, seeded from [seed]).
    @raise Invalid_argument when the filter matches nothing. *)

val to_json_string : artifact -> string
val shape_json_string : artifact -> string
(** The artifact with every volatile leaf (times, GC deltas, real
    attribution columns) zeroed out: what must be byte-identical across
    [--jobs] settings and repeated runs. *)

val render_table : artifact -> string
(** Plain-text per-op table followed by {!render_attribution}. *)

val render_attribution : artifact -> string
(** The "virtual vs real" table naming the substrates that dominate
    campaign wall-clock. *)

val folded : artifact -> string
(** Folded stacks ([group;alg;kind <self-us>]) weighted by median real
    time, via the {!Trace.Export} flamegraph exporter. *)

(** {1 Comparison} — the regression gate behind
    [pqtls-bench compare-profile]. *)

type p_op = {
  q_name : string;
  q_group : string;
  q_alg : string;
  q_kind : string;
  q_samples : int;
  q_batch : int;
  q_warmup : int;
  q_metrics : (string * float) list;
      (** dotted numeric leaves ("time_ms.p50", "gc.minor_words", ...)
          in serialization order *)
}

type p_artifact = { q_seed : string; q_ops : p_op list }

val of_json_string : string -> (p_artifact, string) result
(** Rejects other schema versions and malformed documents. *)

val diff : ?rel_tol:float -> p_artifact -> p_artifact -> string list
(** Per-op regression issues between a baseline and a candidate, empty
    when they agree. Ops match on name; unmatched ops and shape changes
    (iteration counts) are always issues. Of the measured values only
    the stable ones are judged — median time and minor allocated words
    per op — each within [rel_tol] (default [0.25]; wall-clock medians
    jitter run to run even on one machine). *)
