type sample = {
  part_a_ms : float;
  part_b_ms : float;
  total_ms : float;
  iteration_ms : float;
  client_bytes : int;
  server_bytes : int;
  client_pkts : int;
  server_pkts : int;
  retransmissions : int;
  fast_retransmissions : int;
  timeout_retransmissions : int;
  rtt_samples : int;
}

type outcome = {
  kem_name : string;
  sig_name : string;
  scenario_name : string;
  buffering : Tls.Config.buffering;
  samples : sample list;
  handshakes_per_minute : int;
  client_cpu_ms : float;
  server_cpu_ms : float;
  client_ledger : (string * float) list;
  server_ledger : (string * float) list;
  client_cpu_charges : int;
  server_cpu_charges : int;
}

(* the measurement loop itself burns some client/server CPU between
   handshakes (python tooling, socket teardown); shows up in Table 3 *)
let harness_python_ms = 0.45
let harness_libc_ms = 0.12

let mark_time ?after tap label =
  match Netsim.Tap.find_mark tap ?after label with
  | Some e -> e.Netsim.Tap.time
  | None -> nan

let normalize_ledger ledger =
  let total = List.fold_left (fun acc (_, ms) -> acc +. ms) 0. ledger in
  if total <= 0. then []
  else List.map (fun (lib, ms) -> (lib, ms /. total)) ledger

type spec = {
  sp_buffering : Tls.Config.buffering;
  sp_scenario : Scenario.t;
  sp_duration_s : float;
  sp_max_samples : int option;
  sp_seed : string;
  sp_real_crypto : bool;
  sp_tcp_config : Netsim.Tcp.config;
  sp_buffer_limit : int;
  sp_wrong_key_share : bool;
  sp_kem : Pqc.Kem.t;
  sp_sig : Pqc.Sigalg.t;
}

let spec ?(buffering = Tls.Config.Optimized_push)
    ?(scenario = Scenario.no_emulation) ?(duration_s = 60.) ?max_samples
    ?(seed = "pqtls") ?(real_crypto = false)
    ?(tcp_config = Netsim.Tcp.default_config) ?(buffer_limit = 4096)
    ?(wrong_key_share = false) kem sig_alg =
  { sp_buffering = buffering;
    sp_scenario = scenario;
    sp_duration_s = duration_s;
    sp_max_samples = max_samples;
    sp_seed = seed;
    sp_real_crypto = real_crypto;
    sp_tcp_config = tcp_config;
    sp_buffer_limit = buffer_limit;
    sp_wrong_key_share = wrong_key_share;
    sp_kem = kem;
    sp_sig = sig_alg }

let spec_label sp =
  Printf.sprintf "%s x %s @ %s%s" sp.sp_kem.Pqc.Kem.name
    sp.sp_sig.Pqc.Sigalg.name sp.sp_scenario.Scenario.name
    (match sp.sp_buffering with
    | Tls.Config.Optimized_push -> ""
    | Tls.Config.Default_buffered -> " (default-buffered)")

(* A stable, complete rendering of every input that can change the
   outcome — the pre-image of the result-cache key. Algorithms appear by
   name only: their behaviour is code, which the cache covers separately
   with the executable fingerprint. *)
let spec_fingerprint sp =
  let netem = sp.sp_scenario.Scenario.netem in
  let tcp = sp.sp_tcp_config in
  Printf.sprintf
    "v1|kem=%s|sig=%s|scenario=%s|loss=%h|loss_towards=%s|delay=%h|jitter=%h|rate=%h|buffering=%s|duration=%h|max_samples=%s|seed=%s|real=%b|mss=%d|cwnd=%d|kernel_ms=%h|buffer_limit=%d|wrong_ks=%b"
    sp.sp_kem.Pqc.Kem.name sp.sp_sig.Pqc.Sigalg.name
    sp.sp_scenario.Scenario.name netem.Netsim.Link.loss
    (Option.value ~default:"-" netem.Netsim.Link.loss_towards)
    netem.Netsim.Link.delay_s netem.Netsim.Link.jitter_s
    netem.Netsim.Link.rate_bps
    (match sp.sp_buffering with
    | Tls.Config.Optimized_push -> "push"
    | Tls.Config.Default_buffered -> "buffered")
    sp.sp_duration_s
    (match sp.sp_max_samples with None -> "-" | Some n -> string_of_int n)
    sp.sp_seed sp.sp_real_crypto tcp.Netsim.Tcp.mss
    tcp.Netsim.Tcp.init_cwnd_segments tcp.Netsim.Tcp.kernel_cost_ms_per_packet
    sp.sp_buffer_limit sp.sp_wrong_key_share

let run_spec_traced sp =
  let { sp_buffering = buffering;
        sp_scenario = scenario;
        sp_duration_s = duration_s;
        sp_max_samples = max_samples;
        sp_seed = seed;
        sp_real_crypto = real_crypto;
        sp_tcp_config = tcp_config;
        sp_buffer_limit = buffer_limit;
        sp_wrong_key_share = wrong_key_share;
        sp_kem = kem;
        sp_sig = sig_alg } =
    sp
  in
  (* loss-free runs are deterministic, so a handful of iterations pins the
     medians; lossy runs need a population for a stable median *)
  let max_samples =
    match max_samples with
    | Some n -> n
    | None -> if scenario.Scenario.netem.Netsim.Link.loss = 0. then 40 else 200
  in
  let engine = Netsim.Engine.create () in
  let root_rng =
    Crypto.Drbg.create
      ~seed:
        (Printf.sprintf "%s/%s/%s/%s/%b" seed kem.Pqc.Kem.name
           sig_alg.Pqc.Sigalg.name scenario.Scenario.name
           (buffering = Tls.Config.Optimized_push))
  in
  let tap = Netsim.Tap.create () in
  let link =
    Netsim.Link.create engine (Crypto.Drbg.fork root_rng "link")
      scenario.Scenario.netem ~tap:(fun time p -> Netsim.Tap.tap tap time p)
  in
  let client_host = Netsim.Host.create engine ~name:"client" in
  let server_host = Netsim.Host.create engine ~name:"server" in
  let config =
    (if real_crypto then Tls.Config.make else Tls.Config.mocked) ~buffering
      ~buffer_limit ~wrong_first_key_share:wrong_key_share kem sig_alg
  in
  let samples = ref [] in
  let count = ref 0 in
  let rec iteration () =
    if Netsim.Engine.now engine < duration_s && !count < max_samples then begin
      Netsim.Tap.clear tap;
      let started = Netsim.Engine.now engine in
      (* per-connection kernel setup (accept/socket) on the server *)
      Netsim.Host.charge_async server_host
        ~op:Pqc.Costs.connection_setup.Pqc.Costs.label
        ~ms:Pqc.Costs.connection_setup.Pqc.Costs.ms ~lib:"kernel";
      let rng = Crypto.Drbg.fork root_rng (string_of_int !count) in
      Tls.Handshake.run ~engine ~link ~tcp_config ~client_host ~server_host
        ~config ~rng ~on_done:(fun r ->
          (* chained lookups: stale retransmissions from the previous
             connection may still be in flight when the trace restarts *)
          let t_ch = mark_time tap "CH" in
          let t_sh = mark_time tap ~after:t_ch "SH" in
          let t_fin = mark_time tap ~after:t_sh "FIN_C" in
          let finished = Netsim.Engine.now engine in
          (* measurement-loop overhead between iterations *)
          Netsim.Host.charge_async client_host ~op:"harness python"
            ~ms:harness_python_ms ~lib:"python";
          Netsim.Host.charge_async server_host ~op:"harness python"
            ~ms:harness_python_ms ~lib:"python";
          Netsim.Host.charge_async client_host ~op:"harness libc"
            ~ms:harness_libc_ms ~lib:"libc";
          Netsim.Host.charge_async server_host ~op:"harness libc"
            ~ms:harness_libc_ms ~lib:"libc";
          Netsim.Host.charge_async client_host ~op:"nic driver" ~ms:0.06
            ~lib:"ixgbe";
          Netsim.Host.charge_async server_host ~op:"nic driver" ~ms:0.06
            ~lib:"ixgbe";
          let gap = Pqc.Costs.harness_gap_ms /. 1000. in
          let sample =
            { part_a_ms = (t_sh -. t_ch) *. 1000.;
              part_b_ms = (t_fin -. t_sh) *. 1000.;
              total_ms = (t_fin -. t_ch) *. 1000.;
              iteration_ms = (finished -. started +. gap) *. 1000.;
              client_bytes = Netsim.Tcp.bytes_sent r.Tls.Handshake.client_tcp;
              server_bytes = Netsim.Tcp.bytes_sent r.Tls.Handshake.server_tcp;
              client_pkts = Netsim.Tcp.packets_sent r.Tls.Handshake.client_tcp;
              server_pkts = Netsim.Tcp.packets_sent r.Tls.Handshake.server_tcp;
              retransmissions =
                Netsim.Tcp.retransmissions r.Tls.Handshake.client_tcp
                + Netsim.Tcp.retransmissions r.Tls.Handshake.server_tcp;
              fast_retransmissions =
                Netsim.Tcp.fast_retransmissions r.Tls.Handshake.client_tcp
                + Netsim.Tcp.fast_retransmissions r.Tls.Handshake.server_tcp;
              timeout_retransmissions =
                Netsim.Tcp.timeout_retransmissions r.Tls.Handshake.client_tcp
                + Netsim.Tcp.timeout_retransmissions r.Tls.Handshake.server_tcp;
              rtt_samples =
                Netsim.Tcp.rtt_samples r.Tls.Handshake.client_tcp
                + Netsim.Tcp.rtt_samples r.Tls.Handshake.server_tcp }
          in
          samples := sample :: !samples;
          incr count;
          (* tracing: one "handshake" span per host (iteration start to
             that side's Finished) wrapping its message spans, and phase
             spans on a dedicated track reproducing the tap-derived
             part A / part B split of Figure 1 *)
          (if Trace.Sink.enabled () then begin
             let it = [ ("iteration", string_of_int !count) ] in
             let span_if track cat name t0 t1 =
               if not (Float.is_nan t0 || Float.is_nan t1) then
                 Trace.Sink.span ~track ~cat ~name ~args:it t0 t1
             in
             span_if "client" "handshake" "handshake" started
               r.Tls.Handshake.client_finished_at;
             span_if "server" "handshake" "handshake" started
               r.Tls.Handshake.server_finished_at;
             span_if "phases" "phase" "handshake" t_ch t_fin;
             span_if "phases" "phase" "partA CH->SH" t_ch t_sh;
             span_if "phases" "phase" "partB SH->Fin" t_sh t_fin
           end);
          Netsim.Tcp.close r.Tls.Handshake.client_tcp;
          Netsim.Tcp.close r.Tls.Handshake.server_tcp;
          Netsim.Engine.schedule engine ~delay:gap iteration)
    end
  in
  iteration ();
  Netsim.Engine.run engine ~until:(duration_s +. 120.);
  let samples = List.rev !samples in
  if samples = [] then
    invalid_arg
      (Printf.sprintf "Experiment.run: no handshake completed for %s x %s"
         kem.Pqc.Kem.name sig_alg.Pqc.Sigalg.name);
  let mean_iter =
    Stats.mean (List.map (fun s -> s.iteration_ms) samples) /. 1000.
  in
  (* a per-minute rate whatever the configured duration: extrapolate
     from the mean iteration time when the sample cap cut the run short,
     otherwise scale the raw count by 60 / duration *)
  let per_minute =
    if !count >= max_samples then int_of_float (60. /. mean_iter)
    else int_of_float (float_of_int !count *. 60. /. duration_s)
  in
  let n = float_of_int !count in
  { kem_name = kem.Pqc.Kem.name;
    sig_name = sig_alg.Pqc.Sigalg.name;
    scenario_name = scenario.Scenario.name;
    buffering;
    samples;
    handshakes_per_minute = per_minute;
    client_cpu_ms = Netsim.Host.total_cpu_ms client_host /. n;
    server_cpu_ms = Netsim.Host.total_cpu_ms server_host /. n;
    client_ledger = normalize_ledger (Netsim.Host.ledger client_host);
    server_ledger = normalize_ledger (Netsim.Host.ledger server_host);
    client_cpu_charges = Netsim.Host.charge_count client_host;
    server_cpu_charges = Netsim.Host.charge_count server_host }

(* [trace] routes every event emitted while the cell runs (cpu spans,
   TCP instants, wire occupancy, handshake phases) into [buf] via the
   domain-local sink; [None] leaves the sink untouched, so tracing costs
   one DLS read per emission site when disabled *)
let run_spec ?trace sp =
  match trace with
  | None -> run_spec_traced sp
  | Some buf -> Trace.Sink.run_with buf (fun () -> run_spec_traced sp)

let run ?buffering ?scenario ?duration_s ?max_samples ?seed ?real_crypto
    ?tcp_config ?buffer_limit ?wrong_key_share kem sig_alg =
  run_spec
    (spec ?buffering ?scenario ?duration_s ?max_samples ?seed ?real_crypto
       ?tcp_config ?buffer_limit ?wrong_key_share kem sig_alg)

let median_of f outcome = Stats.median (List.map f outcome.samples)

let median_bytes f outcome =
  int_of_float (Stats.median_int (List.map f outcome.samples))
