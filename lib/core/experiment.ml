type sample = {
  part_a_ms : float;
  part_b_ms : float;
  total_ms : float;
  iteration_ms : float;
  client_bytes : int;
  server_bytes : int;
  client_pkts : int;
  server_pkts : int;
  retransmissions : int;
  fast_retransmissions : int;
  timeout_retransmissions : int;
  rtt_samples : int;
  resumed : bool;
  early_data_bytes : int;
}

type outcome = {
  kem_name : string;
  sig_name : string;
  scenario_name : string;
  mix_name : string;
  chain_name : string;
  chain_levels : (string * string * int * float) list;
  buffering : Tls.Config.buffering;
  samples : sample list;
  handshakes_per_minute : int;
  client_cpu_ms : float;
  server_cpu_ms : float;
  client_ledger : (string * float) list;
  server_ledger : (string * float) list;
  client_cpu_charges : int;
  server_cpu_charges : int;
}

(* the measurement loop itself burns some client/server CPU between
   handshakes (python tooling, socket teardown); shows up in Table 3 *)
let harness_python_ms = 0.45
let harness_libc_ms = 0.12

let mark_time ?after tap label =
  match Netsim.Tap.find_mark tap ?after label with
  | Some e -> e.Netsim.Tap.time
  | None -> nan

let normalize_ledger ledger =
  let total = List.fold_left (fun acc (_, ms) -> acc +. ms) 0. ledger in
  if total <= 0. then []
  else List.map (fun (lib, ms) -> (lib, ms /. total)) ledger

type spec = {
  sp_buffering : Tls.Config.buffering;
  sp_scenario : Scenario.t;
  sp_duration_s : float;
  sp_max_samples : int option;
  sp_seed : string;
  sp_real_crypto : bool;
  sp_tcp_config : Netsim.Tcp.config;
  sp_buffer_limit : int;
  sp_wrong_key_share : bool;
  sp_mix : Mix.t;
  sp_chain : Tls.Chain_profile.t;
  sp_kem : Pqc.Kem.t;
  sp_sig : Pqc.Sigalg.t;
}

let spec ?(buffering = Tls.Config.Optimized_push)
    ?(scenario = Scenario.no_emulation) ?(duration_s = 60.) ?max_samples
    ?(seed = "pqtls") ?(real_crypto = false)
    ?(tcp_config = Netsim.Tcp.default_config) ?(buffer_limit = 4096)
    ?(wrong_key_share = false) ?(mix = Mix.full)
    ?(chain = Tls.Chain_profile.default) kem sig_alg =
  { sp_buffering = buffering;
    sp_scenario = scenario;
    sp_duration_s = duration_s;
    sp_max_samples = max_samples;
    sp_seed = seed;
    sp_real_crypto = real_crypto;
    sp_tcp_config = tcp_config;
    sp_buffer_limit = buffer_limit;
    sp_wrong_key_share = wrong_key_share;
    sp_mix = mix;
    sp_chain = chain;
    sp_kem = kem;
    sp_sig = sig_alg }

let spec_label sp =
  Printf.sprintf "%s x %s @ %s%s%s" sp.sp_kem.Pqc.Kem.name
    sp.sp_sig.Pqc.Sigalg.name sp.sp_scenario.Scenario.name
    (match sp.sp_buffering with
    | Tls.Config.Optimized_push -> ""
    | Tls.Config.Default_buffered -> " (default-buffered)")
    (if Mix.is_full sp.sp_mix then ""
     else Printf.sprintf " [%s]" sp.sp_mix.Mix.label)
  ^
  if Tls.Chain_profile.is_default sp.sp_chain then ""
  else Printf.sprintf " {%s}" sp.sp_chain.Tls.Chain_profile.label

(* A stable, complete rendering of every input that can change the
   outcome — the pre-image of the result-cache key. Algorithms appear by
   name only: their behaviour is code, which the cache covers separately
   with the executable fingerprint. The mix and chain suffixes only
   appear for non-default values so every pre-existing cell keeps its
   cache key. *)
let spec_fingerprint sp =
  let netem = sp.sp_scenario.Scenario.netem in
  let tcp = sp.sp_tcp_config in
  Printf.sprintf
    "v1|kem=%s|sig=%s|scenario=%s|loss=%h|loss_towards=%s|delay=%h|jitter=%h|rate=%h|buffering=%s|duration=%h|max_samples=%s|seed=%s|real=%b|mss=%d|cwnd=%d|kernel_ms=%h|buffer_limit=%d|wrong_ks=%b%s"
    sp.sp_kem.Pqc.Kem.name sp.sp_sig.Pqc.Sigalg.name
    sp.sp_scenario.Scenario.name netem.Netsim.Link.loss
    (Option.value ~default:"-" netem.Netsim.Link.loss_towards)
    netem.Netsim.Link.delay_s netem.Netsim.Link.jitter_s
    netem.Netsim.Link.rate_bps
    (match sp.sp_buffering with
    | Tls.Config.Optimized_push -> "push"
    | Tls.Config.Default_buffered -> "buffered")
    sp.sp_duration_s
    (match sp.sp_max_samples with None -> "-" | Some n -> string_of_int n)
    sp.sp_seed sp.sp_real_crypto tcp.Netsim.Tcp.mss
    tcp.Netsim.Tcp.init_cwnd_segments tcp.Netsim.Tcp.kernel_cost_ms_per_packet
    sp.sp_buffer_limit sp.sp_wrong_key_share
    ((if Mix.is_full sp.sp_mix then ""
      else Printf.sprintf "|mix=%s" sp.sp_mix.Mix.name)
    ^
    if Tls.Chain_profile.is_default sp.sp_chain then ""
    else Printf.sprintf "|chain=%s" sp.sp_chain.Tls.Chain_profile.name)

let run_spec_traced sp =
  let { sp_buffering = buffering;
        sp_scenario = scenario;
        sp_duration_s = duration_s;
        sp_max_samples = max_samples;
        sp_seed = seed;
        sp_real_crypto = real_crypto;
        sp_tcp_config = tcp_config;
        sp_buffer_limit = buffer_limit;
        sp_wrong_key_share = wrong_key_share;
        sp_mix = mix;
        sp_chain = chain;
        sp_kem = kem;
        sp_sig = sig_alg } =
    sp
  in
  (* loss-free runs are deterministic, so a handful of iterations pins the
     medians; lossy runs need a population for a stable median *)
  let max_samples =
    match max_samples with
    | Some n -> n
    | None -> if scenario.Scenario.netem.Netsim.Link.loss = 0. then 40 else 200
  in
  let engine = Netsim.Engine.create () in
  let root_rng =
    Crypto.Drbg.create
      ~seed:
        (Printf.sprintf "%s/%s/%s/%s/%b" seed kem.Pqc.Kem.name
           sig_alg.Pqc.Sigalg.name scenario.Scenario.name
           (buffering = Tls.Config.Optimized_push))
  in
  let tap = Netsim.Tap.create () in
  let link =
    Netsim.Link.create engine (Crypto.Drbg.fork root_rng "link")
      scenario.Scenario.netem ~tap:(fun time p -> Netsim.Tap.tap tap time p)
  in
  let client_host = Netsim.Host.create engine ~name:"client" in
  let server_host = Netsim.Host.create engine ~name:"server" in
  let config =
    (if real_crypto then Tls.Config.make else Tls.Config.mocked) ~buffering
      ~buffer_limit ~wrong_first_key_share:wrong_key_share
      ~chain_profile:chain kem sig_alg
  in
  (* the per-level placement breakdown of the credentials this cell's
     handshakes will serve (generation is cached, never measured) *)
  let chain_levels =
    let creds =
      Tls.Credentials.get ~profile:config.Tls.Config.chain_profile
        config.Tls.Config.sig_alg
    in
    List.map
      (fun l ->
        ( l.Tls.Chain.lv_name,
          l.Tls.Chain.lv_issuer_sa,
          l.Tls.Chain.lv_bytes,
          l.Tls.Chain.lv_verify_ms ))
      (Tls.Chain.levels creds.Tls.Credentials.chain)
  in
  let samples = ref [] in
  let count = ref 0 in
  (* resumption state threads through the loop exactly as a client
     keyring would: the first connection is always full (no ticket yet),
     later ones resume whenever the mix's coin says so and a ticket is in
     hand. The coin stream is a dedicated fork so full-mix cells draw
     nothing and stay bit-identical to the pre-mix campaign. *)
  let mixing = mix.Mix.resumed > 0. in
  let mix_rng = Crypto.Drbg.fork root_rng "mix" in
  let session = ref None in
  let rec iteration () =
    if Netsim.Engine.now engine < duration_s && !count < max_samples then begin
      Netsim.Tap.clear tap;
      let started = Netsim.Engine.now engine in
      (* per-connection kernel setup (accept/socket) on the server *)
      Netsim.Host.charge_async server_host
        ~op:Pqc.Costs.connection_setup.Pqc.Costs.label
        ~ms:Pqc.Costs.connection_setup.Pqc.Costs.ms ~lib:"kernel";
      let rng = Crypto.Drbg.fork root_rng (string_of_int !count) in
      let resume =
        if mixing && Crypto.Drbg.float mix_rng < mix.Mix.resumed then !session
        else None
      in
      Tls.Handshake.run ?resume
        ~early_data:(resume <> None && mix.Mix.early_data) ~issue_ticket:mixing
        ~ticket_key:(seed ^ "/stek")
        ~on_ticket:(fun s -> session := Some s)
        ~engine ~link ~tcp_config ~client_host ~server_host ~config ~rng
        ~on_done:(fun r ->
          (* chained lookups: stale retransmissions from the previous
             connection may still be in flight when the trace restarts *)
          let t_ch = mark_time tap "CH" in
          let t_sh = mark_time tap ~after:t_ch "SH" in
          let t_fin = mark_time tap ~after:t_sh "FIN_C" in
          let finished = Netsim.Engine.now engine in
          (* measurement-loop overhead between iterations *)
          Netsim.Host.charge_async client_host ~op:"harness python"
            ~ms:harness_python_ms ~lib:"python";
          Netsim.Host.charge_async server_host ~op:"harness python"
            ~ms:harness_python_ms ~lib:"python";
          Netsim.Host.charge_async client_host ~op:"harness libc"
            ~ms:harness_libc_ms ~lib:"libc";
          Netsim.Host.charge_async server_host ~op:"harness libc"
            ~ms:harness_libc_ms ~lib:"libc";
          Netsim.Host.charge_async client_host ~op:"nic driver" ~ms:0.06
            ~lib:"ixgbe";
          Netsim.Host.charge_async server_host ~op:"nic driver" ~ms:0.06
            ~lib:"ixgbe";
          let gap = Pqc.Costs.harness_gap_ms /. 1000. in
          let sample =
            { part_a_ms = (t_sh -. t_ch) *. 1000.;
              part_b_ms = (t_fin -. t_sh) *. 1000.;
              total_ms = (t_fin -. t_ch) *. 1000.;
              iteration_ms = (finished -. started +. gap) *. 1000.;
              client_bytes = Netsim.Tcp.bytes_sent r.Tls.Handshake.client_tcp;
              server_bytes = Netsim.Tcp.bytes_sent r.Tls.Handshake.server_tcp;
              client_pkts = Netsim.Tcp.packets_sent r.Tls.Handshake.client_tcp;
              server_pkts = Netsim.Tcp.packets_sent r.Tls.Handshake.server_tcp;
              retransmissions =
                Netsim.Tcp.retransmissions r.Tls.Handshake.client_tcp
                + Netsim.Tcp.retransmissions r.Tls.Handshake.server_tcp;
              fast_retransmissions =
                Netsim.Tcp.fast_retransmissions r.Tls.Handshake.client_tcp
                + Netsim.Tcp.fast_retransmissions r.Tls.Handshake.server_tcp;
              timeout_retransmissions =
                Netsim.Tcp.timeout_retransmissions r.Tls.Handshake.client_tcp
                + Netsim.Tcp.timeout_retransmissions r.Tls.Handshake.server_tcp;
              rtt_samples =
                Netsim.Tcp.rtt_samples r.Tls.Handshake.client_tcp
                + Netsim.Tcp.rtt_samples r.Tls.Handshake.server_tcp;
              resumed = r.Tls.Handshake.resumed;
              early_data_bytes = r.Tls.Handshake.early_data_bytes }
          in
          samples := sample :: !samples;
          incr count;
          (* tracing: one "handshake" span per host (iteration start to
             that side's Finished) wrapping its message spans, and phase
             spans on a dedicated track reproducing the tap-derived
             part A / part B split of Figure 1 *)
          (if Trace.Sink.enabled () then begin
             let it = [ ("iteration", string_of_int !count) ] in
             let span_if track cat name t0 t1 =
               if not (Float.is_nan t0 || Float.is_nan t1) then
                 Trace.Sink.span ~track ~cat ~name ~args:it t0 t1
             in
             span_if "client" "handshake" "handshake" started
               r.Tls.Handshake.client_finished_at;
             span_if "server" "handshake" "handshake" started
               r.Tls.Handshake.server_finished_at;
             span_if "phases" "phase" "handshake" t_ch t_fin;
             span_if "phases" "phase" "partA CH->SH" t_ch t_sh;
             span_if "phases" "phase" "partB SH->Fin" t_sh t_fin
           end);
          Netsim.Tcp.close r.Tls.Handshake.client_tcp;
          Netsim.Tcp.close r.Tls.Handshake.server_tcp;
          Netsim.Engine.schedule engine ~delay:gap iteration)
        ()
    end
  in
  iteration ();
  Netsim.Engine.run engine ~until:(duration_s +. 120.);
  let samples = List.rev !samples in
  if samples = [] then
    invalid_arg
      (Printf.sprintf "Experiment.run: no handshake completed for %s x %s"
         kem.Pqc.Kem.name sig_alg.Pqc.Sigalg.name);
  let mean_iter =
    Stats.mean (List.map (fun s -> s.iteration_ms) samples) /. 1000.
  in
  (* a per-minute rate whatever the configured duration: extrapolate
     from the mean iteration time when the sample cap cut the run short,
     otherwise scale the raw count by 60 / duration *)
  let per_minute =
    if !count >= max_samples then int_of_float (60. /. mean_iter)
    else int_of_float (float_of_int !count *. 60. /. duration_s)
  in
  let n = float_of_int !count in
  { kem_name = kem.Pqc.Kem.name;
    sig_name = sig_alg.Pqc.Sigalg.name;
    scenario_name = scenario.Scenario.name;
    mix_name = mix.Mix.name;
    chain_name = chain.Tls.Chain_profile.name;
    chain_levels;
    buffering;
    samples;
    handshakes_per_minute = per_minute;
    client_cpu_ms = Netsim.Host.total_cpu_ms client_host /. n;
    server_cpu_ms = Netsim.Host.total_cpu_ms server_host /. n;
    client_ledger = normalize_ledger (Netsim.Host.ledger client_host);
    server_ledger = normalize_ledger (Netsim.Host.ledger server_host);
    client_cpu_charges = Netsim.Host.charge_count client_host;
    server_cpu_charges = Netsim.Host.charge_count server_host }

(* [trace] routes every event emitted while the cell runs (cpu spans,
   TCP instants, wire occupancy, handshake phases) into [buf] via the
   domain-local sink; [None] leaves the sink untouched, so tracing costs
   one DLS read per emission site when disabled *)
let run_spec ?trace sp =
  match trace with
  | None -> run_spec_traced sp
  | Some buf -> Trace.Sink.run_with buf (fun () -> run_spec_traced sp)

let run ?buffering ?scenario ?duration_s ?max_samples ?seed ?real_crypto
    ?tcp_config ?buffer_limit ?wrong_key_share ?mix ?chain kem sig_alg =
  run_spec
    (spec ?buffering ?scenario ?duration_s ?max_samples ?seed ?real_crypto
       ?tcp_config ?buffer_limit ?wrong_key_share ?mix ?chain kem sig_alg)

let median_of f outcome = Stats.median (List.map f outcome.samples)

let median_bytes f outcome =
  int_of_float (Stats.median_int (List.map f outcome.samples))

(* ---- server-farm cells (Table 5) ---------------------------------------- *)

type farm_spec = {
  fa_kem : Pqc.Kem.t;
  fa_sig : Pqc.Sigalg.t;
  fa_scenario : Scenario.t;
  fa_profile : string;
  fa_policy : string;
  fa_servers : int;
  fa_max_concurrent : int;
  fa_accept_queue : int;
  fa_utilization : float;
  fa_duration_s : float;
  fa_max_connections : int;
  fa_adv_fraction : float;
  fa_adv_kem : Pqc.Kem.t;
  fa_mix : Mix.t;
  fa_seed : string;
}

type farm_outcome = {
  fo_kem_name : string;
  fo_sig_name : string;
  fo_scenario_name : string;
  fo_profile : string;
  fo_policy : string;
  fo_servers : int;
  fo_utilization : float;
  fo_capacity_hs_s : float;
  fo_offered_rate : float;
  fo_window_s : float;
  fo_offered : int;
  fo_completed : int;
  fo_dropped : int;
  fo_unfinished : int;
  fo_latencies_ms : float list;
  fo_wait_ms : float list;
  fo_server_cpu_ms : float;
  fo_server_busy : float;
  fo_server_ledger : (string * float) list;
  fo_per_server_completed : int list;
  fo_mix_name : string;
  fo_resumed_completed : int;
  fo_early_data_bytes : int;
  fo_adv_launched : int;
  fo_adv_completed : int;
  fo_adv_client_bytes : int;
  fo_adv_server_bytes : int;
  fo_benign_client_bytes : int;
  fo_benign_server_bytes : int;
  fo_cal_client_cpu_ms : float;
  fo_cal_server_cpu_ms : float;
  fo_cal_adv_server_cpu_ms : float;
}

let farm_spec ?(scenario = Scenario.no_emulation) ?(profile = "poisson")
    ?(policy = "least-connections") ?(servers = 3) ?(max_concurrent = 64)
    ?(accept_queue = 128) ?(utilization = 0.9) ?(duration_s = 1.)
    ?(max_connections = 1200) ?(adv_fraction = 0.)
    ?(adv_kem = Pqc.Registry.baseline_kem) ?(mix = Mix.full) ?(seed = "pqtls")
    kem sig_alg =
  (* validate eagerly so a typo fails at grid-build time, not mid-cell *)
  ignore (Netsim.Workload.find profile);
  ignore (Netsim.Balancer.policy_of_name policy);
  { fa_kem = kem;
    fa_sig = sig_alg;
    fa_scenario = scenario;
    fa_profile = profile;
    fa_policy = policy;
    fa_servers = servers;
    fa_max_concurrent = max_concurrent;
    fa_accept_queue = accept_queue;
    fa_utilization = utilization;
    fa_duration_s = duration_s;
    fa_max_connections = max_connections;
    fa_adv_fraction = adv_fraction;
    fa_adv_kem = adv_kem;
    fa_mix = mix;
    fa_seed = seed }

let farm_spec_label sp =
  Printf.sprintf "farm %s x %s @ %s/%s u=%.2f%s%s" sp.fa_kem.Pqc.Kem.name
    sp.fa_sig.Pqc.Sigalg.name sp.fa_scenario.Scenario.name sp.fa_profile
    sp.fa_utilization
    (if sp.fa_adv_fraction > 0. then
       Printf.sprintf " adv=%.0f%%" (100. *. sp.fa_adv_fraction)
     else "")
    (if Mix.is_full sp.fa_mix then ""
     else Printf.sprintf " [%s]" sp.fa_mix.Mix.label)

let farm_spec_fingerprint sp =
  let netem = sp.fa_scenario.Scenario.netem in
  Printf.sprintf
    "farm-v1|kem=%s|sig=%s|scenario=%s|loss=%h|loss_towards=%s|delay=%h|jitter=%h|rate=%h|profile=%s|policy=%s|servers=%d|conc=%d|queue=%d|util=%h|duration=%h|maxconn=%d|adv=%h|advkem=%s|seed=%s%s"
    sp.fa_kem.Pqc.Kem.name sp.fa_sig.Pqc.Sigalg.name
    sp.fa_scenario.Scenario.name netem.Netsim.Link.loss
    (Option.value ~default:"-" netem.Netsim.Link.loss_towards)
    netem.Netsim.Link.delay_s netem.Netsim.Link.jitter_s
    netem.Netsim.Link.rate_bps sp.fa_profile sp.fa_policy sp.fa_servers
    sp.fa_max_concurrent sp.fa_accept_queue sp.fa_utilization
    sp.fa_duration_s sp.fa_max_connections sp.fa_adv_fraction
    sp.fa_adv_kem.Pqc.Kem.name sp.fa_seed
    (if Mix.is_full sp.fa_mix then ""
     else Printf.sprintf "|mix=%s" sp.fa_mix.Mix.name)

(* per-iteration harness charges of the closed-loop calibration run that
   a farm server never pays: measurement-loop python + libc plus the nic
   driver touch (see [run_spec_traced]) *)
let harness_overhead_ms = harness_python_ms +. harness_libc_ms +. 0.06

(* per-handshake CPU of one side under this KA x SA x scenario, from a
   short closed-loop run with the harness overhead removed — the service
   rate behind "sustainable capacity" *)
let calibrate sp ~kem ~mix ~seed =
  let o =
    run_spec
      (spec ~scenario:sp.fa_scenario ~duration_s:30. ~max_samples:8 ~seed ~mix
         kem sp.fa_sig)
  in
  ( Float.max 0.001 (o.client_cpu_ms -. harness_overhead_ms),
    Float.max 0.001 (o.server_cpu_ms -. harness_overhead_ms) )

let run_farm_spec sp =
  (* benign capacity is calibrated under the cell's workload mix, so a
     90%-resumed farm is offered the (higher) steady-state rate its
     cheaper handshakes sustain; adversarial clients never resume *)
  let cal_client, cal_server =
    calibrate sp ~kem:sp.fa_kem ~mix:sp.fa_mix ~seed:(sp.fa_seed ^ "/cal")
  in
  let _, cal_adv_server =
    if sp.fa_adv_fraction > 0. then
      calibrate sp ~kem:sp.fa_adv_kem ~mix:Mix.full
        ~seed:(sp.fa_seed ^ "/cal-adv")
    else (cal_client, cal_server)
  in
  (* one core per server: CPU-sustainable capacity of the whole farm *)
  let capacity = float_of_int sp.fa_servers *. 1000. /. cal_server in
  let rate = sp.fa_utilization *. capacity in
  (* preserve the profile shape under the connection cap by shrinking
     the window instead of truncating the stream's tail *)
  let window =
    Float.min sp.fa_duration_s (float_of_int sp.fa_max_connections /. rate)
  in
  let engine = Netsim.Engine.create () in
  let root_rng =
    Crypto.Drbg.create
      ~seed:
        (Printf.sprintf "%s/farm/%s/%s/%s/%s/%s" sp.fa_seed
           sp.fa_kem.Pqc.Kem.name sp.fa_sig.Pqc.Sigalg.name
           sp.fa_scenario.Scenario.name sp.fa_profile sp.fa_policy)
  in
  let profile = Netsim.Workload.find sp.fa_profile in
  let arrivals =
    Netsim.Workload.arrivals profile
      ~rng:(Crypto.Drbg.fork root_rng "arrivals")
      ~rate ~duration_s:window
  in
  let server_hosts =
    Array.init sp.fa_servers (fun i ->
        Netsim.Host.create engine ~name:(Printf.sprintf "server%d" i))
  in
  let benign_config = Tls.Config.mocked sp.fa_kem sp.fa_sig in
  let adv_config = Tls.Config.mocked sp.fa_adv_kem sp.fa_sig in
  let adv_launched = ref 0 and adv_completed = ref 0 in
  let adv_cb = ref 0 and adv_sb = ref 0 in
  let ben_cb = ref 0 and ben_sb = ref 0 in
  let resumed_completed = ref 0 and early_bytes = ref 0 in
  (* the whole client population shares one pre-minted ticket (every
     server holds the same STEK), so resumption needs no issuing
     handshake and no per-connection ticket state *)
  let mixing = sp.fa_mix.Mix.resumed > 0. in
  let ticket_key = sp.fa_seed ^ "/stek" in
  let shared_session =
    if mixing then
      Some
        (Tls.Handshake.mint_session ~config:benign_config ~ticket_key
           ~rng:(Crypto.Drbg.fork root_rng "stek"))
    else None
  in
  let farm_config =
    { Netsim.Farm.servers = sp.fa_servers;
      max_concurrent = sp.fa_max_concurrent;
      accept_queue = sp.fa_accept_queue;
      policy = Netsim.Balancer.policy_of_name sp.fa_policy }
  in
  let farm =
    Netsim.Farm.create ~engine ~config:farm_config ~arrivals
      ~launch:(fun ~server ~conn ~finished ->
        let rng = Crypto.Drbg.fork root_rng (string_of_int conn) in
        let adversarial =
          sp.fa_adv_fraction > 0.
          && Crypto.Drbg.float rng < sp.fa_adv_fraction
        in
        if adversarial then incr adv_launched;
        let server_host = server_hosts.(server) in
        (* every client is its own machine: one fresh single-core host
           per connection, all named "client" so directional netem loss
           ([loss_towards]) applies exactly as in the single-pair cells *)
        let client_host = Netsim.Host.create engine ~name:"client" in
        let link =
          Netsim.Link.create engine
            (Crypto.Drbg.fork rng "link")
            sp.fa_scenario.Scenario.netem
            ~tap:(fun _ _ -> ())
        in
        Netsim.Host.charge_async server_host
          ~op:Pqc.Costs.connection_setup.Pqc.Costs.label
          ~ms:Pqc.Costs.connection_setup.Pqc.Costs.ms ~lib:"kernel";
        let resume =
          if
            (not adversarial) && mixing
            && Crypto.Drbg.float rng < sp.fa_mix.Mix.resumed
          then shared_session
          else None
        in
        Tls.Handshake.run ?resume
          ~early_data:(resume <> None && sp.fa_mix.Mix.early_data)
          ~ticket_key ~engine ~link ~tcp_config:Netsim.Tcp.default_config
          ~client_host ~server_host
          ~config:(if adversarial then adv_config else benign_config)
          ~rng
          ~on_done:(fun r ->
            let cb = Netsim.Tcp.bytes_sent r.Tls.Handshake.client_tcp in
            let sb = Netsim.Tcp.bytes_sent r.Tls.Handshake.server_tcp in
            if adversarial then begin
              incr adv_completed;
              adv_cb := !adv_cb + cb;
              adv_sb := !adv_sb + sb
            end
            else begin
              ben_cb := !ben_cb + cb;
              ben_sb := !ben_sb + sb
            end;
            if r.Tls.Handshake.resumed then incr resumed_completed;
            early_bytes := !early_bytes + r.Tls.Handshake.early_data_bytes;
            Netsim.Tcp.close r.Tls.Handshake.client_tcp;
            Netsim.Tcp.close r.Tls.Handshake.server_tcp;
            finished ())
          ())
  in
  (* bounded drain: everything admitted normally completes well before
     this horizon; what is still in flight is reported as unfinished *)
  Netsim.Engine.run engine ~until:(window +. 60.);
  let span = Float.max (Netsim.Engine.now engine) 1e-9 in
  let server_cpu_ms =
    Array.fold_left
      (fun acc h -> acc +. Netsim.Host.total_cpu_ms h)
      0. server_hosts
  in
  let merged_ledger =
    let tbl = Hashtbl.create 8 in
    Array.iter
      (fun h ->
        List.iter
          (fun (lib, ms) ->
            Hashtbl.replace tbl lib
              (ms +. Option.value ~default:0. (Hashtbl.find_opt tbl lib)))
          (Netsim.Host.ledger h))
      server_hosts;
    Hashtbl.fold (fun lib ms acc -> (lib, ms) :: acc) tbl []
    |> List.sort (fun (la, a) (lb, b) ->
           match Float.compare b a with 0 -> String.compare la lb | c -> c)
    |> normalize_ledger
  in
  if Netsim.Farm.completed farm = 0 then
    invalid_arg
      (Printf.sprintf "Experiment.run_farm_spec: no handshake completed for %s"
         (farm_spec_label sp));
  { fo_kem_name = sp.fa_kem.Pqc.Kem.name;
    fo_sig_name = sp.fa_sig.Pqc.Sigalg.name;
    fo_scenario_name = sp.fa_scenario.Scenario.name;
    fo_profile = sp.fa_profile;
    fo_policy = sp.fa_policy;
    fo_servers = sp.fa_servers;
    fo_utilization = sp.fa_utilization;
    fo_capacity_hs_s = capacity;
    fo_offered_rate = rate;
    fo_window_s = window;
    fo_offered = Netsim.Farm.offered farm;
    fo_completed = Netsim.Farm.completed farm;
    fo_dropped = Netsim.Farm.dropped farm;
    fo_unfinished = Netsim.Farm.unfinished farm;
    fo_latencies_ms = Netsim.Farm.latencies_ms farm;
    fo_wait_ms = Netsim.Farm.wait_ms farm;
    fo_server_cpu_ms = server_cpu_ms;
    fo_server_busy =
      server_cpu_ms /. 1000. /. (float_of_int sp.fa_servers *. span);
    fo_server_ledger = merged_ledger;
    fo_per_server_completed =
      Array.to_list (Netsim.Farm.per_server_completed farm);
    fo_mix_name = sp.fa_mix.Mix.name;
    fo_resumed_completed = !resumed_completed;
    fo_early_data_bytes = !early_bytes;
    fo_adv_launched = !adv_launched;
    fo_adv_completed = !adv_completed;
    fo_adv_client_bytes = !adv_cb;
    fo_adv_server_bytes = !adv_sb;
    fo_benign_client_bytes = !ben_cb;
    fo_benign_server_bytes = !ben_sb;
    fo_cal_client_cpu_ms = cal_client;
    fo_cal_server_cpu_ms = cal_server;
    fo_cal_adv_server_cpu_ms = cal_adv_server }
