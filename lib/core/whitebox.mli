(** Table 3: white-box (profiled) view of selected KA x SA pairs —
    handshake rate, per-handshake CPU cost per side, packet counts, and
    the per-shared-library CPU distribution the paper derives from Linux
    perf. *)

type row = {
  level : int;
  kem : string;
  sa : string;
  handshakes_per_s : float;
  server_cpu_ms : float;
  client_cpu_ms : float;
  server_pkts : int;
  client_pkts : int;
  server_libs : (string * float) list;  (** fraction of CPU, descending *)
  client_libs : (string * float) list;
}

val paper_pairs : (int * string * string) list
(** The eight pairs shown in the paper's Table 3. *)

val measure : ?seed:string -> int * string * string -> row

val rows :
  ?seed:string -> ?exec:Exec.t -> (int * string * string) list ->
  row option list
(** Measure the given pairs through [exec] (default sequential). The
    result is aligned with the input: [None] marks a pair whose cell
    failed (after retries), so renderers can still show the rest. *)

val table : ?seed:string -> ?exec:Exec.t -> unit -> row option list
(** All of [paper_pairs]. *)

(** {1 Trace cross-check}

    The white-box ledger and the trace's cpu spans are two recordings of
    the same charges, so their per-library CPU shares must agree to
    float rounding. [trace_checks] compares them side by side for one
    traced cell; the test suite asserts {!max_trace_delta} [< 0.01]. *)

type trace_check = {
  tc_side : string;  (** ["client"] or ["server"] *)
  tc_lib : string;
  tc_whitebox : float;  (** ledger share of that side's CPU, 0..1 *)
  tc_trace : float;  (** cpu-span share recomputed from the trace *)
}

val trace_checks : Experiment.outcome -> Trace.Buf.t -> trace_check list
(** Union of libraries seen by either accounting, both sides; missing
    entries count as [0.]. The buffer must come from tracing the same
    cell that produced the outcome. *)

val max_trace_delta : trace_check list -> float

val render_trace_checks : string -> trace_check list -> string
(** Plain-text comparison table titled with the given string. *)
