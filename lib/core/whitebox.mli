(** Table 3: white-box (profiled) view of selected KA x SA pairs —
    handshake rate, per-handshake CPU cost per side, packet counts, and
    the per-shared-library CPU distribution the paper derives from Linux
    perf. *)

type row = {
  level : int;
  kem : string;
  sa : string;
  handshakes_per_s : float;
  server_cpu_ms : float;
  client_cpu_ms : float;
  server_pkts : int;
  client_pkts : int;
  server_libs : (string * float) list;  (** fraction of CPU, descending *)
  client_libs : (string * float) list;
}

val paper_pairs : (int * string * string) list
(** The eight pairs shown in the paper's Table 3. *)

val measure : ?seed:string -> int * string * string -> row

val rows :
  ?seed:string -> ?exec:Exec.t -> (int * string * string) list ->
  row option list
(** Measure the given pairs through [exec] (default sequential). The
    result is aligned with the input: [None] marks a pair whose cell
    failed (after retries), so renderers can still show the rest. *)

val table : ?seed:string -> ?exec:Exec.t -> unit -> row option list
(** All of [paper_pairs]. *)
