open Parsetree

let dirs = [ "lib/crypto"; "lib/pqc"; "lib/tls" ]

let banned_idents =
  [ "String.equal"; "Bytes.equal"; "String.compare"; "Bytes.compare" ]

let poly_compare = [ "="; "<>"; "=="; "!="; "compare" ]

let check sources =
  List.concat_map
    (fun (src : Source.t) ->
      let in_scope =
        List.exists (fun dir -> Walk.in_dir ~dir src.Source.path) dirs
      in
      match src.Source.ast with
      | _ when not in_scope -> []
      | Source.Signature _ -> []
      | Source.Structure str ->
        let out = ref [] in
        let diag ~symbol loc msg =
          out := Diag.make ~rule:"C1" ~file:src.Source.path ~symbol loc msg
                 :: !out
        in
        Walk.iter_expressions str (fun ~symbol e ->
            match e.pexp_desc with
            | Pexp_ident _ -> (
              match Walk.ident e with
              | Some path when List.mem path banned_idents ->
                diag ~symbol e.pexp_loc
                  (path
                 ^ " short-circuits on the first differing byte; use \
                    Bytesx.equal_ct for anything secret-adjacent")
              | _ -> ())
            | Pexp_apply (op, args) -> (
              match Walk.ident op with
              | Some name
                when List.mem name poly_compare
                     && List.exists
                          (fun (_, a) -> Walk.string_const a <> None)
                          args ->
                diag ~symbol op.pexp_loc
                  ("polymorphic " ^ name
                 ^ " on a string is not constant-time; use \
                    Bytesx.equal_ct (or suppress for public values)")
              | _ -> ())
            | _ -> ());
        !out)
    sources

let rule =
  { Rule.name = "C1";
    severity = Rule.Error;
    doc =
      "Early-exit byte comparison leaks the position of the first \
       mismatch through timing. In the cryptographic directories \
       (lib/crypto, lib/pqc, lib/tls) every String/Bytes equality or \
       comparison — including polymorphic = on byte-string evidence — \
       must go through the constant-time Bytesx.equal_ct. C2 extends \
       this syntactic check with interprocedural taint tracking.";
    synopsis =
      "in lib/{crypto,pqc,tls}: byte-string comparison goes through \
       Bytesx.equal_ct, never String/Bytes.equal or polymorphic =";
    check }
