(** A single finding: one rule firing at one source location. The
    [symbol] is the enclosing toplevel binding (or module) name, used by
    the allowlist file to pin exceptions to a definition rather than a
    line number, so entries survive unrelated edits. *)

type t = {
  rule : string; (* "D1", "C1", ... *)
  file : string; (* path as the driver saw it *)
  line : int; (* 1-based *)
  col : int; (* 0-based, compiler convention *)
  symbol : string; (* enclosing toplevel binding, "" if none *)
  message : string;
}

val make :
  rule:string -> file:string -> ?symbol:string -> Location.t -> string -> t
(** [make ~rule ~file ?symbol loc msg] positions the finding at the start
    of [loc]. *)

val compare : t -> t -> int
(** Order by file, line, column, rule — report order is deterministic
    whatever order the rules ran in. *)

val to_string : t -> string
(** [file:line:col: [rule] message (in symbol)] — one line, no trailing
    newline. *)
