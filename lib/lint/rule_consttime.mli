(** C1 — constant-time comparisons. In [lib/crypto], [lib/pqc] and
    [lib/tls], byte-string comparison must go through
    [Bytesx.equal_ct]: [String.equal]/[Bytes.equal] (and their
    [compare]s) are banned outright, as is polymorphic [=]/[<>]/
    [compare] applied to a string literal — both short-circuit on the
    first differing byte and leak the match length through timing.
    Comparisons of public, non-secret strings suppress with a reason. *)

val rule : Rule.t
