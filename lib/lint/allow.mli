(** The two suppression channels, both carrying a mandatory reason so
    every exception to a rule is auditable:

    - in-source attributes — [[@lint.allow "RULE" "reason"]] on an
      expression or [[@@lint.allow "RULE" "reason"]] on a binding
      scopes the exception to that node; a floating
      [[@@@lint.allow "RULE" "reason"]] covers the whole file;
    - the checked-in allowlist file — whitespace-separated lines
      [RULE PATH SYMBOL REASON...] where [SYMBOL] is the enclosing
      toplevel binding ([*] for any), keeping exceptions for files we
      prefer not to annotate (tests, vendored code) in one place.

    A [lint.allow] attribute with a missing or empty reason is itself a
    violation (rule [LINT]). *)

type scope = {
  s_rule : string; (* "*" matches every rule *)
  s_file : string;
  s_line_start : int;
  s_line_end : int;
  s_reason : string;
}

type entry = {
  e_rule : string;
  e_path : string; (* repo-relative; suffix-matched against diag files *)
  e_symbol : string; (* "*" for any *)
  e_reason : string;
}

val scopes_of_source : Source.t -> scope list * Diag.t list
(** Collect attribute scopes; malformed [lint.allow] attributes come
    back as [LINT] diagnostics. *)

val parse_entries : path:string -> string -> entry list * Diag.t list
(** Parse allowlist-file text ([#] comments, blank lines ignored).
    Malformed lines come back as [LINT] diagnostics against [path]. *)

val load_file : string -> entry list * Diag.t list
(** [parse_entries] over a file on disk; missing file = no entries. *)

val suppressed : scopes:scope list -> entries:entry list -> Diag.t -> bool
