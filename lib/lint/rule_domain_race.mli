(** Rule S2 — cross-domain mutation: writes to module-level mutable
    state from functions reachable from [Core.Pool] task sites must be
    wrapped in [Mutex.protect]. Complements S1, which flags the state's
    allocation; S2 follows the call graph to the stores. *)

val rule : Rule.t
