(** S1 — module-level mutable state. A [ref]/[Hashtbl.create]/
    [Array.make]/... evaluated at module-initialization time in [lib/]
    is shared by every domain of a parallel campaign; each such site
    must either be guarded (mutex, atomic, domain-local storage) or be
    an init-once constant — and must say which, via a suppression
    reason. Creations under [fun]/[function]/[lazy] are per-call and
    exempt. *)

val rule : Rule.t
