(** D1 — wall-clock quarantine. Campaign artifacts must be functions of
    the virtual clock and the seed only; real-time reads are banned
    everywhere, and the few legitimate health/progress sites carry
    [[@lint.allow]] annotations or allowlist entries. *)

val rule : Rule.t
