(** Loading and parsing the files under analysis. Parsing uses the
    compiler's own frontend (compiler-libs), so the linter accepts
    exactly what the build accepts — no second grammar to maintain. *)

type kind = Ml | Mli

type ast =
  | Structure of Parsetree.structure
  | Signature of Parsetree.signature

type t = { path : string; kind : kind; ast : ast }

val parse_string : path:string -> kind -> string -> t
(** Parse in-memory source, attributing locations to [path]. Raises
    [Parse_error] on syntax errors. *)

exception Parse_error of string * string (* path, rendered message *)

val scan : string list -> string list
(** Expand files/directories into the sorted list of [.ml]/[.mli] files
    beneath them, skipping [_build], [lint_fixtures], [.git] and other
    dotted directories (explicitly named roots are never skipped).
    Paths are returned with [/] separators, duplicates removed. *)

val load_paths : string list -> t list * (string * string) list
(** [load_paths paths] scans, reads and parses; returns the parsed
    sources plus [(path, message)] for every file that failed to parse
    (the caller turns those into exit code 2). *)
