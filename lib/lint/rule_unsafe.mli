(** Rule U1 — unsafe-code confinement: unchecked accesses are allowed
    only in modules that open with a [@@@lint.kernel "bounds argument"]
    annotation, and the annotation must not be stale. *)

val rule : Rule.t
