open Parsetree

type def = {
  d_qual : string;
  d_lib : string;
  d_module : string;
  d_name : string;
  d_params : string list;
  d_body : expression;
  d_loc : Location.t;
  d_file : string;
}

type t = {
  t_defs : (string, def) Hashtbl.t;
  t_aliases : (string, (string, string) Hashtbl.t) Hashtbl.t;
  t_libs : (string, unit) Hashtbl.t;
  t_file_scope : (string, string * string) Hashtbl.t;
}

let module_name_of_file path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

(* ".../lib/<d>/<file>.ml" names a wrapped dune library whose toplevel
   module is the capitalized directory name. *)
let lib_of_path path =
  let rec find = function
    | "lib" :: d :: _ :: _ -> Some (String.capitalize_ascii d)
    | _ :: rest -> find rest
    | [] -> None
  in
  find (String.split_on_char '/' path)

let rec strip_params e =
  match e.pexp_desc with
  | Pexp_fun (label, _, pat, body) ->
    let name =
      match label with
      | Asttypes.Labelled s | Asttypes.Optional s -> s
      | Asttypes.Nolabel -> (
        match pat.ppat_desc with
        | Ppat_var { txt; _ } -> txt
        | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, _) -> txt
        | _ -> "_")
    in
    let params, body = strip_params body in
    (name :: params, body)
  | Pexp_newtype (_, body) -> strip_params body
  | Pexp_constraint (body, _) -> strip_params body
  | _ -> ([], e)

let add_source t (src : Source.t) =
  match src.Source.ast with
  | Source.Signature _ -> ()
  | Source.Structure str ->
    let lib = Option.value ~default:"" (lib_of_path src.Source.path) in
    let modname = module_name_of_file src.Source.path in
    Hashtbl.replace t.t_file_scope src.Source.path (lib, modname);
    if lib <> "" then Hashtbl.replace t.t_libs lib ();
    let amap = Hashtbl.create 8 in
    Hashtbl.replace t.t_aliases src.Source.path amap;
    let prefix = if lib = "" then modname else lib ^ "." ^ modname in
    let rec items pfx l = List.iter (item pfx) l
    and item pfx it =
      match it.pstr_desc with
      | Pstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            match vb.pvb_pat.ppat_desc with
            | Ppat_var { txt; _ } ->
              let params, body = strip_params vb.pvb_expr in
              let d =
                { d_qual = pfx ^ "." ^ txt;
                  d_lib = lib;
                  d_module = modname;
                  d_name = txt;
                  d_params = params;
                  d_body = body;
                  d_loc = vb.pvb_loc;
                  d_file = src.Source.path }
              in
              Hashtbl.replace t.t_defs d.d_qual d
            | _ -> ())
          vbs
      | Pstr_module mb -> (
        match mb.pmb_name.Asttypes.txt with
        | None -> ()
        | Some sub -> (
          match mb.pmb_expr.pmod_desc with
          | Pmod_structure s
          | Pmod_constraint ({ pmod_desc = Pmod_structure s; _ }, _) ->
            items (pfx ^ "." ^ sub) s
          | Pmod_ident { txt = lid; _ } when pfx = prefix ->
            Hashtbl.replace amap sub
              (String.concat "." (Longident.flatten lid))
          | _ -> ()))
      | _ -> ()
    in
    items prefix str

let build sources =
  let t =
    { t_defs = Hashtbl.create 512;
      t_aliases = Hashtbl.create 64;
      t_libs = Hashtbl.create 8;
      t_file_scope = Hashtbl.create 64 }
  in
  List.iter (add_source t) sources;
  t

let find t qual = Hashtbl.find_opt t.t_defs qual

let defs t =
  Hashtbl.fold (fun _ d acc -> d :: acc) t.t_defs []
  |> List.sort (fun a b -> String.compare a.d_qual b.d_qual)

let resolve t ~file dotted =
  let lib, modname =
    match Hashtbl.find_opt t.t_file_scope file with
    | Some x -> x
    | None -> ("", module_name_of_file file)
  in
  let local_prefix = if lib = "" then modname else lib ^ "." ^ modname in
  let try_ q = if Hashtbl.mem t.t_defs q then Some q else None in
  match String.split_on_char '.' dotted with
  | [] -> None
  | [ name ] -> try_ (local_prefix ^ "." ^ name)
  | first :: rest ->
    let expanded =
      match Hashtbl.find_opt t.t_aliases file with
      | None -> None
      | Some amap -> (
        match Hashtbl.find_opt amap first with
        | Some target -> Some (String.concat "." (target :: rest))
        | None -> None)
    in
    let candidates =
      (match expanded with
      | Some e -> (if lib = "" then [] else [ lib ^ "." ^ e ]) @ [ e ]
      | None -> [])
      @ [ local_prefix ^ "." ^ dotted ]
      @ (if lib = "" then [] else [ lib ^ "." ^ dotted ])
      @ (if Hashtbl.mem t.t_libs first then [ dotted ] else [])
    in
    List.find_map try_ candidates
