open Parsetree

type t = { cg_edges : (string, string list) Hashtbl.t }

(* Every identifier occurrence in the body counts as an edge, not just
   application heads: a function passed as a value to [Pool.map] or
   [List.iter] is still called. *)
let def_callees syms (d : Symtab.def) =
  let acc = ref [] in
  let super = Ast_iterator.default_iterator in
  let iter =
    { super with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } -> (
            let dotted =
              Walk.strip_stdlib (String.concat "." (Longident.flatten txt))
            in
            match Symtab.resolve syms ~file:d.Symtab.d_file dotted with
            | Some q when q <> d.Symtab.d_qual -> acc := q :: !acc
            | _ -> ())
          | _ -> ());
          super.expr self e) }
  in
  iter.Ast_iterator.expr iter d.Symtab.d_body;
  List.sort_uniq String.compare !acc

let build syms =
  let cg = { cg_edges = Hashtbl.create 512 } in
  List.iter
    (fun (d : Symtab.def) ->
      Hashtbl.replace cg.cg_edges d.Symtab.d_qual (def_callees syms d))
    (Symtab.defs syms);
  cg

let callees t caller =
  Option.value ~default:[] (Hashtbl.find_opt t.cg_edges caller)

let vertices t =
  Hashtbl.fold (fun v _ acc -> v :: acc) t.cg_edges []
  |> List.sort String.compare

let reachable t roots =
  let seen = Hashtbl.create 256 in
  let rec visit v =
    if not (Hashtbl.mem seen v) then begin
      Hashtbl.replace seen v ();
      List.iter visit (callees t v)
    end
  in
  List.iter visit roots;
  seen

(* Definitions that hand work to the domain pool: any application whose
   head ends in [Pool.map]. The enclosing toplevel definition is the
   root — an over-approximation (its non-task code is swept in too),
   which errs on the side of reporting. *)
let pool_roots syms =
  List.filter_map
    (fun (d : Symtab.def) ->
      let found = ref false in
      let super = Ast_iterator.default_iterator in
      let iter =
        { super with
          expr =
            (fun self e ->
              (match e.pexp_desc with
              | Pexp_apply (f, _) -> (
                match Walk.ident f with
                | Some path -> (
                  match List.rev (String.split_on_char '.' path) with
                  | "map" :: "Pool" :: _ -> found := true
                  | _ -> ())
                | None -> ())
              | _ -> ());
              super.expr self e) }
      in
      iter.Ast_iterator.expr iter d.Symtab.d_body;
      if !found then Some d.Symtab.d_qual else None)
    (Symtab.defs syms)

let to_text t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun v ->
      List.iter
        (fun c -> Buffer.add_string buf (Printf.sprintf "%s -> %s\n" v c))
        (callees t v))
    (vertices t);
  Buffer.contents buf

let to_dot t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph pqtls_calls {\n  rankdir=LR;\n";
  List.iter
    (fun v ->
      List.iter
        (fun c ->
          Buffer.add_string buf (Printf.sprintf "  \"%s\" -> \"%s\";\n" v c))
        (callees t v))
    (vertices t);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
