(* C2 — interprocedural secret-flow. The heavy lifting lives in
   [Symtab] (whole-tree symbol table), [Taint] (lattice + summaries):
   this rule just wires them to the engine. All parsed sources feed the
   symbol table, so taint crosses library boundaries (an HKDF output
   born in lib/crypto is still secret inside lib/tls); diagnostics are
   confined to the crypto-bearing directories. *)

let check sources =
  let syms = Symtab.build sources in
  Taint.check (Taint.analyse syms)

let rule =
  { Rule.name = "C2";
    severity = Rule.Error;
    synopsis =
      "secret-derived values (HKDF outputs, KEM shared secrets, \
       *_secret/psk bindings) must not reach branches, variable-time \
       compares, Printf, exception payloads or Hashtbl keys";
    doc =
      "Call-graph taint analysis seeded at Hkdf.extract/expand results, \
       KEM decaps/encaps shared secrets and secret-named bindings, \
       propagated through lets, tuples, records and one-level function \
       summaries. A tainted value reaching an if/match scrutinee, a \
       guard, String/Bytes/polymorphic comparison, Printf/Format, an \
       exception payload or a Hashtbl key is a timing or logging leak. \
       Bytesx.equal_ct is the approved constant-time comparator and \
       clears taint; an audited observation point is annotated \
       [@lint.declassify \"reason\"].";
    check }
