(** The rule interface: a named check over the whole set of parsed
    sources. Rules see every file at once so project-level properties
    (like "each [.ml] has an [.mli]") are ordinary rules, not special
    cases in the engine. *)

type t = {
  name : string; (* "D1", "C1", ... *)
  synopsis : string; (* one line, shown by `pqtls-lint rules` *)
  check : Source.t list -> Diag.t list;
}
