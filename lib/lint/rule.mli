(** The rule interface: a named check over the whole set of parsed
    sources. Rules see every file at once so project-level properties
    (like "each [.ml] has an [.mli]", or call-graph reachability) are
    ordinary rules, not special cases in the engine. *)

type severity = Error | Warning

type t = {
  name : string; (* "D1", "C1", ... *)
  severity : severity; (* SARIF level; exit codes treat both the same *)
  synopsis : string; (* one line, shown by `pqtls-lint rules` *)
  doc : string; (* a paragraph, for `rules --json` and SARIF *)
  check : Source.t list -> Diag.t list;
}

val severity_string : severity -> string
(** ["error"] / ["warning"] — the SARIF level vocabulary. *)
