open Parsetree

let strip_stdlib path =
  match String.index_opt path '.' with
  | Some 6 when String.sub path 0 6 = "Stdlib" ->
    String.sub path 7 (String.length path - 7)
  | _ -> path

let ident e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } ->
    Some (strip_stdlib (String.concat "." (Longident.flatten txt)))
  | _ -> None

let app_head e =
  match e.pexp_desc with Pexp_apply (f, _) -> ident f | _ -> ident e

let string_const e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_string (s, _, _)) -> Some s
  | _ -> None

let in_dir ~dir path =
  let dir_slash = dir ^ "/" in
  let n = String.length dir_slash and m = String.length path in
  let prefix = m >= n && String.sub path 0 n = dir_slash in
  let rec inside i =
    if i + n + 1 > m then false
    else if path.[i] = '/' && String.sub path (i + 1) n = dir_slash then true
    else inside (i + 1)
  in
  prefix || inside 0

let iter_expressions str f =
  let symbol = ref "" in
  let super = Ast_iterator.default_iterator in
  let iter =
    { super with
      value_binding =
        (fun self vb ->
          let saved = !symbol in
          (if saved = "" then
             match vb.pvb_pat.ppat_desc with
             | Ppat_var { txt; _ } -> symbol := txt
             | _ -> symbol := "_");
          super.value_binding self vb;
          symbol := saved);
      expr =
        (fun self e ->
          f ~symbol:!symbol e;
          super.expr self e) }
  in
  iter.Ast_iterator.structure iter str
