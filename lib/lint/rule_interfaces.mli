(** M1 — sealed modules. Every [.ml] under [lib/] must have a matching
    [.mli]: an unsealed module leaks helpers and mutable internals into
    the public surface, and interface drift is exactly how ad-hoc state
    escapes review. *)

val rule : Rule.t
