(** Whole-project symbol table for the dataflow rules.

    Maps every toplevel [let] in every parsed structure to a qualified
    name ([Lib.Module.name], following dune's wrapped-library layout
    where [lib/tls/handshake.ml] is the module [Tls.Handshake]), records
    per-file [module K = Key_schedule] aliases, and resolves dotted
    identifier occurrences back to definitions. Resolution is purely
    syntactic — shadowing by local bindings is the caller's concern —
    and unresolved names are treated as external (stdlib) by the rules
    built on top. *)

type def = {
  d_qual : string; (* "Tls.Handshake.open_ticket" *)
  d_lib : string; (* "Tls"; "" outside lib/ *)
  d_module : string; (* "Handshake" *)
  d_name : string; (* "open_ticket" *)
  d_params : string list; (* fun-chain parameter names, "_" if complex *)
  d_body : Parsetree.expression; (* body with the fun chain stripped *)
  d_loc : Location.t;
  d_file : string;
}

type t

val build : Source.t list -> t

val find : t -> string -> def option
(** Look up a definition by qualified name. *)

val defs : t -> def list
(** All definitions, sorted by qualified name (deterministic). *)

val resolve : t -> file:string -> string -> string option
(** [resolve t ~file "K.hash"] — the qualified definition a dotted
    identifier occurring in [file] refers to, trying (in order) the
    file's module aliases, the file's own nested modules, sibling
    modules of the same library, and cross-library wrapped names.
    [None] means "not defined in the tree" (stdlib or external). *)

val lib_of_path : string -> string option
(** Wrapped-library toplevel module implied by a path, e.g.
    [lib/pqc/kyber.ml -> Some "Pqc"]. *)

val module_name_of_file : string -> string
