open Parsetree

(* U1 — unchecked accesses are confined to reviewed kernels. A module
   may use Bytes/String/Array.unsafe_* or Obj.magic only when it opens
   with a floating [@@@lint.kernel "bounds argument"] stating why every
   index in the file is in range. The annotation is two-way: a kernel
   marker on a module with no unsafe operations is stale and flagged
   too, so the set of reviewed kernels never silently grows or rots. *)

let kernel_attr = "lint.kernel"

let unsafe_ident path =
  match String.split_on_char '.' path with
  | [ ("Bytes" | "String" | "Array"); f ] ->
    String.length f > 7 && String.sub f 0 7 = "unsafe_"
  | [ "Obj"; "magic" ] -> true
  | _ -> false

let kernel_reason str =
  List.find_map
    (fun it ->
      match it.pstr_desc with
      | Pstr_attribute a when a.attr_name.Asttypes.txt = kernel_attr -> (
        match a.attr_payload with
        | PStr [ { pstr_desc = Pstr_eval (e, _); _ } ] ->
          Some (a.attr_loc, Option.value ~default:"" (Walk.string_const e))
        | _ -> Some (a.attr_loc, ""))
      | _ -> None)
    str

let check sources =
  List.concat_map
    (fun (src : Source.t) ->
      match src.Source.ast with
      | _ when not (Walk.in_dir ~dir:"lib" src.Source.path) -> []
      | Source.Signature _ -> []
      | Source.Structure str ->
        let uses = ref [] in
        Walk.iter_expressions str (fun ~symbol e ->
            match e.pexp_desc with
            | Pexp_ident { txt; _ } ->
              let path =
                Walk.strip_stdlib
                  (String.concat "." (Longident.flatten txt))
              in
              if unsafe_ident path then
                uses := (symbol, e.pexp_loc, path) :: !uses
            | _ -> ());
        let uses = List.rev !uses in
        (match kernel_reason str with
        | Some (_, reason) when reason <> "" && uses <> [] -> []
        | Some (loc, "") ->
          [ Diag.make ~rule:"U1" ~file:src.Source.path loc
              "lint.kernel needs a bounds argument: [@@@lint.kernel \
               \"why every unchecked index in this file is in range\"]" ]
        | Some (loc, _) ->
          [ Diag.make ~rule:"U1" ~file:src.Source.path loc
              "stale [@@@lint.kernel]: this module performs no unsafe \
               operations; drop the annotation" ]
        | None ->
          List.map
            (fun (symbol, loc, path) ->
              Diag.make ~rule:"U1" ~file:src.Source.path ~symbol loc
                (path
               ^ " outside a reviewed kernel: unchecked accesses are \
                  allowed only in modules opening with [@@@lint.kernel \
                  \"bounds argument\"]"))
            uses))
    sources

let rule =
  { Rule.name = "U1";
    severity = Rule.Error;
    synopsis =
      "Bytes/String/Array.unsafe_* and Obj.magic live only in modules \
       annotated [@@@lint.kernel \"bounds argument\"]";
    doc =
      "Unchecked accesses are the fuel of ROADMAP item 1's hot-path \
       kernels, and they must stay inside small reviewed files. A \
       module using Bytes.unsafe_*, String.unsafe_*, Array.unsafe_* or \
       Obj.magic needs a toplevel [@@@lint.kernel \"...\"] annotation \
       whose payload argues why every index is in bounds; a kernel \
       annotation on a module with no unsafe operations is flagged as \
       stale so the reviewed set stays exact.";
    check }
