(** Rule C2 — secret-flow taint: key material must not reach a branch,
    a variable-time comparison, formatted output, an exception payload
    or a Hashtbl key. See {!Taint} for the analysis itself. *)

val rule : Rule.t
