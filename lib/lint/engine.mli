(** Running rules over sources and applying the suppression channels. *)

val rules : Rule.t list
(** The full catalog, in display order. *)

val find_rule : string -> Rule.t option

val run :
  ?entries:Allow.entry list -> ?rules:Rule.t list -> Source.t list ->
  Diag.t list
(** [run ?entries ?rules sources] checks the sources, drops findings
    covered by an attribute scope or allowlist entry, appends
    malformed-suppression [LINT] diagnostics, and returns the result in
    deterministic (file, line, col, rule) order. *)
