type format = Text | Json

let format_of_string = function
  | "text" -> Some Text
  | "json" -> Some Json
  | _ -> None

let json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let render_text ~files ~errors diags =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (path, msg) ->
      Buffer.add_string buf (Printf.sprintf "%s: parse error\n%s\n" path msg))
    errors;
  List.iter
    (fun d ->
      Buffer.add_string buf (Diag.to_string d);
      Buffer.add_char buf '\n')
    diags;
  Buffer.add_string buf
    (Printf.sprintf "pqtls-lint: %d file%s checked, %d violation%s%s\n" files
       (if files = 1 then "" else "s")
       (List.length diags)
       (if List.length diags = 1 then "" else "s")
       (match List.length errors with
       | 0 -> ""
       | n -> Printf.sprintf ", %d parse error%s" n (if n = 1 then "" else "s")));
  Buffer.contents buf

let render_json ~files ~errors diags =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"schema\": \"pqtls-lint/1\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"files\": %d,\n" files);
  Buffer.add_string buf "  \"violations\": [";
  List.iteri
    (fun i (d : Diag.t) ->
      Buffer.add_string buf (if i = 0 then "\n" else ",\n");
      Buffer.add_string buf "    { \"rule\": ";
      json_string buf d.Diag.rule;
      Buffer.add_string buf ", \"file\": ";
      json_string buf d.Diag.file;
      Buffer.add_string buf (Printf.sprintf ", \"line\": %d" d.Diag.line);
      Buffer.add_string buf (Printf.sprintf ", \"col\": %d" d.Diag.col);
      Buffer.add_string buf ", \"symbol\": ";
      json_string buf d.Diag.symbol;
      Buffer.add_string buf ", \"message\": ";
      json_string buf d.Diag.message;
      Buffer.add_string buf " }")
    diags;
  if diags <> [] then Buffer.add_string buf "\n  ";
  Buffer.add_string buf "],\n  \"errors\": [";
  List.iteri
    (fun i (path, msg) ->
      Buffer.add_string buf (if i = 0 then "\n" else ",\n");
      Buffer.add_string buf "    { \"file\": ";
      json_string buf path;
      Buffer.add_string buf ", \"message\": ";
      json_string buf msg;
      Buffer.add_string buf " }")
    errors;
  if errors <> [] then Buffer.add_string buf "\n  ";
  Buffer.add_string buf "]\n}\n";
  Buffer.contents buf

let render fmt ~files ~errors diags =
  match fmt with
  | Text -> render_text ~files ~errors diags
  | Json -> render_json ~files ~errors diags
