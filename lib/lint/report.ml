type format = Text | Json | Sarif

let format_of_string = function
  | "text" -> Some Text
  | "json" -> Some Json
  | "sarif" -> Some Sarif
  | _ -> None

let json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let render_text ~files ~errors diags =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (path, msg) ->
      Buffer.add_string buf (Printf.sprintf "%s: parse error\n%s\n" path msg))
    errors;
  List.iter
    (fun d ->
      Buffer.add_string buf (Diag.to_string d);
      Buffer.add_char buf '\n')
    diags;
  Buffer.add_string buf
    (Printf.sprintf "pqtls-lint: %d file%s checked, %d violation%s%s\n" files
       (if files = 1 then "" else "s")
       (List.length diags)
       (if List.length diags = 1 then "" else "s")
       (match List.length errors with
       | 0 -> ""
       | n -> Printf.sprintf ", %d parse error%s" n (if n = 1 then "" else "s")));
  Buffer.contents buf

let render_json ~files ~errors diags =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"schema\": \"pqtls-lint/1\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"files\": %d,\n" files);
  Buffer.add_string buf "  \"violations\": [";
  List.iteri
    (fun i (d : Diag.t) ->
      Buffer.add_string buf (if i = 0 then "\n" else ",\n");
      Buffer.add_string buf "    { \"rule\": ";
      json_string buf d.Diag.rule;
      Buffer.add_string buf ", \"file\": ";
      json_string buf d.Diag.file;
      Buffer.add_string buf (Printf.sprintf ", \"line\": %d" d.Diag.line);
      Buffer.add_string buf (Printf.sprintf ", \"col\": %d" d.Diag.col);
      Buffer.add_string buf ", \"symbol\": ";
      json_string buf d.Diag.symbol;
      Buffer.add_string buf ", \"message\": ";
      json_string buf d.Diag.message;
      Buffer.add_string buf " }")
    diags;
  if diags <> [] then Buffer.add_string buf "\n  ";
  Buffer.add_string buf "],\n  \"errors\": [";
  List.iteri
    (fun i (path, msg) ->
      Buffer.add_string buf (if i = 0 then "\n" else ",\n");
      Buffer.add_string buf "    { \"file\": ";
      json_string buf path;
      Buffer.add_string buf ", \"message\": ";
      json_string buf msg;
      Buffer.add_string buf " }")
    errors;
  if errors <> [] then Buffer.add_string buf "\n  ";
  Buffer.add_string buf "]\n}\n";
  Buffer.contents buf

(* SARIF 2.1.0, the GitHub code-scanning interchange format: one run,
   the rule catalog under tool.driver.rules, one result per finding. *)
let render_sarif ~rules ~errors diags =
  let buf = Buffer.create 4096 in
  let add = Buffer.add_string buf in
  add "{\n";
  add "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  add "  \"version\": \"2.1.0\",\n";
  add "  \"runs\": [\n    {\n";
  add "      \"tool\": {\n        \"driver\": {\n";
  add "          \"name\": \"pqtls-lint\",\n";
  add
    "          \"informationUri\": \
     \"https://example.invalid/pqtls-lint\",\n";
  add "          \"rules\": [";
  List.iteri
    (fun i (r : Rule.t) ->
      add (if i = 0 then "\n" else ",\n");
      add "            { \"id\": ";
      json_string buf r.Rule.name;
      add ", \"shortDescription\": { \"text\": ";
      json_string buf r.Rule.synopsis;
      add " },\n              \"fullDescription\": { \"text\": ";
      json_string buf r.Rule.doc;
      add " },\n              \"defaultConfiguration\": { \"level\": ";
      json_string buf (Rule.severity_string r.Rule.severity);
      add " } }")
    rules;
  if rules <> [] then add "\n          ";
  add "]\n        }\n      },\n";
  add "      \"results\": [";
  let level_of d =
    match
      List.find_opt (fun (r : Rule.t) -> r.Rule.name = d.Diag.rule) rules
    with
    | Some r -> Rule.severity_string r.Rule.severity
    | None -> "error"
  in
  List.iteri
    (fun i (d : Diag.t) ->
      add (if i = 0 then "\n" else ",\n");
      add "        { \"ruleId\": ";
      json_string buf d.Diag.rule;
      add ", \"level\": ";
      json_string buf (level_of d);
      add ",\n          \"message\": { \"text\": ";
      json_string buf
        (if d.Diag.symbol = "" then d.Diag.message
         else d.Diag.message ^ " (in " ^ d.Diag.symbol ^ ")");
      add " },\n          \"locations\": [ { \"physicalLocation\": {\n";
      add "            \"artifactLocation\": { \"uri\": ";
      json_string buf d.Diag.file;
      add " },\n            \"region\": { \"startLine\": ";
      add (string_of_int d.Diag.line);
      add ", \"startColumn\": ";
      add (string_of_int (d.Diag.col + 1));
      add " } } } ]\n        }")
    diags;
  if diags <> [] then add "\n      ";
  add "],\n";
  add "      \"invocations\": [ { \"executionSuccessful\": ";
  add (if errors = [] then "true" else "false");
  add " } ]\n    }\n  ]\n}\n";
  Buffer.contents buf

let render fmt ~rules ~files ~errors diags =
  match fmt with
  | Text -> render_text ~files ~errors diags
  | Json -> render_json ~files ~errors diags
  | Sarif -> render_sarif ~rules ~errors diags
