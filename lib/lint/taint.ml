open Parsetree

type tv = Pure | Tainted | Tup of tv list | Rec of (string * tv) list

type summary = { s_ret : bool; s_arg_to_ret : bool }

type t = { a_syms : Symtab.t; a_summaries : (string, summary) Hashtbl.t }

let rec is_tainted = function
  | Pure -> false
  | Tainted -> true
  | Tup l -> List.exists is_tainted l
  | Rec l -> List.exists (fun (_, v) -> is_tainted v) l

let collapse v = if is_tainted v then Tainted else Pure

let rec join a b =
  match (a, b) with
  | Pure, v | v, Pure -> v
  | Tainted, _ | _, Tainted -> Tainted
  | Tup x, Tup y when List.length x = List.length y ->
    Tup (List.map2 join x y)
  | Rec x, Rec y ->
    let names =
      List.sort_uniq String.compare (List.map fst x @ List.map fst y)
    in
    Rec
      (List.map
         (fun n ->
           match (List.assoc_opt n x, List.assoc_opt n y) with
           | Some a, Some b -> (n, join a b)
           | Some v, None | None, Some v -> (n, v)
           | None, None -> (n, Pure))
         names)
  | a, b -> if is_tainted a || is_tainted b then Tainted else Pure

(* Name seeding: bindings, parameters and record fields with these
   names carry key material by convention in this tree, so they are
   taint sources even when the defining expression is opaque. *)
let secret_exact = [ "psk"; "secret"; "binder_key"; "ticket_key"; "stek" ]
let secret_suffixes = [ "_secret"; "_psk"; "_binder_key"; "_ticket_key" ]

let secret_name n =
  List.mem n secret_exact
  || List.exists (fun s -> Filename.check_suffix n s) secret_suffixes

let scope_dirs = [ "lib/crypto"; "lib/pqc"; "lib/tls" ]
let in_scope path = List.exists (fun d -> Walk.in_dir ~dir:d path) scope_dirs

let declassify_attr = "lint.declassify"

let declassify_reason attrs =
  List.find_map
    (fun (a : attribute) ->
      if a.attr_name.Asttypes.txt = declassify_attr then
        match a.attr_payload with
        | PStr [ { pstr_desc = Pstr_eval (e, _); _ } ] ->
          Some (a.attr_loc, Option.value ~default:"" (Walk.string_const e))
        | _ -> Some (a.attr_loc, "")
      else None)
    attrs

let dotted_of_lid lid =
  Walk.strip_stdlib (String.concat "." (Longident.flatten lid))

let head_parts e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (String.split_on_char '.' (dotted_of_lid txt))
  | Pexp_field (_, { txt; _ }) -> Some [ Longident.last txt ]
  | _ -> None

let banned_compare =
  [ "String.equal"; "String.compare"; "Bytes.equal"; "Bytes.compare";
    "="; "<>"; "=="; "!="; "compare" ]

let format_heads =
  [ "print_string"; "print_endline"; "print_newline"; "print_int";
    "print_char"; "prerr_string"; "prerr_endline" ]

let raise_heads = [ "raise"; "raise_notrace"; "failwith"; "invalid_arg" ]

let hashtbl_key_ops =
  [ "add"; "replace"; "find"; "find_opt"; "find_all"; "mem"; "remove" ]

type ctx = {
  c_syms : Symtab.t;
  c_summaries : (string, summary) Hashtbl.t;
  c_file : string;
  c_symbol : string;
  c_emit : bool;
  mutable c_diags : Diag.t list;
}

let diag ctx loc msg =
  if ctx.c_emit then
    ctx.c_diags <-
      Diag.make ~rule:"C2" ~file:ctx.c_file ~symbol:ctx.c_symbol loc msg
      :: ctx.c_diags

let summary_of ctx q =
  Option.value ~default:{ s_ret = false; s_arg_to_ret = false }
    (Hashtbl.find_opt ctx.c_summaries q)

let rec bind_pat env pat v =
  match pat.ppat_desc with
  | Ppat_var { txt; _ } ->
    (txt, (if secret_name txt then Tainted else v)) :: env
  | Ppat_alias (p, { txt; _ }) -> bind_pat ((txt, collapse v) :: env) p v
  | Ppat_tuple ps -> (
    match v with
    | Tup vs when List.length vs = List.length ps ->
      List.fold_left2 bind_pat env ps vs
    | _ ->
      List.fold_left (fun acc p -> bind_pat acc p (collapse v)) env ps)
  | Ppat_record (fields, _) ->
    List.fold_left
      (fun acc ((lid : Longident.t Asttypes.loc), p) ->
        let fname = Longident.last lid.Asttypes.txt in
        let fv =
          match v with
          | Rec fs when List.mem_assoc fname fs -> List.assoc fname fs
          | _ -> if secret_name fname then Tainted else collapse v
        in
        bind_pat acc p fv)
      env fields
  | Ppat_construct (_, Some (_, p)) | Ppat_variant (_, Some p) ->
    bind_pat env p (collapse v)
  | Ppat_constraint (p, _) | Ppat_lazy p | Ppat_open (_, p) ->
    bind_pat env p v
  | Ppat_or (a, b) -> bind_pat (bind_pat env a v) b v
  | _ -> env

let rec eval ctx env e =
  match declassify_reason e.pexp_attributes with
  | Some (loc, "") ->
    if ctx.c_emit then
      ctx.c_diags <-
        Diag.make ~rule:"LINT" ~file:ctx.c_file ~symbol:ctx.c_symbol loc
          "lint.declassify needs a non-empty reason: [@lint.declassify \
           \"why this value may be observed\"]"
        :: ctx.c_diags;
    eval_desc ctx env e
  | Some (_, _) ->
    (* Audited declassification: the subtree is still checked, but the
       value it produces is public from here on. *)
    ignore (eval_desc ctx env e);
    Pure
  | None -> eval_desc ctx env e

and eval_desc ctx env e =
  match e.pexp_desc with
  | Pexp_constant _ -> Pure
  | Pexp_ident { txt; _ } -> (
    let dotted = dotted_of_lid txt in
    match String.split_on_char '.' dotted with
    | [ name ] when List.mem_assoc name env -> List.assoc name env
    | _ -> (
      match Symtab.resolve ctx.c_syms ~file:ctx.c_file dotted with
      | Some q -> (
        match Symtab.find ctx.c_syms q with
        | Some d when d.Symtab.d_params = [] ->
          if (summary_of ctx q).s_ret then Tainted else Pure
        | _ -> Pure)
      | None -> Pure))
  | Pexp_let (_, vbs, body) ->
    let env' =
      List.fold_left
        (fun acc vb -> bind_pat acc vb.pvb_pat (eval ctx env vb.pvb_expr))
        env vbs
    in
    eval ctx env' body
  | Pexp_fun (label, default, pat, body) ->
    Option.iter (fun d -> ignore (eval ctx env d)) default;
    ignore label;
    ignore (eval ctx (bind_pat env pat Pure) body);
    Pure
  | Pexp_function cases ->
    List.iter (fun c -> ignore (eval_case ctx env Pure c)) cases;
    Pure
  | Pexp_apply (f, args) -> eval_apply ctx env f args
  | Pexp_match (scrut, cases) ->
    let sv = eval ctx env scrut in
    if is_tainted sv then
      diag ctx scrut.pexp_loc
        "match scrutinee is secret-derived: decisions on key material \
         are observable; compare via Bytesx.equal_ct or mark an audited \
         site with [@lint.declassify \"reason\"]";
    List.fold_left (fun acc c -> join acc (eval_case ctx env sv c)) Pure cases
  | Pexp_try (body, cases) ->
    let bv = eval ctx env body in
    List.fold_left
      (fun acc c -> join acc (eval_case ctx env Pure c))
      bv cases
  | Pexp_ifthenelse (cond, th, el) ->
    let cv = eval ctx env cond in
    if is_tainted cv then
      diag ctx cond.pexp_loc
        "branch condition depends on secret-derived data: timing leaks \
         the secret; use Bytesx.equal_ct or [@lint.declassify \
         \"reason\"]";
    let tv = eval ctx env th in
    let ev =
      match el with Some el -> eval ctx env el | None -> Pure
    in
    join tv ev
  | Pexp_while (cond, body) ->
    let cv = eval ctx env cond in
    if is_tainted cv then
      diag ctx cond.pexp_loc
        "loop condition depends on secret-derived data (iteration count \
         is observable timing)";
    ignore (eval ctx env body);
    Pure
  | Pexp_for (_, lo, hi, _, body) ->
    if is_tainted (eval ctx env lo) || is_tainted (eval ctx env hi) then
      diag ctx e.pexp_loc
        "for-loop bound depends on secret-derived data (iteration count \
         is observable timing)";
    ignore (eval ctx env body);
    Pure
  | Pexp_assert cond ->
    if is_tainted (eval ctx env cond) then
      diag ctx cond.pexp_loc "assert condition depends on secret-derived data";
    Pure
  | Pexp_tuple es -> Tup (List.map (eval ctx env) es)
  | Pexp_construct (_, None) -> Pure
  | Pexp_construct (_, Some arg) | Pexp_variant (_, Some arg) ->
    collapse (eval ctx env arg)
  | Pexp_variant (_, None) -> Pure
  | Pexp_record (fields, base) ->
    let bv =
      match base with Some b -> eval ctx env b | None -> Rec []
    in
    let fv =
      Rec
        (List.map
           (fun ((lid : Longident.t Asttypes.loc), fe) ->
             (Longident.last lid.Asttypes.txt, eval ctx env fe))
           fields)
    in
    join fv bv
  | Pexp_field (b, { txt; _ }) -> (
    let bv = eval ctx env b in
    let fname = Longident.last txt in
    match bv with
    | Rec fs when List.mem_assoc fname fs -> List.assoc fname fs
    | _ -> if secret_name fname then Tainted else collapse bv)
  | Pexp_setfield (b, _, v) ->
    ignore (eval ctx env b);
    ignore (eval ctx env v);
    Pure
  | Pexp_array es ->
    collapse (List.fold_left (fun acc x -> join acc (eval ctx env x)) Pure es)
  | Pexp_sequence (a, b) ->
    ignore (eval ctx env a);
    eval ctx env b
  | Pexp_constraint (x, _) | Pexp_coerce (x, _, _) | Pexp_lazy x ->
    eval ctx env x
  | Pexp_open (_, body)
  | Pexp_letexception (_, body)
  | Pexp_letmodule (_, _, body) ->
    eval ctx env body
  | Pexp_newtype (_, body) -> eval ctx env body
  | _ -> Pure

and eval_case ctx env sv (c : case) =
  let env' = bind_pat env c.pc_lhs sv in
  (match c.pc_guard with
  | Some g ->
    if is_tainted (eval ctx env' g) then
      diag ctx g.pexp_loc
        "match guard depends on secret-derived data (timing leak)"
  | None -> ());
  eval ctx env' c.pc_rhs

and eval_apply ctx env f args =
  match (head_parts f, args) with
  | Some [ "@@" ], [ (_, g); (_, x) ] ->
    eval_app_expr ctx env g [ (Asttypes.Nolabel, x) ]
  | Some [ "|>" ], [ (_, x); (_, g) ] ->
    eval_app_expr ctx env g [ (Asttypes.Nolabel, x) ]
  | _ ->
    let argvs = List.map (fun (lbl, a) -> (lbl, a, eval ctx env a)) args in
    let any_tainted = List.exists (fun (_, _, v) -> is_tainted v) argvs in
    let join_args =
      List.fold_left (fun acc (_, _, v) -> join acc v) Pure argvs
    in
    let by_last_name last =
      match last with
      | "encaps" -> Some (Tup [ Pure; Tainted ])
      | "decaps" -> Some Tainted
      | "equal_ct" -> Some Pure
      | "length" -> Some Pure
      | _ -> None
    in
    (match head_parts f with
    | None -> (
      (* computed function: a closure or a record of operations, e.g.
         [(kem cfg).encaps rng pk] *)
      ignore (eval ctx env f);
      match f.pexp_desc with
      | Pexp_field (_, { txt; _ }) -> (
        match by_last_name (Longident.last txt) with
        | Some v -> v
        | None -> collapse join_args)
      | _ -> collapse join_args)
    | Some parts -> (
      let name = String.concat "." parts in
      let last = List.nth parts (List.length parts - 1) in
      match List.rev parts with
      | "extract" :: "Hkdf" :: _ | "expand" :: "Hkdf" :: _ -> Tainted
      | "equal_ct" :: _ -> Pure
      | _ ->
        if ctx.c_emit then begin
          if List.mem name banned_compare && any_tainted then
            diag ctx f.pexp_loc
              (Printf.sprintf
                 "secret-derived data reaches variable-time comparison \
                  %s; use Crypto.Bytesx.equal_ct"
                 name);
          (match parts with
          | ("Printf" | "Format") :: _ when any_tainted ->
            diag ctx f.pexp_loc
              "secret-derived data reaches Printf/Format output"
          | _ ->
            if List.mem name format_heads && any_tainted then
              diag ctx f.pexp_loc
                "secret-derived data reaches terminal output");
          if List.mem name raise_heads && any_tainted then
            diag ctx f.pexp_loc
              "secret-derived data in an exception payload escapes the \
               constant-time boundary";
          (match parts with
          | [ "Hashtbl"; op ] when List.mem op hashtbl_key_ops -> (
            match
              List.filter (fun (l, _, _) -> l = Asttypes.Nolabel) argvs
            with
            | _ :: (_, _, kv) :: _ when is_tainted kv ->
              diag ctx f.pexp_loc
                "secret-derived data used as a Hashtbl key (hashing \
                 time and bucket layout are observable)"
            | _ -> ())
          | _ -> ())
        end;
        let resolved =
          match parts with
          | [ n ] when List.mem_assoc n env -> None
          | _ -> Symtab.resolve ctx.c_syms ~file:ctx.c_file name
        in
        (match resolved with
        | Some q ->
          let s = summary_of ctx q in
          if s.s_ret || (s.s_arg_to_ret && any_tainted) then Tainted
          else Pure
        | None -> (
          match by_last_name last with
          | Some v -> v
          | None -> collapse join_args))))

and eval_app_expr ctx env g extra =
  match g.pexp_desc with
  | Pexp_apply (h, args0) -> eval_apply ctx env h (args0 @ extra)
  | _ -> eval_apply ctx env g extra

let run_def ctx (d : Symtab.def) ~seed_params =
  let env =
    List.map
      (fun p ->
        (p, if seed_params && secret_name p then Tainted else Pure))
      d.Symtab.d_params
  in
  eval ctx env d.Symtab.d_body

let analyse syms =
  let summaries = Hashtbl.create 512 in
  let ds = Symtab.defs syms in
  List.iter
    (fun (d : Symtab.def) ->
      Hashtbl.replace summaries d.Symtab.d_qual
        { s_ret = false; s_arg_to_ret = false })
    ds;
  let changed = ref true and rounds = ref 0 in
  while !changed && !rounds < 10 do
    changed := false;
    incr rounds;
    List.iter
      (fun (d : Symtab.def) ->
        let ctx =
          { c_syms = syms;
            c_summaries = summaries;
            c_file = d.Symtab.d_file;
            c_symbol = d.Symtab.d_name;
            c_emit = false;
            c_diags = [] }
        in
        let ret_pure =
          is_tainted
            (eval ctx
               (List.map (fun p -> (p, Pure)) d.Symtab.d_params)
               d.Symtab.d_body)
        in
        let ret_tainted =
          is_tainted
            (eval ctx
               (List.map (fun p -> (p, Tainted)) d.Symtab.d_params)
               d.Symtab.d_body)
        in
        let cur = Hashtbl.find summaries d.Symtab.d_qual in
        let next =
          { s_ret = cur.s_ret || ret_pure;
            s_arg_to_ret = cur.s_arg_to_ret || ret_tainted }
        in
        if next <> cur then begin
          Hashtbl.replace summaries d.Symtab.d_qual next;
          changed := true
        end)
      ds
  done;
  { a_syms = syms; a_summaries = summaries }

let summary t qual = Hashtbl.find_opt t.a_summaries qual

let check_def t (d : Symtab.def) =
  let ctx =
    { c_syms = t.a_syms;
      c_summaries = t.a_summaries;
      c_file = d.Symtab.d_file;
      c_symbol = d.Symtab.d_name;
      c_emit = true;
      c_diags = [] }
  in
  ignore (run_def ctx d ~seed_params:true);
  List.rev ctx.c_diags

let check t =
  List.concat_map
    (fun (d : Symtab.def) ->
      if in_scope d.Symtab.d_file then check_def t d else [])
    (Symtab.defs t.a_syms)
