(** Small shared helpers over the compiler-libs Parsetree: dotted-path
    extraction, application heads, and an expression iterator that
    tracks the enclosing toplevel binding name (the [symbol] reported in
    diagnostics and matched by the allowlist). *)

val strip_stdlib : string -> string
(** Drop a leading ["Stdlib."] from a dotted path, so explicit and
    implicit stdlib references normalize to the same name. *)

val ident : Parsetree.expression -> string option
(** Dotted path of an identifier expression ("Unix.gettimeofday"), with
    any leading "Stdlib." stripped so [Stdlib.compare] and [compare]
    normalize to the same name. *)

val app_head : Parsetree.expression -> string option
(** [ident] of the function position of an application, or of the
    expression itself when it is a bare identifier. *)

val string_const : Parsetree.expression -> string option
(** The value of a string-literal expression, if it is one. *)

val in_dir : dir:string -> string -> bool
(** [in_dir ~dir:"lib/crypto" path] — does [path] live under that
    directory? Matches both repo-relative and absolute paths. *)

val iter_expressions :
  Parsetree.structure -> (symbol:string -> Parsetree.expression -> unit) ->
  unit
(** Visit every expression of a structure, passing the name of the
    enclosing toplevel [let] (or ["_"] for destructuring bindings,
    [""] outside any binding). *)
