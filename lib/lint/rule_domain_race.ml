open Parsetree

(* S2 — cross-domain mutation. S1 flags module-level mutable state at
   its birthplace; S2 follows the call graph and flags the *writes*:
   any store into toplevel mutable state performed by a function
   reachable from a [Pool.map] task site races across domains unless it
   happens inside [Mutex.protect] (atomics are exempt — they are safe
   by construction and never enter the mutable set). *)

let creators =
  [ "ref";
    "Hashtbl.create";
    "Array.make";
    "Array.init";
    "Array.create_float";
    "Bytes.create";
    "Bytes.make";
    "Buffer.create";
    "Queue.create";
    "Stack.create" ]

let allocates_mutable body =
  let found = ref false in
  let super = Ast_iterator.default_iterator in
  let iter =
    { super with
      expr =
        (fun self e ->
          match e.pexp_desc with
          | Pexp_fun _ | Pexp_function _ | Pexp_lazy _ -> ()
          | Pexp_apply (f, _) ->
            (match Walk.ident f with
            | Some p when List.mem p creators -> found := true
            | _ -> ());
            super.expr self e
          | _ -> super.expr self e) }
  in
  iter.Ast_iterator.expr iter body;
  !found

(* [head parts -> index of the mutated positional argument] *)
let write_target_index parts =
  match parts with
  | [ (":=" | "incr" | "decr") ] -> Some 0
  | [ "Hashtbl"; ("add" | "replace" | "remove" | "reset" | "clear") ] ->
    Some 0
  | [ ("Array" | "Bytes"); ("set" | "fill" | "blit" | "unsafe_set") ] ->
    Some 0
  | [ "Buffer"; f ]
    when f = "clear" || f = "reset" || f = "truncate"
         || (String.length f > 4 && String.sub f 0 4 = "add_") ->
    Some 0
  | [ "Queue"; ("push" | "add") ] | [ "Stack"; "push" ] -> Some 1
  | [ ("Queue" | "Stack"); ("pop" | "take" | "clear") ] -> Some 0
  | _ -> None

let within (outer : Location.t) (inner : Location.t) =
  inner.Location.loc_start.Lexing.pos_cnum
  >= outer.Location.loc_start.Lexing.pos_cnum
  && inner.Location.loc_end.Lexing.pos_cnum
     <= outer.Location.loc_end.Lexing.pos_cnum

let check sources =
  let syms = Symtab.build sources in
  let cg = Callgraph.build syms in
  let reach = Callgraph.reachable cg (Callgraph.pool_roots syms) in
  let mutables = Hashtbl.create 64 in
  List.iter
    (fun (d : Symtab.def) ->
      if
        d.Symtab.d_params = []
        && Walk.in_dir ~dir:"lib" d.Symtab.d_file
        && allocates_mutable d.Symtab.d_body
      then Hashtbl.replace mutables d.Symtab.d_qual ())
    (Symtab.defs syms);
  List.concat_map
    (fun (d : Symtab.def) ->
      if
        (not (Hashtbl.mem reach d.Symtab.d_qual))
        || not (Walk.in_dir ~dir:"lib" d.Symtab.d_file)
      then []
      else begin
        let resolve_target e =
          match Walk.ident e with
          | Some dotted -> (
            match
              Symtab.resolve syms ~file:d.Symtab.d_file dotted
            with
            | Some q when Hashtbl.mem mutables q -> Some q
            | _ -> None)
          | None -> None
        in
        let guards = ref [] and writes = ref [] in
        let super = Ast_iterator.default_iterator in
        let iter =
          { super with
            expr =
              (fun self e ->
                (match e.pexp_desc with
                | Pexp_apply (f, args) -> (
                  match Walk.ident f with
                  | Some path -> (
                    let parts = String.split_on_char '.' path in
                    (match List.rev parts with
                    | "protect" :: "Mutex" :: _ ->
                      guards := e.pexp_loc :: !guards
                    | _ -> ());
                    match write_target_index parts with
                    | Some i -> (
                      let positional =
                        List.filter_map
                          (function
                            | Asttypes.Nolabel, a -> Some a
                            | _ -> None)
                          args
                      in
                      match List.nth_opt positional i with
                      | Some target -> (
                        match resolve_target target with
                        | Some q -> writes := (e.pexp_loc, q) :: !writes
                        | None -> ())
                      | None -> ())
                    | None -> ())
                  | None -> ())
                | Pexp_setfield (base, _, _) -> (
                  match resolve_target base with
                  | Some q -> writes := (e.pexp_loc, q) :: !writes
                  | None -> ())
                | _ -> ());
                super.expr self e) }
        in
        iter.Ast_iterator.expr iter d.Symtab.d_body;
        List.rev !writes
        |> List.filter_map (fun (loc, q) ->
               if List.exists (fun g -> within g loc) !guards then None
               else
                 Some
                   (Diag.make ~rule:"S2" ~file:d.Symtab.d_file
                      ~symbol:d.Symtab.d_name loc
                      (Printf.sprintf
                         "write to module-level mutable %s from a \
                          function reachable from a Core.Pool task: \
                          racing domains corrupt it; wrap the access \
                          in Mutex.protect or switch to Atomic"
                         q)))
      end)
    (Symtab.defs syms)

let rule =
  { Rule.name = "S2";
    severity = Rule.Error;
    synopsis =
      "module-level mutable state written from functions reachable \
       from Core.Pool tasks must be under Mutex.protect";
    doc =
      "Campaigns fan out over OCaml 5 domains via Core.Pool, so any \
       store into toplevel mutable state (refs, Hashtbl, Buffer, ...) \
       performed by a function reachable — through the call graph — \
       from a Pool.map task closure is a data race. The rule resolves \
       the written name back to its definition, walks the call graph \
       from every Pool.map site, and accepts only writes wrapped in \
       Mutex.protect; Atomic state is exempt by construction.";
    check }
