open Parsetree

let is_enumerator = function
  | Some ("Hashtbl.iter" | "Hashtbl.fold") -> true
  | _ -> false

let is_sort = function
  | Some
      ( "List.sort" | "List.stable_sort" | "List.fast_sort"
      | "List.sort_uniq" | "Array.sort" | "Array.stable_sort" ) ->
    true
  | _ -> false

(* A fold is fine when a sort consumes it in the same expression; we
   mark those call sites in a first pass, then flag every unmarked
   enumeration. *)
let check sources =
  List.concat_map
    (fun (src : Source.t) ->
      match src.Source.ast with
      | Source.Signature _ -> []
      | Source.Structure str ->
        let sorted = ref [] in
        let mark e =
          if is_enumerator (Walk.app_head e) then
            sorted := e.pexp_loc :: !sorted
        in
        Walk.iter_expressions str (fun ~symbol:_ e ->
            match e.pexp_desc with
            | Pexp_apply (f, args) when is_sort (Walk.ident f) ->
              List.iter (fun (_, a) -> mark a) args
            | Pexp_apply (op, [ (_, lhs); (_, rhs) ]) -> (
              match Walk.ident op with
              | Some "|>" when is_sort (Walk.app_head rhs) -> mark lhs
              | Some "@@" when is_sort (Walk.app_head lhs) -> mark rhs
              | _ -> ())
            | _ -> ());
        let out = ref [] in
        Walk.iter_expressions str (fun ~symbol e ->
            match Walk.ident e with
            | Some (("Hashtbl.iter" | "Hashtbl.fold") as path) ->
              let consumed =
                (* the enumerator ident sits inside a marked (sorted)
                   application *)
                List.exists
                  (fun loc ->
                    String.equal loc.Location.loc_start.Lexing.pos_fname
                      e.pexp_loc.Location.loc_start.Lexing.pos_fname
                    && loc.Location.loc_start.Lexing.pos_cnum
                       <= e.pexp_loc.Location.loc_start.Lexing.pos_cnum
                    && e.pexp_loc.Location.loc_end.Lexing.pos_cnum
                       <= loc.Location.loc_end.Lexing.pos_cnum)
                  !sorted
              in
              if not consumed then
                out :=
                  Diag.make ~rule:"D2" ~file:src.Source.path ~symbol
                    e.pexp_loc
                    (path
                   ^ " enumerates in hash-bucket order; sort the result \
                      where it is produced (… |> List.sort cmp) or \
                      suppress with a reason if order cannot escape")
                  :: !out
            | _ -> ());
        !out)
    sources

let rule =
  { Rule.name = "D2";
    severity = Rule.Error;
    doc =
      "Hashtbl iteration order depends on the hash seed and insertion \
       history, so results of Hashtbl.iter/fold must be sorted at the \
       producer before they can reach a campaign artifact; otherwise \
       two identical runs can emit differently-ordered reports.";
    synopsis =
      "Hashtbl.iter/fold results must be sorted at the producer before \
       they can reach an artifact";
    check }
