(** Intra-tree call graph over [Symtab] definitions.

    An edge [caller -> callee] exists when the body of [caller]
    mentions an identifier that resolves to [callee] — including
    function values passed to higher-order combinators, so closures
    handed to [Pool.map] or [List.iter] keep their call edges. *)

type t

val build : Symtab.t -> t

val callees : t -> string -> string list
(** Sorted, duplicate-free callee list (empty for unknown callers). *)

val vertices : t -> string list
(** All callers, sorted. *)

val reachable : t -> string list -> (string, unit) Hashtbl.t
(** Transitive closure from the given roots, roots included. *)

val pool_roots : Symtab.t -> string list
(** Qualified names of definitions whose body applies [Pool.map] (the
    domain-pool entry point) — the roots used by rule S2. *)

val to_text : t -> string
(** One ["caller -> callee"] line per edge, deterministic order. *)

val to_dot : t -> string
(** Graphviz rendering of the same edges. *)
