(** Interprocedural taint analysis for secret key material (rule C2).

    The lattice value of an expression is [Pure] (public), [Tainted]
    (secret-derived), or a structured [Tup]/[Rec] so tuple and record
    components keep independent taint (a KEM [encaps] returns a public
    ciphertext next to a secret shared key).

    Taint is seeded at

    - calls to [Hkdf.extract]/[Hkdf.expand] (every TLS 1.3 secret in
      this tree is an HKDF output),
    - KEM [decaps] results and the second component of [encaps],
    - bindings, parameters and record fields whose name is
      [psk]/[secret]/[binder_key]/[ticket_key]/[stek] or ends in
      [_secret]/[_psk]/[_binder_key]/[_ticket_key],

    and propagated through lets, tuples, records, match bindings and —
    via one-level per-definition summaries computed to fixpoint — calls
    between toplevel definitions anywhere in the tree.

    Sinks (reported in [lib/crypto], [lib/pqc], [lib/tls]): [if]/[match]
    scrutinees and guards, variable-time comparison ([String.equal],
    polymorphic [=], ...), [Printf]/[Format] output, exception
    payloads, and [Hashtbl] keys. [Bytesx.equal_ct] output is public by
    construction; an expression annotated
    [[@lint.declassify "reason"]] is an audited declassification. *)

type tv = Pure | Tainted | Tup of tv list | Rec of (string * tv) list

type summary = {
  s_ret : bool; (* returns secret-derived data with pure arguments *)
  s_arg_to_ret : bool; (* tainted argument taints the result *)
}

type t

val analyse : Symtab.t -> t
(** Compute per-definition summaries to fixpoint (no diagnostics). *)

val summary : t -> string -> summary option
(** Summary of a qualified definition, for tests and debugging. *)

val check_def : t -> Symtab.def -> Diag.t list
(** Re-evaluate one definition with name-seeded parameters, reporting
    every sink a tainted value reaches. *)

val check : t -> Diag.t list
(** [check_def] over every definition in the C2 scope directories. *)

val secret_name : string -> bool
(** The binding-name seeding predicate (exposed for tests). *)

val is_tainted : tv -> bool
val join : tv -> tv -> tv
