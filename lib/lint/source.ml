type kind = Ml | Mli

type ast =
  | Structure of Parsetree.structure
  | Signature of Parsetree.signature

type t = { path : string; kind : kind; ast : ast }

exception Parse_error of string * string

let render_parse_exn path exn =
  match Location.error_of_exn exn with
  | Some (`Ok report) -> Format.asprintf "%a" Location.print_report report
  | Some `Already_displayed | None ->
    Printf.sprintf "%s: %s" path (Printexc.to_string exn)

let parse_string ~path kind text =
  let lexbuf = Lexing.from_string text in
  Location.init lexbuf path;
  lexbuf.Lexing.lex_curr_p <- { lexbuf.Lexing.lex_curr_p with pos_fname = path };
  try
    let ast =
      match kind with
      | Ml -> Structure (Parse.implementation lexbuf)
      | Mli -> Signature (Parse.interface lexbuf)
    in
    { path; kind; ast }
  with exn -> raise (Parse_error (path, render_parse_exn path exn))

let kind_of_path path =
  if Filename.check_suffix path ".mli" then Some Mli
  else if Filename.check_suffix path ".ml" then Some Ml
  else None

(* [lint_fixtures] holds deliberately-broken inputs for the rule tests;
   recursive scans skip it, but naming it as an explicit root (as the
   fixture tests and the CI regression step do) still works. *)
let skip_dir name =
  name = "_build" || name = "_opam" || name = "lint_fixtures"
  || (String.length name > 0 && name.[0] = '.')

let scan paths =
  let acc = ref [] in
  let rec walk path =
    if Sys.is_directory path then
      Array.iter
        (fun entry ->
          let child = Filename.concat path entry in
          if Sys.is_directory child then begin
            if not (skip_dir entry) then walk child
          end
          else if kind_of_path entry <> None then acc := child :: !acc)
        (Sys.readdir path)
    else if kind_of_path path <> None then acc := path :: !acc
  in
  List.iter walk paths;
  List.sort_uniq String.compare !acc

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_paths paths =
  let files = scan paths in
  List.fold_left
    (fun (ok, bad) path ->
      match kind_of_path path with
      | None -> (ok, bad)
      | Some kind -> (
        match parse_string ~path kind (read_file path) with
        | src -> (src :: ok, bad)
        | exception Parse_error (p, msg) -> (ok, (p, msg) :: bad)))
    ([], []) files
  |> fun (ok, bad) -> (List.rev ok, List.rev bad)
