type severity = Error | Warning

type t = {
  name : string;
  severity : severity;
  synopsis : string;
  doc : string;
  check : Source.t list -> Diag.t list;
}

let severity_string = function Error -> "error" | Warning -> "warning"
