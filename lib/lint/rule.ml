type t = {
  name : string;
  synopsis : string;
  check : Source.t list -> Diag.t list;
}
