(** D2 — hash-order escape. [Hashtbl.iter]/[Hashtbl.fold] enumerate in
    hash-bucket order, which is not part of any contract; a result built
    in that order must be sorted before it can reach an artifact. The
    rule accepts a fold that is syntactically consumed by a sort —
    [Hashtbl.fold f h [] |> List.sort cmp] or
    [List.sort cmp (Hashtbl.fold f h [])] — and flags every other use;
    order-insensitive consumers suppress with a reason. *)

val rule : Rule.t
