type t = {
  rule : string;
  file : string;
  line : int;
  col : int;
  symbol : string;
  message : string;
}

let make ~rule ~file ?(symbol = "") (loc : Location.t) message =
  let p = loc.Location.loc_start in
  { rule;
    file;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    symbol;
    message }

let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
    match Int.compare a.line b.line with
    | 0 -> (
      match Int.compare a.col b.col with
      | 0 -> String.compare a.rule b.rule
      | c -> c)
    | c -> c)
  | c -> c

let to_string d =
  Printf.sprintf "%s:%d:%d: [%s] %s%s" d.file d.line d.col d.rule d.message
    (if d.symbol = "" then "" else Printf.sprintf " (in %s)" d.symbol)
