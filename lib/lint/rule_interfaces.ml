let module_name path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

let check sources =
  List.filter_map
    (fun (src : Source.t) ->
      match src.Source.kind with
      | Source.Mli -> None
      | Source.Ml ->
        if not (Walk.in_dir ~dir:"lib" src.Source.path) then None
        else begin
          let mli = src.Source.path ^ "i" in
          let present =
            List.exists (fun (s : Source.t) -> s.Source.path = mli) sources
            || Sys.file_exists mli
          in
          if present then None
          else
            Some
              { Diag.rule = "M1";
                file = src.Source.path;
                line = 1;
                col = 0;
                symbol = module_name src.Source.path;
                message =
                  Printf.sprintf
                    "module %s has no interface; add %s so the public \
                     surface is reviewed"
                    (module_name src.Source.path)
                    (Filename.basename mli) }
        end)
    sources

let rule =
  { Rule.name = "M1";
    severity = Rule.Warning;
    doc =
      "An .mli seals a module's namespace: without one, every helper \
       is public API and the dataflow rules lose the guarantee that \
       secret-bearing internals are reached only through audited entry \
       points. Every lib/**/*.ml therefore ships with a matching .mli.";
    synopsis = "every lib/**/*.ml is sealed by a matching .mli";
    check }
