let banned =
  [ "Unix.gettimeofday";
    "Unix.time";
    "Sys.time";
    "Random.self_init";
    "Random.State.make_self_init" ]

let check sources =
  List.concat_map
    (fun (src : Source.t) ->
      match src.Source.ast with
      | Source.Signature _ -> []
      | Source.Structure str ->
        let out = ref [] in
        Walk.iter_expressions str (fun ~symbol e ->
            match Walk.ident e with
            | Some path when List.mem path banned ->
              out :=
                Diag.make ~rule:"D1" ~file:src.Source.path ~symbol
                  e.Parsetree.pexp_loc
                  (path
                 ^ " reads the wall clock; campaign results must depend \
                    only on virtual time and the seed")
                :: !out
            | _ -> ());
        !out)
    sources

let rule =
  { Rule.name = "D1";
    synopsis =
      "wall-clock reads (Unix.gettimeofday, Sys.time, Random.self_init, \
       ...) are quarantined to annotated health/progress sites";
    check }
