let banned =
  [ "Unix.gettimeofday";
    "Unix.time";
    "Sys.time";
    "Random.self_init";
    "Random.State.make_self_init" ]

(* The quarantined clock itself ({!Core.Clock}) is legal in the harness
   layers — core, bin, bench, test — where it feeds telemetry and the
   profiling artifact, but banned inside the simulation stack, which
   must stay a pure function of spec and seed. *)
let clock_reads =
  [ "Clock.now_s"; "Clock.elapsed_s"; "Clock.time_ms";
    "Core.Clock.now_s"; "Core.Clock.elapsed_s"; "Core.Clock.time_ms" ]

let sim_dirs =
  [ "lib/crypto"; "lib/pqc"; "lib/tls"; "lib/netsim"; "lib/trace";
    "lib/lint" ]

let in_sim path = List.exists (fun dir -> Walk.in_dir ~dir path) sim_dirs

let check sources =
  List.concat_map
    (fun (src : Source.t) ->
      match src.Source.ast with
      | Source.Signature _ -> []
      | Source.Structure str ->
        let out = ref [] in
        let diag ~symbol e msg =
          out :=
            Diag.make ~rule:"D1" ~file:src.Source.path ~symbol
              e.Parsetree.pexp_loc msg
            :: !out
        in
        Walk.iter_expressions str (fun ~symbol e ->
            match Walk.ident e with
            | Some path when List.mem path banned ->
              diag ~symbol e
                (path
               ^ " reads the wall clock; campaign results must depend \
                  only on virtual time and the seed")
            | Some path
              when List.mem path clock_reads && in_sim src.Source.path ->
              diag ~symbol e
                (path
               ^ " reads host time inside the simulation stack; only the \
                  harness layers (lib/core, bin, bench, test) may observe \
                  the quarantined clock")
            | _ -> ());
        !out)
    sources

let rule =
  { Rule.name = "D1";
    severity = Rule.Error;
    doc =
      "Simulated time is the experiment's only clock. Raw wall-clock \
       primitives (Unix.gettimeofday, Sys.time, Random.self_init, \
       Unix.time, Mtime) may appear only inside the annotated \
       Core.Clock module, and Core.Clock itself is banned from the \
       simulation layers so no measurement can silently depend on the \
       host machine.";
    synopsis =
      "wall-clock reads are quarantined: the raw primitives \
       (Unix.gettimeofday, Sys.time, Random.self_init, ...) live only in \
       the annotated Core.Clock module, and Clock itself is banned in the \
       simulation layers";
    check }
