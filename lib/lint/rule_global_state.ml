open Parsetree

let creators =
  [ "ref";
    "Hashtbl.create";
    "Array.make";
    "Array.init";
    "Array.create_float";
    "Bytes.create";
    "Bytes.make";
    "Buffer.create";
    "Queue.create";
    "Stack.create";
    "Atomic.make";
    "Domain.DLS.new_key" ]

(* Walk only the expressions the runtime evaluates while the module
   initializes: stop at function/lazy abstractions, whose bodies run
   per call. *)
let check sources =
  List.concat_map
    (fun (src : Source.t) ->
      match src.Source.ast with
      | _ when not (Walk.in_dir ~dir:"lib" src.Source.path) -> []
      | Source.Signature _ -> []
      | Source.Structure str ->
        let out = ref [] in
        let diag ~symbol loc what =
          out :=
            Diag.make ~rule:"S1" ~file:src.Source.path ~symbol loc
              (what
             ^ " at module level is mutable state shared across campaign \
                domains; guard it (mutex / atomic / Domain.DLS) or mark \
                the init-once constant with a suppression reason")
            :: !out
        in
        let rec init_expr ~symbol e =
          match e.pexp_desc with
          | Pexp_fun _ | Pexp_function _ | Pexp_lazy _ -> ()
          | _ ->
            (match e.pexp_desc with
            | Pexp_apply (f, _) -> (
              match Walk.ident f with
              | Some path when List.mem path creators ->
                diag ~symbol e.pexp_loc path
              | _ -> ())
            | _ -> ());
            let sub = Ast_iterator.default_iterator in
            let prune =
              { sub with
                expr =
                  (fun self e' ->
                    if e' == e then sub.expr self e'
                    else init_expr ~symbol e') }
            in
            prune.Ast_iterator.expr prune e
        in
        let binding_name vb =
          match vb.pvb_pat.ppat_desc with
          | Ppat_var { txt; _ } -> txt
          | _ -> "_"
        in
        let rec item it =
          match it.pstr_desc with
          | Pstr_value (_, vbs) ->
            List.iter
              (fun vb -> init_expr ~symbol:(binding_name vb) vb.pvb_expr)
              vbs
          | Pstr_eval (e, _) -> init_expr ~symbol:"_" e
          | Pstr_module mb -> module_expr mb.pmb_expr
          | Pstr_recmodule mbs ->
            List.iter (fun mb -> module_expr mb.pmb_expr) mbs
          | _ -> ()
        and module_expr me =
          match me.pmod_desc with
          | Pmod_structure s -> List.iter item s
          | Pmod_constraint (me, _) -> module_expr me
          | _ -> () (* functors run at application time; out of scope *)
        in
        List.iter item str;
        !out)
    sources

let rule =
  { Rule.name = "S1";
    severity = Rule.Error;
    doc =
      "Campaigns run on multiple OCaml 5 domains, so module-level \
       mutable state (ref, Hashtbl.create, Array.make, Buffer.create, \
       ...) in lib/ is shared by default. Each site must either be \
       guarded (mutex, atomic, Domain.DLS) or carry an audited \
       suppression explaining why it is init-once. S2 additionally \
       follows the call graph to catch unguarded writes.";
    synopsis =
      "module-level mutable state in lib/ (ref, Hashtbl.create, \
       Array.make, ...) must be guarded or explicitly allowlisted";
    check }
