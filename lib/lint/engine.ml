let rules =
  [ Rule_wallclock.rule;
    Rule_hashtbl_order.rule;
    Rule_consttime.rule;
    Rule_secret_flow.rule;
    Rule_global_state.rule;
    Rule_domain_race.rule;
    Rule_unsafe.rule;
    Rule_interfaces.rule ]

let find_rule name =
  List.find_opt (fun (r : Rule.t) -> r.Rule.name = name) rules

let run ?(entries = []) ?(rules = rules) sources =
  let scopes, malformed =
    List.fold_left
      (fun (scopes, bad) src ->
        let s, b = Allow.scopes_of_source src in
        (s @ scopes, b @ bad))
      ([], []) sources
  in
  let findings =
    List.concat_map (fun (r : Rule.t) -> r.Rule.check sources) rules
  in
  let kept =
    List.filter
      (fun d -> not (Allow.suppressed ~scopes ~entries d))
      findings
  in
  List.sort Diag.compare (malformed @ kept)
