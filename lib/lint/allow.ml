open Parsetree

type scope = {
  s_rule : string;
  s_file : string;
  s_line_start : int;
  s_line_end : int;
  s_reason : string;
}

type entry = {
  e_rule : string;
  e_path : string;
  e_symbol : string;
  e_reason : string;
}

let attr_name = "lint.allow"

(* [@lint.allow "RULE" "reason"] — the payload parses as the string
   constant "RULE" applied to "reason" (never typechecked, so the odd
   shape is fine); a bare string or a pair is accepted too. *)
let payload_strings = function
  | PStr [ { pstr_desc = Pstr_eval (e, _); _ } ] -> (
    match e.pexp_desc with
    | Pexp_apply (f, [ (Asttypes.Nolabel, a) ]) -> (
      match (Walk.string_const f, Walk.string_const a) with
      | Some rule, Some reason -> Some (rule, reason)
      | _ -> None)
    | Pexp_tuple [ a; b ] -> (
      match (Walk.string_const a, Walk.string_const b) with
      | Some rule, Some reason -> Some (rule, reason)
      | _ -> None)
    | Pexp_constant (Pconst_string (rule, _, _)) -> Some (rule, "")
    | _ -> None)
  | _ -> None

let scopes_of_source (src : Source.t) =
  let scopes = ref [] and bad = ref [] in
  let host ~whole_file (loc : Location.t) attrs =
    List.iter
      (fun (a : attribute) ->
        if a.attr_name.Asttypes.txt = attr_name then
          match payload_strings a.attr_payload with
          | Some (rule, reason) when reason <> "" ->
            scopes :=
              { s_rule = rule;
                s_file = src.Source.path;
                s_line_start =
                  (if whole_file then 0
                   else loc.Location.loc_start.Lexing.pos_lnum);
                s_line_end =
                  (if whole_file then max_int
                   else loc.Location.loc_end.Lexing.pos_lnum);
                s_reason = reason }
              :: !scopes
          | _ ->
            bad :=
              Diag.make ~rule:"LINT" ~file:src.Source.path a.attr_loc
                "lint.allow needs a rule and a non-empty reason: \
                 [@lint.allow \"RULE\" \"why this site is exempt\"]"
              :: !bad)
      attrs
  in
  let super = Ast_iterator.default_iterator in
  let iter =
    { super with
      expr =
        (fun self e ->
          host ~whole_file:false e.pexp_loc e.pexp_attributes;
          super.expr self e);
      value_binding =
        (fun self vb ->
          host ~whole_file:false vb.pvb_loc vb.pvb_attributes;
          super.value_binding self vb);
      module_binding =
        (fun self mb ->
          host ~whole_file:false mb.pmb_loc mb.pmb_attributes;
          super.module_binding self mb);
      structure_item =
        (fun self it ->
          (match it.pstr_desc with
          | Pstr_attribute a -> host ~whole_file:true it.pstr_loc [ a ]
          | _ -> ());
          super.structure_item self it);
      signature_item =
        (fun self it ->
          (match it.psig_desc with
          | Psig_attribute a -> host ~whole_file:true it.psig_loc [ a ]
          | _ -> ());
          super.signature_item self it) }
  in
  (match src.Source.ast with
  | Source.Structure str -> iter.Ast_iterator.structure iter str
  | Source.Signature sg -> iter.Ast_iterator.signature iter sg);
  (!scopes, !bad)

let split_ws line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let parse_entries ~path text =
  let entries = ref [] and bad = ref [] in
  List.iteri
    (fun i line ->
      let line =
        match String.index_opt line '#' with
        | Some j -> String.sub line 0 j
        | None -> line
      in
      match split_ws line with
      | [] -> ()
      | rule :: file :: symbol :: (_ :: _ as reason) ->
        entries :=
          { e_rule = rule;
            e_path = file;
            e_symbol = symbol;
            e_reason = String.concat " " reason }
          :: !entries
      | _ ->
        bad :=
          { Diag.rule = "LINT";
            file = path;
            line = i + 1;
            col = 0;
            symbol = "";
            message =
              "malformed allowlist line (want: RULE PATH SYMBOL REASON...)" }
          :: !bad)
    (String.split_on_char '\n' text);
  (List.rev !entries, List.rev !bad)

let load_file path =
  if not (Sys.file_exists path) then ([], [])
  else begin
    let ic = open_in_bin path in
    let text =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    parse_entries ~path text
  end

let path_matches ~pattern file =
  pattern = file
  ||
  let suffix = "/" ^ pattern in
  let n = String.length suffix and m = String.length file in
  m >= n && String.sub file (m - n) n = suffix

let suppressed ~scopes ~entries (d : Diag.t) =
  List.exists
    (fun s ->
      (s.s_rule = "*" || s.s_rule = d.Diag.rule)
      && s.s_file = d.Diag.file
      && d.Diag.line >= s.s_line_start
      && d.Diag.line <= s.s_line_end)
    scopes
  || List.exists
       (fun e ->
         (e.e_rule = "*" || e.e_rule = d.Diag.rule)
         && path_matches ~pattern:e.e_path d.Diag.file
         && (e.e_symbol = "*" || e.e_symbol = d.Diag.symbol))
       entries
