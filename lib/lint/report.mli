(** Rendering a lint run for people ([text]), for CI ([json]) and for
    GitHub code scanning ([sarif]). All renderings are pure functions
    of the (already sorted) inputs, so a lint report is as reproducible
    as the artifacts it protects. *)

type format = Text | Json | Sarif

val format_of_string : string -> format option

val render :
  format ->
  rules:Rule.t list ->
  files:int ->
  errors:(string * string) list ->
  Diag.t list ->
  string
(** [errors] are parse failures (path, message); [rules] is the catalog
    the run used (embedded as metadata by the SARIF rendering, which
    maps each rule's severity to a SARIF level). The JSON rendering
    uses schema [pqtls-lint/1]:
    [{ "schema", "files", "violations": [...], "errors": [...] }]; the
    SARIF rendering is SARIF 2.1.0 with one run. *)
