(** Rendering a lint run for people ([text]) and for CI ([json]). Both
    renderings are pure functions of the (already sorted) inputs, so a
    lint report is as reproducible as the artifacts it protects. *)

type format = Text | Json

val format_of_string : string -> format option

val render :
  format ->
  files:int ->
  errors:(string * string) list ->
  Diag.t list ->
  string
(** [errors] are parse failures (path, message). The JSON rendering uses
    schema [pqtls-lint/1]:
    [{ "schema", "files", "violations": [...], "errors": [...] }]. *)
