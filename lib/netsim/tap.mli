(** The timestamper: a pcap-like record of every packet the passive tap
    saw, with helpers to locate TLS handshake milestones the way the
    paper's black-box analysis does (CH, SH, client Finished are all
    identifiable without decryption). *)

type entry = { time : float; packet : Packet.t }

type t

val create : unit -> t
val tap : t -> float -> Packet.t -> unit
(** Suitable as the [tap] callback of {!Link.create}. *)

val entries : t -> entry list
(** In capture order. *)

val clear : t -> unit
val length : t -> int

val find_mark : t -> ?after:float -> string -> entry option
(** First capture at/after [after] whose packet carries the given TLS
    message mark. *)

val bytes_sent_by : t -> string -> int
(** Total wire bytes captured with the given source host. *)

val packets_sent_by : t -> string -> int
