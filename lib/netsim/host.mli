(** A simulated host: one dedicated CPU core (the paper pins client and
    server to cores) plus a per-shared-library CPU ledger that feeds the
    white-box analysis (Table 3). *)

type t

val create : Engine.t -> name:string -> t
val name : t -> string

val now : t -> float
(** The host's virtual clock (its engine's current time). *)

val charge : ?op:string -> t -> ms:float -> lib:string -> k:(unit -> unit) -> unit
(** [charge host ~ms ~lib ~k] occupies the CPU for [ms] virtual
    milliseconds (queueing behind any in-flight work) and then runs [k].
    The time is attributed to [lib] in the ledger. When tracing is
    enabled the occupied interval is emitted as a "cpu" span named [op]
    (defaulting to the library name). *)

val charge_async : ?op:string -> t -> ms:float -> lib:string -> unit
(** Account CPU time with no continuation (per-packet kernel work). *)

val ledger : t -> (string * float) list
(** Accumulated CPU milliseconds per library, descending. *)

val total_cpu_ms : t -> float

val charge_count : t -> int
(** Number of CPU charge events ({!charge} plus {!charge_async}) since
    creation — a cheap proxy for scheduler pressure in the metrics
    artifact. *)

val reset_ledger : t -> unit
(** Clears the per-library ledger; {!charge_count} is unaffected. *)
