type t = {
  engine : Engine.t;
  name : string;
  mutable cpu_free : float; (* the core is busy until this time *)
  mutable charges : int; (* CPU charge events, sync and async *)
  ledger : (string, float) Hashtbl.t;
}

let create engine ~name =
  { engine; name; cpu_free = 0.; charges = 0; ledger = Hashtbl.create 8 }
let name t = t.name
let now t = Engine.now t.engine

let account t lib ms =
  let prev = Option.value ~default:0. (Hashtbl.find_opt t.ledger lib) in
  Hashtbl.replace t.ledger lib (prev +. ms);
  t.charges <- t.charges + 1

(* Every CPU charge emits one "cpu" span over exactly the interval the
   core is occupied. The single-core model serializes charges through
   [cpu_free], so cpu spans on one host track never overlap — the
   exporters rely on this to build proper flame stacks — and summing
   them per library reproduces the ledger to float rounding. *)
let cpu_span t ~op ~lib start finish =
  if Trace.Sink.enabled () then
    Trace.Sink.span ~track:t.name ~cat:"cpu"
      ~name:(if op = "" then lib else op)
      ~args:[ ("lib", lib) ] start finish

let charge ?(op = "") t ~ms ~lib ~k =
  let now = Engine.now t.engine in
  let start = Float.max now t.cpu_free in
  let finish = start +. (ms /. 1000.) in
  t.cpu_free <- finish;
  account t lib ms;
  cpu_span t ~op ~lib start finish;
  Engine.schedule_at t.engine ~time:finish k

let charge_async ?(op = "") t ~ms ~lib =
  (* models interrupt-context work: accounted, and it delays the core *)
  let now = Engine.now t.engine in
  let start = Float.max now t.cpu_free in
  let finish = start +. (ms /. 1000.) in
  t.cpu_free <- finish;
  account t lib ms;
  cpu_span t ~op ~lib start finish

(* Sorted at the producer: biggest spender first, ties broken by name,
   so neither the rendering nor the float sum below can see hash-bucket
   order (float addition is not associative). *)
let ledger t =
  Hashtbl.fold (fun lib ms acc -> (lib, ms) :: acc) t.ledger []
  |> List.sort (fun (la, a) (lb, b) ->
         match Float.compare b a with 0 -> String.compare la lb | c -> c)

let total_cpu_ms t =
  List.fold_left (fun acc (_, ms) -> acc +. ms) 0. (ledger t)
let charge_count t = t.charges
let reset_ledger t = Hashtbl.reset t.ledger
