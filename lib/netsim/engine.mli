(** Discrete-event simulation core: a virtual clock and an event queue.

    All times are seconds of virtual time. Events scheduled for the same
    instant fire in scheduling order (FIFO), which keeps runs perfectly
    deterministic. *)

type t

val create : unit -> t
val now : t -> float

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs [f] at [now t +. delay]. Negative delays
    are clamped to 0. *)

val schedule_at : t -> time:float -> (unit -> unit) -> unit

type cancel = { mutable cancelled : bool }

val schedule_cancellable : t -> delay:float -> (unit -> unit) -> cancel
(** Like [schedule] but returns a handle; setting [cancelled] before the
    event fires suppresses it (used for TCP retransmission timers). *)

val run : ?until:float -> t -> unit
(** Drain the queue; stop early once the clock passes [until]. *)

val pending : t -> int
(** Events still scheduled to fire. Cancelled events linger in the
    internal heap until popped, but are never counted here. *)
