type entry = { time : float; packet : Packet.t }

type t = { mutable rev_entries : entry list; mutable count : int }

let create () = { rev_entries = []; count = 0 }

let tap t time packet =
  t.rev_entries <- { time; packet } :: t.rev_entries;
  t.count <- t.count + 1

let entries t = List.rev t.rev_entries

let clear t =
  t.rev_entries <- [];
  t.count <- 0

let length t = t.count

let find_mark t ?(after = neg_infinity) label =
  let matches e =
    e.time >= after
    && List.exists (fun (_, l) -> l = label) e.packet.Packet.marks
  in
  (* stored newest-first: scan reversed *)
  List.find_opt matches (entries t)

let bytes_sent_by t host =
  List.fold_left
    (fun acc e ->
      if e.packet.Packet.src = host then acc + Packet.wire_bytes e.packet
      else acc)
    0 (entries t)

let packets_sent_by t host =
  List.fold_left
    (fun acc e -> if e.packet.Packet.src = host then acc + 1 else acc)
    0 (entries t)
