type cancel = { mutable cancelled : bool }

type event = { time : float; seq : int; thunk : unit -> unit; handle : cancel }

(* binary min-heap ordered by (time, seq) *)
type t = {
  mutable heap : event array;
  mutable size : int;
  mutable clock : float;
  mutable next_seq : int;
}

let dummy =
  { time = 0.; seq = 0; thunk = (fun () -> ()); handle = { cancelled = false } }

let create () = { heap = Array.make 256 dummy; size = 0; clock = 0.; next_seq = 0 }
let now t = t.clock

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let push t ev =
  if t.size = Array.length t.heap then begin
    let bigger = Array.make (2 * t.size) dummy in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end;
  t.heap.(t.size) <- ev;
  t.size <- t.size + 1;
  (* sift up *)
  let i = ref (t.size - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    before t.heap.(!i) t.heap.(parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = t.heap.(parent) in
    t.heap.(parent) <- t.heap.(!i);
    t.heap.(!i) <- tmp;
    i := parent
  done

let pop t =
  assert (t.size > 0);
  let top = t.heap.(0) in
  t.size <- t.size - 1;
  t.heap.(0) <- t.heap.(t.size);
  t.heap.(t.size) <- dummy;
  (* sift down *)
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
    if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
    if !smallest = !i then continue := false
    else begin
      let tmp = t.heap.(!smallest) in
      t.heap.(!smallest) <- t.heap.(!i);
      t.heap.(!i) <- tmp;
      i := !smallest
    end
  done;
  top

let schedule_cancellable t ~delay thunk =
  let delay = if delay < 0. then 0. else delay in
  let handle = { cancelled = false } in
  push t { time = t.clock +. delay; seq = t.next_seq; thunk; handle };
  t.next_seq <- t.next_seq + 1;
  handle

let schedule t ~delay thunk = ignore (schedule_cancellable t ~delay thunk)

let schedule_at t ~time thunk = schedule t ~delay:(time -. t.clock) thunk

let run ?until t =
  let stop = match until with None -> infinity | Some u -> u in
  let continue = ref true in
  while !continue && t.size > 0 do
    let ev = pop t in
    if ev.time > stop then begin
      (* push back and stop: the caller may resume later *)
      push t ev;
      continue := false
    end
    else begin
      t.clock <- ev.time;
      if not ev.handle.cancelled then ev.thunk ()
    end
  done;
  if t.size = 0 && stop < infinity && t.clock < stop then t.clock <- stop

(* Cancelled handles stay in the heap until popped (cancellation only
   flips the flag), so the raw size overcounts. Callers use [pending] to
   ask "is there live work left?" — count only events that would still
   fire. *)
let pending t =
  let live = ref 0 in
  for i = 0 to t.size - 1 do
    if not t.heap.(i).handle.cancelled then incr live
  done;
  !live
