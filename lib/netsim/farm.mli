(** N-client x M-server farm orchestration: open-loop arrivals, a
    balancer, per-server concurrency limits and a bounded accept queue.

    The farm schedules one event per arrival on the engine at creation
    time and tracks admission / completion; the caller supplies [launch]
    (run one handshake against server [server], call [finished] when its
    client Finished lands) and then drives the engine. CPU queueing
    *behind* admission emerges from {!Host.charge} on the server hosts —
    the farm only decides who gets a slot and when. *)

type config = {
  servers : int;
  max_concurrent : int;  (** in-service handshakes per server *)
  accept_queue : int;  (** waiting connections per server; beyond = drop *)
  policy : Balancer.policy;
}

type t

val create :
  engine:Engine.t ->
  config:config ->
  arrivals:float list ->
  launch:(server:int -> conn:int -> finished:(unit -> unit) -> unit) ->
  t
(** [arrivals] are virtual instants (from {!Workload.arrivals}); [conn]
    is the arrival index, the caller's key for per-connection seeds.
    @raise Invalid_argument on a non-positive server count or limit. *)

val offered : t -> int
val completed : t -> int
val dropped : t -> int
(** Arrivals that found their server's accept queue full. *)

val unfinished : t -> int
(** Admitted or queued but not completed when the engine stopped. *)

val per_server_completed : t -> int array

val latencies_ms : t -> float list
(** Arrival-to-Finished per completed connection (accept-queue wait
    included), in arrival order. *)

val wait_ms : t -> float list
(** Arrival-to-admission per completed connection, in arrival order. *)
