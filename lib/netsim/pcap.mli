(** Classic libpcap export of captured traces.

    The paper publishes raw PCAPs from its timestamper; this module does
    the same for simulated traces, synthesizing Ethernet/IPv4/TCP headers
    around each captured segment so the file opens in Wireshark/tcpdump
    with correct sequence numbers, flags and payloads. *)

val of_entries : Tap.entry list -> string
(** A complete pcap file (little-endian, LINKTYPE_ETHERNET, microsecond
    timestamps). *)

val write_file : string -> Tap.t -> unit
(** [write_file path trace] dumps the capture to disk. *)

val client_ip : string
(** "10.0.0.1" — hosts named ["client"] get this address. *)

val server_ip : string
(** "10.0.0.2" — every other host name. *)
