(* The N-client x M-server farm: open-loop arrivals are admitted to
   servers through a balancer, subject to a per-server concurrency limit
   and a bounded accept queue. The farm itself never touches TLS — the
   caller supplies [launch], which runs one handshake against the chosen
   server and signals completion — so the module stays protocol-agnostic
   and free of dependency cycles.

   Per-server CPU queueing is *not* modeled here: it emerges from the
   existing [Host.charge] ledger, which serializes every handshake's
   crypto through the server core's [cpu_free] horizon. What the farm
   adds is admission control in front of that core: connections beyond
   [max_concurrent] wait in the accept queue, and arrivals that find the
   queue full are dropped — the overload phenomena of Table 5. *)

type config = {
  servers : int;
  max_concurrent : int;
  accept_queue : int;
  policy : Balancer.policy;
}

type conn = {
  id : int;
  arrived : float;
  mutable server : int;
  mutable admitted : float; (* nan until admitted *)
  mutable finished : float; (* nan until completed *)
}

type t = {
  engine : Engine.t;
  config : config;
  balancer : Balancer.t;
  launch : server:int -> conn:int -> finished:(unit -> unit) -> unit;
  conns : conn array; (* indexed by connection id = arrival order *)
  in_flight : int array;
  queues : conn Queue.t array;
  per_server_completed : int array;
  mutable completed : int;
  mutable dropped : int;
}

let rec admit t (c : conn) server =
  t.in_flight.(server) <- t.in_flight.(server) + 1;
  c.server <- server;
  c.admitted <- Engine.now t.engine;
  t.launch ~server ~conn:c.id ~finished:(fun () ->
      c.finished <- Engine.now t.engine;
      t.completed <- t.completed + 1;
      t.per_server_completed.(server) <- t.per_server_completed.(server) + 1;
      t.in_flight.(server) <- t.in_flight.(server) - 1;
      if not (Queue.is_empty t.queues.(server)) then
        admit t (Queue.pop t.queues.(server)) server)

let arrive t c =
  let server =
    Balancer.pick t.balancer ~load:(fun s ->
        t.in_flight.(s) + Queue.length t.queues.(s))
  in
  if t.in_flight.(server) < t.config.max_concurrent then admit t c server
  else if Queue.length t.queues.(server) < t.config.accept_queue then begin
    c.server <- server;
    Queue.push c t.queues.(server)
  end
  else t.dropped <- t.dropped + 1

let create ~engine ~config ~arrivals ~launch =
  if config.servers <= 0 then invalid_arg "Farm.create: servers must be > 0";
  if config.max_concurrent <= 0 then
    invalid_arg "Farm.create: max_concurrent must be > 0";
  let conns =
    Array.of_list
      (List.mapi
         (fun id at ->
           { id; arrived = at; server = -1; admitted = nan; finished = nan })
         arrivals)
  in
  let t =
    { engine;
      config;
      balancer = Balancer.create config.policy ~servers:config.servers;
      launch;
      conns;
      in_flight = Array.make config.servers 0;
      queues = Array.init config.servers (fun _ -> Queue.create ());
      per_server_completed = Array.make config.servers 0;
      completed = 0;
      dropped = 0 }
  in
  Array.iter
    (fun c -> Engine.schedule_at engine ~time:c.arrived (fun () -> arrive t c))
    conns;
  t

let offered t = Array.length t.conns
let completed t = t.completed
let dropped t = t.dropped
let unfinished t = offered t - t.completed - t.dropped
let per_server_completed t = Array.copy t.per_server_completed

let completed_conns t =
  Array.to_list t.conns
  |> List.filter (fun c -> not (Float.is_nan c.finished))

let latencies_ms t =
  List.map (fun c -> (c.finished -. c.arrived) *. 1000.) (completed_conns t)

let wait_ms t =
  List.map (fun c -> (c.admitted -. c.arrived) *. 1000.) (completed_conns t)
