(* Load-balancer front end of the farm: picks the server an arriving
   connection is handed to. Both policies are deterministic — ties in
   least-connections break toward the lowest index — so the assignment
   stream is a pure function of the arrival stream and the policy. *)

type policy = Round_robin | Least_connections

let policy_name = function
  | Round_robin -> "round-robin"
  | Least_connections -> "least-connections"

let policy_of_name = function
  | "round-robin" -> Round_robin
  | "least-connections" -> Least_connections
  | name -> invalid_arg ("Balancer.policy_of_name: unknown policy " ^ name)

let policies = [ Round_robin; Least_connections ]

type t = { policy : policy; servers : int; mutable cursor : int }

let create policy ~servers =
  if servers <= 0 then invalid_arg "Balancer.create: servers must be > 0";
  { policy; servers; cursor = 0 }

let pick t ~load =
  match t.policy with
  | Round_robin ->
    let s = t.cursor in
    t.cursor <- (t.cursor + 1) mod t.servers;
    s
  | Least_connections ->
    let best = ref 0 in
    for s = 1 to t.servers - 1 do
      if load s < load !best then best := s
    done;
    !best
