type netem = {
  loss : float;
  loss_towards : string option;
  delay_s : float;
  jitter_s : float;
  rate_bps : float;
}

let ideal = { loss = 0.; loss_towards = None; delay_s = 1e-6; jitter_s = 0.; rate_bps = 10e9 }

(* one direction of the duplex link *)
type path = { mutable busy_until : float }

type t = {
  engine : Engine.t;
  rng : Crypto.Drbg.t;
  netem : netem;
  tap : float -> Packet.t -> unit;
  paths : (string, path) Hashtbl.t; (* keyed by src host *)
  mutable delivered : int;
  mutable lost : int;
}

let create engine rng netem ~tap =
  { engine; rng; netem; tap; paths = Hashtbl.create 4; delivered = 0; lost = 0 }

let path_for t src =
  match Hashtbl.find_opt t.paths src with
  | Some p -> p
  | None ->
    let p = { busy_until = 0. } in
    Hashtbl.add t.paths src p;
    p

let send t packet ~deliver =
  let path = path_for t packet.Packet.src in
  let now = Engine.now t.engine in
  (* netem drops before the wire in our model; a dropped packet never
     reaches the interface queue, so it must not consume serialization
     time or delay the packets behind it. The tap (optical splitter)
     sits after the emulation, so lost packets are never timestamped
     either. *)
  let loss_applies =
    match t.netem.loss_towards with
    | None -> true
    | Some host -> packet.Packet.dst = host
  in
  if loss_applies && Crypto.Drbg.float t.rng < t.netem.loss then begin
    t.lost <- t.lost + 1;
    if Trace.Sink.enabled () then
      Trace.Sink.instant ~track:"net" ~cat:"net" ~name:"drop"
        ~args:[ ("packet", Packet.describe packet) ]
        now
  end
  else begin
    t.delivered <- t.delivered + 1;
    let serialization =
      float_of_int (8 * Packet.wire_bytes packet) /. t.netem.rate_bps
    in
    (* FIFO queue: transmission starts when the path frees up *)
    let start = Float.max now path.busy_until in
    let tx_done = start +. serialization in
    path.busy_until <- tx_done;
    (* tc-netem jitter: uniform around the configured delay; crossing
       delays reorder packets, exactly as netem does without its
       reorder-correction option *)
    let jitter =
      if t.netem.jitter_s = 0. then 0.
      else t.netem.jitter_s *. ((2. *. Crypto.Drbg.float t.rng) -. 1.)
    in
    let arrival = tx_done +. Float.max 0. (t.netem.delay_s +. jitter) in
    (* one wire-occupancy span per direction; the per-src FIFO means
       these never overlap within a track *)
    if Trace.Sink.enabled () then
      Trace.Sink.span
        ~track:("wire:" ^ packet.Packet.src)
        ~cat:"net" ~name:(Packet.describe packet) start tx_done;
    Engine.schedule_at t.engine ~time:tx_done (fun () ->
        t.tap tx_done packet);
    Engine.schedule_at t.engine ~time:arrival (fun () -> deliver packet)
  end

let stats_delivered t = t.delivered
let stats_lost t = t.lost
