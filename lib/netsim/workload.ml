(* Open-loop connection-arrival generators for the server-farm
   simulation. Each profile is a normalized rate shape over the campaign
   window: [shape u] (with [u = t / duration] in [0,1)) is the relative
   arrival rate at virtual time [t], scaled so the shape integrates to 1
   — [rate] in [arrivals] is therefore always the *mean* offered rate,
   whatever the profile.

   Streams are sampled by thinning an homogeneous Poisson process at the
   shape's peak rate (Lewis-Shedler): exponential gaps from DRBG
   uniforms, each candidate kept with probability [shape u / peak]. The
   whole stream is a pure function of (profile, seed, rate, duration),
   which is what keeps farm cells bit-identical across [--jobs]. *)

type t = {
  name : string;
  label : string;
  description : string;
  shape : float -> float;
  peak : float;
}

let poisson =
  { name = "poisson";
    label = "steady Poisson";
    description = "constant mean rate: memoryless open-loop arrivals";
    shape = (fun _ -> 1.);
    peak = 1. }

(* linear ramp 0.2x -> 1.8x of the mean: a diurnal-style ramp-up *)
let ramp =
  { name = "ramp";
    label = "linear ramp";
    description = "rate climbs linearly from 0.2x to 1.8x the mean";
    shape = (fun u -> 0.2 +. (1.6 *. u));
    peak = 1.8 }

(* baseline 0.5x with a 5.5x burst over u in [0.4, 0.5): mean 1 *)
let flash_crowd =
  { name = "flash-crowd";
    label = "flash crowd";
    description =
      "0.5x baseline with a 5.5x burst over the fifth decile of the run";
    shape = (fun u -> if u >= 0.4 && u < 0.5 then 5.5 else 0.5);
    peak = 5.5 }

let all = [ poisson; ramp; flash_crowd ]

let find name =
  match List.find_opt (fun w -> w.name = name) all with
  | Some w -> w
  | None -> invalid_arg ("Workload.find: unknown arrival profile " ^ name)

let arrivals w ~rng ~rate ~duration_s =
  if rate <= 0. || duration_s <= 0. then []
  else begin
    let peak_rate = rate *. w.peak in
    let acc = ref [] in
    let t = ref 0. in
    let continue = ref true in
    while !continue do
      (* inverse-CDF exponential gap; [Drbg.float] is in [0,1) so the
         log argument stays strictly positive *)
      let u = Crypto.Drbg.float rng in
      t := !t -. (log (1. -. u) /. peak_rate);
      if !t >= duration_s then continue := false
      else if Crypto.Drbg.float rng < w.shape (!t /. duration_s) /. w.peak
      then acc := !t :: !acc
    done;
    List.rev !acc
  end
