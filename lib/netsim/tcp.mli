(** A TCP model sufficient for the paper's phenomena: 3-way handshake,
    MSS-sized segmentation, slow start from a configurable initial
    congestion window (Linux default 10, the paper's CWND-overflow lever),
    congestion avoidance, duplicate-ACK fast retransmit, and exponential
    RTO backoff with Linux-like 200 ms minimum / 1 s initial RTO.

    Segmentation follows write boundaries the way a real socket does:
    when the window is open, each [write] is sent immediately (so a flight
    spread over several [write]s occupies more, partially-filled
    segments), while window-blocked bytes coalesce into full MSS
    segments. Section 5.4's extra round trips emerge from exactly this. *)

type config = {
  mss : int;  (** payload bytes per segment (1448 on the testbed) *)
  init_cwnd_segments : int;  (** Linux default 10 *)
  kernel_cost_ms_per_packet : float;
      (** CPU charged to the kernel for every packet sent or received *)
}

val default_config : config

type t

val create_pair :
  Engine.t -> Link.t -> config -> client:Host.t -> server:Host.t -> t * t
(** A client and a server endpoint wired through the same link. *)

val connect : t -> on_established:(unit -> unit) -> unit
(** Client side: run the 3-way handshake. The server side accepts
    implicitly. *)

val on_receive : t -> (string -> unit) -> unit
(** In-order application data delivery (byte-stream chunks). *)

val write : t -> ?marks:(int * string) list -> string -> unit
(** Queue application data. [marks] are (offset within this write, TLS
    message label) pairs for the passive tap. *)

val close : t -> unit
(** Send FIN once all queued data is acknowledged. *)

val bytes_sent : t -> int
(** Wire bytes this endpoint put on the link, including headers, pure
    ACKs, retransmissions and handshake segments. *)

val packets_sent : t -> int

val retransmissions : t -> int
(** Every retransmitted segment, whatever triggered it. *)

val fast_retransmissions : t -> int
(** Duplicate-ACK-driven retransmits (including NewReno partial-ACK
    ones) — the subset of {!retransmissions} that cost no timer wait. *)

val timeout_retransmissions : t -> int
(** Timer-driven retransmits: RTO go-back-N plus SYN / SYN-ACK
    handshake retries. *)

val rtt_samples : t -> int
(** Completed round-trip measurements this endpoint took (handshake
    RTT plus Karn-filtered data RTTs) — a per-connection round-trip
    counter for the metrics artifact. *)
