(* Classic pcap (v2.4) with synthesized Ethernet/IPv4/TCP framing.
   Checksums are left zero (Wireshark treats them as offloaded). *)

let client_ip = "10.0.0.1"
let server_ip = "10.0.0.2"
let client_mac = "\x02\x00\x00\x00\x00\x01"
let server_mac = "\x02\x00\x00\x00\x00\x02"
let client_port = 45000
let server_port = 4433

let le16 v = String.init 2 (fun i -> Char.chr ((v lsr (8 * i)) land 0xff))
let le32 v = String.init 4 (fun i -> Char.chr ((v lsr (8 * i)) land 0xff))
let be16 = Crypto.Bytesx.u16_be

let ip_bytes s =
  String.concat ""
    (List.map
       (fun part -> String.make 1 (Char.chr (int_of_string part)))
       (String.split_on_char '.' s))

let global_header =
  le32 0xa1b2c3d4 (* magic, microsecond resolution *)
  ^ le16 2 ^ le16 4 (* version 2.4 *)
  ^ le32 0 (* thiszone *)
  ^ le32 0 (* sigfigs *)
  ^ le32 65535 (* snaplen *)
  ^ le32 1 (* LINKTYPE_ETHERNET *)

let tcp_flags_byte (f : Packet.flags) =
  (if f.Packet.fin then 0x01 else 0)
  lor (if f.Packet.syn then 0x02 else 0)
  lor (if f.Packet.rst then 0x04 else 0)
  lor if f.Packet.ack then 0x10 else 0

let frame (p : Packet.t) =
  let from_client = p.Packet.src = "client" in
  let src_mac, dst_mac =
    if from_client then (client_mac, server_mac) else (server_mac, client_mac)
  in
  let src_ip, dst_ip =
    if from_client then (client_ip, server_ip) else (server_ip, client_ip)
  in
  let src_port, dst_port =
    if from_client then (client_port, server_port) else (server_port, client_port)
  in
  let payload = p.Packet.payload in
  (* TCP header with a timestamp-option-sized padding (NOPs), matching the
     wire-size accounting of Packet.header_bytes *)
  let opt_len = if p.Packet.flags.Packet.syn then 20 else 12 in
  let data_offset_words = (20 + opt_len) / 4 in
  let tcp =
    be16 src_port ^ be16 dst_port
    ^ Crypto.Bytesx.u32_be (p.Packet.seq + 1)
    ^ Crypto.Bytesx.u32_be (p.Packet.ack_seq + 1)
    ^ String.make 1 (Char.chr (data_offset_words lsl 4))
    ^ String.make 1 (Char.chr (tcp_flags_byte p.Packet.flags))
    ^ be16 65535 (* window *)
    ^ "\x00\x00" (* checksum: offloaded *)
    ^ "\x00\x00" (* urgent *)
    ^ String.make opt_len '\x01' (* NOP padding standing in for options *)
  in
  let total_len = 20 + String.length tcp + String.length payload in
  let ipv4 =
    "\x45\x00" ^ be16 total_len
    ^ be16 (p.Packet.id land 0xffff)
    ^ "\x40\x00" (* don't fragment *)
    ^ "\x40\x06" (* ttl 64, protocol TCP *)
    ^ "\x00\x00" (* header checksum: offloaded *)
    ^ ip_bytes src_ip ^ ip_bytes dst_ip
  in
  dst_mac ^ src_mac ^ "\x08\x00" (* ethertype IPv4 *) ^ ipv4 ^ tcp ^ payload

let record time p =
  let f = frame p in
  let secs = int_of_float time in
  let usecs = int_of_float ((time -. float_of_int secs) *. 1e6) in
  le32 secs ^ le32 usecs
  ^ le32 (String.length f)
  ^ le32 (String.length f)
  ^ f

let of_entries entries =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf global_header;
  List.iter
    (fun (e : Tap.entry) ->
      Buffer.add_string buf (record e.Tap.time e.Tap.packet))
    entries;
  Buffer.contents buf

let write_file path trace =
  let oc = open_out_bin path in
  output_string oc (of_entries (Tap.entries trace));
  close_out oc
