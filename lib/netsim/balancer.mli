(** Deterministic load-balancer model for the server farm. *)

type policy = Round_robin | Least_connections

val policy_name : policy -> string
(** ["round-robin"] / ["least-connections"] — the spelling used in farm
    spec fingerprints and the CLI. *)

val policy_of_name : string -> policy
(** @raise Invalid_argument for unknown policy names. *)

val policies : policy list

type t

val create : policy -> servers:int -> t
(** @raise Invalid_argument when [servers <= 0]. *)

val pick : t -> load:(int -> int) -> int
(** Assign the next connection: round-robin cycles the cursor;
    least-connections takes the server minimizing [load] (in-flight plus
    queued connections, supplied by the farm), ties toward the lowest
    index. *)
